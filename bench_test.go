// Package repro_test is the benchmark harness regenerating every table
// and figure of the paper's evaluation (§6), plus the ablation studies
// of DESIGN.md §5 and micro-benchmarks of the substrate. Each
// BenchmarkFig*/BenchmarkTable* corresponds to one experiment of the
// per-experiment index in DESIGN.md §4; the rendered rows go to the
// benchmark log on the first iteration, and headline metrics are
// attached via b.ReportMetric.
//
// Benchmarks run at reduced grid resolutions (res/stride noted in each
// report) so the full battery completes in minutes on one core; see
// EXPERIMENTS.md for the recorded outputs and their comparison with the
// paper.
package repro_test

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/core/discovery"
	"repro/internal/ess"
	"repro/internal/experiments"
	"repro/internal/mso"
	"repro/internal/workload"
)

// benchOpts keeps experiment benches tractable on a single core.
func benchOpts() experiments.Options {
	return experiments.Options{Res: 5, StrideHighD: 7}
}

// runReport executes an experiment b.N times, rendering it once.
func runReport(b *testing.B, f func(*experiments.Harness) (*experiments.Report, error)) *experiments.Report {
	b.Helper()
	var last *experiments.Report
	for i := 0; i < b.N; i++ {
		h := experiments.New(benchOpts())
		rep, err := f(h)
		if err != nil {
			b.Fatal(err)
		}
		last = rep
	}
	if testing.Verbose() {
		last.Render(os.Stdout)
	} else {
		last.Render(io.Discard)
	}
	return last
}

// cell parses a numeric report cell for ReportMetric.
func cell(b *testing.B, rep *experiments.Report, row, col int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(rep.Rows[row][col], 64)
	if err != nil {
		b.Fatalf("cell (%d,%d) = %q: %v", row, col, rep.Rows[row][col], err)
	}
	return v
}

func BenchmarkFig3OCS(b *testing.B) {
	runReport(b, (*experiments.Harness).Fig3OCS)
}

func BenchmarkFig7Trace(b *testing.B) {
	rep := runReport(b, (*experiments.Harness).Fig7Trace)
	b.ReportMetric(float64(len(rep.Rows)), "executions")
}

func BenchmarkFig8MSOg(b *testing.B) {
	rep := runReport(b, (*experiments.Harness).Fig8MSOg)
	// Headline: 6D_Q91's SB guarantee (paper: 54 vs PB's 96).
	last := len(rep.Rows) - 1
	b.ReportMetric(cell(b, rep, last, 4), "SB-MSOg-6D_Q91")
	b.ReportMetric(cell(b, rep, last, 3), "PB-MSOg-6D_Q91")
}

func BenchmarkFig9Dimensionality(b *testing.B) {
	rep := runReport(b, (*experiments.Harness).Fig9Dimensionality)
	b.ReportMetric(cell(b, rep, 0, 4), "SB-MSOg-2D")
	b.ReportMetric(cell(b, rep, len(rep.Rows)-1, 4), "SB-MSOg-6D")
}

func BenchmarkFig10MSOe(b *testing.B) {
	rep := runReport(b, (*experiments.Harness).Fig10MSOe)
	worstPB, worstSB := 0.0, 0.0
	for i := range rep.Rows {
		if v := cell(b, rep, i, 2); v > worstPB {
			worstPB = v
		}
		if v := cell(b, rep, i, 3); v > worstSB {
			worstSB = v
		}
	}
	b.ReportMetric(worstPB, "worst-PB-MSOe")
	b.ReportMetric(worstSB, "worst-SB-MSOe")
}

func BenchmarkFig11ASO(b *testing.B) {
	rep := runReport(b, (*experiments.Harness).Fig11ASO)
	sumPB, sumSB := 0.0, 0.0
	for i := range rep.Rows {
		sumPB += cell(b, rep, i, 2)
		sumSB += cell(b, rep, i, 3)
	}
	n := float64(len(rep.Rows))
	b.ReportMetric(sumPB/n, "mean-PB-ASO")
	b.ReportMetric(sumSB/n, "mean-SB-ASO")
}

func BenchmarkFig12Histogram(b *testing.B) {
	rep := runReport(b, (*experiments.Harness).Fig12Histogram)
	b.ReportMetric(float64(len(rep.Rows)), "buckets")
}

func BenchmarkFig13MSOeAB(b *testing.B) {
	rep := runReport(b, (*experiments.Harness).Fig13MSOeAB)
	worstAB := 0.0
	for i := range rep.Rows {
		if v := cell(b, rep, i, 3); v > worstAB {
			worstAB = v
		}
	}
	b.ReportMetric(worstAB, "worst-AB-MSOe")
}

func BenchmarkTable2Alignment(b *testing.B) {
	runReport(b, (*experiments.Harness).Table2Alignment)
}

func BenchmarkTable3WallClock(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		h := experiments.New(experiments.Options{Scale: 0.3, Res: 5})
		var err error
		rep, err = h.Table3WallClock()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(rep.Rows)), "executions")
}

func BenchmarkTable4Penalty(b *testing.B) {
	rep := runReport(b, (*experiments.Harness).Table4Penalty)
	worst := 0.0
	for i := range rep.Rows {
		if v := cell(b, rep, i, 1); v > worst {
			worst = v
		}
	}
	b.ReportMetric(worst, "worst-penalty")
}

func BenchmarkJOBQ1a(b *testing.B) {
	rep := runReport(b, (*experiments.Harness).JOB)
	b.ReportMetric(cell(b, rep, 0, 1), "native-MSO")
	b.ReportMetric(cell(b, rep, 1, 1), "SB-MSOe")
	b.ReportMetric(cell(b, rep, 2, 1), "AB-MSOe")
}

func BenchmarkAblationCostRatio(b *testing.B) {
	runReport(b, (*experiments.Harness).AblationCostRatio)
}

func BenchmarkAblationAnorexicLambda(b *testing.B) {
	runReport(b, (*experiments.Harness).AblationAnorexicLambda)
}

func BenchmarkAblationGridResolution(b *testing.B) {
	runReport(b, (*experiments.Harness).AblationGridResolution)
}

func BenchmarkAblationOptimizerProbes(b *testing.B) {
	runReport(b, (*experiments.Harness).AblationOptimizerProbes)
}

func BenchmarkAblationOneDEndgame(b *testing.B) {
	runReport(b, (*experiments.Harness).AblationOneDEndgame)
}

func BenchmarkAblationCostModelError(b *testing.B) {
	runReport(b, (*experiments.Harness).AblationCostModelError)
}

// --- substrate micro-benchmarks ---

func BenchmarkSpaceBuild2DQ91(b *testing.B) {
	spec, err := workload.ByName("2D_Q91")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := spec.Space(1.0, 12); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpaceBuild6D compiles the 6D_Q91 space at res 5 (15625
// points) and reports the exact-DP invocation profile of the sweep.
func BenchmarkSpaceBuild6D(b *testing.B) {
	spec, err := workload.ByName("6D_Q91")
	if err != nil {
		b.Fatal(err)
	}
	var st ess.SweepStats
	for i := 0; i < b.N; i++ {
		s, err := spec.Space(1.0, 5)
		if err != nil {
			b.Fatal(err)
		}
		st = s.Stats
	}
	b.ReportMetric(float64(st.DPCalls), "DP-calls")
	b.ReportMetric(st.DPReduction(), "DP-reduction")
	b.ReportMetric(st.FallbackRate(), "fallback-rate")
}

// BenchmarkSpaceBuild6DExact is the one-DP-per-point reference for
// BenchmarkSpaceBuild6D on the same optimizer substrate.
func BenchmarkSpaceBuild6DExact(b *testing.B) {
	spec, err := workload.ByName("6D_Q91")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := spec.SpaceWith(1.0, ess.Config{Res: 5, Exact: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLazyDiscover6D is the demand-driven counterpart of
// BenchmarkSpaceBuild6D: cold LazySpace construction plus one full
// SpillBound discovery at the 6D_Q91 grid midpoint. res=5 matches the
// eager sweep's grid; res=10 has 64x the points (10^6) yet must stay
// cheaper than the eager res-5 build, because discovery settles only
// the points the budget ladder touches.
func BenchmarkLazyDiscover6D(b *testing.B) {
	spec, err := workload.ByName("6D_Q91")
	if err != nil {
		b.Fatal(err)
	}
	for _, res := range []int{5, 10} {
		b.Run(fmt.Sprintf("res=%d", res), func(b *testing.B) {
			var settled, points int
			for i := 0; i < b.N; i++ {
				ls, err := spec.LazySpaceWith(1.0, ess.Config{Res: res})
				if err != nil {
					b.Fatal(err)
				}
				c, err := core.CompileSource(ls, core.CompileOptions{})
				if err != nil {
					b.Fatal(err)
				}
				g := ls.Geometry()
				mid := make([]int, g.D)
				for d := range mid {
					mid[d] = g.Res / 2
				}
				if _, err := c.NewRun().Discover(core.SpillBound, int32(g.Linear(mid))); err != nil {
					b.Fatal(err)
				}
				p := ls.Profile()
				settled, points = p.Settled, p.Points
			}
			b.ReportMetric(float64(settled), "settled")
			b.ReportMetric(float64(settled)/float64(points), "settled-frac")
		})
	}
}

// BenchmarkContours isolates iso-cost contour extraction on a built 2D
// space.
func BenchmarkContours(b *testing.B) {
	spec, err := workload.ByName("2D_Q91")
	if err != nil {
		b.Fatal(err)
	}
	space, err := spec.Space(1.0, 12)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cs := space.RecomputeContours(); len(cs) == 0 {
			b.Fatal("no contours")
		}
	}
}

func BenchmarkDiscoverSpillBound(b *testing.B) {
	spec, err := workload.ByName("2D_Q91")
	if err != nil {
		b.Fatal(err)
	}
	space, err := spec.Space(1.0, 12)
	if err != nil {
		b.Fatal(err)
	}
	sess := core.NewSession(space)
	qa := int32(space.Grid.Linear([]int{8, 6}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Discover(core.SpillBound, qa); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiscoverAlignedBound(b *testing.B) {
	spec, err := workload.ByName("2D_Q91")
	if err != nil {
		b.Fatal(err)
	}
	space, err := spec.Space(1.0, 12)
	if err != nil {
		b.Fatal(err)
	}
	sess := core.NewSession(space)
	qa := int32(space.Grid.Linear([]int{8, 6}))
	if _, err := sess.Discover(core.AlignedBound, qa); err != nil {
		b.Fatal(err) // prime the planner cache
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Discover(core.AlignedBound, qa); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMSOSweepSpillBound(b *testing.B) {
	spec, err := workload.ByName("2D_Q91")
	if err != nil {
		b.Fatal(err)
	}
	space, err := spec.Space(1.0, 10)
	if err != nil {
		b.Fatal(err)
	}
	sess := core.NewSession(space)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sess.MSO(core.SpillBound, mso.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.MSO, "MSOe")
		}
	}
}

// shared6D compiles the 6D_Q91 res-5 artifact once for the parallel
// benchmarks; every workers=N sub-benchmark shares it, which is the
// point — one Compiled, many concurrent Runs.
var shared6D struct {
	once sync.Once
	c    *core.Compiled
	err  error
}

func sharedCompiled6D(b *testing.B) *core.Compiled {
	b.Helper()
	shared6D.once.Do(func() {
		spec, err := workload.ByName("6D_Q91")
		if err != nil {
			shared6D.err = err
			return
		}
		space, err := spec.SpaceWith(1.0, ess.Config{Res: 5})
		if err != nil {
			shared6D.err = err
			return
		}
		shared6D.c, shared6D.err = core.Compile(space, core.CompileOptions{})
	})
	if shared6D.err != nil {
		b.Fatal(shared6D.err)
	}
	return shared6D.c
}

// BenchmarkDiscoverParallel measures concurrent-discovery throughput
// over one shared 6D_Q91 Compiled with a simulated 500µs per-execution
// engine latency (discovery.Latent). The workers=N vs workers=1 disc/s
// ratio is the concurrency scaling; latency-bound, so it is meaningful
// on any core count.
func BenchmarkDiscoverParallel(b *testing.B) {
	c := sharedCompiled6D(b)
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiments.Throughput(c, experiments.ThroughputOptions{
					Parallel: workers, Runs: 32, ExecLatency: 500 * time.Microsecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.DiscoveriesPerSec, "disc/s")
				}
			}
		})
	}
}

func BenchmarkSimEngineSpill(b *testing.B) {
	spec, err := workload.ByName("2D_Q91")
	if err != nil {
		b.Fatal(err)
	}
	space, err := spec.Space(1.0, 12)
	if err != nil {
		b.Fatal(err)
	}
	qa := int32(space.Grid.Terminus())
	eng := discovery.NewSimEngine(space, qa)
	pid := space.PointPlan[space.Grid.Origin()]
	dim := space.SpillDim(pid, 0b11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.ExecSpill(pid, dim, space.Cmin)
	}
}

// Command rqp runs the robust-query-processing experiment suite: each
// subcommand regenerates one table or figure of the paper (see
// DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	rqp [flags] <experiment>
//
// Experiments:
//
//	ocs      Fig. 3   optimal cost surface (EQ)
//	trace    Fig. 7   2D-SpillBound execution trace (Q91)
//	fig8     Fig. 8   MSO guarantees, PB vs SB
//	fig9     Fig. 9   MSOg vs dimensionality (Q91 family)
//	fig10    Fig. 10  empirical MSO, PB vs SB
//	fig11    Fig. 11  ASO, PB vs SB
//	fig12    Fig. 12  sub-optimality histogram (4D_Q91)
//	fig13    Fig. 13  empirical MSO, SB vs AB
//	table2   Table 2  contour alignment penalties
//	table3   Table 3  wall-clock drill-down (real executions; -exec-workers)
//	table4   Table 4  AlignedBound maximum penalties
//	job      §6.5     JOB benchmark query 1a
//	summary            combined guarantees + MSOe overview
//	ablations          design-choice ablation studies
//	discover           single discovery trace (-query, -alg, -qa)
//	explain            optimal plan + pipelines at -qa (-query)
//	mso                MSO/ASO sweep for one query (-query, -alg, -stride)
//	bakeoff            comparative strategy scorecard: every registered
//	                   robust-QP strategy swept fault-free and under the
//	                   -chaos-seed/-chaos-rate schedule (-query, -strategies,
//	                   -experiments-file); see DESIGN.md §12
//	throughput         concurrent discovery throughput (-parallel, -runs,
//	                   -exec-latency); emits benchdiff-parsable lines
//	herd               request-herd scenario: -runs identical /discover
//	                   requests against an in-process replica, measuring
//	                   compile coalescing and 429 Retry-After behavior
//	                   (-query, -runs, -chaos-seed, -chaos-rate)
//	serve              long-running discovery service (-addr, -workloads,
//	                   -snapshot-dir, -peers, -self, -cache-bytes,
//	                   -outcome-cache-bytes); see DESIGN.md §10, §14, §16
//	list               available workload queries
//	all                everything above except ablations
//
// The discover, mso, and throughput commands accept -deadline, which
// bounds the whole invocation by a context deadline: on expiry the
// discovery aborts at the next execution boundary with a typed error
// and a partial trace, exactly as a served request would.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"runtime/metrics"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/core/discovery"
	"repro/internal/ess"
	"repro/internal/experiments"
	"repro/internal/faultinject"
	"repro/internal/mso"
	"repro/internal/plan"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rqp:", err)
		os.Exit(1)
	}
}

// sweepCfg carries the POSP sweep tuning flags to space builds.
type sweepCfg struct {
	res    int
	exact  bool
	theta  float64
	coarse int
	mode   string // -ess-mode: eager | lazy
}

func (c sweepCfg) config() ess.Config {
	return ess.Config{Res: c.res, Exact: c.exact, Theta: c.theta, CoarseStep: c.coarse}
}

// source builds the spec's contour provider per -ess-mode: the eager
// full-sweep Space, or the demand-driven LazySpace that materializes
// contours as discovery climbs the budget ladder.
func (c sweepCfg) source(spec workload.Spec, scale float64) (ess.ContourSource, error) {
	if c.mode == "lazy" {
		return spec.LazySpaceWith(scale, c.config())
	}
	return spec.SpaceWith(scale, c.config())
}

func run(args []string) error {
	fs := flag.NewFlagSet("rqp", flag.ContinueOnError)
	scale := fs.Float64("scale", 1.0, "catalog scale factor")
	res := fs.Int("res", 0, "grid resolution override (0 = per-query default)")
	stride := fs.Int("stride", 3, "5D/6D MSO sweep stride (also the mso command's stride)")
	lambda := fs.Float64("lambda", 0.2, "PlanBouquet anorexic reduction threshold")
	queryName := fs.String("query", "4D_Q91", "query for the discover command")
	alg := fs.String("alg", "spillbound", "algorithm for discover: planbouquet|spillbound|alignedbound")
	strategies := fs.String("strategies", "", "comma-separated strategy names for bakeoff (empty = all registered)")
	experimentsFile := fs.String("experiments-file", "", "markdown file whose bakeoff section is rewritten (empty = stdout only)")
	qaFlag := fs.String("qa", "", "true selectivities for discover, comma-separated (e.g. 0.04,0.1)")
	chaosSeed := fs.Uint64("chaos-seed", 0, "fault-injection seed for discover (with -chaos-rate)")
	chaosRate := fs.Float64("chaos-rate", 0, "per-site fault probability in [0,1] for discover (0 = off)")
	chaosAllowRequest := fs.Bool("chaos-allow-request", false, "let serve clients arm their own fault_rate even when -chaos-rate is 0 (chaos testing only)")
	parallel := fs.String("parallel", "1", "worker counts for throughput, comma-separated (e.g. 1,16)")
	runs := fs.Int("runs", 64, "total discoveries per throughput configuration")
	execLatency := fs.Duration("exec-latency", 0, "simulated per-execution engine latency for throughput/serve (e.g. 2ms)")
	deadline := fs.Duration("deadline", 0, "abort discover/mso/throughput after this long (0 = unbounded); also serve's default request timeout")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address for serve")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060; empty = disabled)")
	serveWorkloads := fs.String("workloads", "EQ", "comma-separated workload queries for serve")
	snapshotDir := fs.String("snapshot-dir", "", "crash-safe artifact cache directory for serve (empty = in-memory only)")
	maxConcurrent := fs.Int("max-concurrent", 4, "concurrent discovery slots for serve")
	maxQueue := fs.Int("max-queue", 16, "admission queue depth for serve (beyond it: 429)")
	peers := fs.String("peers", "", "comma-separated replica base URLs for shard-out serve (e.g. http://h1:8080,http://h2:8080; empty = single replica)")
	selfURL := fs.String("self", "", "this replica's own base URL within -peers")
	cacheBytes := fs.Int64("cache-bytes", 0, "byte budget for serve's signature-keyed artifact cache (0 = 256 MiB)")
	outcomeCacheBytes := fs.Int64("outcome-cache-bytes", 0, "byte budget for serve's deterministic outcome cache (0 = 64 MiB, negative disables)")
	execWorkers := fs.Int("exec-workers", 0, "intra-query morsel workers for real executions: table3 applies it directly, serve uses it as the per-request exec_workers cap (0 = defaults: 1 local, 8 serve)")
	essMode := fs.String("ess-mode", "eager", "contour provider: eager (full POSP sweep up front) or lazy (demand-driven)")
	exact := fs.Bool("exact", false, "force the exact one-DP-per-point POSP sweep")
	theta := fs.Float64("theta", 0, "recost fallback gate width (0 = default, <0 = exact)")
	coarse := fs.Int("coarse", 0, "phase-1 coarse lattice stride (0 = default)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		fs.Usage()
		return fmt.Errorf("missing experiment name")
	}
	cmd := fs.Arg(0)
	// Accept flags after the subcommand too (flag stops at the first
	// positional argument).
	if fs.NArg() > 1 {
		if err := fs.Parse(fs.Args()[1:]); err != nil {
			return err
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rqp: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "rqp: memprofile:", err)
			}
		}()
	}

	if *essMode != "eager" && *essMode != "lazy" {
		return fmt.Errorf("unknown -ess-mode %q (eager|lazy)", *essMode)
	}
	cfg := sweepCfg{res: *res, exact: *exact, theta: *theta, coarse: *coarse, mode: *essMode}
	h := experiments.New(experiments.Options{
		Scale: *scale, Res: *res, Lambda: *lambda, StrideHighD: *stride,
		Exact: *exact, Theta: *theta, ExecWorkers: *execWorkers, EssMode: *essMode,
	})

	type exp struct {
		name string
		run  func() (*experiments.Report, error)
	}
	table := []exp{
		{"ocs", h.Fig3OCS},
		{"trace", h.Fig7Trace},
		{"fig8", h.Fig8MSOg},
		{"fig9", h.Fig9Dimensionality},
		{"fig10", h.Fig10MSOe},
		{"fig11", h.Fig11ASO},
		{"fig12", h.Fig12Histogram},
		{"fig13", h.Fig13MSOeAB},
		{"table2", h.Table2Alignment},
		{"table3", h.Table3WallClock},
		{"table4", h.Table4Penalty},
		{"job", h.JOB},
		{"summary", h.SuiteSummary},
	}
	ablations := []exp{
		{"cost-ratio", h.AblationCostRatio},
		{"lambda", h.AblationAnorexicLambda},
		{"grid", h.AblationGridResolution},
		{"probes", h.AblationOptimizerProbes},
		{"1d-endgame", h.AblationOneDEndgame},
		{"cost-model-error", h.AblationCostModelError},
	}

	switch cmd {
	case "list":
		for _, n := range workload.Names() {
			fmt.Println(n)
		}
		return nil
	case "discover":
		return discover(*queryName, *alg, *qaFlag, *scale, cfg, *chaosSeed, *chaosRate, *deadline)
	case "explain":
		return explain(*queryName, *qaFlag, *scale, cfg)
	case "mso":
		return msoSweep(*queryName, *alg, *scale, cfg, *stride, *deadline)
	case "bakeoff":
		return bakeoff(*queryName, *strategies, *scale, cfg, *chaosSeed, *chaosRate,
			*stride, *experimentsFile)
	case "throughput":
		return throughput(*queryName, *alg, *scale, cfg, *parallel, *runs,
			*execLatency, *chaosSeed, *chaosRate, *deadline)
	case "herd":
		return herd(*queryName, *runs, *scale, *res, *chaosSeed, *chaosRate, *deadline)
	case "serve":
		return serve(serveConfig{
			addr: *addr, pprofAddr: *pprofAddr, workloads: *serveWorkloads,
			scale: *scale, res: *res, essMode: *essMode,
			snapshotDir: *snapshotDir, maxConcurrent: *maxConcurrent,
			maxQueue: *maxQueue, maxExecWorkers: *execWorkers, defaultTimeout: *deadline,
			execLatency: *execLatency, chaosSeed: *chaosSeed, chaosRate: *chaosRate,
			chaosAllowRequest: *chaosAllowRequest,
			peers:             *peers, selfURL: *selfURL, cacheBytes: *cacheBytes,
			outcomeCacheBytes: *outcomeCacheBytes,
		})
	case "all":
		for _, e := range table {
			if err := render(e.run); err != nil {
				return fmt.Errorf("%s: %w", e.name, err)
			}
		}
		return nil
	case "ablations":
		for _, e := range ablations {
			if err := render(e.run); err != nil {
				return fmt.Errorf("%s: %w", e.name, err)
			}
		}
		return nil
	}
	for _, e := range table {
		if e.name == cmd {
			return render(e.run)
		}
	}
	return fmt.Errorf("unknown experiment %q (try: rqp list|all|ablations)", cmd)
}

func render(f func() (*experiments.Report, error)) error {
	rep, err := f()
	if err != nil {
		return err
	}
	rep.Render(os.Stdout)
	fmt.Println()
	return nil
}

// printSweepStats reports how the contour provider did its work, in
// provider-agnostic form: a lazy source reports settled points and
// cache/refinement activity instead of the misleading zeros that
// reading eager sweep counters directly would produce.
func printSweepStats(src ess.ContourSource) {
	p := src.Profile()
	switch {
	case strings.HasPrefix(p.Mode, "lazy"):
		fmt.Printf("sweep: %s, %d/%d points settled on demand (%d contours built, %d hits / %d misses), %d DP calls, %d recost-settled (%d recosts), %d refinement rounds (%d points changed, epoch %d), %d plans\n",
			p.Mode, p.Settled, p.Points, p.ContoursBuilt, p.Hits, p.Misses,
			p.DPCalls, p.RecostPoints, p.RecostCalls,
			p.Refinements, p.RefinedPoints, p.Epoch, src.NumPlans())
	case p.RecostPoints == 0 && p.Fallbacks == 0:
		fmt.Printf("sweep: %s, %d DP calls, %d plans\n", p.Mode, p.DPCalls, src.NumPlans())
	default:
		fmt.Printf("sweep: %s, %d points, %d DP calls (%.1fx reduction: %d lattice, %d fallback, %d repair), %d recost-settled (%d recosts), fallback rate %.2f, %d plans\n",
			p.Mode, p.Points, p.DPCalls, p.DPReduction(), p.LatticeDP, p.Fallbacks,
			p.Repairs, p.RecostPoints, p.RecostCalls, p.FallbackRate(), src.NumPlans())
	}
}

// memSummary prints a one-line allocation/GC profile of the run so far,
// from runtime/metrics.
func memSummary() {
	samples := []metrics.Sample{
		{Name: "/gc/heap/allocs:bytes"},
		{Name: "/gc/cycles/total:gc-cycles"},
		{Name: "/memory/classes/heap/objects:bytes"},
	}
	metrics.Read(samples)
	v := func(i int) uint64 {
		if samples[i].Value.Kind() == metrics.KindUint64 {
			return samples[i].Value.Uint64()
		}
		return 0
	}
	fmt.Printf("runtime: %.1f MiB allocated, %d GC cycles, %.1f MiB live heap\n",
		float64(v(0))/(1<<20), v(1), float64(v(2))/(1<<20))
}

// deadlineCtx builds the invocation-bounding context for -deadline
// (nil when unbounded).
func deadlineCtx(deadline time.Duration) (context.Context, context.CancelFunc) {
	if deadline <= 0 {
		return nil, func() {}
	}
	return context.WithTimeout(context.Background(), deadline)
}

// msoSweep runs a full MSO/ASO sweep for one query and reports the
// guarantee alongside the empirical result.
func msoSweep(name, algName string, scale float64, cfg sweepCfg, stride int, deadline time.Duration) error {
	spec, err := workload.ByName(name)
	if err != nil {
		return err
	}
	src, err := cfg.source(spec, scale)
	if err != nil {
		return err
	}
	ctx, cancel := deadlineCtx(deadline)
	defer cancel()
	c, err := core.CompileSource(src, core.CompileOptions{})
	if err != nil {
		return err
	}
	res, err := mso.Sweep(src, func(qa int32) (*core.Outcome, error) {
		r := c.NewRun()
		if ctx != nil {
			r.WithContext(ctx)
		}
		return r.Discover(core.Algorithm(algName), qa)
	}, mso.Options{Stride: stride})
	if aerr := discovery.AbortCause(err); aerr != nil {
		return fmt.Errorf("sweep aborted by -deadline %v: %w", deadline, aerr.Err)
	}
	if err != nil {
		return err
	}
	g, _ := c.Guarantee(core.Algorithm(algName))
	sel := src.Geometry().Sel(int(res.ArgMax), nil)
	fmt.Printf("%s via %s: MSOe %.4f (guarantee %.1f), ASO %.4f over %d locations, worst at %v\n",
		name, algName, res.MSO, g, res.ASO, len(res.Points), sel)
	printSweepStats(src)
	memSummary()
	return nil
}

// bakeoff sweeps every requested strategy over one workload —
// fault-free and under the -chaos-seed/-chaos-rate schedule — and
// prints the comparative scorecard, optionally rewriting the bakeoff
// section of -experiments-file. The sweep stride follows the 5D/6D
// convention of the other experiments: exhaustive below 5 dimensions.
func bakeoff(name, strategiesFlag string, scale float64, cfg sweepCfg,
	chaosSeed uint64, chaosRate float64, stride int, experimentsFile string) error {
	spec, err := workload.ByName(name)
	if err != nil {
		return err
	}
	src, err := cfg.source(spec, scale)
	if err != nil {
		return err
	}
	c, err := core.CompileSource(src, core.CompileOptions{PrimeAlignment: true})
	if err != nil {
		return err
	}
	opts := experiments.BakeoffOptions{ChaosSeed: chaosSeed, ChaosRate: chaosRate}
	if strategiesFlag != "" {
		for _, s := range strings.Split(strategiesFlag, ",") {
			opts.Strategies = append(opts.Strategies, strings.TrimSpace(s))
		}
	}
	if src.Geometry().D >= 5 {
		opts.Stride = stride
	}
	res, err := experiments.Bakeoff(c, name, opts)
	if err != nil {
		return err
	}
	res.Report().Render(os.Stdout)
	printSweepStats(src)
	if experimentsFile != "" {
		if err := res.UpdateExperimentsFile(experimentsFile); err != nil {
			return err
		}
		fmt.Printf("bakeoff section rewritten in %s\n", experimentsFile)
	}
	return nil
}

// explain prints the optimal plan and its pipeline decomposition at the
// given selectivities.
func explain(name, qaFlag string, scale float64, cfg sweepCfg) error {
	spec, err := workload.ByName(name)
	if err != nil {
		return err
	}
	src, err := cfg.source(spec, scale)
	if err != nil {
		return err
	}
	g, q := src.Geometry(), src.Query()
	qaIdx, err := parseQA(g, qaFlag)
	if err != nil {
		return err
	}
	qa := int32(g.Linear(qaIdx))
	pid := src.PlanAt(qa)
	root := src.Plan(pid).Root
	sel := g.Sel(int(qa), nil)
	fmt.Printf("%s: optimal plan P%d at selectivities %v (cost %.4g)\n\n",
		name, pid, sel, src.CostAt(qa))
	fmt.Print(plan.Format(root, q))
	fmt.Println("\npipelines (execution order):")
	fmt.Print(plan.FormatPipelines(root, q))
	remaining := map[int]bool{}
	for _, id := range q.EPPs {
		remaining[id] = true
	}
	if j := plan.SpillJoin(root, remaining); j >= 0 {
		fmt.Printf("\nspill-node identification: join %d (ESS dimension %d)\n",
			j, q.EPPDim(j))
	}
	return nil
}

// parseQA resolves a comma-separated selectivity list (or the grid
// midpoint when empty) to grid indexes.
func parseQA(g *ess.Grid, qaFlag string) ([]int, error) {
	var qaIdx []int
	if qaFlag == "" {
		for d := 0; d < g.D; d++ {
			qaIdx = append(qaIdx, g.Res/2)
		}
		return qaIdx, nil
	}
	parts := strings.Split(qaFlag, ",")
	if len(parts) != g.D {
		return nil, fmt.Errorf("query needs %d selectivities, got %d", g.D, len(parts))
	}
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		qaIdx = append(qaIdx, g.NearestIndex(v))
	}
	return qaIdx, nil
}

// throughput compiles one space, then drives -runs concurrent
// discoveries over it at each -parallel level and prints aggregate
// latency/throughput, one benchdiff-parsable Benchmark line per level
// (pipe into `go run ./cmd/benchdiff -out BENCH_concurrency.json`).
func throughput(name, algName string, scale float64, cfg sweepCfg, parallelFlag string,
	runs int, execLatency time.Duration, chaosSeed uint64, chaosRate float64,
	deadline time.Duration) error {
	spec, err := workload.ByName(name)
	if err != nil {
		return err
	}
	var levels []int
	for _, p := range strings.Split(parallelFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -parallel value %q", p)
		}
		levels = append(levels, n)
	}
	src, err := cfg.source(spec, scale)
	if err != nil {
		return err
	}
	compiled, err := core.CompileSource(src, core.CompileOptions{PrimeAlignment: true})
	if err != nil {
		return err
	}
	var faults *faultinject.Injector
	if chaosRate > 0 {
		faults = faultinject.NewUniform(chaosSeed, chaosRate)
	}
	fmt.Printf("%s via %s: %d discoveries per level, exec latency %v, chaos rate %g\n",
		name, algName, runs, execLatency, chaosRate)
	ctx, cancel := deadlineCtx(deadline)
	defer cancel()
	var base float64
	for _, p := range levels {
		res, err := experiments.Throughput(compiled, experiments.ThroughputOptions{
			Algorithm: core.Algorithm(algName), Parallel: p, Runs: runs,
			ExecLatency: execLatency, Faults: faults, Context: ctx,
		})
		if err != nil {
			return err
		}
		speedup := ""
		if base == 0 {
			base = res.DiscoveriesPerSec
		} else if base > 0 {
			speedup = fmt.Sprintf("  (%.2fx vs parallel=%d)", res.DiscoveriesPerSec/base, levels[0])
		}
		retries := ""
		if res.TotalRetries > 0 {
			retries = fmt.Sprintf("  retries %d", res.TotalRetries)
		}
		fmt.Printf("  parallel=%-3d wall %-10v %8.1f disc/s  mean %-10v p95 %-10v max %v%s%s\n",
			p, res.Wall.Round(time.Millisecond), res.DiscoveriesPerSec,
			res.MeanLatency.Round(time.Microsecond), res.P95.Round(time.Microsecond),
			res.MaxLatency.Round(time.Microsecond), retries, speedup)
		fmt.Printf("BenchmarkThroughput/%s/parallel=%d %d %.0f ns/op %.1f disc/s %.0f p95-ns %d steps %d retries\n",
			name, p, runs, float64(res.Wall.Nanoseconds())/float64(runs),
			res.DiscoveriesPerSec, float64(res.P95.Nanoseconds()), res.TotalSteps, res.TotalRetries)
	}
	return nil
}

// herd runs the request-herd scenario: an in-process replica is
// started with only EQ pinned, then -runs identical /discover requests
// for -query arrive simultaneously, exercising the signature-keyed
// compile cache and singleflight coalescing (one compile for the whole
// herd). With chaos armed, cache-evict and coalesce-leader faults fire
// from the seed's deterministic schedule.
func herd(name string, size int, scale float64, res int, chaosSeed uint64, chaosRate float64, deadline time.Duration) error {
	if size <= 0 {
		size = 64
	}
	timeout := deadline
	if timeout <= 0 {
		timeout = 2 * time.Minute
	}
	s, err := server.New(server.Config{
		Workloads: []string{"EQ"}, Scale: scale, Res: res,
		MaxConcurrent: 8, MaxQueue: size,
		DefaultTimeout: timeout,
		FaultSeed:      chaosSeed, FaultRate: chaosRate,
		Logf: func(string, ...any) {},
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()
	wctx, wcancel := context.WithTimeout(context.Background(), time.Minute)
	err = s.WaitReady(wctx)
	wcancel()
	if err != nil {
		cancel()
		return err
	}
	body, err := json.Marshal(server.DiscoverRequest{Workload: name, Algorithm: "sb", FaultSeed: chaosSeed})
	if err != nil {
		cancel()
		return err
	}
	fmt.Printf("herd: %d identical /discover requests for %s (chaos rate %g)\n", size, name, chaosRate)
	hres, herr := experiments.Herd(experiments.HerdOptions{
		BaseURL: "http://" + ln.Addr().String(), Body: body,
		Concurrency: size, Seed: chaosSeed,
	})
	cancel()
	<-served
	if herr != nil {
		return herr
	}
	fmt.Printf("  %s\n", hres)
	cs := s.CacheStats()
	fmt.Printf("  compiles %d  cache hits %d misses %d evictions %d (coalesced herd pays one compile)\n",
		s.CompileCount(name), cs.Hits, cs.Misses, cs.Evictions)
	return nil
}

// discover runs one discovery and prints its trace. With a nonzero
// chaos rate, every fault-injection site is armed at that rate from the
// seed's deterministic schedule, and the degradation/retry summary is
// printed after the trace.
func discover(name, algName, qaFlag string, scale float64, cfg sweepCfg, chaosSeed uint64, chaosRate float64, deadline time.Duration) error {
	spec, err := workload.ByName(name)
	if err != nil {
		return err
	}
	src, err := cfg.source(spec, scale)
	if err != nil {
		return err
	}
	g := src.Geometry()
	qaIdx, err := parseQA(g, qaFlag)
	if err != nil {
		return err
	}
	qa := int32(g.Linear(qaIdx))

	c, err := core.CompileSource(src, core.CompileOptions{})
	if err != nil {
		return err
	}
	var chaos *faultinject.Injector
	if chaosRate > 0 {
		chaos = faultinject.NewUniform(chaosSeed, chaosRate)
	}
	ctx, cancel := deadlineCtx(deadline)
	defer cancel()
	r := c.NewRun().WithFaults(chaos)
	if ctx != nil {
		r.WithContext(ctx)
	}
	out, err := r.Discover(core.Algorithm(algName), qa)
	aborted := discovery.AbortCause(err)
	if err != nil && aborted == nil {
		return err
	}
	sel := g.Sel(int(qa), nil)
	fmt.Printf("%s via %s at qa=%v (grid point %d)\n", name, algName, sel, qa)
	if aborted != nil {
		fmt.Printf("  ABORTED by -deadline %v (%v); partial trace follows\n", deadline, aborted.Err)
	}
	for i, st := range out.Steps {
		mode := "full "
		if st.Phase == discovery.PhaseSpill {
			mode = "spill"
		}
		status := "killed"
		if st.Completed {
			status = "done"
		}
		fmt.Printf("  %2d. IC%-2d %s P%-3d dim=%-2d budget=%.4g cost=%.4g %s\n",
			i+1, st.Contour, mode, st.PlanID, st.Dim, st.Budget, st.Cost, status)
	}
	guar, _ := c.Guarantee(core.Algorithm(algName))
	opt := src.CostAt(qa)
	fmt.Printf("total cost %.4g, optimal %.4g, sub-optimality %.2f (guarantee %.1f)\n",
		out.TotalCost, opt, out.SubOpt(opt), guar)
	printSweepStats(src)
	memSummary()
	if chaos != nil {
		fmt.Printf("chaos: seed=%d rate=%g, %d faults fired, %d retries, wasted cost %.4g\n",
			chaosSeed, chaosRate, chaos.Count(), out.Retries, out.WastedCost)
		if len(out.Degradations) == 0 {
			fmt.Println("  no degradations")
		}
		for _, d := range out.Degradations {
			if d.Exec > 0 {
				fmt.Printf("  exec %d: %s (%s, wasted %.4g)\n", d.Exec, d.Kind, d.Detail, d.WastedCost)
			} else {
				fmt.Printf("  %s (%s)\n", d.Kind, d.Detail)
			}
		}
	}
	return nil
}

// serveConfig carries the serve subcommand's flags.
type serveConfig struct {
	addr, pprofAddr             string
	workloads, snapshotDir      string
	essMode                     string
	scale                       float64
	res, maxConcurrent          int
	maxQueue, maxExecWorkers    int
	defaultTimeout, execLatency time.Duration
	chaosSeed                   uint64
	chaosRate                   float64
	chaosAllowRequest           bool
	peers, selfURL              string
	cacheBytes                  int64
	outcomeCacheBytes           int64
}

// serve runs the long-running discovery service until SIGTERM/SIGINT,
// then drains gracefully: readiness flips, in-flight requests finish,
// and the listener closes.
func serve(sc serveConfig) error {
	var peerList []string
	if sc.peers != "" {
		for _, p := range strings.Split(sc.peers, ",") {
			if p = strings.TrimSpace(strings.TrimSuffix(p, "/")); p != "" {
				peerList = append(peerList, p)
			}
		}
	}
	s, err := server.New(server.Config{
		Workloads:          strings.Split(sc.workloads, ","),
		Scale:              sc.scale,
		Res:                sc.res,
		ESSMode:            sc.essMode,
		SnapshotDir:        sc.snapshotDir,
		MaxConcurrent:      sc.maxConcurrent,
		MaxQueue:           sc.maxQueue,
		MaxExecWorkers:     sc.maxExecWorkers,
		DefaultTimeout:     sc.defaultTimeout,
		ExecLatency:        sc.execLatency,
		FaultSeed:          sc.chaosSeed,
		FaultRate:          sc.chaosRate,
		AllowRequestFaults: sc.chaosAllowRequest,
		PprofAddr:          sc.pprofAddr,
		Peers:              peerList,
		SelfURL:            strings.TrimSuffix(sc.selfURL, "/"),
		CacheBytes:         sc.cacheBytes,
		OutcomeCacheBytes:  sc.outcomeCacheBytes,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", sc.addr)
	if err != nil {
		return err
	}
	fmt.Printf("rqp serve: listening on http://%s (workloads %s; compiling in background)\n",
		ln.Addr(), sc.workloads)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return s.Serve(ctx, ln)
}

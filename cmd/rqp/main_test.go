package main

import (
	"os"
	"strings"
	"testing"
)

// capture redirects stdout while f runs.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	return string(buf[:n]), ferr
}

func TestRunList(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"list"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"4D_Q91", "JOB_Q1a", "EQ", "6D_Q18"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %s", want)
		}
	}
}

func TestRunMissingCommand(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing command should error")
	}
}

func TestRunUnknownCommand(t *testing.T) {
	if err := run([]string{"zzz"}); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nosuch", "list"}); err == nil {
		t.Fatal("bad flag should error")
	}
}

func TestRunDiscover(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-res", "6", "discover", "-query", "2D_Q91", "-alg", "spillbound", "-qa", "0.01,0.1"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"2D_Q91 via spillbound", "sub-optimality", "guarantee 10.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("discover output missing %q in:\n%s", want, out)
		}
	}
}

func TestRunDiscoverDefaultsToMidpoint(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-res", "5", "discover", "-query", "EQ", "-alg", "alignedbound"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "EQ via alignedbound") {
		t.Errorf("output:\n%s", out)
	}
}

func TestRunDiscoverErrors(t *testing.T) {
	if err := run([]string{"discover", "-query", "nosuch"}); err == nil {
		t.Fatal("unknown query should error")
	}
	if err := run([]string{"-res", "5", "discover", "-query", "EQ", "-qa", "0.1"}); err == nil {
		t.Fatal("wrong qa arity should error")
	}
	if err := run([]string{"-res", "5", "discover", "-query", "EQ", "-qa", "a,b"}); err == nil {
		t.Fatal("non-numeric qa should error")
	}
	if err := run([]string{"-res", "5", "discover", "-query", "EQ", "-alg", "nosuch"}); err == nil {
		t.Fatal("unknown algorithm should error")
	}
}

func TestRunMSO(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-res", "6", "-stride", "2", "mso", "-query", "2D_Q91"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"2D_Q91 via spillbound: MSOe", "ASO", "sweep:", "runtime:"} {
		if !strings.Contains(out, want) {
			t.Errorf("mso output missing %q in:\n%s", want, out)
		}
	}
}

func TestRunMSOExactSweep(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-res", "5", "-exact", "mso", "-query", "EQ", "-alg", "planbouquet"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sweep: eager-exact") {
		t.Errorf("exact sweep not reported:\n%s", out)
	}
}

func TestRunProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := dir+"/cpu.prof", dir+"/mem.prof"
	_, err := capture(t, func() error {
		return run([]string{"-res", "5", "-cpuprofile", cpu, "-memprofile", mem, "discover", "-query", "EQ"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", p, err)
		}
	}
}

func TestRunExplain(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-res", "6", "explain", "-query", "2D_Q91", "-qa", "0.01,0.1"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"optimal plan", "pipelines (execution order)", "spill-node identification"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q", want)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-res", "5", "fig9"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Fig. 9") || !strings.Contains(out, "6D_Q91") {
		t.Errorf("fig9 output wrong:\n%s", out)
	}
}

package main

import (
	"os"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
BenchmarkSpaceBuild2DQ91-8      3   31300000 ns/op
BenchmarkSpaceBuild6D           3  293000000 ns/op   1220 DP-calls   12.81 DP-reduction
BenchmarkMSOSweepSpillBound-8   3     335000 ns/op   2.894 MSOe
PASS
`

func TestParseBench(t *testing.T) {
	benches, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 3 {
		t.Fatalf("parsed %d benchmarks: %v", len(benches), benches)
	}
	if b := benches["SpaceBuild2DQ91"]; b.NsPerOp != 31300000 {
		t.Errorf("2D ns/op = %v", b.NsPerOp)
	}
	if b := benches["SpaceBuild6D"]; b.Metrics["DP-calls"] != 1220 || b.Metrics["DP-reduction"] != 12.81 {
		t.Errorf("6D metrics = %v", b.Metrics)
	}
	if b := benches["MSOSweepSpillBound"]; b.Metrics["MSOe"] != 2.894 {
		t.Errorf("MSOe = %v", b.Metrics)
	}
}

func TestRunAppendsAndDiffs(t *testing.T) {
	out := t.TempDir() + "/bench.json"
	var sink strings.Builder
	if err := run([]string{"-label", "before", "-out", out}, strings.NewReader(sample), &sink); err != nil {
		t.Fatal(err)
	}
	after := strings.Replace(sample, "31300000", "4500000", 1)
	sink.Reset()
	if err := run([]string{"-label", "after", "-out", out}, strings.NewReader(after), &sink); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sink.String(), "6.96x") {
		t.Errorf("diff output missing speedup:\n%s", sink.String())
	}
	l, err := load(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Runs) != 2 || l.Runs[0].Label != "before" || l.Runs[1].Label != "after" {
		t.Fatalf("ledger runs = %+v", l.Runs)
	}
}

func TestRunRejectsMissingLabelAndEmptyInput(t *testing.T) {
	var sink strings.Builder
	if err := run([]string{"-out", os.DevNull}, strings.NewReader(sample), &sink); err == nil {
		t.Error("missing -label should error")
	}
	if err := run([]string{"-label", "x", "-out", os.DevNull}, strings.NewReader("PASS\n"), &sink); err == nil {
		t.Error("empty input should error")
	}
}

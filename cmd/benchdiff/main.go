// Command benchdiff records `go test -bench` results into a JSON
// ledger and reports deltas against the previous recorded run, so perf
// regressions in the ESS compilation path show up in review instead of
// in production. The checked-in ledger is BENCH_ess.json at the repo
// root.
//
// Usage:
//
//	go test -bench 'SpaceBuild|Discover|Contours|MSOSweep' -benchtime 3x . |
//	    go run ./cmd/benchdiff -label pr2 -out BENCH_ess.json
//	go run ./cmd/benchdiff -in bench.txt -label seed -out BENCH_ess.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Entry is one benchmark's result within a run.
type Entry struct {
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds extra b.ReportMetric values by unit (e.g.
	// "DP-calls", "MSOe").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Run is one labeled benchmark invocation.
type Run struct {
	Label      string           `json:"label"`
	RecordedAt string           `json:"recorded_at"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// Ledger is the on-disk history.
type Ledger struct {
	Runs []Run `json:"runs"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	label := fs.String("label", "", "label for this run (required)")
	out := fs.String("out", "BENCH_ess.json", "JSON ledger to append to")
	in := fs.String("in", "-", "benchmark output to parse (- = stdin)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *label == "" {
		return fmt.Errorf("-label is required")
	}

	src := stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	benches, err := parseBench(src)
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}

	ledger, err := load(*out)
	if err != nil {
		return err
	}
	if len(ledger.Runs) > 0 {
		diff(stdout, ledger.Runs[len(ledger.Runs)-1], benches, *label)
	}
	ledger.Runs = append(ledger.Runs, Run{
		Label:      *label,
		RecordedAt: time.Now().UTC().Format(time.RFC3339),
		Benchmarks: benches,
	})
	return save(*out, ledger)
}

// parseBench extracts "BenchmarkName-P  N  v unit [v unit]..." lines.
func parseBench(r io.Reader) (map[string]Entry, error) {
	out := map[string]Entry{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		e := Entry{Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if fields[i+1] == "ns/op" {
				e.NsPerOp = v
			} else {
				e.Metrics[fields[i+1]] = v
			}
		}
		if len(e.Metrics) == 0 {
			e.Metrics = nil
		}
		out[name] = e
	}
	return out, sc.Err()
}

// diff prints the per-benchmark speedup of new results over the
// previous run.
func diff(w io.Writer, prev Run, benches map[string]Entry, label string) {
	names := make([]string, 0, len(benches))
	for n := range benches {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-28s %14s %14s %9s\n", "benchmark", prev.Label, label, "speedup")
	for _, n := range names {
		cur := benches[n]
		old, ok := prev.Benchmarks[n]
		if !ok || old.NsPerOp == 0 {
			fmt.Fprintf(w, "%-28s %14s %14s %9s\n", n, "-", fmtNs(cur.NsPerOp), "-")
			continue
		}
		fmt.Fprintf(w, "%-28s %14s %14s %8.2fx\n",
			n, fmtNs(old.NsPerOp), fmtNs(cur.NsPerOp), old.NsPerOp/cur.NsPerOp)
	}
}

// fmtNs renders nanoseconds human-readably.
func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

func load(path string) (*Ledger, error) {
	var l Ledger
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &l, nil
	}
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(data, &l); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &l, nil
}

func save(path string, l *Ledger) error {
	data, err := json.MarshalIndent(l, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Quickstart: build the ESS for the paper's example query EQ, run
// SpillBound for a query instance whose true join selectivities are
// unknown to the optimizer, and show the discovery trace and its
// bounded sub-optimality.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/core/discovery"
	"repro/internal/workload"
)

func main() {
	// 1. Pick a workload query: EQ joins store_sales ⋈ item ⋈ customer
	//    with two error-prone join predicates (D = 2).
	spec := workload.EQ()
	fmt.Printf("query %s (D=%d)\n%s\n\n", spec.Name, spec.D, spec.SQL)

	// 2. Build the search space: the optimizer is invoked at every grid
	//    location of the 2-D selectivity space to get <q, Pq, Cost(Pq,q)>.
	space, err := spec.Space(1.0, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ESS: %d locations, %d POSP plans, %d iso-cost contours, cost range [%.3g, %.3g]\n\n",
		space.Grid.NumPoints(), space.NumPlans(), len(space.Contours), space.Cmin, space.Cmax)

	// 3. Pretend the query's true selectivities are (0.02, 0.3) — far
	//    from what any estimator would guess.
	qa := int32(space.Grid.Linear([]int{
		space.Grid.NearestIndex(0.02),
		space.Grid.NearestIndex(0.3),
	}))

	// 4. Compile once, run many: Compile freezes the anorexic reduction
	//    and alignment planner into an immutable artifact; every
	//    discovery then gets its own cheap Run, so any number can share
	//    the artifact concurrently.
	compiled, err := core.Compile(space, core.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// 5. Run SpillBound: selectivities are discovered, not estimated.
	out, err := compiled.NewRun().Discover(core.SpillBound, qa)
	if err != nil {
		log.Fatal(err)
	}
	for i, st := range out.Steps {
		mode := "full"
		if st.Phase == discovery.PhaseSpill {
			mode = fmt.Sprintf("spill(dim %d)", st.Dim)
		}
		fmt.Printf("step %d: contour IC%d, plan P%d, %s, budget %.4g → cost %.4g, completed=%v\n",
			i+1, st.Contour, st.PlanID, mode, st.Budget, st.Cost, st.Completed)
	}

	// 6. The whole point: bounded sub-optimality, known upfront from D.
	opt := space.PointCost[qa]
	g, _ := compiled.Guarantee(core.SpillBound)
	fmt.Printf("\ntotal cost %.4g vs optimal %.4g → sub-optimality %.2f (guarantee D²+3D = %.0f)\n",
		out.TotalCost, opt, out.SubOpt(opt), g)
}

// JOB benchmark (§6.5): runs JOB query 1a over the IMDB-like schema and
// contrasts the native optimizer's worst-case MSO with SpillBound and
// AlignedBound — the experiment where estimation-based optimization
// collapses and discovery-based processing stays within single digits
// of optimal.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mso"
	"repro/internal/workload"
)

func main() {
	spec := workload.JOBQ1a()
	fmt.Printf("%s over the IMDB-like schema (D=%d)\n%s\n\n", spec.Name, spec.D, spec.SQL)

	space, err := spec.Space(1.0, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ESS: %d locations, %d POSP plans, %d contours\n\n",
		space.Grid.NumPoints(), space.NumPlans(), len(space.Contours))

	sess := core.NewSession(space)
	native := sess.NativeWorstCaseMSO(mso.Options{})
	sb, err := sess.MSO(core.SpillBound, mso.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ab, err := sess.MSO(core.AlignedBound, mso.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-28s %10s %8s\n", "approach", "MSOe", "ASO")
	fmt.Printf("%-28s %10.1f %8.1f\n", "native optimizer (worst qe)", native.MSO, native.ASO)
	fmt.Printf("%-28s %10.1f %8.2f\n", "SpillBound", sb.MSO, sb.ASO)
	fmt.Printf("%-28s %10.1f %8.2f\n", "AlignedBound", ab.MSO, ab.ASO)

	fmt.Printf("\nnative/SpillBound worst-case ratio: %.0fx\n", native.MSO/sb.MSO)
}

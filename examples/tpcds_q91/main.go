// TPC-DS Q91 walkthrough: the paper's running example (Fig. 7 and
// Table 3). Runs 2D-SpillBound at the paper's qa = (0.04, 0.1), prints
// the Manhattan discovery trace, then compares all three robust
// algorithms and the native optimizer at the same location.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/core/discovery"
	"repro/internal/mso"
	"repro/internal/workload"
)

func main() {
	spec, err := workload.ByName("2D_Q91")
	if err != nil {
		log.Fatal(err)
	}
	space, err := spec.Space(1.0, 20)
	if err != nil {
		log.Fatal(err)
	}

	xi := space.Grid.NearestIndex(0.04)
	yi := space.Grid.NearestIndex(0.1)
	qa := int32(space.Grid.Linear([]int{xi, yi}))
	fmt.Printf("2D_Q91: qa = (%.3g, %.3g), optimal cost %.4g\n\n",
		space.Grid.Vals[xi], space.Grid.Vals[yi], space.PointCost[qa])

	sess := core.NewSession(space)

	// The Fig. 7 trace, with the running location after every step.
	out, err := sess.Discover(core.SpillBound, qa)
	if err != nil {
		log.Fatal(err)
	}
	qrun := []string{"smin", "smin"}
	fmt.Println("SpillBound trace (Fig. 7):")
	for _, st := range out.Steps {
		if st.Phase == discovery.PhaseSpill && st.LearnedIdx >= 0 {
			qrun[st.Dim] = fmt.Sprintf("%.3g", space.Grid.Vals[st.LearnedIdx])
		}
		fmt.Printf("  IC%-2d plan P%-3d %-14s q_run=(%s, %s)\n",
			st.Contour, st.PlanID, string(st.Phase), qrun[0], qrun[1])
	}
	fmt.Printf("  → total %.4g, sub-optimality %.2f\n\n", out.TotalCost, out.SubOpt(space.PointCost[qa]))

	// All approaches at this location.
	fmt.Println("approach comparison at qa:")
	for _, alg := range []core.Algorithm{core.PlanBouquet, core.SpillBound, core.AlignedBound} {
		o, err := sess.Discover(alg, qa)
		if err != nil {
			log.Fatal(err)
		}
		g, _ := sess.Guarantee(alg)
		fmt.Printf("  %-12s sub-opt %5.2f (guarantee %5.1f, %d executions)\n",
			alg, o.SubOpt(space.PointCost[qa]), g, len(o.Steps))
	}
	native := mso.NativeAt(space, int32(space.Grid.Origin()), mso.Options{})
	for i, p := range native.Points {
		if p == qa {
			fmt.Printf("  %-12s sub-opt %5.2f (no guarantee)\n", "native@origin", native.SubOpts[i])
		}
	}
}

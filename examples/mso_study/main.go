// MSO study: exhaustively evaluates the empirical MSO and ASO of
// PlanBouquet, SpillBound, and AlignedBound on a slice of the paper's
// benchmark suite, next to their a-priori guarantees and the native
// optimizer's worst case (Figs. 8, 10, 11, 13 in miniature).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mso"
	"repro/internal/workload"
)

func main() {
	queries := []string{"2D_Q91", "3D_Q15", "3D_Q96", "4D_Q91"}
	fmt.Printf("%-8s %3s | %8s %8s | %8s %8s %8s | %10s\n",
		"query", "D", "PB MSOg", "SB MSOg", "PB MSOe", "SB MSOe", "AB MSOe", "native MSO")
	for _, name := range queries {
		spec, err := workload.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		space, err := spec.Space(1.0, 7)
		if err != nil {
			log.Fatal(err)
		}
		sess := core.NewSession(space)
		pbG, _ := sess.Guarantee(core.PlanBouquet)
		sbG, _ := sess.Guarantee(core.SpillBound)
		pb, err := sess.MSO(core.PlanBouquet, mso.Options{})
		if err != nil {
			log.Fatal(err)
		}
		sb, err := sess.MSO(core.SpillBound, mso.Options{})
		if err != nil {
			log.Fatal(err)
		}
		ab, err := sess.MSO(core.AlignedBound, mso.Options{})
		if err != nil {
			log.Fatal(err)
		}
		native := sess.NativeWorstCaseMSO(mso.Options{})
		fmt.Printf("%-8s %3d | %8.1f %8.1f | %8.2f %8.2f %8.2f | %10.1f\n",
			name, spec.D, pbG, sbG, pb.MSO, sb.MSO, ab.MSO, native.MSO)
	}
	fmt.Println("\nEvery robust algorithm stays within its guarantee; the native")
	fmt.Println("optimizer's worst case is orders of magnitude beyond all of them.")
}

// Alignment study: profiles contour alignment (Table 2) for a benchmark
// query, then shows how AlignedBound converts alignment into fewer
// budgeted executions than SpillBound on the locations where it matters.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/core/alignedbound"
	"repro/internal/workload"
)

func main() {
	spec, err := workload.ByName("3D_Q96")
	if err != nil {
		log.Fatal(err)
	}
	space, err := spec.Space(1.0, 8)
	if err != nil {
		log.Fatal(err)
	}
	sess := core.NewSession(space)

	// Per-contour alignment profile (Table 2's raw data).
	prof := sess.Planner().Profile()
	fmt.Printf("%s: contour alignment profile\n", spec.Name)
	for _, ca := range prof {
		status := fmt.Sprintf("induced at Δ=%.2f", ca.MinPenalty)
		if ca.Native {
			status = "natively aligned"
		} else if math.IsInf(ca.MinPenalty, 1) {
			status = "not alignable from pool"
		}
		fmt.Printf("  IC%-2d %s\n", ca.Contour, status)
	}
	for _, thr := range []float64{1, 1.2, 1.5, 2.0} {
		fmt.Printf("  aligned within Δ≤%.1f: %.0f%%\n", thr, 100*alignedbound.AlignedFraction(prof, thr))
	}

	// Execution counts along a diagonal of locations. Aligned contours
	// let AB cover several epps with one leader execution; induced
	// alignment, on the other hand, can retry with penalty-inflated
	// budgets, so AB is not uniformly cheaper than SB per discovery.
	fmt.Println("\nexecutions per discovery (SB vs AB) along the grid diagonal:")
	for k := 0; k < space.Grid.Res; k += 2 {
		qa := int32(space.Grid.Linear([]int{k, k, k}))
		sb, err := sess.Discover(core.SpillBound, qa)
		if err != nil {
			log.Fatal(err)
		}
		ab, err := sess.Discover(core.AlignedBound, qa)
		if err != nil {
			log.Fatal(err)
		}
		opt := space.PointCost[qa]
		fmt.Printf("  sel=%.1e  SB: %2d execs (sub-opt %5.2f)   AB: %2d execs (sub-opt %5.2f)\n",
			space.Grid.Vals[k], len(sb.Steps), sb.SubOpt(opt), len(ab.Steps), ab.SubOpt(opt))
	}
	fmt.Printf("\nmax partition penalty π* observed: %.2f (Table 4's metric)\n", sess.MaxPenalty())
}

package experiments

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/mso"
	"repro/internal/workload"
)

// BakeoffOptions configures a strategy bake-off over one workload.
type BakeoffOptions struct {
	// Strategies are the registry names to compare (default: every
	// registered strategy, in registration order).
	Strategies []string
	// ChaosSeed seeds the per-strategy fault schedule. Every strategy
	// gets a fresh base injector from this seed and every grid location
	// its own Fork(qa) substream, so the schedule a location sees is a
	// function of (seed, rate, qa) only — identical across strategies
	// and across runs, the "same storm for everyone" contract.
	ChaosSeed uint64
	// ChaosRate arms every fault-injection site at this probability for
	// the chaos sweep (0 disables the chaos sweep; the chaos columns
	// then repeat the clean ones with zero degradations).
	ChaosRate float64
	// Stride samples every Stride-th grid location (default 1).
	Stride int
	// Workers bounds sweep parallelism (default NumCPU).
	Workers int
}

// BakeoffRow is one strategy's scorecard.
type BakeoffRow struct {
	// Strategy is the registry name.
	Strategy string
	// Guarantee is the a-priori MSO bound; HasGuarantee is false for the
	// heuristic strategies, which claim none.
	Guarantee    float64
	HasGuarantee bool
	// MSOe and ASO are the fault-free empirical maximum and average
	// sub-optimality over the sweep.
	MSOe, ASO float64
	// ChaosMSOe is the empirical MSO under the armed fault schedule
	// (retries and wasted work included in the bill).
	ChaosMSOe float64
	// WastedCost totals the cost of abandoned execution attempts across
	// the chaos sweep.
	WastedCost float64
	// Degradations and Retries count the resilient driver's ledger
	// entries across the chaos sweep.
	Degradations, Retries int
}

// BakeoffResult is the comparative scorecard of one bake-off.
type BakeoffResult struct {
	// Workload names the query swept.
	Workload string
	// D and Res describe the grid.
	D, Res int
	// Points is the number of locations each strategy was swept over.
	Points int
	// ChaosSeed and ChaosRate echo the options.
	ChaosSeed uint64
	ChaosRate float64
	// Rows are the per-strategy scorecards, in option order.
	Rows []BakeoffRow
}

// Bakeoff sweeps every requested strategy over the workload's full grid
// twice — fault-free, then under the deterministic chaos schedule — and
// assembles the comparative scorecard. All strategies share the one
// Compiled artifact and see identical per-location fault substreams, so
// the rows differ only by policy.
func Bakeoff(c *core.Compiled, workloadName string, opts BakeoffOptions) (*BakeoffResult, error) {
	names := opts.Strategies
	if len(names) == 0 {
		names = core.Strategies()
	}
	for _, name := range names {
		if _, ok := core.StrategyByName(name); !ok {
			return nil, fmt.Errorf("bakeoff: unknown strategy %q (registered: %s)",
				name, strings.Join(core.StrategyNamesSorted(), ", "))
		}
		// Pay every strategy's compile-time step before timing-sensitive
		// sweeps, and surface preparation errors up front.
		if err := c.PrepareStrategy(name); err != nil {
			return nil, err
		}
	}
	g := c.Space.Grid
	res := &BakeoffResult{
		Workload: workloadName, D: g.D, Res: g.Res,
		ChaosSeed: opts.ChaosSeed, ChaosRate: opts.ChaosRate,
	}
	sweepOpts := mso.Options{Stride: opts.Stride, Workers: opts.Workers}
	for _, name := range names {
		row := BakeoffRow{Strategy: name}
		row.Guarantee, row.HasGuarantee = c.StrategyGuarantee(name)

		clean, err := mso.Sweep(c.Space, func(qa int32) (*core.Outcome, error) {
			return c.NewRun().DiscoverStrategy(name, qa)
		}, sweepOpts)
		if err != nil {
			return nil, fmt.Errorf("bakeoff: %s clean sweep: %w", name, err)
		}
		row.MSOe, row.ASO = clean.MSO, clean.ASO
		res.Points = len(clean.Points)

		if opts.ChaosRate > 0 {
			// Per-location ledgers land in preallocated slots and are
			// summed in grid order afterwards, so the totals (float sums
			// included) are bit-for-bit independent of worker scheduling.
			n := g.NumPoints()
			wasted := make([]float64, n)
			degs := make([]int, n)
			retries := make([]int, n)
			base := faultinject.NewUniform(opts.ChaosSeed, opts.ChaosRate)
			chaos, err := mso.Sweep(c.Space, func(qa int32) (*core.Outcome, error) {
				out, err := c.NewRun().WithFaults(base.Fork(uint64(qa))).DiscoverStrategy(name, qa)
				if out != nil {
					wasted[qa] = out.WastedCost
					degs[qa] = len(out.Degradations)
					retries[qa] = out.Retries
				}
				return out, err
			}, sweepOpts)
			if err != nil {
				return nil, fmt.Errorf("bakeoff: %s chaos sweep: %w", name, err)
			}
			row.ChaosMSOe = chaos.MSO
			for pt := 0; pt < n; pt++ {
				row.WastedCost += wasted[pt]
				row.Degradations += degs[pt]
				row.Retries += retries[pt]
			}
		} else {
			row.ChaosMSOe = clean.MSO
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// BakeoffFor is the harness entry point: it resolves the workload,
// builds and compiles its space through the harness caches, and runs
// the bake-off.
func (h *Harness) BakeoffFor(workloadName string, opts BakeoffOptions) (*BakeoffResult, error) {
	spec, err := workload.ByName(workloadName)
	if err != nil {
		return nil, err
	}
	c, err := h.compiled(spec)
	if err != nil {
		return nil, err
	}
	return Bakeoff(c, workloadName, opts)
}

// guaranteeCell renders a row's a-priori bound ("—" when none claimed).
func (r BakeoffRow) guaranteeCell() string {
	if !r.HasGuarantee {
		return "—"
	}
	return f1(r.Guarantee)
}

// Report renders the scorecard as the standard experiments table.
func (r *BakeoffResult) Report() *Report {
	rep := &Report{
		Title: fmt.Sprintf("Bake-off — robust-QP strategies on %s (%dD, res %d)",
			r.Workload, r.D, r.Res),
		Header: []string{"strategy", "MSOg", "MSOe", "ASO", "chaos MSOe",
			"wasted cost", "degradations", "retries"},
	}
	for _, row := range r.Rows {
		rep.AddRow(row.Strategy, row.guaranteeCell(), f2(row.MSOe), f2(row.ASO),
			f2(row.ChaosMSOe), fmt.Sprintf("%.4g", row.WastedCost),
			fmt.Sprintf("%d", row.Degradations), fmt.Sprintf("%d", row.Retries))
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("%d locations per sweep; chaos seed %d, rate %g; every strategy sees the identical per-location fault substream (Fork(qa))",
			r.Points, r.ChaosSeed, r.ChaosRate),
		"MSOg — is claimed by no heuristic strategy; their worst case is unbounded by design")
	return rep
}

// Markdown renders the scorecard as a GitHub-flavored markdown table
// for EXPERIMENTS.md.
func (r *BakeoffResult) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Workload %s (%dD, res %d), %d locations per sweep; chaos seed %d, rate %g.\n\n",
		r.Workload, r.D, r.Res, r.Points, r.ChaosSeed, r.ChaosRate)
	b.WriteString("| strategy | MSOg | MSOe | ASO | chaos MSOe | wasted cost | degradations | retries |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | %.4g | %d | %d |\n",
			row.Strategy, row.guaranteeCell(), f2(row.MSOe), f2(row.ASO),
			f2(row.ChaosMSOe), row.WastedCost, row.Degradations, row.Retries)
	}
	return b.String()
}

// Bake-off section markers in EXPERIMENTS.md: the text between them is
// machine-regenerated by `rqp bakeoff`, everything outside is
// hand-maintained.
const (
	bakeoffBeginMarker = "<!-- bakeoff:begin -->"
	bakeoffEndMarker   = "<!-- bakeoff:end -->"
)

// UpdateExperimentsFile rewrites the bake-off section of the given
// markdown file in place: the content between the bakeoff markers is
// replaced with this result's table (the markers and a section heading
// are appended when absent).
func (r *BakeoffResult) UpdateExperimentsFile(path string) error {
	section := bakeoffBeginMarker + "\n" + r.Markdown() + bakeoffEndMarker
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("bakeoff: reading %s: %w", path, err)
	}
	text := string(data)
	begin := strings.Index(text, bakeoffBeginMarker)
	end := strings.Index(text, bakeoffEndMarker)
	if begin >= 0 && end > begin {
		text = text[:begin] + section + text[end+len(bakeoffEndMarker):]
	} else if begin < 0 && end < 0 {
		if !strings.HasSuffix(text, "\n") {
			text += "\n"
		}
		text += "\n## Strategy bake-off (generated by `rqp bakeoff`)\n\n" + section + "\n"
	} else {
		return fmt.Errorf("bakeoff: %s has unbalanced bakeoff markers", path)
	}
	return os.WriteFile(path, []byte(text), 0o644)
}

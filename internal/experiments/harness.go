package experiments

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/ess"
	"repro/internal/mso"
	"repro/internal/workload"
)

// Options configures the experiment harness.
type Options struct {
	// Scale is the data/catalog scale factor (default 1.0).
	Scale float64
	// Res overrides every query's grid resolution when > 0.
	Res int
	// Lambda is PlanBouquet's anorexic reduction threshold (default 0.2).
	Lambda float64
	// StrideHighD samples every n-th location in 5D/6D MSO sweeps to
	// bound runtime (default 3; 1 = exhaustive).
	StrideHighD int
	// Exact forces the exact one-DP-per-point POSP sweep when building
	// search spaces instead of the recost-first pipeline.
	Exact bool
	// Theta is the recost sweep's fallback gate width (0 = ess default;
	// ess.ThetaExact disables recosting).
	Theta float64
	// ExecWorkers is the intra-query worker count handed to the real
	// vectorized executor in wall-clock experiments (default 1). Modeled
	// costs are worker-count invariant, so this changes wall-clock
	// latency only, never a reported cost number.
	ExecWorkers int
	// EssMode selects the contour provider behind compiled artifacts:
	// "eager" (default, full POSP sweep up front) or "lazy" (demand-driven
	// discovery-time construction). Experiments that read the dense cost
	// surface directly always build eagerly.
	EssMode string
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 1.0
	}
	if o.Lambda == 0 {
		o.Lambda = core.DefaultLambda
	}
	if o.StrideHighD == 0 {
		o.StrideHighD = 3
	}
	if o.ExecWorkers < 1 {
		o.ExecWorkers = 1
	}
	if o.EssMode == "" {
		o.EssMode = "eager"
	}
	return o
}

// Harness caches built search spaces and compiled artifacts across
// experiments so that running the full battery builds and compiles each
// query's ESS only once; every experiment's per-location discoveries
// then fan out over a worker pool sharing that one Compiled.
type Harness struct {
	// Opts are the effective options.
	Opts Options

	mu        sync.Mutex
	spaces    map[string]*ess.Space
	artifacts map[string]*core.Compiled
}

// New creates a harness.
func New(opts Options) *Harness {
	return &Harness{
		Opts:      opts.withDefaults(),
		spaces:    make(map[string]*ess.Space),
		artifacts: make(map[string]*core.Compiled),
	}
}

// space returns the (cached) search space of a workload spec.
func (h *Harness) space(spec workload.Spec) (*ess.Space, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if s, ok := h.spaces[spec.Name]; ok {
		return s, nil
	}
	s, err := spec.SpaceWith(h.Opts.Scale, ess.Config{
		Res: h.Opts.Res, Exact: h.Opts.Exact, Theta: h.Opts.Theta,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: building %s: %w", spec.Name, err)
	}
	h.spaces[spec.Name] = s
	return s, nil
}

// compiled returns the (cached) compiled artifact of a workload spec,
// backed by the Options.EssMode contour provider.
func (h *Harness) compiled(spec workload.Spec) (*core.Compiled, error) {
	switch h.Opts.EssMode {
	case "eager":
	case "lazy":
		h.mu.Lock()
		defer h.mu.Unlock()
		if c, ok := h.artifacts[spec.Name]; ok {
			return c, nil
		}
		ls, err := spec.LazySpaceWith(h.Opts.Scale, ess.Config{
			Res: h.Opts.Res, Exact: h.Opts.Exact, Theta: h.Opts.Theta,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: building %s (lazy): %w", spec.Name, err)
		}
		c, err := core.CompileSource(ls, core.CompileOptions{Lambda: h.Opts.Lambda})
		if err != nil {
			return nil, fmt.Errorf("experiments: compiling %s: %w", spec.Name, err)
		}
		h.artifacts[spec.Name] = c
		return c, nil
	default:
		return nil, fmt.Errorf("experiments: unknown EssMode %q (eager|lazy)", h.Opts.EssMode)
	}
	s, err := h.space(spec)
	if err != nil {
		return nil, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if c, ok := h.artifacts[spec.Name]; ok {
		return c, nil
	}
	c, err := core.Compile(s, core.CompileOptions{Lambda: h.Opts.Lambda})
	if err != nil {
		return nil, fmt.Errorf("experiments: compiling %s: %w", spec.Name, err)
	}
	h.artifacts[spec.Name] = c
	return c, nil
}

// sweepOpts returns the MSO sweep options for a query of dimension d.
func (h *Harness) sweepOpts(d int) mso.Options {
	opts := mso.Options{}
	if d >= 5 {
		opts.Stride = h.Opts.StrideHighD
	}
	return opts
}

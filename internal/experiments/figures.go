package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/core/alignedbound"
	"repro/internal/core/discovery"
	"repro/internal/core/spillbound"
	"repro/internal/mso"
	"repro/internal/workload"
)

// Fig3OCS samples the optimal cost surface of the example query EQ
// (Fig. 3): a grid sample of (sel_x, sel_y, optimal cost, plan).
func (h *Harness) Fig3OCS() (*Report, error) {
	s, err := h.space(workload.EQ())
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Title:  "Fig. 3 — Optimal Cost Surface for EQ (sampled)",
		Header: []string{"sel_x", "sel_y", "opt_cost", "plan"},
	}
	g := s.Grid
	step := g.Res / 6
	if step < 1 {
		step = 1
	}
	for x := 0; x < g.Res; x += step {
		for y := 0; y < g.Res; y += step {
			pt := g.Linear([]int{x, y})
			rep.AddRow(
				fmt.Sprintf("%.1e", g.Vals[x]),
				fmt.Sprintf("%.1e", g.Vals[y]),
				f1(s.PointCost[pt]),
				s.Plan(s.PointPlan[pt]).Sig,
			)
		}
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("full surface: %d locations, %d POSP plans, cost range [%.3g, %.3g], %d contours",
			g.NumPoints(), s.NumPlans(), s.Cmin, s.Cmax, len(s.Contours)))
	return rep, nil
}

// Fig7Trace reproduces the 2D-SpillBound execution trace on Q91
// (Fig. 7): the sequence of budgeted executions for a query located off
// both axes, with the Manhattan profile of the running location.
func (h *Harness) Fig7Trace() (*Report, error) {
	spec, err := workload.ByName("2D_Q91")
	if err != nil {
		return nil, err
	}
	s, err := h.space(spec)
	if err != nil {
		return nil, err
	}
	// The paper's qa = (0.04, 0.1); snap to the grid.
	xi := s.Grid.NearestIndex(0.04)
	yi := s.Grid.NearestIndex(0.1)
	qa := int32(s.Grid.Linear([]int{xi, yi}))
	out, err := spillbound.Run(s, discovery.NewSimEngine(s, qa))
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Title: fmt.Sprintf("Fig. 7 — 2D-SpillBound trace on Q91, qa=(%.2g, %.2g)",
			s.Grid.Vals[xi], s.Grid.Vals[yi]),
		Header: []string{"step", "contour", "exec", "dim", "budget", "cost", "learned"},
	}
	for i, st := range out.Steps {
		exec := fmt.Sprintf("P%d", st.PlanID)
		if st.Phase == discovery.PhaseSpill {
			exec = fmt.Sprintf("p%d", st.PlanID) // spill-mode, paper's lowercase
		}
		dim := "-"
		learned := "-"
		if st.Dim >= 0 {
			dim = fmt.Sprintf("%d", st.Dim)
			if st.LearnedIdx >= 0 {
				learned = fmt.Sprintf("%.2g", s.Grid.Vals[st.LearnedIdx])
				if st.Completed {
					learned += " (exact)"
				} else {
					learned = "> " + learned
				}
			}
		}
		rep.AddRow(fmt.Sprintf("%d", i+1), fmt.Sprintf("IC%d", st.Contour),
			exec, dim, f1(st.Budget), f1(st.Cost), learned)
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("total cost %.1f, optimal %.1f, sub-optimality %.2f (bound %d)",
			out.TotalCost, s.PointCost[qa], out.SubOpt(s.PointCost[qa]), int(spillbound.Guarantee(2))))
	return rep, nil
}

// Fig8MSOg compares the MSO guarantees of PlanBouquet (4(1+λ)ρ_red) and
// SpillBound (D²+3D) across the benchmark suite (Fig. 8).
func (h *Harness) Fig8MSOg() (*Report, error) {
	rep := &Report{
		Title:  "Fig. 8 — MSO guarantees (MSOg): PlanBouquet vs SpillBound",
		Header: []string{"query", "D", "rho_red", "PB MSOg", "SB MSOg"},
	}
	for _, spec := range workload.Suite() {
		c, err := h.compiled(spec)
		if err != nil {
			return nil, err
		}
		pb, _ := c.Guarantee(core.PlanBouquet)
		sb, _ := c.Guarantee(core.SpillBound)
		rep.AddRow(spec.Name, fmt.Sprintf("%d", spec.D),
			fmt.Sprintf("%d", c.Reduction().Rho), f1(pb), f1(sb))
	}
	rep.Notes = append(rep.Notes, "PB computed as 4(1+λ)·ρ_red with λ=0.2; SB as D²+3D")
	return rep, nil
}

// Fig9Dimensionality tracks MSOg versus ESS dimensionality on the Q91
// family (Fig. 9).
func (h *Harness) Fig9Dimensionality() (*Report, error) {
	rep := &Report{
		Title:  "Fig. 9 — MSOg vs dimensionality (Q91, D=2..6)",
		Header: []string{"query", "D", "rho_red", "PB MSOg", "SB MSOg"},
	}
	for _, spec := range workload.Q91Family() {
		c, err := h.compiled(spec)
		if err != nil {
			return nil, err
		}
		pb, _ := c.Guarantee(core.PlanBouquet)
		sb, _ := c.Guarantee(core.SpillBound)
		rep.AddRow(spec.Name, fmt.Sprintf("%d", spec.D),
			fmt.Sprintf("%d", c.Reduction().Rho), f1(pb), f1(sb))
	}
	return rep, nil
}

// Fig10MSOe compares the empirical MSO of PB and SB over exhaustive (or
// strided, for 5D/6D) enumeration of the ESS (Fig. 10).
func (h *Harness) Fig10MSOe() (*Report, error) {
	rep := &Report{
		Title:  "Fig. 10 — empirical MSO (MSOe): PlanBouquet vs SpillBound",
		Header: []string{"query", "D", "PB MSOe", "SB MSOe", "PB MSOg", "SB MSOg"},
	}
	for _, spec := range workload.Suite() {
		c, err := h.compiled(spec)
		if err != nil {
			return nil, err
		}
		opts := h.sweepOpts(spec.D)
		pbE, err := c.MSO(core.PlanBouquet, opts)
		if err != nil {
			return nil, err
		}
		sbE, err := c.MSO(core.SpillBound, opts)
		if err != nil {
			return nil, err
		}
		pbG, _ := c.Guarantee(core.PlanBouquet)
		sbG, _ := c.Guarantee(core.SpillBound)
		rep.AddRow(spec.Name, fmt.Sprintf("%d", spec.D),
			f1(pbE.MSO), f1(sbE.MSO), f1(pbG), f1(sbG))
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("5D/6D sweeps use stride %d over the grid", h.Opts.StrideHighD))
	return rep, nil
}

// Fig11ASO compares the average sub-optimality of PB and SB (Fig. 11).
func (h *Harness) Fig11ASO() (*Report, error) {
	rep := &Report{
		Title:  "Fig. 11 — average sub-optimality (ASO): PlanBouquet vs SpillBound",
		Header: []string{"query", "D", "PB ASO", "SB ASO"},
	}
	for _, spec := range workload.Suite() {
		c, err := h.compiled(spec)
		if err != nil {
			return nil, err
		}
		opts := h.sweepOpts(spec.D)
		pbE, err := c.MSO(core.PlanBouquet, opts)
		if err != nil {
			return nil, err
		}
		sbE, err := c.MSO(core.SpillBound, opts)
		if err != nil {
			return nil, err
		}
		rep.AddRow(spec.Name, fmt.Sprintf("%d", spec.D), f2(pbE.ASO), f2(sbE.ASO))
	}
	return rep, nil
}

// Fig12Histogram renders the sub-optimality distribution of PB and SB on
// 4D_Q91 with bucket width 5 (Fig. 12).
func (h *Harness) Fig12Histogram() (*Report, error) {
	spec, err := workload.ByName("4D_Q91")
	if err != nil {
		return nil, err
	}
	c, err := h.compiled(spec)
	if err != nil {
		return nil, err
	}
	pbE, err := c.MSO(core.PlanBouquet, mso.Options{})
	if err != nil {
		return nil, err
	}
	sbE, err := c.MSO(core.SpillBound, mso.Options{})
	if err != nil {
		return nil, err
	}
	pbH := mso.Histogram(pbE.SubOpts, 5)
	sbH := mso.Histogram(sbE.SubOpts, 5)
	rep := &Report{
		Title:  "Fig. 12 — sub-optimality distribution, 4D_Q91 (bucket width 5)",
		Header: []string{"sub-opt range", "PB locations", "PB %", "SB locations", "SB %"},
	}
	n := len(pbH)
	if len(sbH) > n {
		n = len(sbH)
	}
	for i := 0; i < n; i++ {
		var pbC, sbC int
		var pbF, sbF float64
		lo, hi := float64(i)*5, float64(i+1)*5
		if i < len(pbH) {
			pbC, pbF = pbH[i].Count, pbH[i].Frac
		}
		if i < len(sbH) {
			sbC, sbF = sbH[i].Count, sbH[i].Frac
		}
		rep.AddRow(fmt.Sprintf("[%.0f, %.0f)", lo, hi),
			fmt.Sprintf("%d", pbC), pct(pbF), fmt.Sprintf("%d", sbC), pct(sbF))
	}
	return rep, nil
}

// Fig13MSOeAB compares the empirical MSO of SB and AB against the 2D+2
// reference line (Fig. 13).
func (h *Harness) Fig13MSOeAB() (*Report, error) {
	rep := &Report{
		Title:  "Fig. 13 — empirical MSO: SpillBound vs AlignedBound",
		Header: []string{"query", "D", "SB MSOe", "AB MSOe", "2D+2"},
	}
	for _, spec := range workload.Suite() {
		c, err := h.compiled(spec)
		if err != nil {
			return nil, err
		}
		opts := h.sweepOpts(spec.D)
		sbE, err := c.MSO(core.SpillBound, opts)
		if err != nil {
			return nil, err
		}
		abE, err := c.MSO(core.AlignedBound, opts)
		if err != nil {
			return nil, err
		}
		lo, _ := alignedbound.GuaranteeRange(spec.D)
		rep.AddRow(spec.Name, fmt.Sprintf("%d", spec.D),
			f1(sbE.MSO), f1(abE.MSO), f1(lo))
	}
	return rep, nil
}

// JOB evaluates JOB query 1a (§6.5): native optimizer worst-case MSO vs
// SB vs AB.
func (h *Harness) JOB() (*Report, error) {
	spec := workload.JOBQ1a()
	c, err := h.compiled(spec)
	if err != nil {
		return nil, err
	}
	native := c.NativeWorstCaseMSO(mso.Options{})
	sbE, err := c.MSO(core.SpillBound, mso.Options{})
	if err != nil {
		return nil, err
	}
	abE, err := c.MSO(core.AlignedBound, mso.Options{})
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Title:  "§6.5 — JOB benchmark query 1a",
		Header: []string{"approach", "MSOe", "ASO"},
	}
	rep.AddRow("native optimizer (worst-case)", f1(native.MSO), f1(native.ASO))
	rep.AddRow("SpillBound", f1(sbE.MSO), f2(sbE.ASO))
	rep.AddRow("AlignedBound", f1(abE.MSO), f2(abE.ASO))
	rep.Notes = append(rep.Notes,
		"implicit cyclic join predicates dropped as in the paper's work-around")
	return rep, nil
}

package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/faultinject"
)

// HerdOptions configures a Herd run: Concurrency identical /discover
// requests fired simultaneously at a serving replica — the worst-case
// arrival pattern for a compile cache, which the server's singleflight
// coalescing should absorb at the cost of one compile.
type HerdOptions struct {
	// BaseURL is the replica under test (no trailing slash).
	BaseURL string
	// Body is the JSON-encoded /discover request every member sends.
	Body []byte
	// Concurrency is the herd size (default 16).
	Concurrency int
	// MaxRetries bounds how many times one member re-sends after a 429
	// (default 3). Shed responses carry Retry-After; the driver honors
	// it — sleeping at least the advertised interval, stretched by a
	// deterministic jitter so the retried herd does not re-arrive as a
	// single synchronized spike.
	MaxRetries int
	// Seed drives the retry jitter: member i jitters by the substream
	// Fork(i), so a herd replays identically for the same seed.
	Seed uint64
	// WaitCap, when positive, caps one retry sleep (tests compress the
	// multi-second Retry-After intervals; 0 = honor in full).
	WaitCap time.Duration
	// Client is the HTTP client (default http.DefaultClient).
	Client *http.Client
}

func (o HerdOptions) withDefaults() HerdOptions {
	if o.Concurrency <= 0 {
		o.Concurrency = 16
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	} else if o.MaxRetries == 0 {
		o.MaxRetries = 3
	}
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	return o
}

// HerdResult aggregates one Herd run.
type HerdResult struct {
	// Statuses counts final HTTP statuses per code (0 = transport
	// error after all retries).
	Statuses map[int]int
	// Retries is the total number of 429-honoring re-sends; Retried is
	// the number of members that re-sent at least once.
	Retries, Retried int
	// Wall is the elapsed time for the whole herd.
	Wall time.Duration
}

// String renders the result as a one-line summary table row.
func (r *HerdResult) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "wall %v  retries %d (%d member(s))  statuses:", r.Wall.Round(time.Millisecond), r.Retries, r.Retried)
	for _, code := range []int{200, 400, 404, 429, 500, 503, 504, 0} {
		if n := r.Statuses[code]; n > 0 {
			fmt.Fprintf(&b, " %d×%d", n, code)
		}
	}
	return b.String()
}

// Herd fires the configured request herd and reports the status mix
// and retry behavior. 429 responses are retried up to MaxRetries times
// per member, honoring the server's Retry-After with jittered waits;
// every other status (and any transport error) is final for that
// member — the herd driver measures the service's shedding and
// coalescing behavior, it does not mask it.
func Herd(opts HerdOptions) (*HerdResult, error) {
	opts = opts.withDefaults()
	if opts.BaseURL == "" {
		return nil, fmt.Errorf("herd: BaseURL required")
	}
	jitterBase := faultinject.NewUniform(opts.Seed, 0)
	type memberOut struct {
		status  int
		retries int
	}
	outs := make([]memberOut, opts.Concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < opts.Concurrency; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			jit := jitterBase.Fork(uint64(i))
			for attempt := 0; ; attempt++ {
				resp, err := opts.Client.Post(opts.BaseURL+"/discover", "application/json", bytes.NewReader(opts.Body))
				if err != nil {
					outs[i].status = 0
					return
				}
				status := resp.StatusCode
				wait := retryAfter(resp)
				resp.Body.Close()
				if status != http.StatusTooManyRequests || attempt >= opts.MaxRetries {
					outs[i].status = status
					return
				}
				// Honor Retry-After, stretched by jitter in [1.0, 1.5)x so
				// the retried members de-synchronize instead of re-herding.
				wait = time.Duration(float64(wait) * (1 + jit.Jitter(attempt)/2))
				if opts.WaitCap > 0 && wait > opts.WaitCap {
					wait = opts.WaitCap
				}
				outs[i].retries++
				time.Sleep(wait)
			}
		}(i)
	}
	wg.Wait()
	res := &HerdResult{Statuses: make(map[int]int), Wall: time.Since(start)}
	for _, o := range outs {
		res.Statuses[o.status]++
		res.Retries += o.retries
		if o.retries > 0 {
			res.Retried++
		}
	}
	return res, nil
}

// retryAfter extracts the server's advertised retry interval: the
// JSON body's retry_after_ms when present (finer-grained), else the
// Retry-After header in whole seconds, else a 100ms floor.
func retryAfter(resp *http.Response) time.Duration {
	var body struct {
		RetryAfterMS int64 `json:"retry_after_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err == nil && body.RetryAfterMS > 0 {
		return time.Duration(body.RetryAfterMS) * time.Millisecond
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		return time.Duration(secs) * time.Second
	}
	return 100 * time.Millisecond
}

package experiments

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/core/discovery"
	"repro/internal/ess"
	"repro/internal/faultinject"
	"repro/internal/workload"
)

// lazyPair holds the same workload compiled twice: once over the eager
// full-sweep Space and once over the demand-driven LazySpace, both in
// exact mode so the surfaces are bit-for-bit identical by contract.
type lazyPair struct {
	eager, lazy *core.Compiled
	points      int
}

func buildLazyPair(t *testing.T, res int) *lazyPair {
	t.Helper()
	spec, err := workload.ByName("EQ")
	if err != nil {
		t.Fatal(err)
	}
	cfg := ess.Config{Res: res, Exact: true}
	space, err := spec.SpaceWith(0.2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ce, err := core.Compile(space, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ls, err := spec.LazySpaceWith(0.2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := core.CompileSource(ls, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return &lazyPair{eager: ce, lazy: cl, points: space.Grid.NumPoints()}
}

func (p *lazyPair) discover(c *core.Compiled, alg core.Algorithm, qa int32,
	mkFaults func() *faultinject.Injector) (*discovery.Outcome, error) {
	r := c.NewRun()
	if mkFaults != nil {
		r.WithFaults(mkFaults())
	}
	return r.Discover(alg, qa)
}

// compareLazyOutcomes asserts an eager and a lazy outcome are
// equivalent. Pool IDs are assigned in settle order, which necessarily
// differs between a full sweep and demand-driven discovery, so plans
// are compared by structural signature through their respective pools;
// everything else must be bit-for-bit identical.
func (p *lazyPair) compareLazyOutcomes(t *testing.T, name string, eo, lo *discovery.Outcome) {
	t.Helper()
	if len(eo.Steps) != len(lo.Steps) {
		t.Errorf("%s: %d eager steps vs %d lazy", name, len(eo.Steps), len(lo.Steps))
		return
	}
	es := append([]discovery.Step(nil), eo.Steps...)
	ls := append([]discovery.Step(nil), lo.Steps...)
	for i := range es {
		esig := p.eager.Source.Plan(es[i].PlanID).Sig
		lsig := p.lazy.Source.Plan(ls[i].PlanID).Sig
		if esig != lsig {
			t.Errorf("%s: step %d plan %s (eager) vs %s (lazy)", name, i, esig, lsig)
		}
		es[i].PlanID, ls[i].PlanID = 0, 0
	}
	en, ln := *eo, *lo
	en.Steps, ln.Steps = es, ls
	compareOutcomes(t, name, &en, &ln)
}

// TestDifferentialLazyESS proves the inversion is observationally
// invisible: for every algorithm, across a spread of query locations
// (each climbing a different prefix of the budget ladder) and across
// deterministic chaos schedules, a discovery over the demand-driven
// source reproduces the eager full-sweep outcome bit for bit — every
// step's budget, cost, learned index, retry, and degradation.
func TestDifferentialLazyESS(t *testing.T) {
	p := buildLazyPair(t, 5)
	rates := map[faultinject.Site]float64{
		faultinject.SiteScanTuple:     0.02,
		faultinject.SiteIndexProbe:    0.05,
		faultinject.SiteOperatorPanic: 0.01,
		faultinject.SiteSpillObs:      0.20,
		faultinject.SiteLatency:       0.05,
	}
	schedules := map[string]func() *faultinject.Injector{"clean": nil}
	for seed := uint64(1); seed <= 3; seed++ {
		s := seed
		schedules[string(rune('0'+s))+"-chaos"] = func() *faultinject.Injector {
			return faultinject.New(faultinject.Config{Seed: s, Rates: rates, MaxPerSite: 2})
		}
	}
	qas := []int32{0, int32(p.points / 3), int32(p.points / 2), int32(p.points - 1)}
	for _, alg := range []core.Algorithm{core.PlanBouquet, core.SpillBound, core.AlignedBound} {
		for name, mk := range schedules {
			for _, qa := range qas {
				eo, errE := p.discover(p.eager, alg, qa, mk)
				lo, errL := p.discover(p.lazy, alg, qa, mk)
				if (errE == nil) != (errL == nil) ||
					(errE != nil && errL != nil && errE.Error() != errL.Error()) {
					t.Fatalf("%s/%s qa=%d: errors diverge: eager %v, lazy %v",
						alg, name, qa, errE, errL)
				}
				if errE != nil {
					continue
				}
				p.compareLazyOutcomes(t, string(alg)+"/"+name, eo, lo)
			}
		}
	}
}

// TestDifferentialLazyESSConcurrent drives every grid location through
// the shared lazy artifact concurrently — first-touch settling, contour
// memoization, and plan-pool interning all race here under -race — and
// checks each outcome against the eager baseline.
func TestDifferentialLazyESSConcurrent(t *testing.T) {
	p := buildLazyPair(t, 5)
	const alg = core.SpillBound
	baseline := make([]*discovery.Outcome, p.points)
	for qa := range baseline {
		out, err := p.discover(p.eager, alg, int32(qa), nil)
		if err != nil {
			t.Fatal(err)
		}
		baseline[qa] = out
	}
	var wg sync.WaitGroup
	errs := make([]error, p.points)
	outs := make([]*discovery.Outcome, p.points)
	for qa := 0; qa < p.points; qa++ {
		wg.Add(1)
		go func(qa int) {
			defer wg.Done()
			outs[qa], errs[qa] = p.discover(p.lazy, alg, int32(qa), nil)
		}(qa)
	}
	wg.Wait()
	for qa := 0; qa < p.points; qa++ {
		if errs[qa] != nil {
			t.Fatalf("qa=%d: %v", qa, errs[qa])
		}
		p.compareLazyOutcomes(t, "concurrent", baseline[qa], outs[qa])
	}
}

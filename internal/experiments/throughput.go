package experiments

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/core/discovery"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/faultinject"
	"repro/internal/query"
	"repro/internal/storage"
)

// ExecutorPool recycles row-level executors across concurrent
// discoveries. Executors are cheap but not free (operator scratch,
// meter state), and RealEngine needs a private one per run; the pool
// keeps N concurrent runs from constructing one per discovery.
type ExecutorPool struct {
	pool sync.Pool
}

// NewExecutorPool creates a pool producing executors for the query over
// the store.
func NewExecutorPool(q *query.Query, store *storage.Store, params cost.Params) *ExecutorPool {
	return &ExecutorPool{pool: sync.Pool{
		New: func() any { return exec.New(q, store, params) },
	}}
}

// Get returns an executor, creating one if the pool is empty.
func (p *ExecutorPool) Get() *exec.Executor { return p.pool.Get().(*exec.Executor) }

// Put returns an executor to the pool, disarming any fault injector and
// resetting the worker count the borrower attached so the next borrower
// starts clean.
func (p *ExecutorPool) Put(e *exec.Executor) {
	e.WithFaults(nil)
	e.WithWorkers(1)
	p.pool.Put(e)
}

// ThroughputOptions configures a Throughput measurement.
type ThroughputOptions struct {
	// Algorithm is the discovery algorithm driven (default SpillBound).
	Algorithm core.Algorithm
	// Strategy, when non-empty, drives the named registered strategy
	// instead of Algorithm — any bake-off policy can be throughput-
	// profiled behind the same latent/faulty engine stack.
	Strategy string
	// Parallel is the number of concurrent discoveries (default 1).
	Parallel int
	// Runs is the total number of discoveries (default 64).
	Runs int
	// ExecLatency is the simulated per-execution engine latency
	// (discovery.Latent); it models the I/O-bound remote engine of a
	// service deployment, whose waits concurrent discoveries overlap.
	// Zero measures pure CPU-bound simulation.
	ExecLatency time.Duration
	// Faults, when set, is the base injector every run forks its own
	// deterministic substream from (Fork(runID)).
	Faults *faultinject.Injector
	// Context, when set, bounds the whole measurement: workers stop
	// picking up new runs once it is done, in-flight discoveries abort
	// at their next execution boundary (engine waits included), and
	// Throughput returns the abort as an error. Nil means unbounded.
	Context context.Context
}

func (o ThroughputOptions) withDefaults() ThroughputOptions {
	if o.Algorithm == "" {
		o.Algorithm = core.SpillBound
	}
	if o.Parallel <= 0 {
		o.Parallel = 1
	}
	if o.Runs <= 0 {
		o.Runs = 64
	}
	return o
}

// ThroughputResult aggregates one Throughput measurement.
type ThroughputResult struct {
	// Parallel and Runs echo the options.
	Parallel, Runs int
	// Wall is the elapsed wall-clock time for all runs.
	Wall time.Duration
	// DiscoveriesPerSec is Runs over Wall.
	DiscoveriesPerSec float64
	// MeanLatency, P50, P95, and MaxLatency summarize per-discovery
	// wall-clock latency.
	MeanLatency, P50, P95, MaxLatency time.Duration
	// TotalSteps counts engine executions across all runs.
	TotalSteps int
	// TotalRetries counts transient-fault retries the resilient driver
	// paid across all runs (zero with chaos disarmed). A retry is work
	// the throughput number absorbed silently — surfacing it keeps
	// chaos-mode measurements honest.
	TotalRetries int
}

// Throughput drives opts.Runs discoveries over one shared Compiled
// artifact with opts.Parallel workers, each discovery on its own Run
// with its own forked fault substream, and reports aggregate
// latency/throughput. True locations cycle through the grid in a fixed
// pseudo-random order, so every configuration measures the same work
// mix regardless of parallelism.
func Throughput(c *core.Compiled, opts ThroughputOptions) (*ThroughputResult, error) {
	opts = opts.withDefaults()
	n := c.Space.Grid.NumPoints()
	lats := make([]time.Duration, opts.Runs)
	steps := make([]int, opts.Runs)
	retries := make([]int, opts.Runs)
	errs := make([]error, opts.Parallel)

	var (
		next atomic.Int64
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	ctx := opts.Context
	start := time.Now()
	for w := 0; w < opts.Parallel; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !stop.Load() {
				if ctx != nil && ctx.Err() != nil {
					errs[w] = fmt.Errorf("throughput: %w", &discovery.AbortError{Err: ctx.Err()})
					stop.Store(true)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= opts.Runs {
					return
				}
				// Knuth's multiplicative hash spreads the runs over the
				// grid deterministically.
				qa := int32(uint64(i) * 2654435761 % uint64(n))
				run := c.NewRun().WithFaults(opts.Faults.Fork(uint64(i)))
				if ctx != nil {
					run.WithContext(ctx)
				}
				t0 := time.Now()
				out, err := discoverLatent(run, opts.Algorithm, opts.Strategy, qa, opts.ExecLatency)
				lats[i] = time.Since(t0)
				if err != nil {
					errs[w] = fmt.Errorf("throughput: run %d (qa=%d): %w", i, qa, err)
					stop.Store(true)
					return
				}
				steps[i] = len(out.Steps)
				retries[i] = out.Retries
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &ThroughputResult{Parallel: opts.Parallel, Runs: opts.Runs, Wall: wall}
	if wall > 0 {
		res.DiscoveriesPerSec = float64(opts.Runs) / wall.Seconds()
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, l := range sorted {
		sum += l
	}
	res.MeanLatency = sum / time.Duration(opts.Runs)
	res.P50 = sorted[opts.Runs/2]
	res.P95 = sorted[opts.Runs*95/100]
	res.MaxLatency = sorted[opts.Runs-1]
	for _, s := range steps {
		res.TotalSteps += s
	}
	for _, r := range retries {
		res.TotalRetries += r
	}
	return res, nil
}

// discoverLatent is Run.Discover with the simulated engine behind a
// discovery.Latent delay (and, with faults armed, behind the faulty
// engine plus the resilient driver, as in Run.Discover). A non-empty
// strategy name routes through the strategy registry instead of the
// algorithm dispatch, on the identical engine stack.
func discoverLatent(r *core.Run, alg core.Algorithm, strategy string, qa int32, delay time.Duration) (*core.Outcome, error) {
	sim := discovery.NewSimEngine(r.Compiled().Space, qa)
	ctx := r.Context()
	var eng discovery.Engine
	if in := r.Faults(); in != nil {
		lat := discovery.NewLatentFallible(discovery.NewFaultySim(sim, in), delay)
		res := discovery.NewResilient(lat, discovery.DefaultRetryPolicy).WithJitter(in.Jitter)
		if ctx != nil {
			lat.WithContext(ctx)
			res.WithContext(ctx)
		}
		eng = res
	} else {
		lat := discovery.NewLatent(sim, delay)
		if ctx != nil {
			lat.WithContext(ctx)
		}
		eng = lat
	}
	if strategy != "" {
		return r.DiscoverStrategyWith(strategy, eng)
	}
	return r.DiscoverWith(alg, eng)
}

package experiments

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
)

// This file benchmarks the serving tier's request hot path — the
// numbers behind BENCH_serve.json. BenchmarkServeDiscover measures the
// in-process /discover latency and allocation profile under two
// traffic mixes (repeat-heavy, where the deterministic outcome cache
// should absorb nearly everything, and all-miss, where it must not
// slow the execution path down), each with the cache enabled and
// disabled. BenchmarkHerdReplicas measures shared-nothing ring
// throughput at 1/2/4 in-process replicas via the Herd driver.

// nullRW discards the response while recording the status, so the
// benchmark loop measures the handler, not an httptest recorder's
// buffer growth.
type nullRW struct {
	h    http.Header
	code int
}

func (n *nullRW) Header() http.Header         { return n.h }
func (n *nullRW) Write(p []byte) (int, error) { return len(p), nil }
func (n *nullRW) WriteHeader(c int)           { n.code = c }

// reusableBody lets one bytes.Reader serve every request in the loop.
type reusableBody struct{ *bytes.Reader }

func (reusableBody) Close() error { return nil }

func benchServeConfig(b testing.TB, outcomeCacheBytes int64) server.Config {
	return server.Config{
		Workloads: []string{"EQ"},
		Scale:     0.2,
		Res:       6,
		// The mixes below arm per-request fault substreams at a
		// vanishing rate so cache-on and cache-off runs execute the
		// identical resilient-engine stack.
		AllowRequestFaults: true,
		BreakerThreshold:   1 << 20,
		OutcomeCacheBytes:  outcomeCacheBytes,
		Logf:               b.Logf,
	}
}

func newBenchServer(b testing.TB, cfg server.Config) *server.Server {
	b.Helper()
	s, err := server.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := s.WaitReady(ctx); err != nil {
		b.Fatal(err)
	}
	return s
}

// eqGridPoints is the EQ workload's grid size at scale 0.2, res 6.
const eqGridPoints = 36

func discoverBody(qa int) []byte {
	return []byte(fmt.Sprintf(`{"workload":"EQ","algorithm":"sb","qa":%d}`, qa))
}

// serveLoop drives b.N sequential /discover requests through the
// handler, with bodyFor supplying the i-th request body. warm requests
// are sent untimed first (the repeat mix measures steady-state hits,
// not its own cache-fill lap).
func serveLoop(b *testing.B, s *server.Server, warm [][]byte, bodyFor func(i int) []byte) {
	b.Helper()
	h := s.Handler()
	rd := bytes.NewReader(nil)
	req, err := http.NewRequest(http.MethodPost, "/discover", nil)
	if err != nil {
		b.Fatal(err)
	}
	req.Body = reusableBody{rd}
	w := &nullRW{h: make(http.Header)}
	serve := func(i int, body []byte) {
		rd.Reset(body)
		w.code = 0
		h.ServeHTTP(w, req)
		if w.code != http.StatusOK {
			b.Fatalf("request %d: status %d", i, w.code)
		}
	}
	for i, body := range warm {
		serve(i, body)
	}
	// Sub-benchmarks run back to back in one process; without a
	// collection here each inherits the previous one's heap and GC
	// pacing, which skews per-op numbers by more than the effects
	// being measured.
	runtime.GC()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serve(i, bodyFor(i))
	}
}

// TestServeHitPathZeroAlloc is the CI regression guard behind the
// serve-bench job: a warmed byte-identical repeat must serve without
// allocating. Three warm arrivals take the point through the
// doorkeeper (record, admit) and teach the front table its identity;
// every arrival after that is a pure cache hit.
func TestServeHitPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are meaningless")
	}
	s := newBenchServer(t, benchServeConfig(t, 0))
	h := s.Handler()
	body := discoverBody(7)
	rd := bytes.NewReader(nil)
	req, err := http.NewRequest(http.MethodPost, "/discover", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Body = reusableBody{rd}
	w := &nullRW{h: make(http.Header)}
	serve := func() {
		rd.Reset(body)
		w.code = 0
		h.ServeHTTP(w, req)
		if w.code != http.StatusOK {
			t.Fatalf("status %d", w.code)
		}
	}
	for i := 0; i < 3; i++ {
		serve()
	}
	if allocs := testing.AllocsPerRun(200, serve); allocs >= 1 {
		t.Fatalf("hit path allocates %.2f objects/op, want 0", allocs)
	}
}

func BenchmarkServeDiscover(b *testing.B) {
	for _, bm := range []struct {
		name       string
		cacheBytes int64
	}{
		{"repeat", 0},
		{"repeat-nocache", -1},
		{"allmiss", 0},
		{"allmiss-nocache", -1},
	} {
		repeat := bm.name == "repeat" || bm.name == "repeat-nocache"
		b.Run(bm.name, func(b *testing.B) {
			s := newBenchServer(b, benchServeConfig(b, bm.cacheBytes))
			if repeat {
				// Repeat-heavy: the working set is the whole grid,
				// unarmed (the production repeat mix). Two warm laps:
				// the first passes the doorkeeper, the second admits
				// every point into the cache.
				bodies := make([][]byte, eqGridPoints)
				for qa := range bodies {
					bodies[qa] = discoverBody(qa)
				}
				warm := append(append([][]byte(nil), bodies...), bodies...)
				serveLoop(b, s, warm, func(i int) []byte { return bodies[i%eqGridPoints] })
				return
			}
			// All-miss: every request arms a never-seen fault substream
			// at a vanishing rate (the substream is part of the key), so
			// the cache (when on) inserts but never hits — the mix
			// prices the cache's overhead on the execution path, with
			// both variants running the identical resilient stack.
			var buf []byte
			serveLoop(b, s, nil, func(i int) []byte {
				buf = buf[:0]
				buf = fmt.Appendf(buf,
					`{"workload":"EQ","algorithm":"sb","qa":%d,"fault_seed":%d,"fault_rate":1e-9}`,
					i%eqGridPoints, uint64(i)+2)
				return buf
			})
		})
	}
}

// benchRing starts n shard-out replicas on loopback listeners and
// returns their base URLs. The outcome cache is disabled so the herd
// measures ring routing and execution throughput, not caching.
func benchRing(b *testing.B, n int) []string {
	b.Helper()
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		listeners[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	servers := make([]*server.Server, n)
	for i := range servers {
		cfg := server.Config{
			Workloads:         []string{"EQ", "2D_Q91", "3D_Q91"},
			Scale:             0.2,
			Res:               6,
			MaxConcurrent:     8,
			MaxQueue:          256,
			BreakerThreshold:  1 << 20,
			ExecLatency:       2 * time.Millisecond,
			OutcomeCacheBytes: -1,
			Logf:              b.Logf,
		}
		if n > 1 {
			cfg.Peers = urls
			cfg.SelfURL = urls[i]
		}
		s, err := server.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		servers[i] = s
		wg.Add(1)
		go func(s *server.Server, ln net.Listener) {
			defer wg.Done()
			s.Serve(ctx, ln)
		}(s, listeners[i])
	}
	b.Cleanup(func() {
		cancel()
		wg.Wait()
	})
	for _, s := range servers {
		wctx, wcancel := context.WithTimeout(context.Background(), 120*time.Second)
		err := s.WaitReady(wctx)
		wcancel()
		if err != nil {
			b.Fatal(err)
		}
	}
	return urls
}

func BenchmarkHerdReplicas(b *testing.B) {
	// Three signatures spread across the ring: each herd wave exercises
	// owner routing (n>1 forwards ~2/3 of arrivals one hop).
	workloads := []string{"EQ", "2D_Q91", "3D_Q91"}
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("replicas=%d", n), func(b *testing.B) {
			urls := benchRing(b, n)
			client := &http.Client{Timeout: 120 * time.Second}
			const herdSize = 24
			b.ResetTimer()
			var requests int
			for i := 0; i < b.N; i++ {
				body := []byte(fmt.Sprintf(
					`{"workload":"%s","algorithm":"sb","qa":%d,"timeout_ms":90000}`,
					workloads[i%len(workloads)], (i*7)%eqGridPoints))
				res, err := Herd(HerdOptions{
					BaseURL:     urls[i%len(urls)],
					Body:        body,
					Concurrency: herdSize,
					Seed:        uint64(i),
					WaitCap:     50 * time.Millisecond,
					Client:      client,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Statuses[http.StatusOK] != herdSize {
					b.Fatalf("herd %d: %s", i, res)
				}
				requests += herdSize
			}
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(requests)/sec, "req/s")
			}
		})
	}
}

package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/core/alignedbound"
	"repro/internal/workload"
)

// table2Queries are the instances profiled in Table 2 of the paper.
var table2Queries = []string{"3D_Q96", "4D_Q7", "4D_Q26", "4D_Q91", "5D_Q29", "5D_Q84"}

// Table2Alignment reproduces Table 2: the percentage of contours that
// satisfy contour alignment natively ("Original") and under replacement
// penalty thresholds Δ, plus the maximum Δ required to align everything.
func (h *Harness) Table2Alignment() (*Report, error) {
	rep := &Report{
		Title:  "Table 2 — cost of enforcing contour alignment",
		Header: []string{"query", "Original", "Δ=1.2", "Δ=1.5", "Δ=2.0", "Max Δ"},
	}
	for _, name := range table2Queries {
		spec, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		c, err := h.compiled(spec)
		if err != nil {
			return nil, err
		}
		prof := c.Planner().Profile()
		maxD := alignedbound.MaxProfilePenalty(prof)
		maxStr := f2(maxD)
		if math.IsInf(maxD, 1) {
			maxStr = "inf"
		}
		rep.AddRow(name,
			pct(alignedbound.AlignedFraction(prof, 1)),
			pct(alignedbound.AlignedFraction(prof, 1.2)),
			pct(alignedbound.AlignedFraction(prof, 1.5)),
			pct(alignedbound.AlignedFraction(prof, 2.0)),
			maxStr)
	}
	return rep, nil
}

// Table4Penalty reproduces Table 4: the maximum partition penalty π*
// AlignedBound encounters during execution, per query, measured across
// a full MSO sweep.
func (h *Harness) Table4Penalty() (*Report, error) {
	rep := &Report{
		Title:  "Table 4 — maximum partition penalty for AlignedBound",
		Header: []string{"query", "max penalty"},
	}
	for _, spec := range workload.Suite() {
		c, err := h.compiled(spec)
		if err != nil {
			return nil, err
		}
		abE, err := c.MSO(core.AlignedBound, h.sweepOpts(spec.D))
		if err != nil {
			return nil, err
		}
		rep.AddRow(spec.Name, f2(abE.MaxAlignPenalty))
	}
	rep.Notes = append(rep.Notes,
		"penalty is the per-contour sum over partition parts; 1.0 = fully aligned cover")
	return rep, nil
}

// SuiteSummary is a convenience overview: guarantees and empirical MSO
// for all three algorithms on every suite query.
func (h *Harness) SuiteSummary() (*Report, error) {
	rep := &Report{
		Title: "Suite summary — guarantees and empirical MSO",
		Header: []string{"query", "D", "PB MSOg", "SB MSOg", "PB MSOe",
			"SB MSOe", "AB MSOe", "native MSOe"},
	}
	for _, spec := range workload.Suite() {
		c, err := h.compiled(spec)
		if err != nil {
			return nil, err
		}
		opts := h.sweepOpts(spec.D)
		pbG, _ := c.Guarantee(core.PlanBouquet)
		sbG, _ := c.Guarantee(core.SpillBound)
		pbE, err := c.MSO(core.PlanBouquet, opts)
		if err != nil {
			return nil, err
		}
		sbE, err := c.MSO(core.SpillBound, opts)
		if err != nil {
			return nil, err
		}
		abE, err := c.MSO(core.AlignedBound, opts)
		if err != nil {
			return nil, err
		}
		native := c.NativeWorstCaseMSO(opts)
		rep.AddRow(spec.Name, fmt.Sprintf("%d", spec.D),
			f1(pbG), f1(sbG), f1(pbE.MSO), f1(sbE.MSO), f1(abE.MSO), f1(native.MSO))
	}
	return rep, nil
}

package experiments

import (
	"fmt"

	"repro/internal/core/discovery"
	"repro/internal/ess"
	"repro/internal/exec"
)

// RealEngine drives discovery through the row-level executor instead of
// the cost model: budgeted executions really run over generated data,
// are really killed when the meter passes the budget, and selectivities
// are really observed by the operator monitors. This is the engine mode
// of the paper's wall-clock experiment (§6.3).
type RealEngine struct {
	s  *ess.Space
	ex *exec.Executor
	ev *ess.Evaluator
	// learned mirrors the discovery state so failed spills can be
	// converted into sound grid lower bounds via the (exact) cost model.
	learned []int
}

// NewRealEngine creates an engine over the space and executor; both must
// be built for the same query.
func NewRealEngine(s *ess.Space, ex *exec.Executor) *RealEngine {
	learned := make([]int, s.Grid.D)
	for i := range learned {
		learned[i] = -1
	}
	return &RealEngine{s: s, ex: ex, ev: s.NewEvaluator(), learned: learned}
}

// ExecFull implements discovery.Engine with a real budgeted execution.
func (e *RealEngine) ExecFull(planID int32, budget float64) (float64, bool) {
	res, err := e.ex.Run(e.s.Plans[planID].Root, budget)
	if err != nil {
		panic(fmt.Sprintf("experiments: executor failure: %v", err))
	}
	return res.Cost, res.Completed
}

// ExecSpill implements discovery.Engine with a real spill-mode run. On
// completion the spilled join's monitored selectivity is snapped to the
// grid; on a kill, the guaranteed learning bound is derived from the
// metered budget through the cost model (which the executor's meter
// matches by construction).
func (e *RealEngine) ExecSpill(planID int32, dim int, budget float64) (float64, bool, int) {
	joinID := e.s.Q.EPPs[dim]
	res, err := e.ex.RunSpill(e.s.Plans[planID].Root, joinID, budget)
	if err != nil {
		panic(fmt.Sprintf("experiments: executor failure: %v", err))
	}
	if res.Completed {
		sel, ok := res.JoinSel[joinID]
		if !ok {
			panic("experiments: completed spill without selectivity observation")
		}
		idx := e.s.Grid.NearestIndex(sel)
		e.learned[dim] = idx
		return res.Cost, true, idx
	}
	// Reference point: learned dims at their values, the rest at the
	// origin — the spill subtree's cost depends only on the learned
	// dimensions and dim itself.
	coords := make([]int, e.s.Grid.D)
	for d, v := range e.learned {
		if v >= 0 {
			coords[d] = v
		}
	}
	ref := int32(e.s.Grid.Linear(coords))
	idx := e.ev.MaxSelIndexWithin(planID, ref, dim, budget)
	return res.Cost, false, idx
}

var _ discovery.Engine = (*RealEngine)(nil)

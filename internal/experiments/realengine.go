package experiments

import (
	"repro/internal/core/discovery"
	"repro/internal/ess"
	"repro/internal/exec"
)

// RealEngine drives discovery through the row-level executor instead of
// the cost model: budgeted executions really run over generated data,
// are really killed when the meter passes the budget, and selectivities
// are really observed by the operator monitors. This is the engine mode
// of the paper's wall-clock experiment (§6.3).
//
// It is a discovery.FallibleEngine: executor failures (injected faults,
// panics, cancellations) surface as errors with the consumed cost, and
// a completed spill whose selectivity observation was dropped reports
// discovery.ErrObservationLost — wrap with discovery.NewResilient to
// drive the infallible algorithm interface.
type RealEngine struct {
	s  *ess.Space
	ex *exec.Executor
	ev *ess.Evaluator
	// learned mirrors the discovery state so failed spills can be
	// converted into sound grid lower bounds via the (exact) cost model.
	learned []int
}

// NewRealEngine creates an engine over the space and executor; both must
// be built for the same query.
func NewRealEngine(s *ess.Space, ex *exec.Executor) *RealEngine {
	learned := make([]int, s.Grid.D)
	for i := range learned {
		learned[i] = -1
	}
	return &RealEngine{s: s, ex: ex, ev: s.NewEvaluator(), learned: learned}
}

// ExecFull implements discovery.FallibleEngine with a real budgeted
// execution. On failure the cost the attempt consumed is still billed.
func (e *RealEngine) ExecFull(planID int32, budget float64) (float64, bool, error) {
	res, err := e.ex.Run(e.s.Plan(planID).Root, budget)
	if err != nil {
		return res.Cost, false, err
	}
	return res.Cost, res.Completed, nil
}

// ExecSpill implements discovery.FallibleEngine with a real spill-mode
// run. On completion the spilled join's monitored selectivity is snapped
// to the grid; a completed run whose observation was dropped reports
// ErrObservationLost (nothing learned — treating it as a kill that
// raises no bound is the only sound reading, since the subtree finished
// under budget). On a kill, the guaranteed learning bound is derived
// from the metered budget through the cost model (which the executor's
// meter matches by construction).
func (e *RealEngine) ExecSpill(planID int32, dim int, budget float64) (float64, bool, int, error) {
	joinID := e.s.Q.EPPs[dim]
	res, err := e.ex.RunSpill(e.s.Plan(planID).Root, joinID, budget)
	if err != nil {
		return res.Cost, false, -1, err
	}
	if res.Completed {
		sel, ok := res.JoinSel[joinID]
		if !ok {
			return res.Cost, false, -1, discovery.ErrObservationLost
		}
		idx := e.s.Grid.NearestIndex(sel)
		e.learned[dim] = idx
		return res.Cost, true, idx, nil
	}
	// Reference point: learned dims at their values, the rest at the
	// origin — the spill subtree's cost depends only on the learned
	// dimensions and dim itself.
	coords := make([]int, e.s.Grid.D)
	for d, v := range e.learned {
		if v >= 0 {
			coords[d] = v
		}
	}
	ref := int32(e.s.Grid.Linear(coords))
	idx := e.ev.MaxSelIndexWithin(planID, ref, dim, budget)
	return res.Cost, false, idx, nil
}

var _ discovery.FallibleEngine = (*RealEngine)(nil)

package experiments

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

// small returns a harness with tiny grids so every experiment runs fast.
func small() *Harness {
	return New(Options{Res: 5, StrideHighD: 7})
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestReportRender(t *testing.T) {
	rep := &Report{Title: "T", Header: []string{"a", "bb"}, Notes: []string{"n1"}}
	rep.AddRow("1", "2")
	var b strings.Builder
	rep.Render(&b)
	out := b.String()
	for _, want := range []string{"T\n=", "a", "bb", "1", "2", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestFig3OCS(t *testing.T) {
	rep, err := small().Fig3OCS()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("no OCS samples")
	}
	// Costs must be monotone down each sampled column block: just check
	// the first and last rows differ (surface is not flat).
	first := parseF(t, rep.Rows[0][2])
	last := parseF(t, rep.Rows[len(rep.Rows)-1][2])
	if last <= first {
		t.Errorf("OCS should rise from origin (%v) to terminus (%v)", first, last)
	}
}

func TestFig7Trace(t *testing.T) {
	rep, err := small().Fig7Trace()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) < 2 {
		t.Fatal("trace should have several executions")
	}
	// The sub-optimality note must report a value within the 2D bound.
	found := false
	for _, n := range rep.Notes {
		if strings.Contains(n, "sub-optimality") {
			found = true
		}
	}
	if !found {
		t.Error("missing sub-optimality note")
	}
}

func TestFig8And9Guarantees(t *testing.T) {
	h := small()
	rep, err := h.Fig8MSOg()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 11 {
		t.Fatalf("Fig8 rows = %d, want 11", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		d := parseF(t, row[1])
		sb := parseF(t, row[4])
		if sb != d*d+3*d {
			t.Errorf("%s: SB MSOg = %v, want D²+3D = %v", row[0], sb, d*d+3*d)
		}
		if parseF(t, row[3]) <= 0 {
			t.Errorf("%s: PB MSOg not positive", row[0])
		}
	}

	rep9, err := h.Fig9Dimensionality()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep9.Rows) != 5 {
		t.Fatalf("Fig9 rows = %d, want 5", len(rep9.Rows))
	}
	// SB guarantee grows quadratically with D.
	prev := 0.0
	for _, row := range rep9.Rows {
		sb := parseF(t, row[4])
		if sb <= prev {
			t.Error("SB MSOg must increase with D")
		}
		prev = sb
	}
}

func TestFig10Fig11EmpiricalShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep-heavy")
	}
	h := small()
	rep, err := h.Fig10MSOe()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		pbE, sbE := parseF(t, row[2]), parseF(t, row[3])
		pbG, sbG := parseF(t, row[4]), parseF(t, row[5])
		if pbE < 1 || sbE < 1 {
			t.Errorf("%s: sub-optimality below 1", row[0])
		}
		if pbE > pbG*1.001 {
			t.Errorf("%s: PB MSOe %v above its guarantee %v", row[0], pbE, pbG)
		}
		if sbE > sbG*1.001 {
			t.Errorf("%s: SB MSOe %v above its guarantee %v", row[0], sbE, sbG)
		}
	}
	rep11, err := h.Fig11ASO()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep11.Rows {
		if parseF(t, row[2]) < 1 || parseF(t, row[3]) < 1 {
			t.Errorf("%s: ASO below 1", row[0])
		}
	}
}

func TestFig12HistogramSumsToOne(t *testing.T) {
	h := small()
	rep, err := h.Fig12Histogram()
	if err != nil {
		t.Fatal(err)
	}
	pbTotal, sbTotal := 0.0, 0.0
	for _, row := range rep.Rows {
		pbTotal += parseF(t, row[2])
		sbTotal += parseF(t, row[4])
	}
	if math.Abs(pbTotal-100) > 2 || math.Abs(sbTotal-100) > 2 {
		t.Errorf("histogram fractions sum to %v%%, %v%%", pbTotal, sbTotal)
	}
}

func TestFig13AndTable4(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep-heavy")
	}
	h := small()
	rep, err := h.Fig13MSOeAB()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		d := parseF(t, row[1])
		ab := parseF(t, row[3])
		if ab < 1 {
			t.Errorf("%s: AB MSOe %v below 1", row[0], ab)
		}
		hi := d*d + 3*d
		if ab > hi*3 {
			t.Errorf("%s: AB MSOe %v way above quadratic bound %v", row[0], ab, hi)
		}
	}
	rep4, err := h.Table4Penalty()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep4.Rows {
		pen := parseF(t, row[1])
		if pen < 1 {
			t.Errorf("%s: penalty %v below 1", row[0], pen)
		}
	}
}

func TestTable2Alignment(t *testing.T) {
	h := small()
	rep, err := h.Table2Alignment()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 6 {
		t.Fatalf("Table2 rows = %d, want 6", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		orig := parseF(t, row[1])
		d12 := parseF(t, row[2])
		d15 := parseF(t, row[3])
		d20 := parseF(t, row[4])
		// Fractions must be monotone in the threshold.
		if d12 < orig || d15 < d12 || d20 < d15 {
			t.Errorf("%s: non-monotone alignment fractions %v %v %v %v",
				row[0], orig, d12, d15, d20)
		}
	}
}

func TestTable3WallClock(t *testing.T) {
	h := New(Options{Scale: 0.3, Res: 5})
	rep, err := h.Table3WallClock()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) < 2 {
		t.Fatal("drill-down should span several executions")
	}
	// Cumulative cost must be non-decreasing.
	prev := 0.0
	for _, row := range rep.Rows {
		c := parseF(t, row[4])
		if c < prev {
			t.Error("cumulative cost decreased")
		}
		prev = c
	}
	// Notes must carry all four end-to-end comparisons.
	joined := strings.Join(rep.Notes, "\n")
	for _, want := range []string{"oracle", "native", "SpillBound", "AlignedBound"} {
		if !strings.Contains(joined, want) {
			t.Errorf("notes missing %s", want)
		}
	}
}

func TestJOBExperiment(t *testing.T) {
	h := small()
	rep, err := h.JOB()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatal("JOB report should have 3 approaches")
	}
	native := parseF(t, rep.Rows[0][1])
	sb := parseF(t, rep.Rows[1][1])
	ab := parseF(t, rep.Rows[2][1])
	if native < sb {
		t.Errorf("native MSO %v should dominate SB %v", native, sb)
	}
	if sb < 1 || ab < 1 {
		t.Error("sub-optimalities below 1")
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep-heavy")
	}
	h := New(Options{Res: 6})
	ratio, err := h.AblationCostRatio()
	if err != nil {
		t.Fatal(err)
	}
	if len(ratio.Rows) != 5 {
		t.Fatal("cost ratio ablation rows")
	}
	lam, err := h.AblationAnorexicLambda()
	if err != nil {
		t.Fatal(err)
	}
	// rho_red must be non-increasing in lambda (rows after "unreduced").
	prev := math.Inf(1)
	for _, row := range lam.Rows[1:] {
		rho := parseF(t, row[1])
		if rho > prev {
			t.Error("rho_red must not increase with lambda")
		}
		prev = rho
	}
	res, err := h.AblationGridResolution()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatal("grid resolution ablation rows")
	}
	probes, err := h.AblationOptimizerProbes()
	if err != nil {
		t.Fatal(err)
	}
	if len(probes.Rows) != 2 {
		t.Fatal("probe ablation rows")
	}
	oneD, err := h.AblationOneDEndgame()
	if err != nil {
		t.Fatal(err)
	}
	if len(oneD.Rows) != 2 {
		t.Fatal("1-D endgame ablation rows")
	}
	for _, row := range oneD.Rows {
		if parseF(t, row[1]) < 1 {
			t.Error("endgame MSOe below 1")
		}
	}
}

func TestHarnessCachesSpaces(t *testing.T) {
	h := small()
	a, err := h.Fig8MSOg()
	if err != nil {
		t.Fatal(err)
	}
	_ = a
	n := len(h.spaces)
	if _, err := h.Fig9Dimensionality(); err != nil {
		t.Fatal(err)
	}
	// Fig9 shares 4D_Q91/6D_Q91 with the suite; cache must have grown by
	// at most the new family members.
	if len(h.spaces) > n+4 {
		t.Errorf("cache grew from %d to %d; sharing broken", n, len(h.spaces))
	}
}

func TestAblationCostModelError(t *testing.T) {
	h := New(Options{Res: 8})
	rep, err := h.AblationCostModelError()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row[3] != "yes" {
			t.Errorf("delta=%s: MSOe %s exceeded inflated bound %s", row[0], row[1], row[2])
		}
	}
}

package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/core/discovery"
	"repro/internal/cost"
	"repro/internal/datagen"
	"repro/internal/ess"
	"repro/internal/optimizer"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Table3WallClock reproduces the wall-clock experiment of §6.3
// (Table 3): SpillBound driven by real row-level executions over
// generated data for 4D_Q91, reporting the per-contour drill-down of
// plan executions and learned selectivities, plus the end-to-end
// comparison against the native optimizer, the oracle, and AlignedBound.
func (h *Harness) Table3WallClock() (*Report, error) {
	spec, err := workload.ByName("4D_Q91")
	if err != nil {
		return nil, err
	}
	q, err := spec.Load(h.Opts.Scale)
	if err != nil {
		return nil, err
	}
	store, err := datagen.Populate(q.Cat, datagen.Options{Seed: 2016, BuildIndexes: true})
	if err != nil {
		return nil, err
	}
	st, err := stats.FromData(q.Cat, store, 24)
	if err != nil {
		return nil, err
	}
	model := cost.NewModel(cost.DefaultParams())
	env := optimizer.BuildEnv(q, st)
	res := h.Opts.Res
	if res <= 0 {
		res = spec.Res
	}
	space, err := ess.Build(q, env, model, ess.Config{Res: res})
	if err != nil {
		return nil, err
	}
	// Executors are per-run state; the pool recycles them the way the
	// concurrent throughput driver does. Each borrowed executor gets the
	// harness's intra-query worker count: morsel parallelism cuts the
	// wall-clock of every real execution without moving a single metered
	// cost (the engine's merge contract).
	execPool := NewExecutorPool(q, store, cost.DefaultParams())
	executor := execPool.Get().WithWorkers(h.Opts.ExecWorkers)
	defer execPool.Put(executor)

	// Ground truth: measure the data's actual epp selectivities.
	trueSel := make([]float64, q.D())
	trueIdx := make([]int, q.D())
	for d, joinID := range q.EPPs {
		sel, err := stats.TrueJoinSel(store, q, q.Joins[joinID])
		if err != nil {
			return nil, err
		}
		trueSel[d] = sel
		trueIdx[d] = space.Grid.NearestIndex(sel)
	}
	qa := int32(space.Grid.Linear(trueIdx))

	// Oracle: the optimal plan at the true location, really executed.
	oracle, err := executor.Run(space.Plan(space.PointPlan[qa]).Root, 0)
	if err != nil {
		return nil, err
	}
	// Native optimizer: the plan picked at the statistics estimate.
	estIdx := make([]int, q.D())
	for d, joinID := range q.EPPs {
		estIdx[d] = space.Grid.NearestIndex(st.JoinSelEstimate(q, q.Joins[joinID]))
	}
	qe := int32(space.Grid.Linear(estIdx))
	native, err := executor.Run(space.Plan(space.PointPlan[qe]).Root, 0)
	if err != nil {
		return nil, err
	}
	// Adversarial estimate (what Eq. 2's MSO maximizes over): the POSP
	// plan that is worst at the true location, really executed but
	// capped at a large budget in case it is pathological.
	worstPID := int32(0)
	worstCost := 0.0
	{
		ev := space.NewEvaluator()
		for pid := range space.Plans() {
			if c := ev.PlanCost(int32(pid), qa); c > worstCost {
				worstCost, worstPID = c, int32(pid)
			}
		}
	}
	adversarial, err := executor.Run(space.Plan(worstPID).Root, oracle.Cost*1e6)
	if err != nil {
		return nil, err
	}

	// SpillBound over real executions, behind the resilient driver so
	// executor faults degrade instead of aborting the experiment.
	compiled, err := core.Compile(space, core.CompileOptions{})
	if err != nil {
		return nil, err
	}
	sbRun := compiled.NewRun().WithExecWorkers(h.Opts.ExecWorkers)
	sbExec := execPool.Get().WithWorkers(sbRun.ExecWorkers())
	sbOut, err := sbRun.DiscoverWith(core.SpillBound,
		discovery.NewResilient(NewRealEngine(space, sbExec), discovery.DefaultRetryPolicy))
	execPool.Put(sbExec)
	if err != nil {
		return nil, err
	}
	// AlignedBound over real executions (fresh run and pooled executor:
	// both are per-run state).
	abRun := compiled.NewRun().WithExecWorkers(h.Opts.ExecWorkers)
	abExec := execPool.Get().WithWorkers(abRun.ExecWorkers())
	abOut, err := abRun.DiscoverWith(core.AlignedBound,
		discovery.NewResilient(NewRealEngine(space, abExec), discovery.DefaultRetryPolicy))
	execPool.Put(abExec)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Title:  "Table 3 — SpillBound execution drill-down on 4D_Q91 (real executions)",
		Header: []string{"contour", "exec", "epp dim", "sel learnt", "cum. cost"},
	}
	cum := 0.0
	for _, stp := range sbOut.Steps {
		cum += stp.Cost
		execName := fmt.Sprintf("P%d", stp.PlanID)
		dim, learnt := "-", "-"
		if stp.Dim >= 0 {
			execName = fmt.Sprintf("p%d", stp.PlanID)
			dim = fmt.Sprintf("e%d", stp.Dim+1)
			if stp.LearnedIdx >= 0 {
				v := space.Grid.Vals[stp.LearnedIdx]
				if stp.Completed {
					learnt = fmt.Sprintf("%.3g%% (exact)", v*100)
				} else {
					learnt = fmt.Sprintf("> %.3g%%", v*100)
				}
			}
		}
		rep.AddRow(fmt.Sprintf("IC%d", stp.Contour), execName, dim, learnt, f1(cum))
	}

	so := func(c float64) string { return f2(c / oracle.Cost) }
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("true selectivities: %v (grid-snapped qa=%v)", fmtSels(trueSel), trueIdx),
		fmt.Sprintf("oracle cost %.1f (sub-opt 1.00)", oracle.Cost),
		fmt.Sprintf("native optimizer cost %.1f (sub-opt %s)", native.Cost, so(native.Cost)),
		fmt.Sprintf("native w/ adversarial estimate cost %.1f (sub-opt %s, completed=%v)",
			adversarial.Cost, so(adversarial.Cost), adversarial.Completed),
		fmt.Sprintf("SpillBound cost %.1f (sub-opt %s, %d executions)",
			sbOut.TotalCost, so(sbOut.TotalCost), len(sbOut.Steps)),
		fmt.Sprintf("AlignedBound cost %.1f (sub-opt %s, %d executions)",
			abOut.TotalCost, so(abOut.TotalCost), len(abOut.Steps)),
	)
	return rep, nil
}

func fmtSels(sels []float64) string {
	s := "["
	for i, v := range sels {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%.2e", v)
	}
	return s + "]"
}

//go:build race

package experiments

// raceEnabled reports that the race detector is active; its
// instrumentation allocates, so allocation-count guards skip.
const raceEnabled = true

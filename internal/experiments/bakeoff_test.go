package experiments

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

func bakeoffFixture(t *testing.T) *BakeoffResult {
	t.Helper()
	h := New(Options{Res: 5})
	res, err := h.BakeoffFor("EQ", BakeoffOptions{ChaosSeed: 2016, ChaosRate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The bake-off must produce one row per registered strategy, paper
// guarantees on the paper rows only, and sane ledgers.
func TestBakeoffSixRows(t *testing.T) {
	res := bakeoffFixture(t)
	names := core.Strategies()
	if len(res.Rows) != len(names) || len(res.Rows) != 6 {
		t.Fatalf("%d rows, want %d", len(res.Rows), len(names))
	}
	for i, row := range res.Rows {
		if row.Strategy != names[i] {
			t.Fatalf("row %d is %q, want %q", i, row.Strategy, names[i])
		}
		paper := i < 3
		if row.HasGuarantee != paper {
			t.Fatalf("%s: HasGuarantee=%v", row.Strategy, row.HasGuarantee)
		}
		if row.MSOe < 1 || row.ASO < 1 || row.ASO > row.MSOe {
			t.Fatalf("%s: implausible MSOe %v / ASO %v", row.Strategy, row.MSOe, row.ASO)
		}
		if row.ChaosMSOe < 1 {
			t.Fatalf("%s: chaos MSOe %v below 1", row.Strategy, row.ChaosMSOe)
		}
		if row.WastedCost < 0 || row.Degradations < row.Retries {
			t.Fatalf("%s: inconsistent ledger (wasted %v, degradations %d, retries %d)",
				row.Strategy, row.WastedCost, row.Degradations, row.Retries)
		}
	}
	if res.Points != 25 {
		t.Fatalf("swept %d locations, want 25", res.Points)
	}
}

// With a fixed chaos seed, two bake-offs are bit-for-bit identical.
func TestBakeoffDeterministic(t *testing.T) {
	a, b := bakeoffFixture(t), bakeoffFixture(t)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("bake-off not deterministic:\n%+v\n%+v", a, b)
	}
	var ra, rb strings.Builder
	a.Report().Render(&ra)
	b.Report().Render(&rb)
	if ra.String() != rb.String() {
		t.Fatal("rendered reports diverge")
	}
	if a.Markdown() != b.Markdown() {
		t.Fatal("markdown renderings diverge")
	}
}

// A zero chaos rate skips the chaos sweep: chaos columns repeat the
// clean ones with an empty degradation ledger.
func TestBakeoffCleanOnly(t *testing.T) {
	h := New(Options{Res: 5})
	res, err := h.BakeoffFor("EQ", BakeoffOptions{Strategies: []string{"spillbound", "parqo"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.ChaosMSOe != row.MSOe || row.WastedCost != 0 || row.Degradations != 0 {
			t.Fatalf("%s: clean-only run has chaos residue: %+v", row.Strategy, row)
		}
	}
}

func TestBakeoffUnknownStrategy(t *testing.T) {
	h := New(Options{Res: 5})
	if _, err := h.BakeoffFor("EQ", BakeoffOptions{Strategies: []string{"zzz"}}); err == nil {
		t.Fatal("unknown strategy must error")
	}
}

// UpdateExperimentsFile must replace exactly the marked section,
// preserve surrounding text, append markers when absent, and be
// idempotent.
func TestBakeoffUpdateExperimentsFile(t *testing.T) {
	res := bakeoffFixture(t)
	path := filepath.Join(t.TempDir(), "EXPERIMENTS.md")
	if err := os.WriteFile(path, []byte("# Results\n\nhand-written intro\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := res.UpdateExperimentsFile(path); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"hand-written intro", "<!-- bakeoff:begin -->",
		"<!-- bakeoff:end -->", "| spillbound |", "| adaptiveswitch |"} {
		if !strings.Contains(string(first), want) {
			t.Fatalf("updated file missing %q:\n%s", want, first)
		}
	}
	// Re-update: the section is replaced in place, not appended again.
	if err := res.UpdateExperimentsFile(path); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Fatalf("second update not idempotent:\n%s\nvs\n%s", first, second)
	}
	if got := strings.Count(string(second), "<!-- bakeoff:begin -->"); got != 1 {
		t.Fatalf("%d begin markers, want 1", got)
	}
}

package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/core/bouquet"
	"repro/internal/core/discovery"
	"repro/internal/core/spillbound"
	"repro/internal/cost"
	"repro/internal/ess"
	"repro/internal/mso"
	"repro/internal/optimizer"
	"repro/internal/stats"
	"repro/internal/workload"
)

// ablationSpace builds a space for the spec with a custom contour cost
// ratio.
func ablationSpace(spec workload.Spec, scale float64, res int, ratio float64) (*ess.Space, error) {
	q, err := spec.Load(scale)
	if err != nil {
		return nil, err
	}
	if res <= 0 {
		res = spec.Res
	}
	env := optimizer.BuildEnv(q, stats.FromCatalog(q.Cat))
	return ess.Build(q, env, cost.NewModel(cost.DefaultParams()),
		ess.Config{Res: res, CostRatio: ratio})
}

// AblationCostRatio studies the contour cost ratio (the paper's remark
// after Theorem 4.5: doubling is not ideal for SpillBound; e.g. 1.8
// improves the 2D guarantee from 10 to 9.9).
func (h *Harness) AblationCostRatio() (*Report, error) {
	spec, err := workload.ByName("2D_Q91")
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Title:  "Ablation — contour cost ratio (2D_Q91, SpillBound)",
		Header: []string{"ratio", "contours", "SB MSOe", "SB ASO"},
	}
	for _, ratio := range []float64{1.5, 1.8, 2.0, 2.5, 3.0} {
		s, err := ablationSpace(spec, h.Opts.Scale, h.Opts.Res, ratio)
		if err != nil {
			return nil, err
		}
		res, err := mso.Sweep(s, func(qa int32) (*discovery.Outcome, error) {
			return spillbound.Run(s, discovery.NewSimEngine(s, qa))
		}, mso.Options{})
		if err != nil {
			return nil, err
		}
		rep.AddRow(f2(ratio), fmt.Sprintf("%d", len(s.Contours)), f2(res.MSO), f2(res.ASO))
	}
	return rep, nil
}

// AblationAnorexicLambda studies PlanBouquet's reduction threshold λ:
// larger λ shrinks ρ_red (tighter guarantee) but inflates budgets.
func (h *Harness) AblationAnorexicLambda() (*Report, error) {
	spec, err := workload.ByName("4D_Q91")
	if err != nil {
		return nil, err
	}
	s, err := h.space(spec)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Title:  "Ablation — anorexic reduction λ (4D_Q91, PlanBouquet)",
		Header: []string{"lambda", "rho_red", "PB MSOg", "PB MSOe", "PB ASO"},
	}
	rep.AddRow("unreduced", fmt.Sprintf("%d", s.RhoUnreduced()),
		f1(4*float64(s.RhoUnreduced())), "-", "-")
	for _, lambda := range []float64{0, 0.1, 0.2, 0.5} {
		red := s.Reduce(lambda)
		res, err := mso.Sweep(s, func(qa int32) (*discovery.Outcome, error) {
			return bouquet.Run(s, red, discovery.NewSimEngine(s, qa))
		}, mso.Options{})
		if err != nil {
			return nil, err
		}
		rep.AddRow(f2(lambda), fmt.Sprintf("%d", red.Rho),
			f1(bouquet.Guarantee(red)), f2(res.MSO), f2(res.ASO))
	}
	return rep, nil
}

// AblationGridResolution studies the sensitivity of the empirical MSO to
// the ESS discretization.
func (h *Harness) AblationGridResolution() (*Report, error) {
	spec, err := workload.ByName("2D_Q91")
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Title:  "Ablation — grid resolution (2D_Q91, SpillBound)",
		Header: []string{"res/dim", "locations", "plans", "SB MSOe", "SB ASO"},
	}
	for _, res := range []int{8, 12, 16, 24, 32} {
		s, err := ablationSpace(spec, h.Opts.Scale, res, 2.0)
		if err != nil {
			return nil, err
		}
		r, err := mso.Sweep(s, func(qa int32) (*discovery.Outcome, error) {
			return spillbound.Run(s, discovery.NewSimEngine(s, qa))
		}, mso.Options{})
		if err != nil {
			return nil, err
		}
		rep.AddRow(fmt.Sprintf("%d", res), fmt.Sprintf("%d", s.Grid.NumPoints()),
			fmt.Sprintf("%d", s.NumPlans()), f2(r.MSO), f2(r.ASO))
	}
	return rep, nil
}

// AblationOptimizerProbes studies AlignedBound with and without the
// per-spill-class optimizer hook (§6.1's engine feature): without it,
// replacements come only from the POSP pool.
func (h *Harness) AblationOptimizerProbes() (*Report, error) {
	spec, err := workload.ByName("4D_Q91")
	if err != nil {
		return nil, err
	}
	s, err := h.space(spec)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Title:  "Ablation — AlignedBound optimizer probes (4D_Q91)",
		Header: []string{"probes", "AB MSOe", "AB ASO"},
	}
	for _, use := range []bool{true, false} {
		c, err := core.Compile(s, core.CompileOptions{Lambda: h.Opts.Lambda})
		if err != nil {
			return nil, err
		}
		c.Planner().UseOptimizer = use
		res, err := c.MSO(core.AlignedBound, mso.Options{})
		if err != nil {
			return nil, err
		}
		label := "pool only"
		if use {
			label = "pool + optimizer"
		}
		rep.AddRow(label, f2(res.MSO), f2(res.ASO))
	}
	return rep, nil
}

// AblationOneDEndgame studies the 1-D terminal phase: the paper's choice
// of regular (non-spill) execution versus continuing to spill. Spilling
// in 1-D learns the final selectivity exactly but must then pay one more
// full execution, weakening the bound ([14], §4.1).
func (h *Harness) AblationOneDEndgame() (*Report, error) {
	spec, err := workload.ByName("2D_Q91")
	if err != nil {
		return nil, err
	}
	s, err := h.space(spec)
	if err != nil {
		return nil, err
	}
	regular, err := mso.Sweep(s, func(qa int32) (*discovery.Outcome, error) {
		return spillbound.Run(s, discovery.NewSimEngine(s, qa))
	}, mso.Options{})
	if err != nil {
		return nil, err
	}
	spilling, err := mso.Sweep(s, func(qa int32) (*discovery.Outcome, error) {
		return runSpillOneD(s, qa)
	}, mso.Options{})
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Title:  "Ablation — 1-D endgame mode (2D_Q91, SpillBound)",
		Header: []string{"endgame", "MSOe", "ASO"},
	}
	rep.AddRow("regular execution (paper)", f2(regular.MSO), f2(regular.ASO))
	rep.AddRow("spill execution", f2(spilling.MSO), f2(spilling.ASO))
	return rep, nil
}

// runSpillOneD is the endgame variant that keeps spilling in the 1-D
// phase: it learns the last selectivity exactly through spill
// executions, then pays a final full execution of the now-known optimal
// plan.
func runSpillOneD(s *ess.Space, qa int32) (*discovery.Outcome, error) {
	eng := discovery.NewSimEngine(s, qa)
	out := &discovery.Outcome{}
	st := discovery.NewState(s.Grid.D)
	m := len(s.ContourCosts())

	ci := 0
	for ci < m && !out.Completed {
		contours := s.ContoursFor(st.Learned)
		ic := &contours[ci]
		if st.Remaining() == 1 {
			dim := st.RemainingDims()[0]
			// Spill the line's plan; on exact learning, run the optimal
			// plan at the fully known location.
			best, bestCoord := int32(-1), -1
			for _, pt := range ic.Points {
				if !st.Compatible(s.Grid, pt) {
					continue
				}
				if c := s.Grid.Coord(int(pt), dim); c > bestCoord {
					best, bestCoord = pt, c
				}
			}
			if best < 0 {
				ci++
				continue
			}
			pid := s.PointPlan[best]
			c, done, learned := eng.ExecSpill(pid, dim, ic.Cost)
			out.Add(discovery.Step{Contour: ci + 1, PlanID: pid, Dim: dim,
				Budget: ic.Cost, Cost: c, Completed: done,
				Phase: discovery.PhaseSpill, LearnedIdx: learned})
			if done {
				st.Learn(dim, learned)
				final := int32(s.Grid.Linear(st.Learned))
				fp := s.PointPlan[final]
				fc, fdone := eng.ExecFull(fp, s.PointCost[final])
				out.Add(discovery.Step{Contour: ci + 1, PlanID: fp, Dim: -1,
					Budget: s.PointCost[final], Cost: fc, Completed: fdone,
					Phase: discovery.PhaseOneD, LearnedIdx: -1})
				if !fdone {
					return out, fmt.Errorf("ablation: final execution failed")
				}
				out.Completed = true
				return out, nil
			}
			st.Raise(dim, learned)
			ci++
			continue
		}
		execs := spillbound.ChooseSpillPlans(s, st, ic)
		progressed := false
		for _, ex := range execs {
			c, done, learned := eng.ExecSpill(ex.PlanID, ex.Dim, ic.Cost)
			out.Add(discovery.Step{Contour: ci + 1, PlanID: ex.PlanID, Dim: ex.Dim,
				Budget: ic.Cost, Cost: c, Completed: done,
				Phase: discovery.PhaseSpill, LearnedIdx: learned})
			if done {
				st.Learn(ex.Dim, learned)
				progressed = true
				break
			}
			st.Raise(ex.Dim, learned)
		}
		if !progressed {
			ci++
		}
	}
	if !out.Completed {
		return out, fmt.Errorf("ablation: discovery did not complete")
	}
	return out, nil
}

// Package experiments reproduces every table and figure of the paper's
// evaluation (§6): each experiment builds the needed search spaces, runs
// the algorithms, and renders the same rows/series the paper reports.
// EXPERIMENTS.md records paper-vs-measured values for each one.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Report is a rendered experiment result: a titled text table plus
// explanatory notes.
type Report struct {
	// Title identifies the experiment (e.g. "Fig. 8 — MSO guarantees").
	Title string
	// Header names the columns.
	Header []string
	// Rows are the data rows.
	Rows [][]string
	// Notes carry caveats (grid resolution, strides, substitutions).
	Notes []string
}

// AddRow appends a row of stringified cells.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// Render writes the report as an aligned text table.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n%s\n", r.Title, strings.Repeat("=", len([]rune(r.Title))))
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len([]rune(h))
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len([]rune(c))
			}
			fmt.Fprintf(w, "%s%s", c, strings.Repeat(" ", pad+2))
		}
		fmt.Fprintln(w)
	}
	line(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// f1 formats a float with one decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// pct formats a fraction as an integer percentage.
func pct(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }

package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/faultinject"
	"repro/internal/workload"
)

func compiledFor(t *testing.T, name string) *core.Compiled {
	t.Helper()
	spec, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	s, err := spec.Space(1.0, 6)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.Compile(s, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// Every parallelism level must execute the same work mix: the run→qa
// mapping is a pure function of the run index, so total step counts are
// identical regardless of worker count or scheduling.
func TestThroughputSameWorkMixAcrossParallelism(t *testing.T) {
	c := compiledFor(t, "2D_Q91")
	var steps []int
	for _, p := range []int{1, 3, 8} {
		res, err := Throughput(c, ThroughputOptions{Parallel: p, Runs: 24})
		if err != nil {
			t.Fatalf("parallel=%d: %v", p, err)
		}
		if res.Parallel != p || res.Runs != 24 {
			t.Fatalf("parallel=%d: options not echoed: %+v", p, res)
		}
		if res.DiscoveriesPerSec <= 0 || res.MeanLatency <= 0 || res.MaxLatency < res.P95 {
			t.Fatalf("parallel=%d: implausible aggregates: %+v", p, res)
		}
		steps = append(steps, res.TotalSteps)
	}
	for _, s := range steps[1:] {
		if s != steps[0] {
			t.Fatalf("total steps diverge across parallelism levels: %v", steps)
		}
	}
}

// Forked fault substreams keep chaos throughput runs deterministic: the
// same base seed yields the same total step count at any worker count.
func TestThroughputChaosDeterministic(t *testing.T) {
	c := compiledFor(t, "2D_Q91")
	var steps []int
	for _, p := range []int{1, 4, 4} {
		res, err := Throughput(c, ThroughputOptions{
			Parallel: p, Runs: 16,
			Faults: faultinject.NewUniform(2016, 0.05),
		})
		if err != nil {
			t.Fatalf("parallel=%d: %v", p, err)
		}
		steps = append(steps, res.TotalSteps)
	}
	for _, s := range steps[1:] {
		if s != steps[0] {
			t.Fatalf("chaos step counts diverge across schedules: %v", steps)
		}
	}
}

// The executor pool hands out working executors and survives reuse.
func TestExecutorPoolReuse(t *testing.T) {
	h := small()
	spec, err := workload.ByName("2D_Q91")
	if err != nil {
		t.Fatal(err)
	}
	q, err := spec.Load(h.Opts.Scale)
	if err != nil {
		t.Fatal(err)
	}
	// No store: Get must still construct executors; Put must accept them
	// back without panicking even when armed with faults.
	pool := NewExecutorPool(q, nil, cost.DefaultParams())
	a := pool.Get()
	if a == nil {
		t.Fatal("pool returned nil executor")
	}
	a.WithFaults(faultinject.NewUniform(1, 1))
	pool.Put(a)
	b := pool.Get()
	if b == nil {
		t.Fatal("pool returned nil executor after Put")
	}
	pool.Put(b)
}

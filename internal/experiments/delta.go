package experiments

import (
	"fmt"

	"repro/internal/core/discovery"
	"repro/internal/core/spillbound"
	"repro/internal/workload"
)

// AblationCostModelError validates the deployment claim of §7: if the
// cost model's predictions are only accurate within a (1±δ) factor, the
// MSO guarantees carry through inflated by ≈ (1+δ)². SpillBound runs
// against a NoisyEngine whose true costs deviate per-plan by up to δ
// (and whose kill limits compensate by (1+δ)); the observed MSO must
// stay under (D²+3D)·(1+δ)².
func (h *Harness) AblationCostModelError() (*Report, error) {
	spec, err := workload.ByName("2D_Q91")
	if err != nil {
		return nil, err
	}
	s, err := h.space(spec)
	if err != nil {
		return nil, err
	}
	d := s.Grid.D
	base := spillbound.Guarantee(d)
	rep := &Report{
		Title:  "Ablation — bounded cost-model error δ (2D_Q91, SpillBound)",
		Header: []string{"delta", "MSOe", "bound·(1+δ)²", "within"},
	}
	for _, delta := range []float64{0, 0.1, 0.3, 0.5} {
		worst := 0.0
		for qa := 0; qa < s.Grid.NumPoints(); qa++ {
			eng := discovery.NewNoisyEngine(s, int32(qa), delta, 0xD5)
			out, err := spillbound.Run(s, eng)
			if err != nil {
				return nil, err
			}
			// Fair denominator: the engine's true optimal cost.
			if so := out.TotalCost / eng.TrueOptCost(); so > worst {
				worst = so
			}
		}
		inflated := base * (1 + delta) * (1 + delta)
		ok := "yes"
		if worst > inflated {
			ok = "NO"
		}
		rep.AddRow(f2(delta), f2(worst), f1(inflated), ok)
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("base guarantee D²+3D = %.0f; per-plan deterministic noise, seed 0xD5", base))
	return rep, nil
}

package experiments

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/core/discovery"
	"repro/internal/cost"
	"repro/internal/datagen"
	"repro/internal/ess"
	"repro/internal/exec"
	"repro/internal/faultinject"
	"repro/internal/optimizer"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/workload"
)

// msoFixture holds one small real-execution setup (the EQ query over
// generated data) shared by the engine-differential tests below.
type msoFixture struct {
	q        *query.Query
	store    *storage.Store
	space    *ess.Space
	compiled *core.Compiled
}

func buildMSOFixture(t *testing.T) *msoFixture {
	t.Helper()
	spec, err := workload.ByName("EQ")
	if err != nil {
		t.Fatal(err)
	}
	q, err := spec.Load(0.2)
	if err != nil {
		t.Fatal(err)
	}
	store, err := datagen.Populate(q.Cat, datagen.Options{Seed: 2016, BuildIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	st, err := stats.FromData(q.Cat, store, 24)
	if err != nil {
		t.Fatal(err)
	}
	space, err := ess.Build(q, optimizer.BuildEnv(q, st), cost.NewModel(cost.DefaultParams()), ess.Config{Res: 5})
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := core.Compile(space, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return &msoFixture{q: q, store: store, space: space, compiled: compiled}
}

// discoverReal runs one discovery over real executions with a fresh
// executor in the requested engine mode, optionally with armed faults.
func (f *msoFixture) discoverReal(t *testing.T, alg core.Algorithm, vectorized bool,
	mkFaults func() *faultinject.Injector) (*discovery.Outcome, error) {
	t.Helper()
	ex := exec.New(f.q, f.store, cost.DefaultParams()).Vectorized(vectorized)
	if mkFaults != nil {
		ex.WithFaults(mkFaults())
	}
	return f.compiled.NewRun().DiscoverWith(alg,
		discovery.NewResilient(NewRealEngine(f.space, ex), discovery.DefaultRetryPolicy))
}

// compareOutcomes asserts two discovery outcomes are bit-for-bit
// identical: same step trace (plans, budgets, exact costs, learned
// indices), same totals, and the same degradation ledger.
func compareOutcomes(t *testing.T, name string, tup, vec *discovery.Outcome) {
	t.Helper()
	if !reflect.DeepEqual(tup.Steps, vec.Steps) {
		t.Errorf("%s: step traces differ\n tuple: %+v\n  vec:  %+v", name, tup.Steps, vec.Steps)
	}
	if tup.TotalCost != vec.TotalCost || tup.WastedCost != vec.WastedCost {
		t.Errorf("%s: cost ledger differs: tuple (%.17g, %.17g) vec (%.17g, %.17g)",
			name, tup.TotalCost, tup.WastedCost, vec.TotalCost, vec.WastedCost)
	}
	if tup.Completed != vec.Completed || tup.Retries != vec.Retries || tup.AlignPenalty != vec.AlignPenalty {
		t.Errorf("%s: completed/retries/penalty differ: tuple (%v,%d,%g) vec (%v,%d,%g)",
			name, tup.Completed, tup.Retries, tup.AlignPenalty, vec.Completed, vec.Retries, vec.AlignPenalty)
	}
	if !reflect.DeepEqual(tup.Degradations, vec.Degradations) {
		t.Errorf("%s: degradations differ\n tuple: %+v\n  vec:  %+v", name, tup.Degradations, vec.Degradations)
	}
}

// TestDifferentialDiscoveryClean proves that a full discovery driven by
// the vectorized executor reproduces the tuple engine's outcome exactly
// — every step's cost, every learned selectivity index, and the total —
// for all three algorithms, with no faults armed. This is the MSO-level
// closure of the per-run differential suite in internal/exec: the
// discovery state machine only observes (Cost, Completed, JoinSel), all
// of which the batched engine reproduces bit for bit.
func TestDifferentialDiscoveryClean(t *testing.T) {
	f := buildMSOFixture(t)
	for _, alg := range []core.Algorithm{core.PlanBouquet, core.SpillBound, core.AlignedBound} {
		tup, errT := f.discoverReal(t, alg, false, nil)
		vec, errV := f.discoverReal(t, alg, true, nil)
		if errT != nil || errV != nil {
			t.Fatalf("alg %v: tuple err %v, vec err %v", alg, errT, errV)
		}
		compareOutcomes(t, string(alg), tup, vec)
		if len(tup.Degradations) != 0 {
			t.Errorf("%s: clean run took degradations: %+v", alg, tup.Degradations)
		}
	}
}

// TestDifferentialDiscoveryChaos replays full discoveries under
// deterministic fault schedules (kills, dropped observations, panics,
// latency) through both engines. Armed faults force the vectorized
// executor into lockstep mode, so the injector's site/sequence stream —
// and therefore every retry, degradation, and wasted-cost entry the
// resilient driver records — must match the tuple engine exactly.
func TestDifferentialDiscoveryChaos(t *testing.T) {
	f := buildMSOFixture(t)
	rates := map[faultinject.Site]float64{
		faultinject.SiteScanTuple:     0.02,
		faultinject.SiteIndexProbe:    0.05,
		faultinject.SiteOperatorPanic: 0.01,
		faultinject.SiteSpillObs:      0.20,
		faultinject.SiteLatency:       0.05,
	}
	for seed := uint64(1); seed <= 4; seed++ {
		for _, pf := range []float64{0, 1} {
			mk := func() *faultinject.Injector {
				return faultinject.New(faultinject.Config{
					Seed: seed, Rates: rates, PersistentFrac: pf, MaxPerSite: 2,
				})
			}
			for _, alg := range []core.Algorithm{core.SpillBound, core.AlignedBound} {
				tup, errT := f.discoverReal(t, alg, false, mk)
				vec, errV := f.discoverReal(t, alg, true, mk)
				if (errT == nil) != (errV == nil) ||
					(errT != nil && errV != nil && errT.Error() != errV.Error()) {
					t.Fatalf("seed %d pf %g alg %v: errors diverge: tuple %v, vec %v",
						seed, pf, alg, errT, errV)
				}
				if errT != nil {
					continue
				}
				compareOutcomes(t, string(alg)+"-seed"+string(rune('0'+seed)), tup, vec)
			}
		}
	}
}

// Package faultinject provides a deterministic, seed-driven fault
// injector for chaos-testing the robust query processing stack. Faults
// are decided at named sites (storage access paths, executor operators,
// engine-level executions, the alignment planner) by a pure function of
// (seed, site, per-site sequence number), so a single uint64 seed
// reproduces the complete fault schedule bit for bit — the property the
// chaos suite's determinism assertions rely on.
//
// The injector is a leaf dependency: it imports only the standard
// library, so every layer of the engine (exec, discovery, core) can hook
// into it without import cycles. All methods are safe on a nil receiver
// (they report "no fault"), so call sites need no nil guards, and are
// safe for concurrent use.
package faultinject

import (
	"fmt"
	"sync"
)

// Site identifies one injection point in the engine.
type Site string

// The injection sites wired into the stack.
const (
	// SiteScanTuple faults a sequential-scan tuple read (transient
	// storage error surfaced mid-stream).
	SiteScanTuple Site = "scan.tuple"
	// SiteIndexProbe faults an index-scan probe; persistent probe faults
	// trigger the index→seq-scan degradation ladder.
	SiteIndexProbe Site = "index.probe"
	// SiteOperatorPanic makes an operator panic mid-iteration; the
	// executor must convert it into a typed *exec.OperatorError.
	SiteOperatorPanic Site = "operator.panic"
	// SiteSpillObs drops the selectivity observation of a completed
	// spill-mode execution (the run-time monitor loses its sample).
	SiteSpillObs Site = "spill.obs"
	// SiteLatency induces meter drift: extra accounted cost units beyond
	// the modeled work (simulated latency).
	SiteLatency Site = "latency"
	// SiteEngineFull faults a full (non-spill) engine execution partway.
	SiteEngineFull Site = "engine.full"
	// SiteEngineSpill faults a spill-mode engine execution partway.
	SiteEngineSpill Site = "engine.spill"
	// SiteAlignPlanner faults the AlignedBound alignment planner,
	// triggering the AlignedBound→SpillBound fallback.
	SiteAlignPlanner Site = "planner.align"
	// SiteSnapshotSave faults an ESS snapshot write mid-stream,
	// simulating a crash while persisting; the atomic save path must
	// leave the target file untouched.
	SiteSnapshotSave Site = "snapshot.save"
	// SiteServeRun faults a server-side discovery before it starts
	// (artifact/engine failure), feeding the per-workload circuit
	// breaker.
	SiteServeRun Site = "serve.run"
	// SiteCacheEvict faults a signature-keyed artifact-cache lookup by
	// evicting the entry first (simulated memory pressure): the request
	// sees a miss and must recompile or coalesce onto an in-flight build.
	SiteCacheEvict Site = "cache.evict"
	// SiteCoalesceLeader faults the leader of a coalesced compile flight
	// before it compiles. Waiters must not be poisoned: they retry with
	// jittered exponential backoff and a later leader succeeds.
	SiteCoalesceLeader Site = "coalesce.leader"
	// SiteOutcomeEvict faults a deterministic outcome-cache lookup by
	// evicting the entry just before it is consulted, forcing a fresh
	// execution — memory pressure on the result cache, made
	// deterministic.
	SiteOutcomeEvict Site = "outcome.evict"
	// SitePeerDown marks a shard-out peer unreachable for one forwarding
	// attempt, driving the hedged-failover path deterministically.
	SitePeerDown Site = "peer.down"
)

// Sites lists every known injection site (the -chaos-rate flag arms all
// of them uniformly).
func Sites() []Site {
	return []Site{
		SiteScanTuple, SiteIndexProbe, SiteOperatorPanic, SiteSpillObs,
		SiteLatency, SiteEngineFull, SiteEngineSpill, SiteAlignPlanner,
		SiteSnapshotSave, SiteServeRun,
		SiteCacheEvict, SiteCoalesceLeader, SiteOutcomeEvict, SitePeerDown,
	}
}

// Class classifies a fault for the retry policy.
type Class int

const (
	// Transient faults are expected to clear on retry (momentary storage
	// hiccups, lost observations); the stack retries them with backoff.
	Transient Class = iota
	// Persistent faults will recur on retry; the stack degrades instead
	// (index→seq scan, learning-free spill, AlignedBound→SpillBound).
	Persistent
)

// String returns the class label used in degradation records.
func (c Class) String() string {
	if c == Persistent {
		return "persistent"
	}
	return "transient"
}

// Fault is one injected fault. It implements error so it can propagate
// through ordinary error paths, and carries its retry classification.
type Fault struct {
	// Site is the injection point that fired.
	Site Site
	// Class is the retry classification.
	Class Class
	// Seq is the per-site sequence number at which the fault fired.
	Seq uint64
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("faultinject: %s fault at %s (seq %d)", f.Class, f.Site, f.Seq)
}

// Transient reports whether retrying may clear the fault. The executor
// and the resilient discovery driver test for this interface (rather
// than this concrete type) when deciding whether to retry.
func (f *Fault) Transient() bool { return f.Class == Transient }

// Config parameterizes an injector.
type Config struct {
	// Seed drives every fault decision; the same seed yields the same
	// schedule for the same call sequence.
	Seed uint64
	// Rates maps each site to its per-check fault probability in [0, 1].
	// Absent sites never fault.
	Rates map[Site]float64
	// PersistentFrac is the fraction of fired faults classified
	// Persistent (default 0: all faults transient).
	PersistentFrac float64
	// DriftMax bounds the per-event meter drift fraction returned by
	// Drift (default 0.25).
	DriftMax float64
	// MaxPerSite caps the number of faults a site fires (0 = unlimited).
	// Tests use 1 to model a fault that clears on the first retry.
	MaxPerSite uint64
}

// Injector decides faults deterministically from a seed. The zero value
// and the nil pointer both inject nothing.
type Injector struct {
	cfg Config

	mu    sync.Mutex
	seq   map[Site]uint64
	hits  map[Site]uint64
	fired []Fault
}

// New creates an injector from the config.
func New(cfg Config) *Injector {
	if cfg.DriftMax == 0 {
		cfg.DriftMax = 0.25
	}
	return &Injector{cfg: cfg, seq: make(map[Site]uint64), hits: make(map[Site]uint64)}
}

// NewUniform creates an injector firing every site at the same rate —
// the shape behind the rqp -chaos-seed/-chaos-rate flags.
func NewUniform(seed uint64, rate float64) *Injector {
	rates := make(map[Site]float64, len(Sites()))
	for _, s := range Sites() {
		rates[s] = rate
	}
	return New(Config{Seed: seed, Rates: rates})
}

// Fork derives the substream injector for run id: same rates and
// classification knobs, but a seed that is a pure function of (parent
// seed, id), with fresh sequence counters and an empty fault log. Every
// concurrent run forks its own substream, so a run's fault schedule
// depends only on its id and the parent seed — never on how goroutines
// interleave. Forking is repeatable: Fork(id) twice yields injectors
// with identical schedules. Forking a nil injector yields nil (no
// faults), so call sites need no guards.
func (in *Injector) Fork(id uint64) *Injector {
	if in == nil {
		return nil
	}
	cfg := in.cfg
	cfg.Seed = splitmix64(in.cfg.Seed ^ splitmix64(id^0xd6e8feb86659fd93))
	return New(cfg)
}

// splitmix64 is the finalizer of the SplitMix64 generator: a cheap,
// high-quality bijective hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashSite folds a site name into 64 bits (FNV-1a).
func hashSite(s Site) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// unit maps the decision hash for (seed, site, seq, salt) to [0, 1).
func (in *Injector) unit(site Site, seq, salt uint64) float64 {
	x := splitmix64(in.cfg.Seed ^ hashSite(site) ^ splitmix64(seq) ^ salt)
	return float64(x>>11) / float64(1<<53)
}

// Check advances the site's sequence and returns a *Fault if the
// schedule fires there, nil otherwise.
func (in *Injector) Check(site Site) error {
	if in == nil {
		return nil
	}
	rate := in.cfg.Rates[site]
	in.mu.Lock()
	defer in.mu.Unlock()
	seq := in.seq[site]
	in.seq[site] = seq + 1
	if rate <= 0 || in.unit(site, seq, 0) >= rate {
		return nil
	}
	if in.cfg.MaxPerSite > 0 && in.hits[site] >= in.cfg.MaxPerSite {
		return nil
	}
	in.hits[site]++
	f := Fault{Site: site, Class: Transient, Seq: seq}
	if in.cfg.PersistentFrac > 0 && in.unit(site, seq, 0x5bf03635) < in.cfg.PersistentFrac {
		f.Class = Persistent
	}
	in.fired = append(in.fired, f)
	return &f
}

// Trip is Check for sites whose fault is not an error (e.g. a panic
// decision); it reports whether the site fired.
func (in *Injector) Trip(site Site) bool { return in.Check(site) != nil }

// Drift advances the latency schedule and returns the extra accounted
// cost fraction in (0, DriftMax] for this event, or 0 when the site does
// not fire.
func (in *Injector) Drift(site Site) float64 {
	if in == nil {
		return 0
	}
	err := in.Check(site)
	if err == nil {
		return 0
	}
	f := err.(*Fault)
	u := in.unit(site, f.Seq, 0x7d1f29a3)
	return in.cfg.DriftMax * (u + 1) / 2 // (0, DriftMax], never exactly 0
}

// WasteFraction returns the deterministic fraction of an execution's
// budget wasted before the given fault struck (how far the execution got
// before failing), in [0.1, 0.9].
func (in *Injector) WasteFraction(f *Fault) float64 {
	if in == nil || f == nil {
		return 0
	}
	u := in.unit(f.Site, f.Seq, 0x11c98f2b)
	return 0.1 + 0.8*u
}

// Jitter returns a deterministic backoff jitter factor in [0, 1) for the
// given retry attempt, so even sleep durations replay identically.
func (in *Injector) Jitter(attempt int) float64 {
	if in == nil {
		return 0
	}
	return in.unit("jitter", uint64(attempt), 0x3c6ef372)
}

// Fired returns a copy of the fault log in firing order.
func (in *Injector) Fired() []Fault {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Fault(nil), in.fired...)
}

// Count returns the number of faults fired so far (all sites).
func (in *Injector) Count() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.fired)
}

// Reset clears the sequence counters and the fault log, so the same
// injector replays its schedule from the beginning.
func (in *Injector) Reset() {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.seq = make(map[Site]uint64)
	in.hits = make(map[Site]uint64)
	in.fired = nil
}

// transienter is the classification interface faults expose.
type transienter interface{ Transient() bool }

// IsTransient reports whether err (or an error it wraps) is classified
// transient. Unclassified errors are not transient: retrying an unknown
// failure is how outages amplify.
func IsTransient(err error) bool {
	for err != nil {
		if t, ok := err.(transienter); ok {
			return t.Transient()
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

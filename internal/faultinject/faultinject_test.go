package faultinject

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// The same seed must replay the identical fault schedule.
func TestDeterministicSchedule(t *testing.T) {
	run := func() []Fault {
		in := New(Config{Seed: 42, Rates: map[Site]float64{
			SiteScanTuple:  0.3,
			SiteEngineFull: 0.5,
			SiteSpillObs:   0.1,
		}, PersistentFrac: 0.4})
		for i := 0; i < 200; i++ {
			in.Check(SiteScanTuple)
			in.Check(SiteEngineFull)
			in.Check(SiteSpillObs)
		}
		return in.Fired()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no faults fired at substantial rates")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("schedules differ: %d vs %d faults", len(a), len(b))
	}
}

// Different seeds must produce different schedules.
func TestSeedChangesSchedule(t *testing.T) {
	fire := func(seed uint64) []Fault {
		in := New(Config{Seed: seed, Rates: map[Site]float64{SiteScanTuple: 0.5}})
		for i := 0; i < 100; i++ {
			in.Check(SiteScanTuple)
		}
		return in.Fired()
	}
	if reflect.DeepEqual(fire(1), fire(2)) {
		t.Fatal("seeds 1 and 2 produced identical schedules")
	}
}

// The empirical firing rate must track the configured rate.
func TestRateIsRespected(t *testing.T) {
	for _, rate := range []float64{0, 0.1, 0.5, 1} {
		in := New(Config{Seed: 7, Rates: map[Site]float64{SiteEngineFull: rate}})
		n := 5000
		hits := 0
		for i := 0; i < n; i++ {
			if in.Check(SiteEngineFull) != nil {
				hits++
			}
		}
		got := float64(hits) / float64(n)
		if got < rate-0.05 || got > rate+0.05 {
			t.Errorf("rate %v: empirical %v", rate, got)
		}
	}
}

// An unarmed site must never fire.
func TestUnarmedSiteNeverFires(t *testing.T) {
	in := New(Config{Seed: 3, Rates: map[Site]float64{SiteScanTuple: 1}})
	for i := 0; i < 100; i++ {
		if err := in.Check(SiteIndexProbe); err != nil {
			t.Fatal("unarmed site fired:", err)
		}
	}
}

// PersistentFrac must split classifications, and both classes must
// round-trip through IsTransient (including wrapped).
func TestClassification(t *testing.T) {
	in := New(Config{Seed: 11, Rates: map[Site]float64{SiteScanTuple: 1}, PersistentFrac: 0.5})
	var tr, pe int
	for i := 0; i < 400; i++ {
		err := in.Check(SiteScanTuple)
		if err == nil {
			t.Fatal("rate-1 site did not fire")
		}
		wrapped := fmt.Errorf("outer: %w", err)
		if IsTransient(err) != IsTransient(wrapped) {
			t.Fatal("wrapping changed classification")
		}
		if IsTransient(err) {
			tr++
		} else {
			pe++
		}
	}
	if tr == 0 || pe == 0 {
		t.Fatalf("classification not split: %d transient, %d persistent", tr, pe)
	}
}

// MaxPerSite must cap firing, modelling faults that clear on retry.
func TestMaxPerSite(t *testing.T) {
	in := New(Config{Seed: 5, Rates: map[Site]float64{SiteScanTuple: 1}, MaxPerSite: 2})
	hits := 0
	for i := 0; i < 50; i++ {
		if in.Check(SiteScanTuple) != nil {
			hits++
		}
	}
	if hits != 2 {
		t.Fatalf("MaxPerSite=2 fired %d times", hits)
	}
}

// Drift must return 0 when unarmed and values in (0, DriftMax] when it
// fires; the full sequence must be seed-deterministic.
func TestDrift(t *testing.T) {
	seq := func() []float64 {
		in := New(Config{Seed: 13, Rates: map[Site]float64{SiteLatency: 0.5}, DriftMax: 0.25})
		var out []float64
		for i := 0; i < 100; i++ {
			out = append(out, in.Drift(SiteLatency))
		}
		return out
	}
	a, b := seq(), b2(seq)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("drift sequence not deterministic")
	}
	fired := 0
	for _, d := range a {
		if d < 0 || d > 0.25 {
			t.Fatalf("drift %v outside [0, 0.25]", d)
		}
		if d > 0 {
			fired++
		}
	}
	if fired == 0 {
		t.Fatal("drift never fired at rate 0.5")
	}
}

func b2(f func() []float64) []float64 { return f() }

// A nil injector must be inert everywhere.
func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Check(SiteScanTuple) != nil || in.Trip(SiteOperatorPanic) ||
		in.Drift(SiteLatency) != 0 || in.Count() != 0 || in.Fired() != nil ||
		in.Jitter(3) != 0 || in.WasteFraction(nil) != 0 {
		t.Fatal("nil injector injected something")
	}
	in.Reset() // must not panic
}

// Reset must replay the schedule from the start.
func TestResetReplays(t *testing.T) {
	in := New(Config{Seed: 21, Rates: map[Site]float64{SiteEngineSpill: 0.5}})
	first := make([]bool, 50)
	for i := range first {
		first[i] = in.Check(SiteEngineSpill) != nil
	}
	in.Reset()
	for i := range first {
		if got := in.Check(SiteEngineSpill) != nil; got != first[i] {
			t.Fatalf("replay diverged at %d", i)
		}
	}
}

// IsTransient must be false for unclassified errors and respect custom
// classifications.
func TestIsTransient(t *testing.T) {
	if IsTransient(errors.New("plain")) {
		t.Fatal("plain error classified transient")
	}
	if IsTransient(nil) {
		t.Fatal("nil classified transient")
	}
	f := &Fault{Site: SiteScanTuple, Class: Transient}
	if !IsTransient(fmt.Errorf("a: %w", fmt.Errorf("b: %w", f))) {
		t.Fatal("doubly wrapped transient fault not detected")
	}
	p := &Fault{Site: SiteScanTuple, Class: Persistent}
	if IsTransient(p) {
		t.Fatal("persistent fault classified transient")
	}
}

// Concurrent use must be safe (run with -race) and lose no decisions.
func TestConcurrentChecks(t *testing.T) {
	in := New(Config{Seed: 9, Rates: map[Site]float64{SiteScanTuple: 0.5}})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				in.Check(SiteScanTuple)
				in.Drift(SiteLatency)
			}
		}()
	}
	wg.Wait()
	// 8*500 checks at rate 0.5: the log must hold roughly half.
	if c := in.Count(); c < 1500 || c > 2500 {
		t.Fatalf("unexpected fault count %d", c)
	}
}

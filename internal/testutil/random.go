package testutil

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/expr"
	"repro/internal/query"
)

// RandomQuery generates a random valid SPJ query over the TPC-DS
// catalog: nRels random relations joined by a random spanning tree on
// random (type-compatible) columns, random filters, and d random epps.
// The same seed always yields the same query, so failures reproduce.
func RandomQuery(seed uint64, cat *catalog.Catalog, nRels, d int) (*query.Query, error) {
	rng := datagen.NewRNG(seed)
	tables := cat.Tables()
	if nRels < 1 || nRels > len(tables) {
		return nil, fmt.Errorf("testutil: nRels %d out of range", nRels)
	}

	q := &query.Query{Name: fmt.Sprintf("rand_%d", seed), Cat: cat}
	for i := 0; i < nRels; i++ {
		t := tables[rng.Intn(int64(len(tables)))]
		q.Relations = append(q.Relations, query.Relation{
			Table: t.Name,
			Alias: fmt.Sprintf("r%d", i),
		})
	}

	// Random spanning tree: relation i joins a random earlier relation.
	for i := 1; i < nRels; i++ {
		other := int(rng.Intn(int64(i)))
		lc := randomColumn(rng, cat, q.Relations[i].Table)
		rc := randomColumn(rng, cat, q.Relations[other].Table)
		q.Joins = append(q.Joins, query.Join{
			ID:      len(q.Joins),
			LeftRel: i, RightRel: other,
			LeftCol: lc, RightCol: rc,
		})
	}

	// Random filters on ~half the relations (attribute columns only,
	// so filters stay selective but non-empty).
	for i := range q.Relations {
		if rng.Intn(2) == 0 {
			continue
		}
		t := cat.MustTable(q.Relations[i].Table)
		for _, col := range t.Columns {
			if col.Dist != catalog.Uniform && col.Dist != catalog.Zipf {
				continue
			}
			mid := col.Min + (col.Max-col.Min)/2
			ops := []expr.CmpOp{expr.LE, expr.GE, expr.LT, expr.GT}
			q.Relations[i].Filters = append(q.Relations[i].Filters, query.FilterPred{
				Column: col.Name,
				Op:     ops[rng.Intn(int64(len(ops)))],
				Value:  mid,
			})
			break
		}
	}

	// Random epp subset of size d.
	if d > len(q.Joins) {
		return nil, fmt.Errorf("testutil: d=%d exceeds %d joins", d, len(q.Joins))
	}
	perm := make([]int, len(q.Joins))
	for i := range perm {
		perm[i] = i
	}
	for i := len(perm) - 1; i > 0; i-- {
		j := int(rng.Intn(int64(i + 1)))
		perm[i], perm[j] = perm[j], perm[i]
	}
	q.EPPs = append(q.EPPs, perm[:d]...)

	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("testutil: generated invalid query: %w", err)
	}
	return q, nil
}

func randomColumn(rng *datagen.RNG, cat *catalog.Catalog, table string) string {
	t := cat.MustTable(table)
	return t.Columns[rng.Intn(int64(len(t.Columns)))].Name
}

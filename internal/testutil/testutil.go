// Package testutil builds small ESS spaces shared by the algorithm test
// suites, so each package doesn't repeat the catalog/query/space
// plumbing.
package testutil

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/ess"
	"repro/internal/optimizer"
	"repro/internal/query"
	"repro/internal/sqlparse"
	"repro/internal/stats"
)

// Query2D is a three-relation TPC-DS join with two error-prone join
// predicates (the paper's running EQ shape).
const Query2D = `
SELECT * FROM catalog_sales cs, date_dim d, customer c
WHERE cs.cs_sold_date_sk = d.date_dim_sk
  AND cs.cs_bill_customer_sk = c.c_customer_sk
  AND d.d_year = 2000`

// EPPs2D are the epp markings for Query2D.
var EPPs2D = [][2]string{
	{"cs.cs_sold_date_sk", "d.date_dim_sk"},
	{"cs.cs_bill_customer_sk", "c.c_customer_sk"},
}

// Query3D is a four-relation star join with three epps.
const Query3D = `
SELECT * FROM store_sales ss, date_dim d, item i, store s
WHERE ss.ss_sold_date_sk = d.date_dim_sk
  AND ss.ss_item_sk = i.item_sk
  AND ss.ss_store_sk = s.store_sk
  AND d.d_moy = 5`

// EPPs3D are the epp markings for Query3D.
var EPPs3D = [][2]string{
	{"ss.ss_sold_date_sk", "d.date_dim_sk"},
	{"ss.ss_item_sk", "i.item_sk"},
	{"ss.ss_store_sk", "s.store_sk"},
}

// MustQuery parses and marks a query against a fresh TPC-DS catalog.
func MustQuery(t testing.TB, name, sql string, epps [][2]string) *query.Query {
	t.Helper()
	cat, err := catalog.TPCDS(1)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sqlparse.Parse(name, cat, sql)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range epps {
		if err := sqlparse.MarkEPP(q, e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return q
}

// BuildSpace constructs an ESS space for the query at the given
// resolution using analytic statistics and default cost parameters.
func BuildSpace(t testing.TB, q *query.Query, res int) *ess.Space {
	t.Helper()
	env := optimizer.BuildEnv(q, stats.FromCatalog(q.Cat))
	s, err := ess.Build(q, env, cost.NewModel(cost.DefaultParams()), ess.Config{Res: res})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// Space2D builds the standard 2-D test space.
func Space2D(t testing.TB, res int) *ess.Space {
	return BuildSpace(t, MustQuery(t, "2D_test", Query2D, EPPs2D), res)
}

// Space3D builds the standard 3-D test space.
func Space3D(t testing.TB, res int) *ess.Space {
	return BuildSpace(t, MustQuery(t, "3D_test", Query3D, EPPs3D), res)
}

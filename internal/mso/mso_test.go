package mso

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core/alignedbound"
	"repro/internal/core/bouquet"
	"repro/internal/core/discovery"
	"repro/internal/core/spillbound"
	"repro/internal/testutil"
)

func TestSweepSpillBound(t *testing.T) {
	s := testutil.Space2D(t, 10)
	res, err := Sweep(s, func(qa int32) (*discovery.Outcome, error) {
		return spillbound.Run(s, discovery.NewSimEngine(s, qa))
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != s.Grid.NumPoints() {
		t.Fatalf("exhaustive sweep covered %d points", len(res.Points))
	}
	if res.MSO < 1 || res.MSO > spillbound.Guarantee(2) {
		t.Fatalf("MSOe = %v outside (1, %v]", res.MSO, spillbound.Guarantee(2))
	}
	if res.ASO < 1 || res.ASO > res.MSO {
		t.Fatalf("ASO = %v inconsistent with MSO = %v", res.ASO, res.MSO)
	}
	if res.ArgMax < 0 {
		t.Fatal("ArgMax unset")
	}
	// ArgMax should actually attain MSO.
	found := false
	for i, p := range res.Points {
		if p == res.ArgMax && res.SubOpts[i] == res.MSO {
			found = true
		}
	}
	if !found {
		t.Fatal("ArgMax does not attain MSO")
	}
}

func TestSweepStride(t *testing.T) {
	s := testutil.Space2D(t, 10)
	res, err := Sweep(s, func(qa int32) (*discovery.Outcome, error) {
		return spillbound.Run(s, discovery.NewSimEngine(s, qa))
	}, Options{Stride: 7})
	if err != nil {
		t.Fatal(err)
	}
	want := (s.Grid.NumPoints() + 6) / 7
	if len(res.Points) != want {
		t.Fatalf("stride sweep covered %d points, want %d", len(res.Points), want)
	}
}

// Non-positive strides and workers clamp to safe defaults instead of
// looping forever (stride ≤ 0 would never advance the enumeration).
func TestSweepClampsNonPositiveOptions(t *testing.T) {
	s := testutil.Space2D(t, 10)
	for _, opts := range []Options{{Stride: -1}, {Stride: -3, Workers: -2}} {
		res, err := Sweep(s, func(qa int32) (*discovery.Outcome, error) {
			return spillbound.Run(s, discovery.NewSimEngine(s, qa))
		}, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Points) != s.Grid.NumPoints() {
			t.Fatalf("%+v: covered %d points, want exhaustive %d", opts, len(res.Points), s.Grid.NumPoints())
		}
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	s := testutil.Space2D(t, 8)
	boom := errors.New("boom")
	_, err := Sweep(s, func(qa int32) (*discovery.Outcome, error) {
		if qa == 5 {
			return nil, boom
		}
		return &discovery.Outcome{TotalCost: s.PointCost[qa], Completed: true}, nil
	}, Options{})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

// Fig. 10/13 shape: PB's empirical MSO must exceed SB's, and AB must not
// exceed SB, on the same space.
func TestOrderingPBvsSBvsAB(t *testing.T) {
	s := testutil.Space2D(t, 12)
	red := s.Reduce(0.2)
	pb, err := Sweep(s, func(qa int32) (*discovery.Outcome, error) {
		return bouquet.Run(s, red, discovery.NewSimEngine(s, qa))
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Sweep(s, func(qa int32) (*discovery.Outcome, error) {
		return spillbound.Run(s, discovery.NewSimEngine(s, qa))
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pl := alignedbound.NewPlanner(s)
	ab, err := Sweep(s, func(qa int32) (*discovery.Outcome, error) {
		out, _, err := alignedbound.Run(s, pl, discovery.NewSimEngine(s, qa))
		return out, err
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sb.MSO > pb.MSO*1.05 {
		t.Errorf("MSOe: SB (%v) should not exceed PB (%v)", sb.MSO, pb.MSO)
	}
	if ab.MSO > sb.MSO*1.5 {
		t.Errorf("MSOe: AB (%v) should track SB (%v)", ab.MSO, sb.MSO)
	}
	if sb.ASO > pb.ASO*1.1 {
		t.Errorf("ASO: SB (%v) should not exceed PB (%v)", sb.ASO, pb.ASO)
	}
}

func TestHistogram(t *testing.T) {
	subopts := []float64{0.5, 1, 4.9, 5, 12, 12.5}
	h := Histogram(subopts, 5)
	if len(h) != 3 {
		t.Fatalf("buckets = %d, want 3", len(h))
	}
	if h[0].Count != 3 || h[1].Count != 1 || h[2].Count != 2 {
		t.Fatalf("counts = %d,%d,%d", h[0].Count, h[1].Count, h[2].Count)
	}
	if math.Abs(h[0].Frac-0.5) > 1e-9 {
		t.Errorf("frac = %v", h[0].Frac)
	}
	if h[0].Lo != 0 || h[0].Hi != 5 || h[2].Lo != 10 {
		t.Error("bucket bounds wrong")
	}
	if Histogram(nil, 5) != nil || Histogram(subopts, 0) != nil {
		t.Error("degenerate histograms should be nil")
	}
}

func TestNativeWorstCaseDominatesRobust(t *testing.T) {
	s := testutil.Space2D(t, 12)
	native := NativeWorstCase(s, Options{})
	sb, err := Sweep(s, func(qa int32) (*discovery.Outcome, error) {
		return spillbound.Run(s, discovery.NewSimEngine(s, qa))
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The whole point of the paper: the native worst case dwarfs SB.
	if native.MSO < sb.MSO {
		t.Errorf("native worst-case MSO (%v) should exceed SB's (%v)", native.MSO, sb.MSO)
	}
	if native.MSO < 10 {
		t.Errorf("native worst-case MSO (%v) suspiciously low", native.MSO)
	}
}

func TestNativeAt(t *testing.T) {
	s := testutil.Space2D(t, 12)
	// Estimate at origin (classic underestimate), truth anywhere.
	res := NativeAt(s, int32(s.Grid.Origin()), Options{})
	if res.MSO < 1 {
		t.Fatalf("MSO = %v", res.MSO)
	}
	// At the estimate location itself the sub-optimality is exactly 1.
	for i, p := range res.Points {
		if p == int32(s.Grid.Origin()) && math.Abs(res.SubOpts[i]-1) > 1e-9 {
			t.Errorf("sub-opt at qe should be 1, got %v", res.SubOpts[i])
		}
	}
	// Worst case over estimates must dominate any single estimate.
	worst := NativeWorstCase(s, Options{})
	if worst.MSO < res.MSO {
		t.Error("worst case must dominate a fixed estimate")
	}
}

func TestPercentileSubOpt(t *testing.T) {
	vals := []float64{5, 1, 3, 2, 4}
	if got := PercentileSubOpt(vals, 0.5); got != 2 {
		t.Errorf("median-ish = %v", got)
	}
	if got := PercentileSubOpt(vals, 1.0); got != 5 {
		t.Errorf("max = %v", got)
	}
	if got := PercentileSubOpt(vals, 0.0); got != 1 {
		t.Errorf("min = %v", got)
	}
	if !math.IsNaN(PercentileSubOpt(nil, 0.5)) {
		t.Error("empty should be NaN")
	}
}

// Package mso evaluates the robustness metrics of the paper: empirical
// Maximum Sub-Optimality (Eq. 4) via exhaustive enumeration of the ESS,
// Average Sub-Optimality (Eq. 8), sub-optimality histograms (Fig. 12),
// and the native-optimizer baseline (Eq. 2).
package mso

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core/discovery"
	"repro/internal/ess"
)

// Runner evaluates one discovery run for the true location qa and
// returns its outcome. Implementations must be safe for concurrent
// calls (create per-call engines).
type Runner func(qa int32) (*discovery.Outcome, error)

// Options configures a sweep.
type Options struct {
	// Workers bounds parallelism (default NumCPU).
	Workers int
	// Stride samples every Stride-th grid point (default 1 = exhaustive).
	// Used to keep 5D/6D sweeps tractable; EXPERIMENTS.md records the
	// stride used per experiment.
	Stride int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	// A zero stride would never advance the enumeration and a negative
	// one would walk backwards forever; both clamp to exhaustive.
	if o.Stride <= 0 {
		o.Stride = 1
	}
	return o
}

// Result aggregates a sweep.
type Result struct {
	// MSO is the maximum sub-optimality over the evaluated locations.
	MSO float64
	// ArgMax is the location attaining MSO.
	ArgMax int32
	// ASO is the average sub-optimality (Eq. 8, uniform over locations).
	ASO float64
	// Points are the evaluated locations.
	Points []int32
	// SubOpts are the per-location sub-optimalities, aligned with Points.
	SubOpts []float64
	// MaxAlignPenalty is the largest Outcome.AlignPenalty over the sweep
	// (0 unless the runner executes AlignedBound) — the π* of Table 4.
	MaxAlignPenalty float64
}

// Sweep evaluates the runner at every Stride-th grid location and
// aggregates MSO/ASO. Locations are fanned over a worker pool pulling
// from a shared atomic queue, so a straggling discovery never
// serializes the tail; per-location results land in preallocated slots,
// keeping the aggregation deterministic regardless of scheduling.
func Sweep(src ess.ContourSource, run Runner, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	n := src.Geometry().NumPoints()
	var pts []int32
	for p := 0; p < n; p += opts.Stride {
		pts = append(pts, int32(p))
	}
	res := &Result{Points: pts, SubOpts: make([]float64, len(pts)), ArgMax: -1}
	pens := make([]float64, len(pts))

	workers := opts.Workers
	if workers > len(pts) {
		workers = len(pts)
	}
	if workers < 1 {
		workers = 1
	}
	var (
		wg   sync.WaitGroup
		next atomic.Int64
		stop atomic.Bool
	)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(pts) {
					return
				}
				qa := pts[i]
				out, err := run(qa)
				if err != nil {
					errs[w] = fmt.Errorf("mso: qa=%d: %w", qa, err)
					stop.Store(true)
					return
				}
				res.SubOpts[i] = out.SubOpt(src.CostAt(qa))
				pens[i] = out.AlignPenalty
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	sum := 0.0
	for i, so := range res.SubOpts {
		sum += so
		if so > res.MSO {
			res.MSO = so
			res.ArgMax = pts[i]
		}
		if pens[i] > res.MaxAlignPenalty {
			res.MaxAlignPenalty = pens[i]
		}
	}
	if len(pts) > 0 {
		res.ASO = sum / float64(len(pts))
	}
	return res, nil
}

// Bucket is one histogram bucket of a sub-optimality distribution.
type Bucket struct {
	// Lo and Hi bound the sub-optimality range [Lo, Hi).
	Lo, Hi float64
	// Count is the number of locations falling in the range.
	Count int
	// Frac is Count over the total.
	Frac float64
}

// Histogram buckets the sub-optimalities with the given width (the
// paper's Fig. 12 uses width 5).
func Histogram(subopts []float64, width float64) []Bucket {
	if width <= 0 || len(subopts) == 0 {
		return nil
	}
	max := 0.0
	for _, so := range subopts {
		if so > max {
			max = so
		}
	}
	nb := int(max/width) + 1
	buckets := make([]Bucket, nb)
	for i := range buckets {
		buckets[i].Lo = float64(i) * width
		buckets[i].Hi = float64(i+1) * width
	}
	for _, so := range subopts {
		buckets[int(so/width)].Count++
	}
	for i := range buckets {
		buckets[i].Frac = float64(buckets[i].Count) / float64(len(subopts))
	}
	return buckets
}

// NativeWorstCase computes the native optimizer's worst-case MSO (Eq. 2):
// for each true location the adversarial estimate is the POSP plan that
// performs worst there — estimation errors can land on any qe, so the
// bound maximizes over both coordinates.
func NativeWorstCase(src ess.ContourSource, opts Options) *Result {
	opts = opts.withDefaults()
	n := src.Geometry().NumPoints()
	var pts []int32
	for p := 0; p < n; p += opts.Stride {
		pts = append(pts, int32(p))
	}
	res := &Result{Points: pts, SubOpts: make([]float64, len(pts)), ArgMax: -1}

	var wg sync.WaitGroup
	chunk := (len(pts) + opts.Workers - 1) / opts.Workers
	for w := 0; w < opts.Workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(pts) {
			hi = len(pts)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			ev := src.NewEvaluator()
			for i := lo; i < hi; i++ {
				qa := pts[i]
				worst := 0.0
				for pid := 0; pid < src.NumPlans(); pid++ {
					if c := ev.PlanCost(int32(pid), qa); c > worst {
						worst = c
					}
				}
				res.SubOpts[i] = worst / src.CostAt(qa)
			}
		}(lo, hi)
	}
	wg.Wait()

	sum := 0.0
	for i, so := range res.SubOpts {
		sum += so
		if so > res.MSO {
			res.MSO = so
			res.ArgMax = pts[i]
		}
	}
	if len(pts) > 0 {
		res.ASO = sum / float64(len(pts))
	}
	return res
}

// NativeAt computes the sub-optimality profile of the plan a traditional
// optimizer would pick at the estimate location qe, across all true
// locations: SubOpt(qe, qa) of Eq. 1.
func NativeAt(src ess.ContourSource, qe int32, opts Options) *Result {
	opts = opts.withDefaults()
	pid := src.PlanAt(qe)
	n := src.Geometry().NumPoints()
	var pts []int32
	for p := 0; p < n; p += opts.Stride {
		pts = append(pts, int32(p))
	}
	res := &Result{Points: pts, SubOpts: make([]float64, len(pts)), ArgMax: -1}
	ev := src.NewEvaluator()
	sum := 0.0
	for i, qa := range pts {
		so := ev.PlanCost(pid, qa) / src.CostAt(qa)
		res.SubOpts[i] = so
		sum += so
		if so > res.MSO {
			res.MSO = so
			res.ArgMax = qa
		}
	}
	if len(pts) > 0 {
		res.ASO = sum / float64(len(pts))
	}
	return res
}

// PercentileSubOpt returns the p-quantile (0..1) of the sub-optimality
// distribution, interpolation-free (nearest rank).
func PercentileSubOpt(subopts []float64, p float64) float64 {
	if len(subopts) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), subopts...)
	sort.Float64s(sorted)
	rank := int(p*float64(len(sorted))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

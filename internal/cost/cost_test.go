package cost

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/plan"
)

// env2 builds an Env for two relations (1000 and 100 raw rows, no
// filters) with one join of selectivity sel.
func env2(sel float64) *Env {
	return &Env{
		RawRows:      []float64{1000, 100},
		FilteredRows: []float64{1000, 100},
		IndexSel:     []float64{1, 1},
		JoinSel:      []float64{sel},
	}
}

func TestSeqScanCost(t *testing.T) {
	m := NewModel(DefaultParams())
	res := m.Cost(plan.NewScan(0, plan.SeqScan), env2(0.1))
	if res.Rows != 1000 {
		t.Errorf("rows = %v", res.Rows)
	}
	if res.Cost != 1000 {
		t.Errorf("seq scan cost = %v, want 1000", res.Cost)
	}
}

func TestSeqScanWithFilter(t *testing.T) {
	m := NewModel(DefaultParams())
	e := env2(0.1)
	e.FilteredRows[0] = 200
	res := m.Cost(plan.NewScan(0, plan.SeqScan), e)
	if res.Rows != 200 {
		t.Errorf("filtered rows = %v, want 200", res.Rows)
	}
	if res.Cost != 1000 {
		t.Error("seq scan still reads all raw rows")
	}
}

func TestIndexScanCheaperWhenSelective(t *testing.T) {
	m := NewModel(DefaultParams())
	e := env2(0.1)
	e.IndexSel[0] = 0.01
	e.FilteredRows[0] = 10
	seq := m.Cost(plan.NewScan(0, plan.SeqScan), e)
	idx := m.Cost(plan.NewScan(0, plan.IndexScan), e)
	if idx.Cost >= seq.Cost {
		t.Errorf("selective index scan (%v) should beat seq scan (%v)", idx.Cost, seq.Cost)
	}
	e.IndexSel[0] = 1.0
	idxFull := m.Cost(plan.NewScan(0, plan.IndexScan), e)
	if idxFull.Cost <= seq.Cost {
		t.Errorf("full index scan (%v) should lose to seq scan (%v)", idxFull.Cost, seq.Cost)
	}
}

func TestHashJoinCost(t *testing.T) {
	m := NewModel(DefaultParams())
	p := plan.NewJoin(plan.HashJoin, []int{0}, plan.NewScan(0, plan.SeqScan), plan.NewScan(1, plan.SeqScan))
	res := m.Cost(p, env2(0.01))
	wantOut := 1000.0 * 100 * 0.01
	if math.Abs(res.Rows-wantOut) > 1e-9 {
		t.Errorf("out rows = %v, want %v", res.Rows, wantOut)
	}
	// 1000 + 100 (scans) + 2*100 (build) + 1.2*1000 (probe) + 1000 (out).
	want := 1000 + 100 + 200 + 1200 + wantOut
	if math.Abs(res.Cost-want) > 1e-9 {
		t.Errorf("hash join cost = %v, want %v", res.Cost, want)
	}
}

func TestJoinSelectivityProduct(t *testing.T) {
	m := NewModel(DefaultParams())
	p := plan.NewJoin(plan.HashJoin, []int{0, 1}, plan.NewScan(0, plan.SeqScan), plan.NewScan(1, plan.SeqScan))
	e := env2(0.1)
	e.JoinSel = []float64{0.1, 0.5}
	res := m.Cost(p, e)
	if want := 1000.0 * 100 * 0.05; math.Abs(res.Rows-want) > 1e-9 {
		t.Errorf("multi-predicate out = %v, want %v", res.Rows, want)
	}
}

func TestIndexNLJoinSkipsInnerScan(t *testing.T) {
	m := NewModel(DefaultParams())
	inl := plan.NewJoin(plan.IndexNLJoin, []int{0}, plan.NewScan(0, plan.SeqScan), plan.NewScan(1, plan.SeqScan))
	hj := plan.NewJoin(plan.HashJoin, []int{0}, plan.NewScan(0, plan.SeqScan), plan.NewScan(1, plan.SeqScan))
	// With a tiny outer, INL should beat HJ.
	e := env2(0.001)
	e.RawRows[0], e.FilteredRows[0] = 10, 10
	if ci, ch := m.Cost(inl, e).Cost, m.Cost(hj, e).Cost; ci >= ch {
		t.Errorf("tiny outer: INL (%v) should beat HJ (%v)", ci, ch)
	}
	// With a huge outer and high selectivity, HJ should win.
	e2 := env2(0.5)
	if ci, ch := m.Cost(inl, e2).Cost, m.Cost(hj, e2).Cost; ci <= ch {
		t.Errorf("high sel: HJ (%v) should beat INL (%v)", ch, ci)
	}
}

func TestMergeJoinAndNLJoinCosts(t *testing.T) {
	m := NewModel(DefaultParams())
	e := env2(0.01)
	mj := plan.NewJoin(plan.MergeJoin, []int{0}, plan.NewScan(0, plan.SeqScan), plan.NewScan(1, plan.SeqScan))
	nl := plan.NewJoin(plan.NLJoin, []int{0}, plan.NewScan(0, plan.SeqScan), plan.NewScan(1, plan.SeqScan))
	cm, cn := m.Cost(mj, e), m.Cost(nl, e)
	if cm.Rows != cn.Rows {
		t.Error("all join methods must agree on output cardinality")
	}
	if cm.Cost <= 0 || cn.Cost <= 0 {
		t.Error("positive costs expected")
	}
	// Naive NL over 1000x100 pairs should be the worst method here.
	hj := plan.NewJoin(plan.HashJoin, []int{0}, plan.NewScan(0, plan.SeqScan), plan.NewScan(1, plan.SeqScan))
	if cn.Cost <= m.Cost(hj, e).Cost {
		t.Error("naive NL should lose to hash join at this size")
	}
}

func TestSpillCost(t *testing.T) {
	m := NewModel(DefaultParams())
	inner := plan.NewJoin(plan.HashJoin, []int{0}, plan.NewScan(0, plan.SeqScan), plan.NewScan(1, plan.SeqScan))
	root := plan.NewJoin(plan.HashJoin, []int{1}, inner, plan.NewScan(2, plan.SeqScan))
	e := &Env{
		RawRows:      []float64{1000, 100, 500},
		FilteredRows: []float64{1000, 100, 500},
		IndexSel:     []float64{1, 1, 1},
		JoinSel:      []float64{0.01, 0.005},
	}
	full := m.Cost(root, e)
	spill, ok := m.SpillCost(root, 0, e)
	if !ok {
		t.Fatal("SpillCost should find join 0")
	}
	if spill.Cost >= full.Cost {
		t.Errorf("spill subtree cost (%v) must be below full plan cost (%v)", spill.Cost, full.Cost)
	}
	want := m.Cost(inner, e)
	if spill.Cost != want.Cost || spill.Rows != want.Rows {
		t.Error("spill cost should equal the subtree's own cost")
	}
	if _, ok := m.SpillCost(root, 42, e); ok {
		t.Error("missing join should report !ok")
	}
	// Spilling on the root join costs the full plan.
	rootSpill, _ := m.SpillCost(root, 1, e)
	if rootSpill.Cost != full.Cost {
		t.Error("root spill should equal full cost")
	}
}

// TestPCMProperty verifies Plan Cost Monotonicity (Eq. 5): for any plan
// shape and any dominated pair of selectivity vectors, cost strictly
// increases.
func TestPCMProperty(t *testing.T) {
	m := NewModel(DefaultParams())
	inner := plan.NewJoin(plan.HashJoin, []int{0}, plan.NewScan(0, plan.SeqScan), plan.NewScan(1, plan.SeqScan))
	plans := []*plan.Node{
		plan.NewJoin(plan.HashJoin, []int{1}, inner, plan.NewScan(2, plan.SeqScan)),
		plan.NewJoin(plan.MergeJoin, []int{1}, inner, plan.NewScan(2, plan.SeqScan)),
		plan.NewJoin(plan.IndexNLJoin, []int{1}, inner, plan.NewScan(2, plan.SeqScan)),
		plan.NewJoin(plan.NLJoin, []int{1}, inner, plan.NewScan(2, plan.SeqScan)),
	}
	base := &Env{
		RawRows:      []float64{2000, 300, 700},
		FilteredRows: []float64{1500, 300, 350},
		IndexSel:     []float64{0.5, 1, 0.2},
		JoinSel:      []float64{0, 0},
	}
	f := func(a0, a1, d0, d1 uint16) bool {
		s0 := 1e-5 * math.Pow(10, float64(a0%500)/100) // [1e-5, 1e-0)
		s1 := 1e-5 * math.Pow(10, float64(a1%500)/100)
		t0 := s0 * (1 + float64(d0%1000+1)/100)
		t1 := s1 * (1 + float64(d1%1000+1)/100)
		lo, hi := base.Clone(), base.Clone()
		lo.JoinSel = []float64{s0, s1}
		hi.JoinSel = []float64{math.Min(t0, 1), math.Min(t1, 1)}
		for _, p := range plans {
			if m.Cost(p, lo).Cost >= m.Cost(p, hi).Cost {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestRowsIndependentOfMethod: cardinality estimates must not depend on
// the physical method, only on the logical join.
func TestRowsIndependentOfMethod(t *testing.T) {
	m := NewModel(DefaultParams())
	e := env2(0.037)
	methods := []plan.JoinMethod{plan.HashJoin, plan.MergeJoin, plan.IndexNLJoin, plan.NLJoin}
	var rows []float64
	for _, meth := range methods {
		p := plan.NewJoin(meth, []int{0}, plan.NewScan(0, plan.SeqScan), plan.NewScan(1, plan.SeqScan))
		rows = append(rows, m.Cost(p, e).Rows)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i] != rows[0] {
			t.Fatalf("rows differ across methods: %v", rows)
		}
	}
}

func TestEnvClone(t *testing.T) {
	e := env2(0.5)
	c := e.Clone()
	c.JoinSel[0] = 0.9
	c.FilteredRows[0] = 1
	if e.JoinSel[0] != 0.5 || e.FilteredRows[0] != 1000 {
		t.Fatal("Clone must not alias the original")
	}
}

func TestLog2Guard(t *testing.T) {
	if log2(0) <= 0 {
		t.Error("log2 guard must stay positive at 0")
	}
	if log2(1e6) <= log2(10) {
		t.Error("log2 must increase")
	}
}

// Package cost implements the plan costing model. Costs are abstract
// work units charged per tuple touched; the executor charges the same
// constants at run time, so the cost model is exact by construction —
// matching the paper's perfect-cost-model assumption (§7, with δ = 0).
//
// The model guarantees Plan Cost Monotonicity (Eq. 5 of the paper): the
// cost of any fixed plan is strictly increasing in every join
// selectivity, because each join predicate contributes an output-tuple
// term at its node. PCM is what makes iso-cost contours well-formed and
// half-space pruning sound.
package cost

import (
	"math"

	"repro/internal/plan"
)

// Params are the per-tuple cost constants. All must be positive.
type Params struct {
	// SeqTuple is charged per raw tuple read by a sequential scan.
	SeqTuple float64
	// IdxDescend is charged per index descent, multiplied by log2 of the
	// indexed relation size.
	IdxDescend float64
	// IdxTuple is charged per tuple fetched through an index (random
	// access penalty).
	IdxTuple float64
	// HashBuild is charged per build-side tuple of a hash join.
	HashBuild float64
	// HashProbe is charged per probe-side tuple of a hash join.
	HashProbe float64
	// Tuple is charged per output tuple of any join.
	Tuple float64
	// SortCmp is charged per comparison of a sort (n·log2 n of them).
	SortCmp float64
	// Merge is charged per input tuple of a merge join's merge phase.
	Merge float64
	// NLPair is charged per considered pair of a naive nested-loops join.
	NLPair float64
	// Mat is charged per tuple materialized by a nested-loops inner.
	Mat float64
}

// DefaultParams returns the constants used throughout the experiments.
// The ratios roughly follow PostgreSQL's defaults normalized to
// per-tuple units (random access ≈ 4× sequential).
func DefaultParams() Params {
	return Params{
		SeqTuple:   1.0,
		IdxDescend: 2.0,
		IdxTuple:   4.0,
		HashBuild:  2.0,
		HashProbe:  1.2,
		Tuple:      1.0,
		SortCmp:    0.4,
		Merge:      0.5,
		NLPair:     0.1,
		Mat:        1.0,
	}
}

// Env carries the cardinality inputs of a costing call: per-relation raw
// and filtered row counts, the most selective single-filter selectivity
// (what an index scan exploits), and the per-join selectivities. Robust
// processing varies JoinSel across the ESS while everything else stays
// fixed.
type Env struct {
	// RawRows is the unfiltered cardinality per query relation.
	RawRows []float64
	// FilteredRows is the post-filter cardinality per query relation.
	FilteredRows []float64
	// IndexSel is the best single-filter selectivity per relation (1 if
	// the relation has no filters).
	IndexSel []float64
	// JoinSel is the selectivity per join ID, as a fraction of the
	// filtered cross product.
	JoinSel []float64
}

// Clone returns a deep copy; algorithms mutate JoinSel freely on clones.
func (e *Env) Clone() *Env {
	return &Env{
		RawRows:      append([]float64(nil), e.RawRows...),
		FilteredRows: append([]float64(nil), e.FilteredRows...),
		IndexSel:     append([]float64(nil), e.IndexSel...),
		JoinSel:      append([]float64(nil), e.JoinSel...),
	}
}

// Model computes plan costs under a parameter set.
type Model struct {
	// P holds the cost constants.
	P Params
}

// NewModel returns a model with the given parameters.
func NewModel(p Params) *Model { return &Model{P: p} }

// Result is the outcome of costing a (sub)plan.
type Result struct {
	// Rows is the estimated output cardinality.
	Rows float64
	// Cost is the total work of the subtree.
	Cost float64
}

// Cost computes output cardinality and total cost of the plan under env.
func (m *Model) Cost(n *plan.Node, env *Env) Result {
	if n.IsScan() {
		return m.scanCost(n, env)
	}
	l := m.Cost(n.Left, env)
	var r Result
	if n.Join.Method != plan.IndexNLJoin {
		r = m.Cost(n.Right, env)
	}
	return m.JoinCost(n, l, r, env)
}

// JoinCost computes the result of join node n from its children's
// already-computed results, without re-walking the subtrees. It is the
// incremental form of Cost used by the optimizer's DP, where child
// costs live in the DP table: composing with JoinCost instead of
// re-costing whole subtrees turns each candidate emission from O(plan
// size) into O(1), with bit-identical results. For IndexNLJoin the r
// argument is ignored (the inner side is never scanned; lookups are
// charged at the join).
func (m *Model) JoinCost(n *plan.Node, l, r Result, env *Env) Result {
	if n.Join.Method == plan.IndexNLJoin {
		r = Result{Rows: env.FilteredRows[n.Right.Scan.Rel]}
	}

	sel := 1.0
	for _, id := range n.Join.JoinIDs {
		sel *= env.JoinSel[id]
	}
	out := l.Rows * r.Rows * sel

	p := &m.P
	var c float64
	switch n.Join.Method {
	case plan.HashJoin:
		c = l.Cost + r.Cost + p.HashBuild*r.Rows + p.HashProbe*l.Rows + p.Tuple*out
	case plan.MergeJoin:
		c = l.Cost + r.Cost +
			p.SortCmp*(l.Rows*log2(l.Rows)+r.Rows*log2(r.Rows)) +
			p.Merge*(l.Rows+r.Rows) + p.Tuple*out
	case plan.IndexNLJoin:
		raw := env.RawRows[n.Right.Scan.Rel]
		lookups := l.Rows * p.IdxDescend * log2(raw)
		// Index fetches happen before residual filters: matched raw rows.
		fetched := l.Rows * raw * sel
		c = l.Cost + lookups + p.IdxTuple*fetched + p.Tuple*out
	case plan.NLJoin:
		c = l.Cost + r.Cost + p.Mat*r.Rows + p.NLPair*l.Rows*r.Rows + p.Tuple*out
	default:
		panic("cost: unknown join method")
	}
	return Result{Rows: out, Cost: c}
}

func (m *Model) scanCost(n *plan.Node, env *Env) Result {
	rel := n.Scan.Rel
	rows := env.FilteredRows[rel]
	raw := env.RawRows[rel]
	p := &m.P
	switch n.Scan.Method {
	case plan.SeqScan:
		return Result{Rows: rows, Cost: p.SeqTuple * raw}
	case plan.IndexScan:
		fetched := raw * env.IndexSel[rel]
		return Result{Rows: rows, Cost: p.IdxDescend*log2(raw) + p.IdxTuple*fetched}
	default:
		panic("cost: unknown scan method")
	}
}

// SpillCost computes the cost of executing the plan in spill-mode on the
// given join predicate: only the subtree rooted at that join node runs,
// and its output is discarded (§3.1.2). It returns the subtree result,
// or ok=false if the plan does not apply the predicate.
func (m *Model) SpillCost(root *plan.Node, joinID int, env *Env) (Result, bool) {
	sub := plan.SpillSubtree(root, joinID)
	if sub == nil {
		return Result{}, false
	}
	return m.Cost(sub, env), true
}

func log2(x float64) float64 {
	// +2 keeps the guard monotone and positive at x = 0 and 1.
	return math.Log2(x + 2)
}

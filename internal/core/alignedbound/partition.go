// Package alignedbound implements the AlignedBound algorithm (§5 of the
// paper): it exploits contour alignment natively where present, induces
// it through minimum-penalty plan replacements where absent, and covers
// the remaining epps with the cheapest predicate-set-alignment (PSA)
// partition, delivering an MSO in the platform-independent range
// [2D+2, D²+3D].
package alignedbound

// Partitions enumerates all set partitions of the given elements.
// Each partition is a slice of parts; each part a slice of elements.
// The element order inside parts and the part order follow the standard
// restricted-growth-string enumeration, so output is deterministic.
// Bell(6) = 203, so exhaustive enumeration is cheap at the paper's
// dimensionalities.
func Partitions(elems []int) [][][]int {
	n := len(elems)
	if n == 0 {
		return [][][]int{{}}
	}
	var out [][][]int
	// Restricted growth strings: rgs[0] = 0, rgs[i] ≤ max(rgs[:i]) + 1.
	rgs := make([]int, n)
	var rec func(i, maxSoFar int)
	rec = func(i, maxSoFar int) {
		if i == n {
			numParts := maxSoFar + 1
			parts := make([][]int, numParts)
			for k, g := range rgs {
				parts[g] = append(parts[g], elems[k])
			}
			out = append(out, parts)
			return
		}
		for g := 0; g <= maxSoFar+1; g++ {
			rgs[i] = g
			next := maxSoFar
			if g > maxSoFar {
				next = g
			}
			rec(i+1, next)
		}
	}
	rgs[0] = 0
	rec(1, 0)
	return out
}

package alignedbound

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/core/bouquet"
	"repro/internal/core/discovery"
	"repro/internal/ess"
)

// LeaderExec is one chosen leader execution on a contour: a spill-mode
// run that covers a PSA part.
type LeaderExec struct {
	// Dim is the leader dimension the execution learns.
	Dim int
	// PlanID is the plan to run in spill-mode (an original POSP plan for
	// native alignment, a replacement plan when induced).
	PlanID int32
	// Budget is the assigned cost limit: CC_i for native alignment,
	// Cost(P, q) of the replacement pair when induced (§5.2.1).
	Budget float64
	// Penalty is the replacement penalty Δ (1 for native alignment).
	Penalty float64
	// Induced reports whether alignment was induced by plan replacement.
	Induced bool
}

// Decision is the alignment plan for one (slice, contour): the chosen
// minimum-penalty partition's leader executions.
type Decision struct {
	// Execs are the leader executions, ordered by dimension.
	Execs []LeaderExec
	// Penalty is π*, the partition's total penalty (vacuous parts
	// contribute nothing).
	Penalty float64
	// Parts is the number of non-vacuous parts covered.
	Parts int
}

// Planner computes and caches alignment decisions. Decisions depend only
// on the contour, the learned-dimension slice, and the source's
// refinement epoch, so they are shared across discovery runs (and across
// goroutines in MSO sweeps) and recomputed exactly when online
// refinement publishes a new overlay.
//
// Replacement candidates are drawn from the plans appearing on the
// contour being decided (in canonical signature order) plus the
// optimizer probe — a pure function of the contour itself, so eager and
// lazy sources over the same surface decide identically regardless of
// how much of the grid either has materialized.
type Planner struct {
	// S is the contour provider.
	S ess.ContourSource
	// UseOptimizer enables per-spill-class optimizer probes when the
	// contour lacks a plan spilling on the needed dimension cheaply —
	// the engine hook of §6.1.
	UseOptimizer bool

	mu    sync.Mutex
	cache map[decisionKey]*Decision
	ev    *ess.Evaluator
}

type decisionKey struct {
	slice   string
	contour int
	epoch   uint64
}

// NewPlanner creates a planner over the source with optimizer probes on.
func NewPlanner(src ess.ContourSource) *Planner {
	return &Planner{
		S: src, UseOptimizer: true,
		cache: make(map[decisionKey]*Decision), ev: src.NewEvaluator(),
	}
}

// Prime precomputes the root-slice decision of every contour, so
// concurrent runs start from a warm cache instead of serializing on the
// planner mutex while it fills.
func (p *Planner) Prime() {
	learned := make([]int, p.S.Geometry().D)
	for d := range learned {
		learned[d] = -1
	}
	for ci := 0; ci < p.S.NumContours(); ci++ {
		p.Decide(learned, ci)
	}
}

// Decide returns the alignment decision for the contour of the slice
// identified by learned (learned[d] ≥ 0 pins dimension d).
func (p *Planner) Decide(learned []int, contourIdx int) *Decision {
	key := decisionKey{slice: sliceKeyOf(learned), contour: contourIdx, epoch: p.S.Epoch()}
	p.mu.Lock()
	defer p.mu.Unlock()
	if d, ok := p.cache[key]; ok {
		return d
	}
	d := p.compute(learned, contourIdx)
	p.cache[key] = d
	return d
}

// sliceKeyOf encodes a learned-dimension vector as a cache key. Varint
// encoding is self-delimiting, so high grid indexes cannot collide the
// way the single-byte encoding did (byte(v+1) maps 255 and -1 alike).
func sliceKeyOf(learned []int) string {
	b := make([]byte, 0, len(learned)*2)
	for _, v := range learned {
		b = binary.AppendVarint(b, int64(v))
	}
	return string(b)
}

// compute builds the decision: per-dimension spill geometry, induced
// alignment penalties, and the minimum-penalty partition cover.
func (p *Planner) compute(learned []int, contourIdx int) *Decision {
	ic := p.S.ContourAt(learned, contourIdx)

	var rem []int
	var remMask uint16
	for d, v := range learned {
		if v < 0 {
			rem = append(rem, d)
			remMask |= 1 << uint(d)
		}
	}

	geo := p.contourGeometry(ic, remMask)

	// induceCache memoizes the minimum-cost replacement for (leader dim,
	// target coordinate) pairs within this contour.
	induceCache := map[[2]int]induceRes{}
	induce := func(dim, coord int) induceRes {
		k := [2]int{dim, coord}
		if r, ok := induceCache[k]; ok {
			return r
		}
		pid, budget, penalty := p.induceAlignment(ic, remMask, dim, coord)
		r := induceRes{planID: pid, budget: budget, penalty: penalty}
		induceCache[k] = r
		return r
	}

	best := &Decision{Penalty: math.Inf(1)}
	for _, parts := range Partitions(rem) {
		var execs []LeaderExec
		total := 0.0
		feasible := true
		nonVacuous := 0
		for _, part := range parts {
			ex, pen, vacuous, ok := p.bestLeader(ic, geo, part, induce)
			if !ok {
				feasible = false
				break
			}
			if vacuous {
				continue
			}
			nonVacuous++
			total += pen
			execs = append(execs, ex)
		}
		if !feasible {
			continue
		}
		if total < best.Penalty-1e-12 ||
			(math.Abs(total-best.Penalty) <= 1e-12 && len(execs) < len(best.Execs)) {
			ordered := append([]LeaderExec(nil), execs...)
			sortExecs(ordered)
			best = &Decision{Execs: ordered, Penalty: total, Parts: nonVacuous}
		}
	}
	return best
}

// induceRes is a memoized minimum-cost replacement for inducing
// alignment on a (dimension, coordinate) pair.
type induceRes struct {
	planID  int32
	budget  float64
	penalty float64
}

// geometry summarizes the contour's spill structure: for each pair of
// dimensions (s, j), the maximum j-coordinate among contour points whose
// optimal plan spills on s, and the corresponding argmax point for the
// diagonal (q^j_max).
type geometry struct {
	// maxCoord[s][j]: max j coordinate over points spilling on s; -1 if
	// no point spills on s.
	maxCoord [][]int
	// argmax[j]: the point realizing maxCoord[j][j] (q^j_max), -1 absent.
	argmax []int32
	// extreme[j]: the maximum j coordinate over all contour points.
	extreme []int
}

func (p *Planner) contourGeometry(ic *ess.Contour, remMask uint16) *geometry {
	src := p.S
	grid := src.Geometry()
	D := grid.D
	g := &geometry{
		maxCoord: make([][]int, D),
		argmax:   make([]int32, D),
		extreme:  make([]int, D),
	}
	for d := 0; d < D; d++ {
		g.maxCoord[d] = make([]int, D)
		for j := 0; j < D; j++ {
			g.maxCoord[d][j] = -1
		}
		g.argmax[d] = -1
		g.extreme[d] = -1
	}
	for _, pt := range ic.Points {
		sd := src.SpillDim(src.PlanAt(pt), remMask)
		for j := 0; j < D; j++ {
			c := grid.Coord(int(pt), j)
			if c > g.extreme[j] {
				g.extreme[j] = c
			}
			if sd >= 0 {
				if c > g.maxCoord[sd][j] {
					g.maxCoord[sd][j] = c
					if sd == j {
						g.argmax[j] = pt
					}
				} else if sd == j && c == g.maxCoord[sd][j] && g.argmax[j] >= 0 && pt > g.argmax[j] {
					g.argmax[j] = pt
				}
			}
		}
	}
	return g
}

// bestLeader evaluates a PSA part: it returns the cheapest leader
// execution over the candidate leader dimensions of the part, the
// penalty, whether the part is vacuous (no contour point spills on it),
// and feasibility.
func (p *Planner) bestLeader(ic *ess.Contour, geo *geometry, part []int,
	induce func(dim, coord int) induceRes) (LeaderExec, float64, bool, bool) {

	// Vacuous part: no contour plan spills on any of its dims.
	vacuous := true
	for _, d := range part {
		if geo.maxCoord[d][d] >= 0 {
			vacuous = false
			break
		}
	}
	if vacuous {
		return LeaderExec{}, 0, true, true
	}

	best := LeaderExec{Penalty: math.Inf(1)}
	found := false
	for _, j := range part {
		// q^j_T: the extreme j coordinate among points spilling in T.
		coord := -1
		for _, sdim := range part {
			if geo.maxCoord[sdim][j] > coord {
				coord = geo.maxCoord[sdim][j]
			}
		}
		if coord < 0 {
			continue
		}
		// Native PSA: q^j_max reaches the part's extreme along j.
		if geo.argmax[j] >= 0 && geo.maxCoord[j][j] >= coord {
			ex := LeaderExec{
				Dim: j, PlanID: p.S.PlanAt(geo.argmax[j]),
				Budget: ic.Cost, Penalty: 1, Induced: false,
			}
			if ex.Penalty < best.Penalty {
				best, found = ex, true
			}
			continue
		}
		// Induced PSA via minimum-cost replacement.
		r := induce(j, coord)
		if math.IsInf(r.penalty, 1) {
			continue
		}
		ex := LeaderExec{Dim: j, PlanID: r.planID, Budget: r.budget, Penalty: r.penalty, Induced: true}
		if ex.Penalty < best.Penalty {
			best, found = ex, true
		}
	}
	if !found {
		return LeaderExec{}, 0, false, false
	}
	return best, best.Penalty, false, true
}

// induceAlignment finds the minimum-cost (plan, location) replacement
// pair that makes dimension dim aligned at the target coordinate: the
// plan must spill on dim and sit at a contour location whose
// dim-coordinate equals the target (§5.2.1). Returns penalty +Inf if no
// candidate exists.
func (p *Planner) induceAlignment(ic *ess.Contour, remMask uint16, dim, coord int) (int32, float64, float64) {
	src := p.S
	grid := src.Geometry()
	bestPlan := int32(-1)
	bestCost := math.Inf(1)
	bestOpt := 1.0

	// Location set S: contour points at the target coordinate.
	var locs []int32
	for _, pt := range ic.Points {
		if grid.Coord(int(pt), dim) == coord {
			locs = append(locs, pt)
		}
	}

	// Candidate plans spilling on dim, drawn from the distinct plans
	// appearing on this contour, in canonical signature order (pool IDs
	// are settle-order dependent; signatures are not — see Planner doc).
	seen := map[int32]bool{}
	var pool []int32
	for _, pt := range ic.Points {
		pid := src.PlanAt(pt)
		if seen[pid] {
			continue
		}
		seen[pid] = true
		if src.SpillDim(pid, remMask) == dim {
			pool = append(pool, pid)
		}
	}
	sort.Slice(pool, func(a, b int) bool {
		return src.Plan(pool[a]).Sig < src.Plan(pool[b]).Sig
	})
	for _, q := range locs {
		for _, pid := range pool {
			if c := p.ev.PlanCost(pid, q); c < bestCost {
				bestCost, bestPlan, bestOpt = c, pid, src.CostAt(q)
			}
		}
	}

	// Optimizer probe: ask for the cheapest plan in the spill class at
	// the most promising location (minimum optimal cost).
	if p.UseOptimizer && len(locs) > 0 {
		qBest := locs[0]
		for _, q := range locs[1:] {
			if src.CostAt(q) < src.CostAt(qBest) {
				qBest = q
			}
		}
		qry := src.Query()
		remaining := map[int]bool{}
		for d, joinID := range qry.EPPs {
			if remMask&(1<<uint(d)) != 0 {
				remaining[joinID] = true
			}
		}
		env := p.ev.Env(qBest)
		perClass := src.Optimizer().BestPerSpillClass(env, remaining)
		if pl, ok := perClass[qry.EPPs[dim]]; ok && pl.Cost < bestCost {
			bestCost = pl.Cost
			bestPlan = src.AddPlan(pl.Root)
			bestOpt = src.CostAt(qBest)
		}
	}

	if bestPlan < 0 {
		return -1, 0, math.Inf(1)
	}
	return bestPlan, bestCost, bestCost / bestOpt
}

func sortExecs(execs []LeaderExec) {
	for i := 1; i < len(execs); i++ {
		for j := i; j > 0 && execs[j].Dim < execs[j-1].Dim; j-- {
			execs[j], execs[j-1] = execs[j-1], execs[j]
		}
	}
}

// GuaranteeRange returns AlignedBound's MSO bound range [2D+2, D²+3D].
func GuaranteeRange(d int) (lo, hi float64) {
	return float64(2*d + 2), float64(d*d + 3*d)
}

// Run executes the AlignedBound discovery (Algorithm 2) for one query
// instance. It returns the outcome and the maximum partition penalty π*
// encountered (the quantity of Table 4).
func Run(src ess.ContourSource, pl *Planner, eng discovery.Engine) (*discovery.Outcome, float64, error) {
	st := discovery.NewState(src.Geometry().D)
	m := src.NumContours()
	// Same trace-shape hint as SpillBound: roughly one execution per
	// contour plus the spill runs of the final unlearned dimensions.
	out := &discovery.Outcome{Steps: make([]discovery.Step, 0, m+src.Geometry().D)}
	maxPenalty := 0.0

	ci := 0
	for ci < m {
		if st.Remaining() == 1 {
			if err := bouquet.RunOneD(src, st, eng, ci, out); err != nil {
				return out, maxPenalty, err
			}
			return out, maxPenalty, nil
		}
		dec := pl.Decide(st.Learned, ci)
		if len(dec.Execs) == 0 {
			ci++ // nothing on this contour's slice: qa lies beyond
			continue
		}
		if dec.Penalty > maxPenalty {
			maxPenalty = dec.Penalty
		}
		progressed := false
		for _, ex := range dec.Execs {
			if aerr := discovery.AbortOf(eng); aerr != nil {
				return out, maxPenalty, aerr
			}
			c, done, learned := eng.ExecSpill(ex.PlanID, ex.Dim, ex.Budget)
			out.Add(discovery.Step{
				Contour: ci + 1, PlanID: ex.PlanID, Dim: ex.Dim,
				Budget: ex.Budget, Cost: c, Completed: done,
				Phase: discovery.PhaseSpill, LearnedIdx: learned,
			})
			if done {
				st.Learn(ex.Dim, learned)
				progressed = true
				break
			}
			st.Raise(ex.Dim, learned)
		}
		if !progressed {
			ci++
		}
	}
	return out, maxPenalty, fmt.Errorf("alignedbound: exhausted contours with %d epps unlearned (query %s)",
		st.Remaining(), src.Query().Name)
}

package alignedbound

import (
	"math"
	"testing"

	"repro/internal/core/discovery"
	"repro/internal/core/spillbound"
	"repro/internal/ess"
	"repro/internal/testutil"
)

func TestPartitionsCounts(t *testing.T) {
	// Bell numbers: 1, 1, 2, 5, 15, 52, 203.
	for n, want := range map[int]int{0: 1, 1: 1, 2: 2, 3: 5, 4: 15, 5: 52, 6: 203} {
		elems := make([]int, n)
		for i := range elems {
			elems[i] = i
		}
		if got := len(Partitions(elems)); got != want {
			t.Errorf("Bell(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestPartitionsCoverAndDisjoint(t *testing.T) {
	elems := []int{0, 1, 2, 3}
	for _, parts := range Partitions(elems) {
		seen := map[int]int{}
		for _, part := range parts {
			if len(part) == 0 {
				t.Fatal("empty part")
			}
			for _, e := range part {
				seen[e]++
			}
		}
		if len(seen) != 4 {
			t.Fatalf("partition misses elements: %v", parts)
		}
		for e, n := range seen {
			if n != 1 {
				t.Fatalf("element %d appears %d times", e, n)
			}
		}
	}
}

func TestGuaranteeRange(t *testing.T) {
	lo, hi := GuaranteeRange(4)
	if lo != 10 || hi != 28 {
		t.Fatalf("range = [%v,%v], want [10,28]", lo, hi)
	}
}

func runAt(t *testing.T, s *ess.Space, pl *Planner, qa int32) (*discovery.Outcome, float64) {
	t.Helper()
	out, pen, err := Run(s, pl, discovery.NewSimEngine(s, qa))
	if err != nil {
		t.Fatalf("AlignedBound failed at qa=%d: %v", qa, err)
	}
	if !out.Completed {
		t.Fatalf("not completed at qa=%d", qa)
	}
	return out, pen
}

func TestRunCompletesEverywhere2D(t *testing.T) {
	s := testutil.Space2D(t, 10)
	pl := NewPlanner(s)
	_, hi := GuaranteeRange(2)
	for qa := 0; qa < s.Grid.NumPoints(); qa++ {
		out, _ := runAt(t, s, pl, int32(qa))
		so := out.SubOpt(s.PointCost[qa])
		if so < 1-1e-9 {
			t.Fatalf("sub-opt %v < 1 at qa=%d", so, qa)
		}
		// The quadratic bound must be retained even when inducing
		// alignment (§5.3); allow the penalty slack the paper proves.
		if so > hi*3 {
			t.Fatalf("AB wildly above quadratic bound at qa=%d: %v", qa, so)
		}
	}
}

func TestRunCompletesEverywhere3D(t *testing.T) {
	s := testutil.Space3D(t, 6)
	pl := NewPlanner(s)
	for qa := 0; qa < s.Grid.NumPoints(); qa++ {
		runAt(t, s, pl, int32(qa))
	}
}

// AB's headline property: empirical MSO at or below SpillBound's on the
// same space, for the worst location (alignment can only save budgeted
// executions).
func TestABNotWorseThanSBOnWorstCase(t *testing.T) {
	s := testutil.Space2D(t, 10)
	pl := NewPlanner(s)
	worstSB, worstAB := 0.0, 0.0
	for qa := 0; qa < s.Grid.NumPoints(); qa++ {
		sbOut, err := spillbound.Run(s, discovery.NewSimEngine(s, int32(qa)))
		if err != nil {
			t.Fatal(err)
		}
		abOut, _ := runAt(t, s, pl, int32(qa))
		if so := sbOut.SubOpt(s.PointCost[qa]); so > worstSB {
			worstSB = so
		}
		if so := abOut.SubOpt(s.PointCost[qa]); so > worstAB {
			worstAB = so
		}
	}
	// AB may lose slightly on individual points (penalty-inflated
	// budgets) but must not blow up the worst case.
	if worstAB > worstSB*1.5 {
		t.Errorf("MSOe: AB %v much worse than SB %v", worstAB, worstSB)
	}
}

func TestDecisionPenaltySanity(t *testing.T) {
	s := testutil.Space2D(t, 10)
	pl := NewPlanner(s)
	unlearned := []int{-1, -1}
	for ci := range s.Contours {
		dec := pl.Decide(unlearned, ci)
		if len(dec.Execs) == 0 {
			t.Fatalf("contour %d: no executions chosen", ci)
		}
		if dec.Penalty < 1-1e-9 || math.IsInf(dec.Penalty, 1) {
			t.Fatalf("contour %d: penalty %v out of range", ci, dec.Penalty)
		}
		// At most one execution per remaining dimension.
		if len(dec.Execs) > 2 {
			t.Fatalf("contour %d: %d execs for 2 dims", ci, len(dec.Execs))
		}
		// π* for the chosen partition can never exceed the all-singleton
		// partition's cost, which is at most the number of dims spilled on.
		if dec.Penalty > 2+1e-9 && dec.Parts <= 2 {
			// Penalty above part count means induced replacements were
			// chosen over the (penalty = parts) singleton partition —
			// contradiction with minimality.
			t.Fatalf("contour %d: penalty %v exceeds singleton cover for %d parts",
				ci, dec.Penalty, dec.Parts)
		}
		for _, ex := range dec.Execs {
			if ex.Budget <= 0 {
				t.Fatal("non-positive budget")
			}
			if !ex.Induced && ex.Budget != s.Contours[ci].Cost {
				t.Fatal("native execution must use the contour budget")
			}
			if !ex.Induced && ex.Penalty != 1 {
				t.Fatal("native execution must have penalty 1")
			}
			if ex.Induced && ex.Penalty < 1-1e-9 {
				t.Fatalf("induced penalty %v below 1", ex.Penalty)
			}
		}
	}
}

func TestDecisionCached(t *testing.T) {
	s := testutil.Space2D(t, 8)
	pl := NewPlanner(s)
	a := pl.Decide([]int{-1, -1}, 2)
	b := pl.Decide([]int{-1, -1}, 2)
	if a != b {
		t.Fatal("decisions should be cached and shared")
	}
}

func TestMaxPenaltyReported(t *testing.T) {
	s := testutil.Space2D(t, 10)
	pl := NewPlanner(s)
	_, pen := runAt(t, s, pl, int32(s.Grid.Terminus()))
	if pen < 1 {
		t.Fatalf("max penalty %v must be ≥ 1 for a run crossing contours", pen)
	}
	if pen > 10 {
		t.Errorf("max penalty %v implausibly high for 2D", pen)
	}
}

func TestProfileShape(t *testing.T) {
	s := testutil.Space2D(t, 10)
	pl := NewPlanner(s)
	prof := pl.Profile()
	if len(prof) != len(s.Contours) {
		t.Fatalf("profile length %d != contours %d", len(prof), len(s.Contours))
	}
	for i, ca := range prof {
		if ca.Contour != i+1 {
			t.Error("contour numbering broken")
		}
		if ca.Native && ca.MinPenalty != 1 {
			t.Error("native contours must have penalty 1")
		}
		if !ca.Native && ca.MinPenalty <= 1 {
			t.Errorf("contour %d: non-native with penalty %v ≤ 1", i+1, ca.MinPenalty)
		}
	}
}

func TestAlignedFraction(t *testing.T) {
	prof := []ContourAlignment{
		{MinPenalty: 1}, {MinPenalty: 1.3}, {MinPenalty: 2.5}, {MinPenalty: math.Inf(1)},
	}
	if got := AlignedFraction(prof, 1); got != 0.25 {
		t.Errorf("original fraction = %v", got)
	}
	if got := AlignedFraction(prof, 1.5); got != 0.5 {
		t.Errorf("1.5 fraction = %v", got)
	}
	if got := AlignedFraction(prof, 3); got != 0.75 {
		t.Errorf("3.0 fraction = %v", got)
	}
	if AlignedFraction(nil, 1) != 0 {
		t.Error("empty profile fraction should be 0")
	}
}

func TestMaxProfilePenalty(t *testing.T) {
	prof := []ContourAlignment{{MinPenalty: 1}, {MinPenalty: 2.2}}
	if got := MaxProfilePenalty(prof); got != 2.2 {
		t.Errorf("max = %v", got)
	}
	if MaxProfilePenalty(nil) != 1 {
		t.Error("empty profile max should be 1")
	}
}

func TestPlannerWithoutOptimizerProbes(t *testing.T) {
	s := testutil.Space2D(t, 8)
	pl := NewPlanner(s)
	pl.UseOptimizer = false
	for qa := 0; qa < s.Grid.NumPoints(); qa += 5 {
		runAt(t, s, pl, int32(qa))
	}
}

func TestTraceBudgetsRespectPenalty(t *testing.T) {
	s := testutil.Space2D(t, 10)
	pl := NewPlanner(s)
	qa := int32(s.Grid.Linear([]int{8, 6}))
	out, _ := runAt(t, s, pl, qa)
	for _, step := range out.Steps {
		if step.Phase != discovery.PhaseSpill {
			continue
		}
		cc := s.Contours[step.Contour-1].Cost
		// Budgets are CC_i for native, Cost(P,q) ≥ CC_i·Δ⁻¹ for induced;
		// in no case should a budget be absurdly above the contour cost.
		if step.Budget > cc*20 {
			t.Errorf("budget %v vastly exceeds contour cost %v", step.Budget, cc)
		}
	}
}

package alignedbound

import "math"

// ContourAlignment describes the (whole-contour) alignment status of one
// iso-cost contour with the full epp set, the quantity profiled in
// Table 2 of the paper.
type ContourAlignment struct {
	// Contour is the 1-based contour index.
	Contour int
	// Native reports whether the contour is natively aligned along at
	// least one dimension: the extreme location of that dimension spills
	// on it.
	Native bool
	// MinPenalty is the minimum replacement penalty Δ that induces
	// alignment along some dimension (1 when Native; +Inf if alignment
	// cannot be induced from the plan pool).
	MinPenalty float64
}

// Profile computes the alignment status of every contour of the source
// under the full epp set.
func (p *Planner) Profile() []ContourAlignment {
	s := p.S
	D := s.Geometry().D
	remMask := uint16(1)<<uint(D) - 1

	p.mu.Lock()
	defer p.mu.Unlock()

	out := make([]ContourAlignment, s.NumContours())
	for ci := range out {
		ic := s.ContourAt(nil, ci)
		geo := p.contourGeometry(ic, remMask)
		ca := ContourAlignment{Contour: ci + 1, MinPenalty: math.Inf(1)}
		for j := 0; j < D; j++ {
			if geo.extreme[j] < 0 {
				continue
			}
			// Contour alignment along j: q^j_max is an extreme location.
			if geo.maxCoord[j][j] == geo.extreme[j] {
				ca.Native = true
				ca.MinPenalty = 1
				break
			}
			_, _, penalty := p.induceAlignment(ic, remMask, j, geo.extreme[j])
			if penalty < ca.MinPenalty {
				ca.MinPenalty = penalty
			}
		}
		out[ci] = ca
	}
	return out
}

// AlignedFraction summarizes a profile as the fraction of contours whose
// alignment penalty is within the threshold (threshold 1 counts only
// natively aligned contours, the paper's "Original" column).
func AlignedFraction(profile []ContourAlignment, threshold float64) float64 {
	if len(profile) == 0 {
		return 0
	}
	n := 0
	for _, ca := range profile {
		if ca.MinPenalty <= threshold {
			n++
		}
	}
	return float64(n) / float64(len(profile))
}

// MaxProfilePenalty returns the largest finite penalty needed to align
// every contour (the paper's "Max Δ" column), or +Inf if some contour
// cannot be aligned from the plan pool.
func MaxProfilePenalty(profile []ContourAlignment) float64 {
	max := 1.0
	for _, ca := range profile {
		if ca.MinPenalty > max {
			max = ca.MinPenalty
		}
	}
	return max
}

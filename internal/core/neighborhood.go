package core

import (
	"math"

	"repro/internal/ess"
)

// The heuristic strategies (PARQO-lite, RobustMap) reason about a
// neighborhood of the optimizer's estimated location instead of the
// whole ESS. The repo's simulated workloads carry no cardinality
// estimate, so the estimate is the canonical mid-grid point — the
// geometric center of the selectivity range on every dimension, which
// is where an uninformative uniform prior lands. What matters for the
// bake-off is that all strategies share the same (wrong) estimate while
// the true location sweeps the grid.

// estimatePoint returns the grid's canonical estimated location: the
// middle index on every dimension.
func estimatePoint(g *ess.Grid) int32 {
	idx := make([]int, g.D)
	for d := range idx {
		idx[d] = g.Res / 2
	}
	return int32(g.Linear(idx))
}

// neighborhood is an error-weighted set of grid points around an
// estimate: Points[i] carries Weights[i], decaying geometrically with
// L∞ grid distance from the center (distance 0 — the center itself —
// has weight 1).
type neighborhood struct {
	Points  []int32
	Weights []float64
}

// neighborhoodDecay is the per-grid-step weight decay: one step of
// estimation error is half as likely as none. On the geometric grid a
// step is a constant multiplicative selectivity error, so geometric
// decay mirrors the log-normal-style error profiles PARQO assumes.
const neighborhoodDecay = 0.5

// errorNeighborhood enumerates the L∞ ball of radius r around the
// center (clipped to the grid) with geometrically decaying weights.
// Radius defaults to Res/4 (at least 1) and shrinks until the ball has
// at most 4096 points, so high-D spaces stay cheap to recost.
func errorNeighborhood(g *ess.Grid, center int32) neighborhood {
	r := g.Res / 4
	if r < 1 {
		r = 1
	}
	for r > 1 && math.Pow(float64(2*r+1), float64(g.D)) > 4096 {
		r--
	}
	cc := g.Coords(int(center), nil)
	var nb neighborhood
	// Odometer over offsets in [-r, r]^D.
	off := make([]int, g.D)
	for d := range off {
		off[d] = -r
	}
	idx := make([]int, g.D)
	for {
		ok := true
		dist := 0
		for d := range off {
			v := cc[d] + off[d]
			if v < 0 || v >= g.Res {
				ok = false
				break
			}
			idx[d] = v
			if a := off[d]; a > dist {
				dist = a
			} else if -a > dist {
				dist = -a
			}
		}
		if ok {
			nb.Points = append(nb.Points, int32(g.Linear(idx)))
			nb.Weights = append(nb.Weights, math.Pow(neighborhoodDecay, float64(dist)))
		}
		d := g.D - 1
		for d >= 0 {
			off[d]++
			if off[d] <= r {
				break
			}
			off[d] = -r
			d--
		}
		if d < 0 {
			break
		}
	}
	return nb
}

// maxLadderRungs caps the heuristic strategies' budget ladder. A chosen
// plan's cost at the true location is at most a bounded factor above
// Cmax (both are finite recosts of pool plans on the grid), so the cap
// is a defense against adversarial engines, not a bound real runs
// approach: reaching it means the engine never completes anything and
// the strategy reports an error instead of spinning.
const maxLadderRungs = 64

// budgetLadder returns the execution-budget ladder the heuristic
// strategies climb: the iso-cost contour budgets CC_1..CC_m, extended
// past Cmax by continued CostRatio growth (the chosen plan is generally
// not optimal at the true location, so its completion cost can exceed
// the optimal terminus cost), capped at maxLadderRungs rungs.
func budgetLadder(src ess.ContourSource) []float64 {
	costs := src.ContourCosts()
	if len(costs) > maxLadderRungs {
		return costs[:maxLadderRungs]
	}
	ladder := append(make([]float64, 0, maxLadderRungs), costs...)
	ratio := src.Ratio()
	if ratio <= 1 {
		ratio = 2
	}
	for len(ladder) < maxLadderRungs {
		ladder = append(ladder, ladder[len(ladder)-1]*ratio)
	}
	return ladder
}

// startRung returns the index of the first ladder rung whose budget
// covers the given cost (0 when even the first rung does).
func startRung(ladder []float64, cost float64) int {
	for i, b := range ladder {
		if b >= cost {
			return i
		}
	}
	return len(ladder) - 1
}

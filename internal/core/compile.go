package core

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/core/alignedbound"
	"repro/internal/core/bouquet"
	"repro/internal/core/discovery"
	"repro/internal/core/spillbound"
	"repro/internal/ess"
	"repro/internal/mso"
)

// CompileOptions parameterizes Compile.
type CompileOptions struct {
	// Lambda is the anorexic-reduction threshold; 0 means DefaultLambda.
	// (Use Session.SetLambda for an explicit λ = 0 reduction.)
	Lambda float64
	// PrimeAlignment additionally precomputes the alignment planner's
	// root-slice decisions, so concurrent AlignedBound runs start from a
	// warm cache instead of serializing on the planner mutex.
	PrimeAlignment bool
}

// Compiled is the immutable compile-time artifact of a search space:
// the anorexic reduction, the contour set (already on the Space), and
// the alignment planner with its candidate pool frozen. Building it is
// the expensive, once-per-workload step; afterwards any number of
// concurrent Runs — and the MSO sweep's worker pool — share one
// Compiled without synchronization on the discovery hot path.
type Compiled struct {
	// Space is the underlying search space.
	Space *ess.Space
	// Lambda is the anorexic-reduction threshold the artifact was
	// compiled with.
	Lambda float64

	reduction *ess.Reduction
	planner   *alignedbound.Planner

	// preps memoizes strategy compile-time state per strategy name
	// (values are *prepEntry); see strategyPrep.
	preps sync.Map
}

// Compile eagerly builds the compile-time artifact for the space.
func Compile(space *ess.Space, opts CompileOptions) (*Compiled, error) {
	lambda := opts.Lambda
	if lambda == 0 {
		lambda = DefaultLambda
	}
	c, err := newCompiled(space, lambda)
	if err != nil {
		return nil, err
	}
	if opts.PrimeAlignment {
		c.planner.Prime()
	}
	return c, nil
}

// errSetLambdaAfterCompile reports the Session misuse that used to
// panic: rethresholding after the reduction was built.
var errSetLambdaAfterCompile = errors.New("core: SetLambda after the reduction was built")

// validateLambda rejects thresholds the reduction cannot honor.
func validateLambda(lambda float64) (float64, error) {
	if lambda < 0 || math.IsNaN(lambda) {
		return 0, fmt.Errorf("core: invalid anorexic reduction threshold λ=%v", lambda)
	}
	return lambda, nil
}

func newCompiled(space *ess.Space, lambda float64) (*Compiled, error) {
	if _, err := validateLambda(lambda); err != nil {
		return nil, err
	}
	return &Compiled{
		Space:     space,
		Lambda:    lambda,
		reduction: space.Reduce(lambda),
		planner:   alignedbound.NewPlanner(space),
	}, nil
}

// Reduction returns the compiled anorexic reduction.
func (c *Compiled) Reduction() *ess.Reduction { return c.reduction }

// Planner returns the compiled alignment planner. Its decision cache
// fills on demand and is shared by every run over this artifact.
func (c *Compiled) Planner() *alignedbound.Planner { return c.planner }

// Guarantee returns the MSO guarantee of the algorithm on this query:
// the a-priori bound the paper proves. For AlignedBound the upper end
// of its range is returned (use alignedbound.GuaranteeRange for both).
func (c *Compiled) Guarantee(alg Algorithm) (float64, error) {
	d := c.Space.Grid.D
	switch alg {
	case PlanBouquet:
		return bouquet.Guarantee(c.reduction), nil
	case SpillBound:
		return spillbound.Guarantee(d), nil
	case AlignedBound:
		_, hi := alignedbound.GuaranteeRange(d)
		return hi, nil
	default:
		return 0, fmt.Errorf("core: unknown algorithm %q", alg)
	}
}

// MSO exhaustively (or strided) evaluates the algorithm's empirical MSO
// and ASO over the grid, one fresh Run per location, all sharing this
// artifact.
func (c *Compiled) MSO(alg Algorithm, opts mso.Options) (*mso.Result, error) {
	return mso.Sweep(c.Space, func(qa int32) (*discovery.Outcome, error) {
		return c.NewRun().Discover(alg, qa)
	}, opts)
}

// NativeWorstCaseMSO evaluates the traditional optimizer's worst-case
// MSO (Eq. 2) on this space.
func (c *Compiled) NativeWorstCaseMSO(opts mso.Options) *mso.Result {
	return mso.NativeWorstCase(c.Space, opts)
}

package core

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/core/alignedbound"
	"repro/internal/core/bouquet"
	"repro/internal/core/discovery"
	"repro/internal/core/spillbound"
	"repro/internal/ess"
	"repro/internal/mso"
)

// CompileOptions parameterizes Compile.
type CompileOptions struct {
	// Lambda is the anorexic-reduction threshold; 0 means DefaultLambda.
	// (Use Session.SetLambda for an explicit λ = 0 reduction.)
	Lambda float64
	// PrimeAlignment additionally precomputes the alignment planner's
	// root-slice decisions, so concurrent AlignedBound runs start from a
	// warm cache instead of serializing on the planner mutex.
	PrimeAlignment bool
}

// Compiled is the immutable compile-time artifact of a search space:
// the contour provider, the anorexic reduction, and the alignment
// planner. Building it is the once-per-workload step; afterwards any
// number of concurrent Runs — and the MSO sweep's worker pool — share
// one Compiled without synchronization on the discovery hot path.
//
// The reduction is built on first use (sync.Once): over a lazy source
// it enumerates every full-grid contour, which is exactly the eager
// materialization the demand-driven path avoids, so SpillBound- and
// AlignedBound-only serving never pays for it. The structure stays
// immutable under online refinement — a refining source publishes its
// overlay behind an atomic pointer and bumps its Epoch, which the
// planner keys its decision cache by.
type Compiled struct {
	// Space is the underlying eager search space; nil when the artifact
	// was compiled over a demand-driven source (use Source).
	Space *ess.Space
	// Source is the contour provider every run consumes.
	Source ess.ContourSource
	// Lambda is the anorexic-reduction threshold the artifact was
	// compiled with.
	Lambda float64

	redOnce   sync.Once
	reduction *ess.Reduction
	planner   *alignedbound.Planner

	// preps memoizes strategy compile-time state per strategy name
	// (values are *prepEntry); see strategyPrep.
	preps sync.Map
}

// Compile eagerly builds the compile-time artifact for the space.
func Compile(space *ess.Space, opts CompileOptions) (*Compiled, error) {
	c, err := CompileSource(space, opts)
	if err != nil {
		return nil, err
	}
	c.Space = space
	return c, nil
}

// CompileSource builds the compile-time artifact over any contour
// provider. Over a *LazySpace nothing materializes up front: the
// reduction and the planner's decisions are computed on first use.
func CompileSource(src ess.ContourSource, opts CompileOptions) (*Compiled, error) {
	lambda := opts.Lambda
	if lambda == 0 {
		lambda = DefaultLambda
	}
	c, err := newCompiled(src, lambda)
	if err != nil {
		return nil, err
	}
	if opts.PrimeAlignment {
		c.planner.Prime()
	}
	return c, nil
}

// errSetLambdaAfterCompile reports the Session misuse that used to
// panic: rethresholding after the reduction was built.
var errSetLambdaAfterCompile = errors.New("core: SetLambda after the reduction was built")

// validateLambda rejects thresholds the reduction cannot honor.
func validateLambda(lambda float64) (float64, error) {
	if lambda < 0 || math.IsNaN(lambda) {
		return 0, fmt.Errorf("core: invalid anorexic reduction threshold λ=%v", lambda)
	}
	return lambda, nil
}

func newCompiled(src ess.ContourSource, lambda float64) (*Compiled, error) {
	if _, err := validateLambda(lambda); err != nil {
		return nil, err
	}
	if s, ok := src.(*ess.Space); ok {
		return &Compiled{
			Space:   s,
			Source:  src,
			Lambda:  lambda,
			planner: alignedbound.NewPlanner(src),
		}, nil
	}
	return &Compiled{
		Source:  src,
		Lambda:  lambda,
		planner: alignedbound.NewPlanner(src),
	}, nil
}

// Reduction returns the compiled anorexic reduction, building it on
// first use (full contour enumeration — see the Compiled doc).
func (c *Compiled) Reduction() *ess.Reduction {
	c.redOnce.Do(func() {
		c.reduction = ess.ReduceSource(c.Source, c.Lambda)
	})
	return c.reduction
}

// Planner returns the compiled alignment planner. Its decision cache
// fills on demand and is shared by every run over this artifact.
func (c *Compiled) Planner() *alignedbound.Planner { return c.planner }

// Guarantee returns the MSO guarantee of the algorithm on this query:
// the a-priori bound the paper proves. For AlignedBound the upper end
// of its range is returned (use alignedbound.GuaranteeRange for both).
func (c *Compiled) Guarantee(alg Algorithm) (float64, error) {
	d := c.Source.Geometry().D
	switch alg {
	case PlanBouquet:
		return bouquet.Guarantee(c.Reduction()), nil
	case SpillBound:
		return spillbound.Guarantee(d), nil
	case AlignedBound:
		_, hi := alignedbound.GuaranteeRange(d)
		return hi, nil
	default:
		return 0, fmt.Errorf("core: unknown algorithm %q", alg)
	}
}

// MSO exhaustively (or strided) evaluates the algorithm's empirical MSO
// and ASO over the grid, one fresh Run per location, all sharing this
// artifact.
func (c *Compiled) MSO(alg Algorithm, opts mso.Options) (*mso.Result, error) {
	return mso.Sweep(c.Source, func(qa int32) (*discovery.Outcome, error) {
		return c.NewRun().Discover(alg, qa)
	}, opts)
}

// NativeWorstCaseMSO evaluates the traditional optimizer's worst-case
// MSO (Eq. 2) on this space.
func (c *Compiled) NativeWorstCaseMSO(opts mso.Options) *mso.Result {
	return mso.NativeWorstCase(c.Source, opts)
}

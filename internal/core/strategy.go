package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core/discovery"
)

// Strategy is a pluggable robust-query-processing policy: a stable wire
// name, an optional compile-time preparation step, and a per-run
// discovery driver. The three paper algorithms (PlanBouquet,
// SpillBound, AlignedBound) are registered behind this interface, as
// are the comparison strategies of the bake-off harness (PARQO-lite,
// RobustMap, AdaptiveSwitch) — all six run through the same engine
// stack (fault injection, resilient retries, deadline guard), so the
// bake-off compares policies, not plumbing.
type Strategy interface {
	// Name is the registry key and wire name (lower-case, stable).
	Name() string

	// Prepare runs the strategy's compile-time step over the artifact
	// and returns per-artifact state handed to every Discover. It must
	// be a pure function of the artifact (no per-run randomness), so the
	// memoized result can be shared by concurrent runs. Strategies with
	// no compile-time step return (nil, nil).
	Prepare(c *Compiled) (any, error)

	// Discover drives one discovery for the run through the engine,
	// using the prepared state. Implementations must poll
	// discovery.AbortOf(eng) before every budgeted execution so
	// deadline-bounded runs stop at execution boundaries, and must
	// never look at the true location except through the engine.
	Discover(r *Run, prep any, eng discovery.Engine) (*discovery.Outcome, error)
}

// Guaranteed is optionally implemented by strategies with an a-priori
// MSO bound (the paper algorithms). Strategies without one — the
// heuristic comparison policies — simply do not implement it, and the
// bake-off table renders their guarantee as absent.
type Guaranteed interface {
	// Guarantee returns the strategy's a-priori MSO bound on the
	// artifact, and whether one exists.
	Guarantee(c *Compiled) (float64, bool)
}

// strategyRegistry is the process-wide strategy table. Registration
// order is preserved so every listing (bake-off rows, /metrics series,
// CLI help) is deterministic.
var strategyRegistry = struct {
	mu    sync.RWMutex
	order []string
	byKey map[string]Strategy
}{byKey: make(map[string]Strategy)}

// RegisterStrategy adds a strategy to the registry. Names are
// case-insensitive and must be unique; re-registering a name panics, as
// silently shadowing a policy would corrupt any running bake-off.
func RegisterStrategy(s Strategy) {
	key := strings.ToLower(s.Name())
	if key == "" {
		panic("core: RegisterStrategy with empty name")
	}
	strategyRegistry.mu.Lock()
	defer strategyRegistry.mu.Unlock()
	if _, dup := strategyRegistry.byKey[key]; dup {
		panic(fmt.Sprintf("core: strategy %q registered twice", key))
	}
	strategyRegistry.byKey[key] = s
	strategyRegistry.order = append(strategyRegistry.order, key)
}

// StrategyByName resolves a registered strategy (case-insensitive).
func StrategyByName(name string) (Strategy, bool) {
	strategyRegistry.mu.RLock()
	defer strategyRegistry.mu.RUnlock()
	s, ok := strategyRegistry.byKey[strings.ToLower(name)]
	return s, ok
}

// Strategies lists the registered strategy names in registration order:
// the three paper algorithms first, then the bake-off comparison
// strategies.
func Strategies() []string {
	strategyRegistry.mu.RLock()
	defer strategyRegistry.mu.RUnlock()
	return append([]string(nil), strategyRegistry.order...)
}

// StrategyNamesSorted lists the registered names alphabetically (for
// error messages).
func StrategyNamesSorted() []string {
	names := Strategies()
	sort.Strings(names)
	return names
}

func init() {
	// The paper algorithms, behind the same dispatch path Run.Discover
	// uses — a strategy run is byte-for-byte the pre-refactor run.
	RegisterStrategy(paperStrategy{alg: PlanBouquet})
	RegisterStrategy(paperStrategy{alg: SpillBound})
	RegisterStrategy(paperStrategy{alg: AlignedBound})
	// The bake-off comparison strategies.
	RegisterStrategy(parqoStrategy{})
	RegisterStrategy(robustMapStrategy{})
	RegisterStrategy(adaptiveSwitchStrategy{})
}

// paperStrategy adapts one of the paper's algorithms to the Strategy
// interface. Its Discover calls the exact dispatch path Run.Discover
// uses (including the AlignedBound planner-fault fallback), so outcomes
// are deep-equal to the pre-refactor drivers by construction — the
// equivalence the differential suites pin.
type paperStrategy struct{ alg Algorithm }

func (p paperStrategy) Name() string { return string(p.alg) }

// Prepare is a no-op: the reduction and alignment planner are already
// part of the Compiled artifact.
func (p paperStrategy) Prepare(c *Compiled) (any, error) { return nil, nil }

func (p paperStrategy) Discover(r *Run, _ any, eng discovery.Engine) (*discovery.Outcome, error) {
	return r.dispatch(p.alg, eng)
}

// Guarantee exposes the paper bound for the wrapped algorithm.
func (p paperStrategy) Guarantee(c *Compiled) (float64, bool) {
	g, err := c.Guarantee(p.alg)
	if err != nil {
		return 0, false
	}
	return g, true
}

// StrategyGuarantee returns the a-priori MSO bound of the named
// strategy on this artifact, or ok=false when the strategy has none (or
// is unknown).
func (c *Compiled) StrategyGuarantee(name string) (float64, bool) {
	s, ok := StrategyByName(name)
	if !ok {
		return 0, false
	}
	g, ok := s.(Guaranteed)
	if !ok {
		return 0, false
	}
	return g.Guarantee(c)
}

// prepEntry memoizes one strategy's compile-time preparation on an
// artifact. The once guards the computation; racing runs share the
// winner.
type prepEntry struct {
	once sync.Once
	val  any
	err  error
}

// strategyPrep returns the strategy's memoized compile-time state for
// this artifact, computing it on first use. Preparation is a pure
// function of the artifact, so the cached value is safe to share across
// concurrent runs.
func (c *Compiled) strategyPrep(s Strategy) (any, error) {
	e, _ := c.preps.LoadOrStore(strings.ToLower(s.Name()), &prepEntry{})
	pe := e.(*prepEntry)
	pe.once.Do(func() { pe.val, pe.err = s.Prepare(c) })
	return pe.val, pe.err
}

// PrepareStrategy eagerly runs (and memoizes) the named strategy's
// compile-time step, so servers can pay it at artifact-install time
// instead of on the first request.
func (c *Compiled) PrepareStrategy(name string) error {
	s, ok := StrategyByName(name)
	if !ok {
		return fmt.Errorf("core: unknown strategy %q", name)
	}
	_, err := c.strategyPrep(s)
	return err
}

// DiscoverStrategy runs the named strategy for the query instance whose
// true location is the grid point qa, using cost-model simulated
// execution behind the run's armed injector and context — exactly the
// engine stack Run.Discover builds for the paper algorithms.
func (r *Run) DiscoverStrategy(name string, qa int32) (*discovery.Outcome, error) {
	return r.DiscoverStrategyWith(name, r.simStack(qa))
}

// DiscoverStrategyWith runs the named strategy against an arbitrary
// execution engine, with the same resilient-ledger attachment and
// abort stamping as DiscoverWith.
func (r *Run) DiscoverStrategyWith(name string, eng discovery.Engine) (*discovery.Outcome, error) {
	s, ok := StrategyByName(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown strategy %q (registered: %s)",
			name, strings.Join(StrategyNamesSorted(), ", "))
	}
	prep, err := r.c.strategyPrep(s)
	if err != nil {
		return nil, fmt.Errorf("core: preparing strategy %q: %w", name, err)
	}
	out, derr := s.Discover(r, prep, eng)
	return r.finish(out, derr, eng)
}

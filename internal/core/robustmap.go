package core

import (
	"fmt"

	"repro/internal/core/discovery"
)

// robustMapStrategy is a Graefe-style robustness map (arXiv 0909.1772):
// instead of asking which plan is cheapest at the estimate, it asks how
// steeply each candidate's cost climbs away from the optimal surface
// around the estimate, and executes the flattest plan. A robustness map
// colors each location with cost(p, q) / opt(q) — the plan's
// sub-optimality — and a plan whose map stays near 1 across the error
// neighborhood keeps performing when the estimate is wrong. At compile
// time every base-pool plan is scored by its worst sub-optimality over
// the neighborhood and the minimizer wins.
//
// At run time the chosen plan is executed with spill-mode monitoring up
// the budget ladder: while the plan still has an unlearned spilled
// dimension, each rung first runs in spill-mode (learning the dimension
// on completion, raising its half-space bound on a kill, exactly the
// SpillBound observation discipline), then — once nothing monitors — in
// regular mode. The monitoring makes kills informative, but the plan is
// never switched, so no MSO guarantee is claimed.
type robustMapStrategy struct{}

func (robustMapStrategy) Name() string { return "robustmap" }

// robustMapPrep is the memoized compile-time choice.
type robustMapPrep struct {
	planID int32
}

// Prepare picks the flattest plan among the candidates that are
// near-optimal at the estimate: a uniformly expensive plan has a
// perfectly flat cost surface, so without the near-optimality filter
// the map degenerates to "pick the worst plan everywhere" — robustness
// maps grade plans an optimizer would actually consider. A candidate's
// cost at the estimate may exceed the optimum there by at most the
// contour ratio (one budget rung). Ties break toward the cheaper plan
// at the estimate, then the lower ID.
func (robustMapStrategy) Prepare(c *Compiled) (any, error) {
	src := c.Source
	ev := src.NewEvaluator()
	g := src.Geometry()
	qe := estimatePoint(g)
	nb := errorNeighborhood(g, qe)
	maxAtQe := src.CostAt(qe) * src.Ratio()
	if src.Ratio() <= 1 {
		maxAtQe = src.CostAt(qe) * 2
	}

	var bestID int32 = -1
	bestSteep, bestAtQe := 0.0, 0.0
	for _, p := range src.BasePlans() {
		id := int32(p.ID)
		atQe := ev.PlanCost(id, qe)
		if atQe <= 0 || atQe > maxAtQe {
			continue
		}
		steep := 1.0
		for _, pt := range nb.Points {
			if opt := ev.OptCost(pt); opt > 0 {
				if ratio := ev.PlanCost(id, pt) / opt; ratio > steep {
					steep = ratio
				}
			}
		}
		if bestID < 0 || steep < bestSteep ||
			(steep == bestSteep && atQe < bestAtQe) {
			bestID, bestSteep, bestAtQe = id, steep, atQe
		}
	}
	if bestID < 0 {
		// The optimal plan at the estimate always passes the filter in
		// exact spaces; recost drift can exclude everything in degenerate
		// pools, in which case the estimate's own plan is the map's pick.
		bestID = src.PlanAt(qe)
	}
	return &robustMapPrep{planID: bestID}, nil
}

// Discover climbs the full budget ladder with the chosen plan. Spill
// monitoring starts at the bottom rung — like SpillBound, the cheap
// rungs buy selectivity knowledge — and a spill kill skips the rung's
// regular execution (a full run under the same budget would be killed
// too, since full cost dominates spill cost).
func (robustMapStrategy) Discover(r *Run, prep any, eng discovery.Engine) (*discovery.Outcome, error) {
	p := prep.(*robustMapPrep)
	s := r.c.Source
	out := &discovery.Outcome{}
	st := discovery.NewState(s.Geometry().D)
	ladder := budgetLadder(s)
	for rung := 0; rung < len(ladder); rung++ {
		budget := ladder[rung]
		killed := false
		for {
			dim := s.SpillDim(p.planID, st.RemMask())
			if dim < 0 || st.Learned[dim] >= 0 {
				break
			}
			if aerr := discovery.AbortOf(eng); aerr != nil {
				return out, aerr
			}
			cost, done, learned := eng.ExecSpill(p.planID, dim, budget)
			out.Add(discovery.Step{
				Contour: rung + 1, PlanID: p.planID, Dim: dim,
				Budget: budget, Cost: cost, Completed: done,
				Phase: discovery.PhaseSpill, LearnedIdx: learned,
			})
			if !done {
				st.Raise(dim, learned)
				killed = true
				break
			}
			st.Learn(dim, learned)
		}
		if killed {
			continue
		}
		if aerr := discovery.AbortOf(eng); aerr != nil {
			return out, aerr
		}
		cost, done := eng.ExecFull(p.planID, budget)
		out.Add(discovery.Step{
			Contour: rung + 1, PlanID: p.planID, Dim: -1,
			Budget: budget, Cost: cost, Completed: done,
			Phase: discovery.PhaseBouquet, LearnedIdx: -1,
		})
		if done {
			out.Completed = true
			return out, nil
		}
	}
	return out, fmt.Errorf("robustmap: plan %d did not complete within %d budget rungs (query %s)",
		p.planID, len(ladder), s.Query().Name)
}

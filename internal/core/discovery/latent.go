package discovery

import "time"

// Latent wraps an Engine with a fixed wall-clock delay per budgeted
// execution, modeling the I/O-bound engine of a deployed discovery
// service: in production the executions run on a remote database
// engine, so a discovery spends its time waiting on them, and N
// concurrent discoveries overlap those waits. The throughput harness
// (experiments.Throughput, rqp throughput) uses this to measure
// concurrency scaling honestly on any core count.
type Latent struct {
	eng   Engine
	delay time.Duration
}

// NewLatent wraps the engine; every ExecFull/ExecSpill sleeps delay
// before delegating. A zero or negative delay disables the sleep.
func NewLatent(eng Engine, delay time.Duration) *Latent {
	return &Latent{eng: eng, delay: delay}
}

func (l *Latent) wait() {
	if l.delay > 0 {
		time.Sleep(l.delay)
	}
}

// ExecFull implements Engine.
func (l *Latent) ExecFull(planID int32, budget float64) (float64, bool) {
	l.wait()
	return l.eng.ExecFull(planID, budget)
}

// ExecSpill implements Engine.
func (l *Latent) ExecSpill(planID int32, dim int, budget float64) (float64, bool, int) {
	l.wait()
	return l.eng.ExecSpill(planID, dim, budget)
}

// LatentFallible is Latent for FallibleEngines. Placing the delay
// inside the resilient driver means every retry pays it too — exactly
// what re-running a remote execution costs.
type LatentFallible struct {
	eng   FallibleEngine
	delay time.Duration
}

// NewLatentFallible wraps the fallible engine; every ExecFull/ExecSpill
// sleeps delay before delegating.
func NewLatentFallible(eng FallibleEngine, delay time.Duration) *LatentFallible {
	return &LatentFallible{eng: eng, delay: delay}
}

func (l *LatentFallible) wait() {
	if l.delay > 0 {
		time.Sleep(l.delay)
	}
}

// ExecFull implements FallibleEngine.
func (l *LatentFallible) ExecFull(planID int32, budget float64) (float64, bool, error) {
	l.wait()
	return l.eng.ExecFull(planID, budget)
}

// ExecSpill implements FallibleEngine.
func (l *LatentFallible) ExecSpill(planID int32, dim int, budget float64) (float64, bool, int, error) {
	l.wait()
	return l.eng.ExecSpill(planID, dim, budget)
}

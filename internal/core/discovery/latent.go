package discovery

import (
	"context"
	"sync"
	"time"
)

// Latent wraps an Engine with a fixed wall-clock delay per budgeted
// execution, modeling the I/O-bound engine of a deployed discovery
// service: in production the executions run on a remote database
// engine, so a discovery spends its time waiting on them, and N
// concurrent discoveries overlap those waits. The throughput harness
// (experiments.Throughput, rqp throughput) uses this to measure
// concurrency scaling honestly on any core count.
//
// With a context attached (WithContext), the wait is interruptible: a
// deadline that expires mid-sleep wakes the engine immediately, the
// execution is refused as a zero-cost kill, and the run-level abort is
// exposed through Aborted — so a slow engine can never wedge a
// deadline-bounded request.
type Latent struct {
	eng   Engine
	delay time.Duration
	ctx   context.Context

	mu    sync.Mutex
	abort error
}

// NewLatent wraps the engine; every ExecFull/ExecSpill sleeps delay
// before delegating. A zero or negative delay disables the sleep.
func NewLatent(eng Engine, delay time.Duration) *Latent {
	return &Latent{eng: eng, delay: delay}
}

// WithContext makes the per-execution waits interruptible by the
// context and returns the engine for chaining.
func (l *Latent) WithContext(ctx context.Context) *Latent {
	l.ctx = ctx
	return l
}

// Aborted implements Aborter, live-checking the context.
func (l *Latent) Aborted() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.abort == nil && l.ctx != nil {
		if err := l.ctx.Err(); err != nil {
			l.abort = &AbortError{Err: err}
		}
	}
	if l.abort != nil {
		return l.abort
	}
	return AbortOf(l.eng)
}

// wait sleeps the engine latency; it reports false when the context
// died before the sleep finished (the execution must not run).
func (l *Latent) wait() bool {
	if l.ctx != nil && l.Aborted() != nil {
		return false
	}
	if l.delay <= 0 {
		return true
	}
	if l.ctx == nil {
		time.Sleep(l.delay)
		return true
	}
	if !sleepCtx(l.ctx, l.delay) {
		l.Aborted() // latch the abort
		return false
	}
	return true
}

// ExecFull implements Engine.
func (l *Latent) ExecFull(planID int32, budget float64) (float64, bool) {
	if !l.wait() {
		return 0, false
	}
	return l.eng.ExecFull(planID, budget)
}

// ExecSpill implements Engine.
func (l *Latent) ExecSpill(planID int32, dim int, budget float64) (float64, bool, int) {
	if !l.wait() {
		return 0, false, -1
	}
	return l.eng.ExecSpill(planID, dim, budget)
}

// sleepCtx sleeps d, reporting false if ctx finished first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if err := ctx.Err(); err != nil {
		return false
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// LatentFallible is Latent for FallibleEngines. Placing the delay
// inside the resilient driver means every retry pays it too — exactly
// what re-running a remote execution costs. With a context attached,
// an interrupted wait surfaces as a typed *AbortError, which the
// resilient driver converts into the run-level abort.
type LatentFallible struct {
	eng   FallibleEngine
	delay time.Duration
	ctx   context.Context
}

// NewLatentFallible wraps the fallible engine; every ExecFull/ExecSpill
// sleeps delay before delegating.
func NewLatentFallible(eng FallibleEngine, delay time.Duration) *LatentFallible {
	return &LatentFallible{eng: eng, delay: delay}
}

// WithContext makes the per-execution waits interruptible by the
// context and returns the engine for chaining.
func (l *LatentFallible) WithContext(ctx context.Context) *LatentFallible {
	l.ctx = ctx
	return l
}

// wait sleeps the engine latency, returning the typed abort when the
// context died first.
func (l *LatentFallible) wait() error {
	if l.ctx != nil {
		if err := l.ctx.Err(); err != nil {
			return &AbortError{Err: err}
		}
	}
	if l.delay <= 0 {
		return nil
	}
	if l.ctx == nil {
		time.Sleep(l.delay)
		return nil
	}
	if !sleepCtx(l.ctx, l.delay) {
		return &AbortError{Err: l.ctx.Err()}
	}
	return nil
}

// ExecFull implements FallibleEngine.
func (l *LatentFallible) ExecFull(planID int32, budget float64) (float64, bool, error) {
	if err := l.wait(); err != nil {
		return 0, false, err
	}
	return l.eng.ExecFull(planID, budget)
}

// ExecSpill implements FallibleEngine.
func (l *LatentFallible) ExecSpill(planID int32, dim int, budget float64) (float64, bool, int, error) {
	if err := l.wait(); err != nil {
		return 0, false, -1, err
	}
	return l.eng.ExecSpill(planID, dim, budget)
}

package discovery

import (
	"errors"

	"repro/internal/faultinject"
)

// FaultySim is a SimEngine exposed through the FallibleEngine interface
// with injector-driven engine faults: full and spill executions can fail
// mid-flight (charging a deterministic fraction of the work they would
// have done), completed spills can lose their selectivity observation,
// and successful executions can pick up induced latency drift. With a
// nil injector it behaves exactly like the wrapped SimEngine.
//
// Because the schedule is a pure function of the injector seed and the
// per-site call sequence, two runs with the same seed fault at the same
// executions — the property the chaos suite pins.
type FaultySim struct {
	sim *SimEngine
	in  *faultinject.Injector
}

// NewFaultySim wraps the simulator with the injector.
func NewFaultySim(sim *SimEngine, in *faultinject.Injector) *FaultySim {
	return &FaultySim{sim: sim, in: in}
}

// ExecFull implements FallibleEngine. A fault aborts the execution
// partway: the caller is billed a deterministic fraction of the cost
// the attempt would have consumed, and learns nothing.
func (f *FaultySim) ExecFull(planID int32, budget float64) (float64, bool, error) {
	if ferr := f.in.Check(faultinject.SiteEngineFull); ferr != nil {
		c, _ := f.sim.ExecFull(planID, budget)
		return c * wasteOf(f.in, ferr), false, ferr
	}
	c, done := f.sim.ExecFull(planID, budget)
	c += c * f.in.Drift(faultinject.SiteLatency)
	return c, done, nil
}

// ExecSpill implements FallibleEngine. Beyond mid-flight aborts, a
// completed spill can lose its observation (SiteSpillObs): the work is
// fully billed but learnedIdx is -1 — the engine finished and then
// dropped the sample.
func (f *FaultySim) ExecSpill(planID int32, dim int, budget float64) (float64, bool, int, error) {
	if ferr := f.in.Check(faultinject.SiteEngineSpill); ferr != nil {
		c, _, _ := f.sim.ExecSpill(planID, dim, budget)
		return c * wasteOf(f.in, ferr), false, -1, ferr
	}
	c, done, idx := f.sim.ExecSpill(planID, dim, budget)
	c += c * f.in.Drift(faultinject.SiteLatency)
	if done {
		if ferr := f.in.Check(faultinject.SiteSpillObs); ferr != nil {
			return c, false, -1, ferr
		}
	}
	return c, done, idx, nil
}

// wasteOf returns the injector's deterministic waste fraction for the
// fault carried by err (1 if err wraps no Fault — bill everything).
func wasteOf(in *faultinject.Injector, err error) float64 {
	var flt *faultinject.Fault
	if errors.As(err, &flt) {
		return in.WasteFraction(flt)
	}
	return 1
}

var _ FallibleEngine = (*FaultySim)(nil)

// Package discovery defines the shared machinery of the robust query
// processing algorithms: the budgeted-execution oracle they drive, the
// per-execution trace they produce, and the selectivity-knowledge state
// they accumulate while walking the ESS contours.
//
// Algorithms never look at the true query location directly — they only
// observe it through Engine, exactly as the paper's algorithms only
// observe the database through budget-limited (spill) executions.
package discovery

import (
	"fmt"

	"repro/internal/ess"
)

// Engine is the execution oracle: it knows where the true query location
// qa is (or runs real executions) and reports only what a budgeted
// execution would reveal.
type Engine interface {
	// ExecFull runs the pool plan to completion or until the cost budget
	// expires. It returns the cost actually incurred (the full budget on
	// a kill) and whether the query completed.
	ExecFull(planID int32, budget float64) (costIncurred float64, completed bool)

	// ExecSpill runs the plan in spill-mode on the given ESS dimension
	// with the budget (§3.1.2). On completion the dimension's exact
	// selectivity is learned and learnedIdx is its grid index; otherwise
	// learnedIdx is the largest grid index k guaranteed to satisfy
	// qa.dim > Vals[k] (Lemma 3.1's half-space pruning).
	ExecSpill(planID int32, dim int, budget float64) (costIncurred float64, completed bool, learnedIdx int)
}

// Phase labels the origin of a trace step.
type Phase string

// Trace step phases.
const (
	PhaseSpill   Phase = "spill"   // spill-mode contour execution
	PhaseBouquet Phase = "bouquet" // PlanBouquet full execution
	PhaseOneD    Phase = "1d"      // terminal 1-D bouquet phase
)

// Step records one budgeted execution.
type Step struct {
	// Contour is the 1-based contour index the execution ran on.
	Contour int
	// PlanID is the pool plan executed.
	PlanID int32
	// Dim is the spilled ESS dimension, or -1 for full executions.
	Dim int
	// Budget is the assigned cost limit.
	Budget float64
	// Cost is the cost actually incurred (= Budget unless completed).
	Cost float64
	// Completed reports whether the execution finished within budget.
	Completed bool
	// Phase labels which algorithm stage issued the execution.
	Phase Phase
	// LearnedIdx is the grid index learned for Dim (exact on
	// completion, exclusive lower bound otherwise); -1 for full runs.
	LearnedIdx int
}

// Degradation records one graceful fallback or retry the resilient
// driver took during a discovery run. Fault-free runs have none; under
// a fixed fault schedule the sequence is deterministic.
type Degradation struct {
	// Kind labels the rung of the degradation ladder: "retry" (transient
	// fault, execution re-run), "exec-abandoned" (retries exhausted or
	// persistent fault, execution treated as a kill), "lost-observation"
	// (completed spill whose selectivity sample was dropped),
	// "alignment-fallback" (AlignedBound handed over to SpillBound), or
	// an executor-level note such as "indexscan→seqscan".
	Kind string
	// Exec is the 1-based ordinal of the engine execution the entry
	// applies to, or 0 when not tied to a single execution.
	Exec int
	// Detail is the human-readable cause.
	Detail string
	// WastedCost is the cost consumed by abandoned work (0 when none).
	WastedCost float64
}

// Outcome is the result of one discovery run.
type Outcome struct {
	// Steps is the full execution trace.
	Steps []Step
	// TotalCost is the summed cost of all executions, including retried
	// and wasted work — the robustness ledger the MSO metrics price.
	TotalCost float64
	// Completed reports whether the query finished (always true for a
	// correct algorithm; false signals an internal error).
	Completed bool
	// Degradations lists the fallbacks and retries taken, in order;
	// empty for fault-free runs.
	Degradations []Degradation
	// Retries counts engine executions that were re-run after transient
	// faults.
	Retries int
	// WastedCost totals the cost of abandoned execution attempts
	// (already included in TotalCost).
	WastedCost float64
	// AlignPenalty is the maximum partition penalty π* an AlignedBound
	// run paid (1 when only natively aligned contours were used, 0 for
	// other algorithms). Carried on the outcome so concurrent runs need
	// no shared accumulator.
	AlignPenalty float64
}

// SubOpt returns the sub-optimality of the run against the optimal cost
// at the true location (Eq. 3).
func (o *Outcome) SubOpt(optCost float64) float64 {
	if optCost <= 0 {
		return 0
	}
	return o.TotalCost / optCost
}

// Add appends a step and accumulates its cost.
func (o *Outcome) Add(s Step) {
	o.Steps = append(o.Steps, s)
	o.TotalCost += s.Cost
}

// State is the selectivity knowledge accumulated by a discovery run.
type State struct {
	// Learned[d] is the exactly-learned grid index of dimension d, or -1.
	Learned []int
	// Lower[d] is the exclusive lower bound: qa.d is known to exceed
	// grid value Lower[d] (-1 = no information).
	Lower []int
}

// NewState returns the all-unknown state for d dimensions.
func NewState(d int) *State {
	st := &State{Learned: make([]int, d), Lower: make([]int, d)}
	for i := 0; i < d; i++ {
		st.Learned[i] = -1
		st.Lower[i] = -1
	}
	return st
}

// RemMask returns the bitmask of still-unlearned dimensions.
func (st *State) RemMask() uint16 {
	var m uint16
	for d, v := range st.Learned {
		if v < 0 {
			m |= 1 << uint(d)
		}
	}
	return m
}

// Remaining returns the count of unlearned dimensions.
func (st *State) Remaining() int {
	n := 0
	for _, v := range st.Learned {
		if v < 0 {
			n++
		}
	}
	return n
}

// RemainingDims returns the unlearned dimensions in ascending order.
func (st *State) RemainingDims() []int {
	var out []int
	for d, v := range st.Learned {
		if v < 0 {
			out = append(out, d)
		}
	}
	return out
}

// Learn records the exact grid index of a dimension.
func (st *State) Learn(dim, idx int) {
	if st.Learned[dim] >= 0 {
		panic(fmt.Sprintf("discovery: dimension %d learned twice", dim))
	}
	st.Learned[dim] = idx
}

// Raise lifts the exclusive lower bound of a dimension.
func (st *State) Raise(dim, idx int) {
	if idx > st.Lower[dim] {
		st.Lower[dim] = idx
	}
}

// Compatible reports whether a grid point is still a candidate location
// for qa: learned dimensions must match exactly and unlearned ones must
// exceed the known lower bounds.
func (st *State) Compatible(g *ess.Grid, pt int32) bool {
	for d := range st.Learned {
		c := g.Coord(int(pt), d)
		if st.Learned[d] >= 0 {
			if c != st.Learned[d] {
				return false
			}
		} else if c <= st.Lower[d] {
			return false
		}
	}
	return true
}

package discovery

import (
	"testing"

	"repro/internal/testutil"
)

func TestOutcomeAddAndSubOpt(t *testing.T) {
	o := &Outcome{}
	o.Add(Step{Cost: 10})
	o.Add(Step{Cost: 5})
	if o.TotalCost != 15 {
		t.Fatalf("TotalCost = %v", o.TotalCost)
	}
	if o.SubOpt(5) != 3 {
		t.Fatalf("SubOpt = %v, want 3", o.SubOpt(5))
	}
	if o.SubOpt(0) != 0 {
		t.Fatal("SubOpt with zero opt should be 0")
	}
	if len(o.Steps) != 2 {
		t.Fatal("steps not recorded")
	}
}

func TestStateBasics(t *testing.T) {
	st := NewState(3)
	if st.Remaining() != 3 || st.RemMask() != 0b111 {
		t.Fatal("fresh state wrong")
	}
	st.Learn(1, 4)
	if st.Remaining() != 2 || st.RemMask() != 0b101 {
		t.Fatalf("after learn: rem=%d mask=%b", st.Remaining(), st.RemMask())
	}
	dims := st.RemainingDims()
	if len(dims) != 2 || dims[0] != 0 || dims[1] != 2 {
		t.Fatalf("RemainingDims = %v", dims)
	}
	st.Raise(0, 3)
	st.Raise(0, 2) // lower raise is a no-op
	if st.Lower[0] != 3 {
		t.Fatalf("Lower[0] = %d", st.Lower[0])
	}
}

func TestStateLearnTwicePanics(t *testing.T) {
	st := NewState(2)
	st.Learn(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("double learn should panic")
		}
	}()
	st.Learn(0, 2)
}

func TestStateCompatible(t *testing.T) {
	s := testutil.Space2D(t, 8)
	g := s.Grid
	st := NewState(2)
	st.Learn(0, 3)
	st.Raise(1, 2)

	ok := g.Linear([]int{3, 5})
	if !st.Compatible(g, int32(ok)) {
		t.Error("matching point should be compatible")
	}
	wrongLearned := g.Linear([]int{4, 5})
	if st.Compatible(g, int32(wrongLearned)) {
		t.Error("learned-dim mismatch should be incompatible")
	}
	belowLower := g.Linear([]int{3, 2})
	if st.Compatible(g, int32(belowLower)) {
		t.Error("point at/below the exclusive lower bound should be incompatible")
	}
	justAbove := g.Linear([]int{3, 3})
	if !st.Compatible(g, int32(justAbove)) {
		t.Error("first index above the bound should be compatible")
	}
}

func TestSimEngineExecFull(t *testing.T) {
	s := testutil.Space2D(t, 8)
	qa := int32(s.Grid.Linear([]int{4, 4}))
	eng := NewSimEngine(s, qa)
	if eng.QA() != qa {
		t.Fatal("QA accessor")
	}
	pid := s.PointPlan[qa]
	opt := s.PointCost[qa]
	// Generous budget: completes at actual cost.
	c, done := eng.ExecFull(pid, opt*2)
	if !done || c != opt {
		t.Fatalf("ExecFull generous = (%v,%v), want (%v,true)", c, done, opt)
	}
	// Tight budget: killed at budget.
	c, done = eng.ExecFull(pid, opt/2)
	if done || c != opt/2 {
		t.Fatalf("ExecFull tight = (%v,%v), want budget spent", c, done)
	}
}

func TestSimEngineExecSpillCompletion(t *testing.T) {
	s := testutil.Space2D(t, 8)
	qa := int32(s.Grid.Linear([]int{3, 5}))
	eng := NewSimEngine(s, qa)
	pid := s.PointPlan[qa]
	dim := s.SpillDim(pid, 0b11)
	// Huge budget: learns the exact coordinate.
	c, done, idx := eng.ExecSpill(pid, dim, s.Cmax*10)
	if !done {
		t.Fatal("huge budget spill must complete")
	}
	if idx != s.Grid.Coord(int(qa), dim) {
		t.Fatalf("learned idx %d != qa coord %d", idx, s.Grid.Coord(int(qa), dim))
	}
	if c <= 0 || c > s.Cmax*10 {
		t.Fatalf("cost %v implausible", c)
	}
}

func TestSimEngineExecSpillFailure(t *testing.T) {
	s := testutil.Space2D(t, 10)
	// qa at the terminus: tiny budgets can't complete spills.
	qa := int32(s.Grid.Terminus())
	eng := NewSimEngine(s, qa)
	pid := s.PointPlan[s.Contours[0].Points[0]] // cheapest plan
	dim := s.SpillDim(pid, 0b11)
	budget := s.Cmin
	c, done, idx := eng.ExecSpill(pid, dim, budget)
	if done {
		t.Fatal("tiny budget at terminus should not complete")
	}
	if c != budget {
		t.Fatalf("failed spill must cost the full budget, got %v", c)
	}
	if idx >= s.Grid.Res-1 {
		t.Fatal("failure cannot have learned the full range")
	}
	// Learned bound must be sound: the spill cost with dim set one step
	// above the learned index must exceed the budget.
	if idx+1 < s.Grid.Res {
		coords := s.Grid.Coords(int(qa), nil)
		coords[dim] = idx + 1
		above := int32(s.Grid.Linear(coords))
		ev := s.NewEvaluator()
		if got := ev.SpillCost(pid, above, dim); got <= budget {
			t.Fatalf("spill cost %v at idx+1 should exceed budget %v", got, budget)
		}
	}
}

package discovery

import "repro/internal/ess"

// NoisyEngine simulates an engine whose true execution costs deviate
// from the cost model by a bounded multiplicative error — the δ-factor
// setting of the paper's deployment discussion (§7). With modeling
// errors within (1±δ) and kill limits inflated by (1+δ) (how a
// deployment compensates for known model slack), the MSO guarantees
// carry through inflated by ≈ (1+δ)².
type NoisyEngine struct {
	s     *ess.Space
	qa    int32
	ev    *ess.Evaluator
	delta float64
	seed  uint64
}

// NewNoisyEngine creates an engine for true location qa with relative
// cost error bounded by delta (0 ≤ delta < 1). The error is a
// deterministic function of (seed, plan), so runs are reproducible.
func NewNoisyEngine(s *ess.Space, qa int32, delta float64, seed uint64) *NoisyEngine {
	if delta < 0 || delta >= 1 {
		panic("discovery: delta must be in [0, 1)")
	}
	return &NoisyEngine{s: s, qa: qa, ev: s.NewEvaluator(), delta: delta, seed: seed}
}

// factor returns the deterministic per-plan cost error in [1−δ, 1+δ].
func (e *NoisyEngine) factor(planID int32) float64 {
	x := e.seed ^ (uint64(planID)+1)*0x9e3779b97f4a7c15
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	u := float64(x>>11) / float64(1<<53) // [0,1)
	return 1 - e.delta + 2*e.delta*u
}

// TrueOptCost returns the noisy engine's actual cost of the optimal plan
// at the true location — the denominator a fair sub-optimality
// computation should use.
func (e *NoisyEngine) TrueOptCost() float64 {
	pid := e.s.PointPlan[e.qa]
	return e.s.PointCost[e.qa] * e.factor(pid)
}

// ExecFull implements Engine: the plan's true cost is its modeled cost
// scaled by the plan's error factor; the kill limit is (1+δ)·budget.
func (e *NoisyEngine) ExecFull(planID int32, budget float64) (float64, bool) {
	trueCost := e.ev.PlanCost(planID, e.qa) * e.factor(planID)
	limit := budget * (1 + e.delta)
	if trueCost <= limit {
		return trueCost, true
	}
	return limit, false
}

// ExecSpill implements Engine. Completion follows the noisy cost
// against the inflated limit; Lemma 3.1's guarantee survives because a
// subtree whose modeled cost fits the raw budget has true cost at most
// (1+δ)·budget = the limit. On failure, the learning bound is derived
// from the raw budget: true cost above the limit implies modeled cost
// above the budget, so the model's crossing index stays a sound
// exclusive lower bound.
func (e *NoisyEngine) ExecSpill(planID int32, dim int, budget float64) (float64, bool, int) {
	trueCost := e.ev.SpillCost(planID, e.qa, dim) * e.factor(planID)
	limit := budget * (1 + e.delta)
	if trueCost <= limit {
		return trueCost, true, e.s.Grid.Coord(int(e.qa), dim)
	}
	learned := e.ev.MaxSelIndexWithin(planID, e.qa, dim, budget)
	return limit, false, learned
}

var _ Engine = (*NoisyEngine)(nil)

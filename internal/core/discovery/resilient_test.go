package discovery

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// flakyEngine fails its first n ExecFull attempts with a transient
// fault, then succeeds; every attempt bills attemptCost.
type flakyEngine struct {
	failures    int
	attemptCost float64
	attempts    int
}

func (e *flakyEngine) ExecFull(planID int32, budget float64) (float64, bool, error) {
	e.attempts++
	if e.attempts <= e.failures {
		return e.attemptCost, false, &faultinject.Fault{
			Site: faultinject.SiteEngineFull, Class: faultinject.Transient,
			Seq: uint64(e.attempts),
		}
	}
	return e.attemptCost, true, nil
}

func (e *flakyEngine) ExecSpill(planID int32, dim int, budget float64) (float64, bool, int, error) {
	c, done, err := e.ExecFull(planID, budget)
	return c, done, -1, err
}

// The backoff schedule must double from the base, cap at the ceiling,
// carry at most one full period of jitter, and — fed the same seeded
// jitter source — reproduce bit for bit.
func TestBackoffScheduleExponentialCappedDeterministic(t *testing.T) {
	policy := RetryPolicy{MaxRetries: 6, BackoffBase: 100 * time.Microsecond, BackoffCap: 800 * time.Microsecond}
	schedule := func(seed uint64) []time.Duration {
		in := faultinject.NewUniform(seed, 0.5)
		r := NewResilient(&flakyEngine{}, policy).WithJitter(in.Jitter)
		ds := make([]time.Duration, policy.MaxRetries)
		for try := range ds {
			ds[try] = r.backoffDelay(try)
		}
		return ds
	}
	got := schedule(42)
	for try, d := range got {
		raw := policy.BackoffBase << uint(try)
		if raw > policy.BackoffCap {
			raw = policy.BackoffCap
		}
		if d < raw || d >= 2*raw {
			t.Fatalf("try %d: delay %v outside [%v, %v)", try, d, raw, 2*raw)
		}
	}
	if got[3] != got[4] && got[3] < policy.BackoffCap {
		t.Fatalf("cap not reached by try 3: %v", got)
	}
	if again := schedule(42); !reflect.DeepEqual(again, got) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", got, again)
	}

	jitterless := NewResilient(&flakyEngine{}, policy)
	for try := 0; try < policy.MaxRetries; try++ {
		raw := policy.BackoffBase << uint(try)
		if raw > policy.BackoffCap {
			raw = policy.BackoffCap
		}
		if d := jitterless.backoffDelay(try); d != raw {
			t.Fatalf("jitter-free try %d: delay %v, want %v", try, d, raw)
		}
	}
}

// A transient-fault burst must be retried through the backoff schedule
// with every wasted attempt billed, and the whole episode must be
// deterministic: same policy, same flake pattern, same ledger.
func TestResilientRetriesTransientWithBilledBackoff(t *testing.T) {
	policy := RetryPolicy{MaxRetries: 3, BackoffBase: time.Microsecond, BackoffCap: 4 * time.Microsecond}
	run := func() ([]Degradation, int, float64, float64, bool) {
		eng := &flakyEngine{failures: 2, attemptCost: 5}
		r := NewResilient(eng, policy).WithJitter(faultinject.NewUniform(7, 0.5).Jitter)
		cost, done := r.ExecFull(1, 100)
		degs, retries, wasted := r.Take()
		return degs, retries, wasted, cost, done
	}
	degs, retries, wasted, cost, done := run()
	if !done {
		t.Fatal("transient burst under MaxRetries must end in success")
	}
	if cost != 15 {
		t.Fatalf("total cost %v, want 15 (two failed + one clean attempt)", cost)
	}
	if retries != 2 || wasted != 10 {
		t.Fatalf("retries=%d wasted=%v, want 2 and 10", retries, wasted)
	}
	if len(degs) != 2 || degs[0].Kind != "retry" || degs[1].Kind != "retry" {
		t.Fatalf("degradations %+v, want two retry records", degs)
	}
	degs2, retries2, wasted2, cost2, done2 := run()
	if !reflect.DeepEqual(degs2, degs) || retries2 != retries || wasted2 != wasted ||
		cost2 != cost || done2 != done {
		t.Fatal("identical seeds produced diverging retry episodes")
	}

	// One more failure than the budget: give up with a learning-free
	// kill and the exec-abandoned degradation.
	eng := &flakyEngine{failures: policy.MaxRetries + 1, attemptCost: 5}
	r := NewResilient(eng, policy)
	cost, done = r.ExecFull(1, 100)
	degs, retries, wasted = r.Take()
	if done {
		t.Fatal("exhausted retries must not report completion")
	}
	if cost != 20 || wasted != 20 || retries != policy.MaxRetries {
		t.Fatalf("give-up ledger cost=%v wasted=%v retries=%d, want 20/20/%d",
			cost, wasted, retries, policy.MaxRetries)
	}
	if last := degs[len(degs)-1]; last.Kind != "exec-abandoned" {
		t.Fatalf("give-up degradation %+v, want exec-abandoned", last)
	}
}

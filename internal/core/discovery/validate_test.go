package discovery

import (
	"strings"
	"testing"
)

func TestValidateDegradations(t *testing.T) {
	ledger := func(degs ...Degradation) *Outcome {
		return &Outcome{Degradations: degs}
	}
	cases := []struct {
		name    string
		out     *Outcome
		aborted bool
		wantErr string // substring; empty means valid
	}{
		{"nil-clean", nil, false, ""},
		{"nil-aborted", nil, true, "no outcome"},
		{"empty-clean", ledger(), false, ""},
		{"ordered-retries", ledger(
			Degradation{Kind: "retry", Exec: 1},
			Degradation{Kind: "retry", Exec: 1},
			Degradation{Kind: "exec-abandoned", Exec: 1},
			Degradation{Kind: "lost-observation", Exec: 3},
		), false, ""},
		{"exec-ordinal-inversion", ledger(
			Degradation{Kind: "retry", Exec: 4},
			Degradation{Kind: "retry", Exec: 2},
		), false, "precedes"},
		{"aborted-with-stamp", ledger(
			Degradation{Kind: "retry", Exec: 2},
			Degradation{Kind: "exec-abandoned"}, // Exec 0: the run-level stamp
		), true, ""},
		{"aborted-missing-stamp", ledger(
			Degradation{Kind: "retry", Exec: 2},
		), true, "want 1"},
		{"clean-with-spurious-stamp", ledger(
			Degradation{Kind: "exec-abandoned"},
		), false, "want 0"},
		{"aborted-double-stamp", ledger(
			Degradation{Kind: "exec-abandoned"},
			Degradation{Kind: "exec-abandoned"},
		), true, "want 1"},
		{"alignment-fallback-exempt", ledger(
			Degradation{Kind: "alignment-fallback"},
			Degradation{Kind: "retry", Exec: 1},
		), false, ""},
		{"retry-without-ordinal", ledger(
			Degradation{Kind: "retry"},
		), false, "no execution ordinal"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateDegradations(tc.out, tc.aborted)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid ledger rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

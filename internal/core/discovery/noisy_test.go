package discovery

import (
	"testing"

	"repro/internal/testutil"
)

func TestNoisyEngineDeltaValidation(t *testing.T) {
	s := testutil.Space2D(t, 8)
	for _, bad := range []float64{-0.1, 1.0, 2.0} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("delta %v should panic", bad)
				}
			}()
			NewNoisyEngine(s, 0, bad, 1)
		}()
	}
}

func TestNoisyFactorBounded(t *testing.T) {
	s := testutil.Space2D(t, 8)
	e := NewNoisyEngine(s, 0, 0.3, 42)
	for pid := int32(0); pid < 100; pid++ {
		f := e.factor(pid)
		if f < 0.7-1e-12 || f > 1.3+1e-12 {
			t.Fatalf("factor(%d) = %v outside [0.7, 1.3]", pid, f)
		}
	}
	// Deterministic across instances with the same seed.
	e2 := NewNoisyEngine(s, 0, 0.3, 42)
	if e.factor(7) != e2.factor(7) {
		t.Fatal("factor must be deterministic per seed")
	}
	// Different seeds perturb differently.
	e3 := NewNoisyEngine(s, 0, 0.3, 43)
	same := true
	for pid := int32(0); pid < 20; pid++ {
		if e.factor(pid) != e3.factor(pid) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should change factors")
	}
}

func TestNoisyZeroDeltaMatchesSim(t *testing.T) {
	s := testutil.Space2D(t, 10)
	qa := int32(s.Grid.Linear([]int{5, 5}))
	noisy := NewNoisyEngine(s, qa, 0, 1)
	sim := NewSimEngine(s, qa)
	pid := s.PointPlan[qa]
	budget := s.PointCost[qa] * 1.5
	nc, nd := noisy.ExecFull(pid, budget)
	sc, sd := sim.ExecFull(pid, budget)
	if nc != sc || nd != sd {
		t.Fatalf("δ=0 ExecFull diverges: (%v,%v) vs (%v,%v)", nc, nd, sc, sd)
	}
	dim := s.SpillDim(pid, 0b11)
	nc2, nd2, nl := noisy.ExecSpill(pid, dim, budget)
	sc2, sd2, sl := sim.ExecSpill(pid, dim, budget)
	if nc2 != sc2 || nd2 != sd2 || nl != sl {
		t.Fatalf("δ=0 ExecSpill diverges")
	}
}

func TestNoisyLearningBoundsSound(t *testing.T) {
	s := testutil.Space2D(t, 12)
	qa := int32(s.Grid.Terminus())
	e := NewNoisyEngine(s, qa, 0.3, 9)
	pid := s.PointPlan[s.Grid.Origin()]
	dim := s.SpillDim(pid, 0b11)
	cost, done, learned := e.ExecSpill(pid, dim, s.Cmin)
	if done {
		t.Skip("tiny budget happened to complete under noise")
	}
	if cost != s.Cmin*1.3 {
		t.Errorf("killed noisy spill should cost the inflated limit, got %v", cost)
	}
	if learned >= s.Grid.Coord(int(qa), dim) {
		t.Fatalf("noisy bound %d not strictly below truth %d", learned, s.Grid.Coord(int(qa), dim))
	}
}

func TestTrueOptCostWithinDelta(t *testing.T) {
	s := testutil.Space2D(t, 10)
	qa := int32(s.Grid.Linear([]int{4, 7}))
	e := NewNoisyEngine(s, qa, 0.25, 3)
	opt := s.PointCost[qa]
	got := e.TrueOptCost()
	if got < opt*0.75-1e-9 || got > opt*1.25+1e-9 {
		t.Fatalf("TrueOptCost %v outside (1±δ)·%v", got, opt)
	}
}

package discovery

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/faultinject"
)

// ErrObservationLost reports a spill-mode execution that completed but
// whose run-time selectivity observation was dropped before the driver
// could read it. It is not transient: the engine already did the work
// once and lost the sample deterministically; the sound fallback is to
// learn nothing and let later contours re-derive the selectivity.
var ErrObservationLost = errors.New("discovery: spill observation lost")

// FallibleEngine is an Engine whose executions can fail with engine
// faults (storage errors, operator panics, lost observations, client
// cancellations) in addition to clean budget kills. On error the cost
// return must still report the work consumed by the failed attempt —
// wasted work is billable — and learnedIdx must be the soundest bound
// available (-1 when the fault revealed nothing).
type FallibleEngine interface {
	ExecFull(planID int32, budget float64) (costIncurred float64, completed bool, err error)
	ExecSpill(planID int32, dim int, budget float64) (costIncurred float64, completed bool, learnedIdx int, err error)
}

// RetryPolicy caps the resilient driver's retries of transient faults.
type RetryPolicy struct {
	// MaxRetries bounds re-executions after the first attempt.
	MaxRetries int
	// BackoffBase is the first retry's backoff delay; each further retry
	// doubles it up to BackoffCap.
	BackoffBase time.Duration
	// BackoffCap caps the exponential backoff delay.
	BackoffCap time.Duration
}

// DefaultRetryPolicy mirrors the executor's policy constants at the
// discovery layer.
var DefaultRetryPolicy = RetryPolicy{
	MaxRetries:  3,
	BackoffBase: 200 * time.Microsecond,
	BackoffCap:  2 * time.Millisecond,
}

// Resilient adapts a FallibleEngine to the infallible Engine interface
// the discovery algorithms drive: transient faults are retried with
// capped exponential backoff and (deterministic) jitter, persistent
// faults and exhausted retries degrade to a learning-free kill, and
// every wasted cost unit is summed into the cost the algorithm charges
// — so the MSO/ASO ledger pays the true price of robustness.
type Resilient struct {
	eng    FallibleEngine
	policy RetryPolicy
	jitter func(attempt int) float64
	ctx    context.Context

	mu      sync.Mutex
	degs    []Degradation
	retries int
	wasted  float64
	execs   int
	abort   error
}

// NewResilient wraps the engine with the retry policy.
func NewResilient(eng FallibleEngine, policy RetryPolicy) *Resilient {
	return &Resilient{eng: eng, policy: policy}
}

// WithJitter installs a backoff jitter source in [0, 1) (for example
// faultinject.Injector.Jitter, keeping chaos runs fully deterministic)
// and returns the engine for chaining. Without one, backoff is
// jitter-free.
func (r *Resilient) WithJitter(f func(attempt int) float64) *Resilient {
	r.jitter = f
	return r
}

// WithContext bounds the run by the context: attempts are refused once
// it is done, backoff sleeps are interrupted by it, and engine errors
// wrapping a context error become run-level aborts instead of per-exec
// degradations. Returns the engine for chaining.
func (r *Resilient) WithContext(ctx context.Context) *Resilient {
	r.ctx = ctx
	return r
}

// Aborted implements Aborter: it returns the sticky run-level abort,
// live-checking the context so an expired deadline is visible before
// the next execution starts.
func (r *Resilient) Aborted() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.abort == nil && r.ctx != nil {
		if err := r.ctx.Err(); err != nil {
			r.abort = &AbortError{Err: err}
		}
	}
	return r.abort
}

// ExecFull implements Engine with retries; on give-up the execution is
// reported as a kill (completed=false), which every algorithm treats
// soundly as "try the next plan / contour".
func (r *Resilient) ExecFull(planID int32, budget float64) (float64, bool) {
	exec := r.nextExec()
	total := 0.0
	for try := 0; ; try++ {
		if r.Aborted() != nil {
			return total, false
		}
		c, done, err := r.eng.ExecFull(planID, budget)
		total += c
		if err == nil {
			return total, done
		}
		if !r.onFault(exec, try, c, err) {
			return total, false
		}
	}
}

// ExecSpill implements Engine with retries; on give-up the soundest
// bound from the last attempt is reported (usually -1: nothing new
// learned) with completed=false.
func (r *Resilient) ExecSpill(planID int32, dim int, budget float64) (float64, bool, int) {
	exec := r.nextExec()
	total := 0.0
	for try := 0; ; try++ {
		if r.Aborted() != nil {
			return total, false, -1
		}
		c, done, idx, err := r.eng.ExecSpill(planID, dim, budget)
		total += c
		if err == nil {
			return total, done, idx
		}
		if !r.onFault(exec, try, c, err) {
			return total, false, idx
		}
	}
}

// nextExec advances the execution ordinal used in degradation records.
func (r *Resilient) nextExec() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.execs++
	return r.execs
}

// onFault accounts a failed attempt and reports whether to retry. A
// context-caused failure is not an engine fault: it becomes the sticky
// run-level abort (the partial cost still billed as wasted), with no
// per-exec degradation record — the run driver stamps one
// "exec-abandoned" entry for the abort as a whole.
func (r *Resilient) onFault(exec, try int, cost float64, err error) bool {
	if aerr := AbortCause(err); aerr != nil {
		r.mu.Lock()
		r.wasted += cost
		if r.abort == nil {
			r.abort = aerr
		}
		r.mu.Unlock()
		return false
	}
	r.mu.Lock()
	r.wasted += cost
	retry := faultinject.IsTransient(err) && try < r.policy.MaxRetries
	kind := "retry"
	if !retry {
		kind = giveUpKind(err)
	}
	r.degs = append(r.degs, Degradation{
		Kind: kind, Exec: exec, Detail: err.Error(), WastedCost: cost,
	})
	if retry {
		r.retries++
	}
	r.mu.Unlock()
	if retry {
		r.backoff(try)
	}
	return retry
}

// giveUpKind labels the degradation taken when an execution is
// abandoned.
func giveUpKind(err error) string {
	var f *faultinject.Fault
	if errors.As(err, &f) && f.Site == faultinject.SiteSpillObs {
		return "lost-observation"
	}
	if errors.Is(err, ErrObservationLost) {
		return "lost-observation"
	}
	return "exec-abandoned"
}

// backoffDelay computes the attempt's backoff: capped exponential plus
// up to one full period of jitter — a pure function of the policy and
// the jitter source, so a seeded chaos run's retry schedule is exactly
// reproducible.
func (r *Resilient) backoffDelay(try int) time.Duration {
	d := r.policy.BackoffBase << uint(try)
	if d > r.policy.BackoffCap {
		d = r.policy.BackoffCap
	}
	if d <= 0 {
		return 0
	}
	if r.jitter != nil {
		d += time.Duration(float64(d) * r.jitter(try))
	}
	return d
}

// backoff sleeps the capped exponential delay for the attempt,
// interruptibly: a context that expires mid-backoff wakes the sleeper
// immediately, and the abort is picked up by the next attempt's
// pre-check — a retry schedule can never outlive its request.
func (r *Resilient) backoff(try int) {
	d := r.backoffDelay(try)
	if d <= 0 {
		return
	}
	if r.ctx == nil {
		time.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-r.ctx.Done():
	case <-t.C:
	}
}

// Take returns the degradations, retry count, and wasted cost recorded
// since the last Take, clearing them — the discovery driver attaches
// them to the run's Outcome.
func (r *Resilient) Take() (degs []Degradation, retries int, wasted float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	degs, retries, wasted = r.degs, r.retries, r.wasted
	r.degs, r.retries, r.wasted, r.execs = nil, 0, 0, 0
	return degs, retries, wasted
}

var _ Engine = (*Resilient)(nil)

// ValidateDegradations checks the structural invariants every
// degradation ledger must satisfy, regardless of strategy or fault
// schedule:
//
//   - per-execution entries (Exec > 0) appear in non-decreasing
//     execution order — the resilient driver appends them as executions
//     happen, so an inversion means records were reordered or invented;
//   - exactly one run-level "exec-abandoned" stamp (Exec == 0) exists
//     when the run was aborted, and none otherwise — the abort is
//     recorded once for the run as a whole, never per retry attempt;
//   - the only other run-level entry is "alignment-fallback" (the
//     AlignedBound→SpillBound handover, not tied to any execution);
//     "retry" and "lost-observation" are meaningless without one.
//
// Chaos suites run every strategy's outcome through this check so a
// bookkeeping regression fails loudly instead of skewing bake-off
// ledgers.
func ValidateDegradations(out *Outcome, aborted bool) error {
	if out == nil {
		if aborted {
			return errors.New("discovery: aborted run has no outcome to carry the exec-abandoned stamp")
		}
		return nil
	}
	lastExec := 0
	stamps := 0
	for i, d := range out.Degradations {
		switch {
		case d.Exec > 0:
			if d.Exec < lastExec {
				return fmt.Errorf("discovery: degradation %d (%s) exec ordinal %d precedes %d",
					i, d.Kind, d.Exec, lastExec)
			}
			lastExec = d.Exec
		case d.Kind == "exec-abandoned":
			stamps++
		case d.Kind == "alignment-fallback":
			// Run-level by design; exempt from the ordinal rule.
		default:
			return fmt.Errorf("discovery: degradation %d kind %q has no execution ordinal", i, d.Kind)
		}
	}
	want := 0
	if aborted {
		want = 1
	}
	if stamps != want {
		return fmt.Errorf("discovery: %d run-level exec-abandoned stamp(s), want %d (aborted=%v)",
			stamps, want, aborted)
	}
	return nil
}

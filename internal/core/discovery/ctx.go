package discovery

import (
	"context"
	"errors"
	"sync"
)

// AbortError reports a discovery run cut short as a whole — by a
// context deadline, a client cancellation, or a server drain — rather
// than by a single failed execution. It wraps the cause, so
// errors.Is(err, context.DeadlineExceeded) and friends work through it.
// Runs that abort still return their partial Outcome: every cost unit
// consumed before the abort stays on the ledger.
type AbortError struct {
	// Err is the underlying cause (typically a context error).
	Err error
}

// Error implements error.
func (e *AbortError) Error() string { return "discovery: run aborted: " + e.Err.Error() }

// Unwrap exposes the cause for errors.Is/As chains.
func (e *AbortError) Unwrap() error { return e.Err }

// AbortCause classifies err as a run-level abort: it returns the
// *AbortError if err is (or wraps) one, promotes bare context errors to
// aborts, and returns nil for everything else.
func AbortCause(err error) *AbortError {
	if err == nil {
		return nil
	}
	var a *AbortError
	if errors.As(err, &a) {
		return a
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return &AbortError{Err: err}
	}
	return nil
}

// Aborter is implemented by engines that can abort a run as a whole
// (context-guarded engines and the resilient driver). The algorithms
// poll it before every budgeted execution, so an expired deadline stops
// the run at the next execution boundary instead of grinding through
// the remaining contours with no-op kills.
type Aborter interface {
	// Aborted returns the sticky run-level abort, or nil while the run
	// may continue.
	Aborted() error
}

// AbortOf returns the engine's run-level abort if the engine exposes
// one (nil otherwise). Engines without context support never abort, so
// the algorithms behave exactly as before when driven by plain engines.
func AbortOf(eng Engine) error {
	if a, ok := eng.(Aborter); ok {
		return a.Aborted()
	}
	return nil
}

// Guard enforces a context on an infallible Engine: once the context is
// done, executions are refused without touching the engine (reported as
// zero-cost kills) and Aborted returns the typed abort. The algorithms'
// pre-execution abort polls mean a guarded run stops cleanly with a
// partial outcome; the guard's own check only matters for the race
// where the context dies between the poll and the execution.
type Guard struct {
	ctx context.Context
	eng Engine

	mu    sync.Mutex
	abort error
}

// NewGuard wraps the engine with the context.
func NewGuard(ctx context.Context, eng Engine) *Guard {
	return &Guard{ctx: ctx, eng: eng}
}

// Aborted implements Aborter, live-checking the context so aborts are
// visible the moment the deadline expires, and deferring to the wrapped
// engine's own abort state (e.g. a Latent whose sleep was interrupted).
func (g *Guard) Aborted() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.abort == nil {
		if err := g.ctx.Err(); err != nil {
			g.abort = &AbortError{Err: err}
		}
	}
	if g.abort != nil {
		return g.abort
	}
	return AbortOf(g.eng)
}

// ExecFull implements Engine; once aborted it reports a zero-cost kill.
func (g *Guard) ExecFull(planID int32, budget float64) (float64, bool) {
	if g.Aborted() != nil {
		return 0, false
	}
	return g.eng.ExecFull(planID, budget)
}

// ExecSpill implements Engine; once aborted it reports a zero-cost,
// learning-free kill.
func (g *Guard) ExecSpill(planID int32, dim int, budget float64) (float64, bool, int) {
	if g.Aborted() != nil {
		return 0, false, -1
	}
	return g.eng.ExecSpill(planID, dim, budget)
}

var _ Engine = (*Guard)(nil)

package discovery

import "repro/internal/ess"

// SimEngine is the cost-model-driven execution oracle: the true query
// location is a grid point, and budgeted executions succeed exactly when
// the cost model says the work fits the budget. Because the executor
// charges the same constants as the cost model, this is a faithful
// simulation of the engine under the paper's perfect-cost-model
// assumption (δ = 0 in §7).
type SimEngine struct {
	src ess.ContourSource
	qa  int32
	ev  *ess.Evaluator
}

// NewSimEngine returns an engine for the true location qa (linear grid
// index). Engines are not safe for concurrent use; create one per
// goroutine.
func NewSimEngine(src ess.ContourSource, qa int32) *SimEngine {
	return &SimEngine{src: src, qa: qa, ev: src.NewEvaluator()}
}

// QA returns the true location the engine simulates.
func (e *SimEngine) QA() int32 { return e.qa }

// ExecFull implements Engine: the plan completes iff its cost at qa is
// within budget.
func (e *SimEngine) ExecFull(planID int32, budget float64) (float64, bool) {
	c := e.ev.PlanCost(planID, e.qa)
	if c <= budget {
		return c, true
	}
	return budget, false
}

// ExecSpill implements Engine. The spill subtree's cost depends only on
// the spilled dimension and already-learned upstream selectivities (the
// spill-node identification invariant), so evaluating along the grid
// line through qa is exact.
func (e *SimEngine) ExecSpill(planID int32, dim int, budget float64) (float64, bool, int) {
	sc := e.ev.SpillCost(planID, e.qa, dim)
	if sc <= budget {
		return sc, true, e.src.Geometry().Coord(int(e.qa), dim)
	}
	learned := e.ev.MaxSelIndexWithin(planID, e.qa, dim, budget)
	return budget, false, learned
}

package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core/discovery"
)

func okey(qa int) OutcomeKey {
	return OutcomeKey{
		SigHash: 0xfeed, Workload: "EQ", Strategy: "spillbound",
		QA: qa, ExecWorkers: 4, Lambda: 0.2,
	}
}

func oval(body string) *CachedOutcome {
	return &CachedOutcome{
		Outcome: &discovery.Outcome{Completed: true, TotalCost: 1},
		Body:    []byte(body),
	}
}

// mustPut inserts past the doorkeeper: the first offer of a new key is
// recorded and rejected, the second admitted.
func mustPut(t *testing.T, c *OutcomeCache, k OutcomeKey, v *CachedOutcome) int {
	t.Helper()
	if _, admitted := c.Put(k, v); admitted {
		return 0
	}
	evicted, admitted := c.Put(k, v)
	if !admitted {
		t.Fatalf("second offer of %+v was not admitted", k)
	}
	return evicted
}

// Every field of the key must separate hashes: a field the hash
// ignored would let two different executions alias one cache slot.
func TestOutcomeKeyHashCoversEveryField(t *testing.T) {
	base := OutcomeKey{
		SigHash: 1, Workload: "EQ", Strategy: "spillbound",
		QA: 3, ExecWorkers: 2, FaultSeed: 7, FaultRate: 0.1,
		Lambda: 0.2, Epoch: 5,
	}
	variants := []OutcomeKey{base, base, base, base, base, base, base, base, base}
	variants[0].SigHash = 2
	variants[1].Workload = "2D_Q91"
	variants[2].Strategy = "parqo"
	variants[3].QA = 4
	variants[4].ExecWorkers = 8
	variants[5].FaultSeed = 8
	variants[6].FaultRate = 0.2
	variants[7].Lambda = 0.3
	variants[8].Epoch = 6
	seen := map[uint64]int{base.Hash(): -1}
	for i, v := range variants {
		h := v.Hash()
		if prev, dup := seen[h]; dup {
			t.Fatalf("field variant %d collides with variant %d", i, prev)
		}
		seen[h] = i
	}
	if base.Hash() != base.Hash() {
		t.Fatal("Hash is not deterministic")
	}
}

func TestOutcomeCacheHitMissEvictLRU(t *testing.T) {
	c := NewOutcomeCache(1 << 12)
	if _, ok := c.Get(okey(0)); ok {
		t.Fatal("hit on empty cache")
	}
	v0, v1, v2 := oval("zero"), oval("one"), oval("two")
	mustPut(t, c, okey(0), v0)
	mustPut(t, c, okey(1), v1)
	mustPut(t, c, okey(2), v2)
	for i, want := range []*CachedOutcome{v0, v1, v2} {
		if got, ok := c.Get(okey(i)); !ok || got != want {
			t.Fatalf("entry %d lost or wrong value", i)
		}
	}
	if !c.Evict(okey(1)) {
		t.Fatal("Evict missed a present entry")
	}
	if c.Evict(okey(1)) {
		t.Fatal("Evict reported success on an absent entry")
	}
	if _, ok := c.Get(okey(1)); ok {
		t.Fatal("evicted entry still served")
	}
	st := c.Stats()
	if st.Inserts != 3 || st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Hits != 3 || st.Misses != 2 {
		t.Fatalf("hit/miss counters = %+v", st)
	}
}

// The budget evicts in LRU order and never the entry just inserted,
// even when that entry alone exceeds the whole budget.
func TestOutcomeCacheBudgetAndNewestSurvives(t *testing.T) {
	small := oval("x")
	per := EstimateOutcomeBytes(small)
	c := NewOutcomeCache(3 * per)
	for i := 0; i < 3; i++ {
		mustPut(t, c, okey(i), oval("x"))
	}
	// Touch 0 so 1 is LRU; the fourth insert must evict 1.
	c.Get(okey(0))
	mustPut(t, c, okey(3), oval("x"))
	if _, ok := c.Get(okey(1)); ok {
		t.Fatal("LRU entry survived a budget eviction")
	}
	if _, ok := c.Get(okey(0)); !ok {
		t.Fatal("recently used entry was evicted")
	}
	huge := oval(string(make([]byte, 16*per)))
	mustPut(t, c, okey(9), huge)
	if got, ok := c.Get(okey(9)); !ok || got != huge {
		t.Fatal("oversized newest entry must be retained")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after oversized insert, want 1", c.Len())
	}
}

// A forged hash collision must read as a miss, never as a wrong-key
// hit: full-key equality is the correctness guard over the 64-bit
// hash.
func TestOutcomeCacheCollisionIsMiss(t *testing.T) {
	a := okey(1)
	b := a
	b.Workload = "impostor"
	c := NewOutcomeCache(1 << 12)
	mustPut(t, c, a, oval("real"))
	// Force b into a's slot by inserting under a's hash: simulate by
	// checking that a lookup with a different key whose hash happens to
	// differ is simply a miss, and that replacing under the same key
	// updates in place.
	if _, ok := c.Get(b); ok {
		t.Fatal("different key must not hit")
	}
	v2 := oval("replacement")
	c.Put(a, v2)
	if got, _ := c.Get(a); got != v2 {
		t.Fatal("same-key Put must replace the value")
	}
	if c.Len() != 1 {
		t.Fatalf("replacement grew the cache to %d entries", c.Len())
	}
}

func TestEstimateOutcomeBytesMonotone(t *testing.T) {
	if EstimateOutcomeBytes(nil) != 0 {
		t.Fatal("nil estimate must be zero")
	}
	small := &CachedOutcome{Body: []byte("{}"), Outcome: &discovery.Outcome{}}
	big := &CachedOutcome{
		Body: make([]byte, 4096),
		Outcome: &discovery.Outcome{
			Steps: make([]discovery.Step, 32),
			Degradations: []discovery.Degradation{
				{Kind: "retry", Detail: "transient fault at exec 3"},
			},
		},
	}
	s, b := EstimateOutcomeBytes(small), EstimateOutcomeBytes(big)
	if s <= 0 || b <= s {
		t.Fatalf("estimates not monotone: small=%d big=%d", s, b)
	}
	bodyOnly := &CachedOutcome{Body: make([]byte, 4096)}
	if EstimateOutcomeBytes(bodyOnly) >= b {
		t.Fatal("trace bytes must count toward the estimate")
	}
}

func TestOutcomeCacheConcurrent(t *testing.T) {
	c := NewOutcomeCache(1 << 14)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := okey(i % 16)
				if v, ok := c.Get(k); ok {
					if string(v.Body) != fmt.Sprintf("body-%d", k.QA) {
						t.Errorf("wrong body for qa %d: %q", k.QA, v.Body)
						return
					}
				} else {
					c.Put(k, oval(fmt.Sprintf("body-%d", k.QA)))
				}
			}
		}(g)
	}
	wg.Wait()
}

// The doorkeeper admits a key only on its second miss: an all-miss
// stream of never-repeating keys must retain nothing.
func TestOutcomeCacheDoorkeeper(t *testing.T) {
	c := NewOutcomeCache(1 << 20)
	if _, admitted := c.Put(okey(1), oval("x")); admitted {
		t.Fatal("first offer of a new key must be rejected")
	}
	if c.Len() != 0 {
		t.Fatal("rejected offer left an entry behind")
	}
	if _, admitted := c.Put(okey(1), oval("x")); !admitted {
		t.Fatal("second offer must be admitted")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after admission, want 1", c.Len())
	}
	// A resident key is always replaced in place, no doorkeeper round.
	if _, admitted := c.Put(okey(1), oval("y")); !admitted {
		t.Fatal("replacing a resident key must be admitted")
	}
	// A pure all-unique stream never inserts.
	for i := 100; i < 600; i++ {
		if _, admitted := c.Put(okey(i), oval("z")); admitted {
			t.Fatalf("unique key %d admitted on first offer", i)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("all-unique stream grew the cache to %d entries", c.Len())
	}
}

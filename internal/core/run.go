package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core/alignedbound"
	"repro/internal/core/bouquet"
	"repro/internal/core/discovery"
	"repro/internal/core/spillbound"
	"repro/internal/faultinject"
)

// Run holds the mutable state of one discovery over a shared Compiled
// artifact: the armed fault injector (if any) and the run's penalty
// ledger. A Run is cheap to create and single-goroutine by design —
// concurrent discoveries each get their own Run, typically with their
// own forked fault substream (faultinject.Injector.Fork), and share
// everything else through the immutable Compiled.
type Run struct {
	c           *Compiled
	faults      *faultinject.Injector
	ctx         context.Context
	maxPenalty  float64
	execWorkers int
}

// NewRun creates a fresh run over the compiled artifact.
func (c *Compiled) NewRun() *Run { return &Run{c: c} }

// runPool recycles Run structs for request-rate callers. A Run is
// small, but the serving hot path creates one per admitted request —
// pooling it (with the per-request response buffers) is part of the
// zero-allocation serve path.
var runPool = sync.Pool{New: func() any { return new(Run) }}

// AcquireRun returns a pooled run over the compiled artifact,
// equivalent to NewRun. Callers that can prove the run has no
// remaining references when they finish should return it with
// ReleaseRun; callers that cannot may simply drop it.
func (c *Compiled) AcquireRun() *Run {
	r := runPool.Get().(*Run)
	*r = Run{c: c}
	return r
}

// ReleaseRun zeroes the run and returns it to the pool. The run must
// not be used after release.
func ReleaseRun(r *Run) {
	if r == nil {
		return
	}
	*r = Run{}
	runPool.Put(r)
}

// Compiled returns the artifact the run executes against.
func (r *Run) Compiled() *Compiled { return r.c }

// WithFaults arms (or with nil disarms) fault injection for this run's
// simulated discoveries and returns the run. For concurrent chaos runs
// pass each run its own substream — base.Fork(runID) — so every run's
// schedule is deterministic regardless of interleaving.
func (r *Run) WithFaults(in *faultinject.Injector) *Run {
	r.faults = in
	return r
}

// Faults returns the run's armed injector (nil when disarmed).
func (r *Run) Faults() *faultinject.Injector { return r.faults }

// WithExecWorkers sets the run's intra-query execution parallelism and
// returns the run. The knob is advisory plumbing for drivers that
// execute plans on the real vectorized engine (exec.Executor.WithWorkers);
// the cost-model simulation is unaffected — simulated discoveries
// charge modeled cost, which is worker-count invariant by the engine's
// metering contract. Values below 1 read back as 1.
func (r *Run) WithExecWorkers(n int) *Run {
	r.execWorkers = n
	return r
}

// ExecWorkers returns the run's execution parallelism (minimum 1).
func (r *Run) ExecWorkers() int {
	if r.execWorkers < 1 {
		return 1
	}
	return r.execWorkers
}

// WithContext bounds the run's discoveries by the context and returns
// the run. An expired deadline (or a cancellation) aborts the discovery
// at the next execution boundary: the algorithm stops with a typed
// *discovery.AbortError, the partial Outcome keeps every cost unit
// consumed so far, and an "exec-abandoned" degradation records the
// abort cause. A nil or background context leaves runs unbounded.
func (r *Run) WithContext(ctx context.Context) *Run {
	r.ctx = ctx
	return r
}

// Context returns the run's bounding context (nil when unbounded).
func (r *Run) Context() context.Context { return r.ctx }

// MaxPenalty returns the largest AlignedBound partition penalty π*
// observed so far by this run (1 if only aligned contours were used; 0
// if AlignedBound never ran).
func (r *Run) MaxPenalty() float64 { return r.maxPenalty }

// simStack builds the run's cost-model-simulated execution engine for
// the instance at qa: the bare sim, wrapped — when faults are armed —
// in the fault-injecting engine plus the resilient retry driver, and —
// when a context bounds the run — in the deadline guard. Every
// discovery entry point (algorithm or strategy) shares this one stack,
// so all six bake-off policies see identical plumbing.
func (r *Run) simStack(qa int32) discovery.Engine {
	sim := discovery.NewSimEngine(r.c.Source, qa)
	if in := r.faults; in != nil {
		res := discovery.NewResilient(discovery.NewFaultySim(sim, in), discovery.DefaultRetryPolicy).
			WithJitter(in.Jitter)
		if r.ctx != nil {
			res.WithContext(r.ctx)
		}
		return res
	}
	if r.ctx != nil {
		return discovery.NewGuard(r.ctx, sim)
	}
	return sim
}

// Discover runs the algorithm for the query instance whose true
// location is the grid point qa, using cost-model simulated execution.
// With faults armed (WithFaults), the simulation runs behind the
// fault-injecting engine and the resilient retry driver.
func (r *Run) Discover(alg Algorithm, qa int32) (*discovery.Outcome, error) {
	return r.DiscoverWith(alg, r.simStack(qa))
}

// DiscoverWith runs the algorithm against an arbitrary execution engine
// (e.g. the real row-level executor, typically behind
// discovery.NewResilient). When the engine is a *discovery.Resilient,
// the degradations, retries, and wasted cost it recorded during the run
// are attached to the returned Outcome.
func (r *Run) DiscoverWith(alg Algorithm, eng discovery.Engine) (*discovery.Outcome, error) {
	out, err := r.dispatch(alg, eng)
	return r.finish(out, err, eng)
}

// finish applies the run-ledger epilogue shared by every discovery
// entry point: attach the resilient driver's degradation ledger, then
// stamp a run-level abort on the partial outcome.
func (r *Run) finish(out *discovery.Outcome, err error, eng discovery.Engine) (*discovery.Outcome, error) {
	if res, ok := eng.(*discovery.Resilient); ok && out != nil {
		degs, retries, wasted := res.Take()
		out.Degradations = append(out.Degradations, degs...)
		out.Retries += retries
		out.WastedCost += wasted
	}
	// A run-level abort (deadline, cancellation, drain) is stamped once
	// on the partial outcome: the execution the run was about to issue —
	// or was retrying — was abandoned, not observed-and-lost.
	if aerr := discovery.AbortCause(err); aerr != nil && out != nil {
		out.Degradations = append(out.Degradations, discovery.Degradation{
			Kind: "exec-abandoned", Detail: aerr.Err.Error(),
		})
	}
	return out, err
}

func (r *Run) dispatch(alg Algorithm, eng discovery.Engine) (*discovery.Outcome, error) {
	switch alg {
	case PlanBouquet:
		return bouquet.Run(r.c.Source, r.c.Reduction(), eng)
	case SpillBound:
		return spillbound.Run(r.c.Source, eng)
	case AlignedBound:
		return r.runAligned(eng)
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q", alg)
	}
}

// runAligned runs AlignedBound with the planner-failure degradation:
// when the armed injector trips the alignment-planner site, or the
// planner panics during a chaos run, the discovery falls back to
// SpillBound — the algorithm AlignedBound refines — and the fallback is
// recorded on the Outcome. Fault-free runs never mask planner panics.
func (r *Run) runAligned(eng discovery.Engine) (out *discovery.Outcome, err error) {
	in := r.faults
	if ferr := in.Check(faultinject.SiteAlignPlanner); ferr != nil {
		return r.alignFallback(eng, ferr.Error())
	}
	if in != nil {
		defer func() {
			if rec := recover(); rec != nil {
				out, err = r.alignFallback(eng, fmt.Sprintf("planner panic: %v", rec))
			}
		}()
	}
	out, pen, err := alignedbound.Run(r.c.Source, r.c.planner, eng)
	if out != nil {
		out.AlignPenalty = pen
	}
	if pen > r.maxPenalty {
		r.maxPenalty = pen
	}
	return out, err
}

// alignFallback degrades an AlignedBound discovery to SpillBound,
// stamping the Outcome with the "alignment-fallback" degradation.
func (r *Run) alignFallback(eng discovery.Engine, detail string) (*discovery.Outcome, error) {
	out, err := spillbound.Run(r.c.Source, eng)
	if out != nil {
		out.Degradations = append(out.Degradations, discovery.Degradation{
			Kind: "alignment-fallback", Detail: detail,
		})
	}
	return out, err
}

// Package spillbound implements the SpillBound algorithm (§4 of the
// paper): contour-wise selectivity discovery with half-space pruning via
// spill-mode executions and contour-density-independent execution — at
// most one spill execution per remaining epp per contour pass — giving
// the platform-independent MSO guarantee D² + 3D.
package spillbound

import (
	"fmt"

	"repro/internal/core/bouquet"
	"repro/internal/core/discovery"
	"repro/internal/ess"
)

// Guarantee returns SpillBound's MSO bound D²+3D (Theorem 4.5; 10 for
// the 2-D case of Theorem 4.2).
func Guarantee(d int) float64 {
	return float64(d*d + 3*d)
}

// Run executes the SpillBound discovery (Algorithm 1) for one query
// instance through the engine.
func Run(src ess.ContourSource, eng discovery.Engine) (*discovery.Outcome, error) {
	st := discovery.NewState(src.Geometry().D)
	m := src.NumContours()
	// One spill execution per unlearned dimension per contour is the
	// common trace shape; preallocating from the geometry hint keeps
	// the hot serve path from growing the step slice execution by
	// execution.
	out := &discovery.Outcome{Steps: make([]discovery.Step, 0, m+src.Geometry().D)}

	ci := 0
	for ci < m {
		if st.Remaining() == 1 {
			// Terminal 1-D phase: hand over to PlanBouquet from the
			// present contour (§4.1), in regular execution mode.
			if err := bouquet.RunOneD(src, st, eng, ci, out); err != nil {
				return out, err
			}
			return out, nil
		}

		ic := src.ContourAt(st.Learned, ci)
		execs := ChooseSpillPlans(src, st, ic)
		progressed := false
		for _, ex := range execs {
			if aerr := discovery.AbortOf(eng); aerr != nil {
				return out, aerr
			}
			c, done, learned := eng.ExecSpill(ex.PlanID, ex.Dim, ic.Cost)
			out.Add(discovery.Step{
				Contour: ci + 1, PlanID: ex.PlanID, Dim: ex.Dim,
				Budget: ic.Cost, Cost: c, Completed: done,
				Phase: discovery.PhaseSpill, LearnedIdx: learned,
			})
			if done {
				st.Learn(ex.Dim, learned)
				progressed = true
				break // re-plan on the same contour with the updated EPP set
			}
			st.Raise(ex.Dim, learned)
		}
		if !progressed {
			ci++ // Lemma 4.3: qa lies beyond this contour
		}
	}
	return out, fmt.Errorf("spillbound: exhausted contours with %d epps unlearned (query %s)",
		st.Remaining(), src.Query().Name)
}

// SpillExec is one chosen spill-mode execution: the P^j_max plan for a
// dimension (§3.2).
type SpillExec struct {
	// Dim is the ESS dimension the execution learns.
	Dim int
	// PlanID is the pool plan to execute in spill-mode.
	PlanID int32
	// Point is the contour location the plan is optimal at (q^j_max).
	Point int32
}

// ChooseSpillPlans selects, for each remaining dimension, the plan
// providing maximal guaranteed learning along that dimension: among the
// effective contour locations whose optimal plan spills on the
// dimension, the one with the largest coordinate (§3.2). Dimensions with
// no spilling plan on the contour are skipped (§4.2).
func ChooseSpillPlans(src ess.ContourSource, st *discovery.State, ic *ess.Contour) []SpillExec {
	g := src.Geometry()
	rem := st.RemMask()
	type best struct {
		pt    int32
		coord int
	}
	bests := make(map[int]best)
	for _, pt := range ic.Points {
		if !st.Compatible(g, pt) {
			continue
		}
		pid := src.PlanAt(pt)
		dim := src.SpillDim(pid, rem)
		if dim < 0 {
			continue
		}
		c := g.Coord(int(pt), dim)
		b, ok := bests[dim]
		if !ok || c > b.coord || (c == b.coord && pt > b.pt) {
			bests[dim] = best{pt: pt, coord: c}
		}
	}
	var out []SpillExec
	for _, dim := range st.RemainingDims() {
		if b, ok := bests[dim]; ok {
			out = append(out, SpillExec{Dim: dim, PlanID: src.PlanAt(b.pt), Point: b.pt})
		}
	}
	return out
}

package spillbound

import (
	"testing"

	"repro/internal/core/discovery"
	"repro/internal/ess"
	"repro/internal/testutil"
)

func TestGuarantee(t *testing.T) {
	if Guarantee(2) != 10 {
		t.Errorf("2D guarantee = %v, want 10 (Theorem 4.2)", Guarantee(2))
	}
	if Guarantee(6) != 54 {
		t.Errorf("6D guarantee = %v, want 54", Guarantee(6))
	}
}

func runAt(t *testing.T, s *ess.Space, qa int32) *discovery.Outcome {
	t.Helper()
	out, err := Run(s, discovery.NewSimEngine(s, qa))
	if err != nil {
		t.Fatalf("SpillBound failed at qa=%d: %v", qa, err)
	}
	if !out.Completed {
		t.Fatalf("not completed at qa=%d", qa)
	}
	return out
}

func TestRunCompletesEverywhere2D(t *testing.T) {
	s := testutil.Space2D(t, 10)
	for qa := 0; qa < s.Grid.NumPoints(); qa++ {
		out := runAt(t, s, int32(qa))
		so := out.SubOpt(s.PointCost[qa])
		if so < 1-1e-9 {
			t.Fatalf("sub-optimality %v < 1 at qa=%d", so, qa)
		}
		if so > Guarantee(2)+1e-9 {
			t.Fatalf("MSO bound violated at qa=%d: %v > %v", qa, so, Guarantee(2))
		}
	}
}

func TestRunCompletesEverywhere3D(t *testing.T) {
	s := testutil.Space3D(t, 6)
	for qa := 0; qa < s.Grid.NumPoints(); qa++ {
		out := runAt(t, s, int32(qa))
		so := out.SubOpt(s.PointCost[qa])
		if so > Guarantee(3)+1e-9 {
			t.Fatalf("MSO bound violated at qa=%d: %v > %v", qa, so, Guarantee(3))
		}
	}
}

func TestRunAtOrigin(t *testing.T) {
	s := testutil.Space2D(t, 10)
	out := runAt(t, s, int32(s.Grid.Origin()))
	// Origin is the cheapest location; discovery should need few steps
	// and stay within a small multiple of Cmin.
	if out.TotalCost > 5*s.Cmin {
		t.Errorf("origin discovery cost %v too high vs Cmin %v", out.TotalCost, s.Cmin)
	}
}

func TestRunAtTerminus(t *testing.T) {
	s := testutil.Space2D(t, 10)
	out := runAt(t, s, int32(s.Grid.Terminus()))
	if out.SubOpt(s.Cmax) > Guarantee(2) {
		t.Errorf("terminus sub-opt %v exceeds guarantee", out.SubOpt(s.Cmax))
	}
}

func TestTraceStructure(t *testing.T) {
	s := testutil.Space2D(t, 10)
	qa := int32(s.Grid.Linear([]int{6, 4}))
	out := runAt(t, s, qa)

	sawOneD := false
	prevContour := 0
	for _, step := range out.Steps {
		if step.Contour < prevContour {
			t.Error("contour indexes must be non-decreasing")
		}
		prevContour = step.Contour
		switch step.Phase {
		case discovery.PhaseSpill:
			if step.Dim < 0 || step.Dim >= 2 {
				t.Errorf("spill step with dim %d", step.Dim)
			}
			if sawOneD {
				t.Error("spill step after 1-D phase began")
			}
		case discovery.PhaseOneD:
			sawOneD = true
			if step.Dim != -1 {
				t.Error("1-D steps are full executions")
			}
		default:
			t.Errorf("unexpected phase %s", step.Phase)
		}
		if step.Cost > step.Budget+1e-9 {
			t.Error("cost must not exceed budget")
		}
		if !step.Completed && step.Cost != step.Budget {
			t.Error("killed executions must spend the whole budget")
		}
	}
	last := out.Steps[len(out.Steps)-1]
	if !last.Completed {
		t.Error("final step must complete the query")
	}
	if !sawOneD {
		t.Error("2-D discovery must end in the 1-D bouquet phase")
	}
}

// CDI property: within one contour, at most |EPP| spill executions
// between learning events or contour jumps (Lemma 4.4's fresh-execution
// bound, checked behaviorally on traces).
func TestCDIExecutionBound(t *testing.T) {
	s := testutil.Space3D(t, 6)
	d := s.Grid.D
	for qa := 0; qa < s.Grid.NumPoints(); qa += 3 {
		out := runAt(t, s, int32(qa))
		perContourSpills := map[int]int{}
		for _, step := range out.Steps {
			if step.Phase == discovery.PhaseSpill {
				perContourSpills[step.Contour]++
			}
		}
		// Each contour sees at most D fresh + D(D-1)/2 repeats in the
		// worst case; behaviorally we check the hard cap D + D(D-1)/2.
		cap := d + d*(d-1)/2
		for c, n := range perContourSpills {
			if n > cap {
				t.Fatalf("qa=%d contour %d had %d spill executions (cap %d)", qa, c, n, cap)
			}
		}
	}
}

func TestChooseSpillPlansCoverDims(t *testing.T) {
	s := testutil.Space2D(t, 10)
	st := discovery.NewState(2)
	// Mid contour should have plans spilling on at least one dimension,
	// and every returned exec must be consistent.
	ic := &s.Contours[len(s.Contours)/2]
	execs := ChooseSpillPlans(s, st, ic)
	if len(execs) == 0 {
		t.Fatal("no spill plans chosen on a mid contour")
	}
	seen := map[int]bool{}
	for _, ex := range execs {
		if seen[ex.Dim] {
			t.Error("duplicate dimension in spill plan choice")
		}
		seen[ex.Dim] = true
		if s.PointPlan[ex.Point] != ex.PlanID {
			t.Error("plan/point mismatch")
		}
		if got := s.SpillDim(ex.PlanID, st.RemMask()); got != ex.Dim {
			t.Errorf("chosen plan spills on %d, not %d", got, ex.Dim)
		}
	}
}

// q^j_max maximality: no compatible contour point whose plan spills on j
// may have a larger j coordinate than the chosen one.
func TestChooseSpillPlansMaximality(t *testing.T) {
	s := testutil.Space2D(t, 12)
	st := discovery.NewState(2)
	for ci := range s.Contours {
		ic := &s.Contours[ci]
		execs := ChooseSpillPlans(s, st, ic)
		for _, ex := range execs {
			for _, pt := range ic.Points {
				if s.SpillDim(s.PointPlan[pt], st.RemMask()) != ex.Dim {
					continue
				}
				if s.Grid.Coord(int(pt), ex.Dim) > s.Grid.Coord(int(ex.Point), ex.Dim) {
					t.Fatalf("contour %d: point %d beats chosen q^%d_max", ci, pt, ex.Dim)
				}
			}
		}
	}
}

// Half-space pruning soundness: replaying the trace, every learned
// bound must be consistent with the true location.
func TestLearnedBoundsSound(t *testing.T) {
	s := testutil.Space2D(t, 12)
	for _, coords := range [][]int{{2, 9}, {9, 2}, {5, 5}, {0, 11}, {11, 11}} {
		qa := int32(s.Grid.Linear(coords))
		out := runAt(t, s, qa)
		for _, step := range out.Steps {
			if step.Phase != discovery.PhaseSpill {
				continue
			}
			trueCoord := s.Grid.Coord(int(qa), step.Dim)
			if step.Completed {
				if step.LearnedIdx != trueCoord {
					t.Fatalf("completed spill learned %d, truth %d", step.LearnedIdx, trueCoord)
				}
			} else if step.LearnedIdx >= trueCoord {
				t.Fatalf("failed spill claimed bound %d ≥ truth %d", step.LearnedIdx, trueCoord)
			}
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	s := testutil.Space2D(t, 10)
	qa := int32(s.Grid.Linear([]int{7, 3}))
	a := runAt(t, s, qa)
	b := runAt(t, s, qa)
	if a.TotalCost != b.TotalCost || len(a.Steps) != len(b.Steps) {
		t.Fatal("SpillBound must be deterministic")
	}
	for i := range a.Steps {
		if a.Steps[i] != b.Steps[i] {
			t.Fatalf("step %d differs between identical runs", i)
		}
	}
}

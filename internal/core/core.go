// Package core is the public façade of the robust query processing
// library: it wires the ESS search space to the three discovery
// algorithms — PlanBouquet (baseline), SpillBound, and AlignedBound —
// and to the MSO evaluation harness, behind a single Session type.
//
// Typical use:
//
//	spec, _ := workload.ByName("4D_Q91")
//	space, _ := spec.Space(1.0, 0)
//	sess := core.NewSession(space)
//	out, _ := sess.Discover(core.SpillBound, qa)
//	fmt.Println(out.SubOpt(space.PointCost[qa]))
package core

import (
	"fmt"
	"sync"

	"repro/internal/core/alignedbound"
	"repro/internal/core/bouquet"
	"repro/internal/core/discovery"
	"repro/internal/core/spillbound"
	"repro/internal/ess"
	"repro/internal/faultinject"
	"repro/internal/mso"
)

// Outcome is the result of one discovery run (see discovery.Outcome for
// the trace, cost ledger, and degradation record).
type Outcome = discovery.Outcome

// Algorithm selects a query processing strategy.
type Algorithm string

// The supported strategies.
const (
	// PlanBouquet is the baseline of Dutt & Haritsa with anorexic
	// reduction at λ = 0.2 and MSO ≤ 4(1+λ)ρ_red.
	PlanBouquet Algorithm = "planbouquet"
	// SpillBound is the paper's main algorithm, MSO ≤ D²+3D.
	SpillBound Algorithm = "spillbound"
	// AlignedBound exploits contour alignment, MSO ∈ [2D+2, D²+3D].
	AlignedBound Algorithm = "alignedbound"
)

// DefaultLambda is the anorexic-reduction threshold used throughout the
// paper's experiments.
const DefaultLambda = 0.2

// Session bundles a built search space with the per-algorithm state
// (anorexic reduction for PlanBouquet, alignment planner for
// AlignedBound), constructed lazily and reused across discoveries.
type Session struct {
	// Space is the ESS search space the session operates on.
	Space *ess.Space

	lambda float64

	// faults, when set, arms simulated discoveries with injected engine
	// faults behind the resilient driver (chaos mode).
	faults *faultinject.Injector

	mu        sync.Mutex
	reduction *ess.Reduction
	planner   *alignedbound.Planner
	// maxPenalty tracks the largest AlignedBound partition penalty
	// observed across this session's runs (Table 4).
	maxPenalty float64
}

// NewSession creates a session over the space with the default λ.
func NewSession(space *ess.Space) *Session {
	return &Session{Space: space, lambda: DefaultLambda}
}

// SetLambda overrides the anorexic reduction threshold; it must be
// called before the first PlanBouquet discovery.
func (s *Session) SetLambda(lambda float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.reduction != nil {
		panic("core: SetLambda after the reduction was built")
	}
	s.lambda = lambda
}

// SetFaults arms (or with nil disarms) fault injection for this
// session's simulated discoveries: Discover wraps the sim engine in a
// FaultySim plus the resilient retry driver, and DiscoverWith applies
// the AlignedBound→SpillBound planner fallback. The injector's schedule
// is deterministic per seed, so chaos runs are reproducible.
func (s *Session) SetFaults(in *faultinject.Injector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults = in
}

// Faults returns the session's armed injector (nil when disarmed).
func (s *Session) Faults() *faultinject.Injector {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.faults
}

// Reduction returns the session's anorexic reduction, building it on
// first use.
func (s *Session) Reduction() *ess.Reduction {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.reduction == nil {
		s.reduction = s.Space.Reduce(s.lambda)
	}
	return s.reduction
}

// Planner returns the session's AlignedBound planner, building it on
// first use.
func (s *Session) Planner() *alignedbound.Planner {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.planner == nil {
		s.planner = alignedbound.NewPlanner(s.Space)
	}
	return s.planner
}

// Guarantee returns the MSO guarantee of the algorithm on this query:
// the a-priori bound the paper proves. For AlignedBound the upper end
// of its range is returned (use alignedbound.GuaranteeRange for both).
func (s *Session) Guarantee(alg Algorithm) (float64, error) {
	d := s.Space.Grid.D
	switch alg {
	case PlanBouquet:
		return bouquet.Guarantee(s.Reduction()), nil
	case SpillBound:
		return spillbound.Guarantee(d), nil
	case AlignedBound:
		_, hi := alignedbound.GuaranteeRange(d)
		return hi, nil
	default:
		return 0, fmt.Errorf("core: unknown algorithm %q", alg)
	}
}

// Discover runs the algorithm for the query instance whose true
// location is the grid point qa, using cost-model simulated execution.
// With faults armed (SetFaults), the simulation runs behind the
// fault-injecting engine and the resilient retry driver.
func (s *Session) Discover(alg Algorithm, qa int32) (*discovery.Outcome, error) {
	sim := discovery.NewSimEngine(s.Space, qa)
	if in := s.Faults(); in != nil {
		r := discovery.NewResilient(discovery.NewFaultySim(sim, in), discovery.DefaultRetryPolicy).
			WithJitter(in.Jitter)
		return s.DiscoverWith(alg, r)
	}
	return s.DiscoverWith(alg, sim)
}

// DiscoverWith runs the algorithm against an arbitrary execution engine
// (e.g. the real row-level executor, typically behind
// discovery.NewResilient). When the engine is a *discovery.Resilient,
// the degradations, retries, and wasted cost it recorded during the run
// are attached to the returned Outcome.
func (s *Session) DiscoverWith(alg Algorithm, eng discovery.Engine) (*discovery.Outcome, error) {
	out, err := s.dispatch(alg, eng)
	if r, ok := eng.(*discovery.Resilient); ok && out != nil {
		degs, retries, wasted := r.Take()
		out.Degradations = append(out.Degradations, degs...)
		out.Retries += retries
		out.WastedCost += wasted
	}
	return out, err
}

func (s *Session) dispatch(alg Algorithm, eng discovery.Engine) (*discovery.Outcome, error) {
	switch alg {
	case PlanBouquet:
		return bouquet.Run(s.Space, s.Reduction(), eng)
	case SpillBound:
		return spillbound.Run(s.Space, eng)
	case AlignedBound:
		return s.runAligned(eng)
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q", alg)
	}
}

// runAligned runs AlignedBound with the planner-failure degradation:
// when the armed injector trips the alignment-planner site, or the
// planner panics during a chaos run, the discovery falls back to
// SpillBound — the algorithm AlignedBound refines — and the fallback is
// recorded on the Outcome. Fault-free runs never mask planner panics.
func (s *Session) runAligned(eng discovery.Engine) (out *discovery.Outcome, err error) {
	in := s.Faults()
	if ferr := in.Check(faultinject.SiteAlignPlanner); ferr != nil {
		return s.alignFallback(eng, ferr.Error())
	}
	if in != nil {
		defer func() {
			if r := recover(); r != nil {
				out, err = s.alignFallback(eng, fmt.Sprintf("planner panic: %v", r))
			}
		}()
	}
	out, pen, err := alignedbound.Run(s.Space, s.Planner(), eng)
	s.mu.Lock()
	if pen > s.maxPenalty {
		s.maxPenalty = pen
	}
	s.mu.Unlock()
	return out, err
}

// alignFallback degrades an AlignedBound discovery to SpillBound,
// stamping the Outcome with the "alignment-fallback" degradation.
func (s *Session) alignFallback(eng discovery.Engine, detail string) (*discovery.Outcome, error) {
	out, err := spillbound.Run(s.Space, eng)
	if out != nil {
		out.Degradations = append(out.Degradations, discovery.Degradation{
			Kind: "alignment-fallback", Detail: detail,
		})
	}
	return out, err
}

// MaxPenalty returns the largest AlignedBound partition penalty π*
// observed so far in this session (1 if only aligned contours were
// used; 0 if AlignedBound never ran).
func (s *Session) MaxPenalty() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxPenalty
}

// MSO exhaustively (or strided) evaluates the algorithm's empirical MSO
// and ASO over the grid.
func (s *Session) MSO(alg Algorithm, opts mso.Options) (*mso.Result, error) {
	// Prime lazily-built shared state before the parallel sweep.
	switch alg {
	case PlanBouquet:
		s.Reduction()
	case AlignedBound:
		s.Planner()
	}
	return mso.Sweep(s.Space, func(qa int32) (*discovery.Outcome, error) {
		return s.Discover(alg, qa)
	}, opts)
}

// NativeWorstCaseMSO evaluates the traditional optimizer's worst-case
// MSO (Eq. 2) on this space.
func (s *Session) NativeWorstCaseMSO(opts mso.Options) *mso.Result {
	return mso.NativeWorstCase(s.Space, opts)
}

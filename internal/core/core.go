// Package core is the public façade of the robust query processing
// library: it wires the ESS search space to the three discovery
// algorithms — PlanBouquet (baseline), SpillBound, and AlignedBound —
// and to the MSO evaluation harness.
//
// The API splits compile time from run time: Compile produces an
// immutable *Compiled artifact (anorexic reduction, contours, alignment
// planner) that any number of concurrent *Run values share, each Run
// holding only per-discovery mutable state. Session remains as a thin
// compatibility wrapper that compiles lazily and drives one Run per
// discovery.
//
// Typical use:
//
//	spec, _ := workload.ByName("4D_Q91")
//	space, _ := spec.Space(1.0, 0)
//	compiled, _ := core.Compile(space, core.CompileOptions{})
//	out, _ := compiled.NewRun().Discover(core.SpillBound, qa)
//	fmt.Println(out.SubOpt(space.PointCost[qa]))
package core

import (
	"sync"

	"repro/internal/core/alignedbound"
	"repro/internal/core/discovery"
	"repro/internal/ess"
	"repro/internal/faultinject"
	"repro/internal/mso"
)

// Outcome is the result of one discovery run (see discovery.Outcome for
// the trace, cost ledger, and degradation record).
type Outcome = discovery.Outcome

// Algorithm selects a query processing strategy.
type Algorithm string

// The supported strategies.
const (
	// PlanBouquet is the baseline of Dutt & Haritsa with anorexic
	// reduction at λ = 0.2 and MSO ≤ 4(1+λ)ρ_red.
	PlanBouquet Algorithm = "planbouquet"
	// SpillBound is the paper's main algorithm, MSO ≤ D²+3D.
	SpillBound Algorithm = "spillbound"
	// AlignedBound exploits contour alignment, MSO ∈ [2D+2, D²+3D].
	AlignedBound Algorithm = "alignedbound"
)

// DefaultLambda is the anorexic-reduction threshold used throughout the
// paper's experiments.
const DefaultLambda = 0.2

// Session is the pre-split convenience façade: a search space plus a
// lazily built Compiled artifact and session-wide accumulators, all
// behind one mutex. It remains safe for concurrent use, but new code
// (and anything latency-sensitive) should Compile once and create a Run
// per discovery instead.
type Session struct {
	// Space is the ESS search space the session operates on.
	Space *ess.Space

	mu     sync.Mutex
	lambda float64
	// faults, when set, arms simulated discoveries with injected engine
	// faults behind the resilient driver (chaos mode).
	faults   *faultinject.Injector
	compiled *Compiled
	// maxPenalty tracks the largest AlignedBound partition penalty
	// observed across this session's runs (Table 4). Each run reports
	// its own penalty on the Outcome; the session folds them here.
	maxPenalty float64
}

// NewSession creates a session over the space with the default λ.
func NewSession(space *ess.Space) *Session {
	return &Session{Space: space, lambda: DefaultLambda}
}

// SetLambda overrides the anorexic reduction threshold. It returns an
// error if the session has already compiled its artifact (the reduction
// is built eagerly at first use and cannot be rethresholded) or if the
// threshold is invalid.
func (s *Session) SetLambda(lambda float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.compiled != nil {
		return errSetLambdaAfterCompile
	}
	if _, err := validateLambda(lambda); err != nil {
		return err
	}
	s.lambda = lambda
	return nil
}

// SetFaults arms (or with nil disarms) fault injection for this
// session's simulated discoveries: Discover wraps the sim engine in a
// FaultySim plus the resilient retry driver, and DiscoverWith applies
// the AlignedBound→SpillBound planner fallback. The injector's schedule
// is deterministic per seed, so chaos runs are reproducible. The
// session hands the injector to every run as-is (no substream forking),
// so sequential chaos runs consume one continuous schedule.
func (s *Session) SetFaults(in *faultinject.Injector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults = in
}

// Faults returns the session's armed injector (nil when disarmed).
func (s *Session) Faults() *faultinject.Injector {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.faults
}

// Compiled returns the session's compiled artifact, building it on
// first use.
func (s *Session) Compiled() *Compiled {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ensureCompiled()
}

// ensureCompiled builds the artifact lazily; callers hold s.mu.
func (s *Session) ensureCompiled() *Compiled {
	if s.compiled == nil {
		c, err := newCompiled(s.Space, s.lambda)
		if err != nil {
			// SetLambda validated the threshold, so this is unreachable.
			panic(err)
		}
		s.compiled = c
	}
	return s.compiled
}

// Reduction returns the session's anorexic reduction, compiling on
// first use.
func (s *Session) Reduction() *ess.Reduction { return s.Compiled().Reduction() }

// Planner returns the session's AlignedBound planner, compiling on
// first use.
func (s *Session) Planner() *alignedbound.Planner { return s.Compiled().Planner() }

// Guarantee returns the MSO guarantee of the algorithm on this query:
// the a-priori bound the paper proves. For AlignedBound the upper end
// of its range is returned (use alignedbound.GuaranteeRange for both).
func (s *Session) Guarantee(alg Algorithm) (float64, error) {
	return s.Compiled().Guarantee(alg)
}

// newRun creates a run carrying the session's armed injector.
func (s *Session) newRun() *Run {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ensureCompiled().NewRun().WithFaults(s.faults)
}

// fold accumulates a finished run's penalty into the session ledger.
func (s *Session) fold(r *Run) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p := r.MaxPenalty(); p > s.maxPenalty {
		s.maxPenalty = p
	}
}

// Discover runs the algorithm for the query instance whose true
// location is the grid point qa, using cost-model simulated execution.
// With faults armed (SetFaults), the simulation runs behind the
// fault-injecting engine and the resilient retry driver.
func (s *Session) Discover(alg Algorithm, qa int32) (*discovery.Outcome, error) {
	r := s.newRun()
	out, err := r.Discover(alg, qa)
	s.fold(r)
	return out, err
}

// DiscoverWith runs the algorithm against an arbitrary execution engine
// (e.g. the real row-level executor, typically behind
// discovery.NewResilient). When the engine is a *discovery.Resilient,
// the degradations, retries, and wasted cost it recorded during the run
// are attached to the returned Outcome.
func (s *Session) DiscoverWith(alg Algorithm, eng discovery.Engine) (*discovery.Outcome, error) {
	r := s.newRun()
	out, err := r.DiscoverWith(alg, eng)
	s.fold(r)
	return out, err
}

// MaxPenalty returns the largest AlignedBound partition penalty π*
// observed so far in this session (1 if only aligned contours were
// used; 0 if AlignedBound never ran).
func (s *Session) MaxPenalty() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxPenalty
}

// MSO exhaustively (or strided) evaluates the algorithm's empirical MSO
// and ASO over the grid.
func (s *Session) MSO(alg Algorithm, opts mso.Options) (*mso.Result, error) {
	s.Compiled() // compile outside the sweep's worker pool
	res, err := mso.Sweep(s.Space, func(qa int32) (*discovery.Outcome, error) {
		return s.Discover(alg, qa)
	}, opts)
	return res, err
}

// NativeWorstCaseMSO evaluates the traditional optimizer's worst-case
// MSO (Eq. 2) on this space.
func (s *Session) NativeWorstCaseMSO(opts mso.Options) *mso.Result {
	return mso.NativeWorstCase(s.Space, opts)
}

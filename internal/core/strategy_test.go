package core

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/testutil"
)

func TestStrategyRegistry(t *testing.T) {
	want := []string{
		"planbouquet", "spillbound", "alignedbound",
		"parqo", "robustmap", "adaptiveswitch",
	}
	if got := Strategies(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Strategies() = %v, want %v", got, want)
	}
	for _, name := range []string{"spillbound", "SpillBound", "PARQO"} {
		if _, ok := StrategyByName(name); !ok {
			t.Fatalf("StrategyByName(%q) not found", name)
		}
	}
	if _, ok := StrategyByName("zzz"); ok {
		t.Fatal("unknown strategy resolved")
	}
}

// The paper algorithms behind Strategy must produce deep-equal Outcomes
// vs. their pre-refactor drivers — clean and under an identical chaos
// schedule.
func TestPaperStrategiesMatchAlgorithms(t *testing.T) {
	s := testutil.Space2D(t, 8)
	c, err := Compile(s, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	chaos := faultinject.Config{
		Seed: 77,
		Rates: map[faultinject.Site]float64{
			faultinject.SiteEngineFull:  0.15,
			faultinject.SiteEngineSpill: 0.15,
			faultinject.SiteSpillObs:    0.10,
			faultinject.SiteLatency:     0.20,
		},
	}
	for _, alg := range []Algorithm{PlanBouquet, SpillBound, AlignedBound} {
		for qa := int32(0); qa < int32(s.Grid.NumPoints()); qa += 5 {
			want, werr := c.NewRun().Discover(alg, qa)
			got, gerr := c.NewRun().DiscoverStrategy(string(alg), qa)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("%s qa=%d: errors diverge: %v vs %v", alg, qa, werr, gerr)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s qa=%d: clean strategy outcome diverges\n got %+v\nwant %+v", alg, qa, got, want)
			}
			want, werr = c.NewRun().WithFaults(faultinject.New(chaos)).Discover(alg, qa)
			got, gerr = c.NewRun().WithFaults(faultinject.New(chaos)).DiscoverStrategy(string(alg), qa)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("%s qa=%d: chaos errors diverge: %v vs %v", alg, qa, werr, gerr)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s qa=%d: chaos strategy outcome diverges", alg, qa)
			}
		}
	}
}

// Every registered strategy must complete every instance of a clean 2-D
// workload, bill at least the optimal cost, and be deterministic run to
// run.
func TestAllStrategiesCompleteClean(t *testing.T) {
	s := testutil.Space2D(t, 10)
	c, err := Compile(s, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Strategies() {
		for qa := int32(0); qa < int32(s.Grid.NumPoints()); qa += 7 {
			out, err := c.NewRun().DiscoverStrategy(name, qa)
			if err != nil {
				t.Fatalf("%s qa=%d: %v", name, qa, err)
			}
			if !out.Completed {
				t.Fatalf("%s qa=%d: not completed", name, qa)
			}
			if out.TotalCost < s.PointCost[qa]-1e-9 {
				t.Fatalf("%s qa=%d: bill %v below optimal %v", name, qa, out.TotalCost, s.PointCost[qa])
			}
			again, err := c.NewRun().DiscoverStrategy(name, qa)
			if err != nil {
				t.Fatalf("%s qa=%d rerun: %v", name, qa, err)
			}
			if !reflect.DeepEqual(out, again) {
				t.Fatalf("%s qa=%d: nondeterministic outcome", name, qa)
			}
		}
	}
}

// The heuristic strategies must stay deterministic under a fixed chaos
// schedule and keep the degradation ledger consistent.
func TestNewStrategiesChaosDeterminism(t *testing.T) {
	s := testutil.Space2D(t, 8)
	c, err := Compile(s, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	chaos := faultinject.Config{
		Seed: 40916,
		Rates: map[faultinject.Site]float64{
			faultinject.SiteEngineFull:  0.15,
			faultinject.SiteEngineSpill: 0.15,
			faultinject.SiteSpillObs:    0.10,
			faultinject.SiteLatency:     0.20,
		},
	}
	for _, name := range []string{"parqo", "robustmap", "adaptiveswitch"} {
		for qa := int32(0); qa < int32(s.Grid.NumPoints()); qa += 9 {
			a, aerr := c.NewRun().WithFaults(faultinject.New(chaos)).DiscoverStrategy(name, qa)
			b, berr := c.NewRun().WithFaults(faultinject.New(chaos)).DiscoverStrategy(name, qa)
			if (aerr == nil) != (berr == nil) {
				t.Fatalf("%s qa=%d: chaos errors diverge: %v vs %v", name, qa, aerr, berr)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s qa=%d: chaos outcome nondeterministic", name, qa)
			}
			if aerr != nil {
				continue
			}
			nRetry := 0
			for _, d := range a.Degradations {
				if d.Kind == "retry" {
					nRetry++
				}
			}
			if nRetry != a.Retries {
				t.Fatalf("%s qa=%d: %d retry degradations but Retries=%d", name, qa, nRetry, a.Retries)
			}
			if a.WastedCost > a.TotalCost {
				t.Fatalf("%s qa=%d: wasted %v exceeds total %v", name, qa, a.WastedCost, a.TotalCost)
			}
		}
	}
}

func TestStrategyGuarantees(t *testing.T) {
	s := testutil.Space2D(t, 10)
	c, err := Compile(s, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{PlanBouquet, SpillBound, AlignedBound} {
		g, ok := c.StrategyGuarantee(string(alg))
		if !ok {
			t.Fatalf("%s: no strategy guarantee", alg)
		}
		want, err := c.Guarantee(alg)
		if err != nil || g != want {
			t.Fatalf("%s: strategy guarantee %v, algorithm %v (%v)", alg, g, want, err)
		}
	}
	for _, name := range []string{"parqo", "robustmap", "adaptiveswitch", "zzz"} {
		if g, ok := c.StrategyGuarantee(name); ok {
			t.Fatalf("%s: unexpected guarantee %v", name, g)
		}
	}
}

func TestDiscoverStrategyUnknown(t *testing.T) {
	s := testutil.Space2D(t, 8)
	c, err := Compile(s, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, derr := c.NewRun().DiscoverStrategy("zzz", 0)
	if derr == nil || !strings.Contains(derr.Error(), "unknown strategy") {
		t.Fatalf("unknown strategy error = %v", derr)
	}
	if perr := c.PrepareStrategy("zzz"); perr == nil {
		t.Fatal("PrepareStrategy must reject unknown names")
	}
	if perr := c.PrepareStrategy("parqo"); perr != nil {
		t.Fatalf("PrepareStrategy(parqo): %v", perr)
	}
}

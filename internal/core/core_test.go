package core

import (
	"testing"

	"repro/internal/mso"
	"repro/internal/testutil"
)

func TestSessionGuarantees(t *testing.T) {
	s := testutil.Space2D(t, 10)
	sess := NewSession(s)
	sb, err := sess.Guarantee(SpillBound)
	if err != nil || sb != 10 {
		t.Fatalf("SB guarantee = %v, %v", sb, err)
	}
	pb, err := sess.Guarantee(PlanBouquet)
	if err != nil || pb <= 0 {
		t.Fatalf("PB guarantee = %v, %v", pb, err)
	}
	ab, err := sess.Guarantee(AlignedBound)
	if err != nil || ab != 10 {
		t.Fatalf("AB guarantee (upper) = %v, %v", ab, err)
	}
	if _, err := sess.Guarantee("zzz"); err == nil {
		t.Fatal("unknown algorithm should error")
	}
}

func TestSessionDiscoverAllAlgorithms(t *testing.T) {
	s := testutil.Space2D(t, 10)
	sess := NewSession(s)
	qa := int32(s.Grid.Linear([]int{6, 5}))
	for _, alg := range []Algorithm{PlanBouquet, SpillBound, AlignedBound} {
		out, err := sess.Discover(alg, qa)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if !out.Completed {
			t.Fatalf("%s: not completed", alg)
		}
		g, _ := sess.Guarantee(alg)
		if so := out.SubOpt(s.PointCost[qa]); so > g*3 {
			t.Errorf("%s: sub-opt %v far above guarantee %v", alg, so, g)
		}
	}
	if _, err := sess.Discover("zzz", qa); err == nil {
		t.Fatal("unknown algorithm should error")
	}
}

func TestSessionMSOOrdering(t *testing.T) {
	s := testutil.Space2D(t, 10)
	sess := NewSession(s)
	pb, err := sess.MSO(PlanBouquet, mso.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := sess.MSO(SpillBound, mso.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ab, err := sess.MSO(AlignedBound, mso.Options{})
	if err != nil {
		t.Fatal(err)
	}
	native := sess.NativeWorstCaseMSO(mso.Options{})
	if native.MSO < sb.MSO {
		t.Errorf("native (%v) should dominate SB (%v)", native.MSO, sb.MSO)
	}
	if sb.MSO > pb.MSO*1.05 {
		t.Errorf("SB MSOe (%v) should not exceed PB's (%v)", sb.MSO, pb.MSO)
	}
	if ab.MSO <= 0 {
		t.Error("AB MSOe must be positive")
	}
	if sess.MaxPenalty() < 1 {
		t.Errorf("MaxPenalty = %v after AB sweep", sess.MaxPenalty())
	}
}

func TestSetLambda(t *testing.T) {
	s := testutil.Space2D(t, 8)
	sess := NewSession(s)
	if err := sess.SetLambda(0.5); err != nil {
		t.Fatal(err)
	}
	red := sess.Reduction()
	if red.Lambda != 0.5 {
		t.Fatalf("lambda = %v", red.Lambda)
	}
	if err := sess.SetLambda(0.1); err == nil {
		t.Fatal("SetLambda after the reduction was built should error")
	}
	if red2 := sess.Reduction(); red2.Lambda != 0.5 {
		t.Fatalf("rejected SetLambda must not change the reduction (lambda = %v)", red2.Lambda)
	}
	if err := NewSession(s).SetLambda(-0.5); err == nil {
		t.Fatal("negative lambda should error")
	}
}

func TestMaxPenaltyZeroBeforeABRuns(t *testing.T) {
	s := testutil.Space2D(t, 8)
	sess := NewSession(s)
	if sess.MaxPenalty() != 0 {
		t.Fatal("MaxPenalty should start at 0")
	}
}

package core

import (
	"sync"
	"testing"
)

// Cache behavior is independent of artifact contents; distinct empty
// Compiled values stand in for real artifacts (identity is what the
// cache hands out, and pointer identity is what the tests check).
func art() *Compiled { return &Compiled{} }

func TestArtifactCacheHitMissEvict(t *testing.T) {
	c := NewArtifactCache(100)
	if _, ok := c.Get(1); ok {
		t.Fatal("hit on empty cache")
	}
	a1, a2, a3 := art(), art(), art()
	c.Put(1, a1, 40)
	c.Put(2, a2, 40)
	if got, ok := c.Get(1); !ok || got != a1 {
		t.Fatal("lost entry 1")
	}
	// Entry 2 is now LRU; inserting 40 more bytes must evict it, not 1.
	if n := c.Put(3, a3, 40); n != 1 {
		t.Fatalf("Put evicted %d entries, want 1", n)
	}
	if _, ok := c.Get(2); ok {
		t.Fatal("LRU entry 2 survived eviction")
	}
	if got, ok := c.Get(1); !ok || got != a1 {
		t.Fatal("recently used entry 1 was evicted")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Evictions != 1 || st.Inserts != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Entries != 2 || st.Bytes != 80 || st.Budget != 100 {
		t.Fatalf("occupancy = %+v", st)
	}
}

func TestArtifactCacheKeepsNewestOversized(t *testing.T) {
	c := NewArtifactCache(10)
	big := art()
	c.Put(1, art(), 5)
	c.Put(2, big, 1000) // alone exceeds the budget
	if got, ok := c.Get(2); !ok || got != big {
		t.Fatal("oversized newest entry must be retained")
	}
	if _, ok := c.Get(1); ok {
		t.Fatal("older entry should have been evicted to make room")
	}
	if n := c.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
}

func TestArtifactCacheReplaceAndEvict(t *testing.T) {
	c := NewArtifactCache(100)
	a1, a2 := art(), art()
	c.Put(7, a1, 30)
	c.Put(7, a2, 50) // replace in place: no new insert, bytes re-accounted
	st := c.Stats()
	if st.Inserts != 1 || st.Entries != 1 || st.Bytes != 50 {
		t.Fatalf("after replace: %+v", st)
	}
	if got, _ := c.Get(7); got != a2 {
		t.Fatal("replace did not swap the artifact")
	}
	if !c.Evict(7) || c.Evict(7) {
		t.Fatal("Evict should succeed once then report absent")
	}
	if st := c.Stats(); st.Bytes != 0 || st.Entries != 0 || st.Evictions != 1 {
		t.Fatalf("after evict: %+v", st)
	}
}

func TestArtifactCacheConcurrent(t *testing.T) {
	c := NewArtifactCache(1 << 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := uint64(i % 17)
				if _, ok := c.Get(k); !ok {
					c.Put(k, art(), 64)
				}
				if i%31 == 0 {
					c.Evict(k)
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes < 0 || st.Bytes > st.Budget || st.Entries > 17 {
		t.Fatalf("inconsistent occupancy after concurrent use: %+v", st)
	}
}

package core

import (
	"container/list"
	"sync"
)

// ArtifactCache is a signature-keyed LRU cache of Compiled artifacts
// with a byte-size budget — the serving tier's defense against paying
// one compile per process per workload. Keys are query-signature
// hashes (see query.Sign/Extend), values are immutable *Compiled
// artifacts safe to share across any number of concurrent runs, so a
// hit hands the caller the same pointer every other tenant of that
// signature is using.
//
// Eviction is strict LRU by recency of Get/Put, driven by the byte
// budget rather than an entry count: artifact sizes vary by orders of
// magnitude across grid resolutions. The newest entry is always
// retained even when it alone exceeds the budget — evicting the
// artifact that was just compiled would turn an undersized budget into
// a recompile storm, the exact failure mode the cache exists to absorb.
type ArtifactCache struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	ll     *list.List // front = most recently used
	items  map[uint64]*list.Element

	hits, misses, evictions, inserts int64
}

type cacheEntry struct {
	key  uint64
	art  *Compiled
	size int64
}

// CacheStats is a point-in-time snapshot of cache activity.
type CacheStats struct {
	Hits, Misses, Evictions, Inserts int64
	Entries                          int
	Bytes, Budget                    int64
}

// NewArtifactCache creates a cache with the given byte budget. A
// non-positive budget gets a 256 MiB default.
func NewArtifactCache(budget int64) *ArtifactCache {
	if budget <= 0 {
		budget = 256 << 20
	}
	return &ArtifactCache{
		budget: budget,
		ll:     list.New(),
		items:  make(map[uint64]*list.Element),
	}
}

// Get returns the cached artifact for the signature key, marking it
// most-recently-used.
func (c *ArtifactCache) Get(key uint64) (*Compiled, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).art, true
}

// Peek returns the cached artifact without counting a hit or miss and
// without touching recency. Observability paths (status endpoints,
// snapshot streaming) use it so probes don't skew the cache statistics
// or the eviction order the serving path depends on.
func (c *ArtifactCache) Peek(key uint64) (*Compiled, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*cacheEntry).art, true
}

// Put inserts (or replaces) the artifact under the signature key with
// the given size estimate, then evicts least-recently-used entries
// until the cache is back within budget (never the entry just
// inserted). It returns the number of entries evicted.
func (c *ArtifactCache) Put(key uint64, art *Compiled, size int64) int {
	if size < 0 {
		size = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*cacheEntry)
		c.bytes += size - e.size
		e.art, e.size = art, size
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, art: art, size: size})
		c.bytes += size
		c.inserts++
	}
	evicted := 0
	for c.bytes > c.budget && c.ll.Len() > 1 {
		oldest := c.ll.Back()
		c.remove(oldest)
		c.evictions++
		evicted++
	}
	return evicted
}

// Evict removes the entry for the signature key, reporting whether one
// existed. The serving tier's cache-evict fault site calls this to
// simulate memory pressure deterministically.
func (c *ArtifactCache) Evict(key uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return false
	}
	c.remove(el)
	c.evictions++
	return true
}

func (c *ArtifactCache) remove(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= e.size
}

// Len returns the number of cached artifacts.
func (c *ArtifactCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the cache counters and occupancy.
func (c *ArtifactCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Inserts: c.inserts, Entries: c.ll.Len(),
		Bytes: c.bytes, Budget: c.budget,
	}
}

// EstimateArtifactBytes approximates the resident size of a compiled
// artifact for cache accounting: the per-point plan/cost arrays
// dominate, plus a conservative per-plan allowance for the plan trees
// and planner state. Exactness does not matter — the budget only needs
// a consistent, monotone measure so eviction pressure tracks reality.
func EstimateArtifactBytes(c *Compiled) int64 {
	if c == nil {
		return 0
	}
	g := c.Source.Geometry()
	points := int64(g.NumPoints())
	plans := int64(c.Source.NumPlans())
	const (
		perPoint    = 12  // int32 plan id + float64 cost
		perPlan     = 512 // plan tree + pool bookkeeping
		fixedOverhd = 1 << 14
	)
	return points*perPoint + plans*perPlan + fixedOverhd
}

package core

import (
	"fmt"

	"repro/internal/core/discovery"
)

// parqoStrategy is PARQO-lite: penalty-aware plan selection in the
// spirit of PARQO (arXiv 2406.01526), scaled down to the ESS machinery
// this repo already has. At compile time it picks the single POSP plan
// minimizing the expected penalty — the error-weighted sum, over a
// neighborhood of the estimated location, of how much the plan's
// recosted cost exceeds the optimal cost there. At run time it executes
// only that plan, climbing the budget ladder from the plan's estimated
// cost until the query completes.
//
// Unlike the paper algorithms it learns nothing from kills (no spill
// executions, no half-space pruning), so it carries no MSO guarantee:
// its worst case is unbounded when the estimate is far off, which is
// exactly the contrast the bake-off is meant to surface.
type parqoStrategy struct{}

func (parqoStrategy) Name() string { return "parqo" }

// parqoPrep is the memoized compile-time choice.
type parqoPrep struct {
	planID int32
	// start is the first budget-ladder rung covering the plan's recosted
	// cost at the estimated location.
	start int
}

// Prepare scores every base-pool plan by expected penalty over the
// error neighborhood of the estimate and keeps the minimizer. Ties
// break toward the cheaper plan at the estimate, then the lower ID, so
// the choice is deterministic.
func (parqoStrategy) Prepare(c *Compiled) (any, error) {
	src := c.Source
	ev := src.NewEvaluator()
	g := src.Geometry()
	qe := estimatePoint(g)
	nb := errorNeighborhood(g, qe)

	var bestID int32 = -1
	bestPenalty, bestAtQe := 0.0, 0.0
	for _, p := range src.BasePlans() {
		id := int32(p.ID)
		penalty := 0.0
		for i, pt := range nb.Points {
			if over := ev.PlanCost(id, pt) - ev.OptCost(pt); over > 0 {
				penalty += nb.Weights[i] * over
			}
		}
		atQe := ev.PlanCost(id, qe)
		if bestID < 0 || penalty < bestPenalty ||
			(penalty == bestPenalty && atQe < bestAtQe) {
			bestID, bestPenalty, bestAtQe = id, penalty, atQe
		}
	}
	if bestID < 0 {
		return nil, fmt.Errorf("parqo: empty plan pool (query %s)", src.Query().Name)
	}
	return &parqoPrep{planID: bestID, start: startRung(budgetLadder(src), bestAtQe)}, nil
}

// Discover runs the chosen plan up the budget ladder: full executions
// only, each rung's kill paid in full, until one completes.
func (parqoStrategy) Discover(r *Run, prep any, eng discovery.Engine) (*discovery.Outcome, error) {
	p := prep.(*parqoPrep)
	out := &discovery.Outcome{}
	ladder := budgetLadder(r.c.Source)
	for rung := p.start; rung < len(ladder); rung++ {
		if aerr := discovery.AbortOf(eng); aerr != nil {
			return out, aerr
		}
		cost, done := eng.ExecFull(p.planID, ladder[rung])
		out.Add(discovery.Step{
			Contour: rung + 1, PlanID: p.planID, Dim: -1,
			Budget: ladder[rung], Cost: cost, Completed: done,
			Phase: discovery.PhaseBouquet, LearnedIdx: -1,
		})
		if done {
			out.Completed = true
			return out, nil
		}
	}
	return out, fmt.Errorf("parqo: plan %d did not complete within %d budget rungs (query %s)",
		p.planID, len(ladder), r.c.Source.Query().Name)
}

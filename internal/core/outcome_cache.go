package core

import (
	"container/list"
	"math"
	"sync"

	"repro/internal/core/discovery"
	"repro/internal/query"
)

// This file implements the serving tier's deterministic outcome cache.
// Discovery outcomes are bit-for-bit deterministic by construction:
// the same compiled artifact, strategy, grid point, worker count, and
// fault substream produce a deep-equal Outcome (pinned by the
// differential suites), so unlike an ordinary database result cache a
// semantic outcome cache here is *provably* correct — provided the key
// captures every input the execution depends on. OutcomeKey enumerates
// exactly those inputs; anything that can change the outcome must
// appear in it, and the lazy-ESS refinement epoch is the one input that
// mutates behind a stable signature.

// OutcomeKey identifies one deterministic discovery execution. Two
// requests with equal keys are guaranteed to produce deep-equal
// outcomes and byte-identical JSON responses.
type OutcomeKey struct {
	// SigHash is the workload's extended artifact signature
	// (query.Sign + Extend over EPP/res/scale) — it already pins the
	// SQL shape, grid geometry, and catalog scale.
	SigHash uint64
	// Workload is the tenant name the response echoes; two tenants can
	// share a signature (and artifact) yet serve distinct responses.
	Workload string
	// Strategy is the resolved strategy name ("spillbound", "parqo",
	// ...) — algorithm aliases resolve to it before keying.
	Strategy string
	// QA is the grid-point ordinal the discovery targets.
	QA int
	// ExecWorkers is the per-request intra-query worker count (0 =
	// server default). The merged meter is worker-count independent,
	// but exec parallelism degradations are not, so it keys.
	ExecWorkers int
	// FaultSeed and FaultRate pin the deterministic fault substream.
	// Both are zero when the request runs unarmed.
	FaultSeed uint64
	FaultRate float64
	// Lambda is the compiled artifact's cost-model λ.
	Lambda float64
	// Epoch is the workload's ESS refinement epoch at execution time.
	// Lazy-mode online refinement bumps it, invalidating every entry
	// computed against the older contour surface. Eager spaces are
	// frozen at epoch 0.
	Epoch uint64
}

// Hash folds the key into a single 64-bit cache key by extending the
// artifact signature with the request coordinates — the same FNV-1a
// construction query.Signature.Extend uses, so replicas derive
// identical hashes. Collisions are guarded by full-key equality on
// lookup, not by the hash alone.
func (k OutcomeKey) Hash() uint64 {
	return query.Signature{Hash: k.SigHash}.
		Extend(k.Workload, k.Strategy).
		ExtendUint64(
			uint64(int64(k.QA)),
			uint64(int64(k.ExecWorkers)),
			k.FaultSeed,
			math.Float64bits(k.FaultRate),
			math.Float64bits(k.Lambda),
			k.Epoch,
		).Hash
}

// CachedOutcome is one cache value: the discovery outcome for
// API-level reuse plus the exact JSON response bytes served for it, so
// a hit bypasses both the admission-slot execution and the re-encode.
// Both are immutable once cached; Body must never be mutated by
// readers (it is written to responses directly, zero-copy).
type CachedOutcome struct {
	Outcome *discovery.Outcome
	Body    []byte
}

// OutcomeCache is a byte-budgeted LRU over deterministic discovery
// outcomes, sibling of ArtifactCache. Keys are OutcomeKey hashes with
// full-key equality verification; values are immutable CachedOutcome
// entries. Like the artifact cache it never evicts the entry just
// inserted, so an undersized budget degrades to single-entry reuse
// rather than thrash.
type OutcomeCache struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	ll     *list.List // front = most recently used
	items  map[uint64]*list.Element

	// admit/admitPrev form the doorkeeper: a two-generation set of
	// key hashes that have missed recently. A key is admitted into the
	// cache only on its second miss within the doorkeeper's window, so
	// a stream of never-repeating requests retains nothing — an
	// all-miss workload must not trade its own GC pressure for cache
	// entries nobody will read. Each generation holds admitGen hashes
	// (8 bytes each); when the current one fills it becomes the
	// previous and a fresh one starts, bounding memory while keeping
	// recent history.
	admit, admitPrev map[uint64]struct{}

	hits, misses, evictions, inserts int64
}

// admitGen is the doorkeeper generation size: how many distinct missed
// keys are remembered before the window slides.
const admitGen = 1 << 14

type outcomeEntry struct {
	hash uint64
	key  OutcomeKey
	val  *CachedOutcome
	size int64
}

// NewOutcomeCache creates a cache with the given byte budget. A
// non-positive budget gets a 64 MiB default — outcome entries are far
// smaller than compiled artifacts.
func NewOutcomeCache(budget int64) *OutcomeCache {
	if budget <= 0 {
		budget = 64 << 20
	}
	return &OutcomeCache{
		budget: budget,
		ll:     list.New(),
		items:  make(map[uint64]*list.Element),
		admit:  make(map[uint64]struct{}),
	}
}

// Get returns the cached outcome for the key, marking it most recently
// used. A hash collision with a different full key counts as a miss —
// determinism must never serve a wrong-key body.
func (c *OutcomeCache) Get(key OutcomeKey) (*CachedOutcome, bool) {
	h := key.Hash()
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[h]
	if !ok || el.Value.(*outcomeEntry).key != key {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*outcomeEntry).val, true
}

// Put offers the outcome under the key. A key not seen by the
// doorkeeper yet is recorded and rejected (admitted=false) — it gets
// in on its next miss. An admitted insert evicts least-recently-used
// entries until the cache is back within budget (never the entry just
// inserted); a key already resident is always replaced in place.
func (c *OutcomeCache) Put(key OutcomeKey, val *CachedOutcome) (evicted int, admitted bool) {
	h := key.Hash()
	size := EstimateOutcomeBytes(val)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[h]; ok {
		e := el.Value.(*outcomeEntry)
		c.bytes += size - e.size
		e.key, e.val, e.size = key, val, size
		c.ll.MoveToFront(el)
	} else {
		if !c.doorkeeper(h) {
			return 0, false
		}
		c.items[h] = c.ll.PushFront(&outcomeEntry{hash: h, key: key, val: val, size: size})
		c.bytes += size
		c.inserts++
	}
	for c.bytes > c.budget && c.ll.Len() > 1 {
		c.remove(c.ll.Back())
		c.evictions++
		evicted++
	}
	return evicted, true
}

// doorkeeper reports whether the hash has missed recently (admit it),
// recording it for next time when it has not. Caller holds c.mu.
func (c *OutcomeCache) doorkeeper(h uint64) bool {
	if _, ok := c.admit[h]; ok {
		return true
	}
	if _, ok := c.admitPrev[h]; ok {
		return true
	}
	if len(c.admit) >= admitGen {
		c.admitPrev = c.admit
		c.admit = make(map[uint64]struct{})
	}
	c.admit[h] = struct{}{}
	return false
}

// Evict removes the entry for the key, reporting whether one existed.
// The outcome.evict chaos site calls this to simulate memory pressure
// deterministically.
func (c *OutcomeCache) Evict(key OutcomeKey) bool {
	h := key.Hash()
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[h]
	if !ok || el.Value.(*outcomeEntry).key != key {
		return false
	}
	c.remove(el)
	c.evictions++
	return true
}

func (c *OutcomeCache) remove(el *list.Element) {
	e := el.Value.(*outcomeEntry)
	c.ll.Remove(el)
	delete(c.items, e.hash)
	c.bytes -= e.size
}

// Len returns the number of cached outcomes.
func (c *OutcomeCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the cache counters and occupancy.
func (c *OutcomeCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Inserts: c.inserts, Entries: c.ll.Len(),
		Bytes: c.bytes, Budget: c.budget,
	}
}

// EstimateOutcomeBytes approximates the resident size of a cached
// outcome for budget accounting: the response body and the step trace
// dominate. Like EstimateArtifactBytes, only consistency and
// monotonicity matter, not exactness.
func EstimateOutcomeBytes(v *CachedOutcome) int64 {
	if v == nil {
		return 0
	}
	const (
		perStep     = 72  // discovery.Step value + slice slot
		perDegr     = 64  // discovery.Degradation value sans strings
		fixedOverhd = 256 // entry struct, list element, map slot
	)
	size := int64(len(v.Body)) + fixedOverhd
	if o := v.Outcome; o != nil {
		size += int64(len(o.Steps)) * perStep
		size += int64(len(o.Degradations)) * perDegr
		for _, d := range o.Degradations {
			size += int64(len(d.Kind) + len(d.Detail))
		}
	}
	return size
}

// Package bouquet implements the PlanBouquet baseline (Dutt & Haritsa,
// ACM TODS 2016): contour-sequential budgeted executions of the
// (anorexically reduced) bouquet plans, with hypograph pruning on each
// contour failure and an MSO guarantee of 4(1+λ)·ρ_red.
package bouquet

import (
	"fmt"

	"repro/internal/core/discovery"
	"repro/internal/ess"
)

// Config controls the PlanBouquet run.
type Config struct {
	// Lambda is the anorexic reduction threshold used when building the
	// reduction (affects budgets: executions get (1+λ)·CC_i).
	Lambda float64
}

// Guarantee returns PlanBouquet's MSO bound 4(1+λ)·ρ_red for the given
// reduction.
func Guarantee(red *ess.Reduction) float64 {
	return 4 * (1 + red.Lambda) * float64(red.Rho)
}

// Run executes the PlanBouquet discovery for one query instance through
// the engine. The reduction must come from the same source.
func Run(src ess.ContourSource, red *ess.Reduction, eng discovery.Engine) (*discovery.Outcome, error) {
	// Bouquet issues up to ρ executions per contour; one per contour is
	// the floor, so seed the trace with a contour-count hint to avoid
	// repeated growth on the serve path.
	out := &discovery.Outcome{Steps: make([]discovery.Step, 0, src.NumContours()+4)}
	budgetFactor := 1 + red.Lambda
	for ci := 0; ci < src.NumContours(); ci++ {
		budget := src.ContourAt(nil, ci).Cost * budgetFactor
		for _, pid := range red.ContourPlans[ci] {
			if aerr := discovery.AbortOf(eng); aerr != nil {
				return out, aerr
			}
			c, done := eng.ExecFull(pid, budget)
			out.Add(discovery.Step{
				Contour: ci + 1, PlanID: pid, Dim: -1,
				Budget: budget, Cost: c, Completed: done,
				Phase: discovery.PhaseBouquet, LearnedIdx: -1,
			})
			if done {
				out.Completed = true
				return out, nil
			}
		}
	}
	return out, fmt.Errorf("bouquet: no plan completed on any contour (query %s)", src.Query().Name)
}

// RunOneD is the terminal 1-D bouquet phase shared with SpillBound and
// AlignedBound (§4.1): with a single unlearned dimension remaining, each
// contour of the residual line holds one plan, executed in regular
// (non-spill) mode until one completes. startContour is 0-based.
func RunOneD(src ess.ContourSource, st *discovery.State, eng discovery.Engine, startContour int, out *discovery.Outcome) error {
	dims := st.RemainingDims()
	if len(dims) != 1 {
		return fmt.Errorf("bouquet: 1-D phase with %d dims remaining", len(dims))
	}
	dim := dims[0]
	g := src.Geometry()
	for ci := startContour; ci < src.NumContours(); ci++ {
		ic := src.ContourAt(st.Learned, ci)
		// The residual line's contour is its max-selectivity in-budget
		// point; pick the compatible one with the largest coordinate.
		best := int32(-1)
		bestCoord := -1
		for _, pt := range ic.Points {
			if !st.Compatible(g, pt) {
				continue
			}
			if c := g.Coord(int(pt), dim); c > bestCoord {
				best, bestCoord = pt, c
			}
		}
		if best < 0 {
			continue // line beyond this contour already
		}
		if aerr := discovery.AbortOf(eng); aerr != nil {
			return aerr
		}
		pid := src.PlanAt(best)
		c, done := eng.ExecFull(pid, ic.Cost)
		out.Add(discovery.Step{
			Contour: ci + 1, PlanID: pid, Dim: -1,
			Budget: ic.Cost, Cost: c, Completed: done,
			Phase: discovery.PhaseOneD, LearnedIdx: -1,
		})
		if done {
			out.Completed = true
			return nil
		}
		st.Raise(dim, bestCoord)
	}
	return fmt.Errorf("bouquet: 1-D phase exhausted contours (query %s)", src.Query().Name)
}

package bouquet

import (
	"testing"

	"repro/internal/core/discovery"
	"repro/internal/ess"
	"repro/internal/testutil"
)

func TestGuarantee(t *testing.T) {
	red := &ess.Reduction{Lambda: 0.2, Rho: 5}
	if g := Guarantee(red); g != 4*1.2*5 {
		t.Fatalf("Guarantee = %v, want 24", g)
	}
}

func TestRunCompletesEverywhere(t *testing.T) {
	s := testutil.Space2D(t, 10)
	red := s.Reduce(0.2)
	bound := Guarantee(red)
	for qa := 0; qa < s.Grid.NumPoints(); qa++ {
		out, err := Run(s, red, discovery.NewSimEngine(s, int32(qa)))
		if err != nil {
			t.Fatalf("PB failed at qa=%d: %v", qa, err)
		}
		so := out.SubOpt(s.PointCost[qa])
		if so < 1-1e-9 {
			t.Fatalf("sub-opt %v < 1 at qa=%d", so, qa)
		}
		if so > bound+1e-9 {
			t.Fatalf("PB bound violated at qa=%d: %v > %v", qa, so, bound)
		}
	}
}

func TestRunStepsAreBouquetPhase(t *testing.T) {
	s := testutil.Space2D(t, 10)
	red := s.Reduce(0.2)
	qa := int32(s.Grid.Linear([]int{5, 7}))
	out, err := Run(s, red, discovery.NewSimEngine(s, qa))
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range out.Steps {
		if step.Phase != discovery.PhaseBouquet {
			t.Errorf("unexpected phase %s", step.Phase)
		}
		if step.Dim != -1 {
			t.Error("PB never spills")
		}
	}
	if !out.Steps[len(out.Steps)-1].Completed {
		t.Error("last step must complete")
	}
}

func TestBudgetsInflatedByLambda(t *testing.T) {
	s := testutil.Space2D(t, 10)
	red := s.Reduce(0.2)
	qa := int32(s.Grid.Terminus())
	out, _ := Run(s, red, discovery.NewSimEngine(s, qa))
	for _, step := range out.Steps {
		want := s.Contours[step.Contour-1].Cost * 1.2
		if step.Budget != want {
			t.Fatalf("budget %v, want (1+λ)·CC = %v", step.Budget, want)
		}
	}
}

func TestContourOrderAndExhaustion(t *testing.T) {
	s := testutil.Space2D(t, 10)
	red := s.Reduce(0.2)
	// Terminus forces the full climb through every contour.
	out, err := Run(s, red, discovery.NewSimEngine(s, int32(s.Grid.Terminus())))
	if err != nil {
		t.Fatal(err)
	}
	maxContour := 0
	for _, step := range out.Steps {
		if step.Contour < maxContour {
			t.Fatal("contours must be ascending")
		}
		maxContour = step.Contour
	}
	// The (1+λ) budget inflation can let a plan finish one contour
	// early, but never earlier than that.
	if maxContour < len(s.Contours)-1 {
		t.Errorf("terminus should climb to contour %d or %d, got %d",
			len(s.Contours)-1, len(s.Contours), maxContour)
	}
}

func TestRunOneDFromScratch(t *testing.T) {
	s := testutil.Space2D(t, 10)
	// Pretend dimension 0 is already learned at index 4; qa on that line.
	for _, yIdx := range []int{0, 3, 9} {
		qa := int32(s.Grid.Linear([]int{4, yIdx}))
		st := discovery.NewState(2)
		st.Learn(0, 4)
		out := &discovery.Outcome{}
		if err := RunOneD(s, st, discovery.NewSimEngine(s, qa), 0, out); err != nil {
			t.Fatalf("1-D phase failed at y=%d: %v", yIdx, err)
		}
		if !out.Completed {
			t.Fatal("1-D must complete")
		}
		for _, step := range out.Steps {
			if step.Phase != discovery.PhaseOneD {
				t.Error("phase must be 1d")
			}
		}
	}
}

func TestRunOneDRejectsWrongDims(t *testing.T) {
	s := testutil.Space2D(t, 8)
	st := discovery.NewState(2) // two unlearned dims
	out := &discovery.Outcome{}
	if err := RunOneD(s, st, discovery.NewSimEngine(s, 0), 0, out); err == nil {
		t.Fatal("1-D phase with 2 unlearned dims must error")
	}
}

// In the 1-D phase each contour issues at most one execution.
func TestRunOneDOnePlanPerContour(t *testing.T) {
	s := testutil.Space2D(t, 10)
	qa := int32(s.Grid.Linear([]int{4, 9}))
	st := discovery.NewState(2)
	st.Learn(0, 4)
	out := &discovery.Outcome{}
	if err := RunOneD(s, st, discovery.NewSimEngine(s, qa), 0, out); err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for _, step := range out.Steps {
		seen[step.Contour]++
		if seen[step.Contour] > 1 {
			t.Fatal("1-D phase must execute at most one plan per contour")
		}
	}
}

package core

import (
	"fmt"

	"repro/internal/core/discovery"
)

// adaptiveSwitchStrategy is the plan-switching baseline: classic
// adaptive re-optimization expressed in ESS terms. It keeps a running
// estimate of the query location — exactly-learned coordinates where a
// spill completed, one-past-the-lower-bound elsewhere — executes the
// plan that is optimal at that estimate, and re-plans whenever an
// observation moves the estimate: a completed spill pins a coordinate
// (re-plan at the same budget), a killed spill raises a half-space
// bound (re-plan at the next budget rung).
//
// It is the mirror image of RobustMap: maximal plan agility, no
// robustness in the plan choice itself. Its worst case is also
// unguaranteed — switching plans discards the killed plans' partial
// work, the classic adaptive-processing tax the paper's algorithms
// bound and this baseline does not.
type adaptiveSwitchStrategy struct{}

func (adaptiveSwitchStrategy) Name() string { return "adaptiveswitch" }

// Prepare is a no-op: the strategy re-plans from the live POSP surface.
func (adaptiveSwitchStrategy) Prepare(c *Compiled) (any, error) { return nil, nil }

// estPoint maps the discovery state to the strategy's current location
// estimate: learned dimensions exactly, unlearned ones one grid step
// above their exclusive lower bound (index 0 when nothing is known —
// the optimistic end, so budgets start cheap).
func estPoint(st *discovery.State, res int, idx []int) []int {
	for d := range idx {
		if st.Learned[d] >= 0 {
			idx[d] = st.Learned[d]
			continue
		}
		v := st.Lower[d] + 1
		if v > res-1 {
			v = res - 1
		}
		idx[d] = v
	}
	return idx
}

// Discover climbs the budget ladder, re-planning from the observed
// selectivities before every execution.
func (adaptiveSwitchStrategy) Discover(r *Run, _ any, eng discovery.Engine) (*discovery.Outcome, error) {
	s := r.c.Source
	g := s.Geometry()
	out := &discovery.Outcome{}
	st := discovery.NewState(g.D)
	ladder := budgetLadder(s)
	idx := make([]int, g.D)
	for rung := 0; rung < len(ladder); rung++ {
		budget := ladder[rung]
		// Re-plan at this budget until an observation forces the next
		// rung. Each completed spill learns one dimension, so the inner
		// loop runs at most D+1 executions per rung.
		for {
			est := int32(g.Linear(estPoint(st, g.Res, idx)))
			pid := s.PlanAt(est)
			if aerr := discovery.AbortOf(eng); aerr != nil {
				return out, aerr
			}
			if dim := s.SpillDim(pid, st.RemMask()); dim >= 0 {
				cost, done, learned := eng.ExecSpill(pid, dim, budget)
				out.Add(discovery.Step{
					Contour: rung + 1, PlanID: pid, Dim: dim,
					Budget: budget, Cost: cost, Completed: done,
					Phase: discovery.PhaseSpill, LearnedIdx: learned,
				})
				if done {
					st.Learn(dim, learned)
					continue // estimate moved: re-plan at the same budget
				}
				st.Raise(dim, learned)
				break // this budget is spent learning qa lies beyond; next rung
			}
			cost, done := eng.ExecFull(pid, budget)
			out.Add(discovery.Step{
				Contour: rung + 1, PlanID: pid, Dim: -1,
				Budget: budget, Cost: cost, Completed: done,
				Phase: discovery.PhaseBouquet, LearnedIdx: -1,
			})
			if done {
				out.Completed = true
				return out, nil
			}
			break // killed regular execution: next rung
		}
	}
	return out, fmt.Errorf("adaptiveswitch: did not complete within %d budget rungs (query %s)",
		len(ladder), s.Query().Name)
}

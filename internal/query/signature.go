package query

import (
	"fmt"
	"strings"
)

// This file implements the canonical query-signature normalizer that
// keys the multi-tenant serving tier's compile cache and its consistent-
// hash shard ring. Two SQL texts that differ only in literal values,
// whitespace, comments, identifier/keyword case, IN-list arity, or a
// trailing semicolon canonicalize to the same string and therefore the
// same signature — the parameterized-sharing property classic plan
// caches rely on, so a herd of "same query, different constants"
// requests coalesces onto one compiled artifact.
//
// The normalizer is deliberately independent of the sqlparse package
// (which imports this one): it tokenizes just enough SQL to recognize
// identifiers, numeric and string literals, and operators, and it never
// needs a catalog — signatures must be computable before any binding
// work happens, on the serving hot path.

// Signature identifies a canonicalized query. The Hash keys caches and
// the shard ring; Canonical is the normalized text it was derived from
// (literals replaced by '?'), kept for observability and debugging.
type Signature struct {
	// Hash is the 64-bit FNV-1a hash of the canonical text, optionally
	// extended with bound parameters (see Extend).
	Hash uint64
	// Canonical is the normalized query text.
	Canonical string
}

// String renders the signature as a short hex key.
func (s Signature) String() string { return fmt.Sprintf("%016x", s.Hash) }

// Extend folds additional canonical parameters into the signature hash
// without touching the canonical text. The serving tier uses it to
// distinguish artifacts that share SQL but differ in compile-time
// inputs (error-prone-predicate sets, grid resolution, catalog scale):
// the Q91 dimensionality family, for example, shares one SQL body
// across five distinct artifacts. Extension order matters and must be
// applied consistently by every replica in a shard ring.
func (s Signature) Extend(parts ...string) Signature {
	h := s.Hash
	for _, p := range parts {
		h = fnvMix(h, p)
		h = fnvMix(h, "\x00") // unambiguous part separator
	}
	return Signature{Hash: h, Canonical: s.Canonical}
}

// ExtendUint64 folds raw 64-bit parameters into the signature hash,
// little-endian, each terminated by the same unambiguous separator
// Extend uses for strings. The serving tier's outcome cache uses it to
// grow an artifact signature into a full outcome key: the numeric
// request coordinates (grid point, worker count, fault seed, float
// bits of rate/λ, refinement epoch) extend the hash without paying a
// string formatting round-trip on the request hot path.
func (s Signature) ExtendUint64(parts ...uint64) Signature {
	h := s.Hash
	for _, p := range parts {
		for i := 0; i < 8; i++ {
			h ^= p & 0xff
			h *= 1099511628211
			p >>= 8
		}
		h = fnvMix(h, "\x00")
	}
	return Signature{Hash: h, Canonical: s.Canonical}
}

// Sign canonicalizes the SQL text and hashes it.
func Sign(sql string) (Signature, error) {
	c, err := Canonicalize(sql)
	if err != nil {
		return Signature{}, err
	}
	return Signature{Hash: fnvMix(fnvOffset, c), Canonical: c}, nil
}

const fnvOffset = uint64(14695981039346656037)

func fnvMix(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Canonicalize normalizes a SQL text: identifiers and keywords fold to
// lower case, every numeric and string literal becomes the parameter
// marker '?', IN-lists of literals collapse to a single parameter
// (arity is a literal detail, not a shape), '!=' normalizes to '<>',
// comments and the trailing semicolon disappear, and tokens are
// rejoined with single spaces ('.'-qualified names stay glued). It
// fails on characters outside the tokenizer's SQL subset, never on
// shape — canonicalization must not require a catalog or a full parse.
func Canonicalize(sql string) (string, error) {
	toks, err := sigTokens(sql)
	if err != nil {
		return "", err
	}
	if len(toks) == 0 {
		return "", fmt.Errorf("query: empty statement")
	}
	toks = collapseInLists(toks)
	var b strings.Builder
	for i, t := range toks {
		if i > 0 && !(t == "." || toks[i-1] == ".") {
			b.WriteByte(' ')
		}
		b.WriteString(t)
	}
	return b.String(), nil
}

// sigTokens lexes the text into canonical tokens: lower-cased
// identifiers, '?' for literals, and normalized operator symbols.
func sigTokens(src string) ([]string, error) {
	var toks []string
	pos := 0
	for pos < len(src) {
		c := src[pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			pos++
		case c == '-' && pos+1 < len(src) && src[pos+1] == '-':
			for pos < len(src) && src[pos] != '\n' {
				pos++
			}
		case isSigIdentStart(c):
			start := pos
			for pos < len(src) && isSigIdentPart(src[pos]) {
				pos++
			}
			toks = append(toks, strings.ToLower(src[start:pos]))
		case c >= '0' && c <= '9',
			c == '.' && pos+1 < len(src) && src[pos+1] >= '0' && src[pos+1] <= '9' && !prevIsName(toks),
			c == '-' && pos+1 < len(src) && src[pos+1] >= '0' && src[pos+1] <= '9' && !prevIsValue(toks):
			pos = scanNumber(src, pos)
			toks = append(toks, "?")
		case c == '\'':
			end, err := scanString(src, pos)
			if err != nil {
				return nil, err
			}
			pos = end
			toks = append(toks, "?")
		default:
			tok, n, err := scanSymbol(src, pos)
			if err != nil {
				return nil, err
			}
			pos += n
			if tok != "" { // trailing ';' is dropped
				toks = append(toks, tok)
			}
		}
	}
	// A ';' may only appear at the end of the statement; scanSymbol drops
	// it, so nothing more to do here.
	return toks, nil
}

func isSigIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isSigIdentPart(c byte) bool {
	return isSigIdentStart(c) || (c >= '0' && c <= '9')
}

// prevIsName reports whether the previous token is an identifier or
// qualifier dot, so "a.5" style input keeps the dot as a qualifier and
// ".5" after a name is not misread as a fractional literal.
func prevIsName(toks []string) bool {
	if len(toks) == 0 {
		return false
	}
	t := toks[len(toks)-1]
	return t == "." || isSigIdentStart(t[0])
}

// prevIsValue reports whether the previous token can end a value
// expression, in which case a following '-' is the (unsupported) binary
// minus rather than a negative-literal sign.
func prevIsValue(toks []string) bool {
	if len(toks) == 0 {
		return false
	}
	t := toks[len(toks)-1]
	return t == "?" || t == ")" || isSigIdentStart(t[0])
}

// scanNumber consumes an optionally signed decimal with an optional
// fraction and exponent, returning the position after it.
func scanNumber(src string, pos int) int {
	if src[pos] == '-' {
		pos++
	}
	digits := func() {
		for pos < len(src) && src[pos] >= '0' && src[pos] <= '9' {
			pos++
		}
	}
	digits()
	if pos < len(src) && src[pos] == '.' {
		pos++
		digits()
	}
	if pos < len(src) && (src[pos] == 'e' || src[pos] == 'E') {
		mark := pos
		pos++
		if pos < len(src) && (src[pos] == '+' || src[pos] == '-') {
			pos++
		}
		if pos < len(src) && src[pos] >= '0' && src[pos] <= '9' {
			digits()
		} else {
			pos = mark // "10e" — the e starts an identifier, not an exponent
		}
	}
	return pos
}

// scanString consumes a single-quoted SQL string with '' escapes,
// returning the position after the closing quote.
func scanString(src string, pos int) (int, error) {
	pos++ // opening quote
	for pos < len(src) {
		if src[pos] == '\'' {
			if pos+1 < len(src) && src[pos+1] == '\'' {
				pos += 2 // escaped quote
				continue
			}
			return pos + 1, nil
		}
		pos++
	}
	return 0, fmt.Errorf("query: unterminated string literal")
}

// scanSymbol consumes one operator or punctuation token, normalizing
// '!=' to '<>' and dropping statement-terminating semicolons.
func scanSymbol(src string, pos int) (tok string, n int, err error) {
	if pos+2 <= len(src) {
		switch src[pos : pos+2] {
		case "<=", ">=", "<>":
			return src[pos : pos+2], 2, nil
		case "!=":
			return "<>", 2, nil
		}
	}
	switch c := src[pos]; c {
	case ',', '.', '*', '=', '<', '>', '(', ')':
		return string(c), 1, nil
	case '?':
		// Pre-parameterized text (and our own canonical output) carries
		// explicit markers; accepting them makes Canonicalize idempotent.
		return "?", 1, nil
	case ';':
		return "", 1, nil
	}
	return "", 0, fmt.Errorf("query: unexpected character %q at offset %d", src[pos], pos)
}

// collapseInLists rewrites "in ( ? , ? , ... )" runs to "in ( ? )", so
// IN-list arity — a literal detail — does not split signatures.
func collapseInLists(toks []string) []string {
	out := toks[:0:0]
	for i := 0; i < len(toks); i++ {
		out = append(out, toks[i])
		if toks[i] != "in" || i+1 >= len(toks) || toks[i+1] != "(" {
			continue
		}
		// Find a run of parameters and commas up to the closing paren.
		j := i + 2
		params := 0
		for ; j < len(toks); j++ {
			if toks[j] == "?" || toks[j] == "," {
				if toks[j] == "?" {
					params++
				}
				continue
			}
			break
		}
		if params > 0 && j < len(toks) && toks[j] == ")" {
			out = append(out, "(", "?", ")")
			i = j
		}
	}
	return out
}

package query

import (
	"strings"
	"testing"
)

func TestCanonicalizeBasics(t *testing.T) {
	got, err := Canonicalize(`
SELECT *
FROM store_sales ss, item i -- a comment
WHERE ss.ss_item_sk = i.item_sk
  AND i.i_current_price < 100;`)
	if err != nil {
		t.Fatal(err)
	}
	want := "select * from store_sales ss , item i where ss.ss_item_sk = i.item_sk and i.i_current_price < ?"
	if got != want {
		t.Fatalf("canonical text:\n got %q\nwant %q", got, want)
	}
}

// Semantically identical variants — literal values, whitespace,
// comments, keyword/identifier case, IN-list arity, != vs <>, trailing
// semicolon — must hash identically; shape changes must not.
func TestSignatureEquivalenceClasses(t *testing.T) {
	base := "SELECT * FROM t a, u b WHERE a.x = b.y AND a.z < 10 AND a.w IN (1, 2, 3)"
	variants := []string{
		"select * from t a, u b where a.x = b.y and a.z < 99 and a.w in (7)",
		"SELECT *\n\tFROM t a , u b\nWHERE a.x=b.y AND a.z<10 AND a.w IN(1,2,3);",
		"SELECT * FROM T A, U B WHERE A.X = B.Y AND A.Z < 10 AND A.W IN (4, 5)",
		"select * from t a, u b -- herd\nwhere a.x = b.y and a.z < 0.5 and a.w in (1)",
	}
	sig, err := Sign(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range variants {
		vs, err := Sign(v)
		if err != nil {
			t.Fatalf("%q: %v", v, err)
		}
		if vs.Hash != sig.Hash || vs.Canonical != sig.Canonical {
			t.Fatalf("variant %q canonicalized to %q, want %q", v, vs.Canonical, sig.Canonical)
		}
	}
	for _, different := range []string{
		"SELECT * FROM t a, u b WHERE a.x = b.y AND a.z > 10 AND a.w IN (1)",   // operator
		"SELECT * FROM t a, u c WHERE a.x = c.y AND a.z < 10 AND a.w IN (1)",   // alias
		"SELECT * FROM t a, u b WHERE a.x = b.y AND a.z < 10 AND a.q IN (1)",   // column
		"SELECT * FROM t a, u b WHERE a.x = b.y AND a.z != 10 AND a.w IN (1)",  // shape (<> vs <)
		"SELECT * FROM t a, u b, v c WHERE a.x = b.y AND a.z < 10 AND c.x = 1", // extra relation
	} {
		ds, err := Sign(different)
		if err != nil {
			t.Fatalf("%q: %v", different, err)
		}
		if ds.Hash == sig.Hash {
			t.Fatalf("shape change %q collided with base signature", different)
		}
	}
}

func TestSignatureStringsAndNumbers(t *testing.T) {
	a, err := Sign("SELECT * FROM t x WHERE x.name = 'Alice''s' AND x.v = -3.5e2")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sign("select * from t x where x.name = 'BOB' and x.v = 17")
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash != b.Hash {
		t.Fatalf("literal-only variants differ:\n%q\n%q", a.Canonical, b.Canonical)
	}
	if !strings.Contains(a.Canonical, "x.name = ?") {
		t.Fatalf("string literal not parameterized: %q", a.Canonical)
	}
}

func TestCanonicalizeErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"   -- only a comment",
		"SELECT * FROM t WHERE x = 'unterminated",
		"SELECT $ FROM t",
	} {
		if _, err := Canonicalize(bad); err == nil {
			t.Fatalf("Canonicalize(%q) succeeded, want error", bad)
		}
	}
}

func TestSignatureExtend(t *testing.T) {
	sig, err := Sign("SELECT * FROM t a, u b WHERE a.x = b.y")
	if err != nil {
		t.Fatal(err)
	}
	e1 := sig.Extend("epp:a.x=b.y")
	e2 := sig.Extend("epp:a.x=b.y", "res:8")
	if e1.Hash == sig.Hash || e2.Hash == sig.Hash || e1.Hash == e2.Hash {
		t.Fatalf("Extend did not separate hashes: %v %v %v", sig, e1, e2)
	}
	if e1.Canonical != sig.Canonical {
		t.Fatal("Extend must not change the canonical text")
	}
	// Extension is order-sensitive and deterministic.
	if sig.Extend("a", "b").Hash != sig.Extend("a", "b").Hash {
		t.Fatal("Extend is not deterministic")
	}
	if sig.Extend("a", "b").Hash == sig.Extend("b", "a").Hash {
		t.Fatal("Extend must be order-sensitive")
	}
	// Part boundaries are unambiguous: ("ab") != ("a","b").
	if sig.Extend("ab").Hash == sig.Extend("a", "b").Hash {
		t.Fatal("Extend part boundaries are ambiguous")
	}
}

func TestSignatureExtendUint64(t *testing.T) {
	sig, err := Sign("SELECT * FROM t a, u b WHERE a.x = b.y")
	if err != nil {
		t.Fatal(err)
	}
	e1 := sig.ExtendUint64(7)
	e2 := sig.ExtendUint64(7, 8)
	if e1.Hash == sig.Hash || e2.Hash == sig.Hash || e1.Hash == e2.Hash {
		t.Fatalf("ExtendUint64 did not separate hashes: %v %v %v", sig, e1, e2)
	}
	if e1.Canonical != sig.Canonical {
		t.Fatal("ExtendUint64 must not change the canonical text")
	}
	if sig.ExtendUint64(1, 2).Hash != sig.ExtendUint64(1, 2).Hash {
		t.Fatal("ExtendUint64 is not deterministic")
	}
	if sig.ExtendUint64(1, 2).Hash == sig.ExtendUint64(2, 1).Hash {
		t.Fatal("ExtendUint64 must be order-sensitive")
	}
	// Every part consumes a fixed eight bytes plus a separator, so
	// adjacent parts can never alias across the boundary the way
	// variable-width encodings could.
	if sig.ExtendUint64(0).Hash == sig.ExtendUint64(0, 0).Hash {
		t.Fatal("ExtendUint64 part boundaries are ambiguous")
	}
	// A zero value is distinct from no extension at all.
	if sig.ExtendUint64().Hash != sig.Hash {
		t.Fatal("ExtendUint64 with no parts must be the identity")
	}
	// Single-bit sensitivity at both ends of the word.
	if sig.ExtendUint64(1).Hash == sig.ExtendUint64(1<<63).Hash {
		t.Fatal("ExtendUint64 must fold all eight bytes")
	}
	// String and uint64 extensions occupy separate domains.
	if sig.Extend("\x07").Hash == sig.ExtendUint64(7).Hash {
		t.Fatal("ExtendUint64 must not collide with Extend on equal bytes")
	}
}

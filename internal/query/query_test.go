package query

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
)

func cat() *catalog.Catalog {
	c, err := catalog.TPCDS(1)
	if err != nil {
		panic(err)
	}
	return c
}

func valid() *Query {
	return &Query{
		Name: "t",
		Cat:  cat(),
		Relations: []Relation{
			{Table: "catalog_sales", Alias: "cs"},
			{Table: "date_dim", Alias: "d", Filters: []FilterPred{{Column: "d_year", Op: expr.EQ, Value: 2000}}},
			{Table: "customer", Alias: "c"},
		},
		Joins: []Join{
			{ID: 0, LeftRel: 0, RightRel: 1, LeftCol: "cs_sold_date_sk", RightCol: "date_dim_sk"},
			{ID: 1, LeftRel: 0, RightRel: 2, LeftCol: "cs_bill_customer_sk", RightCol: "c_customer_sk"},
		},
		EPPs: []int{0, 1},
	}
}

func TestValidateOK(t *testing.T) {
	if err := valid().Validate(); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
}

func TestD(t *testing.T) {
	if valid().D() != 2 {
		t.Fatal("D should equal number of epps")
	}
}

func TestRelIndex(t *testing.T) {
	q := valid()
	if q.RelIndex("d") != 1 || q.RelIndex("cs") != 0 || q.RelIndex("nope") != -1 {
		t.Fatal("RelIndex broken")
	}
}

func TestEPPDim(t *testing.T) {
	q := valid()
	if q.EPPDim(0) != 0 || q.EPPDim(1) != 1 {
		t.Fatal("EPPDim broken")
	}
	q.EPPs = []int{1}
	if q.EPPDim(0) != -1 || q.EPPDim(1) != 0 {
		t.Fatal("EPPDim after re-mark broken")
	}
}

func TestJoinsOf(t *testing.T) {
	q := valid()
	if got := q.JoinsOf(0); len(got) != 2 {
		t.Fatalf("JoinsOf(cs) = %v, want both joins", got)
	}
	if got := q.JoinsOf(1); len(got) != 1 || got[0] != 0 {
		t.Fatalf("JoinsOf(d) = %v", got)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Query)
		want   string
	}{
		{"no relations", func(q *Query) { q.Relations = nil }, "no relations"},
		{"empty alias", func(q *Query) { q.Relations[0].Alias = "" }, "empty alias"},
		{"dup alias", func(q *Query) { q.Relations[1].Alias = "cs" }, "duplicate alias"},
		{"unknown table", func(q *Query) { q.Relations[0].Table = "zzz" }, "unknown table"},
		{"bad filter col", func(q *Query) { q.Relations[1].Filters[0].Column = "nope" }, "not found"},
		{"bad join id", func(q *Query) { q.Joins[1].ID = 5 }, "has ID"},
		{"endpoint range", func(q *Query) { q.Joins[0].LeftRel = 9 }, "out of range"},
		{"self loop", func(q *Query) { q.Joins[0].RightRel = 0 }, "self-loop"},
		{"bad left col", func(q *Query) { q.Joins[0].LeftCol = "zz" }, "left column"},
		{"bad right col", func(q *Query) { q.Joins[0].RightCol = "zz" }, "right column"},
		{"disconnected", func(q *Query) { q.Joins = q.Joins[:1] }, "disconnected"},
		{"epp range", func(q *Query) { q.EPPs = []int{7} }, "out of range"},
		{"dup epp", func(q *Query) { q.EPPs = []int{0, 0} }, "duplicate epp"},
	}
	for _, c := range cases {
		q := valid()
		c.mutate(q)
		err := q.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

func TestStringRendersEPPStar(t *testing.T) {
	q := valid()
	q.EPPs = []int{1}
	s := q.String()
	if !strings.Contains(s, "cs.cs_bill_customer_sk=c.c_customer_sk*") {
		t.Errorf("String() = %q, epp join should be starred", s)
	}
	if strings.Contains(s, "date_dim_sk*") {
		t.Errorf("String() = %q, non-epp join starred", s)
	}
}

func TestFilterPredString(t *testing.T) {
	f := FilterPred{Column: "d_year", Op: expr.LE, Value: 2000}
	if f.String() != "d_year <= 2000" {
		t.Errorf("FilterPred.String() = %q", f.String())
	}
}

func TestSingleRelationQueryIsConnected(t *testing.T) {
	q := &Query{Name: "one", Cat: cat(), Relations: []Relation{{Table: "store", Alias: "s"}}}
	if err := q.Validate(); err != nil {
		t.Fatalf("single-relation query should validate: %v", err)
	}
}

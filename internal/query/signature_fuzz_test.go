package query

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzSignature drives the query-signature canonicalizer with arbitrary
// bytes: it must never panic, and for every input it accepts, the
// case-folded and whitespace-mangled variants of that input — which are
// semantically identical under the canonicalizer's contract — must
// produce the identical signature. (Literal-value variants are pinned
// by the unit tests; they cannot be derived generically from arbitrary
// fuzz input.)
func FuzzSignature(f *testing.F) {
	f.Add("SELECT * FROM t a, u b WHERE a.x = b.y AND a.z < 10")
	f.Add("select * from store_sales ss, item i where ss.ss_item_sk = i.item_sk and i.i_current_price < 100;")
	f.Add("SELECT * FROM t x WHERE x.name = 'Alice''s' AND x.v IN (1, 2, 3)")
	f.Add("SELECT * FROM t x WHERE x.v = -3.5e2 -- comment")
	f.Add("x<>y")
	f.Add("'")
	f.Add("in(1,2)")
	f.Fuzz(func(t *testing.T, src string) {
		sig, err := Sign(src)
		if err != nil {
			return // rejected inputs just must not panic
		}
		again, err := Sign(src)
		if err != nil || again != sig {
			t.Fatalf("Sign is not deterministic on %q: %v vs %v (%v)", src, sig, again, err)
		}
		// Case variant: only safe when folding is byte-wise reversible,
		// i.e. pure ASCII (Unicode case folding can merge identifiers).
		if isASCII(src) {
			upper, err := Sign(strings.ToUpper(src))
			if err != nil {
				t.Fatalf("accepted %q but rejected its upper-case variant: %v", src, err)
			}
			if upper.Hash != sig.Hash {
				t.Fatalf("case variant of %q changed signature: %q vs %q",
					src, upper.Canonical, sig.Canonical)
			}
		}
		// Whitespace variant: re-join the canonical text with mixed
		// whitespace; it must round-trip to the same signature.
		mangled := strings.ReplaceAll(sig.Canonical, " ", "\n\t  ")
		ws, err := Sign(mangled)
		if err != nil {
			t.Fatalf("canonical text of %q does not re-canonicalize: %v", src, err)
		}
		if ws.Hash != sig.Hash {
			t.Fatalf("whitespace variant changed signature for %q: %q vs %q",
				src, ws.Canonical, sig.Canonical)
		}
	})
}

func isASCII(s string) bool {
	for _, r := range s {
		if r > unicode.MaxASCII {
			return false
		}
	}
	return true
}

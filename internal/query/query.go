// Package query defines the logical model of the SPJ queries the system
// processes: base relations with conjunctive filter predicates, and
// equi-join predicates, a subset of which are declared error-prone
// (epps). The epps induce the Error-prone Selectivity Space explored by
// the robust processing algorithms.
package query

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/expr"
)

// FilterPred is a simple comparison between a column and a literal
// (e.g. "p_retailprice < 1000") or an IN-list membership test. Filters
// are assumed accurately estimable (the paper's setting: only join
// selectivities are error-prone).
type FilterPred struct {
	// Column is the unqualified column name on the relation.
	Column string
	// Op is the comparison operator; ignored when Values is set.
	Op expr.CmpOp
	// Value is the literal right-hand side of a comparison.
	Value int64
	// Values, when non-empty, makes the predicate an IN-list test.
	Values []int64
}

// IsIn reports whether the predicate is an IN-list test.
func (f FilterPred) IsIn() bool { return len(f.Values) > 0 }

// String renders the predicate.
func (f FilterPred) String() string {
	if f.IsIn() {
		parts := make([]string, len(f.Values))
		for i, v := range f.Values {
			parts[i] = fmt.Sprintf("%d", v)
		}
		return fmt.Sprintf("%s IN (%s)", f.Column, strings.Join(parts, ", "))
	}
	return fmt.Sprintf("%s %s %d", f.Column, f.Op, f.Value)
}

// Relation is one base-relation occurrence in the query.
type Relation struct {
	// Table is the catalog table name.
	Table string
	// Alias is the unique name of this occurrence within the query;
	// defaults to Table when the SQL has no alias.
	Alias string
	// Filters are the conjunctive local predicates on this relation.
	Filters []FilterPred
}

// Join is one equi-join predicate between two relation occurrences.
type Join struct {
	// ID is the join's ordinal in Query.Joins.
	ID int
	// LeftRel/RightRel are indexes into Query.Relations.
	LeftRel, RightRel int
	// LeftCol/RightCol are the join column names on each side.
	LeftCol, RightCol string
}

// Query is a select-project-join query over a catalog.
type Query struct {
	// Name labels the query in experiment reports (e.g. "4D_Q91").
	Name string
	// Cat is the catalog the query is bound to.
	Cat *catalog.Catalog
	// Relations are the base relation occurrences.
	Relations []Relation
	// Joins are the equi-join predicates; Joins[i].ID == i.
	Joins []Join
	// EPPs lists the error-prone join IDs; its order defines the ESS
	// dimensions (EPPs[d] is dimension d).
	EPPs []int
}

// D returns the ESS dimensionality (number of epps).
func (q *Query) D() int { return len(q.EPPs) }

// RelIndex returns the ordinal of the relation with the given alias, or -1.
func (q *Query) RelIndex(alias string) int {
	for i := range q.Relations {
		if q.Relations[i].Alias == alias {
			return i
		}
	}
	return -1
}

// EPPDim returns the ESS dimension of join id j, or -1 if j is not an epp.
func (q *Query) EPPDim(joinID int) int {
	for d, id := range q.EPPs {
		if id == joinID {
			return d
		}
	}
	return -1
}

// JoinsOf returns the IDs of the joins incident on relation rel.
func (q *Query) JoinsOf(rel int) []int {
	var out []int
	for _, j := range q.Joins {
		if j.LeftRel == rel || j.RightRel == rel {
			out = append(out, j.ID)
		}
	}
	return out
}

// Validate checks structural well-formedness: aliases unique, join
// endpoints and columns resolve, join graph connected, epps valid.
func (q *Query) Validate() error {
	if len(q.Relations) == 0 {
		return fmt.Errorf("query %s: no relations", q.Name)
	}
	seen := make(map[string]bool)
	for i, r := range q.Relations {
		if r.Alias == "" {
			return fmt.Errorf("query %s: relation %d has empty alias", q.Name, i)
		}
		if seen[r.Alias] {
			return fmt.Errorf("query %s: duplicate alias %q", q.Name, r.Alias)
		}
		seen[r.Alias] = true
		t := q.Cat.Table(r.Table)
		if t == nil {
			return fmt.Errorf("query %s: unknown table %q", q.Name, r.Table)
		}
		for _, f := range r.Filters {
			if t.ColumnIndex(f.Column) < 0 {
				return fmt.Errorf("query %s: filter column %s.%s not found", q.Name, r.Alias, f.Column)
			}
		}
	}
	for i, j := range q.Joins {
		if j.ID != i {
			return fmt.Errorf("query %s: join %d has ID %d", q.Name, i, j.ID)
		}
		if j.LeftRel < 0 || j.LeftRel >= len(q.Relations) || j.RightRel < 0 || j.RightRel >= len(q.Relations) {
			return fmt.Errorf("query %s: join %d endpoint out of range", q.Name, i)
		}
		if j.LeftRel == j.RightRel {
			return fmt.Errorf("query %s: join %d is a self-loop", q.Name, i)
		}
		lt := q.Cat.MustTable(q.Relations[j.LeftRel].Table)
		rt := q.Cat.MustTable(q.Relations[j.RightRel].Table)
		if lt.ColumnIndex(j.LeftCol) < 0 {
			return fmt.Errorf("query %s: join %d left column %s not in %s", q.Name, i, j.LeftCol, lt.Name)
		}
		if rt.ColumnIndex(j.RightCol) < 0 {
			return fmt.Errorf("query %s: join %d right column %s not in %s", q.Name, i, j.RightCol, rt.Name)
		}
	}
	if len(q.Relations) > 1 && !q.connected() {
		return fmt.Errorf("query %s: join graph is disconnected", q.Name)
	}
	eppSeen := make(map[int]bool)
	for _, e := range q.EPPs {
		if e < 0 || e >= len(q.Joins) {
			return fmt.Errorf("query %s: epp join id %d out of range", q.Name, e)
		}
		if eppSeen[e] {
			return fmt.Errorf("query %s: duplicate epp %d", q.Name, e)
		}
		eppSeen[e] = true
	}
	return nil
}

func (q *Query) connected() bool {
	n := len(q.Relations)
	adj := make([][]int, n)
	for _, j := range q.Joins {
		adj[j.LeftRel] = append(adj[j.LeftRel], j.RightRel)
		adj[j.RightRel] = append(adj[j.RightRel], j.LeftRel)
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == n
}

// String renders a compact description of the query for reports.
func (q *Query) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: ", q.Name)
	for i, r := range q.Relations {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(r.Alias)
	}
	b.WriteString(" | joins:")
	for _, j := range q.Joins {
		epp := ""
		if q.EPPDim(j.ID) >= 0 {
			epp = "*"
		}
		fmt.Fprintf(&b, " %s.%s=%s.%s%s",
			q.Relations[j.LeftRel].Alias, j.LeftCol,
			q.Relations[j.RightRel].Alias, j.RightCol, epp)
	}
	return b.String()
}

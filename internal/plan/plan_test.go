package plan

import (
	"strings"
	"testing"
)

// buildTestPlan constructs:
//
//	HJ[2]( INL[1](SS(0), IS(1)), SS(2) )
//
// i.e. (R0 ⋈inl R1) ⋈hj R2, with R2 on the build side.
func buildTestPlan() *Node {
	inl := NewJoin(IndexNLJoin, []int{1}, NewScan(0, SeqScan), NewScan(1, IndexScan))
	return NewJoin(HashJoin, []int{2}, inl, NewScan(2, SeqScan))
}

func TestMethodStrings(t *testing.T) {
	if SeqScan.String() != "SS" || IndexScan.String() != "IS" {
		t.Error("scan method names")
	}
	if HashJoin.String() != "HJ" || MergeJoin.String() != "MJ" || IndexNLJoin.String() != "INL" || NLJoin.String() != "NL" {
		t.Error("join method names")
	}
	if !strings.Contains(ScanMethod(9).String(), "9") || !strings.Contains(JoinMethod(9).String(), "9") {
		t.Error("unknown method display")
	}
}

func TestRelsBitsets(t *testing.T) {
	p := buildTestPlan()
	if p.Rels != 0b111 {
		t.Errorf("root Rels = %b, want 111", p.Rels)
	}
	if p.NumRels() != 3 {
		t.Errorf("NumRels = %d", p.NumRels())
	}
	if p.Left.Rels != 0b011 || p.Right.Rels != 0b100 {
		t.Error("child Rels wrong")
	}
}

func TestSignature(t *testing.T) {
	p := buildTestPlan()
	want := "HJ[2](INL[1](SS(0),IS(1)),SS(2))"
	if got := p.Signature(); got != want {
		t.Errorf("Signature = %q, want %q", got, want)
	}
	// Signatures distinguish methods and shapes.
	q := NewJoin(MergeJoin, []int{2}, p.Left, p.Right)
	if q.Signature() == p.Signature() {
		t.Error("different methods must have different signatures")
	}
}

func TestWalkPostOrder(t *testing.T) {
	p := buildTestPlan()
	var seen []string
	p.Walk(func(n *Node) {
		if n.IsScan() {
			seen = append(seen, n.Scan.Method.String())
		} else {
			seen = append(seen, n.Join.Method.String())
		}
	})
	want := []string{"SS", "IS", "INL", "SS", "HJ"}
	if len(seen) != len(want) {
		t.Fatalf("walk visited %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("walk order %v, want %v", seen, want)
		}
	}
}

func TestFindJoinNode(t *testing.T) {
	p := buildTestPlan()
	if n := p.FindJoinNode(1); n == nil || n.Join.Method != IndexNLJoin {
		t.Error("FindJoinNode(1) should be the INL node")
	}
	if n := p.FindJoinNode(2); n == nil || n.Join.Method != HashJoin {
		t.Error("FindJoinNode(2) should be the HJ node")
	}
	if p.FindJoinNode(99) != nil {
		t.Error("missing join should be nil")
	}
}

func TestValidateOK(t *testing.T) {
	if err := buildTestPlan().Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	overlap := &Node{
		Join:  &JoinSpec{Method: HashJoin, JoinIDs: []int{0}},
		Left:  NewScan(0, SeqScan),
		Right: NewScan(0, SeqScan),
		Rels:  1,
	}
	if err := overlap.Validate(); err == nil {
		t.Error("overlapping children should fail")
	}

	badINL := NewJoin(IndexNLJoin, []int{0},
		NewScan(0, SeqScan),
		NewJoin(HashJoin, []int{1}, NewScan(1, SeqScan), NewScan(2, SeqScan)))
	if err := badINL.Validate(); err == nil {
		t.Error("IndexNLJoin with non-leaf inner should fail")
	}

	noPred := &Node{
		Join:  &JoinSpec{Method: HashJoin},
		Left:  NewScan(0, SeqScan),
		Right: NewScan(1, SeqScan),
		Rels:  0b11,
	}
	if err := noPred.Validate(); err == nil {
		t.Error("join without predicates should fail")
	}

	empty := &Node{}
	if err := empty.Validate(); err == nil {
		t.Error("empty node should fail")
	}

	scanKids := NewScan(0, SeqScan)
	scanKids.Left = NewScan(1, SeqScan)
	if err := scanKids.Validate(); err == nil {
		t.Error("scan with children should fail")
	}

	halfJoin := &Node{Join: &JoinSpec{Method: HashJoin, JoinIDs: []int{0}}, Left: NewScan(0, SeqScan), Rels: 1}
	if err := halfJoin.Validate(); err == nil {
		t.Error("join missing a child should fail")
	}

	badRels := NewJoin(HashJoin, []int{0}, NewScan(0, SeqScan), NewScan(1, SeqScan))
	badRels.Rels = 0b1
	if err := badRels.Validate(); err == nil {
		t.Error("inconsistent Rels should fail")
	}
}

func TestPipelinesHashJoin(t *testing.T) {
	// HJ(SS(0), SS(1)): build pipeline = [SS(1)], probe = [SS(0), HJ].
	p := NewJoin(HashJoin, []int{0}, NewScan(0, SeqScan), NewScan(1, SeqScan))
	ps := Pipelines(p)
	if len(ps) != 2 {
		t.Fatalf("pipelines = %d, want 2", len(ps))
	}
	if len(ps[0].Nodes) != 1 || !ps[0].Nodes[0].IsScan() || ps[0].Nodes[0].Scan.Rel != 1 {
		t.Error("first pipeline should be the build side scan")
	}
	if len(ps[1].Nodes) != 2 || ps[1].Nodes[1] != p {
		t.Error("second pipeline should be probe scan + join")
	}
}

func TestPipelinesMergeJoin(t *testing.T) {
	p := NewJoin(MergeJoin, []int{0}, NewScan(0, SeqScan), NewScan(1, SeqScan))
	ps := Pipelines(p)
	// sort-left, sort-right, merge.
	if len(ps) != 3 {
		t.Fatalf("pipelines = %d, want 3", len(ps))
	}
	if ps[0].Nodes[0].Scan.Rel != 0 || ps[1].Nodes[0].Scan.Rel != 1 {
		t.Error("sort pipelines out of order")
	}
	if len(ps[2].Nodes) != 1 || ps[2].Nodes[0] != p {
		t.Error("merge pipeline should contain only the join")
	}
}

func TestPipelinesIndexNLJoin(t *testing.T) {
	p := NewJoin(IndexNLJoin, []int{0}, NewScan(0, SeqScan), NewScan(1, IndexScan))
	ps := Pipelines(p)
	if len(ps) != 1 {
		t.Fatalf("pipelines = %d, want 1 (INL streams)", len(ps))
	}
	if len(ps[0].Nodes) != 2 || ps[0].Nodes[1] != p {
		t.Error("INL should extend the outer pipeline")
	}
}

func TestPipelinesNLJoin(t *testing.T) {
	p := NewJoin(NLJoin, []int{0}, NewScan(0, SeqScan), NewScan(1, SeqScan))
	ps := Pipelines(p)
	if len(ps) != 2 {
		t.Fatalf("pipelines = %d, want 2", len(ps))
	}
	if ps[0].Nodes[0].Scan.Rel != 1 {
		t.Error("inner materialization should run first")
	}
}

func TestPipelinesNested(t *testing.T) {
	// HJ[3]( MJ[1](SS0,SS1), HJ[2](SS2,SS3) )
	mj := NewJoin(MergeJoin, []int{1}, NewScan(0, SeqScan), NewScan(1, SeqScan))
	hj2 := NewJoin(HashJoin, []int{2}, NewScan(2, SeqScan), NewScan(3, SeqScan))
	root := NewJoin(HashJoin, []int{3}, mj, hj2)
	ps := Pipelines(root)
	// Build side (hj2) first: [SS3], [SS2, HJ2]; then probe (mj):
	// [SS0], [SS1], [MJ, root].
	if len(ps) != 5 {
		t.Fatalf("pipelines = %d, want 5", len(ps))
	}
	last := ps[4].Nodes
	if len(last) != 2 || last[0] != mj || last[1] != root {
		t.Error("final pipeline should be merge join extended through root")
	}
}

func allEPP(int) bool { return true }

func TestEPPOrderHashBuildFirst(t *testing.T) {
	// Build-side epps precede probe-side epps (inter-pipeline rule).
	hjInner := NewJoin(HashJoin, []int{1}, NewScan(2, SeqScan), NewScan(3, SeqScan))
	root := NewJoin(HashJoin, []int{0}, NewScan(0, SeqScan), hjInner)
	// root's build side is hjInner: pipelines = [SS3], [SS2, HJ1], [SS0, root].
	order := EPPOrder(root, allEPP)
	if len(order) != 2 || order[0] != 1 || order[1] != 0 {
		t.Fatalf("EPPOrder = %v, want [1 0]", order)
	}
}

func TestEPPOrderIntraPipeline(t *testing.T) {
	// Two INL joins stacked in one pipeline: upstream (deeper) first.
	inner := NewJoin(IndexNLJoin, []int{0}, NewScan(0, SeqScan), NewScan(1, IndexScan))
	root := NewJoin(IndexNLJoin, []int{1}, inner, NewScan(2, IndexScan))
	order := EPPOrder(root, allEPP)
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("EPPOrder = %v, want [0 1]", order)
	}
}

func TestEPPOrderFiltering(t *testing.T) {
	p := buildTestPlan() // joins 1 (INL, probe pipeline) and 2 (HJ)
	order := EPPOrder(p, func(j int) bool { return j == 2 })
	if len(order) != 1 || order[0] != 2 {
		t.Fatalf("filtered EPPOrder = %v", order)
	}
}

func TestSpillJoin(t *testing.T) {
	p := buildTestPlan()
	// Pipelines: [SS(2)] (build), [SS(0), INL, HJ]. Total order: 1, 2.
	if got := SpillJoin(p, map[int]bool{1: true, 2: true}); got != 1 {
		t.Errorf("SpillJoin = %d, want 1", got)
	}
	// After learning 1, spill target moves to 2.
	if got := SpillJoin(p, map[int]bool{2: true}); got != 2 {
		t.Errorf("SpillJoin = %d, want 2", got)
	}
	if got := SpillJoin(p, map[int]bool{}); got != -1 {
		t.Errorf("SpillJoin with nothing remaining = %d, want -1", got)
	}
}

func TestSpillSubtree(t *testing.T) {
	p := buildTestPlan()
	sub := SpillSubtree(p, 1)
	if sub == nil || sub.Join.Method != IndexNLJoin {
		t.Fatal("SpillSubtree(1) should be the INL node")
	}
	if sub.NumRels() != 2 {
		t.Error("spill subtree should cover R0 and R1")
	}
	if SpillSubtree(p, 42) != nil {
		t.Error("missing join yields nil subtree")
	}
}

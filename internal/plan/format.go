package plan

import (
	"fmt"
	"strings"

	"repro/internal/query"
)

// Format renders the plan as an indented operator tree, resolving
// relation indexes and join predicates against the query:
//
//	HashJoin [cs.cs_sold_date_sk = d.date_dim_sk]
//	├─ IndexNLJoin [cs.cs_bill_customer_sk = c.c_customer_sk]
//	│  ├─ SeqScan catalog_sales AS cs
//	│  └─ IndexScan customer AS c
//	└─ SeqScan date_dim AS d
func Format(n *Node, q *query.Query) string {
	var b strings.Builder
	format(n, q, &b, "", "")
	return b.String()
}

func format(n *Node, q *query.Query, b *strings.Builder, prefix, childPrefix string) {
	b.WriteString(prefix)
	if n.IsScan() {
		r := &q.Relations[n.Scan.Rel]
		name := scanName(n.Scan.Method)
		fmt.Fprintf(b, "%s %s", name, r.Table)
		if r.Alias != r.Table {
			fmt.Fprintf(b, " AS %s", r.Alias)
		}
		if len(r.Filters) > 0 {
			var parts []string
			for _, f := range r.Filters {
				parts = append(parts, f.String())
			}
			fmt.Fprintf(b, " (%s)", strings.Join(parts, " AND "))
		}
		b.WriteByte('\n')
		return
	}
	fmt.Fprintf(b, "%s [%s]\n", joinName(n.Join.Method), joinPreds(n, q))
	format(n.Left, q, b, childPrefix+"├─ ", childPrefix+"│  ")
	format(n.Right, q, b, childPrefix+"└─ ", childPrefix+"   ")
}

func scanName(m ScanMethod) string {
	switch m {
	case SeqScan:
		return "SeqScan"
	case IndexScan:
		return "IndexScan"
	default:
		return m.String()
	}
}

func joinName(m JoinMethod) string {
	switch m {
	case HashJoin:
		return "HashJoin"
	case MergeJoin:
		return "MergeJoin"
	case IndexNLJoin:
		return "IndexNLJoin"
	case NLJoin:
		return "NestedLoops"
	default:
		return m.String()
	}
}

func joinPreds(n *Node, q *query.Query) string {
	var parts []string
	for _, id := range n.Join.JoinIDs {
		j := q.Joins[id]
		star := ""
		if q.EPPDim(id) >= 0 {
			star = "*"
		}
		parts = append(parts, fmt.Sprintf("%s.%s = %s.%s%s",
			q.Relations[j.LeftRel].Alias, j.LeftCol,
			q.Relations[j.RightRel].Alias, j.RightCol, star))
	}
	return strings.Join(parts, " AND ")
}

// FormatPipelines renders the plan's pipeline decomposition, one line
// per pipeline in execution order.
func FormatPipelines(root *Node, q *query.Query) string {
	var b strings.Builder
	for i, p := range Pipelines(root) {
		fmt.Fprintf(&b, "L%d:", i+1)
		for _, n := range p.Nodes {
			if n.IsScan() {
				fmt.Fprintf(&b, " %s(%s)", n.Scan.Method, q.Relations[n.Scan.Rel].Alias)
			} else {
				fmt.Fprintf(&b, " %s[%d]", n.Join.Method, n.Join.JoinIDs[0])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

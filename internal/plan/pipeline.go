package plan

// Pipeline is a maximal concurrently-executing operator chain of a plan,
// per the execution model of §3.1.1: blocking operators (hash build,
// sort, materialize) terminate pipelines, and pipelines execute one at a
// time in a fixed order.
type Pipeline struct {
	// Nodes in upstream-to-downstream order (deepest first).
	Nodes []*Node
}

// Pipelines decomposes the plan into its pipelines in execution order.
//
// The decomposition rules mirror the iterator model:
//
//   - A scan starts a streaming pipeline.
//   - HashJoin: the build (right) side's pipelines run first — the last
//     of them ends blocked at the hash-table build — then the probe
//     (left) side's pipelines run, with this join appended to the probe
//     side's final streaming pipeline.
//   - MergeJoin: both children's pipelines run (each ending blocked at a
//     sort), then a fresh merge pipeline containing this node runs.
//   - IndexNLJoin: the inner side is index lookups (no pipeline of its
//     own); this node extends the outer side's final pipeline.
//   - NLJoin: the inner side's pipelines run first (ending blocked at a
//     materialize), then this node extends the outer side's final
//     pipeline.
func Pipelines(root *Node) []Pipeline {
	done, open := decompose(root)
	return append(done, Pipeline{Nodes: open})
}

// decompose returns the completed pipelines of the subtree in execution
// order, plus the still-open streaming chain ending at n.
func decompose(n *Node) (done []Pipeline, open []*Node) {
	if n.IsScan() {
		return nil, []*Node{n}
	}
	switch n.Join.Method {
	case HashJoin:
		bDone, bOpen := decompose(n.Right)
		done = append(done, bDone...)
		done = append(done, Pipeline{Nodes: bOpen}) // blocked at build
		pDone, pOpen := decompose(n.Left)
		done = append(done, pDone...)
		return done, append(pOpen, n)
	case MergeJoin:
		lDone, lOpen := decompose(n.Left)
		done = append(done, lDone...)
		done = append(done, Pipeline{Nodes: lOpen}) // blocked at sort
		rDone, rOpen := decompose(n.Right)
		done = append(done, rDone...)
		done = append(done, Pipeline{Nodes: rOpen}) // blocked at sort
		return done, []*Node{n}                     // fresh merge pipeline
	case IndexNLJoin:
		oDone, oOpen := decompose(n.Left)
		return oDone, append(oOpen, n)
	case NLJoin:
		iDone, iOpen := decompose(n.Right)
		done = append(done, iDone...)
		done = append(done, Pipeline{Nodes: iOpen}) // blocked at materialize
		oDone, oOpen := decompose(n.Left)
		done = append(done, oDone...)
		return done, append(oOpen, n)
	default:
		panic("plan: unknown join method")
	}
}

// EPPOrder returns the query join IDs of the epp join nodes in the
// paper's total order: pipelines in execution order, and within a
// pipeline upstream nodes first. isEPP selects which join IDs count.
func EPPOrder(root *Node, isEPP func(joinID int) bool) []int {
	var order []int
	for _, p := range Pipelines(root) {
		for _, n := range p.Nodes {
			if n.Join == nil {
				continue
			}
			for _, id := range n.Join.JoinIDs {
				if isEPP(id) {
					order = append(order, id)
				}
			}
		}
	}
	return order
}

// SpillJoin identifies the join predicate to spill on: the first epp in
// the total order that is still unlearned (present in remaining).
// It returns -1 if the plan has no remaining epp.
func SpillJoin(root *Node, remaining map[int]bool) int {
	for _, id := range EPPOrder(root, func(j int) bool { return remaining[j] }) {
		return id
	}
	return -1
}

// SpillSubtree returns the subtree root executed in spill-mode for the
// given join predicate: the node applying it. Output of this node is
// discarded rather than forwarded downstream (§3.1.2).
func SpillSubtree(root *Node, joinID int) *Node {
	return root.FindJoinNode(joinID)
}

package plan

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/query"
)

func formatQuery() *query.Query {
	cat, err := catalog.TPCDS(1)
	if err != nil {
		panic(err)
	}
	q := &query.Query{
		Name: "fmt",
		Cat:  cat,
		Relations: []query.Relation{
			{Table: "catalog_sales", Alias: "cs"},
			{Table: "date_dim", Alias: "d", Filters: []query.FilterPred{
				{Column: "d_year", Op: expr.EQ, Value: 2000},
			}},
			{Table: "customer", Alias: "customer"},
		},
		Joins: []query.Join{
			{ID: 0, LeftRel: 0, RightRel: 1, LeftCol: "cs_sold_date_sk", RightCol: "date_dim_sk"},
			{ID: 1, LeftRel: 0, RightRel: 2, LeftCol: "cs_bill_customer_sk", RightCol: "c_customer_sk"},
		},
		EPPs: []int{1},
	}
	return q
}

func formatPlan() *Node {
	inner := NewJoin(IndexNLJoin, []int{1}, NewScan(0, SeqScan), NewScan(2, SeqScan))
	return NewJoin(HashJoin, []int{0}, inner, NewScan(1, IndexScan))
}

func TestFormatTree(t *testing.T) {
	q := formatQuery()
	out := Format(formatPlan(), q)
	for _, want := range []string{
		"HashJoin [cs.cs_sold_date_sk = d.date_dim_sk]",
		"IndexNLJoin [cs.cs_bill_customer_sk = customer.c_customer_sk*]", // epp starred
		"SeqScan catalog_sales AS cs",
		"IndexScan date_dim AS d (d_year = 2000)",
		"SeqScan customer\n", // no AS when alias == table
		"├─ ", "└─ ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q in:\n%s", want, out)
		}
	}
	// Scans with alias==table must not emit AS.
	if strings.Contains(out, "customer AS customer") {
		t.Error("redundant AS emitted")
	}
}

func TestFormatPipelines(t *testing.T) {
	q := formatQuery()
	out := FormatPipelines(formatPlan(), q)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// HJ build side (IndexScan d) runs first, then the probe pipeline
	// SS(cs) → INL → HJ.
	if len(lines) != 2 {
		t.Fatalf("pipelines = %d lines: %q", len(lines), out)
	}
	if !strings.Contains(lines[0], "IS(d)") {
		t.Errorf("first pipeline should be the build scan: %q", lines[0])
	}
	if !strings.Contains(lines[1], "SS(cs) INL[1] HJ[0]") {
		t.Errorf("probe pipeline wrong: %q", lines[1])
	}
}

// Package plan defines physical execution plan trees, their pipeline
// decomposition under the demand-driven iterator model, and the
// spill-node identification procedure of the paper (§3.1.3): epps are
// totally ordered by (pipeline execution order, upstream-before-
// downstream), and spilling always targets the first unlearned epp.
package plan

import (
	"fmt"
	"math/bits"
	"strings"
)

// ScanMethod enumerates access paths for base relations.
type ScanMethod int

const (
	// SeqScan reads the relation sequentially, applying filters.
	SeqScan ScanMethod = iota
	// IndexScan drives the most selective filter through a sorted index,
	// applying residual filters afterwards.
	IndexScan
)

// String returns a short display name.
func (m ScanMethod) String() string {
	switch m {
	case SeqScan:
		return "SS"
	case IndexScan:
		return "IS"
	default:
		return fmt.Sprintf("Scan(%d)", int(m))
	}
}

// JoinMethod enumerates the physical join operators.
type JoinMethod int

const (
	// HashJoin builds a hash table on the right (inner) child and probes
	// with the left (outer) child.
	HashJoin JoinMethod = iota
	// MergeJoin sorts both children and merges.
	MergeJoin
	// IndexNLJoin streams the left child, probing a base-relation index
	// on the right; the right child must be a scan leaf.
	IndexNLJoin
	// NLJoin materializes the right child and nest-loops over it.
	NLJoin
)

// String returns a short display name.
func (m JoinMethod) String() string {
	switch m {
	case HashJoin:
		return "HJ"
	case MergeJoin:
		return "MJ"
	case IndexNLJoin:
		return "INL"
	case NLJoin:
		return "NL"
	default:
		return fmt.Sprintf("Join(%d)", int(m))
	}
}

// Node is one operator in a physical plan tree. Exactly one of Scan and
// Join is non-nil.
type Node struct {
	// Scan is set for leaf scan nodes.
	Scan *ScanSpec
	// Join is set for internal join nodes.
	Join *JoinSpec
	// Left and Right are the children of a join node (nil for scans).
	// Left is the outer/probe side, Right the inner/build side.
	Left, Right *Node
	// Rels is the bitset of query relation indexes under this node.
	Rels uint32
}

// ScanSpec describes a leaf scan.
type ScanSpec struct {
	// Rel is the query relation index scanned.
	Rel int
	// Method is the access path.
	Method ScanMethod
}

// JoinSpec describes a join operator.
type JoinSpec struct {
	// Method is the physical join algorithm.
	Method JoinMethod
	// JoinIDs are the query join predicates applied at this node; the
	// first is the "primary" predicate that drives hashing/merging, the
	// rest (present only in cyclic join graphs) are residual conditions.
	JoinIDs []int
}

// IsScan reports whether the node is a leaf scan.
func (n *Node) IsScan() bool { return n.Scan != nil }

// NumRels returns the number of relations under the node.
func (n *Node) NumRels() int { return bits.OnesCount32(n.Rels) }

// NewScan builds a scan leaf.
func NewScan(rel int, m ScanMethod) *Node {
	return &Node{Scan: &ScanSpec{Rel: rel, Method: m}, Rels: 1 << uint(rel)}
}

// NewJoin builds a join node over two children.
func NewJoin(m JoinMethod, joinIDs []int, left, right *Node) *Node {
	return &Node{
		Join:  &JoinSpec{Method: m, JoinIDs: joinIDs},
		Left:  left,
		Right: right,
		Rels:  left.Rels | right.Rels,
	}
}

// Clone returns a deep copy of the plan tree sharing no memory with the
// original. Used to copy arena-allocated DP winners onto the heap before
// the arena is recycled.
func (n *Node) Clone() *Node {
	out := &Node{Rels: n.Rels}
	if n.Scan != nil {
		sc := *n.Scan
		out.Scan = &sc
	}
	if n.Join != nil {
		out.Join = &JoinSpec{
			Method:  n.Join.Method,
			JoinIDs: append([]int(nil), n.Join.JoinIDs...),
		}
	}
	if n.Left != nil {
		out.Left = n.Left.Clone()
	}
	if n.Right != nil {
		out.Right = n.Right.Clone()
	}
	return out
}

// Signature returns a canonical string identifying the plan's structure
// (operators, methods, join order). Two plans with equal signatures are
// the same plan for POSP bookkeeping.
func (n *Node) Signature() string {
	var b strings.Builder
	n.signature(&b)
	return b.String()
}

func (n *Node) signature(b *strings.Builder) {
	if n.IsScan() {
		fmt.Fprintf(b, "%s(%d)", n.Scan.Method, n.Scan.Rel)
		return
	}
	b.WriteString(n.Join.Method.String())
	b.WriteByte('[')
	for i, id := range n.Join.JoinIDs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, "%d", id)
	}
	b.WriteString("](")
	n.Left.signature(b)
	b.WriteByte(',')
	n.Right.signature(b)
	b.WriteByte(')')
}

// Walk visits the tree in post-order (children before parents).
func (n *Node) Walk(f func(*Node)) {
	if n.Left != nil {
		n.Left.Walk(f)
	}
	if n.Right != nil {
		n.Right.Walk(f)
	}
	f(n)
}

// FindJoinNode returns the node applying the given join predicate, or nil.
func (n *Node) FindJoinNode(joinID int) *Node {
	var found *Node
	n.Walk(func(m *Node) {
		if found != nil || m.Join == nil {
			return
		}
		for _, id := range m.Join.JoinIDs {
			if id == joinID {
				found = m
				return
			}
		}
	})
	return found
}

// Validate checks structural invariants of the plan tree: children
// present exactly for joins, disjoint relation sets, IndexNLJoin inner
// side a leaf, and every node's Rels consistent.
func (n *Node) Validate() error {
	switch {
	case n.IsScan():
		if n.Left != nil || n.Right != nil {
			return fmt.Errorf("plan: scan node with children")
		}
		if n.Rels != 1<<uint(n.Scan.Rel) {
			return fmt.Errorf("plan: scan Rels inconsistent")
		}
		return nil
	case n.Join != nil:
		if n.Left == nil || n.Right == nil {
			return fmt.Errorf("plan: join node missing children")
		}
		if len(n.Join.JoinIDs) == 0 {
			return fmt.Errorf("plan: join node without predicates")
		}
		if n.Left.Rels&n.Right.Rels != 0 {
			return fmt.Errorf("plan: overlapping children relation sets")
		}
		if n.Rels != n.Left.Rels|n.Right.Rels {
			return fmt.Errorf("plan: join Rels inconsistent")
		}
		if n.Join.Method == IndexNLJoin && !n.Right.IsScan() {
			return fmt.Errorf("plan: IndexNLJoin inner side must be a scan leaf")
		}
		if err := n.Left.Validate(); err != nil {
			return err
		}
		return n.Right.Validate()
	default:
		return fmt.Errorf("plan: node is neither scan nor join")
	}
}

package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/expr"
	"repro/internal/query"
	"repro/internal/sqlparse"
)

func smallCat() *catalog.Catalog {
	c := catalog.New("s", 1)
	c.AddTable(&catalog.Table{Name: "dim", BaseRows: 100, Columns: []catalog.Column{
		{Name: "d_id", Type: catalog.Int64, Dist: catalog.Serial},
		{Name: "d_attr", Type: catalog.Int64, Dist: catalog.Uniform, Min: 1, Max: 10},
	}})
	c.AddTable(&catalog.Table{Name: "fact", BaseRows: 1000, Columns: []catalog.Column{
		{Name: "f_id", Type: catalog.Int64, Dist: catalog.Serial},
		{Name: "f_dim", Type: catalog.Int64, Dist: catalog.FKUniform, Ref: "dim"},
		{Name: "f_val", Type: catalog.Int64, Dist: catalog.Uniform, Min: 1, Max: 50},
	}})
	return c
}

func parse(t *testing.T, c *catalog.Catalog, sql string) *query.Query {
	t.Helper()
	q, err := sqlparse.Parse("t", c, sql)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestFromCatalogBasics(t *testing.T) {
	s := FromCatalog(smallCat())
	if s.TableRows("dim") != 100 || s.TableRows("fact") != 1000 {
		t.Fatal("TableRows wrong")
	}
	if s.NDV("dim", "d_id") != 100 {
		t.Errorf("serial NDV = %v, want 100", s.NDV("dim", "d_id"))
	}
	if s.NDV("dim", "d_attr") != 10 {
		t.Errorf("uniform NDV = %v, want 10", s.NDV("dim", "d_attr"))
	}
	if s.NDV("fact", "f_dim") != 100 {
		t.Errorf("FK NDV = %v, want 100 (ref rows)", s.NDV("fact", "f_dim"))
	}
}

func TestUnknownTablePanics(t *testing.T) {
	s := FromCatalog(smallCat())
	defer func() {
		if recover() == nil {
			t.Fatal("unknown table should panic")
		}
	}()
	s.TableRows("zzz")
}

func TestUnknownColumnPanics(t *testing.T) {
	s := FromCatalog(smallCat())
	defer func() {
		if recover() == nil {
			t.Fatal("unknown column should panic")
		}
	}()
	s.NDV("dim", "zzz")
}

func TestAnalyticFilterSel(t *testing.T) {
	s := FromCatalog(smallCat())
	cases := []struct {
		op   expr.CmpOp
		v    int64
		want float64
	}{
		{expr.EQ, 5, 0.1},
		{expr.NE, 5, 0.9},
		{expr.LT, 6, 0.5},
		{expr.LE, 5, 0.5},
		{expr.GT, 5, 0.5},
		{expr.GE, 6, 0.5},
		{expr.EQ, 99, 0}, // outside domain
		{expr.NE, 99, 1}, // outside domain
		{expr.LT, 1, 0},  // nothing below min
		{expr.GE, 1, 1},  // everything
		{expr.LE, 99, 1}, // clamped
		{expr.GT, 99, 0}, // clamped
	}
	for _, c := range cases {
		got := s.FilterSel("dim", query.FilterPred{Column: "d_attr", Op: c.op, Value: c.v})
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("sel(d_attr %s %d) = %v, want %v", c.op, c.v, got, c.want)
		}
	}
}

func TestRelFilterSelAndFilteredRows(t *testing.T) {
	c := smallCat()
	s := FromCatalog(c)
	q := parse(t, c, `SELECT * FROM fact f, dim d WHERE f.f_dim = d.d_id AND f.f_val <= 25 AND d.d_attr = 3`)
	fi := q.RelIndex("f")
	if sel := s.RelFilterSel(q, fi); math.Abs(sel-0.5) > 1e-9 {
		t.Errorf("fact filter sel = %v, want 0.5", sel)
	}
	if rows := s.FilteredRows(q, fi); math.Abs(rows-500) > 1e-6 {
		t.Errorf("fact filtered rows = %v, want 500", rows)
	}
	di := q.RelIndex("d")
	if rows := s.FilteredRows(q, di); math.Abs(rows-10) > 1e-6 {
		t.Errorf("dim filtered rows = %v, want 10", rows)
	}
	// No filters → sel 1.
	q2 := parse(t, c, `SELECT * FROM dim d`)
	if s.RelFilterSel(q2, 0) != 1 {
		t.Error("no-filter sel should be 1")
	}
}

func TestBestIndexSel(t *testing.T) {
	c := smallCat()
	s := FromCatalog(c)
	q := parse(t, c, `SELECT * FROM fact f WHERE f.f_val <= 25 AND f.f_val <= 5`)
	if got := s.BestIndexSel(q, 0); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("BestIndexSel = %v, want 0.1 (most selective)", got)
	}
	q2 := parse(t, c, `SELECT * FROM fact f`)
	if s.BestIndexSel(q2, 0) != 1 {
		t.Error("BestIndexSel with no filters should be 1")
	}
}

func TestJoinSelEstimate(t *testing.T) {
	c := smallCat()
	s := FromCatalog(c)
	q := parse(t, c, `SELECT * FROM fact f, dim d WHERE f.f_dim = d.d_id`)
	// max NDV = 100 (both sides 100) → 0.01.
	if got := s.JoinSelEstimate(q, q.Joins[0]); math.Abs(got-0.01) > 1e-9 {
		t.Errorf("JoinSelEstimate = %v, want 0.01", got)
	}
}

func TestFromDataExactCounts(t *testing.T) {
	c := smallCat()
	st, err := datagen.Populate(c, datagen.Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	s, err := FromData(c, st, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.TableRows("fact") != 1000 {
		t.Errorf("data rows = %v", s.TableRows("fact"))
	}
	if s.NDV("dim", "d_id") != 100 {
		t.Errorf("data NDV(d_id) = %v, want 100", s.NDV("dim", "d_id"))
	}
	// Histogram-backed selectivity should be close to the true fraction.
	rel := st.MustRelation("fact")
	ci := rel.ColumnIndex("f_val")
	truth := 0.0
	for _, row := range rel.Rows {
		if row[ci].I <= 25 {
			truth++
		}
	}
	truth /= 1000
	got := s.FilterSel("fact", query.FilterPred{Column: "f_val", Op: expr.LE, Value: 25})
	if math.Abs(got-truth) > 0.05 {
		t.Errorf("hist sel = %v, truth = %v", got, truth)
	}
}

func TestFromDataMissingRelation(t *testing.T) {
	c := smallCat()
	st, _ := datagen.Populate(c, datagen.Options{Seed: 1})
	c2 := smallCat()
	c2.AddTable(&catalog.Table{Name: "extra", BaseRows: 1, Columns: []catalog.Column{
		{Name: "e_id", Type: catalog.Int64, Dist: catalog.Serial},
	}})
	if _, err := FromData(c2, st, 8); err == nil {
		t.Fatal("missing relation should be an error")
	}
}

func TestTrueJoinSelFKJoin(t *testing.T) {
	c := smallCat()
	st, _ := datagen.Populate(c, datagen.Options{Seed: 5})
	q := parse(t, c, `SELECT * FROM fact f, dim d WHERE f.f_dim = d.d_id`)
	sel, err := TrueJoinSel(st, q, q.Joins[0])
	if err != nil {
		t.Fatal(err)
	}
	// Every fact row matches exactly one dim row: sel = 1/|dim| = 0.01.
	if math.Abs(sel-0.01) > 1e-9 {
		t.Errorf("TrueJoinSel = %v, want 0.01", sel)
	}
}

func TestTrueJoinSelWithFilters(t *testing.T) {
	c := smallCat()
	st, _ := datagen.Populate(c, datagen.Options{Seed: 5})
	q := parse(t, c, `SELECT * FROM fact f, dim d WHERE f.f_dim = d.d_id AND d.d_attr = 1`)
	sel, err := TrueJoinSel(st, q, q.Joins[0])
	if err != nil {
		t.Fatal(err)
	}
	if sel <= 0 {
		t.Fatal("filtered TrueJoinSel should still be positive")
	}
	// With k dim rows surviving the filter, sel should be ≈ 1/k ± skew.
	if sel > 0.5 {
		t.Errorf("TrueJoinSel = %v implausibly high", sel)
	}
}

func TestHistogramBelowMonotoneProperty(t *testing.T) {
	vals := make([]int64, 500)
	r := datagen.NewRNG(3)
	for i := range vals {
		vals[i] = r.IntRange(0, 200)
	}
	cs := buildColStats(vals, 10)
	f := func(a, b int64) bool {
		a, b = a%250, b%250
		if a > b {
			a, b = b, a
		}
		return cs.Hist.Sel(expr.LE, a, cs.NDV) <= cs.Hist.Sel(expr.LE, b, cs.NDV)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramEqMatchesTruthApprox(t *testing.T) {
	vals := make([]int64, 2000)
	r := datagen.NewRNG(4)
	for i := range vals {
		vals[i] = r.IntRange(1, 20)
	}
	cs := buildColStats(vals, 8)
	count := 0
	for _, v := range vals {
		if v == 7 {
			count++
		}
	}
	truth := float64(count) / 2000
	got := cs.Hist.Sel(expr.EQ, 7, cs.NDV)
	if math.Abs(got-truth) > 0.05 {
		t.Errorf("eq sel = %v, truth %v", got, truth)
	}
	if cs.Hist.Sel(expr.EQ, 999, cs.NDV) != 0 {
		t.Error("eq outside domain should be 0")
	}
}

func TestHistogramRangeComplement(t *testing.T) {
	vals := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cs := buildColStats(vals, 4)
	for _, v := range []int64{0, 3, 5, 8, 11} {
		le := cs.Hist.Sel(expr.LE, v, cs.NDV)
		gt := cs.Hist.Sel(expr.GT, v, cs.NDV)
		if math.Abs(le+gt-1) > 1e-9 {
			t.Errorf("LE+GT at %d = %v, want 1", v, le+gt)
		}
		lt := cs.Hist.Sel(expr.LT, v, cs.NDV)
		ge := cs.Hist.Sel(expr.GE, v, cs.NDV)
		if math.Abs(lt+ge-1) > 1e-9 {
			t.Errorf("LT+GE at %d = %v, want 1", v, lt+ge)
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := buildHistogram(nil, 4)
	if h.Sel(expr.EQ, 1, 1) != 0 {
		t.Error("empty histogram should estimate 0")
	}
}

func TestHistogramDuplicatesStayTogether(t *testing.T) {
	vals := []int64{1, 1, 1, 1, 1, 1, 1, 2, 3, 4}
	h := buildHistogram(vals, 5)
	for _, b := range h.Buckets {
		if b.Lo == 1 && b.Hi == 1 && b.Count != 7 {
			t.Errorf("value 1 split across buckets: %+v", b)
		}
	}
	// EQ on the heavy value should reflect its frequency.
	if sel := h.Sel(expr.EQ, 1, 4); math.Abs(sel-0.7) > 1e-9 {
		t.Errorf("eq(1) = %v, want 0.7", sel)
	}
}

package stats

import (
	"sort"

	"repro/internal/expr"
)

// Histogram is an equi-depth histogram over int64 values. Buckets hold
// roughly equal row counts; each records its value bounds, row count,
// and distinct count, supporting range and equality estimation.
type Histogram struct {
	// Buckets in ascending value order.
	Buckets []Bucket
	// Total is the number of rows summarized.
	Total float64
}

// Bucket is one histogram bucket covering values in [Lo, Hi].
type Bucket struct {
	Lo, Hi int64
	// Count is the number of rows in the bucket.
	Count float64
	// NDV is the number of distinct values in the bucket.
	NDV float64
}

// buildHistogram constructs an equi-depth histogram from an ascending
// sorted value slice. Equal values never straddle a bucket boundary.
func buildHistogram(sorted []int64, buckets int) *Histogram {
	n := len(sorted)
	if n == 0 {
		return &Histogram{}
	}
	if buckets > n {
		buckets = n
	}
	h := &Histogram{Total: float64(n)}
	target := n / buckets
	if target < 1 {
		target = 1
	}
	i := 0
	for i < n {
		j := i + target
		if j > n {
			j = n
		}
		// Extend so equal values stay together.
		for j < n && sorted[j] == sorted[j-1] {
			j++
		}
		b := Bucket{Lo: sorted[i], Hi: sorted[j-1], Count: float64(j - i)}
		ndv := 1
		for k := i + 1; k < j; k++ {
			if sorted[k] != sorted[k-1] {
				ndv++
			}
		}
		b.NDV = float64(ndv)
		h.Buckets = append(h.Buckets, b)
		i = j
	}
	return h
}

// Sel estimates the selectivity of (col op v); colNDV is the column-wide
// distinct count used for NE.
func (h *Histogram) Sel(op expr.CmpOp, v int64, colNDV float64) float64 {
	if h.Total == 0 {
		return 0
	}
	switch op {
	case expr.EQ:
		return h.eq(v)
	case expr.NE:
		_ = colNDV
		return 1 - h.eq(v)
	case expr.LT:
		return h.below(v, false)
	case expr.LE:
		return h.below(v, true)
	case expr.GT:
		return 1 - h.below(v, true)
	case expr.GE:
		return 1 - h.below(v, false)
	default:
		return 1
	}
}

// eq estimates the fraction of rows equal to v, assuming uniformity
// within the containing bucket.
func (h *Histogram) eq(v int64) float64 {
	i := h.find(v)
	if i < 0 {
		return 0
	}
	b := h.Buckets[i]
	return b.Count / b.NDV / h.Total
}

// below estimates the fraction of rows with value < v (or ≤ v when
// inclusive), interpolating linearly within the containing bucket.
func (h *Histogram) below(v int64, inclusive bool) float64 {
	acc := 0.0
	for _, b := range h.Buckets {
		switch {
		case v > b.Hi:
			acc += b.Count
		case v < b.Lo:
			return acc / h.Total
		default:
			span := float64(b.Hi-b.Lo) + 1
			within := float64(v - b.Lo)
			if inclusive {
				within++
			}
			acc += b.Count * within / span
			return acc / h.Total
		}
	}
	return acc / h.Total
}

// find returns the index of the bucket containing v, or -1.
func (h *Histogram) find(v int64) int {
	i := sort.Search(len(h.Buckets), func(i int) bool { return h.Buckets[i].Hi >= v })
	if i == len(h.Buckets) || v < h.Buckets[i].Lo {
		return -1
	}
	return i
}

// Package stats provides cardinality statistics and selectivity
// estimation. Two constructions are supported: analytic statistics
// derived from the catalog's declared distributions (used by the
// cost-model experiments, which need fixed, accurately-known filter
// selectivities), and data-backed statistics with equi-depth histograms
// built by scanning a store (used by the executor experiments).
//
// Join selectivities are deliberately split: JoinSelEstimate returns the
// classic 1/max(NDV) textbook estimate — the error-prone quantity the
// paper abandons — while TrueJoinSel measures the actual selectivity
// from data. The gap between the two is exactly the estimation error the
// robust algorithms are designed to survive.
package stats

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/query"
	"repro/internal/storage"
)

// ColStats summarizes one column.
type ColStats struct {
	// NDV is the number of distinct values.
	NDV float64
	// Min and Max bound the value domain.
	Min, Max int64
	// Hist is the equi-depth histogram; nil for analytic stats.
	Hist *Histogram
}

// TableStats summarizes one table.
type TableStats struct {
	// Rows is the table cardinality.
	Rows float64
	// Cols maps column name to its statistics.
	Cols map[string]*ColStats
}

// Stats holds statistics for all tables of a catalog.
type Stats struct {
	cat    *catalog.Catalog
	tables map[string]*TableStats
}

// FromCatalog derives analytic statistics from the declared column
// distributions, without touching any data.
func FromCatalog(cat *catalog.Catalog) *Stats {
	s := &Stats{cat: cat, tables: make(map[string]*TableStats)}
	for _, t := range cat.Tables() {
		rows := float64(t.Rows(cat.Scale))
		ts := &TableStats{Rows: rows, Cols: make(map[string]*ColStats)}
		for i := range t.Columns {
			col := &t.Columns[i]
			cs := &ColStats{}
			switch col.Dist {
			case catalog.Serial:
				cs.Min, cs.Max = 1, int64(rows)
				cs.NDV = rows
			case catalog.Uniform, catalog.Zipf:
				cs.Min, cs.Max = col.Min, col.Max
				span := float64(col.Max - col.Min + 1)
				cs.NDV = math.Min(span, rows)
			case catalog.FKUniform, catalog.FKZipf:
				refRows := float64(cat.Rows(col.Ref))
				cs.Min, cs.Max = 1, int64(refRows)
				cs.NDV = math.Min(refRows, rows)
			}
			if cs.NDV < 1 {
				cs.NDV = 1
			}
			ts.Cols[col.Name] = cs
		}
		s.tables[t.Name] = ts
	}
	return s
}

// FromData builds statistics by scanning the store: exact row counts and
// NDVs, plus equi-depth histograms with the given bucket count.
func FromData(cat *catalog.Catalog, st *storage.Store, buckets int) (*Stats, error) {
	if buckets < 1 {
		buckets = 16
	}
	s := &Stats{cat: cat, tables: make(map[string]*TableStats)}
	for _, t := range cat.Tables() {
		rel := st.Relation(t.Name)
		if rel == nil {
			return nil, fmt.Errorf("stats: store missing relation %s", t.Name)
		}
		ts := &TableStats{Rows: float64(rel.NumRows()), Cols: make(map[string]*ColStats)}
		for i := range t.Columns {
			vals := make([]int64, rel.NumRows())
			for r, row := range rel.Rows {
				if row[i].K != expr.KindInt {
					return nil, fmt.Errorf("stats: non-int column %s.%s", t.Name, t.Columns[i].Name)
				}
				vals[r] = row[i].I
			}
			ts.Cols[t.Columns[i].Name] = buildColStats(vals, buckets)
		}
		s.tables[t.Name] = ts
	}
	return s, nil
}

func buildColStats(vals []int64, buckets int) *ColStats {
	cs := &ColStats{}
	if len(vals) == 0 {
		cs.NDV = 1
		return cs
	}
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	cs.Min, cs.Max = sorted[0], sorted[len(sorted)-1]
	ndv := 1
	for i := 1; i < len(sorted); i++ {
		if sorted[i] != sorted[i-1] {
			ndv++
		}
	}
	cs.NDV = float64(ndv)
	cs.Hist = buildHistogram(sorted, buckets)
	return cs
}

// TableRows returns the cardinality of the named table.
func (s *Stats) TableRows(table string) float64 {
	return s.must(table).Rows
}

// NDV returns the distinct count of table.column.
func (s *Stats) NDV(table, col string) float64 {
	cs := s.col(table, col)
	return cs.NDV
}

func (s *Stats) must(table string) *TableStats {
	ts := s.tables[table]
	if ts == nil {
		panic("stats: unknown table " + table)
	}
	return ts
}

func (s *Stats) col(table, col string) *ColStats {
	cs := s.must(table).Cols[col]
	if cs == nil {
		panic(fmt.Sprintf("stats: unknown column %s.%s", table, col))
	}
	return cs
}

// FilterSel estimates the selectivity of a single filter predicate on a
// table, in [0, 1].
func (s *Stats) FilterSel(table string, f query.FilterPred) float64 {
	cs := s.col(table, f.Column)
	if f.IsIn() {
		// IN-list: sum of equality selectivities over distinct values.
		sel := 0.0
		seen := make(map[int64]bool, len(f.Values))
		for _, v := range f.Values {
			if seen[v] {
				continue
			}
			seen[v] = true
			eq := query.FilterPred{Column: f.Column, Op: expr.EQ, Value: v}
			if cs.Hist != nil {
				sel += cs.Hist.Sel(expr.EQ, v, cs.NDV)
			} else {
				sel += uniformSel(cs, eq.Op, eq.Value)
			}
		}
		return clampSel(sel)
	}
	if cs.Hist != nil {
		return clampSel(cs.Hist.Sel(f.Op, f.Value, cs.NDV))
	}
	return clampSel(uniformSel(cs, f.Op, f.Value))
}

func uniformSel(cs *ColStats, op expr.CmpOp, v int64) float64 {
	span := float64(cs.Max-cs.Min) + 1
	eq := 1.0 / cs.NDV
	// Fraction of the domain strictly below v.
	below := (float64(v) - float64(cs.Min)) / span
	switch op {
	case expr.EQ:
		if v < cs.Min || v > cs.Max {
			return 0
		}
		return eq
	case expr.NE:
		if v < cs.Min || v > cs.Max {
			return 1
		}
		return 1 - eq
	case expr.LT:
		return below
	case expr.LE:
		return below + eq
	case expr.GT:
		return 1 - below - eq
	case expr.GE:
		return 1 - below
	default:
		return 1
	}
}

func clampSel(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// RelFilterSel estimates the combined selectivity of all filters on the
// query relation (attribute-value independence across predicates).
func (s *Stats) RelFilterSel(q *query.Query, rel int) float64 {
	r := &q.Relations[rel]
	sel := 1.0
	for _, f := range r.Filters {
		sel *= s.FilterSel(r.Table, f)
	}
	return sel
}

// FilteredRows estimates the post-filter cardinality of a relation.
func (s *Stats) FilteredRows(q *query.Query, rel int) float64 {
	return s.TableRows(q.Relations[rel].Table) * s.RelFilterSel(q, rel)
}

// BestIndexSel returns the selectivity of the most selective single
// filter on the relation — the predicate an index scan would use — or 1
// if the relation has no filters.
func (s *Stats) BestIndexSel(q *query.Query, rel int) float64 {
	r := &q.Relations[rel]
	best := 1.0
	for _, f := range r.Filters {
		if sel := s.FilterSel(r.Table, f); sel < best {
			best = sel
		}
	}
	return best
}

// JoinSelEstimate returns the textbook join selectivity estimate
// 1/max(NDV(left), NDV(right)) — the quantity that is error-prone in
// practice and that the robust algorithms refuse to trust.
func (s *Stats) JoinSelEstimate(q *query.Query, j query.Join) float64 {
	lt := q.Relations[j.LeftRel].Table
	rt := q.Relations[j.RightRel].Table
	nd := math.Max(s.NDV(lt, j.LeftCol), s.NDV(rt, j.RightCol))
	if nd < 1 {
		nd = 1
	}
	return 1 / nd
}

// TrueJoinSel measures the actual selectivity of a join from data: the
// fraction of the filtered cross product that satisfies the predicate.
// This is the ground truth qa that discovery algorithms converge to.
func TrueJoinSel(st *storage.Store, q *query.Query, j query.Join) (float64, error) {
	lRows, err := filteredRows(st, q, j.LeftRel)
	if err != nil {
		return 0, err
	}
	rRows, err := filteredRows(st, q, j.RightRel)
	if err != nil {
		return 0, err
	}
	if len(lRows) == 0 || len(rRows) == 0 {
		return 0, nil
	}
	lrel := st.MustRelation(q.Relations[j.LeftRel].Table)
	rrel := st.MustRelation(q.Relations[j.RightRel].Table)
	lc := lrel.ColumnIndex(j.LeftCol)
	rc := rrel.ColumnIndex(j.RightCol)
	if lc < 0 || rc < 0 {
		return 0, fmt.Errorf("stats: join column missing for join %d", j.ID)
	}
	counts := make(map[int64]int64, len(rRows))
	for _, row := range rRows {
		counts[row[rc].I]++
	}
	var matches int64
	for _, row := range lRows {
		matches += counts[row[lc].I]
	}
	return float64(matches) / (float64(len(lRows)) * float64(len(rRows))), nil
}

// evalFilter evaluates a filter predicate against a column value.
func evalFilter(f query.FilterPred, v expr.Value) bool {
	if v.IsNull() {
		return false
	}
	if f.IsIn() {
		for _, want := range f.Values {
			if v.K == expr.KindInt && v.I == want {
				return true
			}
		}
		return false
	}
	c := expr.Cmp{Op: f.Op, L: &expr.Const{Val: v}, R: &expr.Const{Val: expr.Int(f.Value)}}
	return c.Eval(nil).Truthy()
}

func filteredRows(st *storage.Store, q *query.Query, rel int) ([]expr.Row, error) {
	r := &q.Relations[rel]
	relation := st.Relation(r.Table)
	if relation == nil {
		return nil, fmt.Errorf("stats: store missing relation %s", r.Table)
	}
	var out []expr.Row
	for _, row := range relation.Rows {
		ok := true
		for _, f := range r.Filters {
			ci := relation.ColumnIndex(f.Column)
			if ci < 0 {
				return nil, fmt.Errorf("stats: filter column %s.%s missing", r.Table, f.Column)
			}
			if !evalFilter(f, row[ci]) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, row)
		}
	}
	return out, nil
}

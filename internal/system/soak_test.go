package system

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/core/discovery"
	"repro/internal/ess"
	"repro/internal/faultinject"
)

// soakCases enumerates the soak workload: all three algorithms over a
// strided set of true locations, each with and without chaos. The case
// index doubles as the deterministic fault-substream ID.
func soakCases(s *ess.Space) []struct {
	alg   core.Algorithm
	qa    int32
	chaos bool
} {
	var cases []struct {
		alg   core.Algorithm
		qa    int32
		chaos bool
	}
	for _, alg := range chaosAlgs {
		for qa := int32(0); qa < int32(s.Grid.NumPoints()); qa += 3 {
			for _, chaos := range []bool{false, true} {
				cases = append(cases, struct {
					alg   core.Algorithm
					qa    int32
					chaos bool
				}{alg, qa, chaos})
			}
		}
	}
	return cases
}

// TestConcurrentSoak is the concurrency contract of the compile/run
// split, meant to run under -race: all three algorithms, with and
// without chaos, discover simultaneously over one shared Compiled
// artifact, and every outcome must be bit-for-bit identical to the
// sequential reference run of the same case. Determinism under
// concurrency rests on three properties this test pins down: the Space
// is immutable after Build (induced plans are interned by signature, so
// a plan gets the same ID no matter which run adds it first), planner
// decisions are pure functions of the frozen compile-time state, and
// each chaos run forks its own fault substream from the case index, so
// scheduling cannot reorder anyone's fault schedule.
func TestConcurrentSoak(t *testing.T) {
	s := buildRandomSpace(t, 11, 4, 2, 6)
	base := faultinject.New(chaosConfig(2016))
	cases := soakCases(s)

	runCase := func(c *core.Compiled, i int) (*discovery.Outcome, error) {
		r := c.NewRun()
		if cases[i].chaos {
			r = r.WithFaults(base.Fork(uint64(i)))
		}
		return r.Discover(cases[i].alg, cases[i].qa)
	}

	// Sequential reference phase. This also interns every plan the cases
	// can induce, so the concurrent phase exercises pure lock-free reads
	// plus idempotent re-interning.
	cSeq, err := core.Compile(s, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantOut := make([]*discovery.Outcome, len(cases))
	wantErr := make([]error, len(cases))
	for i := range cases {
		wantOut[i], wantErr[i] = runCase(cSeq, i)
	}

	// Concurrent phase: a fresh Compiled over the same Space, every case
	// in its own goroutine at once.
	cConc, err := core.Compile(s, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gotOut := make([]*discovery.Outcome, len(cases))
	gotErr := make([]error, len(cases))
	var wg sync.WaitGroup
	for i := range cases {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			gotOut[i], gotErr[i] = runCase(cConc, i)
		}(i)
	}
	wg.Wait()

	mismatches := 0
	for i, cs := range cases {
		if (wantErr[i] == nil) != (gotErr[i] == nil) {
			t.Fatalf("%s qa=%d chaos=%v: errors diverge: sequential %v, concurrent %v",
				cs.alg, cs.qa, cs.chaos, wantErr[i], gotErr[i])
		}
		if !reflect.DeepEqual(wantOut[i], gotOut[i]) {
			mismatches++
			t.Errorf("%s qa=%d chaos=%v: concurrent outcome diverges from sequential\nsequential: %+v\nconcurrent: %+v",
				cs.alg, cs.qa, cs.chaos, wantOut[i], gotOut[i])
		}
	}
	if mismatches > 0 {
		t.Fatalf("%d of %d cases diverged under concurrency", mismatches, len(cases))
	}
}

// TestConcurrentSoakSharedSession is the compat-wrapper variant: many
// goroutines hammer one Session (which guards its lazy Compiled and
// penalty ledger with a mutex) without chaos, and the MaxPenalty fold
// must equal the maximum per-run penalty observed.
func TestConcurrentSoakSharedSession(t *testing.T) {
	s := buildRandomSpace(t, 13, 4, 2, 6)
	sess := core.NewSession(s)
	ref := core.NewSession(s)

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	maxPen := 0.0
	var penMu sync.Mutex
	for _, alg := range chaosAlgs {
		for qa := int32(0); qa < int32(s.Grid.NumPoints()); qa += 5 {
			want, err := ref.Discover(alg, qa)
			if err != nil {
				t.Fatalf("%s qa=%d reference: %v", alg, qa, err)
			}
			penMu.Lock()
			if want.AlignPenalty > maxPen {
				maxPen = want.AlignPenalty
			}
			penMu.Unlock()
			wg.Add(1)
			go func(alg core.Algorithm, qa int32, want *discovery.Outcome) {
				defer wg.Done()
				got, err := sess.Discover(alg, qa)
				if err != nil {
					errc <- err
					return
				}
				if !reflect.DeepEqual(got, want) {
					errc <- &soakDivergence{alg: alg, qa: qa}
				}
			}(alg, qa, want)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if sess.MaxPenalty() != maxPen {
		t.Fatalf("session MaxPenalty %v, want %v", sess.MaxPenalty(), maxPen)
	}
}

type soakDivergence struct {
	alg core.Algorithm
	qa  int32
}

func (d *soakDivergence) Error() string {
	return string(d.alg) + ": concurrent Session outcome diverges from sequential"
}

package system

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/core/discovery"
)

// cancelAfterEngine cancels a context once n executions have been
// issued against the inner engine, modelling a client that gives up
// mid-contour. The cancellation lands after the n-th execution result
// was delivered, so the algorithms' pre-execution abort polls see it at
// the next execution boundary.
type cancelAfterEngine struct {
	inner  discovery.Engine
	left   int
	cancel context.CancelFunc
}

func (e *cancelAfterEngine) tick() {
	e.left--
	if e.left == 0 {
		e.cancel()
	}
}

func (e *cancelAfterEngine) ExecFull(planID int32, budget float64) (float64, bool) {
	c, done := e.inner.ExecFull(planID, budget)
	e.tick()
	return c, done
}

func (e *cancelAfterEngine) ExecSpill(planID int32, dim int, budget float64) (float64, bool, int) {
	c, done, learned := e.inner.ExecSpill(planID, dim, budget)
	e.tick()
	return c, done, learned
}

var _ discovery.Engine = (*cancelAfterEngine)(nil)

// A context canceled mid-contour must stop every algorithm at the next
// execution boundary with the typed abort, a partial trace that is a
// bit-for-bit prefix of the clean run, and exactly one "exec-abandoned"
// degradation — never a "lost-observation": the abandoned execution was
// refused before it ran, not observed and dropped.
func TestDeadlineMidContourRecordsExecAbandoned(t *testing.T) {
	s := buildRandomSpace(t, 7, 4, 2, 6)
	c, err := core.Compile(s, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range chaosAlgs {
		// Find a true location whose clean trace is long enough to cut.
		var qa int32
		var clean *discovery.Outcome
		for qa = 0; int(qa) < s.Grid.NumPoints(); qa += 3 {
			out, err := c.NewRun().Discover(alg, qa)
			if err != nil {
				t.Fatalf("%s qa=%d clean: %v", alg, qa, err)
			}
			if len(out.Steps) >= 4 {
				clean = out
				break
			}
		}
		if clean == nil {
			t.Fatalf("%s: no grid point with >= 4 executions", alg)
		}
		for _, cut := range []int{1, len(clean.Steps) / 2, len(clean.Steps) - 1} {
			ctx, cancel := context.WithCancel(context.Background())
			eng := discovery.NewGuard(ctx, &cancelAfterEngine{
				inner:  discovery.NewSimEngine(s, qa),
				left:   cut,
				cancel: cancel,
			})
			got, gerr := c.NewRun().WithContext(ctx).DiscoverWith(alg, eng)
			cancel()
			if gerr == nil {
				t.Fatalf("%s qa=%d cut=%d: expected abort, got completed run", alg, qa, cut)
			}
			if !errors.Is(gerr, context.Canceled) {
				t.Fatalf("%s qa=%d cut=%d: abort does not unwrap to context.Canceled: %v", alg, qa, cut, gerr)
			}
			if discovery.AbortCause(gerr) == nil {
				t.Fatalf("%s qa=%d cut=%d: error is not a typed abort: %v", alg, qa, cut, gerr)
			}
			if got == nil {
				t.Fatalf("%s qa=%d cut=%d: aborted run returned no partial outcome", alg, qa, cut)
			}
			if got.Completed {
				t.Fatalf("%s qa=%d cut=%d: aborted run claims completion", alg, qa, cut)
			}
			if !reflect.DeepEqual(got.Steps, clean.Steps[:cut]) {
				t.Fatalf("%s qa=%d cut=%d: partial trace is not a clean-run prefix\ngot:  %+v\nwant: %+v",
					alg, qa, cut, got.Steps, clean.Steps[:cut])
			}
			abandoned, lost := 0, 0
			for _, d := range got.Degradations {
				switch d.Kind {
				case "exec-abandoned":
					abandoned++
				case "lost-observation":
					lost++
				}
			}
			if abandoned != 1 {
				t.Fatalf("%s qa=%d cut=%d: %d exec-abandoned degradations, want exactly 1 (%+v)",
					alg, qa, cut, abandoned, got.Degradations)
			}
			if lost != 0 {
				t.Fatalf("%s qa=%d cut=%d: abort recorded as lost-observation (%+v)",
					alg, qa, cut, got.Degradations)
			}
			if got.Retries != 0 || got.WastedCost != 0 {
				t.Fatalf("%s qa=%d cut=%d: fault-free abort billed retries=%d wasted=%v",
					alg, qa, cut, got.Retries, got.WastedCost)
			}
		}
	}
}

package system

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/core/discovery"
	"repro/internal/cost"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/faultinject"
	"repro/internal/optimizer"
	"repro/internal/stats"
	"repro/internal/testutil"
)

// chaosConfig arms four fault types at nonzero rates: full-execution
// aborts, spill-execution aborts, lost spill observations, and latency
// drift. All faults are transient (PersistentFrac 0) so the resilient
// driver's retries can clear them.
func chaosConfig(seed uint64) faultinject.Config {
	return faultinject.Config{
		Seed: seed,
		Rates: map[faultinject.Site]float64{
			faultinject.SiteEngineFull:  0.15,
			faultinject.SiteEngineSpill: 0.15,
			faultinject.SiteSpillObs:    0.10,
			faultinject.SiteLatency:     0.20,
		},
	}
}

// resultShape is a Step minus its cost: the discovery-relevant outcome
// of one execution. Transient faults inflate cost (retries, drift) but
// must never change the shape.
type resultShape struct {
	Contour    int
	PlanID     int32
	Dim        int
	Budget     float64
	Completed  bool
	Phase      discovery.Phase
	LearnedIdx int
}

func shapes(out *discovery.Outcome) []resultShape {
	s := make([]resultShape, len(out.Steps))
	for i, st := range out.Steps {
		s[i] = resultShape{
			Contour: st.Contour, PlanID: st.PlanID, Dim: st.Dim,
			Budget: st.Budget, Completed: st.Completed,
			Phase: st.Phase, LearnedIdx: st.LearnedIdx,
		}
	}
	return s
}

var chaosAlgs = []core.Algorithm{core.PlanBouquet, core.SpillBound, core.AlignedBound}

// The same chaos seed must reproduce the identical fault schedule,
// execution trace, cost ledger, and degradation record — run to run.
func TestChaosSameSeedIdenticalRuns(t *testing.T) {
	s := buildRandomSpace(t, 3, 4, 2, 6)
	sess := core.NewSession(s)
	for _, alg := range chaosAlgs {
		for qa := int32(0); qa < int32(s.Grid.NumPoints()); qa += 7 {
			type run struct {
				out   *discovery.Outcome
				err   error
				fired []faultinject.Fault
			}
			var runs [2]run
			for i := range runs {
				in := faultinject.New(chaosConfig(2016))
				sess.SetFaults(in)
				out, err := sess.Discover(alg, qa)
				runs[i] = run{out: out, err: err, fired: in.Fired()}
			}
			a, b := runs[0], runs[1]
			if (a.err == nil) != (b.err == nil) {
				t.Fatalf("%s qa=%d: errors diverge: %v vs %v", alg, qa, a.err, b.err)
			}
			if !reflect.DeepEqual(a.fired, b.fired) {
				t.Fatalf("%s qa=%d: fault schedules diverge:\n%v\n%v", alg, qa, a.fired, b.fired)
			}
			if !reflect.DeepEqual(a.out.Steps, b.out.Steps) {
				t.Fatalf("%s qa=%d: traces diverge", alg, qa)
			}
			if !reflect.DeepEqual(a.out.Degradations, b.out.Degradations) {
				t.Fatalf("%s qa=%d: degradations diverge:\n%v\n%v",
					alg, qa, a.out.Degradations, b.out.Degradations)
			}
			if a.out.TotalCost != b.out.TotalCost ||
				a.out.Retries != b.out.Retries || a.out.WastedCost != b.out.WastedCost {
				t.Fatalf("%s qa=%d: ledgers diverge: (%v,%d,%v) vs (%v,%d,%v)", alg, qa,
					a.out.TotalCost, a.out.Retries, a.out.WastedCost,
					b.out.TotalCost, b.out.Retries, b.out.WastedCost)
			}
		}
	}
	sess.SetFaults(nil)
}

// Transient faults must be invisible in the discovery result: the trace
// shape (what completed, what was learned, in which order) matches the
// fault-free run bit for bit, and the bill is never below the
// fault-free bill — robustness is paid for, not free.
func TestChaosTransientFaultsPreserveResults(t *testing.T) {
	s := buildRandomSpace(t, 5, 4, 2, 6)
	clean := core.NewSession(s)
	chaotic := core.NewSession(s)
	for _, alg := range chaosAlgs {
		for qa := int32(0); qa < int32(s.Grid.NumPoints()); qa += 5 {
			want, err := clean.Discover(alg, qa)
			if err != nil {
				t.Fatalf("%s qa=%d fault-free: %v", alg, qa, err)
			}
			in := faultinject.New(chaosConfig(uint64(qa)*1000 + 1))
			chaotic.SetFaults(in)
			got, err := chaotic.Discover(alg, qa)
			if err != nil {
				t.Fatalf("%s qa=%d chaos: %v (faults %d)", alg, qa, err, in.Count())
			}
			if !reflect.DeepEqual(shapes(got), shapes(want)) {
				t.Fatalf("%s qa=%d: chaos trace shape diverges from fault-free\nchaos: %+v\nclean: %+v",
					alg, qa, shapes(got), shapes(want))
			}
			if got.TotalCost < want.TotalCost-1e-9 {
				t.Fatalf("%s qa=%d: chaos bill %v below fault-free %v",
					alg, qa, got.TotalCost, want.TotalCost)
			}
			if got.WastedCost > got.TotalCost {
				t.Fatalf("%s qa=%d: wasted %v exceeds total %v", alg, qa, got.WastedCost, got.TotalCost)
			}
			nRetry := 0
			for _, d := range got.Degradations {
				if d.Kind == "retry" {
					nRetry++
				}
			}
			if nRetry != got.Retries {
				t.Fatalf("%s qa=%d: %d retry degradations but Retries=%d", alg, qa, nRetry, got.Retries)
			}
		}
	}
}

// A faulted alignment planner degrades AlignedBound to SpillBound, the
// fallback is stamped on the Outcome, and the run still completes.
func TestChaosAlignmentFallback(t *testing.T) {
	s := buildRandomSpace(t, 3, 4, 2, 6)
	sess := core.NewSession(s)
	sess.SetFaults(faultinject.New(faultinject.Config{
		Seed:           9,
		Rates:          map[faultinject.Site]float64{faultinject.SiteAlignPlanner: 1},
		PersistentFrac: 1,
	}))
	qa := int32(s.Grid.NumPoints() / 2)
	out, err := sess.Discover(core.AlignedBound, qa)
	if err != nil {
		t.Fatalf("fallback run failed: %v", err)
	}
	if !out.Completed {
		t.Fatal("fallback run must complete")
	}
	found := false
	for _, d := range out.Degradations {
		if d.Kind == "alignment-fallback" {
			found = true
		}
	}
	if !found {
		t.Fatalf("alignment-fallback not recorded: %+v", out.Degradations)
	}
	// The degraded run matches plain SpillBound's trace on this instance.
	want, err := core.NewSession(s).Discover(core.SpillBound, qa)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(shapes(out), shapes(want)) {
		t.Fatal("fallback trace does not match SpillBound")
	}
}

// Hammer the real row-level executor under uniform chaos (scan faults,
// index faults, operator panics, dropped observations, drift): no panic
// may escape, every failure must be a typed *exec.OperatorError, and
// successful runs must still produce the fault-free row count.
func TestChaosRealExecutorNoEscapedPanics(t *testing.T) {
	cat, err := catalog.TPCDS(0.05)
	if err != nil {
		t.Fatal(err)
	}
	store, err := datagen.Populate(cat, datagen.Options{Seed: 4242, BuildIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	st, err := stats.FromData(cat, store, 8)
	if err != nil {
		t.Fatal(err)
	}
	model := cost.NewModel(cost.DefaultParams())
	failures := 0
	runs := 0
	for seed := uint64(70); seed <= 78; seed++ {
		q, err := testutil.RandomQuery(seed, cat, 3, 1)
		if err != nil {
			t.Fatal(err)
		}
		env := optimizer.BuildEnv(q, st)
		best := optimizer.New(q, model).Best(env)
		if best == nil || best.Rows > 2e5 {
			continue
		}
		clean, err := exec.New(q, store, cost.DefaultParams()).Run(best.Root, 0)
		if err != nil {
			t.Fatalf("seed %d fault-free: %v", seed, err)
		}
		for chaos := uint64(0); chaos < 6; chaos++ {
			runs++
			in := faultinject.NewUniform(seed*100+chaos, 0.02)
			e := exec.New(q, store, cost.DefaultParams()).WithFaults(in)
			res, err := e.Run(best.Root, 0) // a panic here fails the test by itself
			if err != nil {
				failures++
				var oe *exec.OperatorError
				if !errors.As(err, &oe) {
					t.Fatalf("seed %d chaos %d: untyped failure %T: %v", seed, chaos, err, err)
				}
				continue
			}
			if res.Rows != clean.Rows {
				t.Fatalf("seed %d chaos %d: %d rows, fault-free %d", seed, chaos, res.Rows, clean.Rows)
			}
			if res.Cost < clean.Cost-1e-9 {
				t.Fatalf("seed %d chaos %d: chaos bill %v below fault-free %v",
					seed, chaos, res.Cost, clean.Cost)
			}
		}
	}
	if runs < 12 {
		t.Fatalf("only %d chaos runs executed; fixture too restrictive", runs)
	}
	if failures == 0 {
		t.Log("note: no chaos run failed terminally (all faults retried away)")
	}
}

// Drift-only chaos (no aborts) must reproduce every completion decision
// while strictly inflating cost on runs where the latency site fired.
func TestChaosDriftNeverChangesDecisions(t *testing.T) {
	s := buildRandomSpace(t, 7, 4, 2, 6)
	clean := core.NewSession(s)
	chaotic := core.NewSession(s)
	for qa := int32(0); qa < int32(s.Grid.NumPoints()); qa += 3 {
		want, err := clean.Discover(core.SpillBound, qa)
		if err != nil {
			t.Fatal(err)
		}
		in := faultinject.New(faultinject.Config{
			Seed:  uint64(qa) + 99,
			Rates: map[faultinject.Site]float64{faultinject.SiteLatency: 0.5},
		})
		chaotic.SetFaults(in)
		got, err := chaotic.Discover(core.SpillBound, qa)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(shapes(got), shapes(want)) {
			t.Fatalf("qa=%d: drift changed the trace shape", qa)
		}
		if in.Count() > 0 && got.TotalCost <= want.TotalCost {
			t.Fatalf("qa=%d: %d drift events but bill %v not above fault-free %v",
				qa, in.Count(), got.TotalCost, want.TotalCost)
		}
		if math.IsNaN(got.TotalCost) || math.IsInf(got.TotalCost, 0) {
			t.Fatalf("qa=%d: non-finite bill", qa)
		}
	}
}

// Package system holds randomized cross-package invariant tests: random
// SPJ queries are pushed through the optimizer, the ESS machinery, the
// three discovery algorithms, and the executor, checking the paper's
// guarantees end to end on inputs nobody hand-picked.
package system

import (
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/core/discovery"
	"repro/internal/core/spillbound"
	"repro/internal/cost"
	"repro/internal/datagen"
	"repro/internal/ess"
	"repro/internal/exec"
	"repro/internal/mso"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/testutil"
)

// buildRandomSpace makes a small ESS for a random query.
func buildRandomSpace(t *testing.T, seed uint64, nRels, d, res int) *ess.Space {
	t.Helper()
	cat, err := catalog.TPCDS(0.2)
	if err != nil {
		t.Fatal(err)
	}
	q, err := testutil.RandomQuery(seed, cat, nRels, d)
	if err != nil {
		t.Fatal(err)
	}
	env := optimizer.BuildEnv(q, stats.FromCatalog(cat))
	s, err := ess.Build(q, env, cost.NewModel(cost.DefaultParams()), ess.Config{Res: res})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return s
}

// Every random 2-epp query must respect the SpillBound bound of 10 at
// every grid location.
func TestRandomQueriesSpillBoundWithinBound(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		s := buildRandomSpace(t, seed, 3+int(seed%3), 2, 6)
		bound := spillbound.Guarantee(2)
		for qa := 0; qa < s.Grid.NumPoints(); qa++ {
			out, err := spillbound.Run(s, discovery.NewSimEngine(s, int32(qa)))
			if err != nil {
				t.Fatalf("seed %d qa %d (%s): %v", seed, qa, s.Q, err)
			}
			if so := out.SubOpt(s.PointCost[qa]); so > bound+1e-9 {
				t.Fatalf("seed %d qa %d: sub-opt %v > bound %v (%s)", seed, qa, so, bound, s.Q)
			}
		}
	}
}

// All three algorithms must complete on random 3-epp queries, with PB
// and AB inside their own guarantees.
func TestRandomQueriesAllAlgorithmsComplete(t *testing.T) {
	for seed := uint64(20); seed <= 26; seed++ {
		s := buildRandomSpace(t, seed, 4+int(seed%2), 3, 5)
		sess := core.NewSession(s)
		for _, alg := range []core.Algorithm{core.PlanBouquet, core.SpillBound, core.AlignedBound} {
			res, err := sess.MSO(alg, mso.Options{Stride: 2})
			if err != nil {
				t.Fatalf("seed %d %s: %v (%s)", seed, alg, err, s.Q)
			}
			g, _ := sess.Guarantee(alg)
			limit := g
			if alg == core.AlignedBound {
				// AB's bound holds modulo the bounded induced-alignment
				// penalty (§5.3 / [14]); allow that slack.
				limit = g * math.Max(1, sess.MaxPenalty())
			}
			if res.MSO > limit+1e-9 {
				t.Fatalf("seed %d %s: MSOe %v > limit %v (%s)", seed, alg, res.MSO, limit, s.Q)
			}
		}
	}
}

// The DP optimizer must never be beaten by exhaustive enumeration on
// random small queries.
func TestRandomQueriesOptimalityVsBruteForce(t *testing.T) {
	cat, err := catalog.TPCDS(0.2)
	if err != nil {
		t.Fatal(err)
	}
	model := cost.NewModel(cost.DefaultParams())
	for seed := uint64(40); seed <= 60; seed++ {
		q, err := testutil.RandomQuery(seed, cat, 3, 1)
		if err != nil {
			t.Fatal(err)
		}
		env := optimizer.BuildEnv(q, stats.FromCatalog(cat))
		o := optimizer.New(q, model)
		best := o.Best(env)
		if best == nil {
			t.Fatalf("seed %d: no plan", seed)
		}
		if err := best.Root.Validate(); err != nil {
			t.Fatalf("seed %d: invalid plan: %v", seed, err)
		}
		brute := bruteForceBest(q, env, model)
		if best.Cost > brute+1e-6*brute {
			t.Fatalf("seed %d: DP %v worse than brute force %v (%s)", seed, best.Cost, brute, s(q))
		}
	}
}

func s(q interface{ String() string }) string { return q.String() }

// bruteForceBest enumerates every bushy plan of a ≤3-relation query.
func bruteForceBest(q *query.Query, env *cost.Env, model *cost.Model) float64 {
	best := math.Inf(1)
	n := len(q.Relations)
	joinable := func(a, b uint32) []int {
		var ids []int
		for _, j := range q.Joins {
			am, bm := uint32(1)<<uint(j.LeftRel), uint32(1)<<uint(j.RightRel)
			if (am&a != 0 && bm&b != 0) || (am&b != 0 && bm&a != 0) {
				ids = append(ids, j.ID)
			}
		}
		return ids
	}
	var rec func(parts []uint32, nodes []*plan.Node)
	rec = func(parts []uint32, nodes []*plan.Node) {
		if len(parts) == 1 {
			if c := model.Cost(nodes[0], env).Cost; c < best {
				best = c
			}
			return
		}
		for i := 0; i < len(parts); i++ {
			for j := 0; j < len(parts); j++ {
				if i == j {
					continue
				}
				ids := joinable(parts[i], parts[j])
				if len(ids) == 0 {
					continue
				}
				for _, m := range []plan.JoinMethod{plan.HashJoin, plan.MergeJoin, plan.IndexNLJoin, plan.NLJoin} {
					if m == plan.IndexNLJoin && !nodes[j].IsScan() {
						continue
					}
					var np []uint32
					var nn []*plan.Node
					for k := range parts {
						if k != i && k != j {
							np = append(np, parts[k])
							nn = append(nn, nodes[k])
						}
					}
					rec(append(np, parts[i]|parts[j]),
						append(nn, plan.NewJoin(m, ids, nodes[i], nodes[j])))
				}
			}
		}
	}
	var parts []uint32
	var nodes []*plan.Node
	for r := 0; r < n; r++ {
		parts = append(parts, 1<<uint(r))
		scan := plan.NewScan(r, plan.SeqScan)
		if len(q.Relations[r].Filters) > 0 {
			idx := plan.NewScan(r, plan.IndexScan)
			if model.Cost(idx, env).Cost < model.Cost(scan, env).Cost {
				scan = idx
			}
		}
		nodes = append(nodes, scan)
	}
	rec(parts, nodes)
	return best
}

// The executor must produce identical result cardinalities for the
// optimizer's plan and a reference nested-loops plan on random queries
// with real data.
func TestRandomQueriesExecutorAgreement(t *testing.T) {
	cat, err := catalog.TPCDS(0.05)
	if err != nil {
		t.Fatal(err)
	}
	store, err := datagen.Populate(cat, datagen.Options{Seed: 999, BuildIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	st, err := stats.FromData(cat, store, 8)
	if err != nil {
		t.Fatal(err)
	}
	model := cost.NewModel(cost.DefaultParams())
	tried := 0
	for seed := uint64(70); seed <= 90 && tried < 8; seed++ {
		q, err := testutil.RandomQuery(seed, cat, 3, 1)
		if err != nil {
			t.Fatal(err)
		}
		// Skip queries whose estimated output explodes (random attr
		// joins can be cross-product-like).
		env := optimizer.BuildEnv(q, st)
		o := optimizer.New(q, model)
		best := o.Best(env)
		if best.Rows > 2e5 {
			continue
		}
		tried++
		e := exec.New(q, store, cost.DefaultParams())
		got, err := e.Run(best.Root, 0)
		if err != nil {
			t.Fatalf("seed %d: %v (%s)", seed, err, best.Root.Signature())
		}
		ref := referenceNL(q)
		want, err := e.Run(ref, 0)
		if err != nil {
			t.Fatalf("seed %d ref: %v", seed, err)
		}
		if got.Rows != want.Rows {
			t.Fatalf("seed %d: optimized plan %d rows, reference %d rows (%s)",
				seed, got.Rows, want.Rows, best.Root.Signature())
		}
	}
	if tried < 3 {
		t.Fatalf("only %d random queries were executable; generator too restrictive", tried)
	}
}

// referenceNL builds the left-deep all-NLJoin plan in relation order.
func referenceNL(q *query.Query) *plan.Node {
	root := plan.NewScan(0, plan.SeqScan)
	joined := uint32(1)
	used := map[int]bool{}
	for len(used) < len(q.Joins) {
		progressed := false
		for _, j := range q.Joins {
			if used[j.ID] {
				continue
			}
			lm, rm := uint32(1)<<uint(j.LeftRel), uint32(1)<<uint(j.RightRel)
			var next int
			switch {
			case joined&lm != 0 && joined&rm == 0:
				next = j.RightRel
			case joined&rm != 0 && joined&lm == 0:
				next = j.LeftRel
			case joined&lm != 0 && joined&rm != 0:
				used[j.ID] = true
				continue
			default:
				continue
			}
			root = plan.NewJoin(plan.NLJoin, []int{j.ID}, root, plan.NewScan(next, plan.SeqScan))
			joined |= 1 << uint(next)
			used[j.ID] = true
			progressed = true
		}
		if !progressed {
			panic("reference plan construction stuck")
		}
	}
	return root
}

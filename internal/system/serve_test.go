package system

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/server"
)

// serveResult records one request/response pair for replay comparison.
type serveResult struct {
	req    server.DiscoverRequest
	status int
	body   []byte
	err    error
}

func postDiscover(client *http.Client, base string, req server.DiscoverRequest) serveResult {
	b, err := json.Marshal(req)
	if err != nil {
		return serveResult{req: req, err: err}
	}
	resp, err := client.Post(base+"/discover", "application/json", bytes.NewReader(b))
	if err != nil {
		return serveResult{req: req, err: err}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return serveResult{req: req, status: resp.StatusCode, body: body, err: err}
}

// The service under concurrent chaos load must never wedge or go wrong
// silently: every request ends in a successful discovery or a typed
// rejection, every successful (or deterministically faulted) response
// replays bit for bit from its fault_seed once the load is gone, and a
// mid-flight SIGTERM drains cleanly — in-flight requests finish, late
// ones are refused, and Serve returns within the drain budget.
func TestServeChaosConcurrentThenSIGTERM(t *testing.T) {
	cfg := server.Config{
		Workloads:     []string{"EQ"},
		Scale:         0.2,
		Res:           6,
		MaxConcurrent: 4,
		MaxQueue:      6,
		// The breaker has its own unit tests; a trip here would only make
		// the rejection mix timing-dependent, so keep it out of the way.
		BreakerThreshold: 1 << 20,
		FaultSeed:        0xC0FFEE,
		FaultRate:        0.08,
		ExecLatency:      200 * time.Microsecond,
		DrainTimeout:     10 * time.Second,
		Logf:             t.Logf,
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wctx, wcancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer wcancel()
	if err := s.WaitReady(wctx); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 60 * time.Second}

	// Phase 1: 16 concurrent clients, each with its own deterministic
	// fault substream (fault_seed), hammer the admission queue.
	const clients, perClient = 16, 4
	algs := []string{"planbouquet", "spillbound", "alignedbound"}
	results := make([][]serveResult, clients)
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				req := server.DiscoverRequest{
					Workload:  "EQ",
					Algorithm: algs[(cl+i)%len(algs)],
					QA:        int32((cl*7 + i*13) % 36),
					TimeoutMS: 30_000,
					FaultSeed: uint64(cl)*1000 + uint64(i),
				}
				results[cl] = append(results[cl], postDiscover(client, base, req))
			}
		}(cl)
	}
	wg.Wait()

	// Every burst response is a success or a typed rejection. 200s and
	// chaos 500s are pure functions of the fault seed; load-dependent
	// rejections (shed, slot deadline) are not.
	var replayable []serveResult
	completed := 0
	for cl := range results {
		for _, r := range results[cl] {
			if r.err != nil {
				t.Fatalf("client %d: transport error before drain: %v", cl, r.err)
			}
			switch r.status {
			case http.StatusOK:
				var dr server.DiscoverResponse
				if err := json.Unmarshal(r.body, &dr); err != nil {
					t.Fatalf("client %d: 200 with undecodable body %q: %v", cl, r.body, err)
				}
				if !dr.Completed || dr.Aborted != "" {
					t.Fatalf("client %d: 200 without completed discovery: %q", cl, r.body)
				}
				completed++
				replayable = append(replayable, r)
			case http.StatusTooManyRequests, http.StatusServiceUnavailable,
				http.StatusGatewayTimeout, http.StatusInternalServerError:
				var er server.ErrorResponse
				if err := json.Unmarshal(r.body, &er); err != nil || er.Kind == "" {
					t.Fatalf("client %d: rejection %d without typed body %q (%v)", cl, r.status, r.body, err)
				}
				if r.status == http.StatusInternalServerError {
					if er.Kind != server.KindEngineFault {
						t.Fatalf("client %d: 500 with kind %q, want %q", cl, er.Kind, server.KindEngineFault)
					}
					replayable = append(replayable, r)
				}
			default:
				t.Fatalf("client %d: unexpected status %d body %q", cl, r.status, r.body)
			}
		}
	}
	if completed == 0 {
		t.Fatal("chaos burst produced no completed discoveries")
	}

	// Phase 2: sequential replay. The per-request injector is a pure
	// function of (server seed, fault_seed), so each recorded response —
	// success or deterministic engine fault — must come back bit for bit.
	for _, r := range replayable {
		again := postDiscover(client, base, r.req)
		if again.err != nil {
			t.Fatalf("replay fault_seed=%d: %v", r.req.FaultSeed, again.err)
		}
		if again.status != r.status || !bytes.Equal(again.body, r.body) {
			t.Fatalf("replay fault_seed=%d diverged:\nburst:  %d %q\nreplay: %d %q",
				r.req.FaultSeed, r.status, r.body, again.status, again.body)
		}
	}

	// Phase 3: SIGTERM with requests in flight. Everything already on a
	// connection finishes (success or typed rejection); requests that
	// race the closing listener may fail at transport level, but only
	// once the server is draining.
	last := make(chan serveResult, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			last <- postDiscover(client, base, server.DiscoverRequest{
				Workload: "EQ", Algorithm: "spillbound",
				QA: int32(i), TimeoutMS: 30_000, FaultSeed: 9000 + uint64(i),
			})
		}(i)
	}
	time.Sleep(2 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		r := <-last
		if r.err != nil {
			if !s.Draining() {
				t.Fatalf("transport error with server not draining: %v", r.err)
			}
			continue
		}
		switch r.status {
		case http.StatusOK:
			var dr server.DiscoverResponse
			if err := json.Unmarshal(r.body, &dr); err != nil || !dr.Completed {
				t.Fatalf("drain-phase 200 with bad body %q (%v)", r.body, err)
			}
		case http.StatusTooManyRequests, http.StatusServiceUnavailable,
			http.StatusGatewayTimeout, http.StatusInternalServerError:
			var er server.ErrorResponse
			if err := json.Unmarshal(r.body, &er); err != nil || er.Kind == "" {
				t.Fatalf("drain-phase rejection %d without typed body %q", r.status, r.body)
			}
		default:
			t.Fatalf("drain-phase unexpected status %d body %q", r.status, r.body)
		}
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serve returned error after SIGTERM: %v", err)
		}
	case <-time.After(cfg.DrainTimeout + 5*time.Second):
		t.Fatal("server failed to drain within the budget after SIGTERM")
	}
}

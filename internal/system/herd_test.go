package system

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/server"
)

// launchReplica constructs one replica and serves it immediately — a
// building replica answers /readyz and /snapshot with typed 503s, so
// a peer probing it during its own startup moves on fast instead of
// hanging in an unanswered accept backlog. The returned kill func
// stops serving and waits for Serve to return (closing every
// connection, so peers see refused dials — a crashed replica, not a
// draining one, from the ring's point of view).
func launchReplica(t *testing.T, cfg server.Config, ln net.Listener) (*server.Server, string, func()) {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()
	killed := false
	kill := func() {
		if killed {
			return
		}
		killed = true
		cancel()
		select {
		case <-served:
		case <-time.After(30 * time.Second):
			t.Fatal("replica did not stop within 30s")
		}
	}
	t.Cleanup(kill)
	return s, "http://" + ln.Addr().String(), kill
}

func awaitReady(t *testing.T, s *server.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := s.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
}

// startReplica is launchReplica + awaitReady: the single-replica
// convenience. Multi-replica scenarios launch the whole fleet first,
// then await, so no replica stalls probing a not-yet-serving peer.
func startReplica(t *testing.T, cfg server.Config, ln net.Listener) (*server.Server, string, func()) {
	t.Helper()
	s, base, kill := launchReplica(t, cfg, ln)
	awaitReady(t, s)
	return s, base, kill
}

func listenLoopback(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

// herdConfig is the single-replica serving config for the coalescing
// acceptance test: queue capacity above the herd size (shedding would
// turn a coalescing measurement into a retry measurement) and the
// breaker out of the way (its interplay has its own tests).
func herdConfig(t *testing.T) server.Config {
	return server.Config{
		Workloads:        []string{"EQ"},
		Scale:            0.2,
		Res:              6,
		MaxConcurrent:    8,
		MaxQueue:         128,
		BreakerThreshold: 1 << 20,
		Logf:             t.Logf,
	}
}

// runCoalesceHerd fires n identical same-signature requests at a fresh
// replica and returns the per-member bodies plus the compile count the
// server paid.
func runCoalesceHerd(t *testing.T, n int) ([][]byte, int64) {
	t.Helper()
	s, base, kill := startReplica(t, herdConfig(t), listenLoopback(t))
	defer kill()
	client := &http.Client{Timeout: 120 * time.Second}
	req := server.DiscoverRequest{
		Workload:  "2D_Q91",
		Algorithm: "sb",
		QA:        5,
		TimeoutMS: 90_000,
		FaultSeed: 0xABC, // identical across the herd: one signature, one schedule
	}
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			out := postDiscover(client, base, req)
			if out.err != nil {
				t.Errorf("member %d: transport error: %v", i, out.err)
				return
			}
			if out.status != http.StatusOK {
				t.Errorf("member %d: status %d: %s", i, out.status, out.body)
				return
			}
			bodies[i] = out.body
		}(i)
	}
	close(start)
	wg.Wait()
	return bodies, s.CompileCount("2D_Q91")
}

// Acceptance: a herd of 64 concurrent requests for the same query
// signature triggers exactly one compile — every member shares the
// coalesced artifact, nobody sees a 5xx, and the whole exchange
// replays bit for bit on a fresh replica.
func TestHerdCoalesceExactlyOneCompile(t *testing.T) {
	const herd = 64
	first, compiles := runCoalesceHerd(t, herd)
	if compiles != 1 {
		t.Fatalf("herd of %d paid %d compiles, want exactly 1", herd, compiles)
	}
	for i, b := range first {
		if b == nil {
			t.Fatalf("member %d has no body (non-200 above)", i)
		}
		if !bytes.Equal(b, first[0]) {
			t.Fatalf("member %d body diverges from member 0:\n%s\nvs\n%s", i, b, first[0])
		}
	}

	// Bit-for-bit replay: a fresh replica serving the same herd returns
	// the identical bytes.
	second, compiles2 := runCoalesceHerd(t, herd)
	if compiles2 != 1 {
		t.Fatalf("replay herd paid %d compiles, want exactly 1", compiles2)
	}
	for i := range second {
		if !bytes.Equal(second[i], first[i]) {
			t.Fatalf("replay member %d diverges:\nrun1: %s\nrun2: %s", i, first[i], second[i])
		}
	}
}

// failoverOutcome is one member's normalized response: ServedBy is a
// random loopback port and so cleared before replay comparison; every
// other field must replay exactly.
type failoverOutcome struct {
	status int
	body   []byte
}

// runFailoverScenario stands up a two-replica ring, routes a wave of
// requests through the non-owner (exercising forwarding), kills the
// owner, and routes a second wave (exercising hedged failover +
// degradation stamping). All traffic enters through the surviving
// replica; member i always carries QA i so outcomes are comparable
// across runs.
func runFailoverScenario(t *testing.T, wave int) (wave1, wave2 []failoverOutcome) {
	t.Helper()
	lnA, lnB := listenLoopback(t), listenLoopback(t)
	urlA := "http://" + lnA.Addr().String()
	urlB := "http://" + lnB.Addr().String()
	mkCfg := func(self string) server.Config {
		cfg := herdConfig(t)
		cfg.SelfURL = self
		cfg.Peers = []string{urlA, urlB}
		cfg.HealthInterval = 200 * time.Millisecond
		cfg.ForwardTimeout = 10 * time.Second
		// Ring routing and hedged failover are the subject here; with
		// the outcome cache on, wave 2 would be absorbed by wave 1's
		// cached forwarded responses and never exercise failover.
		cfg.OutcomeCacheBytes = -1
		return cfg
	}
	// Launch the whole fleet before awaiting readiness: each replica's
	// startup fan-out probe hits a serving-but-building peer (typed 503,
	// fast skip), and both cold-build in parallel.
	sA, _, killA := launchReplica(t, mkCfg(urlA), lnA)
	sB, _, killB := launchReplica(t, mkCfg(urlB), lnB)
	awaitReady(t, sA)
	awaitReady(t, sB)
	client := &http.Client{Timeout: 120 * time.Second}

	// Restart replica B with A serving: the restarted replica must
	// rebuild its pinned workload from A's /snapshot stream (warm
	// fan-out), not pay a cold compile.
	killB()
	lnB2, err := net.Listen("tcp", lnB.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	sB, _, killB = startReplica(t, mkCfg(urlB), lnB2)
	resp, err := client.Get(urlB + "/workloads")
	if err != nil {
		t.Fatal(err)
	}
	var infos []server.WorkloadInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) == 0 || infos[0].Name != "EQ" || !infos[0].WarmLoaded {
		t.Fatalf("replica B did not warm fan-out EQ from its peer: %+v", infos)
	}

	// Discover who owns the 2D_Q91 signature by asking either replica.
	probe := postDiscover(client, urlA, server.DiscoverRequest{
		Workload: "2D_Q91", Algorithm: "sb", QA: 0, TimeoutMS: 90_000})
	if probe.status != http.StatusOK {
		t.Fatalf("ownership probe: status %d: %s", probe.status, probe.body)
	}
	var pr server.DiscoverResponse
	if err := json.Unmarshal(probe.body, &pr); err != nil {
		t.Fatal(err)
	}
	owner, survivorURL, survivorSrv, killOwner, killSurvivor := urlA, urlB, sB, killA, killB
	if pr.ServedBy == urlB {
		owner, survivorURL, survivorSrv, killOwner, killSurvivor = urlB, urlA, sA, killB, killA
	}

	fire := func(expectServedBy, expectDegraded string) []failoverOutcome {
		outs := make([]failoverOutcome, wave)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for i := 0; i < wave; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-start
				out := postDiscover(client, survivorURL, server.DiscoverRequest{
					Workload: "2D_Q91", Algorithm: "sb", QA: int32(i), TimeoutMS: 90_000})
				if out.err != nil {
					t.Errorf("member %d: transport error: %v", i, out.err)
					return
				}
				if out.status != http.StatusOK {
					t.Errorf("member %d: status %d: %s", i, out.status, out.body)
					return
				}
				var dr server.DiscoverResponse
				if err := json.Unmarshal(out.body, &dr); err != nil {
					t.Errorf("member %d: %v", i, err)
					return
				}
				if dr.ServedBy != expectServedBy {
					t.Errorf("member %d served by %q, want %q", i, dr.ServedBy, expectServedBy)
				}
				if dr.Degraded != expectDegraded {
					t.Errorf("member %d degraded %q, want %q", i, dr.Degraded, expectDegraded)
				}
				// Normalize: the replica URL embeds a random port.
				dr.ServedBy = ""
				nb, err := json.Marshal(dr)
				if err != nil {
					t.Errorf("member %d: %v", i, err)
					return
				}
				outs[i] = failoverOutcome{status: out.status, body: nb}
			}(i)
		}
		close(start)
		wg.Wait()
		return outs
	}

	// Wave 1: the survivor is not the owner, so every request forwards
	// across the ring and comes back stamped with the owner's identity.
	wave1 = fire(owner, "")

	// Kill the owner mid-herd (between waves of one continuous load):
	// its listener closes and every connection dies.
	killOwner()

	// Wave 2: the survivor detects the dead owner (failed probe or
	// refused dial), hedges to the next ring position — itself — and
	// serves locally with a degradation stamp. No 5xx storm: every
	// member completes 200.
	wave2 = fire(survivorURL, "failover")

	if got := survivorSrv.CompileCount("2D_Q91"); got != 1 {
		t.Errorf("survivor paid %d compiles for the failover wave, want exactly 1", got)
	}

	// The survivor's proxy accounting saw both regimes.
	mresp, err := client.Get(survivorURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mbuf bytes.Buffer
	mbuf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"rqp_forwards_total", "rqp_failovers_total", "rqp_peer_up"} {
		if !bytes.Contains(mbuf.Bytes(), []byte(want)) {
			t.Errorf("survivor /metrics missing %s:\n%s", want, mbuf.String())
		}
	}
	killSurvivor()
	return wave1, wave2
}

// Acceptance: killing a replica mid-herd completes every request via
// hedged failover with a degradation stamp and no 5xx storm — and the
// whole scenario replays: member i's normalized outcome is identical
// across independent runs of the same deterministic schedule.
func TestShardFailoverMidHerd(t *testing.T) {
	const wave = 8
	w1a, w2a := runFailoverScenario(t, wave)
	w1b, w2b := runFailoverScenario(t, wave)
	for i := 0; i < wave; i++ {
		if !bytes.Equal(w1a[i].body, w1b[i].body) {
			t.Fatalf("wave-1 member %d diverges across runs:\n%s\nvs\n%s", i, w1a[i].body, w1b[i].body)
		}
		if !bytes.Equal(w2a[i].body, w2b[i].body) {
			t.Fatalf("wave-2 member %d diverges across runs:\n%s\nvs\n%s", i, w2a[i].body, w2b[i].body)
		}
	}
	// Forwarded and failover serves of the same request agree on the
	// discovery outcome itself: the only legitimate difference is the
	// degradation stamp.
	for i := 0; i < wave; i++ {
		var fwd, fo server.DiscoverResponse
		if err := json.Unmarshal(w1a[i].body, &fwd); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(w2a[i].body, &fo); err != nil {
			t.Fatal(err)
		}
		if fwd.TotalCost != fo.TotalCost || fwd.Steps != fo.Steps || fwd.Completed != fo.Completed {
			t.Fatalf("member %d: forwarded outcome %+v != failover outcome %+v", i, fwd, fo)
		}
	}
}

// The throughput herd driver honors Retry-After on shed: members that
// hit the bounded queue re-send after the advertised (jittered,
// capped) wait instead of failing, and the result surfaces the retry
// work so shedding is never silently absorbed.
func TestHerdDriverHonorsRetryAfter(t *testing.T) {
	cfg := herdConfig(t)
	cfg.MaxConcurrent = 1
	cfg.MaxQueue = 1
	cfg.ExecLatency = 2 * time.Millisecond
	_, base, kill := startReplica(t, cfg, listenLoopback(t))
	defer kill()

	body, err := json.Marshal(server.DiscoverRequest{
		Workload: "EQ", Algorithm: "sb", QA: 7, TimeoutMS: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := experiments.Herd(experiments.HerdOptions{
		BaseURL:     base,
		Body:        body,
		Concurrency: 8,
		MaxRetries:  4,
		Seed:        42,
		WaitCap:     100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for code, n := range res.Statuses {
		if code != http.StatusOK && code != http.StatusTooManyRequests {
			t.Fatalf("herd saw status %d (%d member(s)): %s", code, n, res)
		}
		total += n
	}
	if total != 8 {
		t.Fatalf("herd accounted %d members, want 8: %s", total, res)
	}
	// Capacity 2 against 8 simultaneous members: shedding must happen,
	// and the driver must have paid visible retries for it.
	if res.Statuses[http.StatusTooManyRequests]+res.Retried == 0 {
		t.Fatalf("no shedding and no retries at capacity 2 under herd 8: %s", res)
	}
}

package system

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/core/discovery"
	"repro/internal/faultinject"
)

// Every registered strategy — the three paper algorithms and the three
// bake-off heuristics — must survive the shared chaos matrix: transient
// faults retried away, the run completed, the degradation ledger
// structurally valid (ValidateDegradations), the bill never below
// wasted cost, and the whole episode bit-for-bit reproducible under the
// same seed.
func TestChaosAllStrategiesLedgerInvariants(t *testing.T) {
	s := buildRandomSpace(t, 11, 4, 2, 6)
	c, err := core.Compile(s, core.CompileOptions{PrimeAlignment: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range core.Strategies() {
		for qa := int32(0); qa < int32(s.Grid.NumPoints()); qa += 5 {
			seed := uint64(qa)*31 + 7
			run := func() (*discovery.Outcome, error) {
				in := faultinject.New(chaosConfig(seed))
				return c.NewRun().WithFaults(in).DiscoverStrategy(name, qa)
			}
			out, err := run()
			if err != nil {
				t.Fatalf("%s qa=%d: %v", name, qa, err)
			}
			if !out.Completed {
				t.Fatalf("%s qa=%d: transient chaos must not prevent completion", name, qa)
			}
			if verr := discovery.ValidateDegradations(out, false); verr != nil {
				t.Fatalf("%s qa=%d: %v\nledger: %+v", name, qa, verr, out.Degradations)
			}
			if out.WastedCost > out.TotalCost || out.TotalCost < s.PointCost[qa] {
				t.Fatalf("%s qa=%d: implausible bill total=%v wasted=%v opt=%v",
					name, qa, out.TotalCost, out.WastedCost, s.PointCost[qa])
			}
			again, err := run()
			if err != nil {
				t.Fatalf("%s qa=%d rerun: %v", name, qa, err)
			}
			if !reflect.DeepEqual(out, again) {
				t.Fatalf("%s qa=%d: same seed diverged:\n%+v\n%+v", name, qa, out, again)
			}
		}
	}
}

// An aborted run of any strategy carries exactly one run-level
// exec-abandoned stamp — the invariant ValidateDegradations pins.
func TestChaosAllStrategiesAbortStamp(t *testing.T) {
	s := buildRandomSpace(t, 11, 4, 2, 6)
	c, err := core.Compile(s, core.CompileOptions{PrimeAlignment: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // every run aborts at its first execution boundary
	qa := int32(s.Grid.NumPoints() / 2)
	for _, name := range core.Strategies() {
		in := faultinject.New(chaosConfig(3))
		out, err := c.NewRun().WithFaults(in).WithContext(ctx).DiscoverStrategy(name, qa)
		aerr := discovery.AbortCause(err)
		if aerr == nil {
			t.Fatalf("%s: canceled run returned err=%v, want abort", name, err)
		}
		if out == nil || out.Completed {
			t.Fatalf("%s: aborted run outcome %+v", name, out)
		}
		if verr := discovery.ValidateDegradations(out, true); verr != nil {
			t.Fatalf("%s: %v\nledger: %+v", name, verr, out.Degradations)
		}
	}
}

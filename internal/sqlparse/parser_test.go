package sqlparse

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
)

func cat() *catalog.Catalog {
	c, err := catalog.TPCDS(1)
	if err != nil {
		panic(err)
	}
	return c
}

const eq = `
SELECT *
FROM catalog_sales cs, date_dim d, customer c
WHERE cs.cs_sold_date_sk = d.date_dim_sk
  AND cs.cs_bill_customer_sk = c.c_customer_sk
  AND d.d_year = 2000
  AND c.c_birth_year < 1980
`

func TestParseBasic(t *testing.T) {
	q, err := Parse("t", cat(), eq)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Relations) != 3 {
		t.Fatalf("relations = %d, want 3", len(q.Relations))
	}
	if q.Relations[0].Alias != "cs" || q.Relations[1].Alias != "d" {
		t.Error("aliases not bound")
	}
	if len(q.Joins) != 2 {
		t.Fatalf("joins = %d, want 2", len(q.Joins))
	}
	if len(q.Relations[1].Filters) != 1 || q.Relations[1].Filters[0].Column != "d_year" {
		t.Error("date filter not attached to d")
	}
	if f := q.Relations[2].Filters[0]; f.Op != expr.LT || f.Value != 1980 {
		t.Errorf("customer filter = %+v", f)
	}
}

func TestParseAliasForms(t *testing.T) {
	q, err := Parse("t", cat(), `SELECT * FROM date_dim AS d, store_sales WHERE store_sales.ss_sold_date_sk = d.date_dim_sk`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Relations[0].Alias != "d" {
		t.Error("AS alias not applied")
	}
	if q.Relations[1].Alias != "store_sales" {
		t.Error("default alias should be the table name")
	}
}

func TestParseSelectColumnList(t *testing.T) {
	if _, err := Parse("t", cat(), `SELECT d.d_year, d_moy FROM date_dim d`); err != nil {
		t.Fatal(err)
	}
}

func TestParseBareColumnResolution(t *testing.T) {
	q, err := Parse("t", cat(), `SELECT * FROM date_dim d WHERE d_year >= 1999`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Relations[0].Filters) != 1 {
		t.Fatal("bare column filter not bound")
	}
}

func TestParseFlippedLiteral(t *testing.T) {
	q, err := Parse("t", cat(), `SELECT * FROM date_dim d WHERE 2000 <= d.d_year`)
	if err != nil {
		t.Fatal(err)
	}
	f := q.Relations[0].Filters[0]
	if f.Op != expr.GE || f.Value != 2000 {
		t.Errorf("flipped filter = %+v, want d_year >= 2000", f)
	}
}

func TestParseNegativeLiteral(t *testing.T) {
	q, err := Parse("t", cat(), `SELECT * FROM customer_address ca WHERE ca.ca_gmt_offset = -6`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Relations[0].Filters[0].Value != -6 {
		t.Error("negative literal not parsed")
	}
}

func TestParseComments(t *testing.T) {
	src := "SELECT * -- all cols\nFROM date_dim d -- dim\nWHERE d.d_moy = 5"
	if _, err := Parse("t", cat(), src); err != nil {
		t.Fatal(err)
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	if _, err := Parse("t", cat(), `SELECT * FROM store s;`); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		sql  string
		want string
	}{
		{`FROM x`, "expected SELECT"},
		{`SELECT * WHERE a = b`, "expected FROM"},
		{`SELECT * FROM`, "expected table name"},
		{`SELECT * FROM nosuch n`, "unknown table"},
		{`SELECT * FROM date_dim d WHERE d.d_year ~ 3`, "unexpected character"},
		{`SELECT * FROM date_dim d WHERE d.nope = 3`, "not found"},
		{`SELECT * FROM date_dim d WHERE zz = 3`, "unresolved column"},
		{`SELECT * FROM date_dim d, time_dim t WHERE d.date_dim_sk < t.time_dim_sk`, "equi-join"},
		{`SELECT * FROM date_dim d WHERE 1 = 2`, "two literals"},
		{`SELECT * FROM date_dim d WHERE d.d_year = 3 extra`, "trailing input"},
		{`SELECT * FROM date_dim d WHERE badalias.x = 3`, "unknown alias"},
		{`SELECT * FROM store_sales ss, store_returns sr WHERE ss.ss_item_sk = sr.sr_item_sk AND item_sk_missing = 1`, "unresolved column"},
		{`SELECT * FROM date_dim d, time_dim t WHERE d.date_dim_sk = t.time_dim_sk AND d_dom = d_dom`, "disconnect"}, // d_dom=d_dom is a self-loop... expect validate error
	}
	for _, c := range cases {
		_, err := Parse("t", cat(), c.sql)
		if err == nil {
			t.Errorf("Parse(%q) should fail", c.sql)
			continue
		}
	}
}

func TestParseAmbiguousBareColumn(t *testing.T) {
	// d_year exists only in date_dim, but joining date_dim twice makes it ambiguous.
	sql := `SELECT * FROM date_dim d1, date_dim d2 WHERE d1.date_dim_sk = d2.date_dim_sk AND d_year = 2000`
	if _, err := Parse("t", cat(), sql); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("err = %v, want ambiguous", err)
	}
}

func TestMarkEPP(t *testing.T) {
	q, err := Parse("t", cat(), eq)
	if err != nil {
		t.Fatal(err)
	}
	if err := MarkEPP(q, "cs.cs_sold_date_sk", "d.date_dim_sk"); err != nil {
		t.Fatal(err)
	}
	// Reversed column order must also match.
	if err := MarkEPP(q, "c.c_customer_sk", "cs.cs_bill_customer_sk"); err != nil {
		t.Fatal(err)
	}
	if q.D() != 2 || q.EPPs[0] != 0 || q.EPPs[1] != 1 {
		t.Fatalf("EPPs = %v", q.EPPs)
	}
	// Duplicate marking is an error.
	if err := MarkEPP(q, "cs.cs_sold_date_sk", "d.date_dim_sk"); err == nil {
		t.Error("duplicate MarkEPP should fail")
	}
	// Nonexistent join.
	if err := MarkEPP(q, "cs.cs_item_sk", "d.date_dim_sk"); err == nil {
		t.Error("MarkEPP on missing join should fail")
	}
	// Bad alias.
	if err := MarkEPP(q, "zz.x", "d.date_dim_sk"); err == nil {
		t.Error("MarkEPP with bad alias should fail")
	}
	// Malformed qualified name.
	if err := MarkEPP(q, "noDot", "d.date_dim_sk"); err == nil {
		t.Error("MarkEPP with malformed name should fail")
	}
}

func TestParseBetween(t *testing.T) {
	q, err := Parse("t", cat(), `SELECT * FROM date_dim d WHERE d.d_year BETWEEN 1999 AND 2001 AND d.d_moy = 5`)
	if err != nil {
		t.Fatal(err)
	}
	fs := q.Relations[0].Filters
	if len(fs) != 3 {
		t.Fatalf("filters = %d, want 3 (two range bounds + moy)", len(fs))
	}
	if fs[0].Op != expr.GE || fs[0].Value != 1999 {
		t.Errorf("lower bound = %+v", fs[0])
	}
	if fs[1].Op != expr.LE || fs[1].Value != 2001 {
		t.Errorf("upper bound = %+v", fs[1])
	}
}

func TestParseIn(t *testing.T) {
	q, err := Parse("t", cat(), `SELECT * FROM date_dim d WHERE d.d_moy IN (1, 2, 12)`)
	if err != nil {
		t.Fatal(err)
	}
	f := q.Relations[0].Filters[0]
	if !f.IsIn() || len(f.Values) != 3 || f.Values[2] != 12 {
		t.Fatalf("IN filter = %+v", f)
	}
	if !strings.Contains(f.String(), "IN (1, 2, 12)") {
		t.Errorf("IN display = %q", f.String())
	}
}

func TestParseParenthesizedConjunction(t *testing.T) {
	q, err := Parse("t", cat(), `SELECT * FROM date_dim d, time_dim t
		WHERE (d.date_dim_sk = t.time_dim_sk AND d.d_year = 2000) AND t.t_hour = 9`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Joins) != 1 {
		t.Fatal("join inside parens not found")
	}
	if len(q.Relations[0].Filters) != 1 || len(q.Relations[1].Filters) != 1 {
		t.Fatal("filters inside and outside parens not both attached")
	}
}

func TestParseBetweenErrors(t *testing.T) {
	cases := []string{
		`SELECT * FROM date_dim d WHERE 5 BETWEEN 1 AND 9`,
		`SELECT * FROM date_dim d WHERE d.d_year BETWEEN d.d_moy AND 9`,
		`SELECT * FROM date_dim d WHERE d.d_year BETWEEN 1 9`,
	}
	for _, sql := range cases {
		if _, err := Parse("t", cat(), sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestParseInErrors(t *testing.T) {
	cases := []string{
		`SELECT * FROM date_dim d WHERE 3 IN (1, 2)`,
		`SELECT * FROM date_dim d WHERE d.d_moy IN (d.d_year)`,
		`SELECT * FROM date_dim d WHERE d.d_moy IN (1, 2`,
		`SELECT * FROM date_dim d WHERE d.d_moy IN 1`,
	}
	for _, sql := range cases {
		if _, err := Parse("t", cat(), sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestParseUnbalancedParens(t *testing.T) {
	if _, err := Parse("t", cat(), `SELECT * FROM date_dim d WHERE (d.d_moy = 1`); err == nil {
		t.Fatal("unbalanced parens should fail")
	}
}

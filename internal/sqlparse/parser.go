package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/query"
)

// Parse parses an SPJ SQL statement against the catalog and returns a
// validated query with the given name. No epps are marked; callers use
// MarkEPP (or query.Query.EPPs directly) to declare the error-prone
// joins.
func Parse(name string, cat *catalog.Catalog, sql string) (*query.Query, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, cat: cat}
	q, err := p.parseQuery()
	if err != nil {
		return nil, fmt.Errorf("sqlparse: %w", err)
	}
	q.Name = name
	q.Cat = cat
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("sqlparse: %w", err)
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
	cat  *catalog.Catalog
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) expectSymbol(s string) error {
	t := p.next()
	if t.kind != tokSymbol || t.text != s {
		return fmt.Errorf("expected %q at offset %d, got %q", s, t.pos, t.text)
	}
	return nil
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if !keywordEq(t, kw) {
		return fmt.Errorf("expected %s at offset %d, got %q", strings.ToUpper(kw), t.pos, t.text)
	}
	return nil
}

func (p *parser) parseQuery() (*query.Query, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	if err := p.parseSelectList(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	q := &query.Query{}
	if err := p.parseFromList(q); err != nil {
		return nil, err
	}
	if keywordEq(p.peek(), "where") {
		p.next()
		if err := p.parseWhere(q); err != nil {
			return nil, err
		}
	}
	// Optional trailing semicolon.
	if t := p.peek(); t.kind == tokSymbol && t.text == ";" {
		p.next()
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("trailing input at offset %d: %q", t.pos, t.text)
	}
	return q, nil
}

// parseSelectList accepts '*' or a comma-separated list of (qualified)
// columns. SPJ processing projects all columns, so the list is checked
// for syntax and discarded.
func (p *parser) parseSelectList() error {
	if t := p.peek(); t.kind == tokSymbol && t.text == "*" {
		p.next()
		return nil
	}
	for {
		if t := p.next(); t.kind != tokIdent {
			return fmt.Errorf("expected column in select list at offset %d", t.pos)
		}
		if t := p.peek(); t.kind == tokSymbol && t.text == "." {
			p.next()
			if t := p.next(); t.kind != tokIdent {
				return fmt.Errorf("expected column after '.' at offset %d", t.pos)
			}
		}
		if t := p.peek(); t.kind == tokSymbol && t.text == "," {
			p.next()
			continue
		}
		return nil
	}
}

func (p *parser) parseFromList(q *query.Query) error {
	for {
		t := p.next()
		if t.kind != tokIdent {
			return fmt.Errorf("expected table name at offset %d", t.pos)
		}
		rel := query.Relation{Table: t.text, Alias: t.text}
		if keywordEq(p.peek(), "as") {
			p.next()
		}
		if a := p.peek(); a.kind == tokIdent && !keywordEq(a, "where") {
			p.next()
			rel.Alias = a.text
		}
		q.Relations = append(q.Relations, rel)
		if t := p.peek(); t.kind == tokSymbol && t.text == "," {
			p.next()
			continue
		}
		return nil
	}
}

type operand struct {
	isCol      bool
	rel        int // relation index for columns
	col        string
	lit        int64
	pos        int
	aliasOrCol string
}

func (p *parser) parseWhere(q *query.Query) error {
	for {
		if err := p.parseCondition(q); err != nil {
			return err
		}
		if keywordEq(p.peek(), "and") {
			p.next()
			continue
		}
		return nil
	}
}

func (p *parser) parseCondition(q *query.Query) error {
	// Parenthesized conjunction: ( cond AND cond ... ).
	if t := p.peek(); t.kind == tokSymbol && t.text == "(" {
		p.next()
		if err := p.parseWhere(q); err != nil {
			return err
		}
		return p.expectSymbol(")")
	}
	l, err := p.parseOperand(q)
	if err != nil {
		return err
	}
	if keywordEq(p.peek(), "between") {
		return p.parseBetween(q, l)
	}
	if keywordEq(p.peek(), "in") {
		return p.parseIn(q, l)
	}
	opTok := p.next()
	op, ok := cmpOps[opTok.text]
	if !ok || opTok.kind != tokSymbol {
		return fmt.Errorf("expected comparison operator at offset %d, got %q", opTok.pos, opTok.text)
	}
	r, err := p.parseOperand(q)
	if err != nil {
		return err
	}
	switch {
	case l.isCol && r.isCol:
		if op != expr.EQ {
			return fmt.Errorf("only equi-joins are supported (offset %d)", opTok.pos)
		}
		q.Joins = append(q.Joins, query.Join{
			ID:      len(q.Joins),
			LeftRel: l.rel, RightRel: r.rel,
			LeftCol: l.col, RightCol: r.col,
		})
	case l.isCol && !r.isCol:
		q.Relations[l.rel].Filters = append(q.Relations[l.rel].Filters,
			query.FilterPred{Column: l.col, Op: op, Value: r.lit})
	case !l.isCol && r.isCol:
		q.Relations[r.rel].Filters = append(q.Relations[r.rel].Filters,
			query.FilterPred{Column: r.col, Op: flip(op), Value: l.lit})
	default:
		return fmt.Errorf("condition with two literals at offset %d", opTok.pos)
	}
	return nil
}

// parseBetween desugars "col BETWEEN lo AND hi" into two range filters.
func (p *parser) parseBetween(q *query.Query, l operand) error {
	p.next() // BETWEEN
	if !l.isCol {
		return fmt.Errorf("BETWEEN requires a column at offset %d", l.pos)
	}
	lo, err := p.parseOperand(q)
	if err != nil {
		return err
	}
	if err := p.expectKeyword("and"); err != nil {
		return err
	}
	hi, err := p.parseOperand(q)
	if err != nil {
		return err
	}
	if lo.isCol || hi.isCol {
		return fmt.Errorf("BETWEEN bounds must be literals at offset %d", l.pos)
	}
	q.Relations[l.rel].Filters = append(q.Relations[l.rel].Filters,
		query.FilterPred{Column: l.col, Op: expr.GE, Value: lo.lit},
		query.FilterPred{Column: l.col, Op: expr.LE, Value: hi.lit})
	return nil
}

// parseIn parses "col IN (v1, v2, ...)" into an IN-list filter.
func (p *parser) parseIn(q *query.Query, l operand) error {
	p.next() // IN
	if !l.isCol {
		return fmt.Errorf("IN requires a column at offset %d", l.pos)
	}
	if err := p.expectSymbol("("); err != nil {
		return err
	}
	var vals []int64
	for {
		v, err := p.parseOperand(q)
		if err != nil {
			return err
		}
		if v.isCol {
			return fmt.Errorf("IN list must contain literals at offset %d", v.pos)
		}
		vals = append(vals, v.lit)
		t := p.next()
		if t.kind == tokSymbol && t.text == "," {
			continue
		}
		if t.kind == tokSymbol && t.text == ")" {
			break
		}
		return fmt.Errorf("expected ',' or ')' in IN list at offset %d", t.pos)
	}
	q.Relations[l.rel].Filters = append(q.Relations[l.rel].Filters,
		query.FilterPred{Column: l.col, Values: vals})
	return nil
}

var cmpOps = map[string]expr.CmpOp{
	"=": expr.EQ, "<>": expr.NE, "!=": expr.NE,
	"<": expr.LT, "<=": expr.LE, ">": expr.GT, ">=": expr.GE,
}

func flip(op expr.CmpOp) expr.CmpOp {
	switch op {
	case expr.LT:
		return expr.GT
	case expr.LE:
		return expr.GE
	case expr.GT:
		return expr.LT
	case expr.GE:
		return expr.LE
	default:
		return op
	}
}

// parseOperand parses either a literal or a column reference. Column
// references may be qualified ("alias.col") or bare; bare names resolve
// against the relations in FROM, and must be unambiguous.
func (p *parser) parseOperand(q *query.Query) (operand, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return operand{}, fmt.Errorf("bad literal %q at offset %d", t.text, t.pos)
		}
		return operand{lit: v, pos: t.pos}, nil
	case tokIdent:
		if n := p.peek(); n.kind == tokSymbol && n.text == "." {
			p.next()
			c := p.next()
			if c.kind != tokIdent {
				return operand{}, fmt.Errorf("expected column after %q. at offset %d", t.text, c.pos)
			}
			rel := -1
			for i := range q.Relations {
				if q.Relations[i].Alias == t.text {
					rel = i
					break
				}
			}
			if rel < 0 {
				return operand{}, fmt.Errorf("unknown alias %q at offset %d", t.text, t.pos)
			}
			return operand{isCol: true, rel: rel, col: c.text, pos: t.pos}, nil
		}
		// Bare column: resolve by searching catalog tables of the query.
		rel := -1
		for i := range q.Relations {
			tab := p.cat.Table(q.Relations[i].Table)
			if tab != nil && tab.ColumnIndex(t.text) >= 0 {
				if rel >= 0 {
					return operand{}, fmt.Errorf("ambiguous column %q at offset %d", t.text, t.pos)
				}
				rel = i
			}
		}
		if rel < 0 {
			return operand{}, fmt.Errorf("unresolved column %q at offset %d", t.text, t.pos)
		}
		return operand{isCol: true, rel: rel, col: t.text, pos: t.pos}, nil
	default:
		return operand{}, fmt.Errorf("unexpected token %q at offset %d", t.text, t.pos)
	}
}

// MarkEPP declares the join between the two qualified columns
// ("alias.col") as error-prone, appending it as the next ESS dimension.
// The order of MarkEPP calls defines dimension order.
func MarkEPP(q *query.Query, left, right string) error {
	la, lc, err := catalog.QualifiedColumn(left)
	if err != nil {
		return err
	}
	ra, rc, err := catalog.QualifiedColumn(right)
	if err != nil {
		return err
	}
	li, ri := q.RelIndex(la), q.RelIndex(ra)
	if li < 0 || ri < 0 {
		return fmt.Errorf("sqlparse: MarkEPP unknown alias in (%s, %s)", left, right)
	}
	for _, j := range q.Joins {
		match := (j.LeftRel == li && j.LeftCol == lc && j.RightRel == ri && j.RightCol == rc) ||
			(j.LeftRel == ri && j.LeftCol == rc && j.RightRel == li && j.RightCol == lc)
		if match {
			if q.EPPDim(j.ID) >= 0 {
				return fmt.Errorf("sqlparse: join %s=%s already an epp", left, right)
			}
			q.EPPs = append(q.EPPs, j.ID)
			return nil
		}
	}
	return fmt.Errorf("sqlparse: no join %s = %s in query %s", left, right, q.Name)
}

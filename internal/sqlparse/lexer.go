// Package sqlparse parses the SPJ SQL subset used by the workload:
//
//	SELECT <*|cols> FROM t1 [AS] a1, t2 a2, ...
//	WHERE a1.x = a2.y AND a1.z < 10 AND ...
//
// Join predicates are column=column conditions; everything else in the
// conjunction must be a column-vs-literal filter. The parser binds the
// query against a catalog and returns a validated *query.Query.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokSymbol // punctuation and operators: , . * = <> < <= > >= ( )
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c >= '0' && c <= '9':
			l.lexNumber()
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
			l.lexNumber()
		default:
			if err := l.lexSymbol(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexNumber() {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexSymbol() error {
	two := ""
	if l.pos+2 <= len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=":
		l.toks = append(l.toks, token{kind: tokSymbol, text: two, pos: l.pos})
		l.pos += 2
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case ',', '.', '*', '=', '<', '>', '(', ')', ';':
		l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: l.pos})
		l.pos++
		return nil
	}
	return fmt.Errorf("sqlparse: unexpected character %q at offset %d", c, l.pos)
}

func keywordEq(t token, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

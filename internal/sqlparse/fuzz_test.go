package sqlparse

import (
	"testing"

	"repro/internal/catalog"
)

// FuzzParse throws arbitrary strings at the SQL parser: it must reject
// malformed input with an error, never a panic, and any query it
// accepts must survive validation.
func FuzzParse(f *testing.F) {
	cat, err := catalog.TPCDS(0.1)
	if err != nil {
		f.Fatal(err)
	}
	f.Add("SELECT * FROM store_sales ss, date_dim d WHERE ss.ss_sold_date_sk = d.date_dim_sk")
	f.Add(`SELECT * FROM catalog_sales cs, date_dim d, customer c
WHERE cs.cs_sold_date_sk = d.date_dim_sk
  AND cs.cs_bill_customer_sk = c.c_customer_sk
  AND d.d_year = 2000`)
	f.Add("SELECT")
	f.Add("SELECT * FROM")
	f.Add("select * from t where")
	f.Add("SELECT * FROM store_sales ss WHERE ss.ss_sold_date_sk = ")
	f.Add("SELECT * FROM nosuch n")
	f.Add("SELECT * FROM store_sales ss, store_sales ss")
	f.Add("\x00\xff(')=,.*")
	f.Add("SELECT * FROM store_sales ss WHERE ss.ss_quantity = 'unterminated")

	f.Fuzz(func(t *testing.T, sql string) {
		if len(sql) > 1<<12 {
			t.Skip("oversized input")
		}
		q, err := Parse("fuzz", cat, sql)
		if err != nil {
			return // rejected cleanly
		}
		if q == nil {
			t.Fatal("Parse returned nil query without error")
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("accepted query fails validation: %v", err)
		}
	})
}

package exec

import (
	"io"

	"repro/internal/expr"
	"repro/internal/storage"
)

// vecIndexNLJoin streams outer batches, probing the inner relation's
// hash index per outer row. In the default batched mode the fetch
// charges of one probe's matches bill as one ChargeN before filtering;
// in lockstep mode (armed faults) fetch and output charges interleave
// per match exactly like the tuple engine, so kill points replay bit
// for bit.
type vecIndexNLJoin struct {
	vecJoinBase
	rel     *storage.Relation
	filters []boundFilter
	// clsDescend carries the whole per-outer-row descent charge
	// (IdxDescend·log₂(N+2)) as its class constant.
	clsDescend, clsFetch, clsOut int
	out                          *outBuf
	ls                           bool

	pb      *rowBatch
	pi      int
	cur     expr.Row
	matches []int32
	mi      int
	have    bool
	done    bool
	// innerFiltered is the inner relation's filtered cardinality,
	// counted once for the selectivity observation (a statistics lookup,
	// not execution work — hence uncharged).
	innerFiltered int64
}

func (j *vecIndexNLJoin) Open() error {
	if err := j.left.Open(); err != nil {
		return err
	}
	j.innerFiltered = 0
	for _, row := range j.rel.Rows {
		if matchAll(j.filters, row) {
			j.innerFiltered++
		}
	}
	j.obs.RightRows = j.innerFiltered
	j.pb, j.pi = nil, 0
	j.have = false
	j.done = false
	return nil
}

func (j *vecIndexNLJoin) NextBatch() (*rowBatch, error) {
	if j.done {
		return nil, io.EOF
	}
	j.out.reset()
	for {
		if !j.have {
			if j.pb == nil || j.pi >= j.pb.n() {
				b, err := j.left.NextBatch()
				if err == io.EOF {
					j.exact = true
					j.done = true
					if j.out.len() > 0 {
						return j.out.take(), nil
					}
					return nil, io.EOF
				}
				if err != nil {
					return nil, err
				}
				j.pb, j.pi = b, 0
			}
			row := j.pb.row(j.pi)
			j.pi++
			j.obs.LeftRows++
			// One index descent per outer row (charged before the null
			// check, like the tuple engine).
			if _, err := j.meter.ChargeN(j.clsDescend, 1); err != nil {
				return nil, err
			}
			k := row[j.jc.leftPos[0]]
			if k.IsNull() {
				continue
			}
			j.cur = row
			j.matches = j.rel.HashLookup(j.jc.rightPos[0], k.I)
			j.mi = 0
			j.have = true
			if !j.ls {
				// Batched mode: bill every random fetch of this probe up
				// front; the counts at any kill equal the tuple engine's
				// only for completed runs, which is all that is observable
				// without armed faults.
				if _, err := j.meter.ChargeN(j.clsFetch, int64(len(j.matches))); err != nil {
					return nil, err
				}
			}
		}
		if j.ls {
			for j.mi < len(j.matches) {
				inner := j.rel.Rows[j.matches[j.mi]]
				j.mi++
				if _, err := j.meter.ChargeN(j.clsFetch, 1); err != nil {
					return nil, err
				}
				if !j.innerMatches(inner) {
					continue
				}
				if _, err := j.meter.ChargeN(j.clsOut, 1); err != nil {
					return nil, err
				}
				j.obs.OutRows++
				j.out.emit(j.cur, inner)
				if j.out.full() {
					return j.out.take(), nil
				}
			}
			j.have = false
			continue
		}
		gathered := int64(0)
		for j.mi < len(j.matches) && !j.out.full() {
			inner := j.rel.Rows[j.matches[j.mi]]
			j.mi++
			if !j.innerMatches(inner) {
				continue
			}
			j.out.emit(j.cur, inner)
			gathered++
		}
		if gathered > 0 {
			if _, err := j.meter.ChargeN(j.clsOut, gathered); err != nil {
				return nil, err
			}
			j.obs.OutRows += gathered
		}
		if j.out.full() {
			return j.out.take(), nil
		}
		j.have = false
	}
}

// innerMatches applies the inner relation's filters and the join's
// residual predicates to a fetched inner row.
func (j *vecIndexNLJoin) innerMatches(inner expr.Row) bool {
	return matchAll(j.filters, inner) && j.jc.residualsMatch(j.cur, inner)
}

func (j *vecIndexNLJoin) Close() error {
	j.e.pool.putOut(j.out)
	j.out = nil
	return j.left.Close()
}

package exec

import (
	"math"
	"testing"

	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/storage"
)

// Budget kills must work in every operator's charging path, not just
// hash probes: run each method with a sweep of budgets from 1% to 99% of
// its full cost and check the kill contract.
func TestBudgetKillAllMethods(t *testing.T) {
	f := newFixture(t)
	q := f.parse(t, joinSQL)
	e := New(q, f.store, cost.DefaultParams())
	for name, p := range twoRelPlans(q) {
		full, err := e.Run(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, frac := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
			budget := full.Cost * frac
			res, err := e.Run(p, budget)
			if err != nil {
				t.Fatalf("%s@%v: %v", name, frac, err)
			}
			if res.Completed {
				t.Fatalf("%s@%v: completed under partial budget", name, frac)
			}
			if math.Abs(res.Cost-budget) > 1e-9 {
				t.Fatalf("%s@%v: killed cost %v != budget %v", name, frac, res.Cost, budget)
			}
		}
	}
}

func TestIndexScanKill(t *testing.T) {
	f := newFixture(t)
	q := f.parse(t, `SELECT * FROM fact ff WHERE ff.f_val <= 50`)
	e := New(q, f.store, cost.DefaultParams())
	full, err := e.Run(plan.NewScan(0, plan.IndexScan), 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(plan.NewScan(0, plan.IndexScan), full.Cost/3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("index scan must be killable")
	}
}

func TestIndexScanRequiresFilters(t *testing.T) {
	f := newFixture(t)
	q := f.parse(t, `SELECT * FROM dim d`)
	e := New(q, f.store, cost.DefaultParams())
	if _, err := e.Run(plan.NewScan(0, plan.IndexScan), 0); err == nil {
		t.Fatal("index scan without filters must fail to build")
	}
}

func TestIndexScanNEFilterFallsBack(t *testing.T) {
	f := newFixture(t)
	// NE cannot drive a range; with only a NE filter the index scan has
	// no usable driver.
	q := f.parse(t, `SELECT * FROM dim d WHERE d.d_attr <> 2`)
	e := New(q, f.store, cost.DefaultParams())
	if _, err := e.Run(plan.NewScan(0, plan.IndexScan), 0); err == nil {
		t.Fatal("NE-only index scan must fail to build")
	}
	// With an additional range filter it picks the range as driver and
	// applies NE as residual.
	q2 := f.parse(t, `SELECT * FROM dim d WHERE d.d_attr <> 2 AND d.d_attr >= 2`)
	e2 := New(q2, f.store, cost.DefaultParams())
	res, err := e2.Run(plan.NewScan(0, plan.IndexScan), 0)
	if err != nil {
		t.Fatal(err)
	}
	seq, _ := e2.Run(plan.NewScan(0, plan.SeqScan), 0)
	if res.Rows != seq.Rows {
		t.Fatalf("index scan rows %d != seq %d", res.Rows, seq.Rows)
	}
}

func TestInFilterExecution(t *testing.T) {
	f := newFixture(t)
	q := f.parse(t, `SELECT * FROM dim d WHERE d.d_attr IN (1, 3)`)
	e := New(q, f.store, cost.DefaultParams())
	res, err := e.Run(plan.NewScan(0, plan.SeqScan), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Verify against a manual count.
	rel := f.store.MustRelation("dim")
	ci := rel.ColumnIndex("d_attr")
	var want int64
	for _, row := range rel.Rows {
		if row[ci].I == 1 || row[ci].I == 3 {
			want++
		}
	}
	if res.Rows != want {
		t.Fatalf("IN filter rows = %d, want %d", res.Rows, want)
	}
}

func TestMergeJoinKilledDuringSort(t *testing.T) {
	f := newFixture(t)
	q := f.parse(t, joinSQL)
	e := New(q, f.store, cost.DefaultParams())
	p := twoRelPlans(q)["merge"]
	// Budget below the scan+sort cost: the kill must land in Open.
	res, err := e.Run(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed || res.Rows != 0 {
		t.Fatal("merge join should die before emitting rows")
	}
}

func TestRunSpillBudgeted(t *testing.T) {
	f := newFixture(t)
	q := f.parse(t, `SELECT * FROM fact ff, dim d, dim2 e
		WHERE ff.f_dim = d.d_id AND ff.f_dim2 = e.e_id`)
	e := New(q, f.store, cost.DefaultParams())
	inner := plan.NewJoin(plan.HashJoin, []int{0},
		plan.NewScan(q.RelIndex("ff"), plan.SeqScan),
		plan.NewScan(q.RelIndex("d"), plan.SeqScan))
	root := plan.NewJoin(plan.HashJoin, []int{1}, inner,
		plan.NewScan(q.RelIndex("e"), plan.SeqScan))
	full, err := e.RunSpill(root, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunSpill(root, 0, full.Cost/2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("budgeted spill should be killed")
	}
	if len(res.JoinSel) != 0 {
		t.Fatal("killed spill must not report exact selectivity")
	}
}

func TestExecutorMissingRelation(t *testing.T) {
	f := newFixture(t)
	q := f.parse(t, `SELECT * FROM dim d`)
	// Executor over an empty store cannot build scans.
	e := New(q, emptyStore(), cost.DefaultParams())
	if _, err := e.Run(plan.NewScan(0, plan.SeqScan), 0); err == nil {
		t.Fatal("missing relation should error")
	}
}

func TestResolveJoinColsReversedOrientation(t *testing.T) {
	f := newFixture(t)
	q := f.parse(t, joinSQL)
	e := New(q, f.store, cost.DefaultParams())
	// Swap outer/inner relative to the predicate declaration: dim as
	// outer, fact as inner. Column resolution must flip.
	p := plan.NewJoin(plan.HashJoin, []int{0},
		plan.NewScan(q.RelIndex("d"), plan.SeqScan),
		plan.NewScan(q.RelIndex("f"), plan.SeqScan))
	res, err := e.Run(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := f.truthJoinCount(t, q)
	if res.Rows != want {
		t.Fatalf("reversed orientation rows = %d, want %d", res.Rows, want)
	}
}

func TestINLJoinRequiresIndex(t *testing.T) {
	f := newFixture(t)
	// Join on a column with no hash index: f_val is Uniform (indexed by
	// datagen) so pick a synthetic store without indexes instead.
	q := f.parse(t, joinSQL)
	storeNoIdx := regenerateWithoutIndexes(t)
	e := New(q, storeNoIdx, cost.DefaultParams())
	p := twoRelPlans(q)["inl"]
	if _, err := e.Run(p, 0); err == nil {
		t.Fatal("INL join without an index must fail to build")
	}
}

func TestTrueJoinSelMatchesEvalFilterIN(t *testing.T) {
	f := newFixture(t)
	q := f.parse(t, `SELECT * FROM fact ff, dim d WHERE ff.f_dim = d.d_id AND d.d_attr IN (1, 2)`)
	sel, err := stats.TrueJoinSel(f.store, q, q.Joins[0])
	if err != nil {
		t.Fatal(err)
	}
	if sel <= 0 {
		t.Fatal("IN-filtered TrueJoinSel should be positive")
	}
	// Cross-check: the executor's observation must agree.
	e := New(q, f.store, cost.DefaultParams())
	p := plan.NewJoin(plan.HashJoin, []int{0},
		plan.NewScan(q.RelIndex("ff"), plan.SeqScan),
		plan.NewScan(q.RelIndex("d"), plan.SeqScan))
	res, err := e.Run(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.JoinSel[0]-sel) > 1e-12 {
		t.Fatalf("executor observed %v, TrueJoinSel %v", res.JoinSel[0], sel)
	}
}

func TestJoinWithResidualPredicate(t *testing.T) {
	f := newFixture(t)
	// A cyclic-ish double predicate between the same pair: f_dim = d_id
	// AND f_val = d_attr. The optimizer-facing query model supports it
	// at a single join node (first = physical key, second = residual).
	q := &query.Query{
		Name: "resid",
		Cat:  f.cat,
		Relations: []query.Relation{
			{Table: "fact", Alias: "ff"},
			{Table: "dim", Alias: "d"},
		},
		Joins: []query.Join{
			{ID: 0, LeftRel: 0, RightRel: 1, LeftCol: "f_dim", RightCol: "d_id"},
			{ID: 1, LeftRel: 0, RightRel: 1, LeftCol: "f_val", RightCol: "d_attr"},
		},
	}
	e := New(q, f.store, cost.DefaultParams())
	p := plan.NewJoin(plan.HashJoin, []int{0, 1},
		plan.NewScan(0, plan.SeqScan), plan.NewScan(1, plan.SeqScan))
	res, err := e.Run(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Manual count.
	frel, drel := f.store.MustRelation("fact"), f.store.MustRelation("dim")
	fd, fv := frel.ColumnIndex("f_dim"), frel.ColumnIndex("f_val")
	di, da := drel.ColumnIndex("d_id"), drel.ColumnIndex("d_attr")
	var want int64
	for _, fr := range frel.Rows {
		for _, dr := range drel.Rows {
			if fr[fd].I == dr[di].I && fr[fv].I == dr[da].I {
				want++
			}
		}
	}
	if res.Rows != want {
		t.Fatalf("residual join rows = %d, want %d", res.Rows, want)
	}
}

// emptyStore returns a store with no relations.
func emptyStore() *storage.Store { return storage.NewStore() }

// regenerateWithoutIndexes rebuilds the fixture data without any
// secondary indexes.
func regenerateWithoutIndexes(t *testing.T) *storage.Store {
	t.Helper()
	f := newFixture(t)
	stripped := storage.NewStore()
	for _, name := range f.store.Names() {
		old := f.store.MustRelation(name)
		rel := storage.NewRelation(old.Name, old.Cols)
		for _, row := range old.Rows {
			rel.Append(row)
		}
		stripped.Add(rel)
	}
	return stripped
}

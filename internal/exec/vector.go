package exec

import (
	"context"
	"fmt"
	"io"
	"sync"

	"repro/internal/expr"
	"repro/internal/faultinject"
	"repro/internal/plan"
	"repro/internal/storage"
)

// DefaultBatchSize is the row capacity operators exchange per NextBatch
// call in the vectorized engine.
const DefaultBatchSize = 1024

// rowBatch is a batch of row references with an optional selection
// vector: sel == nil means every row of base is selected, otherwise sel
// lists the selected ordinals into base. Filters narrow batches by
// writing selection vectors — rows are never copied.
//
// stable marks that the referenced rows stay valid after further
// NextBatch calls on the producer (true for scans, whose rows alias the
// immutable storage arrays; false for join outputs, which live in a
// reused arena). Consumers that retain rows across batches (hash build,
// sort, NL materialization) must clone unstable rows.
type rowBatch struct {
	base   []expr.Row
	sel    []int32
	stable bool

	// rel/off identify columnar scan batches: base aliases
	// rel.Rows[off : off+len(base)], so consumers that only need one
	// column (hash-join key fetch) can read rel's typed vectors at
	// absolute ordinal off+i instead of chasing row pointers.
	rel *storage.Relation
	off int

	// count carries the row count of value-free batches (base == nil),
	// produced by a discarding root arena — the drive loop only counts
	// root output, so the root join never materializes joined rows.
	count int
}

// n returns the number of selected rows.
func (b *rowBatch) n() int {
	if b.sel != nil {
		return len(b.sel)
	}
	if b.base != nil {
		return len(b.base)
	}
	return b.count
}

// row returns the i-th selected row.
func (b *rowBatch) row(i int) expr.Row {
	if b.sel != nil {
		return b.base[b.sel[i]]
	}
	return b.base[i]
}

// cloneRow copies a row out of an unstable batch.
func cloneRow(r expr.Row) expr.Row { return append(expr.Row(nil), r...) }

// outBuf is a join operator's reusable output arena: concatenated
// output rows are appended into one flat value slab, so a batch of
// joined rows costs two slice appends per row instead of one allocation
// each. The arena is recycled on every NextBatch call, which is why
// batches built from it are unstable.
type outBuf struct {
	width int
	cap   int
	vals  []expr.Value
	rows  []expr.Row
	b     rowBatch

	// discard turns the arena into a pure counter: the plan root's rows
	// are never read (the drive loop only counts them — §3.1 discards
	// Result rows), so the root join skips materializing joined values
	// entirely and emits count-only batches.
	discard bool
	count   int
}

func newOutBuf(width, cap int) *outBuf {
	return &outBuf{
		width: width,
		cap:   cap,
		vals:  make([]expr.Value, 0, width*cap),
		rows:  make([]expr.Row, 0, cap),
	}
}

func (o *outBuf) reset() {
	o.vals = o.vals[:0]
	o.rows = o.rows[:0]
	o.count = 0
}

// emit appends the concatenation of l and r as one output row.
func (o *outBuf) emit(l, r expr.Row) {
	if o.discard {
		o.count++
		return
	}
	s := len(o.vals)
	o.vals = append(o.vals, l...)
	o.vals = append(o.vals, r...)
	o.rows = append(o.rows, o.vals[s:len(o.vals):len(o.vals)])
}

func (o *outBuf) full() bool { return o.len() >= o.cap }

func (o *outBuf) len() int {
	if o.discard {
		return o.count
	}
	return len(o.rows)
}

// take returns the buffered rows as an (unstable) batch.
func (o *outBuf) take() *rowBatch {
	if o.discard {
		o.b = rowBatch{count: o.count}
	} else {
		o.b = rowBatch{base: o.rows}
	}
	return &o.b
}

// bufPool recycles the vectorized engine's per-run scratch buffers
// across driveVec attempts: selection vectors, join output arenas, and
// index-scan fetch slabs. A plain mutex-guarded freelist beats
// sync.Pool here — buffers are checked out a handful of times per
// query, never concurrently contended on the sequential path, and the
// typed slices avoid interface boxing on every get/put.
type bufPool struct {
	mu   sync.Mutex
	sels [][]int32
	outs []*outBuf
	rows [][]expr.Row
}

func (p *bufPool) getSel(capacity int) []int32 {
	p.mu.Lock()
	for i := len(p.sels) - 1; i >= 0; i-- {
		if cap(p.sels[i]) >= capacity {
			s := p.sels[i]
			p.sels = append(p.sels[:i], p.sels[i+1:]...)
			p.mu.Unlock()
			return s[:0]
		}
	}
	p.mu.Unlock()
	return make([]int32, 0, capacity)
}

func (p *bufPool) putSel(s []int32) {
	if s == nil {
		return
	}
	p.mu.Lock()
	if len(p.sels) < 64 {
		p.sels = append(p.sels, s[:0])
	}
	p.mu.Unlock()
}

func (p *bufPool) getOut(width, capacity int) *outBuf {
	p.mu.Lock()
	for i := len(p.outs) - 1; i >= 0; i-- {
		o := p.outs[i]
		if o.width == width && o.cap >= capacity {
			p.outs = append(p.outs[:i], p.outs[i+1:]...)
			p.mu.Unlock()
			o.reset()
			o.discard = false
			return o
		}
	}
	p.mu.Unlock()
	return newOutBuf(width, capacity)
}

func (p *bufPool) putOut(o *outBuf) {
	if o == nil {
		return
	}
	o.reset()
	p.mu.Lock()
	if len(p.outs) < 64 {
		p.outs = append(p.outs, o)
	}
	p.mu.Unlock()
}

func (p *bufPool) getRows(capacity int) []expr.Row {
	p.mu.Lock()
	for i := len(p.rows) - 1; i >= 0; i-- {
		if cap(p.rows[i]) >= capacity {
			r := p.rows[i]
			p.rows = append(p.rows[:i], p.rows[i+1:]...)
			p.mu.Unlock()
			return r[:0]
		}
	}
	p.mu.Unlock()
	return make([]expr.Row, 0, capacity)
}

func (p *bufPool) putRows(r []expr.Row) {
	if r == nil {
		return
	}
	for i := range r {
		r[i] = nil
	}
	p.mu.Lock()
	if len(p.rows) < 64 {
		p.rows = append(p.rows, r[:0])
	}
	p.mu.Unlock()
}

// batchOperator is the vectorized iterator interface: NextBatch returns
// the next non-empty batch, io.EOF at end of stream.
type batchOperator interface {
	Open() error
	NextBatch() (*rowBatch, error)
	Close() error
}

// markDiscardRoot flips the plan root's output arena into count-only
// mode. Result rows of the root are discarded by every consumer (the
// drive loop just counts them), so materializing the joined values is
// pure overhead. Lockstep runs (faults armed) skip this: the tuple
// engine materializes, and lockstep must replay its exact allocation-
// free observables — charge order is unaffected either way, but we keep
// the fault path maximally conservative.
func markDiscardRoot(op batchOperator) {
	switch o := op.(type) {
	case *vecHashJoin:
		o.out.discard = true
	case *vecMergeJoin:
		o.out.discard = true
	case *vecNLJoin:
		o.out.discard = true
	case *vecIndexNLJoin:
		if !o.ls {
			o.out.discard = true
		}
	}
}

// driveVec runs one batch-at-a-time execution attempt. Semantics are
// pinned to driveTuple's: same recovery, same billing, same epilogue.
//
// With a fault injector armed the engine runs in lockstep mode —
// capacity 1 — which reproduces the tuple engine's charge / fault-check
// / emit interleaving exactly, so per-site fault sequence numbers, kill
// points, and retry schedules replay bit for bit. Unarmed runs use the
// configured batch size; every completed-run observable is still
// bit-identical to tuple execution (cost metering is a pure function of
// per-class tuple counts — see Meter), and a budget-killed run differs
// only in Result.Rows, which no discovery consumer reads.
func (e *Executor) driveVec(ctx context.Context, root *plan.Node, budget float64, spill bool) (res *Result, err error) {
	meter := &Meter{Budget: budget}
	res = &Result{JoinSel: make(map[int]float64)}
	defer func() {
		if r := recover(); r != nil {
			res.Cost = meter.Used + meter.Drifted
			res.Drift = meter.Drifted
			res.Completed = false
			err = recoveredError(root.Signature(), r)
		}
	}()
	capacity := e.batchSize
	if e.faults != nil {
		capacity = 1 // lockstep: replay tuple-exact fault sequences
	}
	op, _, err := e.buildVec(root, meter, res, capacity)
	if err != nil {
		res.Cost = meter.Used + meter.Drifted
		res.Drift = meter.Drifted
		return res, opError("build", err)
	}
	if e.faults == nil {
		markDiscardRoot(op)
		// Morsel-driven parallel path: multiple workers share one budget
		// and one result, splitting the driving scan into fixed windows.
		// Armed faults force the sequential lockstep path above (capacity
		// 1), so chaos replay stays bit-for-bit regardless of workers.
		if e.workers > 1 {
			if scan := morselScanOf(op); scan != nil {
				return e.driveMorsels(ctx, op, scan, meter, res, spill)
			}
		}
	}
	steps := 0
	err = func() error {
		if err := op.Open(); err != nil {
			return err
		}
		for {
			if steps&cancelCheckMask == 0 {
				if cerr := ctx.Err(); cerr != nil {
					return opError("cancel", cerr)
				}
				if ferr := e.faults.Check(faultinject.SiteOperatorPanic); ferr != nil {
					panic(ferr)
				}
				if d := e.faults.Drift(faultinject.SiteLatency); d > 0 {
					meter.AddDrift(d * e.params.Tuple)
				}
			} else if capacity > 1 {
				// Off-gate batches are whole windows of rows; keep
				// cancellation latency comparable to the tuple engine's
				// every-64-rows check.
				if cerr := ctx.Err(); cerr != nil {
					return opError("cancel", cerr)
				}
			}
			steps++
			b, err := op.NextBatch()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			res.Rows += int64(b.n())
		}
	}()
	return e.epilogue(res, meter, op, err, op.Close(), spill)
}

// buildVec compiles a plan node into a batch operator tree. It must
// mirror build exactly: same fault-check sites, same degradation notes,
// and — critically — the same meter class registration order, so the
// metered total is the same function of tuple counts in both engines.
func (e *Executor) buildVec(n *plan.Node, meter *Meter, res *Result, capacity int) (batchOperator, *schema, error) {
	if n.IsScan() {
		return e.buildScanVec(n, meter, res, capacity)
	}
	return e.buildJoinVec(n, meter, res, capacity)
}

func (e *Executor) buildScanVec(n *plan.Node, meter *Meter, res *Result, capacity int) (batchOperator, *schema, error) {
	rel := n.Scan.Rel
	r := &e.q.Relations[rel]
	relation := e.store.Relation(r.Table)
	if relation == nil {
		return nil, nil, fmt.Errorf("exec: store missing relation %s", r.Table)
	}
	sch := e.relSchema(rel)
	seq := func() (batchOperator, *schema, error) {
		filters := e.compileFilters(rel, -1)
		return &vecSeqScan{
			rel:     relation,
			filters: filters,
			kernels: compileKernels(relation, filters),
			meter:   meter,
			ex:      e,
			cls:     meter.Class(e.params.SeqTuple),
			cap:     capacity,
		}, sch, nil
	}
	switch n.Scan.Method {
	case plan.SeqScan:
		return seq()
	case plan.IndexScan:
		// Degradation ladder rung 1, identical to the tuple builder: a
		// persistent index-probe fault downgrades to a sequential scan.
		if ferr := e.faults.Check(faultinject.SiteIndexProbe); ferr != nil {
			if faultinject.IsTransient(ferr) {
				return nil, nil, opError("indexscan", ferr)
			}
			res.Degraded = append(res.Degraded,
				fmt.Sprintf("indexscan→seqscan rel=%s (%v)", r.Alias, ferr))
			return seq()
		}
		rows, bestIdx, err := e.planIndexScan(rel, relation)
		if err != nil {
			return nil, nil, err
		}
		return &vecIndexScan{
			rel:     relation,
			rows:    rows,
			filters: e.compileFilters(rel, bestIdx),
			meter:   meter,
			ex:      e,
			cls:     meter.Class(e.params.IdxTuple),
			cap:     capacity,
		}, sch, nil
	default:
		return nil, nil, fmt.Errorf("exec: unknown scan method")
	}
}

func (e *Executor) buildJoinVec(n *plan.Node, meter *Meter, res *Result, capacity int) (batchOperator, *schema, error) {
	lop, ls, err := e.buildVec(n.Left, meter, res, capacity)
	if err != nil {
		return nil, nil, err
	}
	switch n.Join.Method {
	case plan.HashJoin, plan.MergeJoin, plan.NLJoin:
		rop, rs, err := e.buildVec(n.Right, meter, res, capacity)
		if err != nil {
			return nil, nil, err
		}
		jc, err := e.resolveJoinCols(n, ls, rs)
		if err != nil {
			return nil, nil, err
		}
		sch := concatSchema(ls, rs)
		base := vecJoinBase{e: e, meter: meter, jc: jc, left: lop, right: rop}
		out := e.pool.getOut(len(sch.cols), capacity)
		switch n.Join.Method {
		case plan.HashJoin:
			return &vecHashJoin{
				vecJoinBase: base,
				hint:        e.cardHint(n.Right),
				clsBuild:    meter.Class(e.params.HashBuild),
				clsProbe:    meter.Class(e.params.HashProbe),
				clsOut:      meter.Class(e.params.Tuple),
				out:         out,
			}, sch, nil
		case plan.MergeJoin:
			return &vecMergeJoin{
				vecJoinBase: base,
				clsMerge:    meter.Class(e.params.Merge),
				clsOut:      meter.Class(e.params.Tuple),
				out:         out,
			}, sch, nil
		default:
			return &vecNLJoin{
				vecJoinBase: base,
				clsMat:      meter.Class(e.params.Mat),
				clsPair:     meter.Class(e.params.NLPair),
				clsOut:      meter.Class(e.params.Tuple),
				out:         out,
			}, sch, nil
		}
	case plan.IndexNLJoin:
		rel := n.Right.Scan.Rel
		rs := e.relSchema(rel)
		jc, err := e.resolveJoinCols(n, ls, rs)
		if err != nil {
			return nil, nil, err
		}
		relation := e.store.Relation(e.q.Relations[rel].Table)
		if relation == nil {
			return nil, nil, fmt.Errorf("exec: store missing relation %s", e.q.Relations[rel].Table)
		}
		innerCol := jc.rightPos[0]
		if !relation.HasHashIndex(innerCol) {
			return nil, nil, fmt.Errorf("exec: no hash index on %s column %d for INL join",
				relation.Name, innerCol)
		}
		sch := concatSchema(ls, rs)
		return &vecIndexNLJoin{
			vecJoinBase: vecJoinBase{e: e, meter: meter, jc: jc, left: lop},
			rel:         relation,
			filters:     e.compileFilters(rel, -1),
			clsDescend:  meter.Class(e.params.IdxDescend * log2g(float64(relation.NumRows()))),
			clsFetch:    meter.Class(e.params.IdxTuple),
			clsOut:      meter.Class(e.params.Tuple),
			out:         e.pool.getOut(len(sch.cols), capacity),
			ls:          e.faults != nil,
		}, sch, nil
	default:
		return nil, nil, fmt.Errorf("exec: unknown join method")
	}
}

// vecJoinBase is the batch engine's counterpart of joinBase: shared
// join state plus the run-time selectivity monitor.
type vecJoinBase struct {
	e           *Executor
	meter       *Meter
	jc          *joinCols
	left, right batchOperator
	obs         JoinObs
	// exact marks that both inputs were fully consumed, making the
	// observed selectivity exact.
	exact bool
}

// observations implements joinObserver, recursing into children.
func (b *vecJoinBase) observations(into map[int]float64) {
	if b.exact {
		for _, id := range b.jc.ids {
			into[id] = b.obs.Sel()
		}
	}
	collectObservations(b.left, into)
	if b.right != nil {
		collectObservations(b.right, into)
	}
}

package exec

import (
	"fmt"

	"repro/internal/faultinject"
)

// OperatorError is the typed failure of an operator tree: every error an
// execution can produce besides a budget kill — storage faults, index
// probe failures, recovered operator panics, cancellations — is wrapped
// in one, so callers can always distinguish "the engine failed" from
// "the query was killed by policy" and can classify the failure for the
// retry ladder.
type OperatorError struct {
	// Op names the operator (or executor stage) that failed.
	Op string
	// Err is the underlying cause.
	Err error
	// Panicked reports that the error was recovered from an operator
	// panic rather than returned through the iterator protocol.
	Panicked bool
}

// Error implements error.
func (e *OperatorError) Error() string {
	if e.Panicked {
		return fmt.Sprintf("exec: %s panicked: %v", e.Op, e.Err)
	}
	return fmt.Sprintf("exec: %s failed: %v", e.Op, e.Err)
}

// Unwrap exposes the cause for errors.Is/As chains.
func (e *OperatorError) Unwrap() error { return e.Err }

// Transient reports whether the underlying cause is classified
// transient (see faultinject.IsTransient); transient failures are
// retried by the executor's retry policy.
func (e *OperatorError) Transient() bool { return faultinject.IsTransient(e.Err) }

// opError wraps err as an OperatorError unless it already is one (or is
// nil), preserving the innermost operator attribution.
func opError(op string, err error) error {
	if err == nil {
		return nil
	}
	if _, ok := err.(*OperatorError); ok {
		return err
	}
	return &OperatorError{Op: op, Err: err}
}

// recoveredError converts a recovered panic value into a typed
// *OperatorError, preserving fault classification when the panic value
// is (or wraps) an injected fault.
func recoveredError(op string, r interface{}) error {
	if err, ok := r.(error); ok {
		return &OperatorError{Op: op, Err: err, Panicked: true}
	}
	return &OperatorError{Op: op, Err: fmt.Errorf("%v", r), Panicked: true}
}

package exec

import (
	"io"
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/faultinject"
	"repro/internal/storage"
)

// Kernel shapes a compiled predicate can take over an int column.
const (
	kernelRange = iota // lo ≤ v ≤ hi as one unsigned compare
	kernelNE           // v != ne
	kernelIn           // IN-list membership
)

// colKernel is one filter predicate compiled against a typed column
// vector: the scan hot loop runs it over contiguous int64 values with
// no per-row type dispatch, no row pointer chase, and no calls. NULLs
// are masked through the column's bitmap (a NULL row never matches,
// matching boundFilter.eval).
type colKernel struct {
	ints  []int64
	nulls []uint64 // nil when the column has no NULLs
	kind  int8
	lo    uint64 // kernelRange: lo, with span = hi-lo (unsigned trick)
	span  uint64
	ne    int64
	in    map[int64]bool
}

// compileKernels compiles the filter conjunction against the
// relation's column vectors. It returns nil — sending the scan down the
// row-at-a-time path — unless every filter lands on a clean int column:
// partial vectorization would still touch every row and just add
// bookkeeping.
func compileKernels(rel *storage.Relation, filters []boundFilter) []colKernel {
	if len(filters) == 0 || !rel.HasColumns() {
		return nil
	}
	ks := make([]colKernel, 0, len(filters))
	for i := range filters {
		f := &filters[i]
		c := rel.Col(f.col)
		if c == nil || c.Kind != expr.KindInt {
			return nil
		}
		k := colKernel{ints: c.Ints, nulls: c.NullWords()}
		switch {
		case f.ranged:
			k.kind = kernelRange
			k.lo = uint64(f.lo)
			k.span = uint64(f.hi) - uint64(f.lo)
		case f.in != nil:
			k.kind = kernelIn
			k.in = f.in
		case f.op == expr.NE:
			k.kind = kernelNE
			k.ne = f.val.I
		default:
			return nil
		}
		ks = append(ks, k)
	}
	return ks
}

// match evaluates the kernel on one absolute row ordinal (the refine
// path for conjunctions; the dominant single-predicate case goes
// through fill's tight loops instead).
func (k *colKernel) match(i int) bool {
	if k.nulls != nil && k.nulls[uint(i)>>6]>>(uint(i)&63)&1 != 0 {
		return false
	}
	v := k.ints[i]
	switch k.kind {
	case kernelRange:
		return uint64(v)-k.lo <= k.span
	case kernelNE:
		return v != k.ne
	default:
		return k.in[v]
	}
}

// fill runs the kernel over the window [base, end), writing matching
// window-relative ordinals into sel. The range shape — the common
// single-predicate scan — runs as a two-instruction compare with an
// unconditional selection store, so the loop carries no data-dependent
// store branch.
func (k *colKernel) fill(base, end int, sel []int32) []int32 {
	n := 0
	if k.kind == kernelRange && k.nulls == nil {
		lo, span, vals := k.lo, k.span, k.ints
		for i := base; i < end; i++ {
			sel[n] = int32(i - base)
			if uint64(vals[i])-lo <= span {
				n++
			}
		}
		return sel[:n]
	}
	for i := base; i < end; i++ {
		sel[n] = int32(i - base)
		if k.match(i) {
			n++
		}
	}
	return sel[:n]
}

// refine re-runs the kernel over an existing selection, compacting it
// in place (conjunction predicates after the first).
func (k *colKernel) refine(base int, sel []int32) []int32 {
	n := 0
	for _, s := range sel {
		if k.match(base + int(s)) {
			sel[n] = s
			n++
		}
	}
	return sel[:n]
}

// vecSeqScan reads the relation in zero-copy windows of up to cap rows:
// each batch aliases the storage row array directly, one ChargeN bills
// the whole window, and filters narrow it through a selection vector
// driven by compiled columnar kernels (row-at-a-time fallback when the
// relation has no clean columnar projection for a filter column).
//
// With cursor set (morsel mode) the window start is claimed from the
// shared atomic scan cursor instead of private state, so any number of
// worker clones can pull disjoint morsels from one scan.
type vecSeqScan struct {
	rel     *storage.Relation
	filters []boundFilter
	kernels []colKernel
	meter   *Meter
	ex      *Executor
	cls     int
	cap     int
	pos     int
	cursor  *atomic.Int64
	sel     []int32
	out     rowBatch
}

func (s *vecSeqScan) Open() error {
	s.pos = 0
	if len(s.filters) > 0 && s.sel == nil {
		s.sel = s.ex.pool.getSel(s.cap)
	}
	return nil
}

func (s *vecSeqScan) NextBatch() (*rowBatch, error) {
	total := len(s.rel.Rows)
	for {
		var pos int
		if s.cursor != nil {
			pos = int(s.cursor.Add(int64(s.cap))) - s.cap
		} else {
			pos = s.pos
		}
		if pos >= total {
			return nil, io.EOF
		}
		end := pos + s.cap
		if end > total {
			end = total
		}
		s.pos = end
		if s.ex.faults != nil {
			// Lockstep: fire the scan-tuple site at the same absolute row
			// positions the tuple engine checks (every 64th row).
			for p := pos; p < end; p++ {
				if p&cancelCheckMask == 0 {
					if ferr := s.ex.faults.Check(faultinject.SiteScanTuple); ferr != nil {
						return nil, opError("seqscan", ferr)
					}
				}
			}
		}
		window := s.rel.Rows[pos:end]
		if _, err := s.meter.ChargeN(s.cls, int64(len(window))); err != nil {
			return nil, err
		}
		if len(s.filters) == 0 {
			s.out = rowBatch{base: window, stable: true, rel: s.rel, off: pos}
			return &s.out, nil
		}
		sel := s.sel[:len(window)]
		if s.kernels != nil {
			sel = s.kernels[0].fill(pos, end, sel)
			for i := 1; i < len(s.kernels) && len(sel) > 0; i++ {
				sel = s.kernels[i].refine(pos, sel)
			}
			if len(sel) > 0 {
				s.out = rowBatch{base: window, sel: sel, stable: true, rel: s.rel, off: pos}
				return &s.out, nil
			}
			continue // whole window filtered out; claim the next one
		}
		k := 0
		for i := range window {
			sel[k] = int32(i)
			if matchAll(s.filters, window[i]) {
				k++
			}
		}
		if k > 0 {
			s.out = rowBatch{base: window, sel: sel[:k], stable: true, rel: s.rel, off: pos}
			return &s.out, nil
		}
	}
}

func (s *vecSeqScan) Close() error {
	s.ex.pool.putSel(s.sel)
	s.sel = nil
	return nil
}

// vecIndexScan fetches the probed ordinals in windows, charging one
// descent at Open (like the tuple engine) and IdxTuple per fetched row
// in batches; residual filters narrow via a selection vector. The fetch
// scratch and selection vector come from the executor's buffer pool, so
// steady-state batches allocate nothing.
type vecIndexScan struct {
	rel     *storage.Relation
	rows    []int32
	filters []boundFilter
	meter   *Meter
	ex      *Executor
	cls     int
	cap     int
	pos     int
	scratch []expr.Row
	sel     []int32
	out     rowBatch
}

func (s *vecIndexScan) Open() error {
	s.pos = 0
	if s.scratch == nil {
		s.scratch = s.ex.pool.getRows(s.cap)
	}
	if len(s.filters) > 0 && s.sel == nil {
		s.sel = s.ex.pool.getSel(s.cap)
	}
	if ferr := s.ex.faults.Check(faultinject.SiteIndexProbe); ferr != nil {
		return opError("indexscan", ferr)
	}
	return s.meter.Charge(s.ex.params.IdxDescend * log2g(float64(s.rel.NumRows())))
}

func (s *vecIndexScan) NextBatch() (*rowBatch, error) {
	for s.pos < len(s.rows) {
		end := s.pos + s.cap
		if end > len(s.rows) {
			end = len(s.rows)
		}
		n := end - s.pos
		if _, err := s.meter.ChargeN(s.cls, int64(n)); err != nil {
			return nil, err
		}
		s.scratch = s.scratch[:0]
		for _, ord := range s.rows[s.pos:end] {
			s.scratch = append(s.scratch, s.rel.Rows[ord])
		}
		s.pos = end
		if len(s.filters) == 0 {
			// The scratch slice is recycled but the rows it references
			// alias immutable storage, so the batch is stable.
			s.out = rowBatch{base: s.scratch, stable: true}
			return &s.out, nil
		}
		s.sel = s.sel[:0]
		for i := range s.scratch {
			if matchAll(s.filters, s.scratch[i]) {
				s.sel = append(s.sel, int32(i))
			}
		}
		if len(s.sel) > 0 {
			s.out = rowBatch{base: s.scratch, sel: s.sel, stable: true}
			return &s.out, nil
		}
	}
	return nil, io.EOF
}

func (s *vecIndexScan) Close() error {
	s.ex.pool.putRows(s.scratch)
	s.scratch = nil
	s.ex.pool.putSel(s.sel)
	s.sel = nil
	return nil
}

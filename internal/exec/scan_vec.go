package exec

import (
	"io"

	"repro/internal/expr"
	"repro/internal/faultinject"
	"repro/internal/storage"
)

// vecSeqScan reads the relation in zero-copy windows of up to cap rows:
// each batch aliases the storage row array directly, one ChargeN bills
// the whole window, and filters narrow it through a selection vector.
type vecSeqScan struct {
	rel     *storage.Relation
	filters []boundFilter
	meter   *Meter
	ex      *Executor
	cls     int
	cap     int
	pos     int
	sel     []int32
	out     rowBatch
}

func (s *vecSeqScan) Open() error {
	s.pos = 0
	return nil
}

func (s *vecSeqScan) NextBatch() (*rowBatch, error) {
	for s.pos < len(s.rel.Rows) {
		end := s.pos + s.cap
		if end > len(s.rel.Rows) {
			end = len(s.rel.Rows)
		}
		if s.ex.faults != nil {
			// Lockstep: fire the scan-tuple site at the same absolute row
			// positions the tuple engine checks (every 64th row).
			for p := s.pos; p < end; p++ {
				if p&cancelCheckMask == 0 {
					if ferr := s.ex.faults.Check(faultinject.SiteScanTuple); ferr != nil {
						return nil, opError("seqscan", ferr)
					}
				}
			}
		}
		window := s.rel.Rows[s.pos:end]
		s.pos = end
		if _, err := s.meter.ChargeN(s.cls, int64(len(window))); err != nil {
			return nil, err
		}
		if len(s.filters) == 0 {
			s.out = rowBatch{base: window, stable: true}
			return &s.out, nil
		}
		if cap(s.sel) < len(window) {
			s.sel = make([]int32, len(window))
		}
		sel := s.sel[:len(window)]
		k := 0
		if len(s.filters) == 1 && s.filters[0].ranged {
			// The dominant shape — one int-range predicate — runs as a
			// tight two-compare loop with no calls per row. The ordinal
			// is stored unconditionally and the cursor advanced on match,
			// so the selection write carries no extra branch.
			f := &s.filters[0]
			col, lo := f.col, f.lo
			span := uint64(f.hi) - uint64(f.lo) // lo ≤ v ≤ hi as one unsigned compare
			i := 0
			for ; i < len(window); i++ {
				v := &window[i][col]
				if v.K != expr.KindInt {
					break
				}
				sel[k] = int32(i)
				if uint64(v.I)-uint64(lo) <= span {
					k++
				}
			}
			for ; i < len(window); i++ { // mixed-kind tail (NULLs, floats)
				sel[k] = int32(i)
				if matchAll(s.filters, window[i]) {
					k++
				}
			}
		} else {
			for i := range window {
				sel[k] = int32(i)
				if matchAll(s.filters, window[i]) {
					k++
				}
			}
		}
		if k > 0 {
			s.out = rowBatch{base: window, sel: sel[:k], stable: true}
			return &s.out, nil
		}
		// The whole window was filtered out; scan the next one.
	}
	return nil, io.EOF
}

func (s *vecSeqScan) Close() error { return nil }

// vecIndexScan fetches the probed ordinals in windows, charging one
// descent at Open (like the tuple engine) and IdxTuple per fetched row
// in batches; residual filters narrow via a selection vector.
type vecIndexScan struct {
	rel     *storage.Relation
	rows    []int32
	filters []boundFilter
	meter   *Meter
	ex      *Executor
	cls     int
	cap     int
	pos     int
	scratch []expr.Row
	sel     []int32
	out     rowBatch
}

func (s *vecIndexScan) Open() error {
	s.pos = 0
	if ferr := s.ex.faults.Check(faultinject.SiteIndexProbe); ferr != nil {
		return opError("indexscan", ferr)
	}
	return s.meter.Charge(s.ex.params.IdxDescend * log2g(float64(s.rel.NumRows())))
}

func (s *vecIndexScan) NextBatch() (*rowBatch, error) {
	if s.scratch == nil {
		s.scratch = make([]expr.Row, 0, s.cap)
	}
	for s.pos < len(s.rows) {
		end := s.pos + s.cap
		if end > len(s.rows) {
			end = len(s.rows)
		}
		n := end - s.pos
		if _, err := s.meter.ChargeN(s.cls, int64(n)); err != nil {
			return nil, err
		}
		s.scratch = s.scratch[:0]
		for _, ord := range s.rows[s.pos:end] {
			s.scratch = append(s.scratch, s.rel.Rows[ord])
		}
		s.pos = end
		if len(s.filters) == 0 {
			// The scratch slice is recycled but the rows it references
			// alias immutable storage, so the batch is stable.
			s.out = rowBatch{base: s.scratch, stable: true}
			return &s.out, nil
		}
		s.sel = s.sel[:0]
		for i := range s.scratch {
			if matchAll(s.filters, s.scratch[i]) {
				s.sel = append(s.sel, int32(i))
			}
		}
		if len(s.sel) > 0 {
			s.out = rowBatch{base: s.scratch, sel: s.sel, stable: true}
			return &s.out, nil
		}
	}
	return nil, io.EOF
}

func (s *vecIndexScan) Close() error { return nil }

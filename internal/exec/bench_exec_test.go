package exec

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/datagen"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// benchFixture is a star schema big enough that per-tuple overheads
// dominate: the numbers here are what the vectorized engine is measured
// against in BENCH_exec.json.
type benchFixture struct {
	cat   *catalog.Catalog
	store *storage.Store
}

func newBenchFixture(b testing.TB) *benchFixture {
	b.Helper()
	c := catalog.New("execbench", 1)
	c.AddTable(&catalog.Table{Name: "dim", BaseRows: 2000, Columns: []catalog.Column{
		{Name: "d_id", Type: catalog.Int64, Dist: catalog.Serial},
		{Name: "d_attr", Type: catalog.Int64, Dist: catalog.Uniform, Min: 1, Max: 4},
	}})
	c.AddTable(&catalog.Table{Name: "fact", BaseRows: 50000, Columns: []catalog.Column{
		{Name: "f_id", Type: catalog.Int64, Dist: catalog.Serial},
		{Name: "f_dim", Type: catalog.Int64, Dist: catalog.FKUniform, Ref: "dim"},
		{Name: "f_val", Type: catalog.Int64, Dist: catalog.Uniform, Min: 1, Max: 100},
	}})
	store, err := datagen.Populate(c, datagen.Options{Seed: 77, BuildIndexes: true})
	if err != nil {
		b.Fatal(err)
	}
	return &benchFixture{cat: c, store: store}
}

func (f *benchFixture) parse(b testing.TB, sql string) *query.Query {
	b.Helper()
	q, err := sqlparse.Parse("b", f.cat, sql)
	if err != nil {
		b.Fatal(err)
	}
	return q
}

func benchRun(b *testing.B, q *query.Query, store *storage.Store, p *plan.Node, budget float64) {
	benchRunEngine(b, q, store, p, budget, true)
}

// benchRunEngine drives either engine; the *Tuple benchmark variants pin
// the row-at-a-time engine so both sides stay measurable in one run.
func benchRunEngine(b *testing.B, q *query.Query, store *storage.Store, p *plan.Node, budget float64, vectorized bool) {
	b.Helper()
	e := New(q, store, cost.DefaultParams()).Vectorized(vectorized)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Run(p, budget)
		if err != nil {
			b.Fatal(err)
		}
		if budget == 0 && !res.Completed {
			b.Fatal("unbudgeted run should complete")
		}
	}
}

func BenchmarkSeqScan(b *testing.B) {
	f := newBenchFixture(b)
	q := f.parse(b, `SELECT * FROM fact f WHERE f.f_val <= 50`)
	p := plan.NewScan(q.RelIndex("f"), plan.SeqScan)
	benchRun(b, q, f.store, p, 0)
}

func BenchmarkHashJoin(b *testing.B) {
	f := newBenchFixture(b)
	q := f.parse(b, `SELECT * FROM fact f, dim d WHERE f.f_dim = d.d_id`)
	p := plan.NewJoin(plan.HashJoin, []int{0},
		plan.NewScan(q.RelIndex("f"), plan.SeqScan),
		plan.NewScan(q.RelIndex("d"), plan.SeqScan))
	benchRun(b, q, f.store, p, 0)
}

func BenchmarkIndexNL(b *testing.B) {
	f := newBenchFixture(b)
	q := f.parse(b, `SELECT * FROM fact f, dim d WHERE f.f_dim = d.d_id`)
	p := plan.NewJoin(plan.IndexNLJoin, []int{0},
		plan.NewScan(q.RelIndex("f"), plan.SeqScan),
		plan.NewScan(q.RelIndex("d"), plan.SeqScan))
	benchRun(b, q, f.store, p, 0)
}

func BenchmarkBudgetKill(b *testing.B) {
	f := newBenchFixture(b)
	q := f.parse(b, `SELECT * FROM fact f, dim d WHERE f.f_dim = d.d_id`)
	p := plan.NewJoin(plan.HashJoin, []int{0},
		plan.NewScan(q.RelIndex("f"), plan.SeqScan),
		plan.NewScan(q.RelIndex("d"), plan.SeqScan))
	full, err := New(q, f.store, cost.DefaultParams()).Run(p, 0)
	if err != nil {
		b.Fatal(err)
	}
	benchRun(b, q, f.store, p, 0.3*full.Cost)
}

func BenchmarkSeqScanTuple(b *testing.B) {
	f := newBenchFixture(b)
	q := f.parse(b, `SELECT * FROM fact f WHERE f.f_val <= 50`)
	p := plan.NewScan(q.RelIndex("f"), plan.SeqScan)
	benchRunEngine(b, q, f.store, p, 0, false)
}

func BenchmarkHashJoinTuple(b *testing.B) {
	f := newBenchFixture(b)
	q := f.parse(b, `SELECT * FROM fact f, dim d WHERE f.f_dim = d.d_id`)
	p := plan.NewJoin(plan.HashJoin, []int{0},
		plan.NewScan(q.RelIndex("f"), plan.SeqScan),
		plan.NewScan(q.RelIndex("d"), plan.SeqScan))
	benchRunEngine(b, q, f.store, p, 0, false)
}

func BenchmarkIndexNLTuple(b *testing.B) {
	f := newBenchFixture(b)
	q := f.parse(b, `SELECT * FROM fact f, dim d WHERE f.f_dim = d.d_id`)
	p := plan.NewJoin(plan.IndexNLJoin, []int{0},
		plan.NewScan(q.RelIndex("f"), plan.SeqScan),
		plan.NewScan(q.RelIndex("d"), plan.SeqScan))
	benchRunEngine(b, q, f.store, p, 0, false)
}

// BenchmarkParallelExec pins the morsel scheduler's wall-clock win on
// the star-schema hash join at a fixed worker count (8), so the ledger
// tracks parallel speedup separately from the single-threaded
// vectorized numbers above.
func BenchmarkParallelExec(b *testing.B) {
	f := newBenchFixture(b)
	q := f.parse(b, `SELECT * FROM fact f, dim d WHERE f.f_dim = d.d_id`)
	p := plan.NewJoin(plan.HashJoin, []int{0},
		plan.NewScan(q.RelIndex("f"), plan.SeqScan),
		plan.NewScan(q.RelIndex("d"), plan.SeqScan))
	e := New(q, f.store, cost.DefaultParams()).WithWorkers(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Run(p, 0)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed {
			b.Fatal("unbudgeted run should complete")
		}
	}
}

package exec

import (
	"io"

	"repro/internal/expr"
	"repro/internal/storage"
)

// indexNLJoin streams the outer child, probing the inner base relation's
// hash index per row; inner filters apply after the fetch (the index
// serves the join key only).
type indexNLJoin struct {
	joinBase
	rel     *storage.Relation
	filters []boundFilter
	// clsDescend carries the whole per-outer-row descent charge
	// (IdxDescend·log₂(N+2)) as its class constant, so descents batch
	// like any other per-tuple cost.
	clsDescend, clsFetch, clsOut int

	cur     expr.Row
	matches []int32
	mi      int
	have    bool
	// innerFiltered is the inner relation's filtered cardinality,
	// counted once for the selectivity observation (a statistics lookup,
	// not execution work — hence uncharged).
	innerFiltered int64
}

func (j *indexNLJoin) Open() error {
	if err := j.left.Open(); err != nil {
		return err
	}
	for _, row := range j.rel.Rows {
		if matchAll(j.filters, row) {
			j.innerFiltered++
		}
	}
	j.obs.RightRows = j.innerFiltered
	return nil
}

func (j *indexNLJoin) Next() (expr.Row, error) {
	for {
		if !j.have {
			row, err := j.left.Next()
			if err == io.EOF {
				j.exact = true
				return nil, io.EOF
			}
			if err != nil {
				return nil, err
			}
			j.obs.LeftRows++
			// One index descent per outer row.
			if _, err := j.meter.ChargeN(j.clsDescend, 1); err != nil {
				return nil, err
			}
			j.cur = row
			k := row[j.jc.leftPos[0]]
			if k.IsNull() {
				continue
			}
			j.matches = j.rel.HashLookup(j.jc.rightPos[0], k.I)
			j.mi = 0
			j.have = true
		}
		for j.mi < len(j.matches) {
			inner := j.rel.Rows[j.matches[j.mi]]
			j.mi++
			// Random fetch per matched (pre-filter) row.
			if _, err := j.meter.ChargeN(j.clsFetch, 1); err != nil {
				return nil, err
			}
			if !matchAll(j.filters, inner) || !j.jc.residualsMatch(j.cur, inner) {
				continue
			}
			if _, err := j.meter.ChargeN(j.clsOut, 1); err != nil {
				return nil, err
			}
			j.obs.OutRows++
			return joinRows(j.cur, inner), nil
		}
		j.have = false
	}
}

func (j *indexNLJoin) Close() error { return j.left.Close() }

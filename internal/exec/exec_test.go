package exec

import (
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/datagen"
	"repro/internal/expr"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/sqlparse"
	"repro/internal/stats"
	"repro/internal/storage"
)

// fixture: a small star schema with data.
type fixture struct {
	cat   *catalog.Catalog
	store *storage.Store
	st    *stats.Stats
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	c := catalog.New("exectest", 1)
	c.AddTable(&catalog.Table{Name: "dim", BaseRows: 40, Columns: []catalog.Column{
		{Name: "d_id", Type: catalog.Int64, Dist: catalog.Serial},
		{Name: "d_attr", Type: catalog.Int64, Dist: catalog.Uniform, Min: 1, Max: 4},
	}})
	c.AddTable(&catalog.Table{Name: "dim2", BaseRows: 25, Columns: []catalog.Column{
		{Name: "e_id", Type: catalog.Int64, Dist: catalog.Serial},
		{Name: "e_attr", Type: catalog.Int64, Dist: catalog.Uniform, Min: 1, Max: 5},
	}})
	c.AddTable(&catalog.Table{Name: "fact", BaseRows: 600, Columns: []catalog.Column{
		{Name: "f_id", Type: catalog.Int64, Dist: catalog.Serial},
		{Name: "f_dim", Type: catalog.Int64, Dist: catalog.FKUniform, Ref: "dim"},
		{Name: "f_dim2", Type: catalog.Int64, Dist: catalog.FKZipf, Ref: "dim2"},
		{Name: "f_val", Type: catalog.Int64, Dist: catalog.Uniform, Min: 1, Max: 100},
	}})
	store, err := datagen.Populate(c, datagen.Options{Seed: 77, BuildIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	st, err := stats.FromData(c, store, 8)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{cat: c, store: store, st: st}
}

func (f *fixture) parse(t testing.TB, sql string) *query.Query {
	t.Helper()
	q, err := sqlparse.Parse("t", f.cat, sql)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// reference: hand-computed join count for fact ⋈ dim with optional filters.
func (f *fixture) truthJoinCount(t testing.TB, q *query.Query) int64 {
	t.Helper()
	sel, err := stats.TrueJoinSel(f.store, q, q.Joins[0])
	if err != nil {
		t.Fatal(err)
	}
	l := countFiltered(f.store, q, q.Joins[0].LeftRel)
	r := countFiltered(f.store, q, q.Joins[0].RightRel)
	return int64(math.Round(sel * float64(l) * float64(r)))
}

func countFiltered(store *storage.Store, q *query.Query, rel int) int64 {
	relation := store.MustRelation(q.Relations[rel].Table)
	var n int64
	for _, row := range relation.Rows {
		ok := true
		for _, fp := range q.Relations[rel].Filters {
			cmp := boundFilter{col: relation.ColumnIndex(fp.Column), op: fp.Op, val: expr.Int(fp.Value)}
			if !cmp.eval(row) {
				ok = false
				break
			}
		}
		if ok {
			n++
		}
	}
	return n
}

const joinSQL = `SELECT * FROM fact f, dim d WHERE f.f_dim = d.d_id`

// allJoinMethods builds the two-relation join plan with each method.
func twoRelPlans(q *query.Query) map[string]*plan.Node {
	outer := plan.NewScan(q.RelIndex("f"), plan.SeqScan)
	inner := plan.NewScan(q.RelIndex("d"), plan.SeqScan)
	return map[string]*plan.Node{
		"hash":  plan.NewJoin(plan.HashJoin, []int{0}, outer, inner),
		"merge": plan.NewJoin(plan.MergeJoin, []int{0}, outer, inner),
		"inl":   plan.NewJoin(plan.IndexNLJoin, []int{0}, outer, inner),
		"nl":    plan.NewJoin(plan.NLJoin, []int{0}, outer, inner),
	}
}

func TestAllJoinMethodsAgreeOnResult(t *testing.T) {
	f := newFixture(t)
	q := f.parse(t, joinSQL)
	want := f.truthJoinCount(t, q)
	if want == 0 {
		t.Fatal("fixture join should produce rows")
	}
	e := New(q, f.store, cost.DefaultParams())
	for name, p := range twoRelPlans(q) {
		res, err := e.Run(p, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Completed {
			t.Fatalf("%s: unbudgeted run must complete", name)
		}
		if res.Rows != want {
			t.Errorf("%s: rows = %d, want %d", name, res.Rows, want)
		}
		if res.Cost <= 0 {
			t.Errorf("%s: non-positive cost", name)
		}
	}
}

func TestObservedSelectivityExact(t *testing.T) {
	f := newFixture(t)
	q := f.parse(t, joinSQL)
	truth, err := stats.TrueJoinSel(f.store, q, q.Joins[0])
	if err != nil {
		t.Fatal(err)
	}
	e := New(q, f.store, cost.DefaultParams())
	for name, p := range twoRelPlans(q) {
		res, err := e.Run(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := res.JoinSel[0]
		if !ok {
			t.Fatalf("%s: no selectivity observation", name)
		}
		if math.Abs(got-truth) > 1e-12 {
			t.Errorf("%s: observed sel %v != truth %v", name, got, truth)
		}
	}
}

func TestFiltersApplied(t *testing.T) {
	f := newFixture(t)
	q := f.parse(t, `SELECT * FROM fact f, dim d WHERE f.f_dim = d.d_id AND d.d_attr = 2 AND f.f_val <= 50`)
	want := f.truthJoinCount(t, q)
	e := New(q, f.store, cost.DefaultParams())
	p := plan.NewJoin(plan.HashJoin, []int{0},
		plan.NewScan(q.RelIndex("f"), plan.SeqScan),
		plan.NewScan(q.RelIndex("d"), plan.SeqScan))
	res, err := e.Run(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != want {
		t.Errorf("filtered join rows = %d, want %d", res.Rows, want)
	}
}

func TestIndexScanMatchesSeqScan(t *testing.T) {
	f := newFixture(t)
	q := f.parse(t, `SELECT * FROM dim d WHERE d.d_attr >= 3`)
	e := New(q, f.store, cost.DefaultParams())
	seq, err := e.Run(plan.NewScan(0, plan.SeqScan), 0)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := e.Run(plan.NewScan(0, plan.IndexScan), 0)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Rows != idx.Rows {
		t.Errorf("index scan rows %d != seq scan rows %d", idx.Rows, seq.Rows)
	}
}

func TestBudgetTermination(t *testing.T) {
	f := newFixture(t)
	q := f.parse(t, joinSQL)
	e := New(q, f.store, cost.DefaultParams())
	p := twoRelPlans(q)["hash"]
	full, err := e.Run(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Half the full cost must kill the execution and spend the budget.
	budget := full.Cost / 2
	res, err := e.Run(p, budget)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("half budget must not complete")
	}
	if math.Abs(res.Cost-budget) > 1e-9 {
		t.Errorf("killed run cost %v, want exactly the budget %v", res.Cost, budget)
	}
	if len(res.JoinSel) != 0 {
		t.Error("killed run must not report exact selectivities")
	}
	// A budget just above the full cost completes at the actual cost.
	res2, err := e.Run(p, full.Cost*1.01)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Completed || math.Abs(res2.Cost-full.Cost) > 1e-9 {
		t.Errorf("run = (%v, %v), want completion at %v", res2.Cost, res2.Completed, full.Cost)
	}
}

func TestRunSpillSubtreeOnly(t *testing.T) {
	f := newFixture(t)
	q := f.parse(t, `SELECT * FROM fact f, dim d, dim2 e
		WHERE f.f_dim = d.d_id AND f.f_dim2 = e.e_id`)
	e := New(q, f.store, cost.DefaultParams())
	inner := plan.NewJoin(plan.HashJoin, []int{0},
		plan.NewScan(q.RelIndex("f"), plan.SeqScan),
		plan.NewScan(q.RelIndex("d"), plan.SeqScan))
	root := plan.NewJoin(plan.HashJoin, []int{1},
		inner,
		plan.NewScan(q.RelIndex("e"), plan.SeqScan))

	full, err := e.Run(root, 0)
	if err != nil {
		t.Fatal(err)
	}
	spill, err := e.RunSpill(root, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !spill.Completed {
		t.Fatal("unbudgeted spill must complete")
	}
	if spill.Cost >= full.Cost {
		t.Errorf("spill cost %v must be below full cost %v", spill.Cost, full.Cost)
	}
	// The spilled join's selectivity is learned exactly.
	truth, _ := stats.TrueJoinSel(f.store, q, q.Joins[0])
	if got := spill.JoinSel[0]; math.Abs(got-truth) > 1e-12 {
		t.Errorf("spill observed sel %v != truth %v", got, truth)
	}
	// Spilling on a predicate the plan doesn't apply fails.
	if _, err := e.RunSpill(root, 99, 0); err == nil {
		t.Error("RunSpill on unknown join should error")
	}
}

// Metered cost must equal the cost model's prediction when the model is
// fed the true cardinalities — the δ=0 fidelity claim.
func TestMeteredCostMatchesModel(t *testing.T) {
	f := newFixture(t)
	q := f.parse(t, joinSQL)
	truth, _ := stats.TrueJoinSel(f.store, q, q.Joins[0])
	env := optimizer.BuildEnv(q, f.st)
	env.JoinSel[0] = truth
	model := cost.NewModel(cost.DefaultParams())
	e := New(q, f.store, cost.DefaultParams())
	for name, p := range twoRelPlans(q) {
		predicted := model.Cost(p, env).Cost
		res, err := e.Run(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Cost-predicted)/predicted > 0.05 {
			t.Errorf("%s: metered %v vs model %v (>5%% off)", name, res.Cost, predicted)
		}
	}
}

func TestExecutorOverOptimizedPlan(t *testing.T) {
	f := newFixture(t)
	q := f.parse(t, `SELECT * FROM fact f, dim d, dim2 e
		WHERE f.f_dim = d.d_id AND f.f_dim2 = e.e_id AND d.d_attr <= 2`)
	env := optimizer.BuildEnv(q, f.st)
	o := optimizer.New(q, cost.NewModel(cost.DefaultParams()))
	best := o.Best(env)
	e := New(q, f.store, cost.DefaultParams())
	res, err := e.Run(best.Root, 0)
	if err != nil {
		t.Fatalf("optimizer plan failed to execute: %v (%s)", err, best.Root.Signature())
	}
	if !res.Completed {
		t.Fatal("must complete")
	}
	// Cross-check cardinality against a brute-force nested loop count.
	nl := plan.NewJoin(plan.NLJoin, []int{1},
		plan.NewJoin(plan.NLJoin, []int{0},
			plan.NewScan(q.RelIndex("f"), plan.SeqScan),
			plan.NewScan(q.RelIndex("d"), plan.SeqScan)),
		plan.NewScan(q.RelIndex("e"), plan.SeqScan))
	ref, err := e.Run(nl, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != ref.Rows {
		t.Errorf("optimized plan rows %d != reference %d", res.Rows, ref.Rows)
	}
}

func TestMeterChargeSemantics(t *testing.T) {
	m := &Meter{Budget: 10}
	if err := m.Charge(6); err != nil {
		t.Fatal(err)
	}
	if err := m.Charge(3.9); err != nil {
		t.Fatal(err)
	}
	if err := m.Charge(1); err != ErrBudgetExceeded {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if m.Used != 10 {
		t.Errorf("killed meter must clamp to budget, got %v", m.Used)
	}
	// Unlimited meter never fails.
	u := &Meter{}
	if err := u.Charge(1e18); err != nil {
		t.Fatal("unlimited meter must not fail")
	}
}

func TestJoinObsSel(t *testing.T) {
	o := JoinObs{LeftRows: 10, RightRows: 20, OutRows: 50}
	if o.Sel() != 0.25 {
		t.Errorf("Sel = %v", o.Sel())
	}
	if (JoinObs{}).Sel() != 0 {
		t.Error("empty observation sel should be 0")
	}
}

package exec

import (
	"io"
	"sort"

	"repro/internal/expr"
)

// vecHashJoin builds on the right child and probes with the left, batch
// at a time. The probe loop gathers all matches of consecutive probe
// rows into the output arena and bills each gathered group with one
// ChargeN; at capacity 1 (lockstep) this degenerates to the tuple
// engine's exact charge order.
type vecHashJoin struct {
	vecJoinBase
	hint                       int
	clsBuild, clsProbe, clsOut int
	out                        *outBuf
	table                      map[int64][]expr.Row
	pb                         *rowBatch
	pi                         int
	cur                        expr.Row
	matches                    []expr.Row
	mi                         int
	done                       bool
}

func (h *vecHashJoin) Open() error {
	if err := h.left.Open(); err != nil {
		return err
	}
	if err := h.right.Open(); err != nil {
		return err
	}
	h.table = make(map[int64][]expr.Row, h.hint)
	for {
		b, err := h.right.NextBatch()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		n := b.n()
		if _, err := h.meter.ChargeN(h.clsBuild, int64(n)); err != nil {
			return err
		}
		h.obs.RightRows += int64(n)
		for i := 0; i < n; i++ {
			row := b.row(i)
			k := row[h.jc.rightPos[0]]
			if k.IsNull() {
				continue
			}
			if !b.stable {
				row = cloneRow(row)
			}
			h.table[k.I] = append(h.table[k.I], row)
		}
	}
	h.pb, h.pi = nil, 0
	h.matches, h.mi = nil, 0
	h.done = false
	return nil
}

func (h *vecHashJoin) NextBatch() (*rowBatch, error) {
	if h.done {
		return nil, io.EOF
	}
	h.out.reset()
	for {
		// Drain the current probe row's pending matches into the arena.
		gathered := int64(0)
		for h.mi < len(h.matches) && !h.out.full() {
			r := h.matches[h.mi]
			h.mi++
			if !h.jc.residualsMatch(h.cur, r) {
				continue
			}
			h.out.emit(h.cur, r)
			gathered++
		}
		if gathered > 0 {
			if _, err := h.meter.ChargeN(h.clsOut, gathered); err != nil {
				return nil, err
			}
			h.obs.OutRows += gathered
		}
		if h.out.full() {
			return h.out.take(), nil
		}
		// Matches exhausted: advance to the next probe row.
		if h.pb == nil || h.pi >= h.pb.n() {
			b, err := h.left.NextBatch()
			if err == io.EOF {
				h.exact = true
				h.done = true
				if h.out.len() > 0 {
					return h.out.take(), nil
				}
				return nil, io.EOF
			}
			if err != nil {
				return nil, err
			}
			if _, err := h.meter.ChargeN(h.clsProbe, int64(b.n())); err != nil {
				return nil, err
			}
			h.obs.LeftRows += int64(b.n())
			h.pb, h.pi = b, 0
		}
		row := h.pb.row(h.pi)
		h.pi++
		k := row[h.jc.leftPos[0]]
		if k.IsNull() {
			h.matches, h.mi = nil, 0
			continue
		}
		h.cur = row
		h.matches = h.table[k.I]
		h.mi = 0
	}
}

func (h *vecHashJoin) Close() error {
	if err := h.left.Close(); err != nil {
		return err
	}
	return h.right.Close()
}

// vecMergeJoin drains and sorts both inputs at Open, then merges batch
// at a time. Merge-advance charges for one left row and its right-side
// skips are consecutive in the tuple engine too, so they are billed as
// one ChargeN chunk — identical counts at every possible kill point.
type vecMergeJoin struct {
	vecJoinBase
	clsMerge, clsOut int
	out              *outBuf
	lrows, rrows     []expr.Row
	li, ri           int
	group            []expr.Row
	gi               int
	cur              expr.Row
	done             bool
}

func (m *vecMergeJoin) Open() error {
	if err := m.left.Open(); err != nil {
		return err
	}
	if err := m.right.Open(); err != nil {
		return err
	}
	var err error
	m.lrows, err = m.drainAndSort(m.left, m.jc.leftPos[0])
	if err != nil {
		return err
	}
	m.rrows, err = m.drainAndSort(m.right, m.jc.rightPos[0])
	if err != nil {
		return err
	}
	m.obs.LeftRows = int64(len(m.lrows))
	m.obs.RightRows = int64(len(m.rrows))
	m.li, m.ri = 0, 0
	m.group = m.group[:0]
	m.gi = 0
	m.done = false
	return nil
}

func (m *vecMergeJoin) drainAndSort(op batchOperator, key int) ([]expr.Row, error) {
	var rows []expr.Row
	for {
		b, err := op.NextBatch()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		n := b.n()
		for i := 0; i < n; i++ {
			row := b.row(i)
			if !b.stable {
				row = cloneRow(row)
			}
			rows = append(rows, row)
		}
	}
	n := float64(len(rows))
	if err := m.meter.Charge(m.e.params.SortCmp * n * log2g(n)); err != nil {
		return nil, err
	}
	sort.SliceStable(rows, func(a, b int) bool {
		return expr.Compare(rows[a][key], rows[b][key]) < 0
	})
	return rows, nil
}

func (m *vecMergeJoin) NextBatch() (*rowBatch, error) {
	if m.done {
		return nil, io.EOF
	}
	m.out.reset()
	for {
		gathered := int64(0)
		for m.gi < len(m.group) && !m.out.full() {
			r := m.group[m.gi]
			m.gi++
			if !m.jc.residualsMatch(m.cur, r) {
				continue
			}
			m.out.emit(m.cur, r)
			gathered++
		}
		if gathered > 0 {
			if _, err := m.meter.ChargeN(m.clsOut, gathered); err != nil {
				return nil, err
			}
			m.obs.OutRows += gathered
		}
		if m.out.full() {
			return m.out.take(), nil
		}
		if m.li >= len(m.lrows) {
			m.exact = true
			m.done = true
			if m.out.len() > 0 {
				return m.out.take(), nil
			}
			return nil, io.EOF
		}
		l := m.lrows[m.li]
		m.li++
		lk := l[m.jc.leftPos[0]]
		if lk.IsNull() {
			if _, err := m.meter.ChargeN(m.clsMerge, 1); err != nil {
				return nil, err
			}
			m.group = m.group[:0]
			m.gi = 0
			continue
		}
		// Advance the right cursor to the key's group, billing the left
		// row plus every skipped right row in one chunk.
		skips := int64(0)
		for m.ri+int(skips) < len(m.rrows) &&
			expr.Compare(m.rrows[m.ri+int(skips)][m.jc.rightPos[0]], lk) < 0 {
			skips++
		}
		if _, err := m.meter.ChargeN(m.clsMerge, 1+skips); err != nil {
			return nil, err
		}
		m.ri += int(skips)
		m.group = m.group[:0]
		for k := m.ri; k < len(m.rrows) && expr.Compare(m.rrows[k][m.jc.rightPos[0]], lk) == 0; k++ {
			m.group = append(m.group, m.rrows[k])
		}
		m.cur = l
		m.gi = 0
	}
}

func (m *vecMergeJoin) Close() error {
	if err := m.left.Close(); err != nil {
		return err
	}
	return m.right.Close()
}

// vecNLJoin materializes the inner child at Open and nest-loops outer
// batches over it. Pair charges up to and including the next match are
// consecutive in the tuple engine, so they bill as one ChargeN chunk —
// the charge sequence is tuple-exact at any batch capacity.
type vecNLJoin struct {
	vecJoinBase
	clsMat, clsPair, clsOut int
	out                     *outBuf
	inner                   []expr.Row
	pb                      *rowBatch
	pi                      int
	cur                     expr.Row
	ii                      int
	have                    bool
	done                    bool
}

func (n *vecNLJoin) Open() error {
	if err := n.left.Open(); err != nil {
		return err
	}
	if err := n.right.Open(); err != nil {
		return err
	}
	n.inner = n.inner[:0]
	for {
		b, err := n.right.NextBatch()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		cnt := b.n()
		if _, err := n.meter.ChargeN(n.clsMat, int64(cnt)); err != nil {
			return err
		}
		for i := 0; i < cnt; i++ {
			row := b.row(i)
			if !b.stable {
				row = cloneRow(row)
			}
			n.inner = append(n.inner, row)
		}
	}
	n.obs.RightRows = int64(len(n.inner))
	n.pb, n.pi = nil, 0
	n.have = false
	n.done = false
	return nil
}

func (n *vecNLJoin) NextBatch() (*rowBatch, error) {
	if n.done {
		return nil, io.EOF
	}
	n.out.reset()
	for {
		if !n.have {
			if n.pb == nil || n.pi >= n.pb.n() {
				b, err := n.left.NextBatch()
				if err == io.EOF {
					n.exact = true
					n.done = true
					if n.out.len() > 0 {
						return n.out.take(), nil
					}
					return nil, io.EOF
				}
				if err != nil {
					return nil, err
				}
				n.pb, n.pi = b, 0
			}
			n.cur = n.pb.row(n.pi)
			n.pi++
			n.obs.LeftRows++
			n.ii = 0
			n.have = true
		}
		// Scan the inner for the next match, counting pairs up to and
		// including the matching one.
		pairs := int64(0)
		var match expr.Row
		for n.ii < len(n.inner) {
			r := n.inner[n.ii]
			n.ii++
			pairs++
			if expr.Equal(n.cur[n.jc.leftPos[0]], r[n.jc.rightPos[0]]) && n.jc.residualsMatch(n.cur, r) {
				match = r
				break
			}
		}
		if pairs > 0 {
			if _, err := n.meter.ChargeN(n.clsPair, pairs); err != nil {
				return nil, err
			}
		}
		if match == nil {
			n.have = false // inner exhausted for this outer row
			continue
		}
		if _, err := n.meter.ChargeN(n.clsOut, 1); err != nil {
			return nil, err
		}
		n.obs.OutRows++
		n.out.emit(n.cur, match)
		if n.out.full() {
			return n.out.take(), nil
		}
	}
}

func (n *vecNLJoin) Close() error {
	if err := n.left.Close(); err != nil {
		return err
	}
	return n.right.Close()
}

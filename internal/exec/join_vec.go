package exec

import (
	"io"
	"sort"

	"repro/internal/expr"
	"repro/internal/storage"
)

// graceTable is the hash join's partitioned (grace-style) build table:
// keys are hash-partitioned into 8 partitions by their top hash bits,
// and each partition keeps an open-addressed key directory over flat
// parallel entry arrays. Compared to map[int64][]expr.Row this removes
// the per-distinct-key slice allocations and the map's per-probe
// hashing/bucket walk, keeps each partition's entries contiguous, and
// preserves per-key insertion order through chain links — so match
// emission order is identical to the map-append build.
const (
	gracePartBits = 3
	graceParts    = 1 << gracePartBits
)

type graceTable struct {
	parts [graceParts]gracePart
}

type gracePart struct {
	// slots/tails form the open-addressed directory: a slot holds the
	// entry index+1 of its key's chain head (0 = empty), tails the
	// chain's last entry for O(1) in-order appends.
	slots []int32
	tails []int32
	mask  uint64
	// Entry arrays, parallel: key, next same-key entry (-1 ends the
	// chain), and the build row.
	keys []int64
	next []int32
	rows []expr.Row
}

// hashKey is Fibonacci hashing; the multiplier spreads consecutive ints
// across both the top (partition) and low (slot) bits.
func hashKey(k int64) uint64 { return uint64(k) * 0x9E3779B97F4A7C15 }

func newGraceTable(hint int) *graceTable {
	t := &graceTable{}
	per := hint / graceParts
	for i := range t.parts {
		p := &t.parts[i]
		n := 4
		for n < 2*per {
			n <<= 1
		}
		p.slots = make([]int32, n)
		p.tails = make([]int32, n)
		p.mask = uint64(n - 1)
		p.keys = make([]int64, 0, per)
		p.next = make([]int32, 0, per)
		p.rows = make([]expr.Row, 0, per)
	}
	return t
}

func (t *graceTable) insert(k int64, row expr.Row) {
	h := hashKey(k)
	t.parts[h>>(64-gracePartBits)].insert(h, k, row)
}

func (p *gracePart) insert(h uint64, k int64, row expr.Row) {
	if 2*(len(p.keys)+1) > len(p.slots) {
		p.grow()
	}
	e := int32(len(p.keys))
	p.keys = append(p.keys, k)
	p.next = append(p.next, -1)
	p.rows = append(p.rows, row)
	s := h & p.mask
	for {
		head := p.slots[s]
		if head == 0 {
			p.slots[s] = e + 1
			p.tails[s] = e + 1
			return
		}
		if p.keys[head-1] == k {
			p.next[p.tails[s]-1] = e
			p.tails[s] = e + 1
			return
		}
		s = (s + 1) & p.mask
	}
}

// grow doubles the slot directory. Chains live in the entry arrays and
// are untouched; only the distinct keys' heads re-probe.
func (p *gracePart) grow() {
	old, oldTails := p.slots, p.tails
	n := len(old) * 2
	p.slots = make([]int32, n)
	p.tails = make([]int32, n)
	p.mask = uint64(n - 1)
	for i, head := range old {
		if head == 0 {
			continue
		}
		s := hashKey(p.keys[head-1]) & p.mask
		for p.slots[s] != 0 {
			s = (s + 1) & p.mask
		}
		p.slots[s] = head
		p.tails[s] = oldTails[i]
	}
}

// lookup returns the partition and first entry index of the key's
// chain, or entry -1 when the key is absent.
func (t *graceTable) lookup(k int64) (*gracePart, int32) {
	h := hashKey(k)
	p := &t.parts[h>>(64-gracePartBits)]
	s := h & p.mask
	for {
		head := p.slots[s]
		if head == 0 {
			return p, -1
		}
		if p.keys[head-1] == k {
			return p, head - 1
		}
		s = (s + 1) & p.mask
	}
}

// buildKeyCol returns the typed int column behind a batch's key
// position when the batch aliases a scanned relation with a clean,
// null-free columnar projection — letting build and probe loops read
// keys from the contiguous vector instead of chasing row pointers.
func buildKeyCol(b *rowBatch, pos int) *storage.Column {
	if b.rel == nil {
		return nil
	}
	if c := b.rel.Col(pos); c != nil && c.Kind == expr.KindInt && !c.HasNulls() {
		return c
	}
	return nil
}

// vecHashJoin builds on the right child and probes with the left, batch
// at a time. The probe loop gathers all matches of consecutive probe
// rows into the output arena; output charges accumulate in outPending
// and bill as one ChargeN per emitted arena (flushed at take / EOF).
// At capacity 1 (lockstep) the arena holds one row, so the flush
// degenerates to the tuple engine's exact per-row charge order.
type vecHashJoin struct {
	vecJoinBase
	hint                       int
	clsBuild, clsProbe, clsOut int
	out                        *outBuf
	table                      *graceTable
	pb                         *rowBatch
	pi                         int
	cur                        expr.Row
	mp                         *gracePart
	me                         int32
	outPending                 int64
	done                       bool
}

func (h *vecHashJoin) Open() error {
	if err := h.left.Open(); err != nil {
		return err
	}
	if err := h.right.Open(); err != nil {
		return err
	}
	h.table = newGraceTable(h.hint)
	kpos := h.jc.rightPos[0]
	for {
		b, err := h.right.NextBatch()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		n := b.n()
		if _, err := h.meter.ChargeN(h.clsBuild, int64(n)); err != nil {
			return err
		}
		h.obs.RightRows += int64(n)
		if kc := buildKeyCol(b, kpos); kc != nil {
			// Columnar build: keys come straight off the typed vector at
			// the batch's absolute offsets; scan batches are stable, so
			// rows are referenced without cloning.
			if b.sel == nil {
				for i := 0; i < n; i++ {
					h.table.insert(kc.Ints[b.off+i], b.base[i])
				}
			} else {
				for _, s := range b.sel {
					h.table.insert(kc.Ints[b.off+int(s)], b.base[s])
				}
			}
			continue
		}
		for i := 0; i < n; i++ {
			row := b.row(i)
			k := row[kpos]
			if k.IsNull() {
				continue
			}
			if !b.stable {
				row = cloneRow(row)
			}
			h.table.insert(k.I, row)
		}
	}
	h.pb, h.pi = nil, 0
	h.mp, h.me = nil, -1
	h.outPending = 0
	h.done = false
	return nil
}

// flushOut bills the accumulated output charges of the current arena.
func (h *vecHashJoin) flushOut() error {
	if h.outPending == 0 {
		return nil
	}
	n := h.outPending
	h.outPending = 0
	_, err := h.meter.ChargeN(h.clsOut, n)
	return err
}

// fastProbe counts the build matches of every key in the probe batch.
func (h *vecHashJoin) fastProbe(b *rowBatch, kc *storage.Column) int64 {
	matches := int64(0)
	ints := kc.Ints
	if b.sel == nil {
		for i := range b.base {
			p, e := h.table.lookup(ints[b.off+i])
			for ; e >= 0; e = p.next[e] {
				matches++
			}
		}
		return matches
	}
	for _, s := range b.sel {
		p, e := h.table.lookup(ints[b.off+int(s)])
		for ; e >= 0; e = p.next[e] {
			matches++
		}
	}
	return matches
}

func (h *vecHashJoin) NextBatch() (*rowBatch, error) {
	if h.done {
		return nil, io.EOF
	}
	h.out.reset()
	for {
		// Drain the current probe row's pending matches into the arena.
		gathered := int64(0)
		for h.me >= 0 && !h.out.full() {
			r := h.mp.rows[h.me]
			h.me = h.mp.next[h.me]
			if !h.jc.residualsMatch(h.cur, r) {
				continue
			}
			h.out.emit(h.cur, r)
			gathered++
		}
		if gathered > 0 {
			h.outPending += gathered
			h.obs.OutRows += gathered
		}
		if h.out.full() {
			if err := h.flushOut(); err != nil {
				return nil, err
			}
			return h.out.take(), nil
		}
		// Matches exhausted: advance to the next probe row.
		if h.pb == nil || h.pi >= h.pb.n() {
			b, err := h.left.NextBatch()
			if err == io.EOF {
				h.exact = true
				h.done = true
				if err := h.flushOut(); err != nil {
					return nil, err
				}
				if h.out.len() > 0 {
					return h.out.take(), nil
				}
				return nil, io.EOF
			}
			if err != nil {
				return nil, err
			}
			if _, err := h.meter.ChargeN(h.clsProbe, int64(b.n())); err != nil {
				return nil, err
			}
			h.obs.LeftRows += int64(b.n())
			h.pb, h.pi = b, 0
			// Count-only fast probe: when the root arena discards rows and
			// the join has no residual predicates, matches only need to be
			// counted — the whole probe batch runs as one tight loop over
			// the columnar key vector with no row fetches or emits.
			if h.out.discard && len(h.jc.ids) == 1 {
				if kc := buildKeyCol(b, h.jc.leftPos[0]); kc != nil {
					m := h.fastProbe(b, kc)
					h.outPending += m
					h.obs.OutRows += m
					h.out.count += int(m)
					h.pi = b.n()
					if h.out.full() {
						if err := h.flushOut(); err != nil {
							return nil, err
						}
						return h.out.take(), nil
					}
					continue
				}
			}
		}
		row := h.pb.row(h.pi)
		h.pi++
		k := row[h.jc.leftPos[0]]
		if k.IsNull() {
			h.mp, h.me = nil, -1
			continue
		}
		h.cur = row
		h.mp, h.me = h.table.lookup(k.I)
	}
}

func (h *vecHashJoin) Close() error {
	h.e.pool.putOut(h.out)
	h.out = nil
	if err := h.left.Close(); err != nil {
		return err
	}
	if h.right != nil {
		return h.right.Close()
	}
	return nil
}

// vecMergeJoin drains and sorts both inputs at Open, then merges batch
// at a time. Merge-advance charges for one left row and its right-side
// skips are consecutive in the tuple engine too, so they are billed as
// one ChargeN chunk — identical counts at every possible kill point.
type vecMergeJoin struct {
	vecJoinBase
	clsMerge, clsOut int
	out              *outBuf
	lrows, rrows     []expr.Row
	li, ri           int
	group            []expr.Row
	gi               int
	cur              expr.Row
	done             bool
}

func (m *vecMergeJoin) Open() error {
	if err := m.left.Open(); err != nil {
		return err
	}
	if err := m.right.Open(); err != nil {
		return err
	}
	var err error
	m.lrows, err = m.drainAndSort(m.left, m.jc.leftPos[0])
	if err != nil {
		return err
	}
	m.rrows, err = m.drainAndSort(m.right, m.jc.rightPos[0])
	if err != nil {
		return err
	}
	m.obs.LeftRows = int64(len(m.lrows))
	m.obs.RightRows = int64(len(m.rrows))
	m.li, m.ri = 0, 0
	m.group = m.group[:0]
	m.gi = 0
	m.done = false
	return nil
}

func (m *vecMergeJoin) drainAndSort(op batchOperator, key int) ([]expr.Row, error) {
	var rows []expr.Row
	for {
		b, err := op.NextBatch()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		n := b.n()
		for i := 0; i < n; i++ {
			row := b.row(i)
			if !b.stable {
				row = cloneRow(row)
			}
			rows = append(rows, row)
		}
	}
	n := float64(len(rows))
	if err := m.meter.Charge(m.e.params.SortCmp * n * log2g(n)); err != nil {
		return nil, err
	}
	sort.SliceStable(rows, func(a, b int) bool {
		return expr.Compare(rows[a][key], rows[b][key]) < 0
	})
	return rows, nil
}

func (m *vecMergeJoin) NextBatch() (*rowBatch, error) {
	if m.done {
		return nil, io.EOF
	}
	m.out.reset()
	for {
		gathered := int64(0)
		for m.gi < len(m.group) && !m.out.full() {
			r := m.group[m.gi]
			m.gi++
			if !m.jc.residualsMatch(m.cur, r) {
				continue
			}
			m.out.emit(m.cur, r)
			gathered++
		}
		if gathered > 0 {
			if _, err := m.meter.ChargeN(m.clsOut, gathered); err != nil {
				return nil, err
			}
			m.obs.OutRows += gathered
		}
		if m.out.full() {
			return m.out.take(), nil
		}
		if m.li >= len(m.lrows) {
			m.exact = true
			m.done = true
			if m.out.len() > 0 {
				return m.out.take(), nil
			}
			return nil, io.EOF
		}
		l := m.lrows[m.li]
		m.li++
		lk := l[m.jc.leftPos[0]]
		if lk.IsNull() {
			if _, err := m.meter.ChargeN(m.clsMerge, 1); err != nil {
				return nil, err
			}
			m.group = m.group[:0]
			m.gi = 0
			continue
		}
		// Advance the right cursor to the key's group, billing the left
		// row plus every skipped right row in one chunk.
		skips := int64(0)
		for m.ri+int(skips) < len(m.rrows) &&
			expr.Compare(m.rrows[m.ri+int(skips)][m.jc.rightPos[0]], lk) < 0 {
			skips++
		}
		if _, err := m.meter.ChargeN(m.clsMerge, 1+skips); err != nil {
			return nil, err
		}
		m.ri += int(skips)
		m.group = m.group[:0]
		for k := m.ri; k < len(m.rrows) && expr.Compare(m.rrows[k][m.jc.rightPos[0]], lk) == 0; k++ {
			m.group = append(m.group, m.rrows[k])
		}
		m.cur = l
		m.gi = 0
	}
}

func (m *vecMergeJoin) Close() error {
	m.e.pool.putOut(m.out)
	m.out = nil
	if err := m.left.Close(); err != nil {
		return err
	}
	return m.right.Close()
}

// vecNLJoin materializes the inner child at Open and nest-loops outer
// batches over it. Pair charges up to and including the next match are
// consecutive in the tuple engine, so they bill as one ChargeN chunk —
// the charge sequence is tuple-exact at any batch capacity.
type vecNLJoin struct {
	vecJoinBase
	clsMat, clsPair, clsOut int
	out                     *outBuf
	inner                   []expr.Row
	pb                      *rowBatch
	pi                      int
	cur                     expr.Row
	ii                      int
	have                    bool
	done                    bool
}

func (n *vecNLJoin) Open() error {
	if err := n.left.Open(); err != nil {
		return err
	}
	if err := n.right.Open(); err != nil {
		return err
	}
	if n.inner == nil {
		n.inner = n.e.pool.getRows(DefaultBatchSize)
	}
	n.inner = n.inner[:0]
	for {
		b, err := n.right.NextBatch()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		cnt := b.n()
		if _, err := n.meter.ChargeN(n.clsMat, int64(cnt)); err != nil {
			return err
		}
		for i := 0; i < cnt; i++ {
			row := b.row(i)
			if !b.stable {
				row = cloneRow(row)
			}
			n.inner = append(n.inner, row)
		}
	}
	n.obs.RightRows = int64(len(n.inner))
	n.pb, n.pi = nil, 0
	n.have = false
	n.done = false
	return nil
}

func (n *vecNLJoin) NextBatch() (*rowBatch, error) {
	if n.done {
		return nil, io.EOF
	}
	n.out.reset()
	for {
		if !n.have {
			if n.pb == nil || n.pi >= n.pb.n() {
				b, err := n.left.NextBatch()
				if err == io.EOF {
					n.exact = true
					n.done = true
					if n.out.len() > 0 {
						return n.out.take(), nil
					}
					return nil, io.EOF
				}
				if err != nil {
					return nil, err
				}
				n.pb, n.pi = b, 0
			}
			n.cur = n.pb.row(n.pi)
			n.pi++
			n.obs.LeftRows++
			n.ii = 0
			n.have = true
		}
		// Scan the inner for the next match, counting pairs up to and
		// including the matching one.
		pairs := int64(0)
		var match expr.Row
		for n.ii < len(n.inner) {
			r := n.inner[n.ii]
			n.ii++
			pairs++
			if expr.Equal(n.cur[n.jc.leftPos[0]], r[n.jc.rightPos[0]]) && n.jc.residualsMatch(n.cur, r) {
				match = r
				break
			}
		}
		if pairs > 0 {
			if _, err := n.meter.ChargeN(n.clsPair, pairs); err != nil {
				return nil, err
			}
		}
		if match == nil {
			n.have = false // inner exhausted for this outer row
			continue
		}
		if _, err := n.meter.ChargeN(n.clsOut, 1); err != nil {
			return nil, err
		}
		n.obs.OutRows++
		n.out.emit(n.cur, match)
		if n.out.full() {
			return n.out.take(), nil
		}
	}
}

func (n *vecNLJoin) Close() error {
	n.e.pool.putOut(n.out)
	n.out = nil
	if err := n.left.Close(); err != nil {
		return err
	}
	if n.right != nil {
		// A morsel-worker clone shares the materialized inner with the
		// original operator (right == nil marks the clone); only the
		// owner recycles it.
		n.e.pool.putRows(n.inner)
		n.inner = nil
		return n.right.Close()
	}
	return nil
}

package exec

import (
	"fmt"
	"io"

	"repro/internal/expr"
	"repro/internal/faultinject"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/storage"
)

func (e *Executor) buildScan(n *plan.Node, meter *Meter, res *Result) (operator, *schema, error) {
	rel := n.Scan.Rel
	r := &e.q.Relations[rel]
	relation := e.store.Relation(r.Table)
	if relation == nil {
		return nil, nil, fmt.Errorf("exec: store missing relation %s", r.Table)
	}
	sch := e.relSchema(rel)
	seq := func() (operator, *schema, error) {
		return &seqScan{
			rel:     relation,
			filters: e.compileFilters(rel, -1),
			meter:   meter,
			params:  e,
			cls:     meter.Class(e.params.SeqTuple),
		}, sch, nil
	}
	switch n.Scan.Method {
	case plan.SeqScan:
		return seq()
	case plan.IndexScan:
		// Degradation ladder rung 1: a persistent index-probe fault
		// downgrades the access path to a sequential scan — slower but
		// index-free — instead of failing the execution. Transient probe
		// faults surface as errors and go through the retry policy.
		if ferr := e.faults.Check(faultinject.SiteIndexProbe); ferr != nil {
			if faultinject.IsTransient(ferr) {
				return nil, nil, opError("indexscan", ferr)
			}
			res.Degraded = append(res.Degraded,
				fmt.Sprintf("indexscan→seqscan rel=%s (%v)", r.Alias, ferr))
			return seq()
		}
		op, err := e.buildIndexScan(rel, relation, meter)
		if err != nil {
			return nil, nil, err
		}
		return op, sch, nil
	default:
		return nil, nil, fmt.Errorf("exec: unknown scan method")
	}
}

// seqScan reads every row, charging SeqTuple each, and applies filters.
type seqScan struct {
	rel     *storage.Relation
	filters []boundFilter
	meter   *Meter
	params  *Executor
	cls     int
	pos     int
}

func (s *seqScan) Open() error {
	s.pos = 0
	return nil
}

func (s *seqScan) Next() (expr.Row, error) {
	for s.pos < len(s.rel.Rows) {
		if s.pos&cancelCheckMask == 0 {
			if ferr := s.params.faults.Check(faultinject.SiteScanTuple); ferr != nil {
				return nil, opError("seqscan", ferr)
			}
		}
		row := s.rel.Rows[s.pos]
		s.pos++
		if _, err := s.meter.ChargeN(s.cls, 1); err != nil {
			return nil, err
		}
		if matchAll(s.filters, row) {
			return row, nil
		}
	}
	return nil, io.EOF
}

func (s *seqScan) Close() error { return nil }

// planIndexScan selects the driving predicate: the filter whose index
// probe matches the fewest rows (the executor's analogue of the cost
// model's best-single-filter selectivity). It returns the matching row
// ordinals and the driving filter's index (whose residuals the caller
// compiles). Shared by the tuple and vectorized builders.
func (e *Executor) planIndexScan(rel int, relation *storage.Relation) ([]int32, int, error) {
	r := &e.q.Relations[rel]
	if len(r.Filters) == 0 {
		return nil, -1, fmt.Errorf("exec: index scan on %s without filters", r.Alias)
	}
	bestIdx, bestCount := -1, int(^uint(0)>>1)
	var bestRows []int32
	for i, f := range r.Filters {
		col := relation.ColumnIndex(f.Column)
		if col < 0 || !relation.HasSortedIndex(col) {
			continue
		}
		rows := indexProbe(relation, col, f)
		if rows == nil {
			continue
		}
		if len(rows) < bestCount {
			bestIdx, bestCount, bestRows = i, len(rows), rows
		}
	}
	if bestIdx < 0 {
		return nil, -1, fmt.Errorf("exec: no usable index for %s", r.Alias)
	}
	return bestRows, bestIdx, nil
}

func (e *Executor) buildIndexScan(rel int, relation *storage.Relation, meter *Meter) (operator, error) {
	rows, bestIdx, err := e.planIndexScan(rel, relation)
	if err != nil {
		return nil, err
	}
	return &indexScan{
		rel:     relation,
		rows:    rows,
		filters: e.compileFilters(rel, bestIdx),
		meter:   meter,
		params:  e,
		cls:     meter.Class(e.params.IdxTuple),
	}, nil
}

// indexProbe returns the matching row ordinals for a filter through the
// sorted index, or nil if the operator cannot be served by a range.
func indexProbe(relation *storage.Relation, col int, f query.FilterPred) []int32 {
	if f.IsIn() {
		return nil // IN-lists run as residual filters
	}
	v := expr.Int(f.Value)
	vPrev := expr.Int(f.Value - 1)
	vNext := expr.Int(f.Value + 1)
	switch f.Op {
	case expr.EQ:
		return relation.RangeLookup(col, &v, &v)
	case expr.LT:
		return relation.RangeLookup(col, nil, &vPrev)
	case expr.LE:
		return relation.RangeLookup(col, nil, &v)
	case expr.GT:
		return relation.RangeLookup(col, &vNext, nil)
	case expr.GE:
		return relation.RangeLookup(col, &v, nil)
	default:
		return nil // NE is not a range
	}
}

// indexScan charges one descent plus IdxTuple per fetched row, applying
// residual filters after the fetch.
type indexScan struct {
	rel     *storage.Relation
	rows    []int32
	filters []boundFilter
	meter   *Meter
	params  *Executor
	cls     int
	pos     int
	opened  bool
}

func (s *indexScan) Open() error {
	s.pos = 0
	s.opened = true
	if ferr := s.params.faults.Check(faultinject.SiteIndexProbe); ferr != nil {
		return opError("indexscan", ferr)
	}
	return s.meter.Charge(s.params.params.IdxDescend * log2g(float64(s.rel.NumRows())))
}

func (s *indexScan) Next() (expr.Row, error) {
	for s.pos < len(s.rows) {
		row := s.rel.Rows[s.rows[s.pos]]
		s.pos++
		if _, err := s.meter.ChargeN(s.cls, 1); err != nil {
			return nil, err
		}
		if matchAll(s.filters, row) {
			return row, nil
		}
	}
	return nil, io.EOF
}

func (s *indexScan) Close() error { return nil }

package exec

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/expr"
	"repro/internal/plan"
)

// joinCols resolves the join predicates of a node to positions in the
// left and right child schemas. The first predicate is the physical
// (hash/merge/index) key; the rest are residual conditions.
type joinCols struct {
	ids      []int
	leftPos  []int
	rightPos []int
}

func (e *Executor) resolveJoinCols(n *plan.Node, ls, rs *schema) (*joinCols, error) {
	jc := &joinCols{}
	for _, id := range n.Join.JoinIDs {
		j := e.q.Joins[id]
		lName := e.q.Relations[j.LeftRel].Alias + "." + j.LeftCol
		rName := e.q.Relations[j.RightRel].Alias + "." + j.RightCol
		lp, rp := ls.indexOf(lName), rs.indexOf(rName)
		if lp < 0 || rp < 0 {
			// The predicate may be oriented the other way round.
			lp, rp = ls.indexOf(rName), rs.indexOf(lName)
			if lp < 0 || rp < 0 {
				return nil, fmt.Errorf("exec: join %d columns not found in children", id)
			}
		}
		jc.ids = append(jc.ids, id)
		jc.leftPos = append(jc.leftPos, lp)
		jc.rightPos = append(jc.rightPos, rp)
	}
	return jc, nil
}

// residualsMatch checks predicates beyond the physical key.
func (jc *joinCols) residualsMatch(l, r expr.Row) bool {
	for k := 1; k < len(jc.ids); k++ {
		if !expr.Equal(l[jc.leftPos[k]], r[jc.rightPos[k]]) {
			return false
		}
	}
	return true
}

func (e *Executor) buildJoin(n *plan.Node, meter *Meter, res *Result) (operator, *schema, error) {
	lop, ls, err := e.build(n.Left, meter, res)
	if err != nil {
		return nil, nil, err
	}
	switch n.Join.Method {
	case plan.HashJoin, plan.MergeJoin, plan.NLJoin:
		rop, rs, err := e.build(n.Right, meter, res)
		if err != nil {
			return nil, nil, err
		}
		jc, err := e.resolveJoinCols(n, ls, rs)
		if err != nil {
			return nil, nil, err
		}
		sch := concatSchema(ls, rs)
		switch n.Join.Method {
		case plan.HashJoin:
			return &hashJoin{
				joinBase: base(e, meter, jc, lop, rop),
				hint:     e.cardHint(n.Right),
				clsBuild: meter.Class(e.params.HashBuild),
				clsProbe: meter.Class(e.params.HashProbe),
				clsOut:   meter.Class(e.params.Tuple),
			}, sch, nil
		case plan.MergeJoin:
			return &mergeJoin{
				joinBase: base(e, meter, jc, lop, rop),
				clsMerge: meter.Class(e.params.Merge),
				clsOut:   meter.Class(e.params.Tuple),
			}, sch, nil
		default:
			return &nlJoin{
				joinBase: base(e, meter, jc, lop, rop),
				clsMat:   meter.Class(e.params.Mat),
				clsPair:  meter.Class(e.params.NLPair),
				clsOut:   meter.Class(e.params.Tuple),
			}, sch, nil
		}
	case plan.IndexNLJoin:
		rel := n.Right.Scan.Rel
		rs := e.relSchema(rel)
		jc, err := e.resolveJoinCols(n, ls, rs)
		if err != nil {
			return nil, nil, err
		}
		relation := e.store.Relation(e.q.Relations[rel].Table)
		if relation == nil {
			return nil, nil, fmt.Errorf("exec: store missing relation %s", e.q.Relations[rel].Table)
		}
		innerCol := jc.rightPos[0]
		if !relation.HasHashIndex(innerCol) {
			return nil, nil, fmt.Errorf("exec: no hash index on %s column %d for INL join",
				relation.Name, innerCol)
		}
		op := &indexNLJoin{
			joinBase:   base(e, meter, jc, lop, nil),
			rel:        relation,
			filters:    e.compileFilters(rel, -1),
			clsDescend: meter.Class(e.params.IdxDescend * log2g(float64(relation.NumRows()))),
			clsFetch:   meter.Class(e.params.IdxTuple),
			clsOut:     meter.Class(e.params.Tuple),
		}
		return op, concatSchema(ls, rs), nil
	default:
		return nil, nil, fmt.Errorf("exec: unknown join method")
	}
}

// cardHint estimates a subtree's output cardinality for hash-table
// preallocation: the largest base-relation cardinality under the
// subtree (joins in this workload never expand beyond their larger
// input by much, and over-reserving a map is cheap relative to
// rehashing during build).
func (e *Executor) cardHint(n *plan.Node) int {
	if n == nil {
		return 0
	}
	if n.IsScan() {
		if rel := e.store.Relation(e.q.Relations[n.Scan.Rel].Table); rel != nil {
			return rel.NumRows()
		}
		return 0
	}
	l, r := e.cardHint(n.Left), e.cardHint(n.Right)
	if l > r {
		return l
	}
	return r
}

// joinBase holds shared join operator state including the selectivity
// monitor (§3.1's run-time monitoring).
type joinBase struct {
	e     *Executor
	meter *Meter
	jc    *joinCols
	left  operator
	right operator
	obs   JoinObs
	// exact marks that both inputs were fully consumed, making the
	// observed selectivity exact.
	exact bool
}

func base(e *Executor, meter *Meter, jc *joinCols, l, r operator) joinBase {
	return joinBase{e: e, meter: meter, jc: jc, left: l, right: r}
}

// observations implements joinObserver, recursing into children.
func (b *joinBase) observations(into map[int]float64) {
	if b.exact {
		for _, id := range b.jc.ids {
			into[id] = b.obs.Sel()
		}
	}
	collectObservations(b.left, into)
	if b.right != nil {
		collectObservations(b.right, into)
	}
}

func joinRows(l, r expr.Row) expr.Row {
	out := make(expr.Row, 0, len(l)+len(r))
	out = append(out, l...)
	out = append(out, r...)
	return out
}

// hashJoin builds on the right child, probes with the left.
type hashJoin struct {
	joinBase
	hint                       int
	clsBuild, clsProbe, clsOut int
	table                      map[int64][]expr.Row
	cur                        expr.Row
	matches                    []expr.Row
	mi                         int
}

func (h *hashJoin) Open() error {
	if err := h.left.Open(); err != nil {
		return err
	}
	if err := h.right.Open(); err != nil {
		return err
	}
	h.table = make(map[int64][]expr.Row, h.hint)
	for {
		row, err := h.right.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if _, err := h.meter.ChargeN(h.clsBuild, 1); err != nil {
			return err
		}
		h.obs.RightRows++
		k := row[h.jc.rightPos[0]]
		if k.IsNull() {
			continue
		}
		h.table[k.I] = append(h.table[k.I], row)
	}
	return nil
}

func (h *hashJoin) Next() (expr.Row, error) {
	for {
		for h.mi < len(h.matches) {
			r := h.matches[h.mi]
			h.mi++
			if !h.jc.residualsMatch(h.cur, r) {
				continue
			}
			if _, err := h.meter.ChargeN(h.clsOut, 1); err != nil {
				return nil, err
			}
			h.obs.OutRows++
			return joinRows(h.cur, r), nil
		}
		row, err := h.left.Next()
		if err == io.EOF {
			h.exact = true
			return nil, io.EOF
		}
		if err != nil {
			return nil, err
		}
		if _, err := h.meter.ChargeN(h.clsProbe, 1); err != nil {
			return nil, err
		}
		h.obs.LeftRows++
		k := row[h.jc.leftPos[0]]
		if k.IsNull() {
			continue
		}
		h.cur = row
		h.matches = h.table[k.I]
		h.mi = 0
	}
}

func (h *hashJoin) Close() error {
	if err := h.left.Close(); err != nil {
		return err
	}
	return h.right.Close()
}

// mergeJoin sorts both inputs on the key and merges.
type mergeJoin struct {
	joinBase
	clsMerge, clsOut int
	lrows, rrows     []expr.Row
	li, ri           int
	group            []expr.Row // right rows sharing the current key
	gi               int
	cur              expr.Row
}

func (m *mergeJoin) Open() error {
	if err := m.left.Open(); err != nil {
		return err
	}
	if err := m.right.Open(); err != nil {
		return err
	}
	var err error
	m.lrows, err = m.drainAndSort(m.left, m.jc.leftPos[0])
	if err != nil {
		return err
	}
	m.rrows, err = m.drainAndSort(m.right, m.jc.rightPos[0])
	if err != nil {
		return err
	}
	m.obs.LeftRows = int64(len(m.lrows))
	m.obs.RightRows = int64(len(m.rrows))
	m.li, m.ri = 0, 0
	return nil
}

func (m *mergeJoin) drainAndSort(op operator, key int) ([]expr.Row, error) {
	var rows []expr.Row
	for {
		row, err := op.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	n := float64(len(rows))
	if err := m.meter.Charge(m.e.params.SortCmp * n * log2g(n)); err != nil {
		return nil, err
	}
	sort.SliceStable(rows, func(a, b int) bool {
		return expr.Compare(rows[a][key], rows[b][key]) < 0
	})
	return rows, nil
}

func (m *mergeJoin) Next() (expr.Row, error) {
	for {
		for m.gi < len(m.group) {
			r := m.group[m.gi]
			m.gi++
			if !m.jc.residualsMatch(m.cur, r) {
				continue
			}
			if _, err := m.meter.ChargeN(m.clsOut, 1); err != nil {
				return nil, err
			}
			m.obs.OutRows++
			return joinRows(m.cur, r), nil
		}
		if m.li >= len(m.lrows) {
			m.exact = true
			return nil, io.EOF
		}
		l := m.lrows[m.li]
		m.li++
		if _, err := m.meter.ChargeN(m.clsMerge, 1); err != nil {
			return nil, err
		}
		lk := l[m.jc.leftPos[0]]
		if lk.IsNull() {
			continue
		}
		// Advance the right cursor to the key's group.
		for m.ri < len(m.rrows) && expr.Compare(m.rrows[m.ri][m.jc.rightPos[0]], lk) < 0 {
			if _, err := m.meter.ChargeN(m.clsMerge, 1); err != nil {
				return nil, err
			}
			m.ri++
		}
		m.group = m.group[:0]
		for k := m.ri; k < len(m.rrows) && expr.Compare(m.rrows[k][m.jc.rightPos[0]], lk) == 0; k++ {
			m.group = append(m.group, m.rrows[k])
		}
		m.cur = l
		m.gi = 0
	}
}

func (m *mergeJoin) Close() error {
	if err := m.left.Close(); err != nil {
		return err
	}
	return m.right.Close()
}

// nlJoin materializes the inner child and nest-loops the outer over it.
type nlJoin struct {
	joinBase
	clsMat, clsPair, clsOut int
	inner                   []expr.Row
	cur                     expr.Row
	ii                      int
	have                    bool
}

func (n *nlJoin) Open() error {
	if err := n.left.Open(); err != nil {
		return err
	}
	if err := n.right.Open(); err != nil {
		return err
	}
	for {
		row, err := n.right.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if _, err := n.meter.ChargeN(n.clsMat, 1); err != nil {
			return err
		}
		n.inner = append(n.inner, row)
	}
	n.obs.RightRows = int64(len(n.inner))
	return nil
}

func (n *nlJoin) Next() (expr.Row, error) {
	for {
		if !n.have {
			row, err := n.left.Next()
			if err == io.EOF {
				n.exact = true
				return nil, io.EOF
			}
			if err != nil {
				return nil, err
			}
			n.obs.LeftRows++
			n.cur = row
			n.ii = 0
			n.have = true
		}
		for n.ii < len(n.inner) {
			r := n.inner[n.ii]
			n.ii++
			if _, err := n.meter.ChargeN(n.clsPair, 1); err != nil {
				return nil, err
			}
			if !expr.Equal(n.cur[n.jc.leftPos[0]], r[n.jc.rightPos[0]]) || !n.jc.residualsMatch(n.cur, r) {
				continue
			}
			if _, err := n.meter.ChargeN(n.clsOut, 1); err != nil {
				return nil, err
			}
			n.obs.OutRows++
			return joinRows(n.cur, r), nil
		}
		n.have = false
	}
}

func (n *nlJoin) Close() error {
	if err := n.left.Close(); err != nil {
		return err
	}
	return n.right.Close()
}

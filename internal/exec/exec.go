// Package exec implements the demand-driven iterator executor (§3.1.1)
// with the engine extensions the paper added to PostgreSQL: cost-limited
// execution with forced termination, spill-mode execution of a chosen
// subtree with output discarding, and run-time monitoring of operator
// selectivities.
//
// Operators charge the same per-tuple constants as the cost model, so a
// plan's metered execution cost equals its modeled cost whenever the
// model's cardinality inputs are exact — the paper's perfect-cost-model
// setting.
package exec

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/cost"
	"repro/internal/expr"
	"repro/internal/faultinject"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/storage"
)

// ErrBudgetExceeded aborts an execution whose metered cost passed its
// budget — the forced termination of §1.1.1.
var ErrBudgetExceeded = errors.New("exec: cost budget exceeded")

// Retry policy for faults classified transient (see the "Fault model &
// degradation ladder" section of DESIGN.md). An execution that fails
// with a transient fault is re-run up to MaxRetries times with capped
// exponential backoff and deterministic jitter; every cost unit the
// failed attempts consumed stays on the ledger (Result.WastedCost), so
// MSO accounting reflects the true price of robustness.
const (
	// MaxRetries bounds the number of re-executions after the first
	// attempt.
	MaxRetries = 3
	// BackoffBase is the first retry's backoff delay.
	BackoffBase = 500 * time.Microsecond
	// BackoffCap caps the exponential backoff delay.
	BackoffCap = 4 * time.Millisecond
)

// Meter tracks metered cost against an optional budget.
//
// Charge semantics under kills and retries (pinned by the regression
// test TestMeterClampAcrossKillRetryCycles):
//
//   - A killed execution costs exactly its budget: the Charge that
//     crosses Budget clamps Used to Budget and returns
//     ErrBudgetExceeded, and any further charges keep Used clamped, so
//     no over-run is ever billed for a single attempt.
//   - Retried work accumulates: every retry attempt runs on a fresh
//     Meter and the executor sums all attempts into Result.Cost, so a
//     budget-B execution that is killed once and retried twice bills up
//     to 3B — wasted work is charged, never forgiven.
//   - Induced latency drift accumulates separately in Drifted and never
//     triggers a budget kill: kills are decisions on modeled work,
//     drift is accounted (but unmodeled) slack.
//
// Per-tuple constants are billed through registered charge classes
// (Class/ChargeN) rather than repeated float additions: Used is always
// recomputed as oneShot + Σ countᵢ·cᵢ in class-registration order, so
// the metered total is a pure function of the per-class tuple counts.
// That makes it independent of how charges were grouped into batches —
// the property the vectorized engine's bit-for-bit cost equality with
// tuple-at-a-time execution rests on (floating-point addition is not
// associative, so a running sum would diverge between the engines).
type Meter struct {
	// Used is the cost consumed so far.
	Used float64
	// Budget caps Used; 0 means unlimited.
	Budget float64
	// Drifted is the induced-latency cost accounted on top of Used; it
	// is billed to the caller but does not count toward the budget.
	Drifted float64

	// oneShot accumulates Charge units (descents, sorts) in arrival
	// order; both engines issue these unbatched and in the same order.
	oneShot float64
	// classes holds the registered per-tuple charge classes. Operators
	// register the same constants in the same order in both engines
	// (class registration follows plan build order).
	classes []meterClass

	// shared is non-nil on per-worker meters forked for morsel-parallel
	// execution (see Meter.fork in morsel.go): ChargeN then bills into
	// this worker's counter lane and checks the budget against the
	// merged counts of all workers, so a kill fires at the same billed
	// cost regardless of worker count.
	shared *meterShared
	wid    int
}

// meterClass is one per-tuple charge constant and its tuple count.
type meterClass struct {
	c float64
	n int64
}

// Class registers a per-tuple charge constant and returns its handle
// for ChargeN. Registration order is part of the metering contract: the
// recomputed total sums classes in this order.
func (m *Meter) Class(c float64) int {
	m.classes = append(m.classes, meterClass{c: c})
	return len(m.classes) - 1
}

// sum recomputes the metered total from the one-shot accumulator and
// the class counts, in registration order.
func (m *Meter) sum() float64 {
	u := m.oneShot
	for i := range m.classes {
		u += m.classes[i].c * float64(m.classes[i].n)
	}
	return u
}

// settle folds the recomputed total into Used, clamping at the budget.
func (m *Meter) settle() error {
	u := m.sum()
	if m.Budget > 0 && u > m.Budget {
		m.Used = m.Budget // a killed execution costs exactly its budget
		return ErrBudgetExceeded
	}
	m.Used = u
	return nil
}

// Charge adds units and fails with ErrBudgetExceeded past the budget.
func (m *Meter) Charge(units float64) error {
	if m.shared != nil {
		// One-shot charges (descents, sorts) belong to blocking work,
		// which runs in the sequential phase on the main meter; a worker
		// meter seeing one is a scheduler bug, not a billing case.
		panic("exec: one-shot Charge on a parallel worker meter")
	}
	m.oneShot += units
	return m.settle()
}

// ChargeN bills n tuples of class h. When the batch crosses the budget
// it is re-walked to the exact kill tuple: the count is rolled back to
// the smallest k ≤ n whose total exceeds the budget (the killing tuple
// itself stays billed, exactly as a per-tuple Charge sequence would
// leave it), Used clamps to Budget, and (k, ErrBudgetExceeded) is
// returned so monitors can account precisely the tuples processed
// before the kill. The search is sound because the total is monotone in
// the count even in floating point.
func (m *Meter) ChargeN(h int, n int64) (int64, error) {
	if n <= 0 {
		return 0, nil
	}
	if m.shared != nil {
		return m.shared.charge(m, h, n)
	}
	cl := &m.classes[h]
	cl.n += n
	if err := m.settle(); err == nil {
		return n, nil
	}
	base := cl.n - n
	lo, hi := int64(1), n
	for lo < hi {
		mid := lo + (hi-lo)/2
		cl.n = base + mid
		if m.sum() > m.Budget {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	cl.n = base + lo
	m.Used = m.Budget
	return lo, ErrBudgetExceeded
}

// AddDrift bills extra accounted cost without advancing the budget
// clock (induced latency / meter drift).
func (m *Meter) AddDrift(units float64) { m.Drifted += units }

// JoinObs is the run-time selectivity observation of one join operator.
type JoinObs struct {
	// LeftRows and RightRows are the input cardinalities consumed.
	LeftRows, RightRows int64
	// OutRows is the number of joined rows produced.
	OutRows int64
}

// Sel returns the observed join selectivity (fraction of the input cross
// product), or 0 when inputs were empty.
func (o JoinObs) Sel() float64 {
	if o.LeftRows == 0 || o.RightRows == 0 {
		return 0
	}
	return float64(o.OutRows) / (float64(o.LeftRows) * float64(o.RightRows))
}

// Result reports one (possibly budget-limited, possibly retried)
// execution.
type Result struct {
	// Rows is the number of rows the root produced before completion or
	// termination.
	Rows int64
	// Cost is the total accounted cost of the call: the final attempt's
	// metered cost plus every failed attempt's cost (WastedCost) plus
	// induced drift (Drift). This is the value the discovery ledger
	// charges.
	Cost float64
	// Completed reports whether the plan ran to completion.
	Completed bool
	// JoinSel maps join predicate IDs to their observed selectivities;
	// populated only for joins whose operators fully consumed their
	// inputs (exact observations).
	JoinSel map[int]float64
	// Retries is the number of re-executions after transient faults.
	Retries int
	// WastedCost is the cost consumed by attempts that failed and were
	// retried (included in Cost).
	WastedCost float64
	// Drift is the induced-latency cost accounted beyond the metered
	// work (included in Cost; never triggers a budget kill).
	Drift float64
	// Degraded lists the graceful fallbacks and retries taken during
	// the call, in order (e.g. "indexscan→seqscan rel=d").
	Degraded []string
}

// Executor runs physical plans over a store.
type Executor struct {
	q      *query.Query
	store  *storage.Store
	params cost.Params
	faults *faultinject.Injector

	// vectorized selects batch-at-a-time execution (the default); the
	// tuple-at-a-time Volcano engine remains as the differential
	// reference.
	vectorized bool
	// batchSize is the vectorized engine's batch capacity. An armed
	// fault injector forces capacity 1 (lockstep mode) regardless, so
	// fault-site sequence numbers match the tuple engine exactly.
	batchSize int
	// workers is the intra-query parallelism degree: > 1 runs eligible
	// vectorized plans morsel-at-a-time across a bounded worker pool
	// (see morsel.go). An armed fault injector forces sequential
	// execution regardless, preserving bit-for-bit chaos replay.
	workers int

	// pool recycles selection vectors, output arenas, and fetch scratch
	// across batches and runs, so the columnar scan path allocates
	// near-zero per execution.
	pool bufPool
}

// MaxWorkers caps the intra-query parallelism degree.
const MaxWorkers = 64

// New creates an executor for the query over the store. Execution is
// vectorized by default; Vectorized(false) selects the tuple-at-a-time
// reference engine.
func New(q *query.Query, store *storage.Store, params cost.Params) *Executor {
	return &Executor{q: q, store: store, params: params, vectorized: true, batchSize: DefaultBatchSize, workers: 1}
}

// WithFaults arms the executor with a fault injector (nil disarms) and
// returns the executor for chaining.
func (e *Executor) WithFaults(in *faultinject.Injector) *Executor {
	e.faults = in
	return e
}

// Vectorized toggles batch-at-a-time execution (on by default) and
// returns the executor for chaining. The tuple engine is kept as the
// bit-for-bit reference the differential suite checks the vectorized
// engine against.
func (e *Executor) Vectorized(on bool) *Executor {
	e.vectorized = on
	return e
}

// WithBatchSize overrides the vectorized engine's batch capacity
// (values < 1 are clamped to 1) and returns the executor for chaining.
func (e *Executor) WithBatchSize(n int) *Executor {
	if n < 1 {
		n = 1
	}
	e.batchSize = n
	return e
}

// WithWorkers sets the intra-query parallelism degree (clamped to
// [1, MaxWorkers]) and returns the executor for chaining. At n > 1 the
// vectorized engine runs eligible plans morsel-at-a-time across n
// workers inside one budgeted execution; every completed-run observable
// (Cost, WastedCost, selectivities, degradations) is bit-identical to
// sequential execution, and a budget kill bills exactly the budget at
// any worker count. Armed faults force sequential lockstep regardless.
func (e *Executor) WithWorkers(n int) *Executor {
	if n < 1 {
		n = 1
	}
	if n > MaxWorkers {
		n = MaxWorkers
	}
	e.workers = n
	return e
}

// Workers reports the configured intra-query parallelism degree.
func (e *Executor) Workers() int { return e.workers }

// Run executes the plan with the budget (0 = unlimited), discarding
// output rows (the OLAP experiments measure work, not result delivery).
func (e *Executor) Run(root *plan.Node, budget float64) (*Result, error) {
	return e.RunCtx(context.Background(), root, budget)
}

// RunCtx is Run with cancellation: the context is checked between
// iterator steps, so a cancel or deadline tears the execution down
// mid-stream with a typed *OperatorError wrapping the context error.
func (e *Executor) RunCtx(ctx context.Context, root *plan.Node, budget float64) (*Result, error) {
	return e.retry(ctx, func() (*Result, error) { return e.driveOnce(ctx, root, budget, false) })
}

// RunSpill executes the plan in spill-mode on the given join predicate:
// only the subtree rooted at that join runs, and its output is
// discarded (§3.1.2). The observed selectivity of the spilled join is
// exact iff the subtree completed within budget.
func (e *Executor) RunSpill(root *plan.Node, joinID int, budget float64) (*Result, error) {
	return e.RunSpillCtx(context.Background(), root, joinID, budget)
}

// RunSpillCtx is RunSpill with cancellation (see RunCtx).
func (e *Executor) RunSpillCtx(ctx context.Context, root *plan.Node, joinID int, budget float64) (*Result, error) {
	sub := plan.SpillSubtree(root, joinID)
	if sub == nil {
		return nil, fmt.Errorf("exec: plan does not apply join %d", joinID)
	}
	return e.retry(ctx, func() (*Result, error) { return e.driveOnce(ctx, sub, budget, true) })
}

// retry drives attempts through the transient-fault retry policy:
// capped exponential backoff with deterministic jitter, every failed
// attempt's cost accumulated into the returned Result so the ledger
// pays for wasted work. Non-transient errors, exhausted retries, and
// cancellations surface immediately (with the cost consumed so far).
func (e *Executor) retry(ctx context.Context, attempt func() (*Result, error)) (*Result, error) {
	var wasted float64
	var degraded []string
	for try := 0; ; try++ {
		res, err := attempt()
		degraded = append(degraded, res.Degraded...)
		res.Degraded = degraded
		res.Retries = try
		res.WastedCost = wasted
		res.Cost += wasted
		if err == nil {
			return res, nil
		}
		wasted += res.Cost - res.WastedCost // this attempt's cost is now wasted
		res.WastedCost = wasted
		res.Cost = wasted
		if !faultinject.IsTransient(err) || try >= MaxRetries || ctx.Err() != nil {
			return res, err
		}
		degraded = append(degraded, fmt.Sprintf("retry#%d after %v", try+1, err))
		if err := e.backoff(ctx, try); err != nil {
			return res, opError("retry", err)
		}
	}
}

// backoff sleeps the capped exponential delay for the attempt, with
// jitter from the injector's deterministic schedule, honoring ctx.
func (e *Executor) backoff(ctx context.Context, try int) error {
	d := BackoffBase << uint(try)
	if d > BackoffCap {
		d = BackoffCap
	}
	d += time.Duration(float64(d) * e.faults.Jitter(try))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// cancelCheckMask batches context / fault-site checks in the drive loop
// to one per 64 iterator steps.
const cancelCheckMask = 63

// driveOnce runs one execution attempt through the selected engine.
func (e *Executor) driveOnce(ctx context.Context, root *plan.Node, budget float64, spill bool) (*Result, error) {
	if e.vectorized {
		return e.driveVec(ctx, root, budget, spill)
	}
	return e.driveTuple(ctx, root, budget, spill)
}

// driveTuple runs one tuple-at-a-time execution attempt. It never
// panics: operator panics are recovered and converted to typed
// *OperatorError values, and the returned Result always carries the
// cost consumed so far, so even failed attempts are billable.
func (e *Executor) driveTuple(ctx context.Context, root *plan.Node, budget float64, spill bool) (res *Result, err error) {
	meter := &Meter{Budget: budget}
	res = &Result{JoinSel: make(map[int]float64)}
	defer func() {
		if r := recover(); r != nil {
			res.Cost = meter.Used + meter.Drifted
			res.Drift = meter.Drifted
			res.Completed = false
			err = recoveredError(root.Signature(), r)
		}
	}()
	op, _, err := e.build(root, meter, res)
	if err != nil {
		res.Cost = meter.Used + meter.Drifted
		res.Drift = meter.Drifted
		return res, opError("build", err)
	}
	steps := 0
	err = func() error {
		if err := op.Open(); err != nil {
			return err
		}
		for {
			if steps&cancelCheckMask == 0 {
				if cerr := ctx.Err(); cerr != nil {
					return opError("cancel", cerr)
				}
				if ferr := e.faults.Check(faultinject.SiteOperatorPanic); ferr != nil {
					panic(ferr)
				}
				if d := e.faults.Drift(faultinject.SiteLatency); d > 0 {
					meter.AddDrift(d * e.params.Tuple)
				}
			}
			steps++
			_, err := op.Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			res.Rows++
		}
	}()
	return e.epilogue(res, meter, op, err, op.Close(), spill)
}

// epilogue is the shared post-drive accounting for both engines:
// billing, completion classification, close errors, and the completed
// path's spill-observation fault plus selectivity collection.
func (e *Executor) epilogue(res *Result, meter *Meter, op any, runErr, closeErr error, spill bool) (*Result, error) {
	res.Cost = meter.Used + meter.Drifted
	res.Drift = meter.Drifted
	switch {
	case runErr == nil:
		res.Completed = true
	case errors.Is(runErr, ErrBudgetExceeded):
		res.Completed = false
	default:
		return res, opError("iterate", runErr)
	}
	if closeErr != nil {
		return res, opError("close", closeErr)
	}
	if res.Completed {
		// Degradation ladder: a dropped spill observation. Transient drops
		// go through the retry policy (the re-run can recover the sample);
		// persistent drops keep the completed result but leave JoinSel
		// empty, pushing the caller onto the no-information inference path.
		if spill {
			if ferr := e.faults.Check(faultinject.SiteSpillObs); ferr != nil {
				if faultinject.IsTransient(ferr) {
					return res, opError("spillobs", ferr)
				}
				res.Degraded = append(res.Degraded,
					fmt.Sprintf("spill observation dropped (%v)", ferr))
				return res, nil
			}
		}
		collectObservations(op, res.JoinSel)
	}
	return res, nil
}

// operator is the iterator interface (§3.1.1's demand-driven model).
type operator interface {
	Open() error
	Next() (expr.Row, error)
	Close() error
}

// joinObserver is implemented by join operators that can report an
// exact selectivity observation after completion.
type joinObserver interface {
	observations(into map[int]float64)
}

// collectObservations gathers exact join selectivities from any
// operator tree (tuple or batch) implementing joinObserver.
func collectObservations(op any, into map[int]float64) {
	if jo, ok := op.(joinObserver); ok {
		jo.observations(into)
	}
}

// schema maps qualified column names to row positions.
type schema struct {
	cols []string // "alias.column"
}

func (s *schema) indexOf(name string) int {
	for i, c := range s.cols {
		if c == name {
			return i
		}
	}
	return -1
}

func concatSchema(l, r *schema) *schema {
	out := &schema{cols: make([]string, 0, len(l.cols)+len(r.cols))}
	out.cols = append(out.cols, l.cols...)
	out.cols = append(out.cols, r.cols...)
	return out
}

// build compiles a plan node into an operator tree. res collects
// degradation notes taken during compilation (e.g. index→seq-scan
// fallback on persistent index faults).
func (e *Executor) build(n *plan.Node, meter *Meter, res *Result) (operator, *schema, error) {
	if n.IsScan() {
		return e.buildScan(n, meter, res)
	}
	return e.buildJoin(n, meter, res)
}

func (e *Executor) relSchema(rel int) *schema {
	r := &e.q.Relations[rel]
	tab := e.q.Cat.MustTable(r.Table)
	s := &schema{cols: make([]string, len(tab.Columns))}
	for i := range tab.Columns {
		s.cols[i] = r.Alias + "." + tab.Columns[i].Name
	}
	return s
}

// compileFilters binds the relation's filter predicates to positions.
func (e *Executor) compileFilters(rel int, skip int) []boundFilter {
	r := &e.q.Relations[rel]
	tab := e.q.Cat.MustTable(r.Table)
	var out []boundFilter
	for i, f := range r.Filters {
		if i == skip {
			continue
		}
		bf := boundFilter{
			col: tab.ColumnIndex(f.Column),
			op:  f.Op,
			val: expr.Int(f.Value),
		}
		if f.IsIn() {
			bf.in = make(map[int64]bool, len(f.Values))
			for _, v := range f.Values {
				bf.in[v] = true
			}
		} else {
			// Compile int-constant comparisons (all but NE) into an
			// inclusive [lo, hi] range so the scan hot loops test two
			// integers instead of dispatching through expr.Compare.
			bf.lo, bf.hi = math.MinInt64, math.MaxInt64
			switch f.Op {
			case expr.EQ:
				bf.lo, bf.hi = f.Value, f.Value
				bf.ranged = true
			case expr.LT:
				if f.Value > math.MinInt64 {
					bf.hi = f.Value - 1
					bf.ranged = true
				}
			case expr.LE:
				bf.hi = f.Value
				bf.ranged = true
			case expr.GT:
				if f.Value < math.MaxInt64 {
					bf.lo = f.Value + 1
					bf.ranged = true
				}
			case expr.GE:
				bf.lo = f.Value
				bf.ranged = true
			}
		}
		out = append(out, bf)
	}
	return out
}

type boundFilter struct {
	col int
	op  expr.CmpOp
	val expr.Value
	in  map[int64]bool // non-nil for IN-list predicates
	// ranged marks predicates compiled to the lo ≤ v ≤ hi integer fast
	// path (see compileFilters); NULLs and non-int values still take the
	// general eval path.
	ranged bool
	lo, hi int64
}

// matchAll reports whether the row passes every filter, routing
// int-valued columns through the precompiled range fast path.
func matchAll(filters []boundFilter, row expr.Row) bool {
	for i := range filters {
		f := &filters[i]
		if f.ranged {
			if v := &row[f.col]; v.K == expr.KindInt {
				if v.I < f.lo || v.I > f.hi {
					return false
				}
				continue
			}
		}
		if !f.eval(row) {
			return false
		}
	}
	return true
}

func (f boundFilter) eval(row expr.Row) bool {
	v := row[f.col]
	if v.IsNull() {
		return false
	}
	if f.in != nil {
		return v.K == expr.KindInt && f.in[v.I]
	}
	c := expr.Compare(v, f.val)
	switch f.op {
	case expr.EQ:
		return c == 0
	case expr.NE:
		return c != 0
	case expr.LT:
		return c < 0
	case expr.LE:
		return c <= 0
	case expr.GT:
		return c > 0
	case expr.GE:
		return c >= 0
	default:
		return false
	}
}

func log2g(x float64) float64 { return math.Log2(x + 2) }

// Package exec implements the demand-driven iterator executor (§3.1.1)
// with the engine extensions the paper added to PostgreSQL: cost-limited
// execution with forced termination, spill-mode execution of a chosen
// subtree with output discarding, and run-time monitoring of operator
// selectivities.
//
// Operators charge the same per-tuple constants as the cost model, so a
// plan's metered execution cost equals its modeled cost whenever the
// model's cardinality inputs are exact — the paper's perfect-cost-model
// setting.
package exec

import (
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/cost"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/storage"
)

// ErrBudgetExceeded aborts an execution whose metered cost passed its
// budget — the forced termination of §1.1.1.
var ErrBudgetExceeded = errors.New("exec: cost budget exceeded")

// Meter tracks metered cost against an optional budget.
type Meter struct {
	// Used is the cost consumed so far.
	Used float64
	// Budget caps Used; 0 means unlimited.
	Budget float64
}

// Charge adds units and fails with ErrBudgetExceeded past the budget.
func (m *Meter) Charge(units float64) error {
	m.Used += units
	if m.Budget > 0 && m.Used > m.Budget {
		m.Used = m.Budget // a killed execution costs exactly its budget
		return ErrBudgetExceeded
	}
	return nil
}

// JoinObs is the run-time selectivity observation of one join operator.
type JoinObs struct {
	// LeftRows and RightRows are the input cardinalities consumed.
	LeftRows, RightRows int64
	// OutRows is the number of joined rows produced.
	OutRows int64
}

// Sel returns the observed join selectivity (fraction of the input cross
// product), or 0 when inputs were empty.
func (o JoinObs) Sel() float64 {
	if o.LeftRows == 0 || o.RightRows == 0 {
		return 0
	}
	return float64(o.OutRows) / (float64(o.LeftRows) * float64(o.RightRows))
}

// Result reports one (possibly budget-limited) execution.
type Result struct {
	// Rows is the number of rows the root produced before completion or
	// termination.
	Rows int64
	// Cost is the metered cost consumed.
	Cost float64
	// Completed reports whether the plan ran to completion.
	Completed bool
	// JoinSel maps join predicate IDs to their observed selectivities;
	// populated only for joins whose operators fully consumed their
	// inputs (exact observations).
	JoinSel map[int]float64
}

// Executor runs physical plans over a store.
type Executor struct {
	q      *query.Query
	store  *storage.Store
	params cost.Params
}

// New creates an executor for the query over the store.
func New(q *query.Query, store *storage.Store, params cost.Params) *Executor {
	return &Executor{q: q, store: store, params: params}
}

// Run executes the plan with the budget (0 = unlimited), discarding
// output rows (the OLAP experiments measure work, not result delivery).
func (e *Executor) Run(root *plan.Node, budget float64) (*Result, error) {
	return e.drive(root, budget)
}

// RunSpill executes the plan in spill-mode on the given join predicate:
// only the subtree rooted at that join runs, and its output is
// discarded (§3.1.2). The observed selectivity of the spilled join is
// exact iff the subtree completed within budget.
func (e *Executor) RunSpill(root *plan.Node, joinID int, budget float64) (*Result, error) {
	sub := plan.SpillSubtree(root, joinID)
	if sub == nil {
		return nil, fmt.Errorf("exec: plan does not apply join %d", joinID)
	}
	return e.drive(sub, budget)
}

func (e *Executor) drive(root *plan.Node, budget float64) (*Result, error) {
	meter := &Meter{Budget: budget}
	op, _, err := e.build(root, meter)
	if err != nil {
		return nil, err
	}
	res := &Result{JoinSel: make(map[int]float64)}
	err = func() error {
		if err := op.Open(); err != nil {
			return err
		}
		for {
			_, err := op.Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			res.Rows++
		}
	}()
	cerr := op.Close()
	res.Cost = meter.Used
	switch {
	case err == nil:
		res.Completed = true
	case errors.Is(err, ErrBudgetExceeded):
		res.Completed = false
	default:
		return nil, err
	}
	if cerr != nil {
		return nil, cerr
	}
	if res.Completed {
		collectObservations(op, res.JoinSel)
	}
	return res, nil
}

// operator is the iterator interface (§3.1.1's demand-driven model).
type operator interface {
	Open() error
	Next() (expr.Row, error)
	Close() error
}

// joinObserver is implemented by join operators that can report an
// exact selectivity observation after completion.
type joinObserver interface {
	observations(into map[int]float64)
}

func collectObservations(op operator, into map[int]float64) {
	if jo, ok := op.(joinObserver); ok {
		jo.observations(into)
	}
}

// schema maps qualified column names to row positions.
type schema struct {
	cols []string // "alias.column"
}

func (s *schema) indexOf(name string) int {
	for i, c := range s.cols {
		if c == name {
			return i
		}
	}
	return -1
}

func concatSchema(l, r *schema) *schema {
	out := &schema{cols: make([]string, 0, len(l.cols)+len(r.cols))}
	out.cols = append(out.cols, l.cols...)
	out.cols = append(out.cols, r.cols...)
	return out
}

// build compiles a plan node into an operator tree.
func (e *Executor) build(n *plan.Node, meter *Meter) (operator, *schema, error) {
	if n.IsScan() {
		return e.buildScan(n, meter)
	}
	return e.buildJoin(n, meter)
}

func (e *Executor) relSchema(rel int) *schema {
	r := &e.q.Relations[rel]
	tab := e.q.Cat.MustTable(r.Table)
	s := &schema{cols: make([]string, len(tab.Columns))}
	for i := range tab.Columns {
		s.cols[i] = r.Alias + "." + tab.Columns[i].Name
	}
	return s
}

// compileFilters binds the relation's filter predicates to positions.
func (e *Executor) compileFilters(rel int, skip int) []boundFilter {
	r := &e.q.Relations[rel]
	tab := e.q.Cat.MustTable(r.Table)
	var out []boundFilter
	for i, f := range r.Filters {
		if i == skip {
			continue
		}
		bf := boundFilter{
			col: tab.ColumnIndex(f.Column),
			op:  f.Op,
			val: expr.Int(f.Value),
		}
		if f.IsIn() {
			bf.in = make(map[int64]bool, len(f.Values))
			for _, v := range f.Values {
				bf.in[v] = true
			}
		}
		out = append(out, bf)
	}
	return out
}

type boundFilter struct {
	col int
	op  expr.CmpOp
	val expr.Value
	in  map[int64]bool // non-nil for IN-list predicates
}

func (f boundFilter) eval(row expr.Row) bool {
	v := row[f.col]
	if v.IsNull() {
		return false
	}
	if f.in != nil {
		return v.K == expr.KindInt && f.in[v.I]
	}
	c := expr.Compare(v, f.val)
	switch f.op {
	case expr.EQ:
		return c == 0
	case expr.NE:
		return c != 0
	case expr.LT:
		return c < 0
	case expr.LE:
		return c <= 0
	case expr.GT:
		return c > 0
	case expr.GE:
		return c >= 0
	default:
		return false
	}
}

func log2g(x float64) float64 { return math.Log2(x + 2) }

package exec

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/faultinject"
	"repro/internal/plan"
)

// rates arms exactly the given sites.
func rates(sites ...faultinject.Site) map[faultinject.Site]float64 {
	m := make(map[faultinject.Site]float64, len(sites))
	for _, s := range sites {
		m[s] = 1.0
	}
	return m
}

// TestMeterClampAcrossKillRetryCycles pins the Charge semantics the
// retry machinery depends on: each killed attempt bills exactly its
// budget (never more, even when charges keep arriving after the kill),
// and attempts accumulate — k kills plus a success bill k·B plus the
// final attempt's true cost.
func TestMeterClampAcrossKillRetryCycles(t *testing.T) {
	const budget = 10.0
	total := 0.0
	for cycle := 0; cycle < 3; cycle++ {
		m := &Meter{Budget: budget} // each retry attempt gets a fresh meter
		var killed bool
		for i := 0; i < 50; i++ {
			if err := m.Charge(0.7); err != nil {
				if err != ErrBudgetExceeded {
					t.Fatalf("cycle %d: err = %v", cycle, err)
				}
				killed = true
			}
		}
		if !killed {
			t.Fatalf("cycle %d: 35 units must exceed budget %v", cycle, budget)
		}
		if m.Used != budget {
			t.Fatalf("cycle %d: killed meter Used = %v, want exactly %v", cycle, m.Used, budget)
		}
		total += m.Used
	}
	// Final successful attempt under a fresh meter.
	m := &Meter{Budget: budget}
	if err := m.Charge(4); err != nil {
		t.Fatal(err)
	}
	total += m.Used
	if want := 3*budget + 4; total != want {
		t.Fatalf("accumulated cost across kill/retry cycles = %v, want %v", total, want)
	}
	// Drift never advances the budget clock.
	m.AddDrift(1e9)
	if err := m.Charge(1); err != nil {
		t.Fatalf("drift must not trigger a budget kill: %v", err)
	}
}

// A build failure (index scan without a usable predicate) must surface
// as a typed *OperatorError, not a panic, with the cost ledger intact.
func TestBuildFailurePropagation(t *testing.T) {
	f := newFixture(t)
	q := f.parse(t, `SELECT * FROM dim d`)
	e := New(q, f.store, cost.DefaultParams())
	res, err := e.Run(plan.NewScan(0, plan.IndexScan), 0)
	if err == nil {
		t.Fatal("index scan without filters must fail to build")
	}
	var oe *OperatorError
	if !errors.As(err, &oe) {
		t.Fatalf("build failure not typed: %T %v", err, err)
	}
	if oe.Op != "build" {
		t.Errorf("Op = %q, want build", oe.Op)
	}
	if res == nil || res.Completed {
		t.Error("failed build must return an incomplete result")
	}
}

// A transient fault on the very first Next must go through the retry
// policy; with the fault capped at one firing, the retry succeeds and
// the wasted attempt stays on the bill.
func TestTransientNextFaultRetriedAndBilled(t *testing.T) {
	f := newFixture(t)
	q := f.parse(t, joinSQL)
	p := twoRelPlans(q)["hash"]
	clean, err := New(q, f.store, cost.DefaultParams()).Run(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Pick a seed whose first scan check passes and second fires, so the
	// failed attempt has consumed real work before faulting.
	mkCfg := func(seed uint64) faultinject.Config {
		return faultinject.Config{
			Seed:       seed,
			Rates:      map[faultinject.Site]float64{faultinject.SiteScanTuple: 0.5},
			MaxPerSite: 1, // the fault clears after one firing
		}
	}
	seed := uint64(0)
	for ; seed < 5000; seed++ {
		in := faultinject.New(mkCfg(seed))
		if in.Check(faultinject.SiteScanTuple) == nil && in.Check(faultinject.SiteScanTuple) != nil {
			break
		}
	}
	if seed == 5000 {
		t.Fatal("no seed with a seq-1 scan fault found")
	}
	e := New(q, f.store, cost.DefaultParams()).WithFaults(faultinject.New(mkCfg(seed)))
	res, err := e.Run(p, 0)
	if err != nil {
		t.Fatalf("transient fault must be retried away: %v", err)
	}
	if !res.Completed || res.Rows != clean.Rows {
		t.Fatalf("retried run = (%v rows, completed=%v), want clean result %v rows",
			res.Rows, res.Completed, clean.Rows)
	}
	if res.Retries != 1 {
		t.Errorf("Retries = %d, want 1", res.Retries)
	}
	if res.WastedCost <= 0 {
		t.Error("the failed attempt's cost must be billed as wasted")
	}
	if res.Cost < clean.Cost+res.WastedCost-1e-9 {
		t.Errorf("Cost %v must include clean cost %v plus waste %v", res.Cost, clean.Cost, res.WastedCost)
	}
	found := false
	for _, d := range res.Degraded {
		if strings.HasPrefix(d, "retry#1") {
			found = true
		}
	}
	if !found {
		t.Errorf("retry not recorded in Degraded: %v", res.Degraded)
	}
}

// A persistent fault exhausts no retries: the error surfaces at once,
// typed, with the consumed cost reported.
func TestPersistentNextFaultSurfacesTyped(t *testing.T) {
	f := newFixture(t)
	q := f.parse(t, joinSQL)
	e := New(q, f.store, cost.DefaultParams()).WithFaults(faultinject.New(faultinject.Config{
		Seed:           7,
		Rates:          rates(faultinject.SiteScanTuple),
		PersistentFrac: 1,
	}))
	res, err := e.Run(twoRelPlans(q)["hash"], 0)
	if err == nil {
		t.Fatal("persistent fault must fail the run")
	}
	var oe *OperatorError
	if !errors.As(err, &oe) {
		t.Fatalf("fault not typed: %T %v", err, err)
	}
	if faultinject.IsTransient(err) {
		t.Error("persistent fault misclassified transient")
	}
	if res.Retries != 0 {
		t.Errorf("persistent fault retried %d times", res.Retries)
	}
	if res.Completed {
		t.Error("failed run must not report completion")
	}
}

// An Open-time index probe fault (the build-time probe passed, the
// operator's own probe failed) surfaces typed through the iterate path.
func TestIndexOpenFaultPropagates(t *testing.T) {
	f := newFixture(t)
	q := f.parse(t, `SELECT * FROM dim d WHERE d.d_attr >= 3`)
	// Find a seed whose schedule passes the build-time probe check (seq 0)
	// and fires at the operator's Open (seq 1).
	seed := uint64(0)
	for ; seed < 5000; seed++ {
		in := faultinject.New(faultinject.Config{
			Seed:  seed,
			Rates: map[faultinject.Site]float64{faultinject.SiteIndexProbe: 0.5},
		})
		if in.Check(faultinject.SiteIndexProbe) == nil && in.Check(faultinject.SiteIndexProbe) != nil {
			break
		}
	}
	if seed == 5000 {
		t.Fatal("no seed with a seq-1 probe fault found")
	}
	e := New(q, f.store, cost.DefaultParams()).WithFaults(faultinject.New(faultinject.Config{
		Seed:           seed,
		Rates:          map[faultinject.Site]float64{faultinject.SiteIndexProbe: 0.5},
		PersistentFrac: 1,
	}))
	_, err := e.Run(plan.NewScan(0, plan.IndexScan), 0)
	if err == nil {
		t.Fatal("Open-time probe fault must fail the run")
	}
	var oe *OperatorError
	if !errors.As(err, &oe) || oe.Op != "indexscan" {
		t.Fatalf("err = %v, want *OperatorError from indexscan", err)
	}
}

// A persistent index fault at build time downgrades to a sequential
// scan instead of failing — and the result matches the seq-scan run.
func TestPersistentIndexFaultDegradesToSeqScan(t *testing.T) {
	f := newFixture(t)
	q := f.parse(t, `SELECT * FROM dim d WHERE d.d_attr >= 3`)
	clean, err := New(q, f.store, cost.DefaultParams()).Run(plan.NewScan(0, plan.SeqScan), 0)
	if err != nil {
		t.Fatal(err)
	}
	e := New(q, f.store, cost.DefaultParams()).WithFaults(faultinject.New(faultinject.Config{
		Seed:           3,
		Rates:          rates(faultinject.SiteIndexProbe),
		PersistentFrac: 1,
	}))
	res, err := e.Run(plan.NewScan(0, plan.IndexScan), 0)
	if err != nil {
		t.Fatalf("degraded run must succeed: %v", err)
	}
	if res.Rows != clean.Rows {
		t.Errorf("degraded rows %d != seq scan rows %d", res.Rows, clean.Rows)
	}
	found := false
	for _, d := range res.Degraded {
		if strings.Contains(d, "indexscan→seqscan") {
			found = true
		}
	}
	if !found {
		t.Errorf("degradation not recorded: %v", res.Degraded)
	}
}

// An injected operator panic must be recovered into a typed
// *OperatorError with Panicked set — never escape to the caller.
func TestOperatorPanicRecovered(t *testing.T) {
	f := newFixture(t)
	q := f.parse(t, joinSQL)
	e := New(q, f.store, cost.DefaultParams()).WithFaults(faultinject.New(faultinject.Config{
		Seed:           11,
		Rates:          rates(faultinject.SiteOperatorPanic),
		PersistentFrac: 1,
	}))
	res, err := e.Run(twoRelPlans(q)["hash"], 0)
	if err == nil {
		t.Fatal("injected panic must fail the run")
	}
	var oe *OperatorError
	if !errors.As(err, &oe) {
		t.Fatalf("panic not typed: %T %v", err, err)
	}
	if !oe.Panicked {
		t.Error("Panicked flag not set on recovered panic")
	}
	if res.Completed {
		t.Error("panicked run must not report completion")
	}
}

// RunSpill with the spilled subtree faulting mid-stream: the error is
// typed and the spilled join reports no exact observation.
func TestRunSpillSubtreeFaultMidStream(t *testing.T) {
	f := newFixture(t)
	q := f.parse(t, `SELECT * FROM fact f, dim d, dim2 e
		WHERE f.f_dim = d.d_id AND f.f_dim2 = e.e_id`)
	inner := plan.NewJoin(plan.HashJoin, []int{0},
		plan.NewScan(q.RelIndex("f"), plan.SeqScan),
		plan.NewScan(q.RelIndex("d"), plan.SeqScan))
	root := plan.NewJoin(plan.HashJoin, []int{1},
		inner,
		plan.NewScan(q.RelIndex("e"), plan.SeqScan))
	e := New(q, f.store, cost.DefaultParams()).WithFaults(faultinject.New(faultinject.Config{
		Seed:           5,
		Rates:          rates(faultinject.SiteScanTuple),
		PersistentFrac: 1,
	}))
	res, err := e.RunSpill(root, 0, 0)
	if err == nil {
		t.Fatal("mid-stream fault must fail the spill run")
	}
	var oe *OperatorError
	if !errors.As(err, &oe) {
		t.Fatalf("spill fault not typed: %T %v", err, err)
	}
	if len(res.JoinSel) != 0 {
		t.Error("failed spill must not report exact selectivities")
	}
}

// A persistently dropped spill observation keeps the completed result
// but withholds the selectivity sample (the lost-observation rung).
func TestSpillObservationDropped(t *testing.T) {
	f := newFixture(t)
	q := f.parse(t, `SELECT * FROM fact f, dim d, dim2 e
		WHERE f.f_dim = d.d_id AND f.f_dim2 = e.e_id`)
	inner := plan.NewJoin(plan.HashJoin, []int{0},
		plan.NewScan(q.RelIndex("f"), plan.SeqScan),
		plan.NewScan(q.RelIndex("d"), plan.SeqScan))
	root := plan.NewJoin(plan.HashJoin, []int{1},
		inner,
		plan.NewScan(q.RelIndex("e"), plan.SeqScan))
	e := New(q, f.store, cost.DefaultParams()).WithFaults(faultinject.New(faultinject.Config{
		Seed:           5,
		Rates:          rates(faultinject.SiteSpillObs),
		PersistentFrac: 1,
	}))
	res, err := e.RunSpill(root, 0, 0)
	if err != nil {
		t.Fatalf("dropped observation must not fail the run: %v", err)
	}
	if !res.Completed {
		t.Fatal("run must still complete")
	}
	if len(res.JoinSel) != 0 {
		t.Errorf("dropped observation still reported: %v", res.JoinSel)
	}
	found := false
	for _, d := range res.Degraded {
		if strings.Contains(d, "spill observation dropped") {
			found = true
		}
	}
	if !found {
		t.Errorf("drop not recorded in Degraded: %v", res.Degraded)
	}
}

// Latency drift inflates the bill but never the kill decision: a budget
// that admits the modeled work still completes under drift, and the
// drift shows up in Cost and Drift.
func TestDriftBilledButNeverKills(t *testing.T) {
	f := newFixture(t)
	q := f.parse(t, joinSQL)
	p := twoRelPlans(q)["hash"]
	clean, err := New(q, f.store, cost.DefaultParams()).Run(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := New(q, f.store, cost.DefaultParams()).WithFaults(faultinject.New(faultinject.Config{
		Seed:  13,
		Rates: rates(faultinject.SiteLatency),
	}))
	res, err := e.Run(p, clean.Cost*1.001) // budget with no slack for drift
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("drift must not trigger a budget kill")
	}
	if res.Drift <= 0 {
		t.Error("armed latency site produced no drift")
	}
	if math.Abs(res.Cost-(clean.Cost+res.Drift)) > 1e-9 {
		t.Errorf("Cost %v != modeled %v + drift %v", res.Cost, clean.Cost, res.Drift)
	}
}

// Context cancellation tears the execution down mid-stream with a typed
// error wrapping context.Canceled.
func TestRunCtxCancellation(t *testing.T) {
	f := newFixture(t)
	q := f.parse(t, joinSQL)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := New(q, f.store, cost.DefaultParams())
	res, err := e.RunCtx(ctx, twoRelPlans(q)["hash"], 0)
	if err == nil {
		t.Fatal("canceled context must fail the run")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	var oe *OperatorError
	if !errors.As(err, &oe) {
		t.Fatalf("cancellation not typed: %T %v", err, err)
	}
	if res.Completed {
		t.Error("canceled run must not report completion")
	}
}

package exec

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/cost"
	"repro/internal/faultinject"
	"repro/internal/plan"
	"repro/internal/query"
)

// The differential suite pins the tentpole guarantee of the vectorized
// engine: batch-at-a-time execution is observably identical to the
// tuple-at-a-time reference — bit-for-bit on Cost, WastedCost, Drift,
// Completed, Retries, Degraded, and JoinSel — across budget kills,
// retries, and chaos schedules. Result.Rows is additionally identical
// whenever the run completed, faults were armed (lockstep mode), or the
// batch capacity is 1; an unarmed budget kill at capacity > 1 may stop
// at a different row count, which no consumer observes (discovery reads
// only Cost/Completed/JoinSel).

// diffCase is one (query, plan) pair the matrices run.
type diffCase struct {
	name string
	q    *query.Query
	p    *plan.Node
}

func diffCases(t *testing.T, f *fixture) []diffCase {
	t.Helper()
	var cases []diffCase
	qJoin := f.parse(t, joinSQL)
	for name, p := range twoRelPlans(qJoin) {
		cases = append(cases, diffCase{name: "2rel/" + name, q: qJoin, p: p})
	}
	qFilt := f.parse(t, `SELECT * FROM fact f, dim d
		WHERE f.f_dim = d.d_id AND f.f_val <= 40 AND d.d_attr <= 2`)
	for name, p := range twoRelPlans(qFilt) {
		cases = append(cases, diffCase{name: "2rel-filtered/" + name, q: qFilt, p: p})
	}
	qScan := f.parse(t, `SELECT * FROM fact ff WHERE ff.f_val <= 50`)
	cases = append(cases,
		diffCase{name: "seqscan", q: qScan, p: plan.NewScan(0, plan.SeqScan)},
		diffCase{name: "indexscan", q: qScan, p: plan.NewScan(0, plan.IndexScan)},
	)
	qIn := f.parse(t, `SELECT * FROM dim d WHERE d.d_attr IN (1, 3)`)
	cases = append(cases, diffCase{name: "in-filter", q: qIn, p: plan.NewScan(0, plan.SeqScan)})
	q3 := f.parse(t, `SELECT * FROM fact ff, dim d, dim2 e
		WHERE ff.f_dim = d.d_id AND ff.f_dim2 = e.e_id`)
	inner := plan.NewJoin(plan.HashJoin, []int{0},
		plan.NewScan(q3.RelIndex("ff"), plan.SeqScan),
		plan.NewScan(q3.RelIndex("d"), plan.SeqScan))
	cases = append(cases,
		diffCase{name: "3rel/hash-hash", q: q3, p: plan.NewJoin(plan.HashJoin, []int{1}, inner,
			plan.NewScan(q3.RelIndex("e"), plan.SeqScan))},
		diffCase{name: "3rel/hash-inl", q: q3, p: plan.NewJoin(plan.IndexNLJoin, []int{1}, inner,
			plan.NewScan(q3.RelIndex("e"), plan.SeqScan))},
		diffCase{name: "3rel/hash-merge", q: q3, p: plan.NewJoin(plan.MergeJoin, []int{1}, inner,
			plan.NewScan(q3.RelIndex("e"), plan.SeqScan))},
	)
	// Double predicate between the same pair (first = physical key,
	// second = residual), mirroring TestJoinWithResidualPredicate.
	qRes := &query.Query{
		Name: "resid",
		Cat:  f.cat,
		Relations: []query.Relation{
			{Table: "fact", Alias: "ff"},
			{Table: "dim", Alias: "d"},
		},
		Joins: []query.Join{
			{ID: 0, LeftRel: 0, RightRel: 1, LeftCol: "f_dim", RightCol: "d_id"},
			{ID: 1, LeftRel: 0, RightRel: 1, LeftCol: "f_val", RightCol: "d_attr"},
		},
	}
	for name, mk := range map[string]plan.JoinMethod{
		"hash": plan.HashJoin, "merge": plan.MergeJoin, "nl": plan.NLJoin, "inl": plan.IndexNLJoin,
	} {
		cases = append(cases, diffCase{name: "residual/" + name, q: qRes,
			p: plan.NewJoin(mk, []int{0, 1},
				plan.NewScan(0, plan.SeqScan),
				plan.NewScan(1, plan.SeqScan))})
	}
	return cases
}

// runEngines executes the case on both engines with independent (but
// identically configured) injectors and compares.
type engineRun struct {
	res *Result
	err error
	log []faultinject.Fault
}

func runEngine(f *fixture, c diffCase, vectorized bool, batch int, budget float64,
	mkFaults func() *faultinject.Injector, spillJoin int) engineRun {
	e := New(c.q, f.store, cost.DefaultParams()).Vectorized(vectorized)
	if batch > 0 {
		e.WithBatchSize(batch)
	}
	var in *faultinject.Injector
	if mkFaults != nil {
		in = mkFaults()
		e.WithFaults(in)
	}
	var res *Result
	var err error
	if spillJoin >= 0 {
		res, err = e.RunSpill(c.p, spillJoin, budget)
	} else {
		res, err = e.Run(c.p, budget)
	}
	return engineRun{res: res, err: err, log: in.Fired()}
}

// compareRuns asserts the differential contract between a tuple-engine
// run and a vectorized run. compareRows additionally pins Result.Rows.
func compareRuns(t *testing.T, tag string, tup, vec engineRun, compareRows bool) {
	t.Helper()
	if (tup.err == nil) != (vec.err == nil) {
		t.Fatalf("%s: error mismatch: tuple=%v vector=%v", tag, tup.err, vec.err)
	}
	if tup.err != nil && tup.err.Error() != vec.err.Error() {
		t.Fatalf("%s: error text mismatch:\n tuple:  %v\n vector: %v", tag, tup.err, vec.err)
	}
	tr, vr := tup.res, vec.res
	if tr == nil || vr == nil {
		if tr != vr {
			t.Fatalf("%s: result presence mismatch: tuple=%v vector=%v", tag, tr, vr)
		}
		return
	}
	if tr.Cost != vr.Cost {
		t.Fatalf("%s: Cost mismatch: tuple=%.17g vector=%.17g (Δ=%g)",
			tag, tr.Cost, vr.Cost, math.Abs(tr.Cost-vr.Cost))
	}
	if tr.WastedCost != vr.WastedCost {
		t.Fatalf("%s: WastedCost mismatch: tuple=%.17g vector=%.17g", tag, tr.WastedCost, vr.WastedCost)
	}
	if tr.Drift != vr.Drift {
		t.Fatalf("%s: Drift mismatch: tuple=%.17g vector=%.17g", tag, tr.Drift, vr.Drift)
	}
	if tr.Completed != vr.Completed {
		t.Fatalf("%s: Completed mismatch: tuple=%v vector=%v", tag, tr.Completed, vr.Completed)
	}
	if tr.Retries != vr.Retries {
		t.Fatalf("%s: Retries mismatch: tuple=%d vector=%d", tag, tr.Retries, vr.Retries)
	}
	if !reflect.DeepEqual(tr.Degraded, vr.Degraded) {
		t.Fatalf("%s: Degraded mismatch:\n tuple:  %v\n vector: %v", tag, tr.Degraded, vr.Degraded)
	}
	if !reflect.DeepEqual(tr.JoinSel, vr.JoinSel) {
		t.Fatalf("%s: JoinSel mismatch:\n tuple:  %v\n vector: %v", tag, tr.JoinSel, vr.JoinSel)
	}
	if compareRows && tr.Rows != vr.Rows {
		t.Fatalf("%s: Rows mismatch: tuple=%d vector=%d", tag, tr.Rows, vr.Rows)
	}
	if !reflect.DeepEqual(tup.log, vec.log) {
		t.Fatalf("%s: fault schedule mismatch:\n tuple:  %v\n vector: %v", tag, tup.log, vec.log)
	}
}

// TestDifferentialBudgetSweep pins cost metering across the full budget
// ladder for every plan shape: the kill that clamps Used to Budget must
// land on the same billed total in both engines at every fraction.
func TestDifferentialBudgetSweep(t *testing.T) {
	f := newFixture(t)
	fracs := []float64{0, 0.01, 0.05, 0.25, 0.5, 0.75, 0.99, 1.5}
	for _, c := range diffCases(t, f) {
		full := runEngine(f, c, false, 0, 0, nil, -1)
		if full.err != nil {
			t.Fatalf("%s: unbudgeted tuple run failed: %v", c.name, full.err)
		}
		for _, frac := range fracs {
			budget := frac * full.res.Cost
			tag := fmt.Sprintf("%s/budget=%.2f", c.name, frac)
			tup := runEngine(f, c, false, 0, budget, nil, -1)
			vec := runEngine(f, c, true, 0, budget, nil, -1)
			// Rows is pinned only when the run completes (unarmed kill at
			// capacity > 1 may stop on a different row).
			compareRuns(t, tag, tup, vec, tup.res != nil && tup.res.Completed)
		}
	}
}

// TestDifferentialBatchSizes sweeps batch capacities; at capacity 1 the
// engines must agree on everything including Rows at every kill point.
func TestDifferentialBatchSizes(t *testing.T) {
	f := newFixture(t)
	for _, c := range diffCases(t, f) {
		full := runEngine(f, c, false, 0, 0, nil, -1)
		if full.err != nil {
			t.Fatalf("%s: unbudgeted tuple run failed: %v", c.name, full.err)
		}
		for _, batch := range []int{1, 3, 7, 64, 1000} {
			for _, frac := range []float64{0, 0.3, 0.8} {
				budget := frac * full.res.Cost
				tag := fmt.Sprintf("%s/batch=%d/budget=%.1f", c.name, batch, frac)
				tup := runEngine(f, c, false, 0, budget, nil, -1)
				vec := runEngine(f, c, true, batch, budget, nil, -1)
				compareRows := batch == 1 || (tup.res != nil && tup.res.Completed)
				compareRuns(t, tag, tup, vec, compareRows)
			}
		}
	}
}

// TestDifferentialSpill pins spill-mode runs: subtree extraction,
// observed spill selectivities, and budget kills inside the subtree.
func TestDifferentialSpill(t *testing.T) {
	f := newFixture(t)
	q3 := f.parse(t, `SELECT * FROM fact ff, dim d, dim2 e
		WHERE ff.f_dim = d.d_id AND ff.f_dim2 = e.e_id`)
	inner := plan.NewJoin(plan.HashJoin, []int{0},
		plan.NewScan(q3.RelIndex("ff"), plan.SeqScan),
		plan.NewScan(q3.RelIndex("d"), plan.SeqScan))
	root := plan.NewJoin(plan.MergeJoin, []int{1}, inner,
		plan.NewScan(q3.RelIndex("e"), plan.SeqScan))
	c := diffCase{name: "3rel-spill", q: q3, p: root}
	for _, joinID := range []int{0, 1} {
		full := runEngine(f, c, false, 0, 0, nil, joinID)
		if full.err != nil {
			t.Fatalf("join %d: unbudgeted spill failed: %v", joinID, full.err)
		}
		if len(full.res.JoinSel) == 0 {
			t.Fatalf("join %d: spill run observed no selectivity", joinID)
		}
		for _, frac := range []float64{0, 0.1, 0.5, 0.9} {
			budget := frac * full.res.Cost
			tag := fmt.Sprintf("spill join=%d budget=%.1f", joinID, frac)
			tup := runEngine(f, c, false, 0, budget, nil, joinID)
			vec := runEngine(f, c, true, 0, budget, nil, joinID)
			compareRuns(t, tag, tup, vec, tup.res != nil && tup.res.Completed)
		}
	}
}

// TestDifferentialChaos replays seed-driven fault schedules through
// both engines. With faults armed the vectorized engine runs in
// lockstep, so everything — fault sequence numbers, kill tuples, retry
// ladders, degradations, drift, and Rows — must replay bit for bit.
func TestDifferentialChaos(t *testing.T) {
	f := newFixture(t)
	execRates := map[faultinject.Site]float64{
		faultinject.SiteScanTuple:     0.05,
		faultinject.SiteIndexProbe:    0.10,
		faultinject.SiteOperatorPanic: 0.02,
		faultinject.SiteSpillObs:      0.20,
		faultinject.SiteLatency:       0.10,
	}
	cases := diffCases(t, f)
	for seed := uint64(1); seed <= 12; seed++ {
		for _, pf := range []float64{0, 0.5, 1} {
			for _, mps := range []uint64{0, 1} {
				mk := func() *faultinject.Injector {
					return faultinject.New(faultinject.Config{
						Seed: seed, Rates: execRates, PersistentFrac: pf, MaxPerSite: mps,
					})
				}
				for _, c := range cases {
					for _, budgetFrac := range []float64{0, 0.5} {
						budget := 0.0
						if budgetFrac > 0 {
							base := runEngine(f, c, false, 0, 0, nil, -1)
							if base.err != nil {
								t.Fatalf("%s: clean run failed: %v", c.name, base.err)
							}
							budget = budgetFrac * base.res.Cost
						}
						tag := fmt.Sprintf("%s/seed=%d pf=%.1f mps=%d budget=%.1f",
							c.name, seed, pf, mps, budgetFrac)
						tup := runEngine(f, c, false, 0, budget, mk, -1)
						vec := runEngine(f, c, true, 0, budget, mk, -1)
						compareRuns(t, tag, tup, vec, true)
					}
				}
			}
		}
	}
}

// TestDifferentialChaosSpill extends the chaos matrix to spill-mode
// runs, covering the spill-observation drop ladder and retries.
func TestDifferentialChaosSpill(t *testing.T) {
	f := newFixture(t)
	q3 := f.parse(t, `SELECT * FROM fact ff, dim d, dim2 e
		WHERE ff.f_dim = d.d_id AND ff.f_dim2 = e.e_id`)
	inner := plan.NewJoin(plan.HashJoin, []int{0},
		plan.NewScan(q3.RelIndex("ff"), plan.SeqScan),
		plan.NewScan(q3.RelIndex("d"), plan.SeqScan))
	root := plan.NewJoin(plan.HashJoin, []int{1}, inner,
		plan.NewScan(q3.RelIndex("e"), plan.SeqScan))
	c := diffCase{name: "3rel-chaos-spill", q: q3, p: root}
	rates := map[faultinject.Site]float64{
		faultinject.SiteScanTuple: 0.05,
		faultinject.SiteSpillObs:  0.5,
		faultinject.SiteLatency:   0.10,
	}
	for seed := uint64(1); seed <= 15; seed++ {
		for _, pf := range []float64{0, 1} {
			mk := func() *faultinject.Injector {
				return faultinject.New(faultinject.Config{Seed: seed, Rates: rates, PersistentFrac: pf})
			}
			for _, joinID := range []int{0, 1} {
				tag := fmt.Sprintf("seed=%d pf=%.0f join=%d", seed, pf, joinID)
				tup := runEngine(f, c, false, 0, 0, mk, joinID)
				vec := runEngine(f, c, true, 0, 0, mk, joinID)
				compareRuns(t, tag, tup, vec, true)
			}
		}
	}
}

// TestMeterChargeNMatchesUnitCharges pins the class-count meter's
// re-walk rule: billing a batch with one ChargeN leaves exactly the
// same meter state — Used, per-class counts, and kill index — as
// billing the same tuples one at a time, for any interleaving of
// classes and one-shot charges.
func TestMeterChargeNMatchesUnitCharges(t *testing.T) {
	consts := []float64{1.2, 0.4, 0.1, 2.0}
	type step struct {
		cls int
		n   int64
	}
	script := []step{{0, 7}, {1, 130}, {-1, 3}, {2, 1000}, {0, 64}, {3, 5}, {2, 999}, {1, 1}}
	for _, budget := range []float64{0, 50, 137.77, 500, 1e6} {
		chunked := &Meter{Budget: budget}
		unit := &Meter{Budget: budget}
		var chunkedCls, unitCls []int
		for _, c := range consts {
			chunkedCls = append(chunkedCls, chunked.Class(c))
			unitCls = append(unitCls, unit.Class(c))
		}
		var cErr, uErr error
		var cKill, uKill int64
		for _, s := range script {
			if s.cls < 0 {
				cErr = chunked.Charge(float64(s.n) * 0.3)
				uErr = unit.Charge(float64(s.n) * 0.3)
			} else {
				var k int64
				k, cErr = chunked.ChargeN(chunkedCls[s.cls], s.n)
				if cErr != nil {
					cKill = k
				}
				for i := int64(0); i < s.n && uErr == nil; i++ {
					var ku int64
					ku, uErr = unit.ChargeN(unitCls[s.cls], 1)
					if uErr != nil {
						uKill = i + ku
					}
				}
			}
			if (cErr == nil) != (uErr == nil) {
				t.Fatalf("budget=%g: kill disagreement at step %+v: chunked=%v unit=%v", budget, s, cErr, uErr)
			}
			if cErr != nil {
				break
			}
		}
		if chunked.Used != unit.Used {
			t.Fatalf("budget=%g: Used mismatch: chunked=%.17g unit=%.17g", budget, chunked.Used, unit.Used)
		}
		if cErr != nil && cKill != uKill {
			t.Fatalf("budget=%g: kill index mismatch: chunked=%d unit=%d", budget, cKill, uKill)
		}
		for i := range consts {
			if chunked.classes[i].n != unit.classes[i].n {
				t.Fatalf("budget=%g: class %d count mismatch: chunked=%d unit=%d",
					budget, i, chunked.classes[i].n, unit.classes[i].n)
			}
		}
	}
}

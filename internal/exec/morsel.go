// Morsel-driven intra-query parallelism for the vectorized engine.
//
// A parallel run splits one budgeted execution across a bounded worker
// pool inside a single driveVec call. The plan's blocking work (hash
// builds, inner materializations, index descents at Open) runs first,
// sequentially, on the main meter — exactly as a sequential run would.
// Then the root pipeline — the chain of joins descending left inputs to
// one sequential scan — is cloned per worker: clones share the built
// hash tables and materialized inners (read-only after Open) but own
// their probe state, output arena, and meter. Workers claim fixed-size
// scan windows ("morsels") from a shared atomic cursor until the scan
// is exhausted.
//
// Metering stays exact because the Meter's total is a pure function of
// per-class tuple counts (see Meter): integer counts merge
// associatively across workers, so the folded total of a completed
// parallel run is bit-identical to the sequential run at any worker
// count, and a budget kill bills exactly the budget (the sequential
// clamp) no matter how the crossing interleaved.
//
// Armed fault injectors never reach this path: driveVec forces
// sequential lockstep (capacity 1) so chaos schedules replay bit for
// bit.
package exec

import (
	"context"
	"errors"
	"io"
	"sync"
	"sync/atomic"
)

// meterShared coordinates one budget across per-worker meters. Workers
// publish class counts into per-worker atomic lanes; the budget check
// recomputes the merged total (sequential-phase counts + all lanes) in
// class-registration order, so the decision is over exactly the number
// sequential execution would have.
//
// Kill protocol: the first charge that observes the merged total past
// the budget serializes on mu and binary-searches its own batch down to
// the smallest count still past the budget (lo = 1 — the killing tuple
// itself stays billed). Racing losers keep their full batch billed and
// never roll back, preserving the invariant that a set killed flag
// implies the folded total exceeds the budget. The authoritative
// decision is re-taken at fold via settle(), which clamps a killed
// run's Used to exactly Budget.
type meterShared struct {
	root   *Meter
	budget float64
	lanes  [][]atomic.Int64 // [worker][class]
	mu     sync.Mutex
	killed atomic.Bool
}

// fork freezes the meter's sequential-phase state and creates the
// shared ledger for n workers. The root meter must not be charged again
// until fold.
func (m *Meter) fork(n int) *meterShared {
	s := &meterShared{root: m, budget: m.Budget, lanes: make([][]atomic.Int64, n)}
	for w := range s.lanes {
		s.lanes[w] = make([]atomic.Int64, len(m.classes))
	}
	return s
}

// worker returns the per-worker meter for lane w. All its ChargeN calls
// route through meterShared.charge; one-shot Charge panics (blocking
// work belongs to the sequential phase).
func (s *meterShared) worker(w int) *Meter {
	return &Meter{Budget: s.budget, shared: s, wid: w}
}

// mergedSum recomputes the merged metered total in class-registration
// order: frozen sequential counts plus every worker lane. Lanes only
// grow, so any observed total is a lower bound on the folded total.
func (s *meterShared) mergedSum() float64 {
	u := s.root.oneShot
	for h := range s.root.classes {
		cl := &s.root.classes[h]
		n := cl.n
		for w := range s.lanes {
			n += s.lanes[w][h].Load()
		}
		u += cl.c * float64(n)
	}
	return u
}

// charge is the worker-side ChargeN: publish the batch, check the
// merged budget, and on the crossing run the kill protocol.
func (s *meterShared) charge(m *Meter, h int, n int64) (int64, error) {
	if s.killed.Load() {
		return 0, ErrBudgetExceeded
	}
	lane := &s.lanes[m.wid][h]
	lane.Add(n)
	if s.budget <= 0 || s.mergedSum() <= s.budget {
		return n, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.killed.Load() {
		// Lost the kill race: keep the whole batch billed. Rolling back
		// against the winner's already-searched total could drop the
		// merged sum back under the budget, un-justifying the kill.
		return n, ErrBudgetExceeded
	}
	// Winner: narrow this batch to its exact crossing count. Concurrent
	// lanes can still grow during the search, which only tightens the
	// bound — the invariant "total at base+hi exceeds budget" survives
	// because other lanes are monotone.
	base := lane.Load() - n
	lo, hi := int64(1), n
	for lo < hi {
		mid := lo + (hi-lo)/2
		lane.Store(base + mid)
		if s.mergedSum() > s.budget {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	lane.Store(base + lo)
	s.killed.Store(true)
	return lo, ErrBudgetExceeded
}

// fold merges every worker lane into the root meter and settles it.
// After fold the root meter's Used is authoritative: bit-identical to
// sequential for completed runs, clamped to exactly Budget for kills.
func (s *meterShared) fold() error {
	m := s.root
	for h := range m.classes {
		var n int64
		for w := range s.lanes {
			n += s.lanes[w][h].Load()
		}
		m.classes[h].n += n
	}
	err := m.settle()
	if err == nil && s.killed.Load() {
		// Defensive: a worker observed a crossing that the folded total
		// no longer shows. The protocol forbids this (losers never roll
		// back); never report completion once a kill was decided.
		m.Used = m.Budget
		err = ErrBudgetExceeded
	}
	return err
}

// morselScanOf walks the root pipeline — join left inputs — down to its
// driving operator and returns it when the plan is parallel-eligible:
// the driver must be a sequential scan (the morsel source) and every
// operator on the chain must charge batching-independent per-row
// counts. Merge join disqualifies the chain (its right-cursor skip
// charges depend on the left-row arrival order, which partitioning
// changes); an index-scan driver is not morselized (its ordinal list is
// not a contiguous window source).
func morselScanOf(op batchOperator) *vecSeqScan {
	for {
		switch o := op.(type) {
		case *vecSeqScan:
			return o
		case *vecHashJoin:
			op = o.left
		case *vecNLJoin:
			op = o.left
		case *vecIndexNLJoin:
			op = o.left
		default:
			return nil
		}
	}
}

// cloneChain clones the root pipeline for one worker: probe state and
// output arenas are fresh, the blocking structures built at Open (hash
// tables, materialized inners) and all read-only compilation products
// (join cols, filters, kernels) are shared, and every meter reference
// points at the worker's lane. A clone's right child is nil — Close
// knows not to double-close or recycle shared state.
func cloneChain(op batchOperator, wm *Meter) batchOperator {
	switch o := op.(type) {
	case *vecSeqScan:
		c := *o
		c.meter = wm
		c.pos = 0
		c.out = rowBatch{}
		c.sel = nil
		if len(c.filters) > 0 {
			c.sel = o.ex.pool.getSel(o.cap)
		}
		return &c
	case *vecHashJoin:
		c := &vecHashJoin{
			vecJoinBase: vecJoinBase{e: o.e, meter: wm, jc: o.jc, left: cloneChain(o.left, wm)},
			clsBuild:    o.clsBuild,
			clsProbe:    o.clsProbe,
			clsOut:      o.clsOut,
			out:         o.e.pool.getOut(o.out.width, o.out.cap),
			table:       o.table,
			me:          -1,
		}
		c.out.discard = o.out.discard
		return c
	case *vecNLJoin:
		c := &vecNLJoin{
			vecJoinBase: vecJoinBase{e: o.e, meter: wm, jc: o.jc, left: cloneChain(o.left, wm)},
			clsMat:      o.clsMat,
			clsPair:     o.clsPair,
			clsOut:      o.clsOut,
			out:         o.e.pool.getOut(o.out.width, o.out.cap),
			inner:       o.inner,
		}
		c.out.discard = o.out.discard
		return c
	case *vecIndexNLJoin:
		c := &vecIndexNLJoin{
			vecJoinBase: vecJoinBase{e: o.e, meter: wm, jc: o.jc, left: cloneChain(o.left, wm)},
			rel:         o.rel,
			filters:     o.filters,
			clsDescend:  o.clsDescend,
			clsFetch:    o.clsFetch,
			clsOut:      o.clsOut,
			out:         o.e.pool.getOut(o.out.width, o.out.cap),
		}
		c.out.discard = o.out.discard
		return c
	default:
		panic("exec: cloneChain on non-pipeline operator")
	}
}

// chainBase returns the pipeline-chain join base of an operator, or nil
// for the driving scan.
func chainBase(op batchOperator) *vecJoinBase {
	switch o := op.(type) {
	case *vecHashJoin:
		return &o.vecJoinBase
	case *vecNLJoin:
		return &o.vecJoinBase
	case *vecIndexNLJoin:
		return &o.vecJoinBase
	default:
		return nil
	}
}

// mergeWorkerObs folds a worker clone's probe-side observations into
// the original chain. RightRows was observed once during the sequential
// build phase and stays on the original.
func mergeWorkerObs(orig, clone batchOperator) {
	for {
		ob, cb := chainBase(orig), chainBase(clone)
		if ob == nil || cb == nil {
			return
		}
		ob.obs.LeftRows += cb.obs.LeftRows
		ob.obs.OutRows += cb.obs.OutRows
		orig, clone = ob.left, cb.left
	}
}

// markExactChain marks every chain join's selectivity observation exact
// after a completed parallel run: the morsel cursor ran the scan dry,
// so every chain join fully consumed both inputs — the same condition
// the sequential engine detects via left EOF.
func markExactChain(op batchOperator) {
	for b := chainBase(op); b != nil; b = chainBase(op) {
		b.exact = true
		op = b.left
	}
}

// driveMorsels runs one parallel execution attempt: sequential Open
// (blocking phase) on the main meter, then the morsel loop, then the
// shared epilogue — the exact frame driveVec's sequential path uses.
func (e *Executor) driveMorsels(ctx context.Context, op batchOperator, scan *vecSeqScan, meter *Meter, res *Result, spill bool) (*Result, error) {
	err := op.Open()
	if err == nil {
		err = e.runMorsels(ctx, op, scan, meter, res)
	}
	return e.epilogue(res, meter, op, err, op.Close(), spill)
}

// runMorsels executes the opened plan across the worker pool and folds
// workers' meters, observations, and row counts back into the main run
// state.
func (e *Executor) runMorsels(ctx context.Context, op batchOperator, scan *vecSeqScan, meter *Meter, res *Result) error {
	nw := e.workers
	if morsels := (scan.rel.NumRows() + e.batchSize - 1) / e.batchSize; nw > morsels {
		nw = morsels // never spin up workers with nothing to claim
	}
	if nw < 1 {
		nw = 1
	}
	shared := meter.fork(nw)
	scan.cursor = &atomic.Int64{}
	defer func() { scan.cursor = nil }()

	clones := make([]batchOperator, nw)
	errs := make([]error, nw)
	panics := make([]any, nw)
	var rows atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		clones[w] = cloneChain(op, shared.worker(w))
		wg.Add(1)
		go func(w int, root batchOperator) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[w] = r
				}
			}()
			defer root.Close() // recycle the clone's pooled buffers
			steps := 0
			for {
				if steps&cancelCheckMask == 0 {
					if cerr := ctx.Err(); cerr != nil {
						errs[w] = opError("cancel", cerr)
						return
					}
				}
				steps++
				b, err := root.NextBatch()
				if err == io.EOF {
					return
				}
				if err != nil {
					errs[w] = err
					return
				}
				rows.Add(int64(b.n()))
			}
		}(w, clones[w])
	}
	wg.Wait()
	res.Rows += rows.Load()
	foldErr := shared.fold()
	for _, p := range panics {
		if p != nil {
			// Re-panic on the drive goroutine: driveVec's recover converts
			// it to a typed operator error, exactly like sequential panics.
			panic(p)
		}
	}
	for _, werr := range errs {
		if werr != nil && !errors.Is(werr, ErrBudgetExceeded) {
			return werr
		}
	}
	if foldErr != nil {
		return foldErr
	}
	for w := range clones {
		mergeWorkerObs(op, clones[w])
	}
	markExactChain(op)
	return nil
}

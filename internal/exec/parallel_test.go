package exec

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/cost"
	"repro/internal/faultinject"
	"repro/internal/plan"
)

// The parallel differential suite pins the morsel scheduler's contract:
// a run at any worker count is observably identical to the sequential
// vectorized run — bit-for-bit on Cost, WastedCost, Completed,
// Degraded, and JoinSel — and a budget kill bills exactly the budget at
// every worker count. Rows is additionally identical for completed runs
// (an unarmed kill may stop workers at different morsels, which no
// consumer observes). Armed faults force sequential lockstep, so chaos
// runs must match bit-for-bit including Rows regardless of the
// configured worker count.

// runWorkers is runEngine for the vectorized engine at a worker count.
func runWorkers(f *fixture, c diffCase, workers, batch int, budget float64,
	mkFaults func() *faultinject.Injector, spillJoin int) engineRun {
	e := New(c.q, f.store, cost.DefaultParams()).WithWorkers(workers)
	if batch > 0 {
		e.WithBatchSize(batch)
	}
	var in *faultinject.Injector
	if mkFaults != nil {
		in = mkFaults()
		e.WithFaults(in)
	}
	var res *Result
	var err error
	if spillJoin >= 0 {
		res, err = e.RunSpill(c.p, spillJoin, budget)
	} else {
		res, err = e.Run(c.p, budget)
	}
	return engineRun{res: res, err: err, log: in.Fired()}
}

// TestDifferentialWorkerCounts sweeps the worker axis against the
// budget ladder for every plan shape: each worker count must reproduce
// the sequential run's observables exactly, and every kill must clamp
// the billed cost to exactly the budget.
func TestDifferentialWorkerCounts(t *testing.T) {
	f := newFixture(t)
	for _, c := range diffCases(t, f) {
		full := runWorkers(f, c, 1, 0, 0, nil, -1)
		if full.err != nil {
			t.Fatalf("%s: unbudgeted sequential run failed: %v", c.name, full.err)
		}
		for _, workers := range []int{2, 8} {
			for _, frac := range []float64{0, 0.05, 0.3, 0.8, 1.5} {
				budget := frac * full.res.Cost
				tag := fmt.Sprintf("%s/workers=%d/budget=%.2f", c.name, workers, frac)
				seq := runWorkers(f, c, 1, 0, budget, nil, -1)
				par := runWorkers(f, c, workers, 0, budget, nil, -1)
				compareRuns(t, tag, seq, par, seq.res != nil && seq.res.Completed)
				if par.res != nil && !par.res.Completed && budget > 0 && par.res.Cost != budget {
					t.Fatalf("%s: killed run billed %.17g, want exactly budget %.17g",
						tag, par.res.Cost, budget)
				}
			}
		}
	}
}

// TestDifferentialWorkerSpill runs spill-mode subtree executions across
// worker counts: the spilled subtree's observed selectivity and billing
// must match sequential exactly.
func TestDifferentialWorkerSpill(t *testing.T) {
	f := newFixture(t)
	q3 := f.parse(t, `SELECT * FROM fact ff, dim d, dim2 e
		WHERE ff.f_dim = d.d_id AND ff.f_dim2 = e.e_id`)
	inner := plan.NewJoin(plan.HashJoin, []int{0},
		plan.NewScan(q3.RelIndex("ff"), plan.SeqScan),
		plan.NewScan(q3.RelIndex("d"), plan.SeqScan))
	root := plan.NewJoin(plan.HashJoin, []int{1}, inner,
		plan.NewScan(q3.RelIndex("e"), plan.SeqScan))
	c := diffCase{name: "3rel-worker-spill", q: q3, p: root}
	for _, joinID := range []int{0, 1} {
		full := runWorkers(f, c, 1, 0, 0, nil, joinID)
		if full.err != nil {
			t.Fatalf("join %d: unbudgeted spill failed: %v", joinID, full.err)
		}
		if len(full.res.JoinSel) == 0 {
			t.Fatalf("join %d: spill run observed no selectivity", joinID)
		}
		for _, workers := range []int{2, 8} {
			for _, frac := range []float64{0, 0.4, 0.9} {
				budget := frac * full.res.Cost
				tag := fmt.Sprintf("spill join=%d workers=%d budget=%.1f", joinID, workers, frac)
				seq := runWorkers(f, c, 1, 0, budget, nil, joinID)
				par := runWorkers(f, c, workers, 0, budget, nil, joinID)
				compareRuns(t, tag, seq, par, seq.res != nil && seq.res.Completed)
			}
		}
	}
}

// TestDifferentialWorkerChaos pins the lockstep rule: with a fault
// injector armed the engine must ignore the worker knob and run
// sequentially, replaying the tuple engine's fault schedule bit for bit
// — including Rows — at every configured worker count.
func TestDifferentialWorkerChaos(t *testing.T) {
	f := newFixture(t)
	rates := map[faultinject.Site]float64{
		faultinject.SiteScanTuple:     0.05,
		faultinject.SiteIndexProbe:    0.10,
		faultinject.SiteOperatorPanic: 0.02,
		faultinject.SiteLatency:       0.10,
	}
	cases := diffCases(t, f)
	for seed := uint64(1); seed <= 6; seed++ {
		mk := func() *faultinject.Injector {
			return faultinject.New(faultinject.Config{
				Seed: seed, Rates: rates, PersistentFrac: 0.5, MaxPerSite: 1,
			})
		}
		for _, c := range cases {
			tag := fmt.Sprintf("%s/seed=%d", c.name, seed)
			tup := runEngine(f, c, false, 0, 0, mk, -1)
			par := runWorkers(f, c, 8, 0, 0, mk, -1)
			compareRuns(t, tag, tup, par, true)
		}
	}
}

// TestDifferentialParallelDeterministicMerge runs the same query twice
// at 8 workers and requires deep-equal Results: the per-worker meter
// merge must be deterministic — integer class counts folded in
// registration order — not merely close. Unbudgeted runs must agree on
// everything including Rows; killed runs on everything but Rows (the
// parallel stop point is scheduling-dependent, the billing is not).
func TestDifferentialParallelDeterministicMerge(t *testing.T) {
	f := newFixture(t)
	for _, c := range diffCases(t, f) {
		a := runWorkers(f, c, 8, 0, 0, nil, -1)
		b := runWorkers(f, c, 8, 0, 0, nil, -1)
		if a.err != nil || b.err != nil {
			t.Fatalf("%s: unbudgeted runs failed: %v / %v", c.name, a.err, b.err)
		}
		if !reflect.DeepEqual(a.res, b.res) {
			t.Fatalf("%s: repeated 8-worker runs differ:\n a: %+v\n b: %+v", c.name, a.res, b.res)
		}
		budget := 0.3 * a.res.Cost
		if budget == 0 {
			continue
		}
		ka := runWorkers(f, c, 8, 0, budget, nil, -1)
		kb := runWorkers(f, c, 8, 0, budget, nil, -1)
		compareRuns(t, c.name+"/killed-merge", ka, kb, false)
	}
}

// TestParallelBudgetKillExactCost pins the merged budget-kill protocol:
// at every worker count the kill fires at the same billed cost — the
// budget, exactly — never an over-run from racing workers.
func TestParallelBudgetKillExactCost(t *testing.T) {
	f := newFixture(t)
	q := f.parse(t, joinSQL)
	c := diffCase{name: "kill", q: q, p: twoRelPlans(q)["hash"]}
	full := runWorkers(f, c, 1, 0, 0, nil, -1)
	if full.err != nil {
		t.Fatalf("unbudgeted run failed: %v", full.err)
	}
	for _, frac := range []float64{0.05, 0.5, 0.95} {
		budget := frac * full.res.Cost
		for _, workers := range []int{1, 2, 4, 8, 16} {
			r := runWorkers(f, c, workers, 0, budget, nil, -1)
			if r.err != nil {
				t.Fatalf("workers=%d frac=%.2f: run errored: %v", workers, frac, r.err)
			}
			if r.res.Completed {
				t.Fatalf("workers=%d frac=%.2f: run not killed", workers, frac)
			}
			if r.res.Cost != budget {
				t.Fatalf("workers=%d frac=%.2f: killed run billed %.17g, want exactly %.17g",
					workers, frac, r.res.Cost, budget)
			}
		}
	}
}

// TestWorkersClamp pins the WithWorkers knob's clamping contract.
func TestWorkersClamp(t *testing.T) {
	f := newFixture(t)
	q := f.parse(t, joinSQL)
	e := New(q, f.store, cost.DefaultParams())
	if e.Workers() != 1 {
		t.Fatalf("default workers = %d, want 1", e.Workers())
	}
	if e.WithWorkers(0).Workers() != 1 {
		t.Fatalf("WithWorkers(0) = %d, want 1", e.Workers())
	}
	if e.WithWorkers(1000).Workers() != MaxWorkers {
		t.Fatalf("WithWorkers(1000) = %d, want %d", e.Workers(), MaxWorkers)
	}
}

// TestMorselEligibility pins which plans the scheduler parallelizes: a
// hash-join chain over a sequential scan is morselized, while a merge
// join (order-dependent skip charges) and an index-scan driver are not.
// Without this guard the differential suite would pass trivially if
// dispatch silently fell back to sequential.
func TestMorselEligibility(t *testing.T) {
	f := newFixture(t)
	q := f.parse(t, `SELECT * FROM fact f, dim d
		WHERE f.f_dim = d.d_id AND f.f_val <= 40`)
	meter := &Meter{}
	res := &Result{}
	e := New(q, f.store, cost.DefaultParams()).WithWorkers(8)

	plans := twoRelPlans(q)
	plans["hash-indexscan"] = plan.NewJoin(plan.HashJoin, []int{0},
		plan.NewScan(q.RelIndex("f"), plan.IndexScan),
		plan.NewScan(q.RelIndex("d"), plan.SeqScan))
	for name, want := range map[string]bool{
		"hash": true, "inl": true, "nl": true, "merge": false, "hash-indexscan": false,
	} {
		op, _, err := e.buildVec(plans[name], meter, res, DefaultBatchSize)
		if err != nil {
			t.Fatal(err)
		}
		if got := morselScanOf(op) != nil; got != want {
			t.Fatalf("%s: morsel-eligible = %v, want %v", name, got, want)
		}
	}
}

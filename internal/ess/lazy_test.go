package ess_test

import (
	"sync"
	"testing"

	"repro/internal/ess"
	"repro/internal/workload"
)

func buildPair(t *testing.T, spec workload.Spec, cfg ess.Config) (*ess.Space, *ess.LazySpace) {
	t.Helper()
	eager, err := spec.SpaceWith(1.0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := spec.LazySpaceWith(1.0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eager, lazy
}

// TestLazyExactMatchesEagerContours requires the lazy source in exact
// mode to reproduce the eager space's full contour set bit-for-bit:
// budgets, member points, per-point costs and plan signatures.
func TestLazyExactMatchesEagerContours(t *testing.T) {
	for _, spec := range lowDimSuite() {
		t.Run(spec.Name, func(t *testing.T) {
			eager, lazy := buildPair(t, spec, ess.Config{Exact: true})

			ec, lc := eager.ContourCosts(), lazy.ContourCosts()
			if len(ec) != len(lc) {
				t.Fatalf("contour counts %d != %d", len(ec), len(lc))
			}
			for i := range ec {
				if ec[i] != lc[i] {
					t.Fatalf("contour cost %d: %v != %v", i, ec[i], lc[i])
				}
			}
			for ci := 0; ci < eager.NumContours(); ci++ {
				a := eager.ContourAt(nil, ci)
				b := lazy.ContourAt(nil, ci)
				if a.Cost != b.Cost || len(a.Points) != len(b.Points) {
					t.Fatalf("contour %d: %d pts at %v vs %d pts at %v",
						ci, len(a.Points), a.Cost, len(b.Points), b.Cost)
				}
				for j, pt := range a.Points {
					if b.Points[j] != pt {
						t.Fatalf("contour %d point %d: %d != %d", ci, j, pt, b.Points[j])
					}
					if ec, lc := eager.CostAt(pt), lazy.CostAt(pt); ec != lc {
						t.Fatalf("point %d cost %v != %v", pt, ec, lc)
					}
					es := eager.Plan(eager.PlanAt(pt)).Sig
					ls := lazy.Plan(lazy.PlanAt(pt)).Sig
					if es != ls {
						t.Fatalf("point %d plan %s != %s", pt, es, ls)
					}
				}
			}
			prof := lazy.Profile()
			if prof.Mode != "lazy-exact" {
				t.Fatalf("mode %q", prof.Mode)
			}
			if prof.Settled <= 0 || prof.Settled > prof.Points {
				t.Fatalf("settled %d of %d", prof.Settled, prof.Points)
			}
		})
	}
}

// TestLazySliceContoursMatchEager pins the partially-learned slice path:
// re-contouring with pinned dimensions must agree between providers.
func TestLazySliceContoursMatchEager(t *testing.T) {
	spec := lowDimSuite()[0]
	eager, lazy := buildPair(t, spec, ess.Config{Exact: true})
	g := eager.Grid

	learned := make([]int, g.D)
	for d := range learned {
		learned[d] = -1
	}
	learned[0] = g.Res / 2

	for ci := 0; ci < eager.NumContours(); ci++ {
		a := eager.ContourAt(learned, ci)
		b := lazy.ContourAt(learned, ci)
		if len(a.Points) != len(b.Points) {
			t.Fatalf("slice contour %d: %d != %d points", ci, len(a.Points), len(b.Points))
		}
		for j := range a.Points {
			if a.Points[j] != b.Points[j] {
				t.Fatalf("slice contour %d point %d: %d != %d", ci, j, a.Points[j], b.Points[j])
			}
		}
	}
}

// TestLazyRecostContoursAreValid checks the recost-mode lazy source's
// structural contract (exact equality is only promised in exact mode):
// every emitted contour point is within budget with all free successors
// above it, and CostAt agrees with the contour's own membership rule.
func TestLazyRecostContoursAreValid(t *testing.T) {
	spec := lowDimSuite()[0]
	_, lazy := buildPair(t, spec, ess.Config{Theta: 0.05, CoarseStep: 2})
	g := lazy.Geometry()

	costs := lazy.ContourCosts()
	for ci := range costs {
		b := costs[ci] * (1 + 1e-9)
		ct := lazy.ContourAt(nil, ci)
		for _, pt := range ct.Points {
			if c := lazy.CostAt(pt); c > b {
				t.Fatalf("contour %d point %d cost %v above budget %v", ci, pt, c, b)
			}
			for d := 0; d < g.D; d++ {
				if nxt := g.Step(int(pt), d); nxt >= 0 {
					if c := lazy.CostAt(int32(nxt)); c <= b {
						t.Fatalf("contour %d point %d: successor %d within budget", ci, pt, nxt)
					}
				}
			}
		}
	}
	if prof := lazy.Profile(); prof.Mode != "lazy-recost" {
		t.Fatalf("mode %q", prof.Mode)
	}
}

// TestLazyRefinementOverlay drives the COW refinement path: refining a
// recost-settled slice must bump the epoch, reroute CostAt through the
// overlay, and leave previously captured contours untouched while new
// enumerations see the refined surface.
func TestLazyRefinementOverlay(t *testing.T) {
	spec := lowDimSuite()[0]
	eager, lazy := buildPair(t, spec, ess.Config{Theta: 0.5, CoarseStep: 2})
	g := lazy.Geometry()

	// Touch the whole surface so there are recost-settled points.
	for ci := 0; ci < lazy.NumContours(); ci++ {
		lazy.ContourAt(nil, ci)
	}
	if lazy.Epoch() != 0 {
		t.Fatalf("fresh source epoch %d", lazy.Epoch())
	}

	// Observe every index of dimension 0: after refinement the full
	// surface is exact-grade, so it must agree with the eager exact
	// reference everywhere it previously drifted.
	for idx := 0; idx < g.Res; idx++ {
		lazy.Observe(0, idx)
	}
	changed := lazy.ApplyRefinements()
	prof := lazy.Profile()
	if prof.Refinements != 1 {
		t.Fatalf("refinement rounds %d", prof.Refinements)
	}
	if changed > 0 && lazy.Epoch() == 0 {
		t.Fatal("refinement changed values without bumping epoch")
	}
	if int(prof.RefinedPoints) != changed {
		t.Fatalf("refined points %d != changed %d", prof.RefinedPoints, changed)
	}

	exactRef, err := spec.SpaceWith(1.0, ess.Config{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	_ = eager
	n := g.NumPoints()
	for pt := 0; pt < n; pt++ {
		if lc, ec := lazy.CostAt(int32(pt)), exactRef.CostAt(int32(pt)); lc != ec {
			t.Fatalf("post-refinement point %d cost %v != exact %v", pt, lc, ec)
		}
	}

	// Idempotent: re-observing the already refined slices changes nothing.
	for idx := 0; idx < g.Res; idx++ {
		lazy.Observe(0, idx)
	}
	if again := lazy.ApplyRefinements(); again != 0 {
		t.Fatalf("second refinement changed %d points", again)
	}

	// Out-of-range observations are ignored.
	lazy.Observe(-1, 0)
	lazy.Observe(0, g.Res)
	if n := lazy.ApplyRefinements(); n != 0 {
		t.Fatalf("invalid observations refined %d points", n)
	}
}

// TestLazyConcurrentSettle hammers one lazy source from many goroutines
// (run under -race): all contours and point accessors must agree with a
// sequentially settled twin.
func TestLazyConcurrentSettle(t *testing.T) {
	spec := lowDimSuite()[0]
	seq, par := buildPair(t, spec, ess.Config{Theta: 0.05, CoarseStep: 2})
	_ = seq

	ref, err := spec.LazySpaceWith(1.0, ess.Config{Theta: 0.05, CoarseStep: 2})
	if err != nil {
		t.Fatal(err)
	}
	g := par.Geometry()
	n := g.NumPoints()
	// Sequential twin settles everything first.
	refCosts := make([]float64, n)
	for pt := 0; pt < n; pt++ {
		refCosts[pt] = ref.CostAt(int32(pt))
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				pt := (i*workers + w) % n
				if c := par.CostAt(int32(pt)); c != refCosts[pt] {
					errs <- "cost mismatch"
					return
				}
			}
			for ci := 0; ci < par.NumContours(); ci++ {
				par.ContourAt(nil, ci)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

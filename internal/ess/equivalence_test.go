package ess_test

import (
	"testing"

	"repro/internal/ess"
	"repro/internal/workload"
)

// lowDimSuite returns the 2D/3D workload specs, capped at res 8 so the
// exact reference sweeps stay cheap.
func lowDimSuite() []workload.Spec {
	cands := append([]workload.Spec{workload.EQ()}, workload.Suite()...)
	cands = append(cands, workload.Q91Family()...)
	var out []workload.Spec
	seen := map[string]bool{}
	for _, spec := range cands {
		if spec.D <= 3 && !seen[spec.Name] {
			seen[spec.Name] = true
			if spec.Res > 8 {
				spec.Res = 8
			}
			out = append(out, spec)
		}
	}
	return out
}

// TestThetaExactMatchesExactAcrossWorkloads requires the ThetaExact
// sentinel to reproduce the exact sweep bit-for-bit on every 2D/3D
// workload: costs, per-point plan signatures, and contours.
func TestThetaExactMatchesExactAcrossWorkloads(t *testing.T) {
	for _, spec := range lowDimSuite() {
		t.Run(spec.Name, func(t *testing.T) {
			exact, err := spec.SpaceWith(1.0, ess.Config{Exact: true})
			if err != nil {
				t.Fatal(err)
			}
			zero, err := spec.SpaceWith(1.0, ess.Config{Theta: ess.ThetaExact})
			if err != nil {
				t.Fatal(err)
			}
			n := exact.Grid.NumPoints()
			for pt := 0; pt < n; pt++ {
				if exact.PointCost[pt] != zero.PointCost[pt] {
					t.Fatalf("point %d cost %v != %v", pt, exact.PointCost[pt], zero.PointCost[pt])
				}
				es := exact.Plan(exact.PointPlan[pt]).Sig
				zs := zero.Plan(zero.PointPlan[pt]).Sig
				if es != zs {
					t.Fatalf("point %d plan %s != %s", pt, es, zs)
				}
			}
			if len(exact.Contours) != len(zero.Contours) {
				t.Fatalf("contours %d != %d", len(exact.Contours), len(zero.Contours))
			}
			for i := range exact.Contours {
				a, b := exact.Contours[i], zero.Contours[i]
				if a.Cost != b.Cost || len(a.Points) != len(b.Points) {
					t.Fatalf("contour %d differs", i)
				}
				for j := range a.Points {
					if a.Points[j] != b.Points[j] {
						t.Fatalf("contour %d point %d differs", i, j)
					}
				}
			}
		})
	}
}

// validateSlack is the curvature margin allowed on top of θ when
// validating a recost surface against the exact optimum. The sweep's
// fallback gate bounds the accepted recost against the log-linear
// interpolation of the cell's exact corner costs, so the end-to-end
// deviation from the optimum is (1+θ)·(1+κ) where κ is how far the
// interpolation itself can overshoot inside one coarse cell. κ=0.05
// covers the measured worst case on every 2D/3D workload (1.071 on
// 3D_Q91; ≤1.004 on all 2D grids).
const validateSlack = 0.05

// TestRecostWithinThetaAcrossWorkloads builds every 2D/3D workload with
// the default recost pipeline and validates the surface against a full
// exact re-optimization: never below the optimum, within the θ-plus-
// curvature envelope above it, with a sane fallback profile.
func TestRecostWithinThetaAcrossWorkloads(t *testing.T) {
	for _, spec := range lowDimSuite() {
		t.Run(spec.Name, func(t *testing.T) {
			s, err := spec.SpaceWith(1.0, ess.Config{})
			if err != nil {
				t.Fatal(err)
			}
			bound := (1+ess.DefaultTheta)*(1+validateSlack) - 1
			if err := s.Validate(bound); err != nil {
				t.Fatal(err)
			}
			st := s.Stats
			if st.DPCalls >= st.Points {
				t.Errorf("no DP savings: %d calls for %d points", st.DPCalls, st.Points)
			}
			if r := st.FallbackRate(); r < 0 || r > 1 {
				t.Errorf("fallback rate %v out of range", r)
			}
			if st.LatticeDP+st.RecostPoints+st.Fallbacks+st.Repairs != st.Points {
				t.Errorf("point accounting broken: %+v", st)
			}
		})
	}
}

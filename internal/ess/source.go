package ess

import (
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/query"
)

// ContourSource is the demand-driven contour provider the discovery
// algorithms consume. Two implementations exist: the eagerly built
// *Space (the full res^D POSP sweep, kept bit-for-bit for θ=0
// validation and the differential suites) and *LazySpace, which
// materializes iso-cost contours one budget step at a time as the
// algorithms climb the ladder and settles grid points only when a
// contour, a simulated execution, or a planner decision touches them.
//
// All methods are safe for concurrent use. Point accessors (CostAt,
// PlanAt) may settle the point on first touch in a lazy source; the
// returned values for a given epoch are stable, and Epoch() changes
// exactly when online refinement publishes a new overlay.
type ContourSource interface {
	// Query returns the underlying query.
	Query() *query.Query
	// Geometry returns the ESS grid discretization.
	Geometry() *Grid
	// Bounds returns (Cmin, Cmax): the optimal costs at the grid origin
	// and terminus.
	Bounds() (cmin, cmax float64)
	// Ratio returns the geometric iso-cost contour spacing.
	Ratio() float64
	// ContourCosts returns the budget sequence CC_1..CC_m.
	ContourCosts() []float64
	// NumContours returns m, the number of iso-cost contours.
	NumContours() int
	// ContourAt returns contour ci (0-based) of the slice where the
	// learned dimensions (learned[d] ≥ 0) are pinned to their grid
	// indexes; nil learned selects the full grid. The returned contour
	// is immutable.
	ContourAt(learned []int, ci int) *Contour
	// CostAt returns the optimal cost at the grid point.
	CostAt(pt int32) float64
	// PlanAt returns the optimal plan's pool ID at the grid point.
	PlanAt(pt int32) int32
	// Plan returns the pool entry with the given ID.
	Plan(id int32) *PlanInfo
	// NumPlans returns the current pool size.
	NumPlans() int
	// BasePlans returns the frozen compile-time candidate pool (for a
	// lazy source: the pool snapshot at call time — see LazySpace docs).
	BasePlans() []*PlanInfo
	// AddPlan interns an externally produced plan into the pool.
	AddPlan(root *plan.Node) int32
	// SpillDim returns the ESS dimension the plan spills on given the
	// bitmask of still-unlearned dimensions, or -1.
	SpillDim(planID int32, remMask uint16) int
	// NewEvaluator returns a fresh recosting evaluator whose OptCost
	// routes through this source (settling lazily where applicable).
	NewEvaluator() *Evaluator
	// Optimizer exposes the source's optimizer.
	Optimizer() *optimizer.Optimizer
	// Epoch returns the refinement epoch: 0 for immutable sources,
	// incremented each time online refinement publishes a new overlay.
	Epoch() uint64
	// Profile reports the provider-agnostic construction work profile.
	Profile() BuildProfile
}

// BuildProfile is the provider-agnostic construction work profile of a
// ContourSource: how many grid points have a settled cost, how they
// were settled (exact DP vs. recost), and — for lazy sources — the
// demand-driven cache and refinement activity. It replaces direct reads
// of Space.Stats in tooling, which reported misleading zeros for lazy
// paths.
type BuildProfile struct {
	// Mode identifies the provider: "eager-exact", "eager-recost",
	// "snapshot", "lazy-exact", or "lazy-recost".
	Mode string
	// Points is the total number of grid locations.
	Points int
	// Settled is the number of locations with a materialized cost
	// (equals Points for eager sources).
	Settled int
	// LatticeDP is the number of phase-1 coarse-lattice DP points (eager
	// recost sweeps only).
	LatticeDP int
	// DPCalls counts exact optimizer invocations.
	DPCalls int64
	// RecostPoints is the number of points settled by recosting pooled
	// plans instead of running the DP.
	RecostPoints int64
	// RecostCalls counts individual plan recostings.
	RecostCalls int64
	// Fallbacks counts recost points whose anchor gate failed, forcing
	// the exact DP.
	Fallbacks int64
	// Repairs and RepairRounds report the eager sweep's monotonicity
	// repair pass (eager recost only).
	Repairs, RepairRounds int
	// ContoursBuilt counts contours materialized on demand (lazy only).
	ContoursBuilt int64
	// Hits and Misses count settled-point cache hits and misses on the
	// point accessors (lazy only).
	Hits, Misses int64
	// Refinements counts applied refinement rounds and RefinedPoints the
	// points whose value an exact re-solve actually changed (lazy only).
	Refinements, RefinedPoints int64
	// Epoch is the current refinement epoch (lazy only).
	Epoch uint64
}

// FallbackRate is the fraction of recost-eligible points that fell back
// to the exact DP.
func (p BuildProfile) FallbackRate() float64 {
	eligible := p.RecostPoints + p.Fallbacks
	if eligible <= 0 {
		return 0
	}
	return float64(p.Fallbacks) / float64(eligible)
}

// DPReduction is the factor by which exact DP invocations dropped
// relative to one DP per settled point.
func (p BuildProfile) DPReduction() float64 {
	if p.DPCalls == 0 {
		return 1
	}
	return float64(p.Settled) / float64(p.DPCalls)
}

// --- Space conformance -------------------------------------------------

// Query returns the underlying query.
func (s *Space) Query() *query.Query { return s.Q }

// Geometry returns the ESS grid.
func (s *Space) Geometry() *Grid { return s.Grid }

// Bounds returns (Cmin, Cmax).
func (s *Space) Bounds() (float64, float64) { return s.Cmin, s.Cmax }

// Ratio returns the contour spacing.
func (s *Space) Ratio() float64 { return s.CostRatio }

// NumContours returns the number of iso-cost contours.
func (s *Space) NumContours() int { return len(s.Contours) }

// ContourAt returns contour ci of the slice pinned by learned (nil =
// full grid). The contour is part of the immutable (memoized) contour
// set, so callers must not mutate it.
func (s *Space) ContourAt(learned []int, ci int) *Contour {
	if learned == nil {
		return &s.Contours[ci]
	}
	cs := s.ContoursFor(learned)
	return &cs[ci]
}

// CostAt returns the optimal cost at the grid point.
func (s *Space) CostAt(pt int32) float64 { return s.PointCost[pt] }

// PlanAt returns the optimal plan ID at the grid point.
func (s *Space) PlanAt(pt int32) int32 { return s.PointPlan[pt] }

// Epoch returns 0: an eager space never refines after Build.
func (s *Space) Epoch() uint64 { return 0 }

// Profile reports the eager sweep's work profile in provider-agnostic
// form.
func (s *Space) Profile() BuildProfile {
	mode := "eager-exact"
	switch {
	case s.loaded:
		mode = "snapshot"
	case s.Stats.LatticeDP > 0:
		mode = "eager-recost"
	}
	return BuildProfile{
		Mode:         mode,
		Points:       s.Grid.NumPoints(),
		Settled:      s.Grid.NumPoints(),
		LatticeDP:    s.Stats.LatticeDP,
		DPCalls:      int64(s.Stats.DPCalls),
		RecostPoints: int64(s.Stats.RecostPoints),
		RecostCalls:  s.Stats.RecostCalls,
		Fallbacks:    int64(s.Stats.Fallbacks),
		Repairs:      s.Stats.Repairs,
		RepairRounds: s.Stats.RepairRounds,
	}
}

var _ ContourSource = (*Space)(nil)

package ess

import (
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cost"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/query"
)

const (
	// DefaultTheta is the recost acceptance threshold θ used when
	// Config.Theta is left zero.
	DefaultTheta = 0.05
	// DefaultCoarseStep is the phase-1 sub-lattice stride used when
	// Config.CoarseStep is left zero. At stride 2 every off-lattice point
	// is one grid step from solved corners on each dimension, which keeps
	// the recost candidates tight on the geometric grid.
	DefaultCoarseStep = 2
	// ThetaExact (any Theta ≤ 0) disables recost acceptance entirely, so
	// every grid point is settled by the exact DP — equivalent to
	// Config.Exact, and guaranteed to reproduce the exact surface.
	ThetaExact = -1
)

// Config controls ESS construction.
type Config struct {
	// Res is the grid resolution per dimension.
	Res int
	// SelMin is the smallest selectivity on the grid (default 1e-4).
	SelMin float64
	// CostRatio is the geometric spacing of iso-cost contours (default
	// 2.0, the doubling of the paper; §4.2 notes 1.8 can shave the bound).
	CostRatio float64
	// Workers bounds the parallelism of the POSP sweep (default NumCPU).
	Workers int
	// Exact forces the classic one-DP-per-point sweep, bypassing the
	// recost-first pipeline.
	Exact bool
	// Theta is the recost acceptance threshold: an off-lattice point is
	// settled without the DP only when the best pooled recost beats the
	// runner-up by a factor ≥ 1+Theta (and the surrounding lattice
	// corners agree on the winner). Zero means DefaultTheta; negative
	// (ThetaExact) disables recost acceptance, forcing the exact sweep.
	Theta float64
	// CoarseStep is the phase-1 sub-lattice stride k: the exact DP runs
	// on every k-th grid index per dimension (corners always included).
	// Zero means DefaultCoarseStep; values ≤ 1 force the exact sweep.
	CoarseStep int
}

func (c Config) withDefaults() Config {
	if c.SelMin == 0 {
		c.SelMin = 1e-4
	}
	if c.CostRatio == 0 {
		c.CostRatio = 2.0
	}
	if c.Workers == 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.Theta == 0 {
		c.Theta = DefaultTheta
	}
	if c.CoarseStep == 0 {
		c.CoarseStep = DefaultCoarseStep
	}
	return c
}

// PlanInfo is one POSP plan in the pool.
type PlanInfo struct {
	// ID is the plan's index in the pool.
	ID int
	// Root is the plan tree.
	Root *plan.Node
	// Sig is the canonical signature.
	Sig string

	// spill[remMask] is the ESS dimension the plan spills on given the
	// bitmask of still-unlearned dimensions (-1 = none). Precomputed when
	// the plan enters the pool so SpillDim is a lock-free table read.
	spill []int8
}

// Contour is one iso-cost contour: the discrete skyline of the
// hypograph {q : Cost(Pq,q) ≤ Cost} — every location on it has optimal
// cost within budget while all of its (unlearned-dimension) successors
// exceed it.
type Contour struct {
	// Index is the 1-based contour number (IC_{Index}).
	Index int
	// Cost is CC_i, the execution budget on this contour.
	Cost float64
	// Points are the linear grid indexes on the contour, ascending.
	Points []int32
}

// Space is the constructed search space: the tuples <q, Pq, Cost(Pq,q)>
// of §2.2 for every grid location, the plan pool, and the contours.
//
// After Build returns the space is immutable apart from two
// concurrency-safe extension points: AddPlan interns runtime plans into
// a copy-on-write pool, and ContoursFor memoizes slice contours in a
// sync.Map. Every read path (Plans, Plan, SpillDim, ContoursFor,
// Evaluator) is lock-free, so any number of discovery runs can share
// one Space. RecomputeContours is the one exception — it rewrites the
// surface in place for benchmarks and must not race discoveries.
type Space struct {
	// Q is the underlying query.
	Q *query.Query
	// Grid is the ESS discretization.
	Grid *Grid
	// Model is the cost model shared with the optimizer.
	Model *cost.Model
	// BaseEnv is the costing environment with non-epp quantities fixed.
	BaseEnv *cost.Env
	// PointPlan maps each grid point to its optimal plan's ID.
	PointPlan []int32
	// PointCost maps each grid point to its optimal cost.
	PointCost []float64
	// Contours are the full-grid iso-cost contours, cheapest first.
	Contours []Contour
	// Cmin and Cmax are the optimal costs at origin and terminus.
	Cmin, Cmax float64
	// CostRatio is the contour spacing used.
	CostRatio float64
	// Stats reports the work profile of the sweep that built the space.
	Stats SweepStats

	opt *optimizer.Optimizer

	// The plan pool is copy-on-write: readers load the current immutable
	// snapshot without locking; writers append under planMu and publish a
	// new slice. basePlans is the pool size when Build (or Load)
	// published it — the frozen compile-time prefix; entries past it were
	// interned at run time.
	plans     atomic.Pointer[[]*PlanInfo]
	planMu    sync.Mutex
	planSig   map[string]int32
	basePlans int

	// slices caches per-slice contour sets (sliceKey → []Contour). The
	// values are pure functions of the immutable cost surface, so a
	// racing double-compute is benign; LoadOrStore keeps one winner.
	slices sync.Map

	// loaded marks spaces reconstructed from a snapshot (Profile mode).
	loaded bool
}

// Build optimizes every grid location and assembles the space.
func Build(q *query.Query, baseEnv *cost.Env, model *cost.Model, cfg Config) (*Space, error) {
	cfg = cfg.withDefaults()
	if q.D() < 1 {
		return nil, fmt.Errorf("ess: query %s has no epps", q.Name)
	}
	g := NewGrid(q.D(), cfg.Res, cfg.SelMin)
	s := &Space{
		Q:         q,
		Grid:      g,
		Model:     model,
		BaseEnv:   baseEnv,
		PointPlan: make([]int32, g.NumPoints()),
		PointCost: make([]float64, g.NumPoints()),
		CostRatio: cfg.CostRatio,
		opt:       optimizer.New(q, model),
		planSig:   make(map[string]int32),
	}
	empty := make([]*PlanInfo, 0)
	s.plans.Store(&empty)
	if err := s.sweep(cfg); err != nil {
		return nil, err
	}
	s.Cmin = s.PointCost[g.Origin()]
	s.Cmax = s.PointCost[g.Terminus()]
	if s.Cmin <= 0 || s.Cmax < s.Cmin {
		return nil, fmt.Errorf("ess: degenerate cost surface (Cmin=%v, Cmax=%v)", s.Cmin, s.Cmax)
	}
	s.Contours = s.contoursOn(s.allPoints(), nil)
	return s, nil
}

func (s *Space) allPoints() []int32 {
	pts := make([]int32, s.Grid.NumPoints())
	for i := range pts {
		pts[i] = int32(i)
	}
	return pts
}

// Plans returns the current plan-pool snapshot. The returned slice is
// never mutated — runtime interning publishes a new snapshot instead of
// growing this one — so it is safe to iterate without locking.
func (s *Space) Plans() []*PlanInfo { return *s.plans.Load() }

// Plan returns the pool entry with the given ID.
func (s *Space) Plan(id int32) *PlanInfo { return (*s.plans.Load())[id] }

// NumPlans returns the current pool size.
func (s *Space) NumPlans() int { return len(*s.plans.Load()) }

// BasePlans returns the compile-time plan pool: the pool exactly as
// Build (or Load) published it, excluding plans interned at run time.
// The prefix is frozen, so concurrent callers that must agree on a
// candidate set (e.g. alignment planners) all see the same plans
// regardless of what other runs have interned since.
func (s *Space) BasePlans() []*PlanInfo { return (*s.plans.Load())[:s.basePlans] }

// publishPlans installs the built pool: it precomputes each plan's
// spill table, indexes signatures for AddPlan interning, and freezes
// the compile-time prefix.
func (s *Space) publishPlans(plans []*PlanInfo) {
	for _, p := range plans {
		if p.spill == nil {
			p.spill = s.spillTable(p.Root)
		}
	}
	s.planMu.Lock()
	defer s.planMu.Unlock()
	s.planSig = make(map[string]int32, len(plans))
	for _, p := range plans {
		s.planSig[p.Sig] = int32(p.ID)
	}
	s.basePlans = len(plans)
	snapshot := plans
	s.plans.Store(&snapshot)
}

// ContourCosts returns the budget sequence CC_1..CC_m: Cmin, then
// geometric steps, capped at Cmax (§2.5).
func (s *Space) ContourCosts() []float64 {
	costs := []float64{s.Cmin}
	const slack = 1e-9
	for c := s.Cmin * s.CostRatio; c < s.Cmax*(1-slack); c *= s.CostRatio {
		costs = append(costs, c)
	}
	if s.Cmax > s.Cmin*(1+slack) {
		costs = append(costs, s.Cmax)
	}
	return costs
}

// contoursOn computes the iso-cost contours restricted to the given
// point set, with successor checks along freeDims only (nil = all).
//
// A point sits on contour i exactly when its cost is within budget b_i
// while the cheapest freeDims-successor exceeds b_i — so its membership
// is a contiguous budget interval [cost(pt), minSucc(pt)). One binary
// search per endpoint places each point in all of its contours directly:
// O(n log m + output) instead of the per-contour full rescan, and since
// the points are visited in ascending order the member lists come out
// sorted without a per-contour pass.
func (s *Space) contoursOn(pts []int32, freeDims []int) []Contour {
	if freeDims == nil {
		freeDims = make([]int, s.Grid.D)
		for d := range freeDims {
			freeDims[d] = d
		}
	}
	costs := s.ContourCosts()
	const eps = 1e-9
	budgets := make([]float64, len(costs))
	out := make([]Contour, len(costs))
	for i, cc := range costs {
		budgets[i] = cc * (1 + eps)
		out[i] = Contour{Index: i + 1, Cost: cc}
	}
	for _, pt := range pts {
		lo := sort.SearchFloat64s(budgets, s.PointCost[pt])
		if lo == len(budgets) {
			continue
		}
		minSucc := math.Inf(1)
		for _, d := range freeDims {
			if nxt := s.Grid.Step(int(pt), d); nxt >= 0 && s.PointCost[nxt] < minSucc {
				minSucc = s.PointCost[nxt]
			}
		}
		for i := lo; i < len(budgets) && budgets[i] < minSucc; i++ {
			out[i].Points = append(out[i].Points, pt)
		}
	}
	return out
}

// RecomputeContours rebuilds the full-grid contour set from the current
// cost surface (exposed for benchmarking and tools). It mutates the
// space and must not run concurrently with discoveries.
func (s *Space) RecomputeContours() []Contour {
	s.Contours = s.contoursOn(s.allPoints(), nil)
	return s.Contours
}

// ContoursFor returns the iso-cost contours of the slice where the
// learned dimensions (learned[d] ≥ 0) are pinned to their grid indexes.
// With nothing learned this is the precomputed full-grid contour set.
// Results are memoized per slice; hits are lock-free, and a racing miss
// merely recomputes the same pure function of the cost surface.
func (s *Space) ContoursFor(learned []int) []Contour {
	all := true
	for _, v := range learned {
		if v >= 0 {
			all = false
			break
		}
	}
	if all {
		return s.Contours
	}
	key := sliceKey(learned)
	if c, ok := s.slices.Load(key); ok {
		return c.([]Contour)
	}

	pts := s.slicePoints(learned)
	var free []int
	for d, v := range learned {
		if v < 0 {
			free = append(free, d)
		}
	}
	c, _ := s.slices.LoadOrStore(key, s.contoursOn(pts, free))
	return c.([]Contour)
}

// sliceKey encodes a learned-dimension vector as a cache key. Varint
// encoding is self-delimiting, so high grid indexes cannot collide the
// way single-byte encodings do (byte(v+1) maps 255 and -1 to the same
// key).
func sliceKey(learned []int) string {
	b := make([]byte, 0, len(learned)*2)
	for _, v := range learned {
		b = binary.AppendVarint(b, int64(v))
	}
	return string(b)
}

// slicePoints enumerates the linear indexes of the slice in ascending
// order.
func (s *Space) slicePoints(learned []int) []int32 {
	g := s.Grid
	var free []int
	base := 0
	for d, v := range learned {
		if v >= 0 {
			base += v * g.strides[d]
		} else {
			free = append(free, d)
		}
	}
	count := 1
	for range free {
		count *= g.Res
	}
	pts := make([]int32, 0, count)
	idx := make([]int, len(free))
	for {
		lin := base
		for k, d := range free {
			lin += idx[k] * g.strides[d]
		}
		pts = append(pts, int32(lin))
		k := len(free) - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < g.Res {
				break
			}
			idx[k] = 0
			k--
		}
		if k < 0 {
			break
		}
	}
	return pts
}

// spillTable computes, for every bitmask of still-unlearned dimensions,
// the ESS dimension the plan spills on (-1 = none). Spill-node
// identification is structural, not location-dependent, so the table
// depends only on the plan tree.
func (s *Space) spillTable(root *plan.Node) []int8 {
	d := s.Grid.D
	tab := make([]int8, 1<<uint(d))
	remaining := make(map[int]bool, d)
	for mask := range tab {
		for k := range remaining {
			delete(remaining, k)
		}
		for dim, joinID := range s.Q.EPPs {
			if mask&(1<<uint(dim)) != 0 {
				remaining[joinID] = true
			}
		}
		dim := -1
		if joinID := plan.SpillJoin(root, remaining); joinID >= 0 {
			dim = s.Q.EPPDim(joinID)
		}
		tab[mask] = int8(dim)
	}
	return tab
}

// SpillDim returns the ESS dimension the plan spills on given the set of
// still-unlearned dimensions (bitmask over dims), or -1. The table is
// precomputed when the plan enters the pool, so this is a lock-free
// read.
func (s *Space) SpillDim(planID int32, remMask uint16) int {
	p := s.Plan(planID)
	return int(p.spill[int(remMask)&(len(p.spill)-1)])
}

// AddPlan interns an externally produced plan (e.g. an AlignedBound
// replacement from the per-spill-class optimizer search) into the pool
// and returns its ID. Interning is keyed by canonical signature, so the
// same plan receives the same ID no matter which run interns it first —
// concurrent discoveries stay comparable step-for-step.
func (s *Space) AddPlan(root *plan.Node) int32 {
	sig := root.Signature()
	s.planMu.Lock()
	defer s.planMu.Unlock()
	if id, ok := s.planSig[sig]; ok {
		return id
	}
	cur := *s.plans.Load()
	id := int32(len(cur))
	next := make([]*PlanInfo, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = &PlanInfo{ID: int(id), Root: root, Sig: sig, spill: s.spillTable(root)}
	s.plans.Store(&next)
	s.planSig[sig] = id
	return id
}

// Optimizer exposes the space's optimizer (shared cost model and query).
func (s *Space) Optimizer() *optimizer.Optimizer { return s.opt }

// Evaluator provides recosting of arbitrary pool plans at arbitrary grid
// locations. Each evaluator owns scratch state; use one per goroutine.
type Evaluator struct {
	s   *Space
	env *cost.Env
	sel []float64
	// optCost, when set, routes OptCost through a demand-driven source
	// (a lazy space settles the point on first touch); nil reads the
	// eager PointCost array directly.
	optCost func(pt int32) float64
}

// NewEvaluator returns a fresh evaluator over the space.
func (s *Space) NewEvaluator() *Evaluator {
	return &Evaluator{s: s, env: s.BaseEnv.Clone(), sel: make([]float64, s.Grid.D)}
}

// Env positions the evaluator's costing environment at the grid point
// and returns it.
func (e *Evaluator) Env(pt int32) *cost.Env {
	e.s.Grid.Sel(int(pt), e.sel)
	optimizer.SetEPPSel(e.env, e.s.Q, e.sel)
	return e.env
}

// PlanCost recosts pool plan planID at the grid point.
func (e *Evaluator) PlanCost(planID, pt int32) float64 {
	return e.s.Model.Cost(e.s.Plan(planID).Root, e.Env(pt)).Cost
}

// SpillCost costs the spill-mode execution of the plan on the given ESS
// dimension at the grid point (the subtree rooted at the epp's join
// node, §3.1.2).
func (e *Evaluator) SpillCost(planID, pt int32, dim int) float64 {
	joinID := e.s.Q.EPPs[dim]
	res, ok := e.s.Model.SpillCost(e.s.Plan(planID).Root, joinID, e.Env(pt))
	if !ok {
		return math.Inf(1)
	}
	return res.Cost
}

// OptCost returns the optimal cost at the grid point, settling it first
// when the evaluator belongs to a lazy source.
func (e *Evaluator) OptCost(pt int32) float64 {
	if e.optCost != nil {
		return e.optCost(pt)
	}
	return e.s.PointCost[pt]
}

// MaxSelIndexWithin returns the largest grid index k along dim such
// that the spill-mode cost of the plan — with dim's selectivity set to
// Vals[k] and all other dimensions taken from the point pt — stays
// within budget. Returns -1 if even index 0 exceeds the budget. This is
// the selectivity the engine is guaranteed to have scanned past when a
// budget-limited spill execution is killed (Lemma 3.1).
func (e *Evaluator) MaxSelIndexWithin(planID, pt int32, dim int, budget float64) int {
	g := e.s.Grid
	base := int(pt) - g.Coord(int(pt), dim)*g.strides[dim]
	// Spill cost is monotone in the dimension: binary search the
	// crossing.
	lo, hi := 0, g.Res-1
	if e.spillAt(planID, base, dim, 0) > budget {
		return -1
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if e.spillAt(planID, base, dim, mid) <= budget {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

func (e *Evaluator) spillAt(planID int32, base, dim, k int) float64 {
	return e.SpillCost(planID, int32(base+k*e.s.Grid.strides[dim]), dim)
}

package ess

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
)

// snapshotBytes serializes the space to a byte slice.
func snapshotBytes(t *testing.T, s *Space) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadRejectsTruncatedSnapshot(t *testing.T) {
	s := buildSpace(t, 8)
	raw := snapshotBytes(t, s)
	for _, n := range []int{0, 5, headerSize - 1, headerSize, headerSize + 7, len(raw) - 1} {
		_, err := Load(bytes.NewReader(raw[:n]), s.Q, s.BaseEnv, s.Model)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: got %v, want ErrCorrupt", n, err)
		}
	}
}

func TestLoadRejectsBitFlips(t *testing.T) {
	s := buildSpace(t, 8)
	raw := snapshotBytes(t, s)
	// Flip one bit in each region: magic, version, length, CRC, payload.
	for _, off := range []int{0, len(snapshotMagic), len(snapshotMagic) + 4,
		len(snapshotMagic) + 12, headerSize + len(raw[headerSize:])/2} {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x40
		_, err := Load(bytes.NewReader(mut), s.Q, s.BaseEnv, s.Model)
		if err == nil {
			t.Fatalf("bit flip at offset %d went undetected", off)
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
			t.Fatalf("bit flip at offset %d: got untyped error %v", off, err)
		}
	}
}

func TestLoadRejectsStaleVersion(t *testing.T) {
	s := buildSpace(t, 8)
	raw := snapshotBytes(t, s)
	binary.LittleEndian.PutUint32(raw[len(snapshotMagic):], SnapshotVersion+1)
	_, err := Load(bytes.NewReader(raw), s.Q, s.BaseEnv, s.Model)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("stale version: got %v, want ErrVersion", err)
	}
}

func TestLoadRejectsOversizedLength(t *testing.T) {
	s := buildSpace(t, 8)
	raw := snapshotBytes(t, s)
	binary.LittleEndian.PutUint64(raw[len(snapshotMagic)+4:], maxSnapshotBytes+1)
	_, err := Load(bytes.NewReader(raw), s.Q, s.BaseEnv, s.Model)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized length: got %v, want ErrCorrupt", err)
	}
}

func TestSaveFileAtomic(t *testing.T) {
	s := buildSpace(t, 8)
	dir := t.TempDir()
	path := filepath.Join(dir, "eq.snap")
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path, s.Q, s.BaseEnv, s.Model, LoadOptions{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Grid.NumPoints() != s.Grid.NumPoints() {
		t.Fatal("reloaded grid differs")
	}
	// No temp droppings after a clean save.
	if left := globTemps(t, dir); len(left) != 0 {
		t.Fatalf("clean save left temps: %v", left)
	}
}

func TestSaveFileCrashLeavesNoPartialFile(t *testing.T) {
	s := buildSpace(t, 8)
	dir := t.TempDir()
	path := filepath.Join(dir, "eq.snap")

	// First persist a good snapshot, then crash an overwrite mid-write:
	// the good snapshot must survive byte for byte.
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	in := faultinject.New(faultinject.Config{
		Seed:  7,
		Rates: map[faultinject.Site]float64{faultinject.SiteSnapshotSave: 1},
	})
	err = s.SaveFileWith(path, in)
	if err == nil {
		t.Fatal("fault-injected save must fail")
	}
	if !faultinject.IsTransient(err) {
		t.Fatalf("injected fault lost its classification: %v", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("crashed overwrite modified the target snapshot")
	}
	if left := globTemps(t, dir); len(left) != 0 {
		t.Fatalf("crashed save left temps: %v", left)
	}

	// Crash a fresh save (no prior snapshot): target must not exist.
	fresh := filepath.Join(dir, "fresh.snap")
	in.Reset()
	if err := s.SaveFileWith(fresh, in); err == nil {
		t.Fatal("fault-injected save must fail")
	}
	if _, err := os.Stat(fresh); !os.IsNotExist(err) {
		t.Fatalf("crashed fresh save left a partial target: %v", err)
	}
}

func TestSweepTempsReclaimsOrphans(t *testing.T) {
	dir := t.TempDir()
	orphan, err := os.CreateTemp(dir, tempPattern)
	if err != nil {
		t.Fatal(err)
	}
	orphan.WriteString("partial snapshot bytes")
	orphan.Close()
	unrelated := filepath.Join(dir, "keep.snap")
	if err := os.WriteFile(unrelated, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	removed := SweepTemps(dir)
	if len(removed) != 1 || removed[0] != orphan.Name() {
		t.Fatalf("sweep removed %v, want exactly the orphan", removed)
	}
	if _, err := os.Stat(unrelated); err != nil {
		t.Fatal("sweep touched an unrelated file")
	}
}

func TestStrictLoadCatchesContourCostDrift(t *testing.T) {
	s := buildSpace(t, 8)

	// Corrupt the cost of one contour-member point that is neither the
	// origin, terminus, nor midpoint — invisible to the spot check.
	victim := int32(-1)
	spot := map[int32]bool{
		int32(s.Grid.Origin()): true, int32(s.Grid.Terminus()): true,
		int32(s.Grid.NumPoints() / 2): true,
	}
	for _, ct := range s.Contours {
		for _, pt := range ct.Points {
			if !spot[pt] {
				victim = pt
				break
			}
		}
		if victim >= 0 {
			break
		}
	}
	if victim < 0 {
		t.Skip("no non-spot contour point at this resolution")
	}
	// Drift must clear the 1e-6 recost tolerance but stay far below the
	// contour bucket width, so the victim keeps its contour membership
	// in the reloaded space.
	const drift = 1 + 1e-3
	s.PointCost[victim] *= drift
	raw := snapshotBytes(t, s)
	s.PointCost[victim] /= drift

	if _, err := LoadWith(bytes.NewReader(raw), s.Q, s.BaseEnv, s.Model, LoadOptions{}); err != nil {
		t.Fatalf("spot check unexpectedly caught the drift: %v", err)
	}
	if _, err := LoadWith(bytes.NewReader(raw), s.Q, s.BaseEnv, s.Model, LoadOptions{Strict: true}); err == nil {
		t.Fatal("strict load must catch contour-member cost drift")
	}
}

func globTemps(t *testing.T, dir string) []string {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, tempPattern))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

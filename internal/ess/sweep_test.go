package ess

import (
	"errors"
	"sync/atomic"
	"testing"
)

// buildSpaceCfg is buildSpace with an explicit sweep configuration.
func buildSpaceCfg(t testing.TB, cfg Config) *Space {
	t.Helper()
	s := buildSpace(t, 2) // warm path for fixtures; rebuilt below
	sp, err := Build(s.Q, s.BaseEnv, s.Model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestRunParallelCoversAllAndStopsOnError(t *testing.T) {
	var hits atomic.Int64
	if err := runParallel(4, 100, func(w, i int) error {
		hits.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 100 {
		t.Fatalf("covered %d/100 items", hits.Load())
	}
	boom := errors.New("boom")
	if err := runParallel(4, 1000, func(w, i int) error {
		if i == 3 {
			return boom
		}
		return nil
	}); !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
}

func TestLatticeGeometry(t *testing.T) {
	l := newLattice(12, 3)
	want := []int{0, 3, 6, 9, 11}
	if len(l.idx) != len(want) {
		t.Fatalf("lattice idx = %v", l.idx)
	}
	for i, v := range want {
		if l.idx[i] != v {
			t.Fatalf("lattice idx = %v, want %v", l.idx, want)
		}
	}
	for i := 0; i < 12; i++ {
		if l.floor[i] > i || i > l.ceil[i] {
			t.Fatalf("floor/ceil disordered at %d: [%d,%d]", i, l.floor[i], l.ceil[i])
		}
		if !l.onLat[l.floor[i]] || !l.onLat[l.ceil[i]] {
			t.Fatalf("floor/ceil off lattice at %d", i)
		}
		if l.onLat[i] && (l.floor[i] != i || l.ceil[i] != i) {
			t.Fatalf("lattice point %d not its own floor/ceil", i)
		}
	}
	// Grid res smaller than the stride still includes both ends.
	l = newLattice(2, 3)
	if len(l.idx) != 2 || l.idx[0] != 0 || l.idx[1] != 1 {
		t.Fatalf("res-2 lattice = %v", l.idx)
	}
}

func TestSliceKeyHighIndexRegression(t *testing.T) {
	// byte(v+1) used to map 255 and -1 to the same byte.
	if sliceKey([]int{255, -1}) == sliceKey([]int{-1, 255}) {
		t.Fatal("sliceKey collides on 255 vs -1")
	}
	seen := map[string][]int{}
	for _, learned := range [][]int{
		{-1, -1}, {0, -1}, {-1, 0}, {255, -1}, {-1, 255},
		{254, -1}, {256, -1}, {511, -1}, {255, 255}, {1000, 2},
	} {
		k := sliceKey(learned)
		if prev, ok := seen[k]; ok {
			t.Fatalf("sliceKey collision: %v vs %v", prev, learned)
		}
		seen[k] = learned
	}
}

func TestRecostStatsAccounting(t *testing.T) {
	s := buildSpace(t, 12) // default config → recost pipeline
	st := s.Stats
	if st.Points != 144 {
		t.Fatalf("points = %d", st.Points)
	}
	if st.LatticeDP == 0 {
		t.Fatal("recost sweep reported no lattice DP calls")
	}
	if st.DPCalls != st.LatticeDP+st.Fallbacks+st.Repairs {
		t.Fatalf("DP accounting broken: %d != %d+%d+%d",
			st.DPCalls, st.LatticeDP, st.Fallbacks, st.Repairs)
	}
	if st.LatticeDP+st.RecostPoints+st.Fallbacks+st.Repairs != st.Points {
		t.Fatalf("point accounting broken: %+v", st)
	}
	if st.DPCalls >= st.Points {
		t.Fatalf("recost sweep ran %d DPs for %d points — no savings", st.DPCalls, st.Points)
	}
	if r := st.FallbackRate(); r < 0 || r > 1 {
		t.Fatalf("fallback rate %v out of range", r)
	}
	if st.RecostPoints > 0 && st.RecostCalls == 0 {
		t.Fatal("recost points settled without recost calls")
	}
}

func TestExactConfigStats(t *testing.T) {
	s := buildSpaceCfg(t, Config{Res: 6, Exact: true})
	st := s.Stats
	if st.DPCalls != st.Points || st.LatticeDP != 0 || st.RecostPoints != 0 || st.Fallbacks != 0 {
		t.Fatalf("exact sweep stats: %+v", st)
	}
}

// TestRecostSurfaceValidates checks the default recost surface against a
// full exact re-optimization: never below the optimum, within θ above.
func TestRecostSurfaceValidates(t *testing.T) {
	s := buildSpace(t, 12)
	if err := s.Validate(DefaultTheta); err != nil {
		t.Fatal(err)
	}
}

// TestThetaExactReproducesExact requires the ThetaExact sentinel to
// reproduce the exact surface bit-for-bit (costs, per-point plan
// signatures, contours).
func TestThetaExactReproducesExact(t *testing.T) {
	exact := buildSpaceCfg(t, Config{Res: 8, Exact: true})
	zero := buildSpaceCfg(t, Config{Res: 8, Theta: ThetaExact})
	if err := zero.Validate(0); err != nil {
		t.Fatal(err)
	}
	assertSameSurface(t, exact, zero)
}

// assertSameSurface compares two spaces point-by-point: bitwise equal
// costs, identical plan signatures, identical contours. Plan pool IDs
// may differ (interning order is scheduling-dependent), signatures not.
func assertSameSurface(t *testing.T, a, b *Space) {
	t.Helper()
	if a.Grid.NumPoints() != b.Grid.NumPoints() {
		t.Fatalf("grids differ: %d vs %d points", a.Grid.NumPoints(), b.Grid.NumPoints())
	}
	for pt := 0; pt < a.Grid.NumPoints(); pt++ {
		if a.PointCost[pt] != b.PointCost[pt] {
			t.Fatalf("point %d cost %v != %v", pt, a.PointCost[pt], b.PointCost[pt])
		}
		if sa, sb := a.Plan(a.PointPlan[pt]).Sig, b.Plan(b.PointPlan[pt]).Sig; sa != sb {
			t.Fatalf("point %d plan %s != %s", pt, sa, sb)
		}
	}
	if len(a.Contours) != len(b.Contours) {
		t.Fatalf("contour count %d != %d", len(a.Contours), len(b.Contours))
	}
	for i := range a.Contours {
		ca, cb := a.Contours[i], b.Contours[i]
		if ca.Cost != cb.Cost || len(ca.Points) != len(cb.Points) {
			t.Fatalf("contour %d differs: cost %v/%v, %d/%d points",
				i, ca.Cost, cb.Cost, len(ca.Points), len(cb.Points))
		}
		for j := range ca.Points {
			if ca.Points[j] != cb.Points[j] {
				t.Fatalf("contour %d point %d: %d != %d", i, j, ca.Points[j], cb.Points[j])
			}
		}
	}
}

// TestContoursMatchRescanReference compares the binary-search contour
// extraction against the original per-contour full-rescan algorithm.
func TestContoursMatchRescanReference(t *testing.T) {
	s := buildSpace(t, 12)
	pts := s.allPoints()
	free := []int{0, 1}
	costs := s.ContourCosts()
	const eps = 1e-9
	for i, cc := range costs {
		budget := cc * (1 + eps)
		var members []int32
		for _, pt := range pts {
			if s.PointCost[pt] > budget {
				continue
			}
			maximal := true
			for _, d := range free {
				if nxt := s.Grid.Step(int(pt), d); nxt >= 0 && s.PointCost[nxt] <= budget {
					maximal = false
					break
				}
			}
			if maximal {
				members = append(members, pt)
			}
		}
		got := s.Contours[i].Points
		if len(got) != len(members) {
			t.Fatalf("contour %d: %d members, reference %d", i, len(got), len(members))
		}
		for j := range members {
			if got[j] != members[j] {
				t.Fatalf("contour %d member %d: %d != reference %d", i, j, got[j], members[j])
			}
		}
	}
}

// TestSweepParallelWorkers exercises the work-queue sweep with many
// workers (run under -race in CI).
func TestSweepParallelWorkers(t *testing.T) {
	s := buildSpaceCfg(t, Config{Res: 10, Workers: 8})
	if err := s.Validate(DefaultTheta); err != nil {
		t.Fatal(err)
	}
	// Worker count must not change the exact surface.
	assertSameSurface(t,
		buildSpaceCfg(t, Config{Res: 10, Workers: 8, Exact: true}),
		buildSpaceCfg(t, Config{Res: 10, Workers: 3, Exact: true}))
}

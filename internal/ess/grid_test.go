package ess

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewGridValues(t *testing.T) {
	g := NewGrid(2, 5, 1e-4)
	if g.NumPoints() != 25 {
		t.Fatalf("NumPoints = %d, want 25", g.NumPoints())
	}
	if g.Vals[0] != 1e-4 {
		t.Errorf("Vals[0] = %v", g.Vals[0])
	}
	if g.Vals[4] != 1 {
		t.Errorf("Vals[last] = %v, want exactly 1", g.Vals[4])
	}
	// Geometric spacing: constant ratio.
	r0 := g.Vals[1] / g.Vals[0]
	for i := 2; i < 5; i++ {
		if math.Abs(g.Vals[i]/g.Vals[i-1]-r0) > 1e-9*r0 {
			t.Errorf("non-geometric spacing at %d", i)
		}
	}
}

func TestNewGridPanics(t *testing.T) {
	cases := []func(){
		func() { NewGrid(0, 5, 0.1) },
		func() { NewGrid(2, 1, 0.1) },
		func() { NewGrid(2, 5, 0) },
		func() { NewGrid(2, 5, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			f()
		}()
	}
}

func TestLinearCoordsRoundTrip(t *testing.T) {
	g := NewGrid(3, 4, 1e-3)
	f := func(a, b, c uint8) bool {
		idx := []int{int(a) % 4, int(b) % 4, int(c) % 4}
		lin := g.Linear(idx)
		got := g.Coords(lin, nil)
		return got[0] == idx[0] && got[1] == idx[1] && got[2] == idx[2]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinearPanicsOutOfRange(t *testing.T) {
	g := NewGrid(2, 4, 1e-3)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range index should panic")
		}
	}()
	g.Linear([]int{4, 0})
}

func TestCoordAndStep(t *testing.T) {
	g := NewGrid(2, 3, 1e-2)
	lin := g.Linear([]int{1, 2})
	if g.Coord(lin, 0) != 1 || g.Coord(lin, 1) != 2 {
		t.Fatal("Coord broken")
	}
	if g.Step(lin, 1) != -1 {
		t.Error("Step off the grid should be -1")
	}
	up := g.Step(lin, 0)
	if up < 0 || g.Coord(up, 0) != 2 || g.Coord(up, 1) != 2 {
		t.Error("Step along dim 0 broken")
	}
}

func TestSelValues(t *testing.T) {
	g := NewGrid(2, 4, 1e-3)
	sel := g.Sel(g.Terminus(), nil)
	if sel[0] != 1 || sel[1] != 1 {
		t.Errorf("terminus sel = %v", sel)
	}
	sel = g.Sel(g.Origin(), sel)
	if sel[0] != 1e-3 || sel[1] != 1e-3 {
		t.Errorf("origin sel = %v", sel)
	}
}

func TestDominance(t *testing.T) {
	g := NewGrid(2, 4, 1e-3)
	a := g.Linear([]int{2, 3})
	b := g.Linear([]int{1, 3})
	c := g.Linear([]int{3, 0})
	if !g.Dominates(a, b) || g.Dominates(b, a) {
		t.Error("Dominates broken")
	}
	if g.Dominates(a, c) || g.Dominates(c, a) {
		t.Error("incomparable points should not dominate")
	}
	if g.StrictlyDominates(a, b) {
		t.Error("equal coordinate on dim 1 is not strict")
	}
	d := g.Linear([]int{0, 0})
	if !g.StrictlyDominates(a, d) {
		t.Error("strict dominance expected")
	}
	if !g.Dominates(a, a) {
		t.Error("a point dominates itself (non-strict)")
	}
}

func TestNearestIndex(t *testing.T) {
	g := NewGrid(1, 5, 1e-4)
	if g.NearestIndex(1e-9) != 0 {
		t.Error("below range clamps to 0")
	}
	if g.NearestIndex(2) != 4 {
		t.Error("above range clamps to last")
	}
	for i, v := range g.Vals {
		if g.NearestIndex(v) != i {
			t.Errorf("exact value %v should map to its own index %d", v, i)
		}
	}
	// A value geometrically just above Vals[1] still maps to 1.
	if g.NearestIndex(g.Vals[1]*1.1) != 1 {
		t.Error("near value mapping broken")
	}
}

func TestOriginTerminus(t *testing.T) {
	g := NewGrid(3, 4, 1e-3)
	if g.Origin() != 0 || g.Terminus() != 63 {
		t.Fatalf("origin/terminus = %d/%d", g.Origin(), g.Terminus())
	}
}

// Package ess implements the Error-prone Selectivity Space machinery of
// the paper (§2): a discretized D-dimensional selectivity grid, the
// optimal cost surface obtained by optimizing at every grid location,
// the doubling iso-cost contours cut through that surface, the POSP
// plan pool, slice re-contouring for partially learned selectivities,
// and the anorexic reduction used by the PlanBouquet baseline.
package ess

import (
	"fmt"
	"math"
)

// Grid is the discretization of [SelMin, 1]^D. Values along each
// dimension are geometrically spaced, matching the log-scale ESS plots
// of the paper (e.g. Fig. 7).
type Grid struct {
	// D is the dimensionality (number of epps).
	D int
	// Res is the number of grid values per dimension.
	Res int
	// Vals are the selectivity values, ascending; Vals[Res-1] == 1.
	Vals []float64
	// strides[d] is the linear-index stride of dimension d (row-major,
	// dimension 0 outermost).
	strides []int
	n       int
}

// NewGrid builds a geometric grid with res points per dimension from
// selMin to 1. res must be ≥ 2 and selMin in (0, 1).
func NewGrid(d, res int, selMin float64) *Grid {
	if d < 1 {
		panic("ess: grid dimension must be ≥ 1")
	}
	if res < 2 {
		panic("ess: grid resolution must be ≥ 2")
	}
	if selMin <= 0 || selMin >= 1 {
		panic("ess: selMin must be in (0,1)")
	}
	g := &Grid{D: d, Res: res}
	g.Vals = make([]float64, res)
	ratio := math.Pow(1/selMin, 1/float64(res-1))
	v := selMin
	for i := 0; i < res; i++ {
		g.Vals[i] = v
		v *= ratio
	}
	g.Vals[res-1] = 1 // exact despite float drift
	g.strides = make([]int, d)
	s := 1
	for dim := d - 1; dim >= 0; dim-- {
		g.strides[dim] = s
		s *= res
	}
	g.n = s
	return g
}

// NumPoints returns the total number of grid locations.
func (g *Grid) NumPoints() int { return g.n }

// Linear converts per-dimension indexes to a linear point index.
func (g *Grid) Linear(idx []int) int {
	lin := 0
	for d, i := range idx {
		if i < 0 || i >= g.Res {
			panic(fmt.Sprintf("ess: index %d out of range on dim %d", i, d))
		}
		lin += i * g.strides[d]
	}
	return lin
}

// Coords fills out with the per-dimension indexes of the linear point
// and returns it. out must have length D (nil allocates).
func (g *Grid) Coords(lin int, out []int) []int {
	if out == nil {
		out = make([]int, g.D)
	}
	for d := 0; d < g.D; d++ {
		out[d] = lin / g.strides[d] % g.Res
	}
	return out
}

// Coord returns the index of dimension d at linear point lin.
func (g *Grid) Coord(lin, d int) int {
	return lin / g.strides[d] % g.Res
}

// Step returns the linear index of the point one grid step along
// dimension d from lin, or -1 if that would leave the grid.
func (g *Grid) Step(lin, d int) int {
	if g.Coord(lin, d) == g.Res-1 {
		return -1
	}
	return lin + g.strides[d]
}

// StepDown returns the linear index of the point one grid step back
// along dimension d from lin, or -1 if that would leave the grid.
func (g *Grid) StepDown(lin, d int) int {
	if g.Coord(lin, d) == 0 {
		return -1
	}
	return lin - g.strides[d]
}

// Sel fills sel with the selectivity values at the linear point.
func (g *Grid) Sel(lin int, sel []float64) []float64 {
	if sel == nil {
		sel = make([]float64, g.D)
	}
	for d := 0; d < g.D; d++ {
		sel[d] = g.Vals[g.Coord(lin, d)]
	}
	return sel
}

// Origin returns the linear index of the all-minimum corner.
func (g *Grid) Origin() int { return 0 }

// Terminus returns the linear index of the all-ones corner (§2.1).
func (g *Grid) Terminus() int { return g.n - 1 }

// Dominates reports whether point a dominates point b (a.j ≥ b.j on
// every dimension, per §2.1).
func (g *Grid) Dominates(a, b int) bool {
	for d := 0; d < g.D; d++ {
		if g.Coord(a, d) < g.Coord(b, d) {
			return false
		}
	}
	return true
}

// StrictlyDominates reports a ≻ b: a.j > b.j on every dimension.
func (g *Grid) StrictlyDominates(a, b int) bool {
	for d := 0; d < g.D; d++ {
		if g.Coord(a, d) <= g.Coord(b, d) {
			return false
		}
	}
	return true
}

// NearestIndex returns the grid index on one dimension whose value is
// closest to sel in log space, clamping to the grid range.
func (g *Grid) NearestIndex(sel float64) int {
	if sel <= g.Vals[0] {
		return 0
	}
	if sel >= 1 {
		return g.Res - 1
	}
	best, bestDist := 0, math.Inf(1)
	for i, v := range g.Vals {
		d := math.Abs(math.Log(v) - math.Log(sel))
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

package ess

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/cost"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/query"
)

// LazySpace is the demand-driven ContourSource: instead of sweeping the
// full res^D grid up front, it settles grid points only when a contour
// enumeration, a simulated execution, or a planner decision touches
// them. Iso-cost contours are materialized one budget step at a time as
// the discovery algorithms climb the ladder, walking the cost surface's
// monotone structure (per-line binary search with subtree pruning) so
// the work tracks the contour's surface area, not the grid volume.
//
// Points are settled recost-first from the coarse lattice — the exact
// DP runs at the 2^D surrounding lattice corners and the off-lattice
// point is covered by recosting the corners' plans under PR 2's
// log-interpolated anchor gate — or exactly when the gate fails or the
// configuration demands it (Config.Exact / ThetaExact). Unlike the
// eager sweep there are no global relaxation/repair phases, so
// eager-vs-lazy bit equality is only guaranteed in exact mode; in
// recost mode each contour point's membership is verified directly
// against its grid successors, so slight monotonicity slips cannot
// produce an invalid contour.
//
// Concurrency: the settled-flag array uses a release-store protocol
// (the cost/plan are written under a striped mutex before the flag is
// published), so readers that observe the flag see the values without
// locking. Settled values are immutable; online refinement never
// rewrites them in place but publishes a copy-on-write overlay behind
// an atomic pointer, bumping the epoch and invalidating the contour
// memos.
type LazySpace struct {
	inner *Space
	cfg   Config

	exactMode bool
	theta     float64

	lat *lattice
	// cellLo/cellHi give, per grid coordinate, the lattice indexes of
	// the owning coarse interval ([idx[i], idx[i+1]), top closed) — the
	// corner anchors used when settling the coordinate by recost.
	cellLo, cellHi []int

	// costs is the fixed budget sequence CC_1..CC_m (Cmin and Cmax are
	// settled exactly at construction and never refined); budgets adds
	// the eager extractor's epsilon slack.
	costs   []float64
	budgets []float64

	flags []atomic.Uint32
	locks []sync.Mutex

	workers sync.Pool

	// state is the refinement overlay: an immutable refined-value map
	// plus the contour memo for the current epoch. Refinement publishes
	// a fresh state; in-flight readers keep a coherent snapshot.
	state atomic.Pointer[lazyState]

	refMu   sync.Mutex
	pending map[[2]int]struct{}

	// cells memoizes per-cell anchor data (corner indexes, their exact
	// log costs and plans), keyed by the cell's all-lo corner. A cell is
	// shared by every off-lattice point inside it, so the corner DP
	// resolution, the log transforms, and the candidate plan list are
	// paid once per demanded cell instead of once per settled point.
	cells sync.Map

	stats lazyStats
}

// cellInfo is the immutable per-cell anchor block: the 2^D lattice
// corners of the cell, their exactly solved costs in log space, and
// their optimal plans (the recost candidate set).
type cellInfo struct {
	corners []int32
	logc    []float64
	plans   []int32
}

const (
	flagSolved uint32 = 1 << iota
	flagExact
	flagRefined
)

const lazyLockShards = 256

// lazyState is one refinement epoch: the copy-on-write overlay of
// exactly re-solved point values and the contour memo keyed by
// (slice, contour). Both are immutable once published (the sync.Map
// only ever gains entries that are pure functions of the epoch).
type lazyState struct {
	refined  map[int32]refinedVal
	contours sync.Map
	epoch    uint64
}

type refinedVal struct {
	cost float64
	plan int32
}

type lazyStats struct {
	settled       atomic.Int64
	dpCalls       atomic.Int64
	recostPoints  atomic.Int64
	recostCalls   atomic.Int64
	fallbacks     atomic.Int64
	hits          atomic.Int64
	misses        atomic.Int64
	contoursBuilt atomic.Int64
	refinements   atomic.Int64
	refinedPoints atomic.Int64
}

// lazyWorker is per-goroutine settle scratch, pooled across callers.
type lazyWorker struct {
	runner *optimizer.Runner
	env    *cost.Env
	sel    []float64
	coords []int
	wt     []float64
	fold   []float64
	tried  []int32
}

// lazyDefaultTheta is the lazy-mode recost gate width. The eager sweep
// wants a dense anchor lattice and a tight gate because every lattice
// DP is amortized over the full grid; in the lazy regime each lattice
// DP is pure cost (only demanded cells ever use their anchors), so the
// lattice coarsens with resolution and the gate widens to match the
// wider cells. Explicit Config values always win.
const lazyDefaultTheta = 0.65

// lazyDefaults applies the lazy-mode defaults above to unset fields.
func lazyDefaults(cfg Config) Config {
	if cfg.CoarseStep == 0 && cfg.Res > 2*DefaultCoarseStep {
		cfg.CoarseStep = max(DefaultCoarseStep, cfg.Res/2)
	}
	if cfg.Theta == 0 {
		cfg.Theta = lazyDefaultTheta
	}
	return cfg
}

// BuildLazy constructs a lazy search space over the query: only the
// grid origin and terminus are solved (exactly) at construction, fixing
// the contour ladder; everything else settles on demand.
func BuildLazy(q *query.Query, baseEnv *cost.Env, model *cost.Model, cfg Config) (*LazySpace, error) {
	cfg = lazyDefaults(cfg).withDefaults()
	if q.D() < 1 {
		return nil, fmt.Errorf("ess: query %s has no epps", q.Name)
	}
	g := NewGrid(q.D(), cfg.Res, cfg.SelMin)
	s := &Space{
		Q:         q,
		Grid:      g,
		Model:     model,
		BaseEnv:   baseEnv,
		PointPlan: make([]int32, g.NumPoints()),
		PointCost: make([]float64, g.NumPoints()),
		CostRatio: cfg.CostRatio,
		opt:       optimizer.New(q, model),
		planSig:   make(map[string]int32),
	}
	empty := make([]*PlanInfo, 0)
	s.plans.Store(&empty)

	ls := &LazySpace{
		inner:     s,
		cfg:       cfg,
		exactMode: cfg.Exact || cfg.Theta <= 0 || cfg.CoarseStep <= 1,
		theta:     cfg.Theta,
		lat:       newLattice(cfg.Res, max(cfg.CoarseStep, 2)),
		flags:     make([]atomic.Uint32, g.NumPoints()),
		locks:     make([]sync.Mutex, lazyLockShards),
		pending:   make(map[[2]int]struct{}),
	}
	ls.cellLo = make([]int, cfg.Res)
	ls.cellHi = make([]int, cfg.Res)
	for i := 0; i < len(ls.lat.idx)-1; i++ {
		lo, hi := ls.lat.idx[i], ls.lat.idx[i+1]
		for c := lo; c < hi; c++ {
			ls.cellLo[c], ls.cellHi[c] = lo, hi
		}
	}
	ls.cellLo[cfg.Res-1] = ls.lat.idx[len(ls.lat.idx)-2]
	ls.cellHi[cfg.Res-1] = cfg.Res - 1
	ls.workers.New = func() any {
		return &lazyWorker{
			runner: s.opt.NewRunner(),
			env:    s.BaseEnv.Clone(),
			sel:    make([]float64, g.D),
			coords: make([]int, g.D),
			wt:     make([]float64, g.D),
			fold:   make([]float64, 1<<uint(g.D)),
			tried:  make([]int32, 0, 8),
		}
	}
	ls.state.Store(&lazyState{refined: map[int32]refinedVal{}})

	if err := ls.solveExact(int32(g.Origin())); err != nil {
		return nil, err
	}
	if err := ls.solveExact(int32(g.Terminus())); err != nil {
		return nil, err
	}
	s.Cmin = s.PointCost[g.Origin()]
	s.Cmax = s.PointCost[g.Terminus()]
	if s.Cmin <= 0 || s.Cmax < s.Cmin {
		return nil, fmt.Errorf("ess: degenerate cost surface (Cmin=%v, Cmax=%v)", s.Cmin, s.Cmax)
	}
	ls.costs = s.ContourCosts()
	ls.budgets = make([]float64, len(ls.costs))
	for i, cc := range ls.costs {
		ls.budgets[i] = cc * (1 + 1e-9)
	}
	return ls, nil
}

// Inner returns the backing space skeleton: the shared grid, model,
// plan pool, and solve-into point arrays. It is exposed for persistence
// and tests; reading unsettled entries of its point arrays is
// undefined.
func (ls *LazySpace) Inner() *Space { return ls.inner }

// --- ContourSource conformance ----------------------------------------

// Query returns the underlying query.
func (ls *LazySpace) Query() *query.Query { return ls.inner.Q }

// Geometry returns the ESS grid.
func (ls *LazySpace) Geometry() *Grid { return ls.inner.Grid }

// Bounds returns (Cmin, Cmax).
func (ls *LazySpace) Bounds() (float64, float64) { return ls.inner.Cmin, ls.inner.Cmax }

// Ratio returns the contour spacing.
func (ls *LazySpace) Ratio() float64 { return ls.inner.CostRatio }

// ContourCosts returns the budget sequence CC_1..CC_m.
func (ls *LazySpace) ContourCosts() []float64 {
	return append([]float64(nil), ls.costs...)
}

// NumContours returns the number of iso-cost contours.
func (ls *LazySpace) NumContours() int { return len(ls.costs) }

// Plan returns the pool entry with the given ID.
func (ls *LazySpace) Plan(id int32) *PlanInfo { return ls.inner.Plan(id) }

// NumPlans returns the current pool size.
func (ls *LazySpace) NumPlans() int { return ls.inner.NumPlans() }

// BasePlans returns the current pool snapshot. A lazy source has no
// frozen compile-time pool — the pool grows as points settle — so
// callers get the plans discovered so far; heuristics scoring this set
// are deterministic per epoch only.
func (ls *LazySpace) BasePlans() []*PlanInfo { return ls.inner.Plans() }

// AddPlan interns an externally produced plan into the shared pool.
func (ls *LazySpace) AddPlan(root *plan.Node) int32 { return ls.inner.AddPlan(root) }

// SpillDim returns the spill dimension of the plan under the mask.
func (ls *LazySpace) SpillDim(planID int32, remMask uint16) int {
	return ls.inner.SpillDim(planID, remMask)
}

// Optimizer exposes the shared optimizer.
func (ls *LazySpace) Optimizer() *optimizer.Optimizer { return ls.inner.opt }

// NewEvaluator returns an evaluator whose OptCost settles lazily.
func (ls *LazySpace) NewEvaluator() *Evaluator {
	ev := ls.inner.NewEvaluator()
	ev.optCost = ls.CostAt
	return ev
}

// Epoch returns the refinement epoch.
func (ls *LazySpace) Epoch() uint64 { return ls.state.Load().epoch }

// CostAt returns the optimal cost at the grid point, settling it on
// first touch. Refined points read from the current overlay.
func (ls *LazySpace) CostAt(pt int32) float64 {
	if st := ls.state.Load(); len(st.refined) > 0 {
		if r, ok := st.refined[pt]; ok {
			return r.cost
		}
	}
	ls.ensure(pt)
	return ls.inner.PointCost[pt]
}

// PlanAt returns the optimal plan ID at the grid point, settling it on
// first touch.
func (ls *LazySpace) PlanAt(pt int32) int32 {
	if st := ls.state.Load(); len(st.refined) > 0 {
		if r, ok := st.refined[pt]; ok {
			return r.plan
		}
	}
	ls.ensure(pt)
	return ls.inner.PointPlan[pt]
}

// ContourAt materializes (and memoizes, per epoch) contour ci of the
// slice pinned by learned.
func (ls *LazySpace) ContourAt(learned []int, ci int) *Contour {
	st := ls.state.Load()
	key := ls.contourKey(learned, ci)
	if v, ok := st.contours.Load(key); ok {
		ls.stats.hits.Add(1)
		return v.(*Contour)
	}
	ls.stats.misses.Add(1)
	ct := ls.buildContour(st, learned, ci)
	ls.stats.contoursBuilt.Add(1)
	actual, _ := st.contours.LoadOrStore(key, ct)
	return actual.(*Contour)
}

// Profile reports the demand-driven work profile.
func (ls *LazySpace) Profile() BuildProfile {
	mode := "lazy-recost"
	if ls.exactMode {
		mode = "lazy-exact"
	}
	return BuildProfile{
		Mode:          mode,
		Points:        ls.inner.Grid.NumPoints(),
		Settled:       int(ls.stats.settled.Load()),
		DPCalls:       ls.stats.dpCalls.Load(),
		RecostPoints:  ls.stats.recostPoints.Load(),
		RecostCalls:   ls.stats.recostCalls.Load(),
		Fallbacks:     ls.stats.fallbacks.Load(),
		ContoursBuilt: ls.stats.contoursBuilt.Load(),
		Hits:          ls.stats.hits.Load(),
		Misses:        ls.stats.misses.Load(),
		Refinements:   ls.stats.refinements.Load(),
		RefinedPoints: ls.stats.refinedPoints.Load(),
		Epoch:         ls.Epoch(),
	}
}

var _ ContourSource = (*LazySpace)(nil)

// --- settling ----------------------------------------------------------

func (ls *LazySpace) lockFor(pt int32) *sync.Mutex {
	return &ls.locks[int(pt)&(lazyLockShards-1)]
}

func (ls *LazySpace) getWorker() *lazyWorker { return ls.workers.Get().(*lazyWorker) }
func (ls *LazySpace) putWorker(w *lazyWorker) {
	ls.workers.Put(w)
}

func (w *lazyWorker) position(s *Space, pt int32) {
	s.Grid.Sel(int(pt), w.sel)
	optimizer.SetEPPSel(w.env, s.Q, w.sel)
}

// ensure settles pt if it is not settled yet.
func (ls *LazySpace) ensure(pt int32) {
	if ls.flags[pt].Load()&flagSolved != 0 {
		ls.stats.hits.Add(1)
		return
	}
	ls.stats.misses.Add(1)
	if ls.exactMode || ls.onLattice(pt) {
		if err := ls.solveExact(pt); err != nil {
			panic(err)
		}
		return
	}
	if err := ls.solveRecost(pt); err != nil {
		panic(err)
	}
}

func (ls *LazySpace) onLattice(pt int32) bool {
	g := ls.inner.Grid
	for d := 0; d < g.D; d++ {
		if !ls.lat.onLat[g.Coord(int(pt), d)] {
			return false
		}
	}
	return true
}

// solveExact settles pt with the exact DP (idempotent). The lock-free
// flag check makes re-requests of an already settled point (the common
// case for shared cell corners) free.
func (ls *LazySpace) solveExact(pt int32) error {
	if ls.flags[pt].Load()&flagSolved != 0 {
		return nil
	}
	lk := ls.lockFor(pt)
	lk.Lock()
	defer lk.Unlock()
	if ls.flags[pt].Load()&flagSolved != 0 {
		return nil
	}
	return ls.solveExactLocked(pt)
}

// solveExactLocked runs the DP at pt; the caller holds pt's lock shard
// and has verified the point is unsettled.
func (ls *LazySpace) solveExactLocked(pt int32) error {
	s := ls.inner
	w := ls.getWorker()
	defer ls.putWorker(w)
	w.position(s, pt)
	best := w.runner.Best(w.env)
	if best == nil {
		return fmt.Errorf("ess: optimizer found no plan at point %d", pt)
	}
	id := s.AddPlan(best.Root)
	s.PointPlan[pt] = id
	s.PointCost[pt] = best.Cost
	ls.stats.dpCalls.Add(1)
	ls.stats.settled.Add(1)
	ls.flags[pt].Store(flagSolved | flagExact) // release: values above are published
	return nil
}

// cellFor returns (building and memoizing on first demand) the anchor
// block of the cell whose all-lo corner is loPt. Corner DPs are
// resolved here, outside any point lock, so settles never nest locks.
func (ls *LazySpace) cellFor(loPt int32, coords []int) (*cellInfo, error) {
	if v, ok := ls.cells.Load(loPt); ok {
		return v.(*cellInfo), nil
	}
	s := ls.inner
	g := s.Grid
	D := g.D
	nCorners := 1 << uint(D)
	ci := &cellInfo{
		corners: make([]int32, nCorners),
		logc:    make([]float64, nCorners),
		plans:   make([]int32, nCorners),
	}
	for m := 0; m < nCorners; m++ {
		lin := 0
		for d := 0; d < D; d++ {
			c := ls.cellLo[coords[d]]
			if m&(1<<uint(d)) != 0 {
				c = ls.cellHi[coords[d]]
			}
			lin += c * g.strides[d]
		}
		if err := ls.solveExact(int32(lin)); err != nil {
			return nil, err
		}
		ci.corners[m] = int32(lin)
		ci.logc[m] = math.Log(s.PointCost[lin])
		ci.plans[m] = s.PointPlan[lin]
	}
	actual, _ := ls.cells.LoadOrStore(loPt, ci)
	return actual.(*cellInfo), nil
}

// solveRecost settles an off-lattice point from its cell's exactly
// solved lattice corners: the corner plans are recosted at the point
// and accepted under the log-interpolated anchor gate, falling back to
// the exact DP when the pool cannot explain the point's cost (see
// sweeper.recostCell for the eager twin of the gate).
//
// Candidates are tried nearest corner first: the nearest corner's
// optimum is the likeliest to cover the point, so the scan usually
// stops after one recost. Stopping once inside the band keeps the
// stored cost within the same [optimum, (1+θ)·estimate] envelope as a
// full scan — later candidates could only sharpen a value already
// accepted. The order is a pure function of the point and the exact
// corner values, so settling stays deterministic under concurrent
// demand.
func (ls *LazySpace) solveRecost(pt int32) error {
	s := ls.inner
	g := s.Grid
	D := g.D

	w := ls.getWorker()
	defer ls.putWorker(w)
	coords := g.Coords(int(pt), w.coords)
	lo := 0
	for d := 0; d < D; d++ {
		lo += ls.cellLo[coords[d]] * g.strides[d]
	}
	ci, err := ls.cellFor(int32(lo), coords)
	if err != nil {
		return err
	}

	lk := ls.lockFor(pt)
	lk.Lock()
	defer lk.Unlock()
	if ls.flags[pt].Load()&flagSolved != 0 {
		return nil
	}

	// Anchor gate: multilinear interpolation of the exact corner costs
	// in log space estimates the optimum here. The nearest corner (the
	// first candidate) is the one with maximal interpolation weight:
	// bit d set iff the point sits in the upper half of dimension d.
	wt := w.wt
	nearest := 0
	for d := 0; d < D; d++ {
		loI, hiI := ls.cellLo[coords[d]], ls.cellHi[coords[d]]
		wt[d] = float64(coords[d]-loI) / float64(hiI-loI)
		if wt[d] >= 0.5 {
			nearest |= 1 << uint(d)
		}
	}
	// Multilinear interpolation by successive pairwise reduction: fold
	// dimension d collapses corner pairs differing in bit d, so the
	// estimate costs O(2^D) fused ops instead of O(D*2^D) weight
	// products.
	nCorners := len(ci.corners)
	fold := w.fold[:nCorners]
	copy(fold, ci.logc)
	for d := 0; d < D; d++ {
		n := len(fold) / 2
		t := wt[d]
		for i := 0; i < n; i++ {
			a := fold[2*i]
			fold[i] = a + t*(fold[2*i+1]-a)
		}
		fold = fold[:n]
	}
	limit := (1 + ls.theta) * math.Exp(fold[0])

	w.position(s, pt)
	c1 := math.Inf(1)
	var best int32 = -1
	tried := w.tried[:0]
	try := func(pid int32) {
		for _, q := range tried {
			if q == pid {
				return
			}
		}
		tried = append(tried, pid)
		c := s.Model.Cost(s.Plan(pid).Root, w.env).Cost
		ls.stats.recostCalls.Add(1)
		if c < c1 || (c == c1 && (best < 0 || s.Plan(pid).Sig < s.Plan(best).Sig)) {
			c1, best = c, pid
		}
	}
	try(ci.plans[nearest])
	for m := 0; m < nCorners && c1 > limit; m++ {
		if m != nearest {
			try(ci.plans[m])
		}
	}
	w.tried = tried[:0]
	if c1 <= limit {
		s.PointPlan[pt] = best
		s.PointCost[pt] = c1
		ls.stats.recostPoints.Add(1)
		ls.stats.settled.Add(1)
		ls.flags[pt].Store(flagSolved)
		return nil
	}
	ls.stats.fallbacks.Add(1)
	return ls.solveExactLocked(pt)
}

// --- contour materialization ------------------------------------------

// contourKey builds the memo key: the learned vector (nil normalized to
// all-free) followed by the contour index, varint encoded.
func (ls *LazySpace) contourKey(learned []int, ci int) string {
	D := ls.inner.Grid.D
	b := make([]byte, 0, (D+1)*2)
	for d := 0; d < D; d++ {
		v := -1
		if learned != nil {
			v = learned[d]
		}
		b = appendVarintKey(b, v)
	}
	b = appendVarintKey(b, ci)
	return string(b)
}

func appendVarintKey(b []byte, v int) []byte {
	uv := uint64(v+1) << 1 // zig-zag-ish: -1 → 0
	for uv >= 0x80 {
		b = append(b, byte(uv)|0x80)
		uv >>= 7
	}
	return append(b, byte(uv))
}

// buildContour enumerates the points of contour ci on the slice. The
// cost surface is monotone nondecreasing along every dimension, so each
// innermost grid line holds at most one contour point — the largest
// in-budget index — found by binary search, and a whole subtree is
// pruned as soon as its minimum corner exceeds the budget. Membership
// is verified directly against the free-dimension successors, which
// also keeps the contour valid under the bounded monotonicity slips a
// recost-settled surface can have.
func (ls *LazySpace) buildContour(st *lazyState, learned []int, ci int) *Contour {
	g := ls.inner.Grid
	b := ls.budgets[ci]
	ct := &Contour{Index: ci + 1, Cost: ls.costs[ci]}

	var free []int
	base := 0
	for d := 0; d < g.D; d++ {
		v := -1
		if learned != nil {
			v = learned[d]
		}
		if v >= 0 {
			base += v * g.strides[d]
		} else {
			free = append(free, d)
		}
	}
	cost := func(pt int) float64 { return ls.costAtState(st, int32(pt)) }

	if len(free) == 0 {
		// Fully pinned slice: the single point sits on every contour
		// from its cost upward (no free successors to exceed).
		if cost(base) <= b {
			ct.Points = append(ct.Points, int32(base))
		}
		return ct
	}

	last := free[len(free)-1]
	// prevLo carries the boundary index of the previously searched line:
	// the contour is a continuous monotone surface, so adjacent lines
	// cross the budget at nearly the same index and a gallop from the
	// last boundary settles ~2 points per line where a cold binary
	// search settles O(log res). Purely an access-order optimization —
	// the boundary found is the same either way.
	prevLo := -1
	var rec func(k, lin int) bool
	rec = func(k, lin int) bool {
		// lin fixes free dims [0,k) and holds free dims [k,·) at index
		// 0 — the subtree's monotone minimum. Above budget ⇒ prune, and
		// the caller stops advancing its own index (costs only rise).
		if cost(lin) > b {
			return false
		}
		if k == len(free)-1 {
			var lo int
			if prevLo < 0 {
				hi := g.Res - 1
				for lo < hi {
					mid := (lo + hi + 1) / 2
					if cost(lin+mid*g.strides[last]) <= b {
						lo = mid
					} else {
						hi = mid - 1
					}
				}
			} else {
				lo = prevLo
				if cost(lin+lo*g.strides[last]) <= b {
					for lo < g.Res-1 && cost(lin+(lo+1)*g.strides[last]) <= b {
						lo++
					}
				} else {
					for lo--; cost(lin+lo*g.strides[last]) > b; lo-- {
					}
				}
			}
			prevLo = lo
			pt := lin + lo*g.strides[last]
			on := true
			for _, d := range free {
				if nxt := g.Step(pt, d); nxt >= 0 && cost(nxt) <= b {
					on = false
					break
				}
			}
			if on {
				ct.Points = append(ct.Points, int32(pt))
			}
			return true
		}
		d := free[k]
		for i := 0; i < g.Res; i++ {
			if !rec(k+1, lin+i*g.strides[d]) {
				break
			}
		}
		return true
	}
	rec(0, base)
	return ct
}

// costAtState is CostAt pinned to one refinement epoch, so a contour is
// computed against a coherent surface even while a refinement publishes.
func (ls *LazySpace) costAtState(st *lazyState, pt int32) float64 {
	if len(st.refined) > 0 {
		if r, ok := st.refined[pt]; ok {
			return r.cost
		}
	}
	ls.ensure(pt)
	return ls.inner.PointCost[pt]
}

// --- online refinement -------------------------------------------------

// Observe records a selectivity observation from a real spill-mode
// execution: dimension dim was learned (or bounded) at grid index idx.
// The observation is queued; ApplyRefinements folds queued observations
// into the surface. Out-of-range observations are ignored.
func (ls *LazySpace) Observe(dim, idx int) {
	g := ls.inner.Grid
	if dim < 0 || dim >= g.D || idx < 0 || idx >= g.Res {
		return
	}
	ls.refMu.Lock()
	ls.pending[[2]int{dim, idx}] = struct{}{}
	ls.refMu.Unlock()
}

// ApplyRefinements re-solves, exactly, every recost-settled point on
// the grid slices named by the queued observations, and publishes the
// changed values as a new copy-on-write overlay (bumping the epoch and
// invalidating the contour memos). It returns the number of points
// whose value actually changed. Exactly solved and already refined
// points are skipped — refinement only ever sharpens recost estimates.
func (ls *LazySpace) ApplyRefinements() int {
	ls.refMu.Lock()
	defer ls.refMu.Unlock()
	if len(ls.pending) == 0 {
		return 0
	}
	obs := make([][2]int, 0, len(ls.pending))
	for o := range ls.pending {
		obs = append(obs, o)
	}
	ls.pending = make(map[[2]int]struct{})

	g := ls.inner.Grid
	var targets []int32
	for pt := 0; pt < g.NumPoints(); pt++ {
		f := ls.flags[pt].Load()
		if f&flagSolved == 0 || f&(flagExact|flagRefined) != 0 {
			continue
		}
		for _, o := range obs {
			if g.Coord(pt, o[0]) == o[1] {
				targets = append(targets, int32(pt))
				break
			}
		}
	}
	ls.stats.refinements.Add(1)
	if len(targets) == 0 {
		return 0
	}

	s := ls.inner
	w := ls.getWorker()
	defer ls.putWorker(w)
	changed := make(map[int32]refinedVal)
	for _, pt := range targets {
		w.position(s, pt)
		best := w.runner.Best(w.env)
		if best == nil {
			continue
		}
		ls.stats.dpCalls.Add(1)
		id := s.AddPlan(best.Root)
		if best.Cost != s.PointCost[pt] || id != s.PointPlan[pt] {
			changed[pt] = refinedVal{cost: best.Cost, plan: id}
		}
		// Mark refined whether or not the value moved: the point is now
		// exact-grade and never re-scanned. Only this method writes the
		// bit, and the point's base values are already published.
		ls.flags[pt].Store(ls.flags[pt].Load() | flagRefined)
	}
	if len(changed) == 0 {
		return 0
	}
	old := ls.state.Load()
	next := &lazyState{
		refined: make(map[int32]refinedVal, len(old.refined)+len(changed)),
		epoch:   old.epoch + 1,
	}
	for pt, v := range old.refined {
		next.refined[pt] = v
	}
	for pt, v := range changed {
		next.refined[pt] = v
	}
	ls.state.Store(next)
	ls.stats.refinedPoints.Add(int64(len(changed)))
	return len(changed)
}

// --- persistence support ----------------------------------------------

// SettledPoints returns the linear indexes of all settled points,
// ascending.
func (ls *LazySpace) SettledPoints() []int32 {
	var out []int32
	for pt := range ls.flags {
		if ls.flags[pt].Load()&flagSolved != 0 {
			out = append(out, int32(pt))
		}
	}
	return out
}

// ValueAt returns the settled value of pt (overlay first) and whether
// the point is exact-grade (DP-solved or refined). The point must be
// settled.
func (ls *LazySpace) ValueAt(pt int32) (costv float64, planID int32, exact bool) {
	f := ls.flags[pt].Load()
	exact = f&(flagExact|flagRefined) != 0
	if st := ls.state.Load(); len(st.refined) > 0 {
		if r, ok := st.refined[pt]; ok {
			return r.cost, r.plan, true
		}
	}
	return ls.inner.PointCost[pt], ls.inner.PointPlan[pt], exact
}

// preload installs a settled value during snapshot reconstruction. It
// must only be called before the space is shared across goroutines.
func (ls *LazySpace) preload(pt int32, costv float64, planID int32, exact bool) {
	ls.inner.PointCost[pt] = costv
	ls.inner.PointPlan[pt] = planID
	f := flagSolved
	if exact {
		f |= flagExact
	}
	if ls.flags[pt].Load()&flagSolved == 0 {
		ls.stats.settled.Add(1)
	}
	ls.flags[pt].Store(f)
}

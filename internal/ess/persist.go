package ess

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/cost"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/query"
)

// spaceDTO is the gob wire format of a built space: enough to skip the
// expensive POSP sweep on reload. Contours and caches are rebuilt.
type spaceDTO struct {
	QueryName string
	D, Res    int
	SelMin    float64
	CostRatio float64
	PlanRoots []*plan.Node
	PointPlan []int32
	PointCost []float64
}

// Save serializes the space's POSP sweep results. Reloading with Load
// against the same query, statistics environment, and cost model
// reproduces the space without re-optimizing the grid — the paper's
// offline contour enumeration for canned queries (§7).
func (s *Space) Save(w io.Writer) error {
	dto := spaceDTO{
		QueryName: s.Q.Name,
		D:         s.Grid.D,
		Res:       s.Grid.Res,
		SelMin:    s.Grid.Vals[0],
		CostRatio: s.CostRatio,
		PointPlan: s.PointPlan,
		PointCost: s.PointCost,
	}
	for _, p := range s.Plans() {
		dto.PlanRoots = append(dto.PlanRoots, p.Root)
	}
	return gob.NewEncoder(w).Encode(&dto)
}

// Load reconstructs a space saved with Save. The query, base
// environment, and model must semantically match the ones the space was
// built with; cheap invariants (name, dimensionality, plan validity,
// spot-checked costs) are verified and violations reported.
func Load(r io.Reader, q *query.Query, baseEnv *cost.Env, model *cost.Model) (*Space, error) {
	var dto spaceDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("ess: decoding space: %w", err)
	}
	if dto.QueryName != q.Name {
		return nil, fmt.Errorf("ess: space was saved for query %q, not %q", dto.QueryName, q.Name)
	}
	if dto.D != q.D() {
		return nil, fmt.Errorf("ess: saved dimensionality %d != query D %d", dto.D, q.D())
	}
	g := NewGrid(dto.D, dto.Res, dto.SelMin)
	if g.NumPoints() != len(dto.PointPlan) || len(dto.PointPlan) != len(dto.PointCost) {
		return nil, fmt.Errorf("ess: saved point arrays inconsistent with grid")
	}
	s := &Space{
		Q:         q,
		Grid:      g,
		Model:     model,
		BaseEnv:   baseEnv,
		PointPlan: dto.PointPlan,
		PointCost: dto.PointCost,
		CostRatio: dto.CostRatio,
		opt:       optimizer.New(q, model),
		planSig:   make(map[string]int32),
	}
	pool := make([]*PlanInfo, 0, len(dto.PlanRoots))
	for i, root := range dto.PlanRoots {
		if err := root.Validate(); err != nil {
			return nil, fmt.Errorf("ess: saved plan %d invalid: %w", i, err)
		}
		pool = append(pool, &PlanInfo{ID: i, Root: root, Sig: root.Signature()})
	}
	s.publishPlans(pool)
	for _, pid := range s.PointPlan {
		if int(pid) >= len(pool) {
			return nil, fmt.Errorf("ess: saved point references plan %d of %d", pid, len(pool))
		}
	}
	s.Cmin = s.PointCost[g.Origin()]
	s.Cmax = s.PointCost[g.Terminus()]
	if s.Cmin <= 0 || s.Cmax < s.Cmin {
		return nil, fmt.Errorf("ess: saved cost surface degenerate")
	}
	// Spot-check: the recorded optimal costs must match recosting the
	// recorded plans under the supplied environment and model.
	ev := s.NewEvaluator()
	for _, pt := range []int32{int32(g.Origin()), int32(g.Terminus()), int32(g.NumPoints() / 2)} {
		got := ev.PlanCost(s.PointPlan[pt], pt)
		want := s.PointCost[pt]
		if diff := got - want; diff > 1e-6*want || diff < -1e-6*want {
			return nil, fmt.Errorf("ess: saved costs disagree with environment at point %d (%v vs %v)", pt, got, want)
		}
	}
	s.Contours = s.contoursOn(s.allPoints(), nil)
	return s, nil
}

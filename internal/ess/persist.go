package ess

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cost"
	"repro/internal/faultinject"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/query"
)

// Snapshot framing. A snapshot is a fixed header followed by a gob
// payload:
//
//	magic    [8]byte  "RQPSNAP\x01"
//	version  uint32   little-endian format version
//	length   uint64   little-endian payload byte count
//	crc32    uint32   IEEE CRC of the payload bytes
//	payload  []byte   gob-encoded spaceDTO
//
// The header makes corruption detectable before the gob decoder sees a
// single byte: truncation fails the length read, bit flips fail the
// CRC, and format drift fails the version check — each with a typed
// error the server's quarantine path can distinguish from a semantic
// mismatch.
const (
	// SnapshotVersion is the current snapshot format version.
	SnapshotVersion = 1

	snapshotMagic = "RQPSNAP\x01"
	headerSize    = len(snapshotMagic) + 4 + 8 + 4

	// maxSnapshotBytes caps the payload a loader will read, bounding
	// allocation from attacker-controllable length fields.
	maxSnapshotBytes = 1 << 30

	// Decode-time bounds on the persisted grid. maxD matches the uint16
	// plan-signature masks used throughout the engine; maxRes and
	// maxPoints keep a hostile header from driving huge allocations.
	maxD      = 16
	maxRes    = 1 << 12
	maxPoints = 1 << 26

	// tempPattern names in-flight snapshot temp files (os.CreateTemp
	// pattern); SweepTemps removes orphans left by crashes.
	tempPrefix  = ".rqpsnap-"
	tempPattern = tempPrefix + "*"
)

// ErrCorrupt reports a snapshot whose bytes fail integrity checking
// (bad magic, truncation, CRC mismatch, malformed or out-of-bounds
// payload). Corrupt snapshots should be quarantined and rebuilt.
var ErrCorrupt = errors.New("ess: snapshot corrupt")

// ErrVersion reports a structurally intact snapshot written by an
// incompatible format version. Stale snapshots should be quarantined
// and rebuilt, never partially decoded.
var ErrVersion = errors.New("ess: snapshot version unsupported")

// LoadOptions controls snapshot verification depth.
type LoadOptions struct {
	// Strict verifies the recorded optimal cost of every contour-member
	// point against the supplied environment and model, instead of the
	// default three-point spot check. The server's quarantine path uses
	// this before trusting a warm-loaded artifact.
	Strict bool
}

// spaceDTO is the gob wire format of a built space: enough to skip the
// expensive POSP sweep on reload. Contours and caches are rebuilt.
type spaceDTO struct {
	QueryName string
	D, Res    int
	SelMin    float64
	CostRatio float64
	PlanRoots []*plan.Node
	PointPlan []int32
	PointCost []float64
}

// Save serializes the space's POSP sweep results in the framed snapshot
// format. Reloading with Load against the same query, statistics
// environment, and cost model reproduces the space without
// re-optimizing the grid — the paper's offline contour enumeration for
// canned queries (§7).
func (s *Space) Save(w io.Writer) error {
	dto := spaceDTO{
		QueryName: s.Q.Name,
		D:         s.Grid.D,
		Res:       s.Grid.Res,
		SelMin:    s.Grid.Vals[0],
		CostRatio: s.CostRatio,
		PointPlan: s.PointPlan,
		PointCost: s.PointCost,
	}
	for _, p := range s.Plans() {
		dto.PlanRoots = append(dto.PlanRoots, p.Root)
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&dto); err != nil {
		return fmt.Errorf("ess: encoding space: %w", err)
	}
	hdr := make([]byte, 0, headerSize)
	hdr = append(hdr, snapshotMagic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, SnapshotVersion)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(payload.Len()))
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.ChecksumIEEE(payload.Bytes()))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("ess: writing snapshot header: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("ess: writing snapshot payload: %w", err)
	}
	return nil
}

// SaveFile atomically persists the space to path: the snapshot is
// written to a temp file in the same directory, synced, and renamed
// over the target, so a crash at any instant leaves either the old
// snapshot or the new one — never a partial file.
func (s *Space) SaveFile(path string) error { return s.SaveFileWith(path, nil) }

// SaveFileWith is SaveFile with a fault injector: each write checks
// faultinject.SiteSnapshotSave, and a fired fault aborts the save
// mid-write (simulating a crash while persisting). The target path is
// untouched on any failure and the temp file is removed best-effort;
// orphans from real crashes are reclaimed by SweepTemps.
func (s *Space) SaveFileWith(path string, in *faultinject.Injector) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, tempPattern)
	if err != nil {
		return fmt.Errorf("ess: creating snapshot temp: %w", err)
	}
	var w io.Writer = f
	if in != nil {
		w = &faultyWriter{w: f, in: in}
	}
	err = s.Save(w)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(f.Name())
		return err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return fmt.Errorf("ess: publishing snapshot: %w", err)
	}
	// Fsync the directory so the rename itself survives power loss, not
	// just the file contents. Best-effort: not every platform supports
	// syncing a directory handle.
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// faultyWriter injects snapshot.save faults into a write stream. A
// fired fault writes half the chunk before failing, so the on-disk temp
// holds a genuinely partial snapshot — the case the atomic rename must
// keep away from the target path.
type faultyWriter struct {
	w  io.Writer
	in *faultinject.Injector
}

func (fw *faultyWriter) Write(p []byte) (int, error) {
	if ferr := fw.in.Check(faultinject.SiteSnapshotSave); ferr != nil {
		n, _ := fw.w.Write(p[:len(p)/2])
		return n, ferr
	}
	return fw.w.Write(p)
}

// SweepTemps removes orphaned snapshot temp files (from crashes mid-
// SaveFile) in dir, returning the paths removed. Removal failures are
// ignored: a live writer may own the file.
func SweepTemps(dir string) []string {
	matches, err := filepath.Glob(filepath.Join(dir, tempPattern))
	if err != nil {
		return nil
	}
	var removed []string
	for _, m := range matches {
		if !strings.HasPrefix(filepath.Base(m), tempPrefix) {
			continue
		}
		if os.Remove(m) == nil {
			removed = append(removed, m)
		}
	}
	return removed
}

// Load reconstructs a space saved with Save, with default (spot-check)
// verification. See LoadWith.
func Load(r io.Reader, q *query.Query, baseEnv *cost.Env, model *cost.Model) (*Space, error) {
	return LoadWith(r, q, baseEnv, model, LoadOptions{})
}

// LoadWith reconstructs a space saved with Save. Integrity violations
// (framing, CRC, bounds) return errors wrapping ErrCorrupt; a format
// mismatch returns one wrapping ErrVersion. The query, base
// environment, and model must semantically match the ones the space
// was built with; invariants (name, dimensionality, plan validity,
// recosted costs) are verified per opt and violations reported.
func LoadWith(r io.Reader, q *query.Query, baseEnv *cost.Env, model *cost.Model, opt LoadOptions) (*Space, error) {
	payload, err := readFrame(r)
	if err != nil {
		return nil, err
	}
	var dto spaceDTO
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&dto); err != nil {
		return nil, fmt.Errorf("%w: decoding payload: %v", ErrCorrupt, err)
	}
	return buildFromDTO(&dto, q, baseEnv, model, opt)
}

// LoadFile loads the snapshot at path via LoadWith.
func LoadFile(path string, q *query.Query, baseEnv *cost.Env, model *cost.Model, opt LoadOptions) (*Space, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadWith(f, q, baseEnv, model, opt)
}

// readFrame verifies the snapshot header and returns the CRC-checked
// payload bytes.
func readFrame(r io.Reader) ([]byte, error) {
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrCorrupt, err)
	}
	if string(hdr[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	off := len(snapshotMagic)
	version := binary.LittleEndian.Uint32(hdr[off:])
	length := binary.LittleEndian.Uint64(hdr[off+4:])
	sum := binary.LittleEndian.Uint32(hdr[off+12:])
	if version != SnapshotVersion {
		return nil, fmt.Errorf("%w: snapshot is v%d, this build reads v%d", ErrVersion, version, SnapshotVersion)
	}
	if length > maxSnapshotBytes {
		return nil, fmt.Errorf("%w: payload length %d exceeds limit", ErrCorrupt, length)
	}
	// ReadAll grows incrementally, so a lying length field cannot force
	// a huge up-front allocation.
	payload, err := io.ReadAll(io.LimitReader(r, int64(length)))
	if err != nil {
		return nil, fmt.Errorf("%w: reading payload: %v", ErrCorrupt, err)
	}
	if uint64(len(payload)) != length {
		return nil, fmt.Errorf("%w: payload truncated (%d of %d bytes)", ErrCorrupt, len(payload), length)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	return payload, nil
}

// buildFromDTO validates the decoded DTO — treating every field as
// attacker-controllable — and rebuilds the space.
func buildFromDTO(dto *spaceDTO, q *query.Query, baseEnv *cost.Env, model *cost.Model, opt LoadOptions) (*Space, error) {
	if dto.D < 1 || dto.D > maxD {
		return nil, fmt.Errorf("%w: dimensionality %d outside [1, %d]", ErrCorrupt, dto.D, maxD)
	}
	if dto.Res < 2 || dto.Res > maxRes {
		return nil, fmt.Errorf("%w: resolution %d outside [2, %d]", ErrCorrupt, dto.Res, maxRes)
	}
	if !(dto.SelMin > 0 && dto.SelMin < 1) { // NaN fails both comparisons
		return nil, fmt.Errorf("%w: selectivity floor %v outside (0, 1)", ErrCorrupt, dto.SelMin)
	}
	if !(dto.CostRatio > 1) || math.IsInf(dto.CostRatio, 1) {
		return nil, fmt.Errorf("%w: cost ratio %v not in (1, +Inf)", ErrCorrupt, dto.CostRatio)
	}
	np := 1
	for i := 0; i < dto.D; i++ {
		np *= dto.Res
		if np > maxPoints {
			return nil, fmt.Errorf("%w: grid %d^%d exceeds %d points", ErrCorrupt, dto.Res, dto.D, maxPoints)
		}
	}
	if len(dto.PointPlan) != np || len(dto.PointCost) != np {
		return nil, fmt.Errorf("%w: point arrays (%d, %d) inconsistent with grid (%d points)",
			ErrCorrupt, len(dto.PointPlan), len(dto.PointCost), np)
	}
	if len(dto.PlanRoots) == 0 {
		return nil, fmt.Errorf("%w: empty plan pool", ErrCorrupt)
	}
	for i, c := range dto.PointCost {
		if !(c > 0) || math.IsInf(c, 1) { // rejects NaN, ±Inf, and non-positive
			return nil, fmt.Errorf("%w: point %d cost %v not a positive finite number", ErrCorrupt, i, c)
		}
	}
	if dto.QueryName != q.Name {
		return nil, fmt.Errorf("ess: space was saved for query %q, not %q", dto.QueryName, q.Name)
	}
	if dto.D != q.D() {
		return nil, fmt.Errorf("ess: saved dimensionality %d != query D %d", dto.D, q.D())
	}
	g := NewGrid(dto.D, dto.Res, dto.SelMin)
	s := &Space{
		Q:         q,
		Grid:      g,
		Model:     model,
		BaseEnv:   baseEnv,
		PointPlan: dto.PointPlan,
		PointCost: dto.PointCost,
		CostRatio: dto.CostRatio,
		opt:       optimizer.New(q, model),
		planSig:   make(map[string]int32),
	}
	pool := make([]*PlanInfo, 0, len(dto.PlanRoots))
	for i, root := range dto.PlanRoots {
		if root == nil {
			return nil, fmt.Errorf("%w: saved plan %d is nil", ErrCorrupt, i)
		}
		if err := root.Validate(); err != nil {
			return nil, fmt.Errorf("%w: saved plan %d invalid: %v", ErrCorrupt, i, err)
		}
		pool = append(pool, &PlanInfo{ID: i, Root: root, Sig: root.Signature()})
	}
	s.publishPlans(pool)
	for _, pid := range s.PointPlan {
		if pid < 0 || int(pid) >= len(pool) {
			return nil, fmt.Errorf("%w: saved point references plan %d of %d", ErrCorrupt, pid, len(pool))
		}
	}
	s.Cmin = s.PointCost[g.Origin()]
	s.Cmax = s.PointCost[g.Terminus()]
	if s.Cmin <= 0 || s.Cmax < s.Cmin {
		return nil, fmt.Errorf("%w: saved cost surface degenerate", ErrCorrupt)
	}
	s.Contours = s.contoursOn(s.allPoints(), nil)
	// Verify recorded optimal costs against recosting the recorded plans
	// under the supplied environment and model: every contour-member
	// point in Strict mode, a three-point spot check otherwise.
	ev := s.NewEvaluator()
	if opt.Strict {
		for ci := range s.Contours {
			for _, pt := range s.Contours[ci].Points {
				if err := checkPoint(ev, s, pt); err != nil {
					return nil, err
				}
			}
		}
	} else {
		for _, pt := range []int32{int32(g.Origin()), int32(g.Terminus()), int32(g.NumPoints() / 2)} {
			if err := checkPoint(ev, s, pt); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// checkPoint recosts the recorded plan at pt and compares it with the
// recorded optimal cost.
func checkPoint(ev *Evaluator, s *Space, pt int32) error {
	got := ev.PlanCost(s.PointPlan[pt], pt)
	want := s.PointCost[pt]
	if diff := got - want; diff > 1e-6*want || diff < -1e-6*want {
		return fmt.Errorf("ess: saved costs disagree with environment at point %d (%v vs %v)", pt, got, want)
	}
	return nil
}

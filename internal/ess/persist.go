package ess

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cost"
	"repro/internal/faultinject"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/query"
)

// Snapshot framing. A snapshot is a fixed header followed by a gob
// payload:
//
//	magic    [8]byte  "RQPSNAP\x01"
//	version  uint32   little-endian format version
//	length   uint64   little-endian payload byte count
//	crc32    uint32   IEEE CRC of the payload bytes
//	payload  []byte   gob-encoded spaceDTO
//
// The header makes corruption detectable before the gob decoder sees a
// single byte: truncation fails the length read, bit flips fail the
// CRC, and format drift fails the version check — each with a typed
// error the server's quarantine path can distinguish from a semantic
// mismatch.
const (
	// SnapshotVersion is the current snapshot format version.
	SnapshotVersion = 1

	snapshotMagic = "RQPSNAP\x01"
	headerSize    = len(snapshotMagic) + 4 + 8 + 4

	// maxSnapshotBytes caps the payload a loader will read, bounding
	// allocation from attacker-controllable length fields.
	maxSnapshotBytes = 1 << 30

	// Decode-time bounds on the persisted grid. maxD matches the uint16
	// plan-signature masks used throughout the engine; maxRes and
	// maxPoints keep a hostile header from driving huge allocations.
	maxD      = 16
	maxRes    = 1 << 12
	maxPoints = 1 << 26

	// tempPattern names in-flight snapshot temp files (os.CreateTemp
	// pattern); SweepTemps removes orphans left by crashes.
	tempPrefix  = ".rqpsnap-"
	tempPattern = tempPrefix + "*"
)

// ErrCorrupt reports a snapshot whose bytes fail integrity checking
// (bad magic, truncation, CRC mismatch, malformed or out-of-bounds
// payload). Corrupt snapshots should be quarantined and rebuilt.
var ErrCorrupt = errors.New("ess: snapshot corrupt")

// ErrVersion reports a structurally intact snapshot written by an
// incompatible format version. Stale snapshots should be quarantined
// and rebuilt, never partially decoded.
var ErrVersion = errors.New("ess: snapshot version unsupported")

// LoadOptions controls snapshot verification depth.
type LoadOptions struct {
	// Strict verifies the recorded optimal cost of every contour-member
	// point against the supplied environment and model, instead of the
	// default three-point spot check. The server's quarantine path uses
	// this before trusting a warm-loaded artifact.
	Strict bool
}

// spaceDTO is the gob wire format of a built space: enough to skip the
// expensive POSP sweep on reload. Contours and caches are rebuilt.
//
// Gob ignores unknown fields and zero-fills missing ones, so the
// GridSig / sparse additions are read compatibly by both directions of
// version skew: an old frame loads with GridSig 0 (no strict fast
// path) and Sparse false (dense).
type spaceDTO struct {
	QueryName string
	D, Res    int
	SelMin    float64
	CostRatio float64
	PlanRoots []*plan.Node
	PointPlan []int32
	PointCost []float64

	// GridSig is the save-time verification signature: non-zero only
	// when the writer recost-verified the frame's recorded costs against
	// its environment before saving, hashed together with the grid
	// parameters and bit-exact probe recosts. A strict load whose own
	// probe recosts reproduce the signature may skip the full recost the
	// writer already performed; any mismatch (or 0) takes the full path.
	GridSig uint64

	// Sparse marks a demand-driven frame: only SolvedPoints are
	// recorded, with PointPlan/PointCost/SolvedExact parallel to it,
	// instead of full grid arrays.
	Sparse       bool
	SolvedPoints []int32
	SolvedExact  []bool
}

// Save serializes the space's POSP sweep results in the framed snapshot
// format. Reloading with Load against the same query, statistics
// environment, and cost model reproduces the space without
// re-optimizing the grid — the paper's offline contour enumeration for
// canned queries (§7).
func (s *Space) Save(w io.Writer) error {
	dto := spaceDTO{
		QueryName: s.Q.Name,
		D:         s.Grid.D,
		Res:       s.Grid.Res,
		SelMin:    s.Grid.Vals[0],
		CostRatio: s.CostRatio,
		PointPlan: s.PointPlan,
		PointCost: s.PointCost,
	}
	for _, p := range s.Plans() {
		dto.PlanRoots = append(dto.PlanRoots, p.Root)
	}
	dto.GridSig = s.gridSig()
	return writeFrame(w, snapshotMagic, &dto)
}

// gridSig recost-verifies every contour-member point against the
// space's own environment and, only when verification passes, returns
// the frame signature; 0 when any point fails, so a strict load of the
// frame always takes the full recost path.
func (s *Space) gridSig() uint64 {
	ev := s.NewEvaluator()
	for ci := range s.Contours {
		for _, pt := range s.Contours[ci].Points {
			if checkPoint(ev, s, pt) != nil {
				return 0
			}
		}
	}
	return frameSig(s.Q.Name, s.Grid.D, s.Grid.Res, s.Grid.Vals[0], s.CostRatio, s.denseProbes(ev))
}

// denseProbes recosts the recorded plan at the three spot-check points;
// the bit patterns feed frameSig, so any environment or model drift
// that moves a probe by one ULP already invalidates the signature.
func (s *Space) denseProbes(ev *Evaluator) []float64 {
	g := s.Grid
	probes := make([]float64, 0, 3)
	for _, pt := range []int32{int32(g.Origin()), int32(g.Terminus()), int32(g.NumPoints() / 2)} {
		probes = append(probes, ev.PlanCost(s.PointPlan[pt], pt))
	}
	return probes
}

// frameSig hashes the grid parameters together with bit-exact probe
// recosts into the save-time verification signature. A zero digest is
// remapped to 1 so 0 stays reserved for "unverified".
func frameSig(name string, d, res int, selMin, ratio float64, probes []float64) uint64 {
	h := fnv.New64a()
	io.WriteString(h, name)
	var b [8]byte
	put := func(v uint64) { binary.LittleEndian.PutUint64(b[:], v); h.Write(b[:]) }
	put(uint64(d))
	put(uint64(res))
	put(math.Float64bits(selMin))
	put(math.Float64bits(ratio))
	put(uint64(len(probes)))
	for _, p := range probes {
		put(math.Float64bits(p))
	}
	sig := h.Sum64()
	if sig == 0 {
		sig = 1
	}
	return sig
}

// writeFrame gob-encodes the payload and writes one framed record
// (magic, version, length, CRC, payload).
func writeFrame(w io.Writer, magic string, payload any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(payload); err != nil {
		return fmt.Errorf("ess: encoding snapshot: %w", err)
	}
	hdr := make([]byte, 0, headerSize)
	hdr = append(hdr, magic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, SnapshotVersion)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(buf.Len()))
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.ChecksumIEEE(buf.Bytes()))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("ess: writing snapshot header: %w", err)
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("ess: writing snapshot payload: %w", err)
	}
	return nil
}

// SaveFile atomically persists the space to path: the snapshot is
// written to a temp file in the same directory, synced, and renamed
// over the target, so a crash at any instant leaves either the old
// snapshot or the new one — never a partial file.
func (s *Space) SaveFile(path string) error { return s.SaveFileWith(path, nil) }

// SaveFileWith is SaveFile with a fault injector: each write checks
// faultinject.SiteSnapshotSave, and a fired fault aborts the save
// mid-write (simulating a crash while persisting). The target path is
// untouched on any failure and the temp file is removed best-effort;
// orphans from real crashes are reclaimed by SweepTemps.
func (s *Space) SaveFileWith(path string, in *faultinject.Injector) error {
	return saveFileWith(path, in, s.Save)
}

// saveFileWith implements the atomic temp+fsync+rename publish for any
// snapshot writer (dense or sparse).
func saveFileWith(path string, in *faultinject.Injector, save func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, tempPattern)
	if err != nil {
		return fmt.Errorf("ess: creating snapshot temp: %w", err)
	}
	var w io.Writer = f
	if in != nil {
		w = &faultyWriter{w: f, in: in}
	}
	err = save(w)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(f.Name())
		return err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return fmt.Errorf("ess: publishing snapshot: %w", err)
	}
	// Fsync the directory so the rename itself survives power loss, not
	// just the file contents. Best-effort: not every platform supports
	// syncing a directory handle.
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// faultyWriter injects snapshot.save faults into a write stream. A
// fired fault writes half the chunk before failing, so the on-disk temp
// holds a genuinely partial snapshot — the case the atomic rename must
// keep away from the target path.
type faultyWriter struct {
	w  io.Writer
	in *faultinject.Injector
}

func (fw *faultyWriter) Write(p []byte) (int, error) {
	if ferr := fw.in.Check(faultinject.SiteSnapshotSave); ferr != nil {
		n, _ := fw.w.Write(p[:len(p)/2])
		return n, ferr
	}
	return fw.w.Write(p)
}

// SweepTemps removes orphaned snapshot temp files (from crashes mid-
// SaveFile) in dir, returning the paths removed. Removal failures are
// ignored: a live writer may own the file.
func SweepTemps(dir string) []string {
	matches, err := filepath.Glob(filepath.Join(dir, tempPattern))
	if err != nil {
		return nil
	}
	var removed []string
	for _, m := range matches {
		if !strings.HasPrefix(filepath.Base(m), tempPrefix) {
			continue
		}
		if os.Remove(m) == nil {
			removed = append(removed, m)
		}
	}
	return removed
}

// Load reconstructs a space saved with Save, with default (spot-check)
// verification. See LoadWith.
func Load(r io.Reader, q *query.Query, baseEnv *cost.Env, model *cost.Model) (*Space, error) {
	return LoadWith(r, q, baseEnv, model, LoadOptions{})
}

// LoadWith reconstructs a space saved with Save. Integrity violations
// (framing, CRC, bounds) return errors wrapping ErrCorrupt; a format
// mismatch returns one wrapping ErrVersion. The query, base
// environment, and model must semantically match the ones the space
// was built with; invariants (name, dimensionality, plan validity,
// recosted costs) are verified per opt and violations reported.
func LoadWith(r io.Reader, q *query.Query, baseEnv *cost.Env, model *cost.Model, opt LoadOptions) (*Space, error) {
	payload, err := readFrame(r)
	if err != nil {
		return nil, err
	}
	var dto spaceDTO
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&dto); err != nil {
		return nil, fmt.Errorf("%w: decoding payload: %v", ErrCorrupt, err)
	}
	return buildFromDTO(&dto, q, baseEnv, model, opt)
}

// LoadFile loads the snapshot at path via LoadWith.
func LoadFile(path string, q *query.Query, baseEnv *cost.Env, model *cost.Model, opt LoadOptions) (*Space, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadWith(f, q, baseEnv, model, opt)
}

// VerifyFrame checks one snapshot stream's framing — magic, version,
// declared length, and payload CRC — without deserializing the
// payload. The serving tier's snapshot fan-out uses it to cheaply
// reject a truncated or corrupt peer transfer before attempting the
// (much more expensive) strict load.
func VerifyFrame(r io.Reader) error {
	_, err := readFrame(r)
	return err
}

// readFrame verifies the snapshot header and returns the CRC-checked
// payload bytes.
func readFrame(r io.Reader) ([]byte, error) {
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrCorrupt, err)
	}
	if string(hdr[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	off := len(snapshotMagic)
	version := binary.LittleEndian.Uint32(hdr[off:])
	length := binary.LittleEndian.Uint64(hdr[off+4:])
	sum := binary.LittleEndian.Uint32(hdr[off+12:])
	if version != SnapshotVersion {
		return nil, fmt.Errorf("%w: snapshot is v%d, this build reads v%d", ErrVersion, version, SnapshotVersion)
	}
	if length > maxSnapshotBytes {
		return nil, fmt.Errorf("%w: payload length %d exceeds limit", ErrCorrupt, length)
	}
	// ReadAll grows incrementally, so a lying length field cannot force
	// a huge up-front allocation.
	payload, err := io.ReadAll(io.LimitReader(r, int64(length)))
	if err != nil {
		return nil, fmt.Errorf("%w: reading payload: %v", ErrCorrupt, err)
	}
	if uint64(len(payload)) != length {
		return nil, fmt.Errorf("%w: payload truncated (%d of %d bytes)", ErrCorrupt, len(payload), length)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	return payload, nil
}

// validateGridHeader bounds-checks the frame's grid parameters —
// treating every field as attacker-controllable — and returns the
// implied grid point count.
func validateGridHeader(dto *spaceDTO) (int, error) {
	if dto.D < 1 || dto.D > maxD {
		return 0, fmt.Errorf("%w: dimensionality %d outside [1, %d]", ErrCorrupt, dto.D, maxD)
	}
	if dto.Res < 2 || dto.Res > maxRes {
		return 0, fmt.Errorf("%w: resolution %d outside [2, %d]", ErrCorrupt, dto.Res, maxRes)
	}
	if !(dto.SelMin > 0 && dto.SelMin < 1) { // NaN fails both comparisons
		return 0, fmt.Errorf("%w: selectivity floor %v outside (0, 1)", ErrCorrupt, dto.SelMin)
	}
	if !(dto.CostRatio > 1) || math.IsInf(dto.CostRatio, 1) {
		return 0, fmt.Errorf("%w: cost ratio %v not in (1, +Inf)", ErrCorrupt, dto.CostRatio)
	}
	np := 1
	for i := 0; i < dto.D; i++ {
		np *= dto.Res
		if np > maxPoints {
			return 0, fmt.Errorf("%w: grid %d^%d exceeds %d points", ErrCorrupt, dto.Res, dto.D, maxPoints)
		}
	}
	return np, nil
}

// buildFromDTO validates the decoded DTO — treating every field as
// attacker-controllable — and rebuilds the space.
func buildFromDTO(dto *spaceDTO, q *query.Query, baseEnv *cost.Env, model *cost.Model, opt LoadOptions) (*Space, error) {
	if dto.Sparse {
		return nil, fmt.Errorf("%w: sparse (lazy) snapshot in dense loader", ErrCorrupt)
	}
	np, err := validateGridHeader(dto)
	if err != nil {
		return nil, err
	}
	if len(dto.PointPlan) != np || len(dto.PointCost) != np {
		return nil, fmt.Errorf("%w: point arrays (%d, %d) inconsistent with grid (%d points)",
			ErrCorrupt, len(dto.PointPlan), len(dto.PointCost), np)
	}
	if len(dto.PlanRoots) == 0 {
		return nil, fmt.Errorf("%w: empty plan pool", ErrCorrupt)
	}
	for i, c := range dto.PointCost {
		if !(c > 0) || math.IsInf(c, 1) { // rejects NaN, ±Inf, and non-positive
			return nil, fmt.Errorf("%w: point %d cost %v not a positive finite number", ErrCorrupt, i, c)
		}
	}
	if dto.QueryName != q.Name {
		return nil, fmt.Errorf("ess: space was saved for query %q, not %q", dto.QueryName, q.Name)
	}
	if dto.D != q.D() {
		return nil, fmt.Errorf("ess: saved dimensionality %d != query D %d", dto.D, q.D())
	}
	g := NewGrid(dto.D, dto.Res, dto.SelMin)
	s := &Space{
		Q:         q,
		Grid:      g,
		Model:     model,
		BaseEnv:   baseEnv,
		PointPlan: dto.PointPlan,
		PointCost: dto.PointCost,
		CostRatio: dto.CostRatio,
		opt:       optimizer.New(q, model),
		planSig:   make(map[string]int32),
	}
	pool := make([]*PlanInfo, 0, len(dto.PlanRoots))
	for i, root := range dto.PlanRoots {
		if root == nil {
			return nil, fmt.Errorf("%w: saved plan %d is nil", ErrCorrupt, i)
		}
		if err := root.Validate(); err != nil {
			return nil, fmt.Errorf("%w: saved plan %d invalid: %v", ErrCorrupt, i, err)
		}
		pool = append(pool, &PlanInfo{ID: i, Root: root, Sig: root.Signature()})
	}
	s.publishPlans(pool)
	for _, pid := range s.PointPlan {
		if pid < 0 || int(pid) >= len(pool) {
			return nil, fmt.Errorf("%w: saved point references plan %d of %d", ErrCorrupt, pid, len(pool))
		}
	}
	s.Cmin = s.PointCost[g.Origin()]
	s.Cmax = s.PointCost[g.Terminus()]
	if s.Cmin <= 0 || s.Cmax < s.Cmin {
		return nil, fmt.Errorf("%w: saved cost surface degenerate", ErrCorrupt)
	}
	s.Contours = s.contoursOn(s.allPoints(), nil)
	s.loaded = true
	// Verify recorded optimal costs against recosting the recorded plans
	// under the supplied environment and model: every contour-member
	// point in Strict mode, a three-point spot check otherwise. A frame
	// the writer already recost-verified (GridSig != 0) skips the full
	// strict pass when our own probe recosts reproduce the signature
	// bit-for-bit — any environment, model, or grid drift falls back to
	// the full recost, as does a frame whose save-time verification
	// failed (sig 0).
	ev := s.NewEvaluator()
	strictFull := opt.Strict
	if strictFull && dto.GridSig != 0 &&
		frameSig(dto.QueryName, dto.D, dto.Res, dto.SelMin, dto.CostRatio, s.denseProbes(ev)) == dto.GridSig {
		strictFull = false
	}
	if strictFull {
		for ci := range s.Contours {
			for _, pt := range s.Contours[ci].Points {
				if err := checkPoint(ev, s, pt); err != nil {
					return nil, err
				}
			}
		}
	} else {
		for _, pt := range []int32{int32(g.Origin()), int32(g.Terminus()), int32(g.NumPoints() / 2)} {
			if err := checkPoint(ev, s, pt); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// checkPoint recosts the recorded plan at pt and compares it with the
// recorded optimal cost.
func checkPoint(ev *Evaluator, s *Space, pt int32) error {
	got := ev.PlanCost(s.PointPlan[pt], pt)
	want := s.PointCost[pt]
	if diff := got - want; diff > 1e-6*want || diff < -1e-6*want {
		return fmt.Errorf("ess: saved costs disagree with environment at point %d (%v vs %v)", pt, got, want)
	}
	return nil
}

// --- demand-driven (sparse) snapshots and refinement deltas -----------
//
// A lazy snapshot is a sparse base frame (the spaceDTO with Sparse set,
// recording only settled points) followed by zero or more refinement-
// delta frames, each framed exactly like the base but under its own
// magic:
//
//	magic    [8]byte  "RQPDELT\x01"
//	version  uint32   little-endian format version
//	length   uint64   little-endian payload byte count
//	crc32    uint32   IEEE CRC of the payload bytes
//	payload  []byte   gob-encoded deltaDTO
//
// Deltas are appended in place (O_APPEND), deliberately without the
// base frame's atomic rename: a crash mid-append leaves a torn tail
// that LoadLazy reports as ErrCorrupt, and the server's quarantine-
// and-rebuild path recovers exactly as it does for a corrupt base.

const deltaMagic = "RQPDELT\x01"

// deltaDTO is the gob wire format of one refinement-delta record: a
// self-contained batch of settled or refined point values. PlanIdx
// indexes the delta's own PlanRoots table (interned into the pool at
// load), so a delta never depends on pool IDs assigned by whichever
// process wrote the base frame.
type deltaDTO struct {
	Points    []int32
	Costs     []float64
	PlanIdx   []int32
	Exact     []bool
	PlanRoots []*plan.Node
}

// Delta is one batch of point values to append after a lazy snapshot's
// base frame. Plans holds pool IDs in the saving source's pool; the
// encoder translates them to a self-contained plan table.
type Delta struct {
	Points []int32
	Costs  []float64
	Plans  []int32
	Exact  []bool
}

// DeltaSince collects every settled point whose current value has not
// been persisted yet and advances the watermark map (point → persisted
// as exact-grade). A recost-settled point re-emits once refinement
// upgrades it to exact grade; nil is returned when nothing new settled.
func (ls *LazySpace) DeltaSince(mark map[int32]bool) *Delta {
	d := &Delta{}
	for _, pt := range ls.SettledPoints() {
		c, pid, exact := ls.ValueAt(pt)
		if was, ok := mark[pt]; ok && (was || !exact) {
			continue
		}
		mark[pt] = exact
		d.Points = append(d.Points, pt)
		d.Costs = append(d.Costs, c)
		d.Plans = append(d.Plans, pid)
		d.Exact = append(d.Exact, exact)
	}
	if len(d.Points) == 0 {
		return nil
	}
	return d
}

// Save serializes the lazy space's settled points as a sparse base
// frame. Reload with LoadLazy (the dense Load rejects sparse frames).
func (ls *LazySpace) Save(w io.Writer) error {
	s := ls.inner
	pts := ls.SettledPoints()
	dto := spaceDTO{
		QueryName:    s.Q.Name,
		D:            s.Grid.D,
		Res:          s.Grid.Res,
		SelMin:       s.Grid.Vals[0],
		CostRatio:    s.CostRatio,
		Sparse:       true,
		SolvedPoints: pts,
		SolvedExact:  make([]bool, len(pts)),
		PointPlan:    make([]int32, len(pts)),
		PointCost:    make([]float64, len(pts)),
	}
	for i, pt := range pts {
		dto.PointCost[i], dto.PointPlan[i], dto.SolvedExact[i] = ls.ValueAt(pt)
	}
	for _, p := range s.Plans() {
		dto.PlanRoots = append(dto.PlanRoots, p.Root)
	}
	dto.GridSig = ls.gridSig(&dto)
	return writeFrame(w, snapshotMagic, &dto)
}

// gridSig recost-verifies every recorded point value against the
// source's own environment (mirroring Space.gridSig, which verifies
// contour members) and signs the frame only on success.
func (ls *LazySpace) gridSig(dto *spaceDTO) uint64 {
	ev := ls.inner.NewEvaluator()
	for i, pt := range dto.SolvedPoints {
		got := ev.PlanCost(dto.PointPlan[i], pt)
		want := dto.PointCost[i]
		if diff := got - want; diff > 1e-6*want || diff < -1e-6*want {
			return 0
		}
	}
	return frameSig(dto.QueryName, dto.D, dto.Res, dto.SelMin, dto.CostRatio, ls.sparseProbes(ev))
}

// sparseProbes recosts the recorded plan at the two always-settled
// anchors of a lazy space (origin and terminus; a sparse frame has no
// guaranteed midpoint).
func (ls *LazySpace) sparseProbes(ev *Evaluator) []float64 {
	g := ls.inner.Grid
	probes := make([]float64, 0, 2)
	for _, pt := range []int32{int32(g.Origin()), int32(g.Terminus())} {
		probes = append(probes, ev.PlanCost(ls.inner.PointPlan[pt], pt))
	}
	return probes
}

// SaveFile atomically persists the sparse base frame to path (see
// Space.SaveFile). Any previously appended deltas are folded away: the
// published snapshot is base-only with every settled point inline.
func (ls *LazySpace) SaveFile(path string) error { return ls.SaveFileWith(path, nil) }

// SaveFileWith is SaveFile with a fault injector on the write stream.
func (ls *LazySpace) SaveFileWith(path string, in *faultinject.Injector) error {
	return saveFileWith(path, in, ls.Save)
}

// AppendDelta frames the delta and writes it to w.
func (ls *LazySpace) AppendDelta(w io.Writer, d *Delta) error {
	n := len(d.Points)
	if len(d.Costs) != n || len(d.Plans) != n || len(d.Exact) != n {
		return fmt.Errorf("ess: delta arrays inconsistent (%d, %d, %d, %d)",
			n, len(d.Costs), len(d.Plans), len(d.Exact))
	}
	dto := deltaDTO{Points: d.Points, Costs: d.Costs, Exact: d.Exact}
	local := make(map[int32]int32)
	for _, pid := range d.Plans {
		li, ok := local[pid]
		if !ok {
			li = int32(len(dto.PlanRoots))
			local[pid] = li
			dto.PlanRoots = append(dto.PlanRoots, ls.Plan(pid).Root)
		}
		dto.PlanIdx = append(dto.PlanIdx, li)
	}
	return writeFrame(w, deltaMagic, &dto)
}

// AppendDeltaFile appends the framed delta to the snapshot at path.
// The append is deliberately not atomic — a crash mid-append leaves a
// torn tail that the next LoadLazy reports as ErrCorrupt, routing the
// snapshot through quarantine-and-rebuild.
func (ls *LazySpace) AppendDeltaFile(path string, d *Delta) error {
	return ls.AppendDeltaFileWith(path, d, nil)
}

// AppendDeltaFileWith is AppendDeltaFile with a fault injector: each
// write checks faultinject.SiteSnapshotSave, and a fired fault tears
// the append mid-write (simulating a crash while persisting a delta).
func (ls *LazySpace) AppendDeltaFileWith(path string, d *Delta, in *faultinject.Injector) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("ess: opening snapshot for delta append: %w", err)
	}
	var w io.Writer = f
	if in != nil {
		w = &faultyWriter{w: f, in: in}
	}
	err = ls.AppendDelta(w, d)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// LoadLazy reconstructs a demand-driven space from a sparse base frame
// plus any refinement-delta frames appended after it. See LoadLazyWith.
func LoadLazy(r io.Reader, q *query.Query, baseEnv *cost.Env, model *cost.Model, cfg Config) (*LazySpace, error) {
	return LoadLazyWith(r, q, baseEnv, model, cfg, LoadOptions{})
}

// LoadLazyWith reconstructs a lazy space saved with LazySpace.Save and
// grown with AppendDelta. The grid geometry comes from the frame; cfg
// supplies the settle policy (Exact/Theta/CoarseStep) for points the
// snapshot does not cover. The origin and terminus are re-solved
// exactly and checked against the recorded values, so a frame from a
// different environment is rejected up front; Strict additionally
// recost-verifies every recorded point, with the same GridSig fast
// path as the dense loader. Integrity violations — including a torn
// delta tail from a crashed append — return errors wrapping ErrCorrupt.
func LoadLazyWith(r io.Reader, q *query.Query, baseEnv *cost.Env, model *cost.Model, cfg Config, opt LoadOptions) (*LazySpace, error) {
	payload, err := readFrame(r)
	if err != nil {
		return nil, err
	}
	var dto spaceDTO
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&dto); err != nil {
		return nil, fmt.Errorf("%w: decoding payload: %v", ErrCorrupt, err)
	}
	ls, err := lazyFromDTO(&dto, q, baseEnv, model, cfg, opt)
	if err != nil {
		return nil, err
	}
	for {
		dp, err := readDeltaFrame(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := ls.applyDeltaPayload(dp); err != nil {
			return nil, err
		}
	}
	return ls, nil
}

// LoadLazyFile loads the lazy snapshot at path via LoadLazyWith.
func LoadLazyFile(path string, q *query.Query, baseEnv *cost.Env, model *cost.Model, cfg Config, opt LoadOptions) (*LazySpace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadLazyWith(f, q, baseEnv, model, cfg, opt)
}

// lazyFromDTO validates the sparse base frame and reconstructs the
// lazy space: a fresh skeleton (origin and terminus solved exactly,
// fixing the ladder) preloaded with the recorded settled points.
func lazyFromDTO(dto *spaceDTO, q *query.Query, baseEnv *cost.Env, model *cost.Model, cfg Config, opt LoadOptions) (*LazySpace, error) {
	if !dto.Sparse {
		return nil, fmt.Errorf("ess: dense snapshot in lazy loader (use Load)")
	}
	np, err := validateGridHeader(dto)
	if err != nil {
		return nil, err
	}
	n := len(dto.SolvedPoints)
	if len(dto.PointPlan) != n || len(dto.PointCost) != n || len(dto.SolvedExact) != n {
		return nil, fmt.Errorf("%w: sparse arrays (%d, %d, %d, %d) inconsistent",
			ErrCorrupt, n, len(dto.PointPlan), len(dto.PointCost), len(dto.SolvedExact))
	}
	if n > np {
		return nil, fmt.Errorf("%w: %d settled points on a %d-point grid", ErrCorrupt, n, np)
	}
	if len(dto.PlanRoots) == 0 {
		return nil, fmt.Errorf("%w: empty plan pool", ErrCorrupt)
	}
	for i, pt := range dto.SolvedPoints {
		if pt < 0 || int(pt) >= np {
			return nil, fmt.Errorf("%w: settled point %d outside grid", ErrCorrupt, pt)
		}
		if i > 0 && pt <= dto.SolvedPoints[i-1] {
			return nil, fmt.Errorf("%w: settled points not strictly ascending at %d", ErrCorrupt, i)
		}
		if c := dto.PointCost[i]; !(c > 0) || math.IsInf(c, 1) {
			return nil, fmt.Errorf("%w: point %d cost %v not a positive finite number", ErrCorrupt, pt, c)
		}
		if pid := dto.PointPlan[i]; pid < 0 || int(pid) >= len(dto.PlanRoots) {
			return nil, fmt.Errorf("%w: saved point references plan %d of %d", ErrCorrupt, pid, len(dto.PlanRoots))
		}
	}
	if dto.QueryName != q.Name {
		return nil, fmt.Errorf("ess: space was saved for query %q, not %q", dto.QueryName, q.Name)
	}
	if dto.D != q.D() {
		return nil, fmt.Errorf("ess: saved dimensionality %d != query D %d", dto.D, q.D())
	}

	cfg.Res = dto.Res
	cfg.SelMin = dto.SelMin
	cfg.CostRatio = dto.CostRatio
	ls, err := BuildLazy(q, baseEnv, model, cfg)
	if err != nil {
		return nil, err
	}
	ids := make([]int32, len(dto.PlanRoots))
	for i, root := range dto.PlanRoots {
		if root == nil {
			return nil, fmt.Errorf("%w: saved plan %d is nil", ErrCorrupt, i)
		}
		if err := root.Validate(); err != nil {
			return nil, fmt.Errorf("%w: saved plan %d invalid: %v", ErrCorrupt, i, err)
		}
		ids[i] = ls.AddPlan(root)
	}
	g := ls.Geometry()
	origin, terminus := int32(g.Origin()), int32(g.Terminus())
	seenOrigin, seenTerminus := false, false
	for i, pt := range dto.SolvedPoints {
		if pt == origin || pt == terminus {
			// Already solved exactly by BuildLazy: the fresh value is
			// authoritative, the recorded one must agree with this
			// environment.
			got, want := ls.inner.PointCost[pt], dto.PointCost[i]
			if diff := got - want; diff > 1e-6*want || diff < -1e-6*want {
				return nil, fmt.Errorf("ess: saved costs disagree with environment at point %d (%v vs %v)", pt, want, got)
			}
			seenOrigin = seenOrigin || pt == origin
			seenTerminus = seenTerminus || pt == terminus
			continue
		}
		ls.preload(pt, dto.PointCost[i], ids[dto.PointPlan[i]], dto.SolvedExact[i])
	}
	if !seenOrigin || !seenTerminus {
		return nil, fmt.Errorf("%w: sparse frame missing origin or terminus", ErrCorrupt)
	}
	if opt.Strict {
		ev := ls.inner.NewEvaluator()
		if dto.GridSig == 0 ||
			frameSig(dto.QueryName, dto.D, dto.Res, dto.SelMin, dto.CostRatio, ls.sparseProbes(ev)) != dto.GridSig {
			for i, pt := range dto.SolvedPoints {
				got, want := ev.PlanCost(ids[dto.PointPlan[i]], pt), dto.PointCost[i]
				if diff := got - want; diff > 1e-6*want || diff < -1e-6*want {
					return nil, fmt.Errorf("ess: saved costs disagree with environment at point %d (%v vs %v)", pt, got, want)
				}
			}
		}
	}
	return ls, nil
}

// readDeltaFrame reads one framed delta record, returning io.EOF at a
// clean end of stream and an ErrCorrupt-wrapped error for a torn tail.
func readDeltaFrame(r io.Reader) ([]byte, error) {
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: reading delta header: %v", ErrCorrupt, err)
	}
	if string(hdr[:len(deltaMagic)]) != deltaMagic {
		return nil, fmt.Errorf("%w: bad delta magic", ErrCorrupt)
	}
	off := len(deltaMagic)
	version := binary.LittleEndian.Uint32(hdr[off:])
	length := binary.LittleEndian.Uint64(hdr[off+4:])
	sum := binary.LittleEndian.Uint32(hdr[off+12:])
	if version != SnapshotVersion {
		return nil, fmt.Errorf("%w: delta is v%d, this build reads v%d", ErrVersion, version, SnapshotVersion)
	}
	if length > maxSnapshotBytes {
		return nil, fmt.Errorf("%w: delta length %d exceeds limit", ErrCorrupt, length)
	}
	payload, err := io.ReadAll(io.LimitReader(r, int64(length)))
	if err != nil {
		return nil, fmt.Errorf("%w: reading delta payload: %v", ErrCorrupt, err)
	}
	if uint64(len(payload)) != length {
		return nil, fmt.Errorf("%w: delta truncated (%d of %d bytes)", ErrCorrupt, len(payload), length)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("%w: delta CRC mismatch", ErrCorrupt)
	}
	return payload, nil
}

// applyDeltaPayload decodes one delta record and installs its values,
// interning the delta's plan table into the pool. Later deltas win over
// earlier ones and over the base frame, matching append order.
func (ls *LazySpace) applyDeltaPayload(payload []byte) error {
	var d deltaDTO
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&d); err != nil {
		return fmt.Errorf("%w: decoding delta: %v", ErrCorrupt, err)
	}
	n := len(d.Points)
	if len(d.Costs) != n || len(d.PlanIdx) != n || len(d.Exact) != n {
		return fmt.Errorf("%w: delta arrays (%d, %d, %d, %d) inconsistent",
			ErrCorrupt, n, len(d.Costs), len(d.PlanIdx), len(d.Exact))
	}
	ids := make([]int32, len(d.PlanRoots))
	for i, root := range d.PlanRoots {
		if root == nil {
			return fmt.Errorf("%w: delta plan %d is nil", ErrCorrupt, i)
		}
		if err := root.Validate(); err != nil {
			return fmt.Errorf("%w: delta plan %d invalid: %v", ErrCorrupt, i, err)
		}
		ids[i] = ls.AddPlan(root)
	}
	np := ls.Geometry().NumPoints()
	for i, pt := range d.Points {
		if pt < 0 || int(pt) >= np {
			return fmt.Errorf("%w: delta point %d outside grid", ErrCorrupt, pt)
		}
		if c := d.Costs[i]; !(c > 0) || math.IsInf(c, 1) {
			return fmt.Errorf("%w: delta point %d cost %v not a positive finite number", ErrCorrupt, pt, c)
		}
		li := d.PlanIdx[i]
		if li < 0 || int(li) >= len(ids) {
			return fmt.Errorf("%w: delta point references plan %d of %d", ErrCorrupt, li, len(ids))
		}
		ls.preload(pt, d.Costs[i], ids[li], d.Exact[i])
	}
	return nil
}

package ess

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzLoad throws arbitrary bytes at both snapshot decoders. Load and
// LoadLazy consume attacker-controllable input in the server's
// warm-load path, so they must never panic or over-allocate: every
// malformed input is rejected with an error, and any input either
// accepts yields a coherent space.
func FuzzLoad(f *testing.F) {
	s := buildSpace(f, 6)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		f.Fatal(err)
	}
	raw := buf.Bytes()

	f.Add(raw)
	f.Add(raw[:len(raw)/2])
	f.Add(raw[:headerSize])
	f.Add([]byte("not a snapshot"))
	f.Add([]byte(snapshotMagic))
	// Lying length field.
	lying := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint64(lying[len(snapshotMagic)+4:], 1<<29)
	f.Add(lying)
	// Flipped payload byte (CRC must catch it).
	flipped := append([]byte(nil), raw...)
	flipped[headerSize+len(flipped[headerSize:])/2] ^= 1
	f.Add(flipped)

	// Sparse base frame plus refinement deltas, and mutations aimed at
	// the delta decoder: truncated tails, flipped delta payload bytes,
	// and a delta frame with no base in front of it.
	ls, err := BuildLazy(s.Q, s.BaseEnv, s.Model, Config{Res: 6, Exact: true})
	if err != nil {
		f.Fatal(err)
	}
	mark := make(map[int32]bool)
	var lbuf bytes.Buffer
	if err := ls.Save(&lbuf); err != nil {
		f.Fatal(err)
	}
	ls.DeltaSince(mark)
	baseLen := lbuf.Len()
	ls.ContourAt(nil, 0)
	if d := ls.DeltaSince(mark); d != nil {
		if err := ls.AppendDelta(&lbuf, d); err != nil {
			f.Fatal(err)
		}
	}
	lraw := lbuf.Bytes()
	f.Add(lraw)
	f.Add(lraw[:baseLen])
	f.Add(lraw[:baseLen+(len(lraw)-baseLen)/2])
	f.Add(lraw[baseLen:])
	f.Add([]byte(deltaMagic))
	dflip := append([]byte(nil), lraw...)
	dflip[baseLen+headerSize+(len(lraw)-baseLen-headerSize)/2] ^= 1
	f.Add(dflip)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("oversized input")
		}
		sp, err := Load(bytes.NewReader(data), s.Q, s.BaseEnv, s.Model)
		if err == nil {
			// Accepted snapshots must be fully coherent.
			if sp.Grid.NumPoints() != len(sp.PointPlan) || len(sp.PointPlan) != len(sp.PointCost) {
				t.Fatal("accepted snapshot with inconsistent point arrays")
			}
			for _, pid := range sp.PointPlan {
				if pid < 0 || int(pid) >= sp.NumPlans() {
					t.Fatalf("accepted snapshot with out-of-pool plan id %d", pid)
				}
			}
			if !(sp.Cmin > 0) || sp.Cmax < sp.Cmin {
				t.Fatal("accepted snapshot with degenerate cost surface")
			}
		}
		lz, err := LoadLazy(bytes.NewReader(data), s.Q, s.BaseEnv, s.Model, Config{Exact: true})
		if err != nil {
			return // rejected cleanly — the only acceptable failure mode
		}
		cmin, cmax := lz.Bounds()
		if !(cmin > 0) || cmax < cmin {
			t.Fatal("accepted lazy snapshot with degenerate cost surface")
		}
		np := lz.Geometry().NumPoints()
		for _, pt := range lz.SettledPoints() {
			if pt < 0 || int(pt) >= np {
				t.Fatalf("accepted lazy snapshot with settled point %d outside grid", pt)
			}
			c, pid, _ := lz.ValueAt(pt)
			if !(c > 0) {
				t.Fatalf("accepted lazy snapshot with cost %v at point %d", c, pt)
			}
			if pid < 0 || int(pid) >= lz.NumPlans() {
				t.Fatalf("accepted lazy snapshot with out-of-pool plan id %d", pid)
			}
		}
	})
}

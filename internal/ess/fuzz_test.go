package ess

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzLoad throws arbitrary bytes at the snapshot loader. Load consumes
// attacker-controllable input in the server's warm-load path, so it
// must never panic or over-allocate: every malformed input is rejected
// with an error, and any input it accepts yields a coherent space.
func FuzzLoad(f *testing.F) {
	s := buildSpace(f, 6)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		f.Fatal(err)
	}
	raw := buf.Bytes()

	f.Add(raw)
	f.Add(raw[:len(raw)/2])
	f.Add(raw[:headerSize])
	f.Add([]byte("not a snapshot"))
	f.Add([]byte(snapshotMagic))
	// Lying length field.
	lying := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint64(lying[len(snapshotMagic)+4:], 1<<29)
	f.Add(lying)
	// Flipped payload byte (CRC must catch it).
	flipped := append([]byte(nil), raw...)
	flipped[headerSize+len(flipped[headerSize:])/2] ^= 1
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("oversized input")
		}
		sp, err := Load(bytes.NewReader(data), s.Q, s.BaseEnv, s.Model)
		if err != nil {
			return // rejected cleanly — the only acceptable failure mode
		}
		// Accepted snapshots must be fully coherent.
		if sp.Grid.NumPoints() != len(sp.PointPlan) || len(sp.PointPlan) != len(sp.PointCost) {
			t.Fatal("accepted snapshot with inconsistent point arrays")
		}
		for _, pid := range sp.PointPlan {
			if pid < 0 || int(pid) >= sp.NumPlans() {
				t.Fatalf("accepted snapshot with out-of-pool plan id %d", pid)
			}
		}
		if !(sp.Cmin > 0) || sp.Cmax < sp.Cmin {
			t.Fatal("accepted snapshot with degenerate cost surface")
		}
	})
}

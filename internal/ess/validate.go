package ess

import (
	"fmt"

	"repro/internal/optimizer"
)

// Validate re-optimizes every grid point exactly and checks the built
// surface against the true optimum: PointCost may never undercut it, and
// may exceed it by at most a relative factor theta. With theta <= 0 the
// check is strict — cost bitwise equal and the recorded plan's signature
// identical to the DP winner's. Intended for small grids (it costs one
// exact sweep); the recost pipeline's acceptance rule is designed to
// keep surfaces within its Config.Theta of exact.
func (s *Space) Validate(theta float64) error {
	runner := s.opt.NewRunner()
	env := s.BaseEnv.Clone()
	sel := make([]float64, s.Grid.D)
	n := s.Grid.NumPoints()
	for pt := 0; pt < n; pt++ {
		s.Grid.Sel(pt, sel)
		optimizer.SetEPPSel(env, s.Q, sel)
		best := runner.Best(env)
		if best == nil {
			return fmt.Errorf("ess: validate: no plan at point %d", pt)
		}
		got := s.PointCost[pt]
		if theta <= 0 {
			if got != best.Cost {
				return fmt.Errorf("ess: validate: point %d cost %v != exact %v", pt, got, best.Cost)
			}
			if sig := best.Root.Signature(); s.Plan(s.PointPlan[pt]).Sig != sig {
				return fmt.Errorf("ess: validate: point %d plan %s != exact %s",
					pt, s.Plan(s.PointPlan[pt]).Sig, sig)
			}
			continue
		}
		if got < best.Cost*(1-1e-9) {
			return fmt.Errorf("ess: validate: point %d cost %v below optimum %v (recost surface must upper-bound)",
				pt, got, best.Cost)
		}
		if got > best.Cost*(1+theta)*(1+1e-9) {
			return fmt.Errorf("ess: validate: point %d cost %v exceeds optimum %v by more than theta=%v",
				pt, got, best.Cost, theta)
		}
	}
	return nil
}

package ess

import (
	"bytes"
	"encoding/gob"
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
)

// buildLazyFrom constructs a lazy space over the same fixture query as
// buildSpace, with the given settle policy.
func buildLazyFrom(t testing.TB, res int, cfg Config) *LazySpace {
	t.Helper()
	s := buildSpace(t, 2) // warm fixture for query/env/model only
	cfg.Res = res
	ls, err := BuildLazy(s.Q, s.BaseEnv, s.Model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ls
}

// lazySnapshotBytes serializes the lazy space's base frame.
func lazySnapshotBytes(t *testing.T, ls *LazySpace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ls.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLazySnapshotRoundTrip(t *testing.T) {
	ls := buildLazyFrom(t, 8, Config{Exact: true})
	// Settle a representative set: every full-grid contour.
	for ci := 0; ci < ls.NumContours(); ci++ {
		ls.ContourAt(nil, ci)
	}
	raw := lazySnapshotBytes(t, ls)

	got, err := LoadLazyWith(bytes.NewReader(raw), ls.Query(), ls.inner.BaseEnv, ls.inner.Model,
		Config{Exact: true}, LoadOptions{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	want := ls.SettledPoints()
	if g := got.SettledPoints(); len(g) != len(want) {
		t.Fatalf("reloaded %d settled points, want %d", len(g), len(want))
	}
	for _, pt := range want {
		wc, _, wx := ls.ValueAt(pt)
		gc, _, gx := got.ValueAt(pt)
		if wc != gc || wx != gx {
			t.Fatalf("point %d: (%v, %v) != (%v, %v)", pt, gc, gx, wc, wx)
		}
		ws := ls.Plan(ls.PlanAt(pt)).Sig
		gs := got.Plan(got.PlanAt(pt)).Sig
		if ws != gs {
			t.Fatalf("point %d plan %s != %s", pt, gs, ws)
		}
	}
	for ci := 0; ci < ls.NumContours(); ci++ {
		a, b := ls.ContourAt(nil, ci), got.ContourAt(nil, ci)
		if a.Cost != b.Cost || len(a.Points) != len(b.Points) {
			t.Fatalf("contour %d differs after reload", ci)
		}
		for j := range a.Points {
			if a.Points[j] != b.Points[j] {
				t.Fatalf("contour %d point %d: %d != %d", ci, j, a.Points[j], b.Points[j])
			}
		}
	}
	if mode := got.Profile().Mode; mode != "lazy-exact" {
		t.Fatalf("reloaded mode %q", mode)
	}
}

func TestLazySnapshotDeltaAppend(t *testing.T) {
	ls := buildLazyFrom(t, 8, Config{Theta: 0.5, CoarseStep: 2})
	dir := t.TempDir()
	path := filepath.Join(dir, "lazy.snap")

	// Persist the base with only the construction anchors settled, then
	// settle the whole surface and refine a slice: both land in deltas.
	mark := make(map[int32]bool)
	if err := ls.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	ls.DeltaSince(mark) // base already holds these; advance the watermark

	for ci := 0; ci < ls.NumContours(); ci++ {
		ls.ContourAt(nil, ci)
	}
	d1 := ls.DeltaSince(mark)
	if d1 == nil {
		t.Fatal("settling produced no delta")
	}
	if err := ls.AppendDeltaFile(path, d1); err != nil {
		t.Fatal(err)
	}

	g := ls.Geometry()
	for idx := 0; idx < g.Res; idx++ {
		ls.Observe(0, idx)
	}
	changed := ls.ApplyRefinements()
	if d2 := ls.DeltaSince(mark); d2 != nil {
		if changed > 0 && len(d2.Points) < changed {
			t.Fatalf("refinement delta has %d points, %d changed", len(d2.Points), changed)
		}
		if err := ls.AppendDeltaFile(path, d2); err != nil {
			t.Fatal(err)
		}
	} else if changed > 0 {
		t.Fatal("refinement changed points but produced no delta")
	}

	got, err := LoadLazyFile(path, ls.Query(), ls.inner.BaseEnv, ls.inner.Model,
		Config{Theta: 0.5, CoarseStep: 2}, LoadOptions{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	// Every settled point's current (post-refinement) value survives.
	for _, pt := range ls.SettledPoints() {
		wc, _, _ := ls.ValueAt(pt)
		gc, _, _ := got.ValueAt(pt)
		if wc != gc {
			t.Fatalf("point %d: reloaded %v, want %v", pt, gc, wc)
		}
	}
	// Idempotent watermark: nothing new to persist.
	if d := ls.DeltaSince(mark); d != nil {
		t.Fatalf("watermark regressed: %d points re-emitted", len(d.Points))
	}
}

func TestLazyDeltaTornTailIsCorrupt(t *testing.T) {
	ls := buildLazyFrom(t, 8, Config{Exact: true})
	dir := t.TempDir()
	path := filepath.Join(dir, "lazy.snap")
	mark := make(map[int32]bool)
	if err := ls.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	ls.DeltaSince(mark)
	ls.ContourAt(nil, 0)
	d := ls.DeltaSince(mark)
	if d == nil {
		t.Fatal("no delta to append")
	}

	in := faultinject.New(faultinject.Config{
		Seed:  11,
		Rates: map[faultinject.Site]float64{faultinject.SiteSnapshotSave: 1},
	})
	if err := ls.AppendDeltaFileWith(path, d, in); err == nil {
		t.Fatal("fault-injected append must fail")
	}
	// The torn tail is on disk (append is deliberately non-atomic) and
	// the loader must quarantine the whole snapshot, not skip the tail.
	if _, err := LoadLazyFile(path, ls.Query(), ls.inner.BaseEnv, ls.inner.Model,
		Config{Exact: true}, LoadOptions{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn delta tail: got %v, want ErrCorrupt", err)
	}

	// A clean retry of the same delta after rewriting the base recovers.
	if err := ls.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLazyFile(path, ls.Query(), ls.inner.BaseEnv, ls.inner.Model,
		Config{Exact: true}, LoadOptions{Strict: true}); err != nil {
		t.Fatalf("rebuilt snapshot does not load: %v", err)
	}
}

func TestDenseAndLazyLoadersRejectEachOther(t *testing.T) {
	s := buildSpace(t, 8)
	dense := snapshotBytes(t, s)
	ls := buildLazyFrom(t, 8, Config{Exact: true})
	sparse := lazySnapshotBytes(t, ls)

	if _, err := Load(bytes.NewReader(sparse), s.Q, s.BaseEnv, s.Model); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("dense loader accepted a sparse frame: %v", err)
	}
	if _, err := LoadLazy(bytes.NewReader(dense), s.Q, s.BaseEnv, s.Model, Config{}); err == nil {
		t.Fatal("lazy loader accepted a dense frame")
	}
}

func TestLazyStrictLoadCatchesDrift(t *testing.T) {
	ls := buildLazyFrom(t, 8, Config{Exact: true})
	for ci := 0; ci < ls.NumContours(); ci++ {
		ls.ContourAt(nil, ci)
	}
	// Corrupt one settled non-anchor point before saving: save-time
	// verification must refuse to sign (GridSig 0), and the strict load
	// must then catch the drift the anchors cannot see.
	anchors := map[int32]bool{
		int32(ls.Geometry().Origin()): true, int32(ls.Geometry().Terminus()): true,
	}
	victim := int32(-1)
	for _, pt := range ls.SettledPoints() {
		if !anchors[pt] {
			victim = pt
			break
		}
	}
	if victim < 0 {
		t.Fatal("no non-anchor settled point")
	}
	const drift = 1 + 1e-3
	ls.inner.PointCost[victim] *= drift
	raw := lazySnapshotBytes(t, ls)
	ls.inner.PointCost[victim] /= drift

	var dto spaceDTO
	if err := decodeFramePayload(raw, &dto); err != nil {
		t.Fatal(err)
	}
	if dto.GridSig != 0 {
		t.Fatal("save-time verification signed a drifted frame")
	}
	if _, err := LoadLazyWith(bytes.NewReader(raw), ls.Query(), ls.inner.BaseEnv, ls.inner.Model,
		Config{Exact: true}, LoadOptions{Strict: true}); err == nil {
		t.Fatal("strict lazy load must catch point cost drift")
	}

	// The clean frame carries a signature and strict-loads through the
	// fast path.
	clean := lazySnapshotBytes(t, ls)
	if err := decodeFramePayload(clean, &dto); err != nil {
		t.Fatal(err)
	}
	if dto.GridSig == 0 {
		t.Fatal("clean frame not signed")
	}
	if _, err := LoadLazyWith(bytes.NewReader(clean), ls.Query(), ls.inner.BaseEnv, ls.inner.Model,
		Config{Exact: true}, LoadOptions{Strict: true}); err != nil {
		t.Fatal(err)
	}
}

func TestDenseStrictLoadFastPathIsSigned(t *testing.T) {
	s := buildSpace(t, 8)
	raw := snapshotBytes(t, s)
	var dto spaceDTO
	if err := decodeFramePayload(raw, &dto); err != nil {
		t.Fatal(err)
	}
	if dto.GridSig == 0 {
		t.Fatal("verified dense frame not signed")
	}
	if _, err := LoadWith(bytes.NewReader(raw), s.Q, s.BaseEnv, s.Model, LoadOptions{Strict: true}); err != nil {
		t.Fatal(err)
	}
}

// decodeFramePayload decodes the base frame's DTO out of raw snapshot
// bytes (test helper for signature assertions).
func decodeFramePayload(raw []byte, dto *spaceDTO) error {
	payload, err := readFrame(bytes.NewReader(raw))
	if err != nil {
		return err
	}
	return gob.NewDecoder(bytes.NewReader(payload)).Decode(dto)
}

package ess

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/cost"
	"repro/internal/optimizer"
)

// SweepStats reports the work profile of the POSP sweep that built a
// Space: how many grid points were settled by the exact DP versus by
// recosting pooled plans, and how much recosting work that took.
type SweepStats struct {
	// Points is the total number of grid locations.
	Points int
	// LatticeDP is the number of phase-1 coarse-lattice points (0 for an
	// exact sweep).
	LatticeDP int
	// DPCalls counts exact optimizer invocations: lattice seeds,
	// ambiguity fallbacks, and monotonicity repairs.
	DPCalls int
	// RecostPoints is the number of points settled by recosting pooled
	// plans instead of running the DP.
	RecostPoints int
	// RecostCalls counts individual plan recostings (cost.Model.Cost).
	RecostCalls int64
	// Fallbacks is the number of phase-2 points where the best recost
	// overran the corner-anchored estimate and the exact DP ran instead.
	Fallbacks int
	// Repairs counts points re-solved exactly by the monotonicity repair
	// pass, and RepairRounds the number of repair iterations.
	Repairs, RepairRounds int
}

// FallbackRate is the fraction of phase-2 (off-lattice) points that fell
// back to the exact DP.
func (st SweepStats) FallbackRate() float64 {
	phase2 := st.Points - st.LatticeDP
	if phase2 <= 0 {
		return 0
	}
	return float64(st.Fallbacks) / float64(phase2)
}

// DPReduction is the factor by which exact DP invocations dropped
// relative to the one-DP-per-point exact sweep.
func (st SweepStats) DPReduction() float64 {
	if st.DPCalls == 0 {
		return 1
	}
	return float64(st.Points) / float64(st.DPCalls)
}

// runParallel runs fn over items [0,n) on up to `workers` goroutines
// pulling indexes from a shared atomic counter, so a straggling item
// never serializes the tail the way static chunking does. The first
// error cancels the remaining work and is returned.
func runParallel(workers, n int, fn func(worker, i int) error) error {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var (
		next atomic.Int64
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	errc := make(chan error, 1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(w, i); err != nil {
					stop.Store(true)
					select {
					case errc <- err:
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errc:
		return err
	default:
		return nil
	}
}

// sweeper carries the shared state of one POSP sweep.
type sweeper struct {
	s   *Space
	cfg Config

	// The sweep owns a private, mutable pool; Space.publishPlans installs
	// it as the immutable snapshot once the sweep is done.
	poolMu sync.Mutex
	sigID  map[string]*PlanInfo
	plans  []*PlanInfo

	// exact marks points settled by the DP (vs. recost).
	exact []bool

	dpCalls     atomic.Int64
	recostCalls atomic.Int64
	recostPts   atomic.Int64
	fallbacks   atomic.Int64
}

// worker is per-goroutine sweep scratch.
type sweepWorker struct {
	runner *optimizer.Runner
	env    *cost.Env
	sel    []float64
	local  map[string]*PlanInfo // worker-local sig cache
}

func (sw *sweeper) newWorker() *sweepWorker {
	return &sweepWorker{
		runner: sw.s.opt.NewRunner(),
		env:    sw.s.BaseEnv.Clone(),
		sel:    make([]float64, sw.s.Grid.D),
		local:  make(map[string]*PlanInfo),
	}
}

// intern deduplicates a plan into the shared pool by signature.
func (sw *sweeper) intern(sig string, root func() *PlanInfo) *PlanInfo {
	sw.poolMu.Lock()
	defer sw.poolMu.Unlock()
	if p, ok := sw.sigID[sig]; ok {
		return p
	}
	info := root()
	info.ID = len(sw.plans)
	sw.plans = append(sw.plans, info)
	sw.sigID[sig] = info
	return info
}

// solve runs the exact DP at pt, records the optimum, and returns the
// interned pool entry. The returned pointer is safe to hold while other
// workers grow the pool.
func (sw *sweeper) solve(w *sweepWorker, pt int32) (*PlanInfo, error) {
	s := sw.s
	s.Grid.Sel(int(pt), w.sel)
	optimizer.SetEPPSel(w.env, s.Q, w.sel)
	best := w.runner.Best(w.env)
	if best == nil {
		return nil, fmt.Errorf("ess: optimizer found no plan at point %d", pt)
	}
	sw.dpCalls.Add(1)
	sig := best.Root.Signature()
	p, ok := w.local[sig]
	if !ok {
		p = sw.intern(sig, func() *PlanInfo { return &PlanInfo{Root: best.Root, Sig: sig} })
		w.local[sig] = p
	}
	s.PointPlan[pt] = int32(p.ID)
	s.PointCost[pt] = best.Cost
	if sw.exact != nil {
		sw.exact[pt] = true
	}
	return p, nil
}

// sweep dispatches to the exact or the recost-first pipeline and stamps
// Space.Stats.
func (s *Space) sweep(cfg Config) error {
	sw := &sweeper{s: s, cfg: cfg, sigID: make(map[string]*PlanInfo)}
	var err error
	if cfg.Exact || cfg.Theta <= 0 || cfg.CoarseStep <= 1 {
		err = sw.runExact()
	} else {
		sw.exact = make([]bool, s.Grid.NumPoints())
		err = sw.runRecost()
	}
	if err != nil {
		return err
	}
	s.publishPlans(sw.plans)
	s.Stats.Points = s.Grid.NumPoints()
	s.Stats.DPCalls = int(sw.dpCalls.Load())
	s.Stats.RecostPoints = int(sw.recostPts.Load())
	s.Stats.RecostCalls = sw.recostCalls.Load()
	s.Stats.Fallbacks = int(sw.fallbacks.Load())
	return nil
}

// runExact optimizes every grid location — the classic POSP enumeration.
func (sw *sweeper) runExact() error {
	n := sw.s.Grid.NumPoints()
	workers := makeWorkers(sw, sw.cfg.Workers)
	return runParallel(len(workers), n, func(w, pt int) error {
		_, err := sw.solve(workers[w], int32(pt))
		return err
	})
}

func makeWorkers(sw *sweeper, n int) []*sweepWorker {
	if n < 1 {
		n = 1
	}
	ws := make([]*sweepWorker, n)
	for i := range ws {
		ws[i] = sw.newWorker()
	}
	return ws
}

// lattice describes the phase-1 coarse sub-lattice: every k-th grid
// index per dimension, with the top index (and thus every grid corner)
// always included.
type lattice struct {
	idx   []int // the lattice indexes, ascending
	onLat []bool
	floor []int // per grid index, the lattice index at or below it
	ceil  []int // per grid index, the lattice index at or above it
}

func newLattice(res, step int) *lattice {
	l := &lattice{onLat: make([]bool, res), floor: make([]int, res), ceil: make([]int, res)}
	for i := 0; i < res; i += step {
		l.idx = append(l.idx, i)
	}
	if last := l.idx[len(l.idx)-1]; last != res-1 {
		l.idx = append(l.idx, res-1)
	}
	for _, i := range l.idx {
		l.onLat[i] = true
	}
	lo := 0
	for i := 0; i < res; i++ {
		if l.onLat[i] {
			lo = i
		}
		l.floor[i] = lo
	}
	hi := res - 1
	for i := res - 1; i >= 0; i-- {
		if l.onLat[i] {
			hi = i
		}
		l.ceil[i] = hi
	}
	return l
}

// points enumerates the full-lattice grid points (ascending by
// construction: dimension 0 is the outermost stride).
func (l *lattice) points(g *Grid) []int32 {
	var out []int32
	var rec func(d, lin int)
	rec = func(d, lin int) {
		if d == g.D {
			out = append(out, int32(lin))
			return
		}
		for _, i := range l.idx {
			rec(d+1, lin+i*g.strides[d])
		}
	}
	rec(0, 0)
	return out
}

// cells enumerates the coarse cells as their per-dimension interval
// starts; cell c covers grid coords [idx[c_d], idx[c_d+1]] on each dim.
func (l *lattice) cells(g *Grid) [][]int {
	m := len(l.idx) - 1 // intervals per dimension
	if m <= 0 {
		return nil
	}
	var out [][]int
	cur := make([]int, g.D)
	var rec func(d int)
	rec = func(d int) {
		if d == g.D {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := 0; i < m; i++ {
			cur[d] = i
			rec(d + 1)
		}
	}
	rec(0)
	return out
}

// cellCoords lists the grid coords cell interval i owns on one
// dimension: [idx[i], idx[i+1]), closing the top interval so every grid
// coord belongs to exactly one interval.
func (l *lattice) cellCoords(i int) []int {
	lo, hi := l.idx[i], l.idx[i+1]
	var out []int
	for c := lo; c < hi; c++ {
		out = append(out, c)
	}
	if i == len(l.idx)-2 {
		out = append(out, hi)
	}
	return out
}

// runRecost is the two-phase pipeline: exact DP on the coarse lattice to
// seed the plan pool, then recost-first coverage of the remaining points
// with DP fallback where the recost outcome is ambiguous, and a PCM
// monotonicity repair.
func (sw *sweeper) runRecost() error {
	s := sw.s
	g := s.Grid
	lat := newLattice(g.Res, sw.cfg.CoarseStep)

	// Phase 1: exact DP on the sub-lattice.
	pts := lat.points(g)
	workers := makeWorkers(sw, sw.cfg.Workers)
	if err := runParallel(len(workers), len(pts), func(w, i int) error {
		_, err := sw.solve(workers[w], pts[i])
		return err
	}); err != nil {
		return err
	}
	latticeDP := len(pts)

	// Phase 2: per coarse cell, settle off-lattice points from the solved
	// lattice neighbors, falling back to the DP where the recost outcome
	// is ambiguous.
	cells := lat.cells(g)
	if err := runParallel(len(workers), len(cells), func(w, i int) error {
		return sw.recostCell(workers[w], lat, cells[i])
	}); err != nil {
		return err
	}

	// Phase 3: relax across cell boundaries — plan-optimality regions do
	// not respect the coarse cells, so let every settled plan flow to
	// neighboring points where it is strictly cheaper than their current
	// assignment.
	sw.relax(workers[0])

	// Phase 4: repair any PCM monotonicity violations introduced where a
	// recost upper bound exceeds an exactly-solved successor.
	if err := sw.repair(workers[0]); err != nil {
		return err
	}
	sw.s.Stats.LatticeDP = latticeDP
	return nil
}

// relax floods settled plans across the grid: wherever a neighboring
// point's plan is strictly cheaper at a point than its current
// assignment, the point adopts it, and the adoption can propagate on
// the next visit. Alternating ascending/descending passes run to a
// fixpoint. Exact points are never displaced — no plan strictly beats
// an exact optimum — so only recost-settled points move, monotonically
// downward toward the true pool minimum. Runs sequentially after the
// parallel phases, so reads of the pool and the surface are safe.
func (sw *sweeper) relax(w *sweepWorker) {
	s := sw.s
	g := s.Grid
	n := g.NumPoints()
	for round := 0; ; round++ {
		changed := false
		for i := 0; i < n; i++ {
			pt := i
			if round%2 == 1 {
				pt = n - 1 - i
			}
			cur := s.PointCost[pt]
			curPlan := s.PointPlan[pt]
			positioned := false
			for d := 0; d < g.D; d++ {
				for _, nb := range [2]int{g.Step(pt, d), g.StepDown(pt, d)} {
					if nb < 0 {
						continue
					}
					np := s.PointPlan[nb]
					if np == curPlan {
						continue
					}
					if !positioned {
						w.position(s, int32(pt))
						positioned = true
					}
					if c := sw.planAt(w, sw.plans[np]); c < cur {
						cur, curPlan = c, np
						s.PointCost[pt] = c
						s.PointPlan[pt] = np
						changed = true
					}
				}
			}
		}
		if !changed {
			return
		}
	}
}

// planAt recosts one pooled plan at the worker env's current position.
func (sw *sweeper) planAt(w *sweepWorker, p *PlanInfo) float64 {
	sw.recostCalls.Add(1)
	return sw.s.Model.Cost(p.Root, w.env).Cost
}

func (w *sweepWorker) position(s *Space, pt int32) {
	s.Grid.Sel(int(pt), w.sel)
	optimizer.SetEPPSel(w.env, s.Q, w.sel)
}

// acceptedPoint records a recost-settled point and how many of the
// cell's candidates it has already been costed against.
type acceptedPoint struct {
	pt   int32
	seen int32
}

// recostCell settles every off-lattice point of one coarse cell from
// its already-solved lattice neighbors. The candidate list starts as
// the distinct plans the cell's 2^D corners chose and grows with every
// plan a fallback DP discovers inside the cell — region flooding: once
// a sliver plan invisible to the lattice surfaces at one point, the
// rest of its optimality region is settled by recost instead of more
// DPs. A final pass folds candidates discovered late into points
// accepted early, so every recost-settled point carries the minimum
// over the cell's full candidate set.
func (sw *sweeper) recostCell(w *sweepWorker, lat *lattice, cell []int) error {
	s := sw.s
	g := s.Grid
	theta := sw.cfg.Theta

	// Seed candidates: the distinct plans at the cell's 2^D corners.
	// Corner points were settled in phase 1, and the PlanInfo pointers
	// stay valid while other cells' fallbacks grow the pool. The exact
	// corner costs double as the anchor for the fallback gate: the grid
	// is geometric in selectivity and the cost model near log-linear
	// across a cell, so a multilinear interpolation of log corner costs
	// predicts the exact optimum at interior points well.
	nCorners := 1 << uint(g.D)
	logc := make([]float64, nCorners)
	cands := make([]*PlanInfo, 0, 8)
	for m := 0; m < nCorners; m++ {
		corner := 0
		for d := 0; d < g.D; d++ {
			i := cell[d]
			if m&(1<<uint(d)) != 0 {
				i++
			}
			corner += lat.idx[i] * g.strides[d]
		}
		logc[m] = math.Log(s.PointCost[corner])
		p := sw.planByID(s.PointPlan[corner])
		dup := false
		for _, q := range cands {
			if q == p {
				dup = true
				break
			}
		}
		if !dup {
			cands = append(cands, p)
		}
	}

	coords := make([][]int, g.D)
	for d := range coords {
		coords[d] = lat.cellCoords(cell[d])
	}
	wt := make([]float64, g.D)
	var accepted []acceptedPoint
	idx := make([]int, g.D)
	for {
		lin, allLat := 0, true
		for d := range idx {
			c := coords[d][idx[d]]
			lin += c * g.strides[d]
			if !lat.onLat[c] {
				allLat = false
			}
			lo, hi := lat.idx[cell[d]], lat.idx[cell[d]+1]
			wt[d] = float64(c-lo) / float64(hi-lo)
		}
		if !allLat && !sw.exact[lin] {
			pt := int32(lin)
			w.position(s, pt)
			c1 := math.Inf(1)
			var best *PlanInfo
			for _, p := range cands {
				c := sw.planAt(w, p)
				if c < c1 || (c == c1 && (best == nil || p.Sig < best.Sig)) {
					c1, best = c, p
				}
			}
			// Anchor gate: interpolate the exact corner costs (linear in
			// log-cost over index space) to estimate the optimum here. A
			// best recost within (1+θ) of the estimate is coherent with
			// the solved neighborhood; one that overshoots it suggests
			// the true plan is missing from the pool. With unanimous
			// corners the recost IS the region's plan and any gap to the
			// estimate is that plan's own curvature, so accept outright.
			lest := 0.0
			for m := 0; m < nCorners; m++ {
				t := logc[m]
				for d := 0; d < g.D; d++ {
					if m&(1<<uint(d)) != 0 {
						t *= wt[d]
					} else {
						t *= 1 - wt[d]
					}
				}
				lest += t
			}
			if c1 <= (1+theta)*math.Exp(lest) {
				s.PointPlan[pt] = int32(best.ID)
				s.PointCost[pt] = c1
				sw.recostPts.Add(1)
				accepted = append(accepted, acceptedPoint{pt: pt, seen: int32(len(cands))})
			} else {
				// The pool can't explain this point's cost: resolve
				// exactly and flood the discovery into the rest of the
				// cell.
				sw.fallbacks.Add(1)
				p, err := sw.solve(w, pt)
				if err != nil {
					return err
				}
				fresh := true
				for _, q := range cands {
					if q == p {
						fresh = false
						break
					}
				}
				if fresh {
					cands = append(cands, p)
				}
			}
		}
		d := g.D - 1
		for d >= 0 {
			idx[d]++
			if idx[d] < len(coords[d]) {
				break
			}
			idx[d] = 0
			d--
		}
		if d < 0 {
			break
		}
	}

	// Fold late discoveries into early acceptances: each settled point
	// ends up carrying the minimum over the full candidate list.
	for _, a := range accepted {
		if int(a.seen) == len(cands) {
			continue
		}
		sw.lowerWith(w, cands[a.seen:], a.pt)
	}
	return nil
}

// planByID reads a pool entry by ID under the pool lock (other workers
// may be appending to the pool concurrently).
func (sw *sweeper) planByID(id int32) *PlanInfo {
	sw.poolMu.Lock()
	defer sw.poolMu.Unlock()
	return sw.plans[id]
}

// lowerWith re-points a recost-settled point at any of the given plans
// that is cheaper there (ties broken toward the smaller signature, the
// DP's own tie-break).
func (sw *sweeper) lowerWith(w *sweepWorker, plans []*PlanInfo, pt int32) {
	s := sw.s
	w.position(s, pt)
	cur := s.PointCost[pt]
	curSig := sw.planByID(s.PointPlan[pt]).Sig
	for _, p := range plans {
		c := sw.planAt(w, p)
		if c < cur || (c == cur && p.Sig < curSig) {
			cur, curSig = c, p.Sig
			s.PointCost[pt] = c
			s.PointPlan[pt] = int32(p.ID)
		}
	}
}

// repair restores strict PCM monotonicity: wherever a recost-settled
// point's upper bound meets or exceeds a grid successor's cost, the
// point is re-solved exactly (the true optimum is strictly below its
// successors'). New plans surfaced by those DPs are folded back into the
// remaining recost-settled points, and the scan iterates to a fixpoint —
// each round converts at least one point to exact, so it terminates.
func (sw *sweeper) repair(w *sweepWorker) error {
	s := sw.s
	g := s.Grid
	n := g.NumPoints()
	for {
		var bad []int32
		for pt := 0; pt < n; pt++ {
			if sw.exact[pt] {
				continue
			}
			for d := 0; d < g.D; d++ {
				if nxt := g.Step(pt, d); nxt >= 0 && s.PointCost[nxt] <= s.PointCost[pt] {
					bad = append(bad, int32(pt))
					break
				}
			}
		}
		if len(bad) == 0 {
			return nil
		}
		s.Stats.RepairRounds++
		before := len(sw.plans)
		for _, pt := range bad {
			if _, err := sw.solve(w, pt); err != nil {
				return err
			}
			sw.recostPts.Add(-1) // the point is now exact, not recost-settled
			s.Stats.Repairs++
		}
		if delta := sw.plans[before:]; len(delta) > 0 {
			for pt := 0; pt < n; pt++ {
				if !sw.exact[pt] {
					sw.lowerWith(w, delta, int32(pt))
				}
			}
		}
	}
}

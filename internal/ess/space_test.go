package ess

import (
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/optimizer"
	"repro/internal/query"
	"repro/internal/sqlparse"
	"repro/internal/stats"
)

// buildSpace constructs a 2D space over a three-way TPC-DS join.
func buildSpace(t testing.TB, res int) *Space {
	t.Helper()
	cat, err := catalog.TPCDS(1)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sqlparse.Parse("test2d", cat, `
SELECT * FROM catalog_sales cs, date_dim d, customer c
WHERE cs.cs_sold_date_sk = d.date_dim_sk
  AND cs.cs_bill_customer_sk = c.c_customer_sk
  AND d.d_year = 2000`)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]string{
		{"cs.cs_sold_date_sk", "d.date_dim_sk"},
		{"cs.cs_bill_customer_sk", "c.c_customer_sk"},
	} {
		if err := sqlparse.MarkEPP(q, e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	st := stats.FromCatalog(cat)
	env := optimizer.BuildEnv(q, st)
	model := cost.NewModel(cost.DefaultParams())
	s, err := Build(q, env, model, Config{Res: res})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildBasics(t *testing.T) {
	s := buildSpace(t, 12)
	if s.Grid.NumPoints() != 144 {
		t.Fatalf("points = %d", s.Grid.NumPoints())
	}
	if s.NumPlans() < 2 {
		t.Errorf("POSP should contain multiple plans, got %d", s.NumPlans())
	}
	if s.Cmin <= 0 || s.Cmax <= s.Cmin {
		t.Fatalf("Cmin=%v Cmax=%v", s.Cmin, s.Cmax)
	}
	// Every point has a valid plan and a cost within [Cmin, Cmax].
	for pt := 0; pt < s.Grid.NumPoints(); pt++ {
		if s.PointCost[pt] < s.Cmin-1e-9 || s.PointCost[pt] > s.Cmax+1e-9 {
			t.Fatalf("point %d cost %v outside [Cmin,Cmax]", pt, s.PointCost[pt])
		}
		if int(s.PointPlan[pt]) >= s.NumPlans() {
			t.Fatalf("point %d has invalid plan id", pt)
		}
	}
}

func TestBuildRequiresEPPs(t *testing.T) {
	cat, err := catalog.TPCDS(1)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sqlparse.Parse("noepp", cat, `SELECT * FROM store s`)
	if err != nil {
		t.Fatal(err)
	}
	env := optimizer.BuildEnv(q, stats.FromCatalog(cat))
	if _, err := Build(q, env, cost.NewModel(cost.DefaultParams()), Config{Res: 4}); err == nil {
		t.Fatal("space without epps should error")
	}
}

func TestPointCostMonotoneOnGrid(t *testing.T) {
	s := buildSpace(t, 12)
	g := s.Grid
	for pt := 0; pt < g.NumPoints(); pt++ {
		for d := 0; d < g.D; d++ {
			if nxt := g.Step(pt, d); nxt >= 0 && s.PointCost[nxt] <= s.PointCost[pt] {
				t.Fatalf("optimal cost not increasing from %d to %d along dim %d", pt, nxt, d)
			}
		}
	}
}

func TestContourCostsDoubling(t *testing.T) {
	s := buildSpace(t, 12)
	costs := s.ContourCosts()
	if len(costs) < 3 {
		t.Fatalf("too few contours: %v", costs)
	}
	if costs[0] != s.Cmin {
		t.Error("first contour must be at Cmin")
	}
	if costs[len(costs)-1] != s.Cmax {
		t.Error("last contour must be capped at Cmax")
	}
	for i := 1; i < len(costs)-1; i++ {
		if math.Abs(costs[i]/costs[i-1]-2.0) > 1e-9 {
			t.Errorf("intermediate contour ratio %v, want 2.0", costs[i]/costs[i-1])
		}
	}
	if len(s.Contours) != len(costs) {
		t.Error("contour structs must match cost list")
	}
}

func TestFirstContourIsOrigin(t *testing.T) {
	s := buildSpace(t, 12)
	ic1 := s.Contours[0]
	if len(ic1.Points) != 1 || ic1.Points[0] != int32(s.Grid.Origin()) {
		t.Fatalf("IC1 points = %v, want just the origin", ic1.Points)
	}
}

func TestContourMembersAreMaximal(t *testing.T) {
	s := buildSpace(t, 12)
	g := s.Grid
	for _, c := range s.Contours {
		if len(c.Points) == 0 {
			t.Fatalf("contour %d empty", c.Index)
		}
		for _, pt := range c.Points {
			if s.PointCost[pt] > c.Cost*(1+1e-6) {
				t.Fatalf("contour %d point %d exceeds budget", c.Index, pt)
			}
			for d := 0; d < g.D; d++ {
				if nxt := g.Step(int(pt), d); nxt >= 0 && s.PointCost[nxt] <= c.Cost*(1-1e-9) {
					t.Fatalf("contour %d point %d has in-budget successor", c.Index, pt)
				}
			}
		}
	}
}

// Every hypograph point must be dominated by some contour point — the
// discrete guarantee behind PlanBouquet/SpillBound completeness.
func TestContourDominatesHypograph(t *testing.T) {
	s := buildSpace(t, 10)
	g := s.Grid
	for _, c := range s.Contours {
		for pt := 0; pt < g.NumPoints(); pt++ {
			if s.PointCost[pt] > c.Cost {
				continue
			}
			found := false
			for _, cp := range c.Points {
				if g.Dominates(int(cp), pt) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("hypograph point %d of contour %d not dominated", pt, c.Index)
			}
		}
	}
}

func TestLastContourContainsTerminus(t *testing.T) {
	s := buildSpace(t, 10)
	last := s.Contours[len(s.Contours)-1]
	found := false
	for _, pt := range last.Points {
		if int(pt) == s.Grid.Terminus() {
			found = true
		}
	}
	if !found {
		t.Fatal("terminus must sit on the final contour")
	}
}

func TestEvaluatorPlanCostMatchesPointCost(t *testing.T) {
	s := buildSpace(t, 10)
	ev := s.NewEvaluator()
	for pt := int32(0); pt < int32(s.Grid.NumPoints()); pt++ {
		got := ev.PlanCost(s.PointPlan[pt], pt)
		if math.Abs(got-s.PointCost[pt]) > 1e-6*s.PointCost[pt] {
			t.Fatalf("recost %v != sweep cost %v at %d", got, s.PointCost[pt], pt)
		}
	}
}

func TestEvaluatorOptimality(t *testing.T) {
	// No pool plan may beat the recorded optimal cost anywhere.
	s := buildSpace(t, 8)
	ev := s.NewEvaluator()
	for pt := int32(0); pt < int32(s.Grid.NumPoints()); pt++ {
		for pid := range s.Plans() {
			if ev.PlanCost(int32(pid), pt) < s.PointCost[pt]*(1-1e-9) {
				t.Fatalf("plan %d beats optimal at point %d", pid, pt)
			}
		}
	}
}

func TestSpillCostBelowFullCost(t *testing.T) {
	s := buildSpace(t, 8)
	ev := s.NewEvaluator()
	for pt := int32(0); pt < int32(s.Grid.NumPoints()); pt += 7 {
		pid := s.PointPlan[pt]
		for d := 0; d < s.Grid.D; d++ {
			sc := ev.SpillCost(pid, pt, d)
			if sc > ev.PlanCost(pid, pt)+1e-9 {
				t.Fatalf("spill cost %v exceeds plan cost at pt %d dim %d", sc, pt, d)
			}
		}
	}
}

func TestSpillDimCoversAllPlans(t *testing.T) {
	s := buildSpace(t, 8)
	full := uint16(1<<uint(s.Grid.D)) - 1
	for pid := range s.Plans() {
		d := s.SpillDim(int32(pid), full)
		if d < 0 || d >= s.Grid.D {
			t.Fatalf("plan %d: spill dim %d with all epps remaining", pid, d)
		}
		// Memoized second call must agree.
		if d2 := s.SpillDim(int32(pid), full); d2 != d {
			t.Fatal("SpillDim not deterministic")
		}
	}
	// Empty remaining set → -1.
	if s.SpillDim(0, 0) != -1 {
		t.Error("no remaining epps should yield -1")
	}
}

func TestMaxSelIndexWithin(t *testing.T) {
	s := buildSpace(t, 12)
	ev := s.NewEvaluator()
	// Take a mid contour and its first point/plan.
	c := s.Contours[len(s.Contours)/2]
	pt := c.Points[0]
	pid := s.PointPlan[pt]
	d := s.SpillDim(pid, uint16(1<<uint(s.Grid.D))-1)
	k := ev.MaxSelIndexWithin(pid, pt, d, c.Cost)
	if k < s.Grid.Coord(int(pt), d) {
		t.Fatalf("guaranteed learning index %d below the point's own coordinate %d (Lemma 3.1)",
			k, s.Grid.Coord(int(pt), d))
	}
	// Check the boundary: cost at k within budget; at k+1 above.
	base := int(pt) - s.Grid.Coord(int(pt), d)*s.Grid.strides[d]
	if got := ev.spillAt(pid, base, d, k); got > c.Cost {
		t.Errorf("spill cost at learned index exceeds budget: %v > %v", got, c.Cost)
	}
	if k+1 < s.Grid.Res {
		if got := ev.spillAt(pid, base, d, k+1); got <= c.Cost {
			t.Errorf("spill cost at k+1 should exceed budget")
		}
	}
	// A zero budget can't even cover index 0.
	if ev.MaxSelIndexWithin(pid, pt, d, 0) != -1 {
		t.Error("zero budget should return -1")
	}
}

func TestContoursForSliceLine(t *testing.T) {
	s := buildSpace(t, 12)
	// Pin dimension 0 to some index; the slice is a 1D line in dim 1.
	learned := []int{4, -1}
	cs := s.ContoursFor(learned)
	if len(cs) != len(s.Contours) {
		t.Fatal("slice contour count must match global budget list")
	}
	for _, c := range cs {
		if len(c.Points) > 1 {
			t.Fatalf("1D slice contour %d has %d points, want ≤1", c.Index, len(c.Points))
		}
		for _, pt := range c.Points {
			if s.Grid.Coord(int(pt), 0) != 4 {
				t.Fatal("slice point outside the slice")
			}
		}
	}
	// Caching: same slice returns identical data.
	cs2 := s.ContoursFor([]int{4, -1})
	if &cs[0] != &cs2[0] {
		t.Error("slice contours should be cached")
	}
	// Nothing learned → the precomputed global contours.
	csAll := s.ContoursFor([]int{-1, -1})
	if &csAll[0] != &s.Contours[0] {
		t.Error("unlearned slice should be the global contours")
	}
}

func TestSliceContourDominatesSliceHypograph(t *testing.T) {
	s := buildSpace(t, 10)
	g := s.Grid
	learned := []int{3, -1}
	cs := s.ContoursFor(learned)
	for _, c := range cs {
		for k := 0; k < g.Res; k++ {
			pt := g.Linear([]int{3, k})
			if s.PointCost[pt] > c.Cost {
				continue
			}
			dominated := false
			for _, cp := range c.Points {
				if g.Coord(int(cp), 1) >= k {
					dominated = true
				}
			}
			if !dominated {
				t.Fatalf("slice hypograph point %d not covered on contour %d", pt, c.Index)
			}
		}
	}
}

func TestAddPlanDedup(t *testing.T) {
	s := buildSpace(t, 8)
	existing := s.Plans()[0]
	if got := s.AddPlan(existing.Root); got != 0 {
		t.Fatalf("AddPlan of existing = %d, want 0", got)
	}
	n := s.NumPlans()
	// A fresh structure extends the pool.
	q := s.Q
	_ = q
	root := s.Plans()[s.NumPlans()-1].Root
	if got := s.AddPlan(root); int(got) != s.NumPlans()-1 {
		t.Error("AddPlan dedup by signature broken")
	}
	if s.NumPlans() != n {
		t.Error("AddPlan must not duplicate")
	}
}

func TestRhoUnreducedAndReduce(t *testing.T) {
	s := buildSpace(t, 12)
	rho := s.RhoUnreduced()
	if rho < 1 {
		t.Fatal("rho must be positive")
	}
	red := s.Reduce(0.2)
	if red.Rho > rho {
		t.Fatalf("reduction increased rho: %d > %d", red.Rho, rho)
	}
	if red.Rho < 1 {
		t.Fatal("reduced rho must be positive")
	}
	// Validity: every reassigned point's plan within (1+λ) of optimal.
	ev := s.NewEvaluator()
	for pt, pid := range red.PointPlan {
		if c := ev.PlanCost(pid, pt); c > 1.2*s.PointCost[pt]*(1+1e-9) {
			t.Fatalf("reduced plan exceeds threshold at %d: %v vs %v", pt, c, s.PointCost[pt])
		}
	}
	// Zero lambda keeps the original assignment.
	red0 := s.Reduce(0)
	for pt, pid := range red0.PointPlan {
		if pid != s.PointPlan[pt] {
			t.Fatal("lambda=0 must not reassign")
		}
	}
	// Large lambda collapses towards fewer plans.
	redBig := s.Reduce(10)
	if redBig.Rho > red.Rho {
		t.Error("larger lambda should not increase rho")
	}
}

func TestQueryAccessors(t *testing.T) {
	s := buildSpace(t, 8)
	if s.Optimizer() == nil || s.Optimizer().Query() != s.Q {
		t.Fatal("Optimizer accessor broken")
	}
	var _ *query.Query = s.Q
}

package ess

import (
	"bytes"
	"testing"

	"repro/internal/cost"
	"repro/internal/optimizer"
	"repro/internal/sqlparse"
	"repro/internal/stats"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	s := buildSpace(t, 10)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, s.Q, s.BaseEnv, s.Model)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Grid.NumPoints() != s.Grid.NumPoints() || loaded.Grid.D != s.Grid.D {
		t.Fatal("grid shape mismatch")
	}
	if loaded.NumPlans() != s.NumPlans() {
		t.Fatalf("plan pool %d != %d", loaded.NumPlans(), s.NumPlans())
	}
	for i := range s.Plans() {
		if loaded.Plans()[i].Sig != s.Plans()[i].Sig {
			t.Fatalf("plan %d signature differs", i)
		}
	}
	for pt := range s.PointCost {
		if loaded.PointCost[pt] != s.PointCost[pt] || loaded.PointPlan[pt] != s.PointPlan[pt] {
			t.Fatalf("point %d differs after reload", pt)
		}
	}
	if len(loaded.Contours) != len(s.Contours) {
		t.Fatal("contours differ after reload")
	}
	for i := range s.Contours {
		if len(loaded.Contours[i].Points) != len(s.Contours[i].Points) {
			t.Fatalf("contour %d membership differs", i)
		}
	}
	// The reloaded space is fully operational: evaluator + spill dims.
	ev := loaded.NewEvaluator()
	pid := loaded.PointPlan[0]
	if c := ev.PlanCost(pid, 0); c != loaded.PointCost[0] {
		t.Fatalf("reloaded evaluator recost %v != %v", c, loaded.PointCost[0])
	}
	if d := loaded.SpillDim(pid, 0b11); d < 0 {
		t.Fatal("reloaded spill identification broken")
	}
}

func TestLoadRejectsWrongQuery(t *testing.T) {
	s := buildSpace(t, 8)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other, err := sqlparse.Parse("other", s.Q.Cat, `SELECT * FROM store_sales ss, date_dim d
		WHERE ss.ss_sold_date_sk = d.date_dim_sk`)
	if err != nil {
		t.Fatal(err)
	}
	if err := sqlparse.MarkEPP(other, "ss.ss_sold_date_sk", "d.date_dim_sk"); err != nil {
		t.Fatal(err)
	}
	env := optimizer.BuildEnv(other, stats.FromCatalog(other.Cat))
	if _, err := Load(&buf, other, env, s.Model); err == nil {
		t.Fatal("loading into a different query must fail")
	}
}

func TestLoadRejectsWrongEnvironment(t *testing.T) {
	s := buildSpace(t, 8)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Perturb the environment: costs will no longer match the snapshot.
	env := s.BaseEnv.Clone()
	for i := range env.FilteredRows {
		env.FilteredRows[i] *= 3
	}
	if _, err := Load(&buf, s.Q, env, s.Model); err == nil {
		t.Fatal("loading under a different environment must fail the spot check")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	s := buildSpace(t, 8)
	if _, err := Load(bytes.NewBufferString("not gob"), s.Q, s.BaseEnv, s.Model); err == nil {
		t.Fatal("garbage input must fail")
	}
}

func TestLoadRejectsWrongModelParams(t *testing.T) {
	s := buildSpace(t, 8)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	p := cost.DefaultParams()
	p.HashBuild *= 10
	if _, err := Load(&buf, s.Q, s.BaseEnv, cost.NewModel(p)); err == nil {
		t.Fatal("loading under different cost params must fail the spot check")
	}
}

package ess

import "sort"

// Reduction is an anorexic reduction (Harish et al., VLDB 2007) of the
// plan assignment on the contour points: plans whose contour territory
// can be taken over by another plan at ≤ (1+Lambda) cost inflation are
// swallowed, shrinking the bouquet PlanBouquet must execute. The
// reduction preserves the PB guarantee with budgets inflated to
// (1+Lambda)·CC_i, giving MSO ≤ 4(1+Lambda)·ρ_red.
type Reduction struct {
	// Lambda is the cost-inflation threshold (paper default 0.2).
	Lambda float64
	// PointPlan maps contour points to their (possibly replaced) plan.
	PointPlan map[int32]int32
	// ContourPlans lists, per contour, the distinct surviving plan IDs,
	// ordered by plan signature (the build-independent canonical order).
	ContourPlans [][]int32
	// Rho is the maximum plan count over all contours after reduction —
	// the ρ_red in PlanBouquet's 4(1+λ)ρ_red guarantee.
	Rho int
}

// ReduceSource computes the anorexic reduction of the source's contour
// plan diagram at threshold lambda, using the CostGreedy strategy: try
// to swallow small-territory plans into large-territory ones whenever
// the replacement never exceeds (1+lambda) of optimal anywhere in the
// swallowed territory.
//
// All orderings are keyed by plan signature, not pool ID: pool IDs
// depend on settle order (and, for a lazy source, on which points
// discovery happened to touch first), while signatures are canonical —
// so eager and lazy sources over the same surface reduce identically.
func ReduceSource(src ContourSource, lambda float64) *Reduction {
	r := &Reduction{Lambda: lambda, PointPlan: make(map[int32]int32)}

	// Collect the contour points and the plan territories on them.
	territory := make(map[int32][]int32) // planID -> points
	for ci := 0; ci < src.NumContours(); ci++ {
		for _, pt := range src.ContourAt(nil, ci).Points {
			if _, seen := r.PointPlan[pt]; seen {
				continue // a point can sit on two adjacent contours
			}
			pid := src.PlanAt(pt)
			r.PointPlan[pt] = pid
			territory[pid] = append(territory[pid], pt)
		}
	}

	ev := src.NewEvaluator()
	removed := make(map[int32]bool)
	threshold := 1 + lambda
	sig := func(pid int32) string { return src.Plan(pid).Sig }
	// Multi-pass greedy to a fixpoint: each pass tries to swallow the
	// smallest surviving territory into the surviving plan (from the
	// full POSP pool) that covers it within threshold, preferring
	// swallowers that already hold large territories so the assignment
	// converges onto few plans.
	for changed := true; changed; {
		changed = false
		plans := make([]int32, 0, len(territory))
		for pid := range territory {
			if !removed[pid] {
				plans = append(plans, pid)
			}
		}
		sort.Slice(plans, func(a, b int) bool {
			ta, tb := len(territory[plans[a]]), len(territory[plans[b]])
			if ta != tb {
				return ta < tb
			}
			return sig(plans[a]) < sig(plans[b])
		})
		for i, victim := range plans {
			if removed[victim] {
				continue
			}
			for j := len(plans) - 1; j > i; j-- {
				cand := plans[j]
				if removed[cand] || cand == victim {
					continue
				}
				ok := true
				for _, pt := range territory[victim] {
					if ev.PlanCost(cand, pt) > threshold*src.CostAt(pt) {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				for _, pt := range territory[victim] {
					r.PointPlan[pt] = cand
				}
				territory[cand] = append(territory[cand], territory[victim]...)
				delete(territory, victim)
				removed[victim] = true
				changed = true
				break
			}
		}
	}

	// Per-contour surviving plan lists (signature order) and ρ_red.
	r.ContourPlans = make([][]int32, src.NumContours())
	for i := range r.ContourPlans {
		seen := make(map[int32]bool)
		for _, pt := range src.ContourAt(nil, i).Points {
			pid := r.PointPlan[pt]
			if !seen[pid] {
				seen[pid] = true
				r.ContourPlans[i] = append(r.ContourPlans[i], pid)
			}
		}
		sort.Slice(r.ContourPlans[i], func(a, b int) bool {
			return sig(r.ContourPlans[i][a]) < sig(r.ContourPlans[i][b])
		})
		if len(r.ContourPlans[i]) > r.Rho {
			r.Rho = len(r.ContourPlans[i])
		}
	}
	return r
}

// Reduce computes the anorexic reduction of the space's contour plan
// diagram at threshold lambda.
func (s *Space) Reduce(lambda float64) *Reduction {
	return ReduceSource(s, lambda)
}

// RhoUnreducedSource returns the maximum plan density over contours
// without any reduction — the ρ in PlanBouquet's raw 4ρ guarantee.
func RhoUnreducedSource(src ContourSource) int {
	rho := 0
	for ci := 0; ci < src.NumContours(); ci++ {
		seen := make(map[int32]bool)
		for _, pt := range src.ContourAt(nil, ci).Points {
			seen[src.PlanAt(pt)] = true
		}
		if len(seen) > rho {
			rho = len(seen)
		}
	}
	return rho
}

// RhoUnreduced returns the unreduced maximum plan density over the
// space's contours.
func (s *Space) RhoUnreduced() int { return RhoUnreducedSource(s) }

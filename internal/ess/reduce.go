package ess

import "sort"

// Reduction is an anorexic reduction (Harish et al., VLDB 2007) of the
// plan assignment on the contour points: plans whose contour territory
// can be taken over by another plan at ≤ (1+Lambda) cost inflation are
// swallowed, shrinking the bouquet PlanBouquet must execute. The
// reduction preserves the PB guarantee with budgets inflated to
// (1+Lambda)·CC_i, giving MSO ≤ 4(1+Lambda)·ρ_red.
type Reduction struct {
	// Lambda is the cost-inflation threshold (paper default 0.2).
	Lambda float64
	// PointPlan maps contour points to their (possibly replaced) plan.
	PointPlan map[int32]int32
	// ContourPlans lists, per contour, the distinct surviving plan IDs.
	ContourPlans [][]int32
	// Rho is the maximum plan count over all contours after reduction —
	// the ρ_red in PlanBouquet's 4(1+λ)ρ_red guarantee.
	Rho int
}

// Reduce computes the anorexic reduction of the space's contour plan
// diagram at threshold lambda, using the CostGreedy strategy: try to
// swallow small-territory plans into large-territory ones whenever the
// replacement never exceeds (1+lambda) of optimal anywhere in the
// swallowed territory.
func (s *Space) Reduce(lambda float64) *Reduction {
	r := &Reduction{Lambda: lambda, PointPlan: make(map[int32]int32)}

	// Collect the contour points and the plan territories on them.
	territory := make(map[int32][]int32) // planID -> points
	for _, c := range s.Contours {
		for _, pt := range c.Points {
			if _, seen := r.PointPlan[pt]; seen {
				continue // a point can sit on two adjacent contours
			}
			pid := s.PointPlan[pt]
			r.PointPlan[pt] = pid
			territory[pid] = append(territory[pid], pt)
		}
	}

	ev := s.NewEvaluator()
	removed := make(map[int32]bool)
	threshold := 1 + lambda
	// Multi-pass greedy to a fixpoint: each pass tries to swallow the
	// smallest surviving territory into the surviving plan (from the
	// full POSP pool) that covers it within threshold, preferring
	// swallowers that already hold large territories so the assignment
	// converges onto few plans.
	for changed := true; changed; {
		changed = false
		plans := make([]int32, 0, len(territory))
		for pid := range territory {
			if !removed[pid] {
				plans = append(plans, pid)
			}
		}
		sort.Slice(plans, func(a, b int) bool {
			ta, tb := len(territory[plans[a]]), len(territory[plans[b]])
			if ta != tb {
				return ta < tb
			}
			return plans[a] < plans[b]
		})
		for i, victim := range plans {
			if removed[victim] {
				continue
			}
			for j := len(plans) - 1; j > i; j-- {
				cand := plans[j]
				if removed[cand] || cand == victim {
					continue
				}
				ok := true
				for _, pt := range territory[victim] {
					if ev.PlanCost(cand, pt) > threshold*s.PointCost[pt] {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				for _, pt := range territory[victim] {
					r.PointPlan[pt] = cand
				}
				territory[cand] = append(territory[cand], territory[victim]...)
				delete(territory, victim)
				removed[victim] = true
				changed = true
				break
			}
		}
	}

	// Per-contour surviving plan lists and ρ_red.
	r.ContourPlans = make([][]int32, len(s.Contours))
	for i, c := range s.Contours {
		seen := make(map[int32]bool)
		for _, pt := range c.Points {
			pid := r.PointPlan[pt]
			if !seen[pid] {
				seen[pid] = true
				r.ContourPlans[i] = append(r.ContourPlans[i], pid)
			}
		}
		sort.Slice(r.ContourPlans[i], func(a, b int) bool {
			return r.ContourPlans[i][a] < r.ContourPlans[i][b]
		})
		if len(r.ContourPlans[i]) > r.Rho {
			r.Rho = len(r.ContourPlans[i])
		}
	}
	return r
}

// RhoUnreduced returns the maximum plan density over contours without
// any reduction — the ρ in PlanBouquet's raw 4ρ guarantee.
func (s *Space) RhoUnreduced() int {
	rho := 0
	for _, c := range s.Contours {
		seen := make(map[int32]bool)
		for _, pt := range c.Points {
			seen[s.PointPlan[pt]] = true
		}
		if len(seen) > rho {
			rho = len(seen)
		}
	}
	return rho
}

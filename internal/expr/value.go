// Package expr provides the typed value model and scalar expression
// trees evaluated by the executor. Expressions are bound to positional
// column indexes before execution, so evaluation is allocation-free on
// the hot path.
package expr

import (
	"fmt"
	"strconv"
)

// Kind discriminates the runtime type of a Value.
type Kind int

const (
	// KindInt is a 64-bit integer value.
	KindInt Kind = iota
	// KindFloat is a 64-bit float value.
	KindFloat
	// KindString is a string value.
	KindString
	// KindNull is the SQL NULL value.
	KindNull
	// KindBool is a boolean value (result of predicates).
	KindBool
)

// Value is a dynamically typed scalar.
type Value struct {
	K Kind
	I int64
	F float64
	S string
	B bool
}

// Int returns an integer value.
func Int(i int64) Value { return Value{K: KindInt, I: i} }

// Float returns a float value.
func Float(f float64) Value { return Value{K: KindFloat, F: f} }

// Str returns a string value.
func Str(s string) Value { return Value{K: KindString, S: s} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{K: KindBool, B: b} }

// Null is the SQL NULL value.
var Null = Value{K: KindNull}

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// Truthy reports whether v is a true boolean; NULL and non-bools are false.
func (v Value) Truthy() bool { return v.K == KindBool && v.B }

// AsFloat converts numeric values to float64 for mixed comparisons.
func (v Value) AsFloat() float64 {
	if v.K == KindFloat {
		return v.F
	}
	return float64(v.I)
}

// String renders the value for traces and test failures.
func (v Value) String() string {
	switch v.K {
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.S)
	case KindBool:
		return strconv.FormatBool(v.B)
	case KindNull:
		return "NULL"
	default:
		return fmt.Sprintf("Value(kind=%d)", int(v.K))
	}
}

// Compare orders two values: -1, 0, +1. NULL sorts before everything.
// Numeric kinds compare numerically across int/float; comparing a
// numeric with a string or bool panics, since the planner type-checks
// expressions before execution.
func Compare(a, b Value) int {
	if a.K == KindNull || b.K == KindNull {
		switch {
		case a.K == b.K:
			return 0
		case a.K == KindNull:
			return -1
		default:
			return 1
		}
	}
	switch {
	case a.K == KindString || b.K == KindString:
		if a.K != KindString || b.K != KindString {
			panic("expr: comparing string with non-string")
		}
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		}
		return 0
	case a.K == KindBool || b.K == KindBool:
		if a.K != KindBool || b.K != KindBool {
			panic("expr: comparing bool with non-bool")
		}
		switch {
		case !a.B && b.B:
			return -1
		case a.B && !b.B:
			return 1
		}
		return 0
	case a.K == KindInt && b.K == KindInt:
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		}
		return 0
	default:
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		return 0
	}
}

// Equal reports value equality under Compare semantics; NULL equals
// nothing, not even NULL (SQL three-valued logic collapsed to false).
func Equal(a, b Value) bool {
	if a.K == KindNull || b.K == KindNull {
		return false
	}
	return Compare(a, b) == 0
}

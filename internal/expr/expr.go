package expr

import (
	"fmt"
	"strings"
)

// Row is a tuple of values addressed positionally; expressions are
// bound to ordinals before evaluation.
type Row []Value

// Expr is a scalar expression evaluated against a row.
type Expr interface {
	// Eval computes the expression's value on the row.
	Eval(r Row) Value
	// String renders the expression for plan display.
	String() string
}

// ColRef reads column Idx of the row. Name is retained for display.
type ColRef struct {
	Idx  int
	Name string
}

// Eval implements Expr.
func (c *ColRef) Eval(r Row) Value { return r[c.Idx] }

// String implements Expr.
func (c *ColRef) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("$%d", c.Idx)
}

// Const is a literal value.
type Const struct{ Val Value }

// Eval implements Expr.
func (c *Const) Eval(Row) Value { return c.Val }

// String implements Expr.
func (c *Const) String() string { return c.Val.String() }

// CmpOp enumerates comparison operators.
type CmpOp int

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

// String returns the SQL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

// Cmp is a binary comparison. NULL operands yield false.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Eval implements Expr.
func (c *Cmp) Eval(r Row) Value {
	l, rt := c.L.Eval(r), c.R.Eval(r)
	if l.IsNull() || rt.IsNull() {
		return Bool(false)
	}
	cv := Compare(l, rt)
	switch c.Op {
	case EQ:
		return Bool(cv == 0)
	case NE:
		return Bool(cv != 0)
	case LT:
		return Bool(cv < 0)
	case LE:
		return Bool(cv <= 0)
	case GT:
		return Bool(cv > 0)
	case GE:
		return Bool(cv >= 0)
	default:
		panic("expr: unknown comparison operator")
	}
}

// String implements Expr.
func (c *Cmp) String() string {
	return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R)
}

// And is an n-ary conjunction; empty And is true.
type And struct{ Args []Expr }

// Eval implements Expr.
func (a *And) Eval(r Row) Value {
	for _, e := range a.Args {
		if !e.Eval(r).Truthy() {
			return Bool(false)
		}
	}
	return Bool(true)
}

// String implements Expr.
func (a *And) String() string { return joinArgs(a.Args, " AND ") }

// Or is an n-ary disjunction; empty Or is false.
type Or struct{ Args []Expr }

// Eval implements Expr.
func (o *Or) Eval(r Row) Value {
	for _, e := range o.Args {
		if e.Eval(r).Truthy() {
			return Bool(true)
		}
	}
	return Bool(false)
}

// String implements Expr.
func (o *Or) String() string { return joinArgs(o.Args, " OR ") }

// Not negates a boolean expression.
type Not struct{ Arg Expr }

// Eval implements Expr.
func (n *Not) Eval(r Row) Value { return Bool(!n.Arg.Eval(r).Truthy()) }

// String implements Expr.
func (n *Not) String() string { return "NOT (" + n.Arg.String() + ")" }

func joinArgs(args []Expr, sep string) string {
	parts := make([]string, len(args))
	for i, e := range args {
		parts[i] = "(" + e.String() + ")"
	}
	return strings.Join(parts, sep)
}

// Conjoin builds the conjunction of the given expressions, flattening
// the degenerate cases (nil for none, the expression itself for one).
func Conjoin(es ...Expr) Expr {
	nonNil := es[:0:0]
	for _, e := range es {
		if e != nil {
			nonNil = append(nonNil, e)
		}
	}
	switch len(nonNil) {
	case 0:
		return nil
	case 1:
		return nonNil[0]
	default:
		return &And{Args: nonNil}
	}
}

package expr

import (
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(42), "42"},
		{Float(2.5), "2.5"},
		{Str("hi"), `"hi"`},
		{Bool(true), "true"},
		{Null, "NULL"},
		{Value{K: Kind(99)}, "Value(kind=99)"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestCompareInts(t *testing.T) {
	if Compare(Int(1), Int(2)) != -1 || Compare(Int(2), Int(1)) != 1 || Compare(Int(3), Int(3)) != 0 {
		t.Fatal("int comparison broken")
	}
}

func TestCompareMixedNumeric(t *testing.T) {
	if Compare(Int(1), Float(1.5)) != -1 {
		t.Error("1 < 1.5 expected")
	}
	if Compare(Float(2.0), Int(2)) != 0 {
		t.Error("2.0 == 2 expected")
	}
	if Compare(Float(3.5), Int(3)) != 1 {
		t.Error("3.5 > 3 expected")
	}
}

func TestCompareStringsAndBools(t *testing.T) {
	if Compare(Str("a"), Str("b")) != -1 || Compare(Str("b"), Str("a")) != 1 || Compare(Str("a"), Str("a")) != 0 {
		t.Error("string comparison broken")
	}
	if Compare(Bool(false), Bool(true)) != -1 || Compare(Bool(true), Bool(false)) != 1 || Compare(Bool(true), Bool(true)) != 0 {
		t.Error("bool comparison broken")
	}
}

func TestCompareNulls(t *testing.T) {
	if Compare(Null, Int(0)) != -1 || Compare(Int(0), Null) != 1 || Compare(Null, Null) != 0 {
		t.Error("NULL ordering broken")
	}
}

func TestCompareTypeMismatchPanics(t *testing.T) {
	for _, pair := range [][2]Value{
		{Str("x"), Int(1)},
		{Bool(true), Int(1)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Compare(%v,%v) should panic", pair[0], pair[1])
				}
			}()
			Compare(pair[0], pair[1])
		}()
	}
}

func TestEqualNullSemantics(t *testing.T) {
	if Equal(Null, Null) {
		t.Error("NULL = NULL must be false")
	}
	if !Equal(Int(7), Int(7)) || Equal(Int(7), Int(8)) {
		t.Error("int equality broken")
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(Int(a), Int(b)) == -Compare(Int(b), Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareTransitivityProperty(t *testing.T) {
	f := func(a, b, c int64) bool {
		x, y, z := Int(a), Int(b), Int(c)
		if Compare(x, y) <= 0 && Compare(y, z) <= 0 {
			return Compare(x, z) <= 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func row(vs ...Value) Row { return Row(vs) }

func TestColRefAndConst(t *testing.T) {
	r := row(Int(10), Str("x"))
	c := &ColRef{Idx: 0, Name: "t.a"}
	if got := c.Eval(r); got.I != 10 {
		t.Errorf("ColRef eval = %v", got)
	}
	if c.String() != "t.a" {
		t.Errorf("ColRef display = %q", c.String())
	}
	anon := &ColRef{Idx: 1}
	if anon.String() != "$1" {
		t.Errorf("anonymous ColRef display = %q", anon.String())
	}
	k := &Const{Val: Int(5)}
	if k.Eval(r).I != 5 || k.String() != "5" {
		t.Error("Const broken")
	}
}

func TestCmpOperators(t *testing.T) {
	r := row(Int(5))
	col := &ColRef{Idx: 0, Name: "v"}
	cases := []struct {
		op   CmpOp
		rhs  int64
		want bool
	}{
		{EQ, 5, true}, {EQ, 6, false},
		{NE, 5, false}, {NE, 6, true},
		{LT, 6, true}, {LT, 5, false},
		{LE, 5, true}, {LE, 4, false},
		{GT, 4, true}, {GT, 5, false},
		{GE, 5, true}, {GE, 6, false},
	}
	for _, c := range cases {
		e := &Cmp{Op: c.op, L: col, R: &Const{Val: Int(c.rhs)}}
		if got := e.Eval(r).Truthy(); got != c.want {
			t.Errorf("5 %s %d = %v, want %v", c.op, c.rhs, got, c.want)
		}
	}
}

func TestCmpWithNullIsFalse(t *testing.T) {
	r := row(Null)
	e := &Cmp{Op: EQ, L: &ColRef{Idx: 0}, R: &Const{Val: Int(1)}}
	if e.Eval(r).Truthy() {
		t.Error("NULL = 1 must be false")
	}
}

func TestCmpOpString(t *testing.T) {
	wants := map[CmpOp]string{EQ: "=", NE: "<>", LT: "<", LE: "<=", GT: ">", GE: ">="}
	for op, w := range wants {
		if op.String() != w {
			t.Errorf("%d.String() = %q want %q", int(op), op.String(), w)
		}
	}
	if CmpOp(42).String() != "CmpOp(42)" {
		t.Error("unknown op display broken")
	}
}

func TestAndOrNot(t *testing.T) {
	tr := &Const{Val: Bool(true)}
	fa := &Const{Val: Bool(false)}
	r := row()
	if !(&And{Args: []Expr{tr, tr}}).Eval(r).Truthy() {
		t.Error("true AND true")
	}
	if (&And{Args: []Expr{tr, fa}}).Eval(r).Truthy() {
		t.Error("true AND false")
	}
	if !(&And{}).Eval(r).Truthy() {
		t.Error("empty AND should be true")
	}
	if !(&Or{Args: []Expr{fa, tr}}).Eval(r).Truthy() {
		t.Error("false OR true")
	}
	if (&Or{}).Eval(r).Truthy() {
		t.Error("empty OR should be false")
	}
	if (&Not{Arg: tr}).Eval(r).Truthy() {
		t.Error("NOT true")
	}
	if !(&Not{Arg: fa}).Eval(r).Truthy() {
		t.Error("NOT false")
	}
}

func TestExprStrings(t *testing.T) {
	e := &And{Args: []Expr{
		&Cmp{Op: LT, L: &ColRef{Idx: 0, Name: "a"}, R: &Const{Val: Int(3)}},
		&Or{Args: []Expr{
			&Cmp{Op: EQ, L: &ColRef{Idx: 1, Name: "b"}, R: &Const{Val: Int(1)}},
		}},
	}}
	want := "(a < 3) AND ((b = 1))"
	if got := e.String(); got != want {
		t.Errorf("And.String() = %q, want %q", got, want)
	}
	n := &Not{Arg: &Cmp{Op: GE, L: &ColRef{Idx: 0, Name: "a"}, R: &Const{Val: Int(0)}}}
	if n.String() != "NOT (a >= 0)" {
		t.Errorf("Not.String() = %q", n.String())
	}
}

func TestConjoin(t *testing.T) {
	if Conjoin() != nil || Conjoin(nil, nil) != nil {
		t.Error("Conjoin of nothing should be nil")
	}
	single := &Const{Val: Bool(true)}
	if Conjoin(nil, single) != Expr(single) {
		t.Error("Conjoin of one expr should be the expr itself")
	}
	two := Conjoin(single, &Const{Val: Bool(false)})
	if _, ok := two.(*And); !ok {
		t.Errorf("Conjoin of two = %T, want *And", two)
	}
	if two.Eval(row()).Truthy() {
		t.Error("true AND false should be false")
	}
}

func TestTruthyOnNonBool(t *testing.T) {
	if Int(1).Truthy() || Null.Truthy() || Str("t").Truthy() {
		t.Error("only KindBool true values are truthy")
	}
}

package server

import (
	"reflect"
	"testing"
)

// Every replica must build the identical ring from the same peer set,
// regardless of -peers order or duplicates — that is what makes the
// shard routing coherent without coordination.
func TestHashRingOrderAndDupInvariant(t *testing.T) {
	peers := []string{"http://a:8080", "http://b:8080", "http://c:8080"}
	perms := [][]string{
		{peers[0], peers[1], peers[2]},
		{peers[2], peers[0], peers[1]},
		{peers[1], peers[2], peers[0], peers[0], peers[2], ""},
	}
	ref := newHashRing(perms[0])
	keys := []uint64{0, 1, 42, 0xdeadbeef, ^uint64(0)}
	for pi, perm := range perms[1:] {
		r := newHashRing(perm)
		if !reflect.DeepEqual(r.peers, ref.peers) {
			t.Fatalf("perm %d: peer set %v != %v", pi+1, r.peers, ref.peers)
		}
		for _, k := range keys {
			if got, want := r.Owners(k), ref.Owners(k); !reflect.DeepEqual(got, want) {
				t.Fatalf("perm %d key %d: owners %v != %v", pi+1, k, got, want)
			}
		}
	}
}

// Owners returns every peer exactly once, in a stable preference
// order, and the vnode projection spreads keys across the set (no peer
// starves, no peer hogs).
func TestHashRingOwnersCompleteAndBalanced(t *testing.T) {
	peers := []string{"http://a:8080", "http://b:8080", "http://c:8080"}
	r := newHashRing(peers)
	counts := make(map[string]int)
	const keys = 3000
	for k := uint64(0); k < keys; k++ {
		owners := r.Owners(k)
		if len(owners) != len(peers) {
			t.Fatalf("key %d: %d owners, want %d", k, len(owners), len(peers))
		}
		seen := make(map[string]bool)
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("key %d: duplicate owner %s in %v", k, o, owners)
			}
			seen[o] = true
		}
		counts[owners[0]]++
	}
	for _, p := range peers {
		share := float64(counts[p]) / keys
		if share < 0.15 || share > 0.60 {
			t.Fatalf("peer %s owns %.0f%% of keys; vnode spread is broken: %v", p, share*100, counts)
		}
	}
}

// Removing one peer from the set must not reshuffle keys among the
// survivors: a key either kept its owner or moved to the removed
// peer's successor — consistent hashing's defining property, and why a
// replica restart does not invalidate the whole fleet's cache.
func TestHashRingStableUnderPeerLoss(t *testing.T) {
	full := newHashRing([]string{"http://a:8080", "http://b:8080", "http://c:8080"})
	without := newHashRing([]string{"http://a:8080", "http://c:8080"})
	moved := 0
	const keys = 2000
	for k := uint64(0); k < keys; k++ {
		before := full.Owners(k)[0]
		after := without.Owners(k)[0]
		if before == "http://b:8080" {
			moved++
			continue // b's keys must land somewhere else
		}
		if before != after {
			t.Fatalf("key %d owned by %s moved to %s though its owner survived", k, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("removed peer owned zero keys; distribution is broken")
	}
}

// An empty ring owns nothing; a one-peer ring owns everything.
func TestHashRingDegenerate(t *testing.T) {
	if owners := newHashRing(nil).Owners(1); owners != nil {
		t.Fatalf("empty ring returned owners %v", owners)
	}
	solo := newHashRing([]string{"http://a:8080"})
	for _, k := range []uint64{0, 7, ^uint64(0)} {
		if got := solo.Owners(k); len(got) != 1 || got[0] != "http://a:8080" {
			t.Fatalf("solo ring key %d: owners %v", k, got)
		}
	}
}

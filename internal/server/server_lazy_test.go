package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faultinject"
)

func lazyConfig(t *testing.T) Config {
	cfg := testConfig(t)
	cfg.ESSMode = "lazy"
	return cfg
}

func TestLazyModeServesAllAlgorithms(t *testing.T) {
	s := newTestServer(t, lazyConfig(t))

	for _, alg := range []string{"planbouquet", "spillbound", "alignedbound"} {
		rec, body := postJSON(t, s.Handler(), "/discover",
			DiscoverRequest{Workload: "EQ", Algorithm: alg, QA: 7})
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", alg, rec.Code, body)
		}
		var resp DiscoverResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if !resp.Completed || resp.SubOpt < 1 || resp.Steps == 0 {
			t.Fatalf("%s: implausible outcome %+v", alg, resp)
		}
	}

	// The workload reports its demand-driven mode and settled count.
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/workloads", nil))
	var infos []WorkloadInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || !strings.HasPrefix(infos[0].Mode, "lazy-") {
		t.Fatalf("workload info %+v, want lazy mode", infos)
	}
	if infos[0].Settled <= 0 || infos[0].Settled > infos[0].Points {
		t.Fatalf("settled %d of %d points", infos[0].Settled, infos[0].Points)
	}

	// Spill-mode observations were fed back: the refinement counters and
	// the lazy gauges are on /metrics.
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	page := rec.Body.String()
	for _, metric := range []string{
		"rqp_refine_observations_total", "rqp_refined_points_total",
		`rqp_lazy_settled_points{workload="EQ"}`,
		`rqp_lazy_contour_misses_total{workload="EQ"}`,
		`rqp_lazy_epoch{workload="EQ"}`,
	} {
		if !strings.Contains(page, metric) {
			t.Fatalf("metrics page missing %s:\n%s", metric, page)
		}
	}
	if s.metrics.refineObs.Load() == 0 {
		t.Fatal("discoveries with spill steps fed no observations")
	}

	// An MSO sweep over the lazy source works too.
	mrec, mbody := postJSON(t, s.Handler(), "/mso",
		MSORequest{Workload: "EQ", Algorithm: "spillbound", Stride: 3})
	if mrec.Code != http.StatusOK {
		t.Fatalf("mso status %d: %s", mrec.Code, mbody)
	}
}

func TestLazySnapshotWarmLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := lazyConfig(t)
	cfg.SnapshotDir = dir
	snap := filepath.Join(dir, "EQ.lazy.snap")

	// First boot: cold build, sparse base persisted; a discovery appends
	// a refinement delta.
	s1 := newTestServer(t, cfg)
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("first boot did not persist a lazy snapshot: %v", err)
	}
	base, err := os.Stat(snap)
	if err != nil {
		t.Fatal(err)
	}
	rec, body := postJSON(t, s1.Handler(), "/discover",
		DiscoverRequest{Workload: "EQ", Algorithm: "sb", QA: 9})
	if rec.Code != http.StatusOK {
		t.Fatalf("discover: status %d: %s", rec.Code, body)
	}
	grown, err := os.Stat(snap)
	if err != nil {
		t.Fatal(err)
	}
	if grown.Size() <= base.Size() {
		t.Fatal("discovery settled points but no delta was appended")
	}

	// Second boot: warm load of base + deltas.
	s2 := newTestServer(t, cfg)
	ws := s2.workloads["EQ"]
	ws.mu.RLock()
	warm, lazy := ws.warmLoaded, ws.lazy
	ws.mu.RUnlock()
	if !warm || lazy == nil {
		t.Fatal("second boot should warm-load the lazy snapshot")
	}
	if lazy.Profile().Settled <= 2 {
		t.Fatalf("warm load restored only %d settled points", lazy.Profile().Settled)
	}
}

func TestLazyDeltaCrashQuarantinesAndRebuilds(t *testing.T) {
	dir := t.TempDir()
	cfg := lazyConfig(t)
	cfg.SnapshotDir = dir
	snap := filepath.Join(dir, "EQ.lazy.snap")

	s1 := newTestServer(t, cfg)
	ws1 := s1.workloads["EQ"]
	// Settle fresh surface, then crash mid-delta-append: the injector
	// tears the write half-way, exactly like a kill would.
	ws1.lazy.ContourAt(nil, 0)
	d := ws1.lazy.DeltaSince(ws1.persistMark)
	if d == nil {
		t.Fatal("no delta to append")
	}
	in := faultinject.New(faultinject.Config{
		Seed:  3,
		Rates: map[faultinject.Site]float64{faultinject.SiteSnapshotSave: 1},
	})
	if err := ws1.lazy.AppendDeltaFileWith(snap, d, in); err == nil {
		t.Fatal("fault-injected delta append must fail")
	}

	// Next boot: the torn tail is detected, the snapshot quarantined,
	// the workload rebuilt, and a fresh base persisted.
	s2 := newTestServer(t, cfg)
	ws2 := s2.workloads["EQ"]
	ws2.mu.RLock()
	warm, quarantined := ws2.warmLoaded, ws2.quarantined
	ws2.mu.RUnlock()
	if warm {
		t.Fatal("torn delta tail must not warm-load")
	}
	if quarantined == "" {
		t.Fatal("torn snapshot was not quarantined")
	}
	if _, err := os.Stat(quarantined); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	if ws2.status() != "ready" {
		t.Fatalf("rebuild after quarantine: status %s", ws2.status())
	}

	// The rebuilt snapshot warm-loads cleanly on the boot after.
	s3 := newTestServer(t, cfg)
	if !s3.workloads["EQ"].warmLoaded {
		t.Fatal("rebuilt lazy snapshot should warm-load")
	}
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/cost"
	"repro/internal/ess"
	"repro/internal/faultinject"
	"repro/internal/optimizer"
	"repro/internal/stats"
)

// This file is the shard-out arm of the server: with -peers configured,
// query signatures are consistent-hashed across the static replica set
// and /discover requests are proxied to their owner. A request landing
// on a non-owner forwards it (one hop — the forwarded header stops
// loops); when the owner is down the proxy hedges to the next replica
// in ring order, and when every remote owner is unreachable it serves
// locally with a degradation stamp rather than failing. Restarted
// replicas warm their pinned artifacts from peers' /snapshot streams
// before falling back to a cold build.

const (
	// forwardedHeader marks a proxied request; its presence means
	// "serve locally, do not forward again" (loop prevention).
	forwardedHeader = "X-Rqp-Forwarded"
	// failoverHeader counts the owners skipped before this request
	// reached its serving replica; non-zero means the response must
	// carry a degradation stamp.
	failoverHeader = "X-Rqp-Failover"
)

// peerSet tracks the liveness of the replica set. Health is probed
// lazily — a peer's last verdict is trusted for HealthInterval, then
// re-probed on next use — and every transport failure during a forward
// marks the peer down immediately, so one dead replica costs one
// failed attempt per interval, not one per request.
type peerSet struct {
	self     string
	interval time.Duration
	now      func() time.Time
	client   *http.Client

	mu    sync.Mutex
	state map[string]*peerHealth
}

type peerHealth struct {
	up      bool
	checked time.Time // zero: never probed
}

func newPeerSet(self string, interval time.Duration, now func() time.Time, probeTimeout time.Duration) *peerSet {
	return &peerSet{
		self:     self,
		interval: interval,
		now:      now,
		client:   &http.Client{Timeout: probeTimeout},
		state:    make(map[string]*peerHealth),
	}
}

// healthy reports whether the peer should be tried, probing /healthz
// when the cached verdict is stale.
func (p *peerSet) healthy(peer string) bool {
	if peer == p.self {
		return true
	}
	p.mu.Lock()
	h, ok := p.state[peer]
	if ok && p.now().Sub(h.checked) < p.interval {
		up := h.up
		p.mu.Unlock()
		return up
	}
	if !ok {
		h = &peerHealth{}
		p.state[peer] = h
	}
	// Optimistically stamp before probing so concurrent callers don't
	// pile probes onto one slow peer; the probe result overwrites.
	h.checked = p.now()
	h.up = true
	p.mu.Unlock()

	resp, err := p.client.Get(peer + "/healthz")
	up := err == nil && resp.StatusCode == http.StatusOK
	if err == nil {
		resp.Body.Close()
	}
	p.mu.Lock()
	h.up = up
	h.checked = p.now()
	p.mu.Unlock()
	return up
}

// markDown records a transport failure: the peer is skipped until the
// health interval elapses and a fresh probe clears it.
func (p *peerSet) markDown(peer string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	h, ok := p.state[peer]
	if !ok {
		h = &peerHealth{}
		p.state[peer] = h
	}
	h.up = false
	h.checked = p.now()
}

// snapshotUp returns each peer's current cached liveness verdict (no
// probing) for the /metrics gauge.
func (p *peerSet) snapshotUp(peers []string) map[string]bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]bool, len(peers))
	for _, peer := range peers {
		if peer == p.self {
			out[peer] = true
			continue
		}
		h, ok := p.state[peer]
		out[peer] = !ok || h.up // never probed = assumed up
	}
	return out
}

// routeDiscover decides where a /discover request runs. It returns
// (true, _) when it already wrote a response (the request was proxied
// to a peer); (false, hops) when the caller must serve locally, with
// hops counting the preferred owners that were skipped on the way —
// hops > 0 means this is a failover serve and the response gets a
// degradation stamp. Forwarded requests (header present) never
// re-forward: one hop maximum, so a routing disagreement cannot loop.
// cacheBody, when non-nil, receives the relayed bytes of a clean
// (zero-hop) 200 from the owner so the caller can install them in the
// outcome cache — forwarded one-hop responses are as deterministic as
// local ones.
func (s *Server) routeDiscover(w http.ResponseWriter, r *http.Request, req DiscoverRequest, key uint64, in *faultinject.Injector, cacheBody func([]byte)) (handled bool, hops int) {
	if s.ring == nil || r.Header.Get(forwardedHeader) != "" {
		return false, 0
	}
	owners := s.ring.Owners(key)
	for _, owner := range owners {
		if owner == s.cfg.SelfURL {
			return false, hops
		}
		if in.Trip(faultinject.SitePeerDown) {
			// Chaos: this attempt sees the peer as unreachable.
			s.peers.markDown(owner)
			s.metrics.failovers.Add(1)
			hops++
			continue
		}
		if !s.peers.healthy(owner) {
			s.metrics.failovers.Add(1)
			hops++
			continue
		}
		if s.forwardTo(w, r, owner, req, hops, cacheBody) {
			s.metrics.forwards.Add(1)
			return true, hops
		}
		s.peers.markDown(owner)
		s.metrics.failovers.Add(1)
		hops++
	}
	// Every remote owner was down and self was not on the ring path:
	// serve locally as the failover of last resort.
	return false, hops
}

// maxForwardBytes bounds one buffered proxy response (a misbehaving
// peer must not balloon our memory; real discover responses are KBs).
const maxForwardBytes = 8 << 20

// forwardBufPool recycles the proxy's response read buffers.
var forwardBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// forwardTo proxies the request to the owner and relays its response
// verbatim — the owner's answer, success or typed rejection, is the
// answer. The body is fully buffered before anything is written, so a
// transport failure mid-read still hedges cleanly to the next replica
// (previously a mid-copy failure truncated a committed response). It
// reports false on transport failure (dial error, timeout, short
// read) so the caller hedges. A zero-hop 200 is handed to cacheBody
// before relay when the caller wants to cache it.
func (s *Server) forwardTo(w http.ResponseWriter, r *http.Request, owner string, req DiscoverRequest, hops int, cacheBody func([]byte)) bool {
	body, err := json.Marshal(req)
	if err != nil {
		return false
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.ForwardTimeout)
	defer cancel()
	preq, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+"/discover", bytes.NewReader(body))
	if err != nil {
		return false
	}
	preq.Header.Set("Content-Type", "application/json")
	preq.Header.Set(forwardedHeader, "1")
	if hops > 0 {
		preq.Header.Set(failoverHeader, strconv.Itoa(hops))
	}
	resp, err := s.peers.client.Do(preq)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	buf := forwardBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer func() {
		if buf.Cap() <= maxPooledBuf {
			forwardBufPool.Put(buf)
		}
	}()
	if _, err := buf.ReadFrom(io.LimitReader(resp.Body, maxForwardBytes)); err != nil {
		return false
	}
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	if cacheBody != nil && hops == 0 && resp.StatusCode == http.StatusOK {
		relayed := make([]byte, buf.Len())
		copy(relayed, buf.Bytes())
		cacheBody(relayed)
	}
	w.WriteHeader(resp.StatusCode)
	if _, err := w.Write(buf.Bytes()); err != nil {
		s.countEncodeError("relay", err)
	}
	return true
}

// handleSnapshot streams a workload's ESS snapshot (the crash-safe
// CRC-framed format) so a restarted peer can warm its artifact over
// the network instead of recompiling. Pinned workloads serve their
// eager space or lazy surface; on-demand tenants serve from the
// artifact cache when resident.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("workload")
	ws, ok := s.getWorkload(name)
	if !ok {
		s.writeError(w, http.StatusNotFound, KindNotFound, fmt.Sprintf("unknown workload %q", name), 0)
		return
	}
	ws.mu.RLock()
	lazy := ws.lazy
	compiled := ws.compiled
	ws.mu.RUnlock()
	if compiled == nil && ws.onDemand {
		if art, ok := s.cache.Peek(ws.sigKey); ok {
			compiled = art
		}
	}
	switch {
	case lazy != nil:
		w.Header().Set("Content-Type", "application/octet-stream")
		if err := lazy.Save(w); err != nil {
			s.cfg.Logf("server: streaming %s lazy snapshot: %v", name, err)
		}
	case compiled != nil && compiled.Space != nil:
		w.Header().Set("Content-Type", "application/octet-stream")
		if err := compiled.Space.Save(w); err != nil {
			s.cfg.Logf("server: streaming %s snapshot: %v", name, err)
		}
	default:
		s.writeError(w, http.StatusServiceUnavailable, KindBuilding,
			fmt.Sprintf("workload %s has no resident snapshot", name), time.Second)
	}
}

// fetchPeerSnapshot tries to warm a pinned workload's space from the
// replica set: each remote peer's /snapshot stream is fully buffered,
// frame-verified (cheap CRC check), then strictly loaded — a corrupt
// or truncated transfer moves on to the next peer, never into the
// serving path. Returns nil when no peer could supply a usable
// snapshot (the caller builds cold).
func (s *Server) fetchPeerSnapshot(ws *workloadState) *ess.Space {
	q, err := ws.spec.Load(s.cfg.Scale)
	if err != nil {
		return nil
	}
	env := optimizer.BuildEnv(q, stats.FromCatalog(q.Cat))
	model := cost.NewModel(cost.DefaultParams())
	wantRes := s.cfg.Res
	if wantRes <= 0 {
		wantRes = ws.spec.Res
	}
	for _, peer := range s.ring.peers {
		if peer == s.cfg.SelfURL {
			continue
		}
		resp, err := s.peers.client.Get(peer + "/snapshot?workload=" + ws.name)
		if err != nil {
			continue
		}
		data, rerr := io.ReadAll(io.LimitReader(resp.Body, maxFanoutBytes))
		resp.Body.Close()
		if rerr != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		if err := ess.VerifyFrame(bytes.NewReader(data)); err != nil {
			s.cfg.Logf("server: %s snapshot from %s rejected: %v", ws.name, peer, err)
			continue
		}
		sp, err := ess.LoadWith(bytes.NewReader(data), q, env, model, ess.LoadOptions{Strict: true})
		if err != nil {
			s.cfg.Logf("server: %s snapshot from %s failed strict load: %v", ws.name, peer, err)
			continue
		}
		if sp.Grid.Res != wantRes {
			continue // peer built at another resolution; not ours to serve
		}
		s.cfg.Logf("server: %s warm fan-out from peer %s", ws.name, peer)
		return sp
	}
	return nil
}

// maxFanoutBytes bounds one peer snapshot transfer (a lying peer must
// not balloon our memory).
const maxFanoutBytes = 256 << 20

package server

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-workload circuit breaker over engine/artifact
// failures. It trips open after threshold consecutive failures, rejects
// requests for cooldown, then lets a single half-open probe through; a
// successful probe closes the circuit, a failed one reopens it. The
// clock is injected so tests drive the state machine deterministically.
//
// Deadline aborts never Report here: a client-imposed deadline says
// nothing about engine health, so it must neither trip nor reset the
// circuit.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	state    breakerState
	fails    int
	openedAt time.Time
	probing  bool
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	if threshold < 1 {
		threshold = 1
	}
	if now == nil {
		now = time.Now
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// Allow reports whether a request may proceed; when it may not, the
// returned duration is the suggested retry delay.
func (b *breaker) Allow() (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, 0
	case breakerOpen:
		if wait := b.openedAt.Add(b.cooldown).Sub(b.now()); wait > 0 {
			return false, wait
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true, 0
	default: // half-open: one probe in flight at a time
		if b.probing {
			return false, b.cooldown
		}
		b.probing = true
		return true, 0
	}
}

// Report records the result of an allowed request.
func (b *breaker) Report(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.probing = false
		if success {
			b.state = breakerClosed
			b.fails = 0
		} else {
			b.state = breakerOpen
			b.openedAt = b.now()
		}
		return
	}
	if success {
		b.fails = 0
		return
	}
	b.fails++
	if b.state == breakerClosed && b.fails >= b.threshold {
		b.state = breakerOpen
		b.openedAt = b.now()
	}
}

// Cancel withdraws an allowed request without judging engine health
// (shed, drain, or client deadline): it releases a half-open probe so
// the circuit cannot wedge, and otherwise changes nothing.
func (b *breaker) Cancel() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.probing = false
	}
}

// State returns the current state label for observability endpoints.
func (b *breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String()
}

package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ess"
)

// Peer health is probed lazily and the verdict cached for the health
// interval: N requests inside one interval cost at most one probe, a
// transport failure marks the peer down immediately, and the next
// interval re-probes.
func TestPeerSetLazyHealthCaching(t *testing.T) {
	var probes atomic.Int64
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			t.Errorf("probe hit %s", r.URL.Path)
		}
		probes.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer peer.Close()

	clk := &fakeClock{t: time.Unix(2000, 0)}
	ps := newPeerSet("http://self", time.Second, clk.Now, time.Second)

	// Self is always healthy, never probed.
	if !ps.healthy("http://self") {
		t.Fatal("self reported unhealthy")
	}
	for i := 0; i < 5; i++ {
		if !ps.healthy(peer.URL) {
			t.Fatalf("up peer reported unhealthy on call %d", i)
		}
	}
	if got := probes.Load(); got != 1 {
		t.Fatalf("%d probes inside one interval, want 1", got)
	}

	// A transport failure during forwarding overrides the cached "up"
	// verdict until the interval elapses.
	ps.markDown(peer.URL)
	if ps.healthy(peer.URL) {
		t.Fatal("marked-down peer reported healthy inside the interval")
	}
	if got := probes.Load(); got != 1 {
		t.Fatalf("markDown triggered a probe (%d total)", got)
	}
	clk.Advance(2 * time.Second)
	if !ps.healthy(peer.URL) {
		t.Fatal("peer not re-probed after the interval")
	}
	if got := probes.Load(); got != 2 {
		t.Fatalf("%d probes after interval elapsed, want 2", got)
	}
}

// A dead peer is detected by the probe and the verdict is cached — one
// failed probe per interval, not one per request.
func TestPeerSetDetectsDeadPeer(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := dead.URL
	dead.Close() // connection refused from here on

	clk := &fakeClock{t: time.Unix(3000, 0)}
	ps := newPeerSet("http://self", time.Second, clk.Now, 200*time.Millisecond)
	for i := 0; i < 3; i++ {
		if ps.healthy(url) {
			t.Fatalf("dead peer reported healthy on call %d", i)
		}
	}
	up := ps.snapshotUp([]string{"http://self", url})
	if !up["http://self"] || up[url] {
		t.Fatalf("snapshotUp %v", up)
	}
}

// Concurrent health checks on a stale verdict must not pile probes onto
// one slow peer: the optimistic stamp admits one prober per interval.
func TestPeerSetSingleProbePerInterval(t *testing.T) {
	var probes atomic.Int64
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		probes.Add(1)
		time.Sleep(50 * time.Millisecond)
		w.WriteHeader(http.StatusOK)
	}))
	defer slow.Close()

	clk := &fakeClock{t: time.Unix(4000, 0)}
	ps := newPeerSet("http://self", time.Minute, clk.Now, time.Second)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ps.healthy(slow.URL)
		}()
	}
	wg.Wait()
	if got := probes.Load(); got != 1 {
		t.Fatalf("%d concurrent probes, want 1 (optimistic stamp must absorb the rest)", got)
	}
}

// GET /snapshot streams a frame a peer can verify and strictly load —
// the same CRC-framed format the disk path uses — and rejects unknown
// or non-resident workloads with typed errors.
func TestSnapshotEndpoint(t *testing.T) {
	s := newTestServer(t, testConfig(t))

	rec, _ := getBody(t, s.Handler(), "/snapshot?workload=EQ")
	if rec.Code != http.StatusOK {
		t.Fatalf("EQ snapshot: status %d", rec.Code)
	}
	if err := ess.VerifyFrame(bytes.NewReader(rec.Body.Bytes())); err != nil {
		t.Fatalf("EQ snapshot stream failed frame verification: %v", err)
	}

	rec, _ = getBody(t, s.Handler(), "/snapshot?workload=nope")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown workload snapshot: status %d", rec.Code)
	}
}

// A forwarded request is never re-forwarded: the one-hop rule is what
// makes a ring disagreement unable to loop.
func TestRouteDiscoverHonorsForwardedHeader(t *testing.T) {
	cfg := testConfig(t)
	cfg.SelfURL = "http://b:1"
	cfg.Peers = []string{"http://a:1", "http://b:1"}
	// The background build may outlive this test; t.Logf would panic.
	cfg.Logf = func(string, ...any) {}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Find a key owned by the OTHER replica, so an unforwarded request
	// would proxy but a forwarded one must serve locally.
	var key uint64
	found := false
	for k := uint64(0); k < 4096; k++ {
		if s.ring.Owners(k)[0] == "http://a:1" {
			key, found = k, true
			break
		}
	}
	if !found {
		t.Fatal("no key owned by peer a in 4096 tries; ring broken")
	}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/discover", nil)
	req.Header.Set(forwardedHeader, "1")
	handled, hops := s.routeDiscover(rec, req, DiscoverRequest{}, key, nil, nil)
	if handled || hops != 0 {
		t.Fatalf("forwarded request re-routed: handled=%v hops=%d", handled, hops)
	}
}

// Package server exposes cached discovery artifacts over a hardened
// long-running HTTP service: compile once, then serve Discover/MSO
// requests concurrently, each bounded by a per-request deadline,
// admitted through a bounded queue with load shedding, guarded by a
// per-workload circuit breaker, and (optionally) warm-started from
// crash-safe ESS snapshots. Rejections are always typed JSON errors —
// the service degrades by refusing work, never by wedging or returning
// a silently wrong answer.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/core/discovery"
	"repro/internal/cost"
	"repro/internal/ess"
	"repro/internal/exec"
	"repro/internal/faultinject"
	"repro/internal/mso"
	"repro/internal/optimizer"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Config parameterizes a Server.
type Config struct {
	// Workloads names the workload.ByName specs to compile and serve
	// (default: the EQ running example).
	Workloads []string
	// Scale is the catalog scale factor (default 1.0).
	Scale float64
	// Res overrides the per-dimension grid resolution (0 = spec default).
	Res int
	// ESSMode selects the contour provider: "eager" (default) sweeps the
	// full grid at build time; "lazy" serves from a demand-driven source
	// that settles points as discoveries touch them, folds observed
	// selectivities back into the surface after each request, and
	// persists sparse snapshots with refinement deltas.
	ESSMode string

	// MaxConcurrent bounds discoveries running at once (default 4).
	MaxConcurrent int
	// MaxQueue bounds requests waiting for a slot; beyond it requests
	// are shed with 429 + Retry-After (default 16).
	MaxQueue int
	// MaxExecWorkers caps the per-request exec_workers knob — the
	// intra-query morsel parallelism a discovery's real executions may
	// claim (default 8, hard-capped at exec.MaxWorkers). Requests asking
	// for more are clamped, mirroring the timeout cap: over-asking is a
	// preference, not an error.
	MaxExecWorkers int

	// DefaultTimeout bounds requests that carry no timeout_ms
	// (default 30s); MaxTimeout caps client-supplied deadlines
	// (default 5m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration

	// BreakerThreshold is the consecutive-failure count that trips a
	// workload's circuit open (default 5); BreakerCooldown is the open
	// interval before a half-open probe (default 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// SnapshotDir, when set, enables the crash-safe artifact cache:
	// snapshots are warm-loaded (strictly verified) at startup, corrupt
	// ones quarantined aside and rebuilt, and fresh builds persisted
	// atomically.
	SnapshotDir string

	// FaultSeed/FaultRate arm chaos mode: every request runs with a
	// deterministic injector substream forked from (FaultSeed,
	// request fault_seed). Zero rate disarms chaos entirely.
	FaultSeed uint64
	FaultRate float64
	// AllowRequestFaults additionally honors request-supplied
	// fault_rate overrides while FaultRate is zero. Off by default: a
	// disarmed server ignores client chaos knobs, so an unauthenticated
	// client cannot inject faults that trip the shared breaker.
	AllowRequestFaults bool

	// ExecLatency simulates the per-execution latency of a remote
	// engine (discovery.Latent), interruptible by request deadlines.
	ExecLatency time.Duration

	// DrainTimeout bounds the graceful drain after the serve context is
	// canceled (default 10s).
	DrainTimeout time.Duration

	// PprofAddr, when set, serves net/http/pprof on a second listener
	// bound to that address (e.g. "127.0.0.1:6060"). The profiling
	// endpoint is kept off the service mux so operators can firewall it
	// separately from client traffic; empty disables it.
	PprofAddr string

	// CacheBytes budgets the signature-keyed on-demand artifact cache
	// (default 256 MiB). Pinned workloads are not cached — they are
	// resident for the server's lifetime.
	CacheBytes int64

	// OutcomeCacheBytes budgets the deterministic outcome cache that
	// serves repeat /discover requests from pre-encoded response bytes
	// (0 = 64 MiB default, negative disables the cache entirely).
	// Outcomes are deterministic given the full request key, so the
	// cache is semantically transparent: a hit is byte-identical to the
	// execution it replaced.
	OutcomeCacheBytes int64

	// Peers is the static replica set for shard-out mode: base URLs
	// (scheme://host:port, no trailing slash) including this replica's
	// own SelfURL. Query signatures are consistent-hashed across the
	// set and /discover requests proxied to their owner, with hedged
	// failover down the ring on timeout or refusal. Empty disables
	// sharding entirely.
	Peers []string
	// SelfURL identifies this replica within Peers; required (and must
	// appear in Peers) when Peers is non-empty.
	SelfURL string
	// ForwardTimeout bounds one proxy attempt to a peer before hedging
	// to the next replica (default 5s).
	ForwardTimeout time.Duration
	// HealthInterval is how long a peer health verdict is trusted
	// before re-probing (default 1s).
	HealthInterval time.Duration

	// Now is the clock the circuit breakers read (default time.Now);
	// tests inject a fake to drive cooldowns deterministically.
	Now func() time.Time
	// Logf receives operational log lines (default log.Printf).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if len(c.Workloads) == 0 {
		c.Workloads = []string{"EQ"}
	}
	if c.ESSMode == "" {
		c.ESSMode = "eager"
	}
	if c.Scale == 0 {
		c.Scale = 1.0
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 16
	}
	if c.MaxExecWorkers <= 0 {
		c.MaxExecWorkers = 8
	}
	if c.MaxExecWorkers > exec.MaxWorkers {
		c.MaxExecWorkers = exec.MaxWorkers
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 5 * time.Second
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// workloadState is one served workload: its spec, lazily built
// artifact, and circuit breaker.
type workloadState struct {
	name    string
	spec    workload.Spec
	breaker *breaker

	// onDemand marks a tenant admitted after startup: its artifact
	// lives in the signature-keyed cache (evictable, compiled through
	// the coalescing flight group), not in this struct. sigKey is the
	// full artifact-signature hash — the cache and shard-ring key.
	onDemand bool
	sigKey   uint64

	mu          sync.RWMutex
	compiled    *core.Compiled
	buildErr    error
	quarantined string // path a corrupt snapshot was renamed to
	warmLoaded  bool

	// lazy is set when the workload serves from a demand-driven source
	// (Config.ESSMode "lazy"): the server feeds observed selectivities
	// back into it after each discovery and appends refinement deltas to
	// its snapshot.
	lazy *ess.LazySpace
	// persistMu serializes delta appends; persistMark is the watermark
	// of point values already on disk (nil when snapshotting is off or
	// the base save failed).
	persistMu   sync.Mutex
	persistMark map[int32]bool
	snapPath    string

	ready chan struct{} // closed when the first build/load attempt ends
}

func (ws *workloadState) artifact() (*core.Compiled, error) {
	ws.mu.RLock()
	defer ws.mu.RUnlock()
	return ws.compiled, ws.buildErr
}

// isLazy reports whether the workload serves from a demand-driven
// (online-refining) contour source.
func (ws *workloadState) isLazy() bool {
	ws.mu.RLock()
	defer ws.mu.RUnlock()
	return ws.lazy != nil
}

// epoch returns the workload's ESS refinement epoch: the lazy surface's
// current epoch, or 0 — the frozen forever value — for eager workloads.
// Outcome-cache keys carry it so online refinement invalidates every
// outcome computed against the older contour surface.
func (ws *workloadState) epoch() uint64 {
	ws.mu.RLock()
	lz := ws.lazy
	ws.mu.RUnlock()
	if lz == nil {
		return 0
	}
	return lz.Epoch()
}

func (ws *workloadState) status() string {
	ws.mu.RLock()
	defer ws.mu.RUnlock()
	switch {
	case ws.compiled != nil:
		return "ready"
	case ws.buildErr != nil:
		return "failed"
	default:
		return "building"
	}
}

// Server is the discovery service.
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	sem    chan struct{}
	queued atomic.Int64
	faults *faultinject.Injector // base chaos injector (nil when disarmed)

	// wmu guards the workloads map: pinned entries are inserted in New
	// and never removed; on-demand tenants are added by resolveWorkload
	// under the write lock. order lists the pinned names (immutable).
	wmu       sync.RWMutex
	workloads map[string]*workloadState
	order     []string
	metrics   *metrics

	// cache holds on-demand artifacts keyed by signature; flights
	// coalesces concurrent compiles of one signature; compiles counts
	// completed compiles per workload name (string → *atomic.Int64).
	cache    *core.ArtifactCache
	flights  *flightGroup
	compiles sync.Map
	// sigIdx maps pure-SQL signature hashes to registered spec names,
	// for requests that identify their workload by SQL text.
	sigIdx map[uint64][]string

	// ring and peers are the shard-out state (nil when Peers is empty).
	ring  *hashRing
	peers *peerSet

	// outcomes is the deterministic outcome cache (nil when disabled):
	// full-request-keyed, storing each served outcome with its exact
	// response bytes so a repeat request bypasses routing, admission,
	// execution, and re-encoding. front is the request-identity table
	// in front of it (see front.go): byte-identical repeats skip JSON
	// decoding and key derivation too. encodeErrSeen tracks which
	// encode error kinds have been logged (once per kind).
	outcomes      *core.OutcomeCache
	front         frontTable
	encodeErrSeen sync.Map

	draining atomic.Bool
	inflight sync.WaitGroup
}

// New creates a server for the configured workloads and starts
// compiling (or warm-loading) their artifacts in the background. The
// server can accept connections immediately: requests for workloads
// still compiling get 503 + Retry-After, and /readyz turns 200 once
// every artifact is up.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		mux:       http.NewServeMux(),
		sem:       make(chan struct{}, cfg.MaxConcurrent),
		workloads: make(map[string]*workloadState, len(cfg.Workloads)),
		metrics:   newMetrics(),
		cache:     core.NewArtifactCache(cfg.CacheBytes),
		flights:   newFlightGroup(),
		sigIdx:    buildSigIndex(),
	}
	if cfg.OutcomeCacheBytes >= 0 {
		s.outcomes = core.NewOutcomeCache(cfg.OutcomeCacheBytes)
	}
	if cfg.ESSMode != "eager" && cfg.ESSMode != "lazy" {
		return nil, fmt.Errorf("server: unknown ESS mode %q (want eager or lazy)", cfg.ESSMode)
	}
	if cfg.FaultRate > 0 {
		s.faults = faultinject.NewUniform(cfg.FaultSeed, cfg.FaultRate)
	}
	if len(cfg.Peers) > 0 {
		self := false
		for _, p := range cfg.Peers {
			if p == cfg.SelfURL {
				self = true
				break
			}
		}
		if !self {
			return nil, fmt.Errorf("server: SelfURL %q must appear in Peers", cfg.SelfURL)
		}
		s.ring = newHashRing(cfg.Peers)
		s.peers = newPeerSet(cfg.SelfURL, cfg.HealthInterval, cfg.Now, cfg.ForwardTimeout)
	}
	if cfg.SnapshotDir != "" {
		if err := os.MkdirAll(cfg.SnapshotDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: snapshot dir: %w", err)
		}
		if orphans := ess.SweepTemps(cfg.SnapshotDir); len(orphans) > 0 {
			cfg.Logf("server: swept %d orphaned snapshot temp(s)", len(orphans))
		}
	}
	for _, name := range cfg.Workloads {
		spec, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		sig, err := s.signatureFor(spec)
		if err != nil {
			return nil, fmt.Errorf("server: signing %s: %w", name, err)
		}
		ws := &workloadState{
			name: name, spec: spec, sigKey: sig.Hash,
			breaker: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Now),
			ready:   make(chan struct{}),
		}
		s.workloads[name] = ws
		s.order = append(s.order, name)
		go s.buildWorkload(ws)
	}

	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /workloads", s.handleWorkloads)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /snapshot", s.handleSnapshot)
	s.mux.HandleFunc("POST /discover", s.handleDiscover)
	s.mux.HandleFunc("POST /mso", s.handleMSO)
	return s, nil
}

// buildWorkload warm-loads the workload's snapshot if one exists (and
// verifies it strictly), quarantining and rebuilding on any corruption,
// then persists fresh builds atomically. In lazy mode the snapshot is
// the sparse base frame plus refinement deltas; a torn delta tail from
// a crashed append quarantines and rebuilds exactly like a corrupt
// base.
func (s *Server) buildWorkload(ws *workloadState) {
	defer close(ws.ready)
	if s.cfg.ESSMode == "lazy" {
		s.buildLazyWorkload(ws)
		return
	}
	var snapPath string
	if s.cfg.SnapshotDir != "" {
		snapPath = filepath.Join(s.cfg.SnapshotDir, ws.name+".snap")
		if sp, ok := s.warmLoad(ws, snapPath); ok {
			s.install(ws, sp, true)
			return
		}
	}
	// Shard-out warm fan-out: a restarted replica rebuilds from its
	// peers' snapshot streams before paying a cold build.
	if s.ring != nil {
		if sp := s.fetchPeerSnapshot(ws); sp != nil {
			if snapPath != "" {
				if err := sp.SaveFileWith(snapPath, s.faults); err != nil {
					s.cfg.Logf("server: persisting %s fan-out snapshot: %v", ws.name, err)
				}
			}
			s.install(ws, sp, true)
			return
		}
	}
	sp, err := ws.spec.SpaceWith(s.cfg.Scale, ess.Config{Res: s.cfg.Res})
	if err != nil {
		ws.mu.Lock()
		ws.buildErr = err
		ws.mu.Unlock()
		s.cfg.Logf("server: building %s: %v", ws.name, err)
		return
	}
	if snapPath != "" {
		if err := sp.SaveFileWith(snapPath, s.faults); err != nil {
			s.cfg.Logf("server: persisting %s snapshot: %v (serving from memory)", ws.name, err)
		}
	}
	s.install(ws, sp, false)
}

// buildLazyWorkload is buildWorkload's demand-driven arm. Lazy
// snapshots live beside the eager ones under a distinct suffix, so
// flipping -ess-mode never quarantines the other mode's valid artifact.
func (s *Server) buildLazyWorkload(ws *workloadState) {
	var snapPath string
	if s.cfg.SnapshotDir != "" {
		snapPath = filepath.Join(s.cfg.SnapshotDir, ws.name+".lazy.snap")
		if ls, ok := s.warmLoadLazy(ws, snapPath); ok {
			s.installLazy(ws, ls, snapPath, true)
			return
		}
	}
	ls, err := ws.spec.LazySpaceWith(s.cfg.Scale, ess.Config{Res: s.cfg.Res})
	if err != nil {
		ws.mu.Lock()
		ws.buildErr = err
		ws.mu.Unlock()
		s.cfg.Logf("server: building %s (lazy): %v", ws.name, err)
		return
	}
	if snapPath != "" {
		if err := ls.SaveFileWith(snapPath, s.faults); err != nil {
			s.cfg.Logf("server: persisting %s lazy snapshot: %v (serving from memory)", ws.name, err)
			snapPath = "" // no base on disk: delta appends would be orphaned
		}
	}
	s.installLazy(ws, ls, snapPath, false)
}

// warmLoadLazy mirrors warmLoad for sparse snapshots: strict
// verification, a clean miss on absence or a res mismatch, and
// quarantine-and-rebuild on anything else — including the ErrCorrupt a
// torn refinement-delta tail produces.
func (s *Server) warmLoadLazy(ws *workloadState, path string) (*ess.LazySpace, bool) {
	q, err := ws.spec.Load(s.cfg.Scale)
	if err != nil {
		return nil, false
	}
	env := optimizer.BuildEnv(q, stats.FromCatalog(q.Cat))
	model := cost.NewModel(cost.DefaultParams())
	ls, err := ess.LoadLazyFile(path, q, env, model,
		ess.Config{Res: s.cfg.Res}, ess.LoadOptions{Strict: true})
	if err == nil {
		wantRes := s.cfg.Res
		if wantRes <= 0 {
			wantRes = ws.spec.Res
		}
		if ls.Geometry().Res != wantRes {
			s.cfg.Logf("server: %s lazy snapshot has res %d, config wants %d; rebuilding",
				ws.name, ls.Geometry().Res, wantRes)
			return nil, false
		}
		s.cfg.Logf("server: %s warm-loaded (lazy, %d settled) from %s",
			ws.name, ls.Profile().Settled, path)
		return ls, true
	}
	if errors.Is(err, os.ErrNotExist) {
		return nil, false
	}
	qpath := path + ".quarantined"
	if rerr := os.Rename(path, qpath); rerr != nil {
		qpath = ""
	}
	ws.mu.Lock()
	ws.quarantined = qpath
	ws.mu.Unlock()
	s.cfg.Logf("server: %s lazy snapshot rejected (%v); quarantined to %q, rebuilding", ws.name, err, qpath)
	return nil, false
}

// warmLoad tries the snapshot at path with strict verification. A
// missing file is a clean miss, as is a structurally valid snapshot
// built at a different grid resolution than the one configured (a stale
// artifact from before a -res change — the rebuild overwrites it);
// anything else quarantines the file aside (rename, preserving the
// evidence) and reports a miss so the caller rebuilds.
func (s *Server) warmLoad(ws *workloadState, path string) (*ess.Space, bool) {
	q, err := ws.spec.Load(s.cfg.Scale)
	if err != nil {
		return nil, false
	}
	env := optimizer.BuildEnv(q, stats.FromCatalog(q.Cat))
	model := cost.NewModel(cost.DefaultParams())
	sp, err := ess.LoadFile(path, q, env, model, ess.LoadOptions{Strict: true})
	if err == nil {
		// Strict recosting already pins the snapshot to this scale's
		// catalog; the grid resolution must also match what we would
		// build, or the configured -res would silently be ignored.
		wantRes := s.cfg.Res
		if wantRes <= 0 {
			wantRes = ws.spec.Res
		}
		if sp.Grid.Res != wantRes {
			s.cfg.Logf("server: %s snapshot has res %d, config wants %d; rebuilding",
				ws.name, sp.Grid.Res, wantRes)
			return nil, false
		}
		s.cfg.Logf("server: %s warm-loaded from %s", ws.name, path)
		return sp, true
	}
	if errors.Is(err, os.ErrNotExist) {
		return nil, false
	}
	qpath := path + ".quarantined"
	if rerr := os.Rename(path, qpath); rerr != nil {
		qpath = ""
	}
	ws.mu.Lock()
	ws.quarantined = qpath
	ws.mu.Unlock()
	s.cfg.Logf("server: %s snapshot rejected (%v); quarantined to %q, rebuilding", ws.name, err, qpath)
	return nil, false
}

// install compiles the space and publishes the artifact.
func (s *Server) install(ws *workloadState, sp *ess.Space, warm bool) {
	c, err := core.Compile(sp, core.CompileOptions{})
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if err != nil {
		ws.buildErr = err
		return
	}
	ws.compiled = c
	ws.warmLoaded = warm
}

// installLazy compiles over the demand-driven source and publishes the
// artifact plus the delta-persistence watermark (primed to what the
// base frame on disk already holds).
func (s *Server) installLazy(ws *workloadState, ls *ess.LazySpace, snapPath string, warm bool) {
	c, err := core.CompileSource(ls, core.CompileOptions{})
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if err != nil {
		ws.buildErr = err
		return
	}
	ws.compiled = c
	ws.warmLoaded = warm
	ws.lazy = ls
	ws.snapPath = snapPath
	if snapPath != "" {
		ws.persistMark = make(map[int32]bool)
		ls.DeltaSince(ws.persistMark) // the base frame holds these already
	}
}

// feedRefinements folds one discovery's observed selectivities back
// into a lazy workload's surface: every spill step that learned (or
// bounded) a dimension index becomes an Observe, queued refinements are
// applied, and newly settled or refined point values are appended to
// the snapshot as a delta. Non-lazy workloads and nil outcomes are
// no-ops.
func (s *Server) feedRefinements(ws *workloadState, out *discovery.Outcome) {
	if ws.lazy == nil || out == nil {
		return
	}
	observed := false
	for _, st := range out.Steps {
		if st.Dim >= 0 && st.LearnedIdx >= 0 {
			ws.lazy.Observe(st.Dim, st.LearnedIdx)
			observed = true
			s.metrics.refineObs.Add(1)
		}
	}
	if observed {
		if n := ws.lazy.ApplyRefinements(); n > 0 {
			s.metrics.refinedPoints.Add(int64(n))
		}
	}
	if ws.snapPath == "" {
		return
	}
	ws.persistMu.Lock()
	defer ws.persistMu.Unlock()
	d := ws.lazy.DeltaSince(ws.persistMark)
	if d == nil {
		return
	}
	if err := ws.lazy.AppendDeltaFileWith(ws.snapPath, d, s.faults); err != nil {
		s.cfg.Logf("server: appending %s refinement delta: %v (next load will rebuild)", ws.name, err)
	}
}

// WaitReady blocks until every workload's first build/load attempt has
// finished (successfully or not), or the context expires.
func (s *Server) WaitReady(ctx context.Context) error {
	for _, name := range s.order {
		ws, _ := s.getWorkload(name)
		select {
		case <-ws.ready:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until ctx is canceled (SIGTERM via
// signal.NotifyContext in the CLI), then drains gracefully: readiness
// flips to 503 so load balancers stop routing, in-flight requests run
// to completion, and the listener closes — bounded by DrainTimeout.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	srv := &http.Server{Handler: s.mux}
	var pprofSrv *http.Server
	if s.cfg.PprofAddr != "" {
		pl, err := net.Listen("tcp", s.cfg.PprofAddr)
		if err != nil {
			return fmt.Errorf("server: pprof listen: %w", err)
		}
		pprofSrv = &http.Server{Handler: PprofHandler()}
		s.cfg.Logf("server: pprof listening on http://%s/debug/pprof/", pl.Addr())
		go pprofSrv.Serve(pl)
	}
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		if pprofSrv != nil {
			// Diagnostics only: close immediately, no graceful drain.
			pprofSrv.Close()
		}
		s.draining.Store(true)
		s.cfg.Logf("server: draining (waiting for in-flight requests, max %s)", s.cfg.DrainTimeout)
		shCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		defer cancel()
		err := srv.Shutdown(shCtx)
		// Shutdown waits for connections; also wait on the handler
		// WaitGroup explicitly so the drain guarantee holds even for
		// handlers not tied to a tracked connection, bounded by the
		// same budget.
		idle := make(chan struct{})
		go func() { s.inflight.Wait(); close(idle) }()
		select {
		case <-idle:
		case <-shCtx.Done():
			if err == nil {
				err = shCtx.Err()
			}
		}
		done <- err
	}()
	if err := srv.Serve(l); err != nil && err != http.ErrServerClosed {
		return err
	}
	if err := <-done; err != nil {
		return fmt.Errorf("server: drain: %w", err)
	}
	s.cfg.Logf("server: drained cleanly")
	return nil
}

// Draining reports whether the server has begun its graceful drain.
func (s *Server) Draining() bool { return s.draining.Load() }

// PprofHandler returns the net/http/pprof handler tree served on the
// PprofAddr listener. It is built on a private mux (not
// http.DefaultServeMux) so nothing leaks onto the service handler.
func PprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ---- wire types ----

// DiscoverRequest is the POST /discover body. Algorithm and Strategy
// both select the discovery policy: Algorithm accepts the three paper
// algorithms (with pb/sb/ab aliases), Strategy any name in the strategy
// registry. Setting both to different policies is a 400; setting
// neither defaults to SpillBound.
type DiscoverRequest struct {
	Workload string `json:"workload"`
	// SQL identifies the workload by query text instead of (or in
	// addition to) Workload: the server canonicalizes it to a
	// signature and resolves the registered spec. When several specs
	// share one SQL body (the Q91 family), Workload must disambiguate.
	SQL       string  `json:"sql,omitempty"`
	Algorithm string  `json:"algorithm"`
	Strategy  string  `json:"strategy,omitempty"`
	QA        int32   `json:"qa"`
	TimeoutMS int64   `json:"timeout_ms,omitempty"`
	FaultSeed uint64  `json:"fault_seed,omitempty"`
	FaultRate float64 `json:"fault_rate,omitempty"`
	// ExecWorkers asks for intra-query morsel parallelism on the run's
	// real executions (0 = sequential; clamped to Config.MaxExecWorkers;
	// negative is a 400). Worker count never changes any cost in the
	// response — only wall-clock latency.
	ExecWorkers int `json:"exec_workers,omitempty"`
}

// DiscoverResponse is the POST /discover result: the outcome ledger of
// one discovery. On 504 it carries the partial outcome with Aborted
// set to the abort cause.
type DiscoverResponse struct {
	Workload     string                  `json:"workload"`
	Algorithm    string                  `json:"algorithm"`
	Strategy     string                  `json:"strategy,omitempty"`
	QA           int32                   `json:"qa"`
	Completed    bool                    `json:"completed"`
	TotalCost    float64                 `json:"total_cost"`
	SubOpt       float64                 `json:"sub_opt"`
	Steps        int                     `json:"steps"`
	Retries      int                     `json:"retries"`
	WastedCost   float64                 `json:"wasted_cost"`
	AlignPenalty float64                 `json:"align_penalty,omitempty"`
	Degradations []discovery.Degradation `json:"degradations,omitempty"`
	Aborted      string                  `json:"aborted,omitempty"`
	// ServedBy is the replica that ran the discovery (shard-out mode
	// only). Degraded is set to "failover" when the request did not
	// run on its signature's preferred owner — one or more owners were
	// down and the ring (or the local fallback) absorbed the request.
	ServedBy string `json:"served_by,omitempty"`
	Degraded string `json:"degraded,omitempty"`
}

// MSORequest is the POST /mso body.
type MSORequest struct {
	Workload  string `json:"workload"`
	Algorithm string `json:"algorithm"`
	Stride    int    `json:"stride,omitempty"`
	Workers   int    `json:"workers,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// MSOResponse is the POST /mso result.
type MSOResponse struct {
	Workload  string  `json:"workload"`
	Algorithm string  `json:"algorithm"`
	MSO       float64 `json:"mso"`
	ASO       float64 `json:"aso"`
	ArgMax    int32   `json:"arg_max"`
	Points    int     `json:"points"`
	Guarantee float64 `json:"guarantee"`
}

// ErrorResponse is the body of every non-200 reply: a typed, machine-
// readable rejection.
type ErrorResponse struct {
	Error        string `json:"error"`
	Kind         string `json:"kind"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// Rejection kinds.
const (
	KindBadRequest  = "bad-request"
	KindNotFound    = "not-found"
	KindBuilding    = "building"
	KindBuildFailed = "build-failed"
	KindDraining    = "draining"
	KindShed        = "shed"
	KindBreakerOpen = "breaker-open"
	KindDeadline    = "deadline"
	KindEngineFault = "engine-fault"
)

// WorkloadInfo is one entry of GET /workloads.
type WorkloadInfo struct {
	Name        string `json:"name"`
	Status      string `json:"status"`
	Breaker     string `json:"breaker"`
	D           int    `json:"d,omitempty"`
	Points      int    `json:"points,omitempty"`
	Mode        string `json:"mode,omitempty"`
	Settled     int    `json:"settled,omitempty"`
	WarmLoaded  bool   `json:"warm_loaded,omitempty"`
	Quarantined string `json:"quarantined,omitempty"`
	Error       string `json:"error,omitempty"`
}

// ---- handlers ----

// jsonBuf pairs a reusable encode buffer with an encoder bound to it
// for its whole pooled lifetime, so the serve path pays neither a
// fresh buffer nor a fresh json.Encoder per response. An encoder that
// has returned an error is poisoned (encoding/json latches the first
// error), so error paths drop the pair instead of re-pooling it.
type jsonBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonBufPool = sync.Pool{New: func() any {
	jb := &jsonBuf{}
	jb.enc = json.NewEncoder(&jb.buf)
	return jb
}}

// maxPooledBuf caps the capacity of buffers returned to the pools; a
// one-off giant response must not pin its buffer for the process
// lifetime.
const maxPooledBuf = 1 << 16

func releaseJSONBuf(jb *jsonBuf) {
	if jb.buf.Cap() <= maxPooledBuf {
		jsonBufPool.Put(jb)
	}
}

// encodeFailBody is the static fallback written when a response value
// itself fails to encode — the one case writeJSON cannot report
// through its own machinery.
const encodeFailBody = "{\"error\":\"response encoding failed\",\"kind\":\"encode-error\"}\n"

// reqBuf is a pooled request-body reader: the buffer and its size
// limiter live together so a request read costs no allocations at all.
type reqBuf struct {
	buf bytes.Buffer
	lr  io.LimitedReader
}

// maxRequestBytes bounds a request body; beyond it the read fails.
const maxRequestBytes = 1 << 20

// reqBufPool recycles request-body read buffers: reading through a
// pooled buffer plus json.Unmarshal replaces the per-request
// json.NewDecoder and its internal scratch allocations.
var reqBufPool = sync.Pool{New: func() any { return new(reqBuf) }}

// readRequestBody reads the bounded request body into a pooled buffer
// and returns it. The caller must releaseReqBuf when done with the
// bytes (they alias the pooled buffer).
func readRequestBody(r *http.Request) (*reqBuf, error) {
	rb := reqBufPool.Get().(*reqBuf)
	rb.buf.Reset()
	rb.lr.R = r.Body
	rb.lr.N = maxRequestBytes + 1
	if _, err := rb.buf.ReadFrom(&rb.lr); err != nil {
		releaseReqBuf(rb)
		return nil, err
	}
	if rb.lr.N <= 0 {
		releaseReqBuf(rb)
		return nil, fmt.Errorf("request body exceeds %d bytes", maxRequestBytes)
	}
	return rb, nil
}

func releaseReqBuf(rb *reqBuf) {
	rb.lr.R = nil
	if rb.buf.Cap() <= maxPooledBuf {
		reqBufPool.Put(rb)
	}
}

// decodeRequest reads the bounded JSON request body into a pooled
// buffer and unmarshals it into v.
func decodeRequest(w http.ResponseWriter, r *http.Request, v any) error {
	rb, err := readRequestBody(r)
	if err != nil {
		return err
	}
	err = json.Unmarshal(rb.buf.Bytes(), v)
	releaseReqBuf(rb)
	return err
}

// encodeBody encodes v into a pooled buffer. On failure it counts the
// encode error, logs once per error kind, and returns ok=false with
// the poisoned pair already discarded.
func (s *Server) encodeBody(v any) (*jsonBuf, bool) {
	jb := jsonBufPool.Get().(*jsonBuf)
	jb.buf.Reset()
	if err := jb.enc.Encode(v); err != nil {
		s.countEncodeError("marshal", err)
		return nil, false
	}
	return jb, true
}

// contentTypeJSON is the shared Content-Type value slice; assigning it
// directly (instead of Header().Set) avoids a per-response allocation.
// http.Header values are never mutated by the stack, only replaced.
var contentTypeJSON = []string{"application/json"}

// writeBytes writes a fully encoded JSON body — the zero-copy exit for
// both cached responses and pooled-buffer encodes. Write failures
// (client gone mid-body) are counted, not silently dropped.
func (s *Server) writeBytes(w http.ResponseWriter, code int, body []byte) {
	w.Header()["Content-Type"] = contentTypeJSON
	w.WriteHeader(code)
	if _, err := w.Write(body); err != nil {
		s.countEncodeError("write", err)
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	jb, ok := s.encodeBody(v)
	if !ok {
		s.writeBytes(w, http.StatusInternalServerError, []byte(encodeFailBody))
		return
	}
	s.writeBytes(w, code, jb.buf.Bytes())
	releaseJSONBuf(jb)
}

// countEncodeError records one dropped/failed response encode in the
// rqp_encode_errors_total counter and logs the first occurrence of
// each (stage, error type) kind — enough to diagnose without letting a
// disconnect-happy client flood the log.
func (s *Server) countEncodeError(stage string, err error) {
	s.metrics.encodeErrors.Add(1)
	kind := fmt.Sprintf("%s:%T", stage, err)
	if _, seen := s.encodeErrSeen.LoadOrStore(kind, true); !seen {
		s.cfg.Logf("server: response %s error (%s): %v (logged once per kind)", stage, kind, err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, code int, kind, msg string, retryAfter time.Duration) {
	if retryAfter > 0 {
		secs := int64(retryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	s.writeJSON(w, code, ErrorResponse{
		Error: msg, Kind: kind, RetryAfterMS: retryAfter.Milliseconds(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	type readyz struct {
		Ready     bool              `json:"ready"`
		Draining  bool              `json:"draining,omitempty"`
		Workloads map[string]string `json:"workloads"`
	}
	rz := readyz{Ready: true, Draining: s.draining.Load(), Workloads: map[string]string{}}
	// Readiness tracks the pinned workloads only: on-demand tenants
	// compile on first request and never gate the replica's readiness.
	for _, name := range s.order {
		ws, _ := s.getWorkload(name)
		st := ws.status()
		rz.Workloads[name] = st
		if st != "ready" {
			rz.Ready = false
		}
	}
	if rz.Draining {
		rz.Ready = false
	}
	code := http.StatusOK
	if !rz.Ready {
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, rz)
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	states := s.snapshotWorkloads()
	out := make([]WorkloadInfo, 0, len(states))
	for _, ws := range states {
		info := WorkloadInfo{Name: ws.name, Status: ws.status(), Breaker: ws.breaker.State()}
		if ws.onDemand {
			// On-demand tenants live in the signature-keyed cache.
			info.Mode = "on-demand"
			if art, ok := s.cache.Peek(ws.sigKey); ok {
				info.Status = "resident"
				g := art.Source.Geometry()
				info.D = g.D
				info.Points = g.NumPoints()
			} else {
				info.Status = "evicted"
			}
			out = append(out, info)
			continue
		}
		ws.mu.RLock()
		if ws.compiled != nil {
			g := ws.compiled.Source.Geometry()
			info.D = g.D
			info.Points = g.NumPoints()
			info.WarmLoaded = ws.warmLoaded
			prof := ws.compiled.Source.Profile()
			info.Mode = prof.Mode
			info.Settled = prof.Settled
		}
		if ws.buildErr != nil {
			info.Error = ws.buildErr.Error()
		}
		info.Quarantined = ws.quarantined
		ws.mu.RUnlock()
		out = append(out, info)
	}
	s.writeJSON(w, http.StatusOK, out)
}

// admit enters the bounded admission queue: a free slot is taken
// immediately; otherwise the request waits as one of at most MaxQueue
// queued requests, or is shed. The returned release func is non-nil
// exactly when admission succeeded.
func (s *Server) admit(ctx context.Context) (release func(), shed bool, err error) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, false, nil
	default:
	}
	if n := s.queued.Add(1); n > int64(s.cfg.MaxQueue) {
		s.queued.Add(-1)
		return nil, true, nil
	}
	select {
	case s.sem <- struct{}{}:
		s.queued.Add(-1)
		return func() { <-s.sem }, false, nil
	case <-ctx.Done():
		s.queued.Add(-1)
		return nil, false, ctx.Err()
	}
}

// requestCtx derives the per-request deadline context.
func (s *Server) requestCtx(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return context.WithTimeout(r.Context(), d)
}

// requestInjector builds the deterministic per-request fault substream:
// a pure function of (server seed, request seed), so any request can be
// replayed bit for bit by re-sending the same fault_seed. Request-
// supplied rates are only honored when the operator armed chaos
// (FaultRate > 0 or AllowRequestFaults); otherwise a client could
// inject faults at will and trip the shared breaker for everyone.
func (s *Server) requestInjector(req DiscoverRequest) *faultinject.Injector {
	rate := s.requestFaultRate(req)
	if rate <= 0 {
		return nil
	}
	return faultinject.NewUniform(s.cfg.FaultSeed, rate).Fork(req.FaultSeed)
}

// requestFaultRate resolves the fault rate a request's injector will
// run at (0 = disarmed). Split out of requestInjector because the
// outcome-cache key needs the same number: two requests with the same
// seed but different effective rates see different fault schedules and
// must never share a cache entry.
func (s *Server) requestFaultRate(req DiscoverRequest) float64 {
	rate := s.cfg.FaultRate
	if req.FaultRate > 0 && (s.faults != nil || s.cfg.AllowRequestFaults) {
		rate = req.FaultRate
	}
	return rate
}

// outcomeKey assembles the full deterministic identity of one discover
// request: artifact signature (SQL shape ⊕ EPPs ⊕ res ⊕ scale),
// workload and strategy names, grid point, clamped worker count, fault
// substream parameters (zero when disarmed), the artifact's λ, and the
// workload's refinement epoch. Equal keys ⇒ deep-equal outcomes ⇒
// byte-identical responses — the invariant the outcome cache rests on.
func (s *Server) outcomeKey(ws *workloadState, strategy string, req DiscoverRequest, workers int, armed bool) core.OutcomeKey {
	key := core.OutcomeKey{
		SigHash:     ws.sigKey,
		Workload:    ws.name,
		Strategy:    strategy,
		QA:          int(req.QA),
		ExecWorkers: workers,
		// The server always compiles with CompileOptions{} → DefaultLambda;
		// keying it explicitly keeps entries honest if that ever changes.
		Lambda: core.DefaultLambda,
		Epoch:  ws.epoch(),
	}
	if armed {
		key.FaultSeed = req.FaultSeed
		key.FaultRate = s.requestFaultRate(req)
	}
	return key
}

func parseAlgorithm(s string) (core.Algorithm, error) {
	switch strings.ToLower(s) {
	case "planbouquet", "pb":
		return core.PlanBouquet, nil
	case "spillbound", "sb", "":
		return core.SpillBound, nil
	case "alignedbound", "ab":
		return core.AlignedBound, nil
	}
	return "", fmt.Errorf("unknown algorithm %q", s)
}

// resolveStrategy maps a request's algorithm/strategy pair onto one
// registry name. Strategy accepts any name in the strategy registry;
// Algorithm keeps its pb/sb/ab aliases for the paper algorithms. The
// paper algorithm names double as registry names, so both fields
// resolve into the same namespace — and when both are set they must
// agree, because a request naming two different policies is a
// contradiction, not a preference order.
func resolveStrategy(algField, stratField string) (string, error) {
	if stratField == "" {
		alg, err := parseAlgorithm(algField)
		if err != nil {
			return "", err
		}
		return string(alg), nil
	}
	st, ok := core.StrategyByName(stratField)
	if !ok {
		return "", fmt.Errorf("unknown strategy %q (registered: %s)",
			stratField, strings.Join(core.StrategyNamesSorted(), ", "))
	}
	name := st.Name()
	if algField != "" {
		alg, err := parseAlgorithm(algField)
		if err != nil {
			return "", err
		}
		if string(alg) != name {
			return "", fmt.Errorf("conflicting algorithm %q and strategy %q", algField, stratField)
		}
	}
	return name, nil
}

// lookup resolves the workload to a resident artifact or writes the
// rejection. On-demand tenants only resolve here when their artifact
// is cache-resident (lookup never triggers a compile — it backs the
// MSO path, whose grid sweep assumes a built artifact).
func (s *Server) lookup(w http.ResponseWriter, name string) (*workloadState, *core.Compiled, bool) {
	ws, ok := s.getWorkload(name)
	if !ok {
		s.writeError(w, http.StatusNotFound, KindNotFound, fmt.Sprintf("unknown workload %q", name), 0)
		return nil, nil, false
	}
	if ws.onDemand {
		if c, ok := s.cache.Get(ws.sigKey); ok {
			return ws, c, true
		}
		s.writeError(w, http.StatusServiceUnavailable, KindBuilding,
			fmt.Sprintf("on-demand workload %s is not resident; issue a discover first", name), time.Second)
		return nil, nil, false
	}
	c, err := ws.artifact()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, KindBuildFailed,
			fmt.Sprintf("workload %s failed to build: %v", name, err), 0)
		return nil, nil, false
	}
	if c == nil {
		s.writeError(w, http.StatusServiceUnavailable, KindBuilding,
			fmt.Sprintf("workload %s still compiling", name), time.Second)
		return nil, nil, false
	}
	return ws, c, true
}

func (s *Server) handleDiscover(w http.ResponseWriter, r *http.Request) {
	s.inflight.Add(1)
	defer s.inflight.Done()
	defer s.metrics.track()()
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, KindDraining, "server draining", time.Second)
		return
	}
	rb, err := readRequestBody(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, KindBadRequest, "invalid JSON body: "+err.Error(), 0)
		return
	}
	body := rb.buf.Bytes()

	// Request-identity fast path: byte-identical repeats of an unarmed
	// request resolve to their learned outcome key without JSON
	// decoding. The epoch is re-stamped from the live workload state,
	// so a refinement that moved the surface turns this into a miss.
	if s.outcomes != nil && r.Header.Get(failoverHeader) == "" {
		if e := s.front.get(body); e != nil {
			key := e.key
			key.Epoch = e.ws.epoch()
			if c, hit := s.outcomes.Get(key); hit {
				s.metrics.countRequest(e.strategy)
				s.writeBytes(w, http.StatusOK, c.Body)
				releaseReqBuf(rb)
				return
			}
		}
	}

	var req DiscoverRequest
	err = json.Unmarshal(body, &req)
	if err != nil {
		releaseReqBuf(rb)
		s.writeError(w, http.StatusBadRequest, KindBadRequest, "invalid JSON body: "+err.Error(), 0)
		return
	}
	// The identity miss path may learn this body at the end of the
	// request, long after the pooled buffer is recycled — copy it now,
	// but only when the identity is learnable at all: armed requests
	// must re-roll their chaos sites on every arrival and are never
	// admitted to the front table.
	var learnBody []byte
	if s.outcomes != nil && s.front.n.Load() < frontCap &&
		r.Header.Get(failoverHeader) == "" && s.requestFaultRate(req) <= 0 {
		learnBody = append([]byte(nil), body...)
	}
	releaseReqBuf(rb)
	name, err := resolveStrategy(req.Algorithm, req.Strategy)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, KindBadRequest, err.Error(), 0)
		return
	}
	ws, ok := s.resolveWorkload(w, &req)
	if !ok {
		return
	}
	in := s.requestInjector(req)

	if req.ExecWorkers < 0 {
		s.writeError(w, http.StatusBadRequest, KindBadRequest,
			fmt.Sprintf("exec_workers %d must be non-negative", req.ExecWorkers), 0)
		return
	}
	workers := req.ExecWorkers
	if workers < 1 {
		workers = 1
	}
	if workers > s.cfg.MaxExecWorkers {
		workers = s.cfg.MaxExecWorkers
	}

	// Deterministic outcome cache: consult before routing, the breaker,
	// admission, and dispatch — a hit writes the exact bytes of the
	// execution this request would have repeated, zero-copy. Failover
	// retries are excluded: their responses carry degradation stamps
	// that depend on which replicas happened to be down.
	var key core.OutcomeKey
	cacheable := s.outcomes != nil && r.Header.Get(failoverHeader) == ""
	if cacheable {
		key = s.outcomeKey(ws, name, req, workers, in != nil)
		if in.Trip(faultinject.SiteOutcomeEvict) {
			if s.outcomes.Evict(key) {
				s.metrics.outcomeChaosEvicts.Add(1)
			}
		}
		if e, hit := s.outcomes.Get(key); hit {
			s.metrics.countRequest(name)
			s.writeBytes(w, http.StatusOK, e.Body)
			return
		}
	}

	// Shard-out routing: proxy to the signature's owner replica unless
	// we are it (or this request was already forwarded to us). A
	// cleanly forwarded 200 is cacheable here too, but only for eager,
	// unarmed requests: a lazy owner refines its surface independently
	// of our epoch counter, and an armed owner's schedule depends on
	// its own chaos configuration — either could diverge from the key.
	var cacheForwarded func([]byte)
	if cacheable && !ws.isLazy() && in == nil {
		kf := key
		cacheForwarded = func(respBody []byte) {
			if _, admitted := s.outcomes.Put(kf, &core.CachedOutcome{Body: respBody}); admitted && learnBody != nil {
				s.front.put(&frontEntry{body: learnBody, ws: ws, strategy: name, key: kf})
			}
		}
	}
	handled, hops := s.routeDiscover(w, r, req, ws.sigKey, in, cacheForwarded)
	if handled {
		return
	}
	failover := s.ring != nil && (hops > 0 || r.Header.Get(failoverHeader) != "")

	var c *core.Compiled
	if !ws.onDemand {
		if _, c, ok = s.lookup(w, ws.name); !ok {
			return
		}
		if req.QA < 0 || int(req.QA) >= c.Source.Geometry().NumPoints() {
			s.writeError(w, http.StatusBadRequest, KindBadRequest,
				fmt.Sprintf("qa %d outside grid [0, %d)", req.QA, c.Source.Geometry().NumPoints()), 0)
			return
		}
	}
	s.metrics.countRequest(name)

	if allowed, wait := ws.breaker.Allow(); !allowed {
		s.writeError(w, http.StatusServiceUnavailable, KindBreakerOpen,
			fmt.Sprintf("workload %s circuit open", req.Workload), wait)
		return
	}
	// Past this point the breaker was told a request is in flight (it
	// may be the half-open probe): every path below must end in exactly
	// one Report or Cancel.

	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()

	release, shed, aerr := s.admit(ctx)
	if shed {
		ws.breaker.Cancel()
		s.writeError(w, http.StatusTooManyRequests, KindShed,
			"admission queue full", time.Second)
		return
	}
	if aerr != nil { // deadline expired while queued
		ws.breaker.Cancel()
		s.writeError(w, http.StatusGatewayTimeout, KindDeadline,
			"deadline expired waiting for an execution slot: "+aerr.Error(), 0)
		return
	}
	defer release()

	if ferr := in.Check(faultinject.SiteServeRun); ferr != nil {
		ws.breaker.Report(false)
		s.writeError(w, http.StatusInternalServerError, KindEngineFault,
			"engine unavailable: "+ferr.Error(), 0)
		return
	}

	if ws.onDemand {
		// The artifact comes from the signature-keyed cache, compiling
		// (coalesced) on a miss — inside the admission slot, so compile
		// work is bounded by the same concurrency budget as discovery.
		c, err = s.artifactFor(ctx, ws, in)
		if err != nil {
			if ctx.Err() != nil {
				ws.breaker.Cancel()
				s.writeError(w, http.StatusGatewayTimeout, KindDeadline,
					"deadline expired compiling artifact: "+err.Error(), 0)
				return
			}
			ws.breaker.Report(false)
			kind := KindBuildFailed
			if faultinject.IsTransient(err) || errors.As(err, new(*faultinject.Fault)) {
				kind = KindEngineFault
			}
			s.writeError(w, http.StatusInternalServerError, kind,
				fmt.Sprintf("compiling %s: %v", ws.name, err), 0)
			return
		}
		if req.QA < 0 || int(req.QA) >= c.Source.Geometry().NumPoints() {
			ws.breaker.Cancel()
			s.writeError(w, http.StatusBadRequest, KindBadRequest,
				fmt.Sprintf("qa %d outside grid [0, %d)", req.QA, c.Source.Geometry().NumPoints()), 0)
			return
		}
	}

	releaseWorkers := s.metrics.trackWorkers(workers)
	out, derr := s.discover(ctx, c, name, req.QA, in, workers)
	releaseWorkers()
	// Completed spill observations are valid selectivity knowledge even
	// when the run itself aborted: fold them into a lazy surface.
	s.feedRefinements(ws, out)
	resp := DiscoverResponse{Workload: req.Workload, Strategy: name, QA: req.QA}
	if s.ring != nil {
		resp.ServedBy = s.cfg.SelfURL
	}
	if failover {
		resp.Degraded = "failover"
	}
	if _, perr := parseAlgorithm(name); perr == nil {
		// Paper strategies keep the legacy algorithm echo.
		resp.Algorithm = name
	}
	if out != nil {
		resp.Completed = out.Completed
		resp.TotalCost = out.TotalCost
		resp.SubOpt = out.SubOpt(c.Source.CostAt(req.QA))
		resp.Steps = len(out.Steps)
		resp.Retries = out.Retries
		resp.WastedCost = out.WastedCost
		resp.AlignPenalty = out.AlignPenalty
		resp.Degradations = out.Degradations
	}
	if aerr := discovery.AbortCause(derr); aerr != nil {
		// A client deadline says nothing about engine health: neither
		// trip nor reset the breaker.
		ws.breaker.Cancel()
		resp.Aborted = aerr.Err.Error()
		s.writeJSON(w, http.StatusGatewayTimeout, resp)
		return
	}
	if derr != nil {
		ws.breaker.Report(false)
		s.writeError(w, http.StatusInternalServerError, KindEngineFault, derr.Error(), 0)
		return
	}
	ws.breaker.Report(true)
	jb, encOK := s.encodeBody(resp)
	if !encOK {
		s.writeBytes(w, http.StatusInternalServerError, []byte(encodeFailBody))
		return
	}
	// Cache the exact bytes being served. Skipped for failover serves
	// (stamped responses) and whenever the workload's epoch moved past
	// the key's — including by this very discovery's own refinements:
	// the outcome describes the pre-refinement surface, and a later
	// identical request must re-execute on the new one. An entry keyed
	// at a superseded epoch would be unreachable anyway; the recheck
	// just keeps it out of the budget.
	if cacheable && !failover && out != nil && out.Completed && ws.epoch() == key.Epoch {
		respBody := make([]byte, jb.buf.Len())
		copy(respBody, jb.buf.Bytes())
		_, admitted := s.outcomes.Put(key, &core.CachedOutcome{Outcome: out, Body: respBody})
		// Learn the request identity too — only for admitted entries
		// (an identity nobody repeats would squat in the front table)
		// and only unarmed: armed requests must roll their chaos sites
		// on every arrival.
		if admitted && learnBody != nil && in == nil {
			s.front.put(&frontEntry{body: learnBody, ws: ws, strategy: name, key: key})
		}
	}
	s.writeBytes(w, http.StatusOK, jb.buf.Bytes())
	releaseJSONBuf(jb)
}

// discover runs one deadline-bounded discovery of the named strategy,
// with the simulated engine behind the configured latency and, when
// chaos is armed, the fault-injecting engine plus the resilient retry
// driver (capped exponential backoff with deterministic jitter).
func (s *Server) discover(ctx context.Context, c *core.Compiled, name string, qa int32, in *faultinject.Injector, workers int) (*core.Outcome, error) {
	r := c.AcquireRun().WithFaults(in).WithContext(ctx).WithExecWorkers(workers)
	defer core.ReleaseRun(r)
	if s.cfg.ExecLatency <= 0 {
		return r.DiscoverStrategy(name, qa)
	}
	sim := discovery.NewSimEngine(c.Source, qa)
	if in != nil {
		eng := discovery.NewResilient(
			discovery.NewLatentFallible(discovery.NewFaultySim(sim, in), s.cfg.ExecLatency).WithContext(ctx),
			discovery.DefaultRetryPolicy).WithJitter(in.Jitter).WithContext(ctx)
		return r.DiscoverStrategyWith(name, eng)
	}
	return r.DiscoverStrategyWith(name, discovery.NewLatent(sim, s.cfg.ExecLatency).WithContext(ctx))
}

func (s *Server) handleMSO(w http.ResponseWriter, r *http.Request) {
	s.inflight.Add(1)
	defer s.inflight.Done()
	defer s.metrics.track()()
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, KindDraining, "server draining", time.Second)
		return
	}
	var req MSORequest
	if err := decodeRequest(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, KindBadRequest, "invalid JSON body: "+err.Error(), 0)
		return
	}
	alg, err := parseAlgorithm(req.Algorithm)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, KindBadRequest, err.Error(), 0)
		return
	}
	if req.Stride < 0 {
		s.writeError(w, http.StatusBadRequest, KindBadRequest,
			fmt.Sprintf("stride %d must be non-negative", req.Stride), 0)
		return
	}
	if req.Workers < 0 {
		s.writeError(w, http.StatusBadRequest, KindBadRequest,
			fmt.Sprintf("workers %d must be non-negative", req.Workers), 0)
		return
	}
	ws, c, ok := s.lookup(w, req.Workload)
	if !ok {
		return
	}
	s.metrics.countRequest(string(alg))
	if allowed, wait := ws.breaker.Allow(); !allowed {
		s.writeError(w, http.StatusServiceUnavailable, KindBreakerOpen,
			fmt.Sprintf("workload %s circuit open", req.Workload), wait)
		return
	}

	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	release, shed, aerr := s.admit(ctx)
	if shed {
		ws.breaker.Cancel()
		s.writeError(w, http.StatusTooManyRequests, KindShed, "admission queue full", time.Second)
		return
	}
	if aerr != nil {
		ws.breaker.Cancel()
		s.writeError(w, http.StatusGatewayTimeout, KindDeadline,
			"deadline expired waiting for an execution slot: "+aerr.Error(), 0)
		return
	}
	defer release()

	res, merr := mso.Sweep(c.Source, func(qa int32) (*core.Outcome, error) {
		return c.NewRun().WithContext(ctx).Discover(alg, qa)
	}, mso.Options{Stride: req.Stride, Workers: req.Workers})
	if aerr := discovery.AbortCause(merr); aerr != nil {
		ws.breaker.Cancel()
		s.writeError(w, http.StatusGatewayTimeout, KindDeadline,
			"deadline expired mid-sweep: "+aerr.Err.Error(), 0)
		return
	}
	if merr != nil {
		ws.breaker.Report(false)
		s.writeError(w, http.StatusInternalServerError, KindEngineFault, merr.Error(), 0)
		return
	}
	ws.breaker.Report(true)
	g, _ := c.Guarantee(alg)
	s.writeJSON(w, http.StatusOK, MSOResponse{
		Workload: req.Workload, Algorithm: string(alg),
		MSO: res.MSO, ASO: res.ASO, ArgMax: res.ArgMax,
		Points: len(res.Points), Guarantee: g,
	})
}

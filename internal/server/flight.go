package server

import (
	"context"

	"sync"

	"repro/internal/core"
)

// flightGroup coalesces concurrent compiles of the same query
// signature: the first caller in becomes the leader and runs the
// compile; everyone else arriving while it is in flight waits for the
// leader's result instead of compiling again. A herd of N identical
// requests therefore costs one compile, not N — the difference between
// a warm-up blip and a self-inflicted compile storm.
//
// Failure isolation: a flight's result (including its error) is
// delivered to the waiters of THAT flight only, and the flight is
// removed from the group before the result is published. A faulted
// leader thus cannot poison later arrivals — the next caller starts a
// fresh flight with a fresh leader — and waiters that receive a
// transient error retry through Do again (the server layers jittered
// exponential backoff on top, so the re-herd is staggered).
type flightGroup struct {
	mu sync.Mutex
	m  map[uint64]*flight
}

type flight struct {
	done chan struct{} // closed once art/err are final
	art  *core.Compiled
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[uint64]*flight)}
}

// Do executes fn under the signature key, coalescing concurrent calls:
// exactly one caller (the leader, reported by the third return) runs
// fn; the rest wait for its result or their own context, whichever
// ends first. A waiter abandoning on ctx does not disturb the flight.
func (g *flightGroup) Do(ctx context.Context, key uint64, fn func() (*core.Compiled, error)) (*core.Compiled, error, bool) {
	g.mu.Lock()
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-f.done:
			return f.art, f.err, false
		case <-ctx.Done():
			return nil, ctx.Err(), false
		}
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	f.art, f.err = fn()

	// Unpublish before releasing waiters: anyone arriving after this
	// point starts a fresh flight rather than adopting a finished one.
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
	return f.art, f.err, true
}

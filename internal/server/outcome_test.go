package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
)

// The outcome cache's contract is byte-identity: a hit must serve the
// exact bytes a fresh execution would have produced. Every test here
// compares full response bodies, not parsed fields.

func outcomeStats(t *testing.T, s *Server) core.CacheStats {
	t.Helper()
	st, ok := s.OutcomeCacheStats()
	if !ok {
		t.Fatal("outcome cache unexpectedly disabled")
	}
	return st
}

func TestOutcomeCacheHitServesIdenticalBytes(t *testing.T) {
	s := newTestServer(t, testConfig(t))
	nocacheCfg := testConfig(t)
	nocacheCfg.OutcomeCacheBytes = -1
	fresh := newTestServer(t, nocacheCfg)
	if _, ok := fresh.OutcomeCacheStats(); ok {
		t.Fatal("OutcomeCacheBytes=-1 must disable the cache")
	}

	for _, alg := range []string{"planbouquet", "spillbound", "alignedbound"} {
		req := DiscoverRequest{Workload: "EQ", Algorithm: alg, QA: 7}
		// First request records the key at the doorkeeper, second is
		// admitted into the cache, third is the hit.
		rec1, body1 := postJSON(t, s.Handler(), "/discover", req)
		rec2, body2 := postJSON(t, s.Handler(), "/discover", req)
		before := outcomeStats(t, s)
		rec3, body3 := postJSON(t, s.Handler(), "/discover", req)
		after := outcomeStats(t, s)
		if rec1.Code != http.StatusOK || rec2.Code != http.StatusOK || rec3.Code != http.StatusOK {
			t.Fatalf("%s: statuses %d %d %d", alg, rec1.Code, rec2.Code, rec3.Code)
		}
		if after.Hits != before.Hits+1 {
			t.Fatalf("%s: third request missed the cache: %+v -> %+v", alg, before, after)
		}
		if !bytes.Equal(body1, body2) || !bytes.Equal(body2, body3) {
			t.Fatalf("%s: cached response diverged from original:\n%s\nvs\n%s\nvs\n%s",
				alg, body1, body2, body3)
		}
		_, freshBody := postJSON(t, fresh.Handler(), "/discover", req)
		if !bytes.Equal(body3, freshBody) {
			t.Fatalf("%s: cached response diverged from cache-disabled server:\n%s\nvs\n%s",
				alg, body3, freshBody)
		}
	}

	// Distinct grid points are distinct entries, not aliases.
	_, bodyA := postJSON(t, s.Handler(), "/discover",
		DiscoverRequest{Workload: "EQ", Algorithm: "sb", QA: 3})
	_, bodyB := postJSON(t, s.Handler(), "/discover",
		DiscoverRequest{Workload: "EQ", Algorithm: "sb", QA: 4})
	if bytes.Equal(bodyA, bodyB) {
		t.Fatal("different qa produced identical responses — key aliasing")
	}
}

// Chaos matrix: with chaos armed, the fault substream is part of the
// key. Same seed ⇒ hit with byte-identical (degradation-stamped)
// bytes, equal to what a fresh identically-armed server produces;
// different seed ⇒ miss.
func TestOutcomeCacheChaosMatrix(t *testing.T) {
	mk := func() Config {
		cfg := testConfig(t)
		cfg.FaultSeed = 0xC0FFEE
		cfg.FaultRate = 0.05
		// The matrix hammers one workload with deliberate faults; keep
		// the shared breaker out of the experiment.
		cfg.BreakerThreshold = 1 << 20
		return cfg
	}
	s := newTestServer(t, mk())
	freshCfg := mk()
	freshCfg.OutcomeCacheBytes = -1
	fresh := newTestServer(t, freshCfg)

	for _, alg := range []string{"spillbound", "alignedbound"} {
		for _, seed := range []uint64{1, 0xDEAD} {
			req := DiscoverRequest{Workload: "EQ", Algorithm: alg, QA: 9, FaultSeed: seed}
			rec1, body1 := postJSON(t, s.Handler(), "/discover", req) // doorkeeper records
			if rec1.Code != http.StatusOK {
				t.Fatalf("%s seed %#x: status %d: %s", alg, seed, rec1.Code, body1)
			}
			_, body2 := postJSON(t, s.Handler(), "/discover", req) // admitted
			before := outcomeStats(t, s)
			_, body3 := postJSON(t, s.Handler(), "/discover", req) // hit
			if got := outcomeStats(t, s); got.Hits != before.Hits+1 {
				t.Fatalf("%s seed %#x: armed repeat missed: %+v -> %+v", alg, seed, before, got)
			}
			if !bytes.Equal(body1, body2) || !bytes.Equal(body2, body3) {
				t.Fatalf("%s seed %#x: cached chaos response diverged:\n%s\nvs\n%s\nvs\n%s",
					alg, seed, body1, body2, body3)
			}
			_, freshBody := postJSON(t, fresh.Handler(), "/discover", req)
			if !bytes.Equal(body3, freshBody) {
				t.Fatalf("%s seed %#x: cached chaos response != fresh execution:\n%s\nvs\n%s",
					alg, seed, body3, freshBody)
			}
		}
		// A different substream must never be served from another's entry.
		before := outcomeStats(t, s)
		_, _ = postJSON(t, s.Handler(), "/discover",
			DiscoverRequest{Workload: "EQ", Algorithm: alg, QA: 9, FaultSeed: 0xBEEF})
		if got := outcomeStats(t, s); got.Hits != before.Hits {
			t.Fatalf("%s: unseen fault seed hit the cache: %+v -> %+v", alg, before, got)
		}
	}
}

// Lazy mode: the refinement epoch is part of the key, so a refinement
// that moves the surface makes every older entry unreachable — a stale
// hit is structurally impossible, pinned here end to end.
func TestOutcomeCacheLazyEpochInvalidation(t *testing.T) {
	s := newTestServer(t, lazyConfig(t))
	ws, ok := s.getWorkload("EQ")
	if !ok {
		t.Fatal("EQ workload missing")
	}
	req := DiscoverRequest{Workload: "EQ", Algorithm: "spillbound", QA: 7}

	// Drive the same point until its own refinements stop moving the
	// surface; at that fixpoint the entry's key is stable, so repeats
	// pass the doorkeeper, get admitted, and finally hit.
	var body []byte
	hit := false
	for i := 0; i < 12 && !hit; i++ {
		before := outcomeStats(t, s)
		rec, b := postJSON(t, s.Handler(), "/discover", req)
		if rec.Code != http.StatusOK {
			t.Fatalf("attempt %d: status %d: %s", i, rec.Code, b)
		}
		if body != nil && !bytes.Equal(body, b) && outcomeStats(t, s).Hits > before.Hits {
			t.Fatalf("lazy cached response diverged:\n%s\nvs\n%s", body, b)
		}
		hit = outcomeStats(t, s).Hits > before.Hits
		body = b
	}
	if !hit {
		t.Fatal("EQ qa=7 never reached a refinement fixpoint with a cache hit")
	}

	// Bump the epoch by settling new territory elsewhere on the grid.
	epoch := ws.epoch()
	bumped := false
	for qa := int32(11); qa < 36 && !bumped; qa += 4 {
		rec, b := postJSON(t, s.Handler(), "/discover",
			DiscoverRequest{Workload: "EQ", Algorithm: "spillbound", QA: qa})
		if rec.Code != http.StatusOK {
			t.Fatalf("qa %d: status %d: %s", qa, rec.Code, b)
		}
		bumped = ws.epoch() != epoch
	}
	if !bumped {
		t.Fatal("no grid point moved the refinement epoch")
	}

	// The old entry is now unreachable: the repeat request keys at the
	// new epoch and must re-execute, not serve the stale bytes.
	before := outcomeStats(t, s)
	rec, _ := postJSON(t, s.Handler(), "/discover", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-bump status %d", rec.Code)
	}
	if got := outcomeStats(t, s); got.Hits != before.Hits {
		t.Fatalf("stale epoch entry was served: %+v -> %+v", before, got)
	}
}

// The outcome.evict chaos site deterministically drops the entry
// before lookup, so a would-be hit degrades to a re-execution — the
// serving tier's cache-pressure drill.
func TestOutcomeChaosEvictSite(t *testing.T) {
	cfg := testConfig(t)
	cfg.AllowRequestFaults = true
	cfg.BreakerThreshold = 1 << 20
	s := newTestServer(t, cfg)

	// Warm the entry unarmed (rate 0 → no injector, plain insert).
	req := DiscoverRequest{Workload: "EQ", Algorithm: "sb", QA: 5}
	for i := 0; i < 2; i++ {
		if rec, b := postJSON(t, s.Handler(), "/discover", req); rec.Code != http.StatusOK {
			t.Fatalf("warm %d: status %d: %s", i, rec.Code, b)
		}
	}
	if s.metrics.outcomeChaosEvicts.Load() != 0 {
		t.Fatal("chaos evicts counted before any armed request")
	}
	// Armed requests key a different (seeded) entry; sweep seeds,
	// repeating each three times so the seed's own entry is resident
	// (record, admit) by the time the third arrival's substream can
	// trip outcome.evict on it.
	armed := req
	armed.FaultRate = 0.3
	tripped := false
	for seed := uint64(1); seed < 64 && !tripped; seed++ {
		armed.FaultSeed = seed
		for i := 0; i < 3; i++ {
			if rec, b := postJSON(t, s.Handler(), "/discover", armed); rec.Code != http.StatusOK {
				t.Fatalf("seed %d attempt %d: status %d: %s", seed, i, rec.Code, b)
			}
		}
		tripped = s.metrics.outcomeChaosEvicts.Load() > 0
	}
	if !tripped {
		t.Fatal("outcome.evict never fired across 63 seeds at rate 0.3")
	}
}

// writeJSON must not silently drop encode failures: the static
// fallback body goes out and rqp_encode_errors_total counts it.
func TestEncodeErrorCountedAndFallbackServed(t *testing.T) {
	s := newTestServer(t, testConfig(t))
	rec := httptest.NewRecorder()
	s.writeJSON(rec, http.StatusOK, make(chan int)) // json: unsupported type
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("encode failure served status %d, want 500", rec.Code)
	}
	if rec.Body.String() != encodeFailBody {
		t.Fatalf("encode failure body %q, want the static fallback", rec.Body.String())
	}
	if got := s.metrics.encodeErrors.Load(); got != 1 {
		t.Fatalf("encodeErrors = %d, want 1", got)
	}
	// Second failure of the same kind: counted again, logged once (the
	// once-per-kind latch is internal; the counter is the contract).
	s.writeJSON(httptest.NewRecorder(), http.StatusOK, make(chan int))
	if got := s.metrics.encodeErrors.Load(); got != 2 {
		t.Fatalf("encodeErrors = %d, want 2", got)
	}

	page := metricsPage(t, s)
	if !strings.Contains(page, "rqp_encode_errors_total 2") {
		t.Fatalf("metrics page missing rqp_encode_errors_total:\n%s", page)
	}
}

func metricsPage(t *testing.T, s *Server) string {
	t.Helper()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	return rec.Body.String()
}

func TestOutcomeCacheMetricsExposition(t *testing.T) {
	s := newTestServer(t, testConfig(t))
	req := DiscoverRequest{Workload: "EQ", Algorithm: "sb", QA: 2}
	postJSON(t, s.Handler(), "/discover", req)
	postJSON(t, s.Handler(), "/discover", req)
	page := metricsPage(t, s)
	for _, metric := range []string{
		"rqp_outcome_cache_entries", "rqp_outcome_cache_bytes",
		"rqp_outcome_cache_budget_bytes", "rqp_outcome_cache_hits_total",
		"rqp_outcome_cache_misses_total", "rqp_outcome_cache_inserts_total",
		"rqp_outcome_chaos_evicts_total", "rqp_encode_errors_total",
	} {
		if !strings.Contains(page, metric) {
			t.Fatalf("metrics page missing %s:\n%s", metric, page)
		}
	}

	off := testConfig(t)
	off.OutcomeCacheBytes = -1
	s2 := newTestServer(t, off)
	page2 := metricsPage(t, s2)
	if strings.Contains(page2, "rqp_outcome_cache_") {
		t.Fatal("disabled cache must not emit outcome-cache metrics")
	}
	if !strings.Contains(page2, "rqp_encode_errors_total") {
		t.Fatal("rqp_encode_errors_total must be unconditional")
	}
}

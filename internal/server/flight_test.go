package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// A herd of concurrent Do calls on one key runs fn exactly once: the
// leader compiles, everyone else adopts its result.
func TestFlightGroupCoalesces(t *testing.T) {
	g := newFlightGroup()
	want := &core.Compiled{}
	var calls atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})

	// The leader is gated open so the waiters demonstrably join an
	// in-flight compile rather than racing past a finished one.
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		art, err, leader := g.Do(context.Background(), 42, func() (*core.Compiled, error) {
			calls.Add(1)
			close(entered)
			<-release
			return want, nil
		})
		if !leader || err != nil || art != want {
			t.Errorf("leader: (art=%p err=%v leader=%v), want (%p, nil, true)", art, err, leader, want)
		}
	}()
	<-entered

	const waiters = 16
	var leaders atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			art, err, leader := g.Do(context.Background(), 42, func() (*core.Compiled, error) {
				calls.Add(1)
				return want, nil
			})
			if leader {
				leaders.Add(1)
			}
			if err != nil || art != want {
				t.Errorf("waiter: art=%p err=%v, want (%p, nil)", art, err, want)
			}
		}()
	}
	// Give the waiters time to park on the flight, then let the leader
	// finish. A waiter that arrives after the release becomes a fresh
	// leader — the calls counter below catches that.
	time.Sleep(100 * time.Millisecond)
	close(release)
	wg.Wait()
	<-leaderDone

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times for %d concurrent calls, want exactly 1", got, waiters+1)
	}
	if got := leaders.Load(); got != 0 {
		t.Fatalf("%d waiters reported leader=true", got)
	}
}

// A faulted leader's error reaches the waiters of that flight only;
// the flight is unpublished before the result is delivered, so the
// next call starts a fresh flight instead of inheriting the failure.
func TestFlightGroupFailureIsolation(t *testing.T) {
	g := newFlightGroup()
	boom := errors.New("leader fault")
	entered := make(chan struct{})
	release := make(chan struct{})

	go func() {
		g.Do(context.Background(), 7, func() (*core.Compiled, error) {
			close(entered)
			<-release
			return nil, boom
		})
	}()
	<-entered

	const waiters = 8
	var wg sync.WaitGroup
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i], _ = g.Do(context.Background(), 7, func() (*core.Compiled, error) {
				t.Error("waiter ran fn during an in-flight compile")
				return nil, nil
			})
		}(i)
	}
	time.Sleep(100 * time.Millisecond)
	close(release)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("waiter %d error %v, want the leader's fault", i, err)
		}
	}

	// The poisoned flight is gone: a fresh call leads a fresh flight.
	want := &core.Compiled{}
	art, err, leader := g.Do(context.Background(), 7, func() (*core.Compiled, error) { return want, nil })
	if !leader || err != nil || art != want {
		t.Fatalf("post-failure call: (art=%p err=%v leader=%v), want fresh leader success", art, err, leader)
	}
}

// A waiter abandoning on its context leaves the flight (and the
// leader) untouched.
func TestFlightGroupWaiterContextCancel(t *testing.T) {
	g := newFlightGroup()
	want := &core.Compiled{}
	entered := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		art, err, _ := g.Do(context.Background(), 9, func() (*core.Compiled, error) {
			close(entered)
			<-release
			return want, nil
		})
		if err != nil || art != want {
			t.Errorf("leader after waiter cancel: art=%p err=%v", art, err)
		}
	}()
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan struct{})
	go func() {
		defer close(waiterDone)
		_, err, leader := g.Do(ctx, 9, nil)
		if leader || !errors.Is(err, context.Canceled) {
			t.Errorf("canceled waiter: err=%v leader=%v, want (context.Canceled, false)", err, leader)
		}
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	<-waiterDone
	close(release)
	<-leaderDone
}

package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

func getBody(t *testing.T, h http.Handler, path string) (*httptest.ResponseRecorder, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec, rec.Body.String()
}

// GET /metrics exposes queue depth, in-flight count, per-workload
// breaker state, and per-strategy request counters in the Prometheus
// text format, with a series prebuilt for every registered strategy.
func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, testConfig(t))

	// Route two requests to spillbound (one via /discover, one via
	// /mso's algorithm field) and one to parqo via the strategy field.
	for _, req := range []DiscoverRequest{
		{Workload: "EQ", Algorithm: "sb", QA: 7},
		{Workload: "EQ", Strategy: "parqo", QA: 7},
	} {
		if rec, body := postJSON(t, s.Handler(), "/discover", req); rec.Code != http.StatusOK {
			t.Fatalf("discover %+v: status %d: %s", req, rec.Code, body)
		}
	}
	if rec, body := postJSON(t, s.Handler(), "/mso",
		MSORequest{Workload: "EQ", Algorithm: "spillbound", Stride: 3}); rec.Code != http.StatusOK {
		t.Fatalf("mso: status %d: %s", rec.Code, body)
	}

	rec, body := getBody(t, s.Handler(), "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: status %d: %s", rec.Code, body)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	for _, want := range []string{
		"# TYPE rqp_queue_depth gauge",
		"rqp_queue_depth 0",
		"# TYPE rqp_inflight gauge",
		"rqp_inflight 0",
		"# TYPE rqp_breaker_state gauge",
		`rqp_breaker_state{workload="EQ"} 0`,
		"# TYPE rqp_requests_total counter",
		`rqp_requests_total{strategy="spillbound"} 2`,
		`rqp_requests_total{strategy="parqo"} 1`,
		"# TYPE rqp_cache_entries gauge",
		"rqp_cache_entries 0",
		"# TYPE rqp_cache_hits_total counter",
		"rqp_compiles_total 0",
		"rqp_coalesce_waits_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics body missing %q:\n%s", want, body)
		}
	}
	// Every registered strategy gets a series, even with zero traffic.
	for _, name := range core.Strategies() {
		if !strings.Contains(body, fmt.Sprintf("rqp_requests_total{strategy=%q}", name)) {
			t.Fatalf("metrics body missing series for %s:\n%s", name, body)
		}
	}
	// Shard-out gauges only appear with a ring configured.
	if strings.Contains(body, "rqp_peer_up") {
		t.Fatalf("single-replica server exposed rqp_peer_up:\n%s", body)
	}
}

// sanitizeLabel escapes exactly the three characters the Prometheus
// text exposition format defines escapes for — backslash, double
// quote, newline — and passes everything else (tabs included) through
// verbatim, unlike %q.
func TestSanitizeLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"EQ", "EQ"},
		{"plain-name_2D.Q91", "plain-name_2D.Q91"},
		{`back\slash`, `back\\slash`},
		{`quo"te`, `quo\"te`},
		{"new\nline", `new\nline`},
		{"tab\there", "tab\there"},         // tab is legal in a label value
		{"utf8-ключ", "utf8-ключ"},         // multibyte passes through
		{"\\\"\n", `\\\"` + `\n`},          // all three escapes adjacent
		{`a\b"c` + "\nd", `a\\b\"c` + `\nd`},
	}
	for _, tc := range cases {
		if got := sanitizeLabel(tc.in); got != tc.want {
			t.Errorf("sanitizeLabel(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// The strategy field routes /discover through the registry: any
// registered name works, unknown names are typed 400s listing the
// registry, and a contradictory algorithm/strategy pair is rejected.
func TestDiscoverStrategyField(t *testing.T) {
	s := newTestServer(t, testConfig(t))

	rec, body := postJSON(t, s.Handler(), "/discover",
		DiscoverRequest{Workload: "EQ", Strategy: "parqo", QA: 7})
	if rec.Code != http.StatusOK {
		t.Fatalf("parqo: status %d: %s", rec.Code, body)
	}
	var resp DiscoverResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Strategy != "parqo" || resp.Algorithm != "" || !resp.Completed {
		t.Fatalf("parqo response %+v", resp)
	}

	// Case-insensitive resolution; paper strategies echo both fields.
	rec, body = postJSON(t, s.Handler(), "/discover",
		DiscoverRequest{Workload: "EQ", Strategy: "PlanBouquet", QA: 7})
	if rec.Code != http.StatusOK {
		t.Fatalf("PlanBouquet: status %d: %s", rec.Code, body)
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Strategy != "planbouquet" || resp.Algorithm != "planbouquet" {
		t.Fatalf("PlanBouquet response %+v", resp)
	}

	// Agreeing algorithm alias + strategy is fine.
	rec, body = postJSON(t, s.Handler(), "/discover",
		DiscoverRequest{Workload: "EQ", Algorithm: "sb", Strategy: "spillbound", QA: 7})
	if rec.Code != http.StatusOK {
		t.Fatalf("agreeing pair: status %d: %s", rec.Code, body)
	}

	// Unknown strategy: 400 listing the registry.
	rec, body = postJSON(t, s.Handler(), "/discover",
		DiscoverRequest{Workload: "EQ", Strategy: "zzz", QA: 7})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown strategy: status %d: %s", rec.Code, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Kind != KindBadRequest || !strings.Contains(er.Error, "spillbound") {
		t.Fatalf("unknown strategy error %+v must list the registry", er)
	}

	// Contradictory pair: 400.
	rec, _ = postJSON(t, s.Handler(), "/discover",
		DiscoverRequest{Workload: "EQ", Algorithm: "pb", Strategy: "spillbound", QA: 7})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("conflicting pair: status %d", rec.Code)
	}
}

// A half-open breaker must admit exactly one of any number of
// concurrent probes, and the slot must be recycled correctly for each
// possible probe outcome.
func TestBreakerHalfOpenRace(t *testing.T) {
	cases := []struct {
		name      string
		probes    int
		settle    func(b *breaker) // report the admitted probe's outcome
		wantState string
		readmit   bool // a second probe is admitted after settling
	}{
		{"probe-succeeds", 16, func(b *breaker) { b.Report(true) }, "closed", true},
		{"probe-fails", 16, func(b *breaker) { b.Report(false) }, "open", false},
		{"probe-canceled", 16, func(b *breaker) { b.Cancel() }, "half-open", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := &fakeClock{t: time.Unix(9000, 0)}
			b := newBreaker(1, time.Second, clk.Now)
			b.Report(false) // threshold 1: trips open
			if b.State() != "open" {
				t.Fatalf("pre-state %s, want open", b.State())
			}
			clk.Advance(2 * time.Second) // cooldown elapsed

			var admitted atomic.Int64
			start := make(chan struct{})
			var wg sync.WaitGroup
			for i := 0; i < tc.probes; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					<-start
					if ok, _ := b.Allow(); ok {
						admitted.Add(1)
					}
				}()
			}
			close(start)
			wg.Wait()
			if got := admitted.Load(); got != 1 {
				t.Fatalf("%d of %d concurrent probes admitted, want exactly 1", got, tc.probes)
			}

			tc.settle(b)
			if b.State() != tc.wantState {
				t.Fatalf("settled state %s, want %s", b.State(), tc.wantState)
			}
			if ok, _ := b.Allow(); ok != tc.readmit {
				t.Fatalf("post-settle Allow=%v, want %v", ok, tc.readmit)
			}
		})
	}
}
